# Empty dependencies file for cav_tests.
# This may be replaced when dependencies are built.
