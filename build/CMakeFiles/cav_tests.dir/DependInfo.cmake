
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_acasx_advisory.cpp" "CMakeFiles/cav_tests.dir/tests/test_acasx_advisory.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_acasx_advisory.cpp.o.d"
  "/root/repo/tests/test_acasx_belief.cpp" "CMakeFiles/cav_tests.dir/tests/test_acasx_belief.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_acasx_belief.cpp.o.d"
  "/root/repo/tests/test_acasx_dynamics.cpp" "CMakeFiles/cav_tests.dir/tests/test_acasx_dynamics.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_acasx_dynamics.cpp.o.d"
  "/root/repo/tests/test_acasx_horizontal.cpp" "CMakeFiles/cav_tests.dir/tests/test_acasx_horizontal.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_acasx_horizontal.cpp.o.d"
  "/root/repo/tests/test_acasx_online.cpp" "CMakeFiles/cav_tests.dir/tests/test_acasx_online.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_acasx_online.cpp.o.d"
  "/root/repo/tests/test_acasx_table.cpp" "CMakeFiles/cav_tests.dir/tests/test_acasx_table.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_acasx_table.cpp.o.d"
  "/root/repo/tests/test_baselines_svo.cpp" "CMakeFiles/cav_tests.dir/tests/test_baselines_svo.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_baselines_svo.cpp.o.d"
  "/root/repo/tests/test_baselines_tcas.cpp" "CMakeFiles/cav_tests.dir/tests/test_baselines_tcas.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_baselines_tcas.cpp.o.d"
  "/root/repo/tests/test_core_analysis.cpp" "CMakeFiles/cav_tests.dir/tests/test_core_analysis.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_core_analysis.cpp.o.d"
  "/root/repo/tests/test_core_fitness.cpp" "CMakeFiles/cav_tests.dir/tests/test_core_fitness.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_core_fitness.cpp.o.d"
  "/root/repo/tests/test_core_logbook.cpp" "CMakeFiles/cav_tests.dir/tests/test_core_logbook.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_core_logbook.cpp.o.d"
  "/root/repo/tests/test_core_monte_carlo.cpp" "CMakeFiles/cav_tests.dir/tests/test_core_monte_carlo.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_core_monte_carlo.cpp.o.d"
  "/root/repo/tests/test_core_search.cpp" "CMakeFiles/cav_tests.dir/tests/test_core_search.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_core_search.cpp.o.d"
  "/root/repo/tests/test_encounter.cpp" "CMakeFiles/cav_tests.dir/tests/test_encounter.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_encounter.cpp.o.d"
  "/root/repo/tests/test_ga.cpp" "CMakeFiles/cav_tests.dir/tests/test_ga.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_ga.cpp.o.d"
  "/root/repo/tests/test_ga_niching.cpp" "CMakeFiles/cav_tests.dir/tests/test_ga_niching.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_ga_niching.cpp.o.d"
  "/root/repo/tests/test_ga_operators.cpp" "CMakeFiles/cav_tests.dir/tests/test_ga_operators.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_ga_operators.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/cav_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_mdp_compiled.cpp" "CMakeFiles/cav_tests.dir/tests/test_mdp_compiled.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_mdp_compiled.cpp.o.d"
  "/root/repo/tests/test_mdp_random.cpp" "CMakeFiles/cav_tests.dir/tests/test_mdp_random.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_mdp_random.cpp.o.d"
  "/root/repo/tests/test_mdp_solvers.cpp" "CMakeFiles/cav_tests.dir/tests/test_mdp_solvers.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_mdp_solvers.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "CMakeFiles/cav_tests.dir/tests/test_property_sweeps.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_sim_coordination.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_coordination.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_coordination.cpp.o.d"
  "/root/repo/tests/test_sim_monitors.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_monitors.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_monitors.cpp.o.d"
  "/root/repo/tests/test_sim_sensors.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_sensors.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_sensors.cpp.o.d"
  "/root/repo/tests/test_sim_simulation.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_simulation.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_simulation.cpp.o.d"
  "/root/repo/tests/test_sim_tracker.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_tracker.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_tracker.cpp.o.d"
  "/root/repo/tests/test_sim_trajectory.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_trajectory.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_trajectory.cpp.o.d"
  "/root/repo/tests/test_sim_uav.cpp" "CMakeFiles/cav_tests.dir/tests/test_sim_uav.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_sim_uav.cpp.o.d"
  "/root/repo/tests/test_statistical_model.cpp" "CMakeFiles/cav_tests.dir/tests/test_statistical_model.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_statistical_model.cpp.o.d"
  "/root/repo/tests/test_toy2d.cpp" "CMakeFiles/cav_tests.dir/tests/test_toy2d.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_toy2d.cpp.o.d"
  "/root/repo/tests/test_util_angles.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_angles.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_angles.cpp.o.d"
  "/root/repo/tests/test_util_csv_ascii.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_csv_ascii.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_csv_ascii.cpp.o.d"
  "/root/repo/tests/test_util_grid.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_grid.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_grid.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_misc.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_util_rng.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_rng.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_rng.cpp.o.d"
  "/root/repo/tests/test_util_stats.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_stats.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_stats.cpp.o.d"
  "/root/repo/tests/test_util_thread_pool.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_thread_pool.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_thread_pool.cpp.o.d"
  "/root/repo/tests/test_util_units.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_units.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_units.cpp.o.d"
  "/root/repo/tests/test_util_vec3.cpp" "CMakeFiles/cav_tests.dir/tests/test_util_vec3.cpp.o" "gcc" "CMakeFiles/cav_tests.dir/tests/test_util_vec3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/cav.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
