
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acasx/belief_logic.cpp" "CMakeFiles/cav.dir/src/acasx/belief_logic.cpp.o" "gcc" "CMakeFiles/cav.dir/src/acasx/belief_logic.cpp.o.d"
  "/root/repo/src/acasx/dynamics.cpp" "CMakeFiles/cav.dir/src/acasx/dynamics.cpp.o" "gcc" "CMakeFiles/cav.dir/src/acasx/dynamics.cpp.o.d"
  "/root/repo/src/acasx/horizontal.cpp" "CMakeFiles/cav.dir/src/acasx/horizontal.cpp.o" "gcc" "CMakeFiles/cav.dir/src/acasx/horizontal.cpp.o.d"
  "/root/repo/src/acasx/logic_table.cpp" "CMakeFiles/cav.dir/src/acasx/logic_table.cpp.o" "gcc" "CMakeFiles/cav.dir/src/acasx/logic_table.cpp.o.d"
  "/root/repo/src/acasx/offline_solver.cpp" "CMakeFiles/cav.dir/src/acasx/offline_solver.cpp.o" "gcc" "CMakeFiles/cav.dir/src/acasx/offline_solver.cpp.o.d"
  "/root/repo/src/acasx/online_logic.cpp" "CMakeFiles/cav.dir/src/acasx/online_logic.cpp.o" "gcc" "CMakeFiles/cav.dir/src/acasx/online_logic.cpp.o.d"
  "/root/repo/src/baselines/svo.cpp" "CMakeFiles/cav.dir/src/baselines/svo.cpp.o" "gcc" "CMakeFiles/cav.dir/src/baselines/svo.cpp.o.d"
  "/root/repo/src/baselines/tcas_like.cpp" "CMakeFiles/cav.dir/src/baselines/tcas_like.cpp.o" "gcc" "CMakeFiles/cav.dir/src/baselines/tcas_like.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "CMakeFiles/cav.dir/src/core/analysis.cpp.o" "gcc" "CMakeFiles/cav.dir/src/core/analysis.cpp.o.d"
  "/root/repo/src/core/fitness.cpp" "CMakeFiles/cav.dir/src/core/fitness.cpp.o" "gcc" "CMakeFiles/cav.dir/src/core/fitness.cpp.o.d"
  "/root/repo/src/core/logbook.cpp" "CMakeFiles/cav.dir/src/core/logbook.cpp.o" "gcc" "CMakeFiles/cav.dir/src/core/logbook.cpp.o.d"
  "/root/repo/src/core/monte_carlo.cpp" "CMakeFiles/cav.dir/src/core/monte_carlo.cpp.o" "gcc" "CMakeFiles/cav.dir/src/core/monte_carlo.cpp.o.d"
  "/root/repo/src/core/scenario_search.cpp" "CMakeFiles/cav.dir/src/core/scenario_search.cpp.o" "gcc" "CMakeFiles/cav.dir/src/core/scenario_search.cpp.o.d"
  "/root/repo/src/encounter/encounter.cpp" "CMakeFiles/cav.dir/src/encounter/encounter.cpp.o" "gcc" "CMakeFiles/cav.dir/src/encounter/encounter.cpp.o.d"
  "/root/repo/src/encounter/statistical_model.cpp" "CMakeFiles/cav.dir/src/encounter/statistical_model.cpp.o" "gcc" "CMakeFiles/cav.dir/src/encounter/statistical_model.cpp.o.d"
  "/root/repo/src/ga/ga.cpp" "CMakeFiles/cav.dir/src/ga/ga.cpp.o" "gcc" "CMakeFiles/cav.dir/src/ga/ga.cpp.o.d"
  "/root/repo/src/ga/operators.cpp" "CMakeFiles/cav.dir/src/ga/operators.cpp.o" "gcc" "CMakeFiles/cav.dir/src/ga/operators.cpp.o.d"
  "/root/repo/src/mdp/compiled_mdp.cpp" "CMakeFiles/cav.dir/src/mdp/compiled_mdp.cpp.o" "gcc" "CMakeFiles/cav.dir/src/mdp/compiled_mdp.cpp.o.d"
  "/root/repo/src/mdp/mdp.cpp" "CMakeFiles/cav.dir/src/mdp/mdp.cpp.o" "gcc" "CMakeFiles/cav.dir/src/mdp/mdp.cpp.o.d"
  "/root/repo/src/mdp/policy_iteration.cpp" "CMakeFiles/cav.dir/src/mdp/policy_iteration.cpp.o" "gcc" "CMakeFiles/cav.dir/src/mdp/policy_iteration.cpp.o.d"
  "/root/repo/src/mdp/value_iteration.cpp" "CMakeFiles/cav.dir/src/mdp/value_iteration.cpp.o" "gcc" "CMakeFiles/cav.dir/src/mdp/value_iteration.cpp.o.d"
  "/root/repo/src/sim/acasx_cas.cpp" "CMakeFiles/cav.dir/src/sim/acasx_cas.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/acasx_cas.cpp.o.d"
  "/root/repo/src/sim/belief_cas.cpp" "CMakeFiles/cav.dir/src/sim/belief_cas.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/belief_cas.cpp.o.d"
  "/root/repo/src/sim/combined_cas.cpp" "CMakeFiles/cav.dir/src/sim/combined_cas.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/combined_cas.cpp.o.d"
  "/root/repo/src/sim/monitors.cpp" "CMakeFiles/cav.dir/src/sim/monitors.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/monitors.cpp.o.d"
  "/root/repo/src/sim/sensors.cpp" "CMakeFiles/cav.dir/src/sim/sensors.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/sensors.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "CMakeFiles/cav.dir/src/sim/simulation.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/tracker.cpp" "CMakeFiles/cav.dir/src/sim/tracker.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/tracker.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "CMakeFiles/cav.dir/src/sim/trajectory.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/trajectory.cpp.o.d"
  "/root/repo/src/sim/uav.cpp" "CMakeFiles/cav.dir/src/sim/uav.cpp.o" "gcc" "CMakeFiles/cav.dir/src/sim/uav.cpp.o.d"
  "/root/repo/src/toy2d/toy2d_mdp.cpp" "CMakeFiles/cav.dir/src/toy2d/toy2d_mdp.cpp.o" "gcc" "CMakeFiles/cav.dir/src/toy2d/toy2d_mdp.cpp.o.d"
  "/root/repo/src/toy2d/toy2d_sim.cpp" "CMakeFiles/cav.dir/src/toy2d/toy2d_sim.cpp.o" "gcc" "CMakeFiles/cav.dir/src/toy2d/toy2d_sim.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "CMakeFiles/cav.dir/src/util/ascii_plot.cpp.o" "gcc" "CMakeFiles/cav.dir/src/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/cav.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/cav.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/util/vec3.cpp" "CMakeFiles/cav.dir/src/util/vec3.cpp.o" "gcc" "CMakeFiles/cav.dir/src/util/vec3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
