# Empty dependencies file for cav.
# This may be replaced when dependencies are built.
