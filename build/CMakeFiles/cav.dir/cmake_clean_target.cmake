file(REMOVE_RECURSE
  "libcav.a"
)
