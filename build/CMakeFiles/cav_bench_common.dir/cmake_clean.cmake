file(REMOVE_RECURSE
  "CMakeFiles/cav_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/cav_bench_common.dir/bench/bench_common.cpp.o.d"
  "libcav_bench_common.a"
  "libcav_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cav_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
