file(REMOVE_RECURSE
  "libcav_bench_common.a"
)
