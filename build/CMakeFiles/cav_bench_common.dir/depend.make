# Empty dependencies file for cav_bench_common.
# This may be replaced when dependencies are built.
