file(REMOVE_RECURSE
  "CMakeFiles/bench_search_cost.dir/bench/bench_search_cost.cpp.o"
  "CMakeFiles/bench_search_cost.dir/bench/bench_search_cost.cpp.o.d"
  "bench_search_cost"
  "bench_search_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
