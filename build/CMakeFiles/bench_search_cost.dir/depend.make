# Empty dependencies file for bench_search_cost.
# This may be replaced when dependencies are built.
