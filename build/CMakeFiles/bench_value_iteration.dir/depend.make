# Empty dependencies file for bench_value_iteration.
# This may be replaced when dependencies are built.
