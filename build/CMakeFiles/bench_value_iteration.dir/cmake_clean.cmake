file(REMOVE_RECURSE
  "CMakeFiles/bench_value_iteration.dir/bench/bench_value_iteration.cpp.o"
  "CMakeFiles/bench_value_iteration.dir/bench/bench_value_iteration.cpp.o.d"
  "bench_value_iteration"
  "bench_value_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
