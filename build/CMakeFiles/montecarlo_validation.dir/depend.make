# Empty dependencies file for montecarlo_validation.
# This may be replaced when dependencies are built.
