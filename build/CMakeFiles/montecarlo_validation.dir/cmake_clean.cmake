file(REMOVE_RECURSE
  "CMakeFiles/montecarlo_validation.dir/examples/montecarlo_validation.cpp.o"
  "CMakeFiles/montecarlo_validation.dir/examples/montecarlo_validation.cpp.o.d"
  "montecarlo_validation"
  "montecarlo_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montecarlo_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
