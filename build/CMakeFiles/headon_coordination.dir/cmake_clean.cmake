file(REMOVE_RECURSE
  "CMakeFiles/headon_coordination.dir/examples/headon_coordination.cpp.o"
  "CMakeFiles/headon_coordination.dir/examples/headon_coordination.cpp.o.d"
  "headon_coordination"
  "headon_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headon_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
