# Empty dependencies file for headon_coordination.
# This may be replaced when dependencies are built.
