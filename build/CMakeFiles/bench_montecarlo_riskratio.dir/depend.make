# Empty dependencies file for bench_montecarlo_riskratio.
# This may be replaced when dependencies are built.
