file(REMOVE_RECURSE
  "CMakeFiles/bench_montecarlo_riskratio.dir/bench/bench_montecarlo_riskratio.cpp.o"
  "CMakeFiles/bench_montecarlo_riskratio.dir/bench/bench_montecarlo_riskratio.cpp.o.d"
  "bench_montecarlo_riskratio"
  "bench_montecarlo_riskratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_montecarlo_riskratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
