file(REMOVE_RECURSE
  "CMakeFiles/search_challenging.dir/examples/search_challenging.cpp.o"
  "CMakeFiles/search_challenging.dir/examples/search_challenging.cpp.o.d"
  "search_challenging"
  "search_challenging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_challenging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
