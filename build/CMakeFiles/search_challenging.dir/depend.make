# Empty dependencies file for search_challenging.
# This may be replaced when dependencies are built.
