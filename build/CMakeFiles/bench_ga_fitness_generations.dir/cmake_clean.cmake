file(REMOVE_RECURSE
  "CMakeFiles/bench_ga_fitness_generations.dir/bench/bench_ga_fitness_generations.cpp.o"
  "CMakeFiles/bench_ga_fitness_generations.dir/bench/bench_ga_fitness_generations.cpp.o.d"
  "bench_ga_fitness_generations"
  "bench_ga_fitness_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ga_fitness_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
