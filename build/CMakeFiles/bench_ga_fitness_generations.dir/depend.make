# Empty dependencies file for bench_ga_fitness_generations.
# This may be replaced when dependencies are built.
