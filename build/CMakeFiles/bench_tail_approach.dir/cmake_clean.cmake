file(REMOVE_RECURSE
  "CMakeFiles/bench_tail_approach.dir/bench/bench_tail_approach.cpp.o"
  "CMakeFiles/bench_tail_approach.dir/bench/bench_tail_approach.cpp.o.d"
  "bench_tail_approach"
  "bench_tail_approach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tail_approach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
