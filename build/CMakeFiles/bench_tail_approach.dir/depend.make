# Empty dependencies file for bench_tail_approach.
# This may be replaced when dependencies are built.
