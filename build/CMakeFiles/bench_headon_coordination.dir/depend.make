# Empty dependencies file for bench_headon_coordination.
# This may be replaced when dependencies are built.
