file(REMOVE_RECURSE
  "CMakeFiles/bench_headon_coordination.dir/bench/bench_headon_coordination.cpp.o"
  "CMakeFiles/bench_headon_coordination.dir/bench/bench_headon_coordination.cpp.o.d"
  "bench_headon_coordination"
  "bench_headon_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headon_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
