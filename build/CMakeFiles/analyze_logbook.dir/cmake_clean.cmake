file(REMOVE_RECURSE
  "CMakeFiles/analyze_logbook.dir/examples/analyze_logbook.cpp.o"
  "CMakeFiles/analyze_logbook.dir/examples/analyze_logbook.cpp.o.d"
  "analyze_logbook"
  "analyze_logbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_logbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
