# Empty dependencies file for analyze_logbook.
# This may be replaced when dependencies are built.
