# Empty dependencies file for offline_online_split.
# This may be replaced when dependencies are built.
