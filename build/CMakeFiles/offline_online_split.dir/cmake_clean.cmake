file(REMOVE_RECURSE
  "CMakeFiles/offline_online_split.dir/examples/offline_online_split.cpp.o"
  "CMakeFiles/offline_online_split.dir/examples/offline_online_split.cpp.o.d"
  "offline_online_split"
  "offline_online_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_online_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
