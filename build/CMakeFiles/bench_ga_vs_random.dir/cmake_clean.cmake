file(REMOVE_RECURSE
  "CMakeFiles/bench_ga_vs_random.dir/bench/bench_ga_vs_random.cpp.o"
  "CMakeFiles/bench_ga_vs_random.dir/bench/bench_ga_vs_random.cpp.o.d"
  "bench_ga_vs_random"
  "bench_ga_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ga_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
