# Empty dependencies file for bench_ga_vs_random.
# This may be replaced when dependencies are built.
