file(REMOVE_RECURSE
  "CMakeFiles/bench_toy2d_policy.dir/bench/bench_toy2d_policy.cpp.o"
  "CMakeFiles/bench_toy2d_policy.dir/bench/bench_toy2d_policy.cpp.o.d"
  "bench_toy2d_policy"
  "bench_toy2d_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toy2d_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
