# Empty dependencies file for bench_toy2d_policy.
# This may be replaced when dependencies are built.
