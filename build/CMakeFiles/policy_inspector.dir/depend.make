# Empty dependencies file for policy_inspector.
# This may be replaced when dependencies are built.
