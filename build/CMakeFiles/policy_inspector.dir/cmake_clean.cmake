file(REMOVE_RECURSE
  "CMakeFiles/policy_inspector.dir/examples/policy_inspector.cpp.o"
  "CMakeFiles/policy_inspector.dir/examples/policy_inspector.cpp.o.d"
  "policy_inspector"
  "policy_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
