# Empty dependencies file for bench_model_revision.
# This may be replaced when dependencies are built.
