file(REMOVE_RECURSE
  "CMakeFiles/bench_model_revision.dir/bench/bench_model_revision.cpp.o"
  "CMakeFiles/bench_model_revision.dir/bench/bench_model_revision.cpp.o.d"
  "bench_model_revision"
  "bench_model_revision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_revision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
