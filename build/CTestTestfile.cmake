# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cav_tests "/root/repo/build/cav_tests")
set_tests_properties(cav_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;50;add_test;/root/repo/CMakeLists.txt;0;")
