// dist/wire.h frame + payload codec: round-trips, clean-EOF semantics,
// and the malformed-input contract (truncated/garbage frames must surface
// as ProtocolError, never as a silent short read or a giant allocation).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "dist/spec_codec.h"
#include "dist/wire.h"

namespace cav::dist {
namespace {

/// A pipe pair that closes what is left open at scope exit.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (fds[0] >= 0) ::close(fds[0]);
    fds[0] = -1;
  }
  void close_write() {
    if (fds[1] >= 0) ::close(fds[1]);
    fds[1] = -1;
  }
  int r() const { return fds[0]; }
  int w() const { return fds[1]; }
};

std::vector<std::byte> as_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(DistWireTest, FrameRoundTrip) {
  Pipe pipe;
  const std::vector<std::byte> payload = as_bytes("hello stripe");
  write_frame(pipe.w(), MsgType::kRunStripe, payload);
  auto frame = read_frame(pipe.r());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kRunStripe);
  EXPECT_EQ(frame->payload, payload);
}

TEST(DistWireTest, EmptyPayloadRoundTrip) {
  Pipe pipe;
  write_frame(pipe.w(), MsgType::kShutdown, {});
  auto frame = read_frame(pipe.r());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(DistWireTest, CleanEofAtBoundaryIsNullopt) {
  Pipe pipe;
  pipe.close_write();
  EXPECT_FALSE(read_frame(pipe.r()).has_value());
}

TEST(DistWireTest, EofMidHeaderThrows) {
  Pipe pipe;
  const std::uint32_t magic = kFrameMagic;
  ASSERT_EQ(::write(pipe.w(), &magic, 2), 2);  // half a magic, then EOF
  pipe.close_write();
  EXPECT_THROW(read_frame(pipe.r()), ProtocolError);
}

TEST(DistWireTest, EofMidPayloadThrows) {
  Pipe pipe;
  // A valid header promising 100 bytes, followed by only 3.
  std::uint32_t head[2] = {kFrameMagic, static_cast<std::uint32_t>(MsgType::kRunStripe)};
  std::uint64_t len = 100;
  ASSERT_EQ(::write(pipe.w(), head, sizeof head), static_cast<ssize_t>(sizeof head));
  ASSERT_EQ(::write(pipe.w(), &len, sizeof len), static_cast<ssize_t>(sizeof len));
  ASSERT_EQ(::write(pipe.w(), "abc", 3), 3);
  pipe.close_write();
  EXPECT_THROW(read_frame(pipe.r()), ProtocolError);
}

TEST(DistWireTest, BadMagicThrows) {
  Pipe pipe;
  std::uint32_t head[2] = {0xDEADBEEF, 1};
  std::uint64_t len = 0;
  ASSERT_EQ(::write(pipe.w(), head, sizeof head), static_cast<ssize_t>(sizeof head));
  ASSERT_EQ(::write(pipe.w(), &len, sizeof len), static_cast<ssize_t>(sizeof len));
  pipe.close_write();
  EXPECT_THROW(read_frame(pipe.r()), ProtocolError);
}

TEST(DistWireTest, OversizedLengthThrowsWithoutAllocating) {
  Pipe pipe;
  std::uint32_t head[2] = {kFrameMagic, static_cast<std::uint32_t>(MsgType::kRunStripe)};
  std::uint64_t len = ~std::uint64_t{0};  // 16 EB: must be rejected, not new[]'d
  ASSERT_EQ(::write(pipe.w(), head, sizeof head), static_cast<ssize_t>(sizeof head));
  ASSERT_EQ(::write(pipe.w(), &len, sizeof len), static_cast<ssize_t>(sizeof len));
  pipe.close_write();
  EXPECT_THROW(read_frame(pipe.r()), ProtocolError);
}

// Byte-level fuzz: truncate a valid frame at every prefix length.  Every
// truncation must yield nullopt (EOF at boundary, i.e. length 0) or a
// ProtocolError — never a successful parse, never anything else.
TEST(DistWireTest, TruncationFuzz) {
  ByteWriter payload;
  payload.u64(42);
  payload.str("fuzz");
  // Serialize one whole frame through a pipe to capture the exact bytes.
  std::vector<std::byte> wire_bytes;
  {
    Pipe pipe;
    write_frame(pipe.w(), MsgType::kStripeResult, payload.bytes());
    pipe.close_write();
    std::byte buf[256];
    ssize_t n = 0;
    while ((n = ::read(pipe.r(), buf, sizeof buf)) > 0) {
      wire_bytes.insert(wire_bytes.end(), buf, buf + n);
    }
  }
  ASSERT_GT(wire_bytes.size(), 16u);

  for (std::size_t cut = 0; cut < wire_bytes.size(); ++cut) {
    Pipe pipe;
    ASSERT_EQ(::write(pipe.w(), wire_bytes.data(), cut), static_cast<ssize_t>(cut));
    pipe.close_write();
    if (cut == 0) {
      EXPECT_FALSE(read_frame(pipe.r()).has_value()) << "cut=" << cut;
    } else {
      EXPECT_THROW(read_frame(pipe.r()), ProtocolError) << "cut=" << cut;
    }
  }
}

// Garbage fuzz: deterministic pseudo-random bytes must never parse as a
// frame (the magic check catches them) and must throw, not crash.
TEST(DistWireTest, GarbageFuzz) {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<std::uint8_t>(state);
  };
  for (int round = 0; round < 64; ++round) {
    std::vector<std::uint8_t> junk(1 + round * 3);
    for (auto& b : junk) b = next();
    // Avoid the 1-in-2^32 case where junk starts with the real magic.
    if (junk.size() >= 4 && std::memcmp(junk.data(), &kFrameMagic, 4) == 0) junk[0] ^= 0xFF;
    Pipe pipe;
    ASSERT_EQ(::write(pipe.w(), junk.data(), junk.size()), static_cast<ssize_t>(junk.size()));
    pipe.close_write();
    EXPECT_THROW(read_frame(pipe.r()), ProtocolError) << "round=" << round;
  }
}

TEST(DistByteCodecTest, ScalarAndArrayRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xCAFEBABE);
  w.u64(1ull << 60);
  w.f64(-0.25);
  w.str("système");
  const std::vector<float> floats{1.5f, -2.5f, 3.25f};
  w.array<float>(floats);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xCAFEBABE);
  EXPECT_EQ(r.u64(), 1ull << 60);
  EXPECT_EQ(r.f64(), -0.25);
  EXPECT_EQ(r.str(), "système");
  EXPECT_EQ(r.array<float>(), floats);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(DistByteCodecTest, OverrunsThrow) {
  ByteWriter w;
  w.u32(5);
  {
    ByteReader r(w.bytes());
    r.u32();
    EXPECT_THROW(r.u32(), ProtocolError);  // past the end
  }
  {
    ByteReader r(w.bytes());
    EXPECT_THROW(r.str(), ProtocolError);  // length 5 > remaining 0
  }
  {
    ByteReader r(w.bytes());
    EXPECT_THROW(r.array<double>(), ProtocolError);  // count 5 > remaining/8
  }
}

TEST(DistByteCodecTest, TrailingBytesDetected) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  r.u32();
  EXPECT_THROW(r.expect_end(), ProtocolError);
}

TEST(DistSpecCodecTest, StripeRoundTripAndValidation) {
  core::EncounterStripe stripe{1234, 128, 256};
  ByteWriter w;
  encode_stripe(w, stripe);
  ByteReader r(w.bytes());
  const core::EncounterStripe back = decode_stripe(r);
  EXPECT_EQ(back.seed, stripe.seed);
  EXPECT_EQ(back.begin, stripe.begin);
  EXPECT_EQ(back.end, stripe.end);

  ByteWriter bad;
  bad.u64(1);
  bad.u64(10);
  bad.u64(5);  // end < begin
  ByteReader rb(bad.bytes());
  EXPECT_THROW(decode_stripe(rb), ProtocolError);
}

TEST(DistSpecCodecTest, StripeResultRoundTrip) {
  core::StripeResult result;
  result.first_cell = 3;
  result.cells = {{2, 5, 123.5, 0.25}, {0, 1, -4.0, 0.125}};
  ByteWriter w;
  encode_stripe_result(w, result);
  ByteReader r(w.bytes());
  const core::StripeResult back = decode_stripe_result(r);
  EXPECT_EQ(back.first_cell, result.first_cell);
  ASSERT_EQ(back.cells.size(), result.cells.size());
  for (std::size_t i = 0; i < back.cells.size(); ++i) {
    EXPECT_EQ(back.cells[i].nmacs, result.cells[i].nmacs);
    EXPECT_EQ(back.cells[i].alerts, result.cells[i].alerts);
    EXPECT_EQ(back.cells[i].sep_sum, result.cells[i].sep_sum);
    EXPECT_EQ(back.cells[i].wall_s, result.cells[i].wall_s);
  }
}

TEST(DistSpecCodecTest, CampaignSpecRoundTrip) {
  CampaignSpec spec;
  spec.model.gs_mean_mps = 47.0;
  spec.config.encounters = 321;
  spec.config.intruders = 2;
  spec.config.seed = 777;
  spec.config.equipage_fraction = 0.75;
  spec.config.unequipped_behavior = core::UnequippedBehavior::kManeuverAtCpa;
  spec.config.sim.record_trajectory = true;
  spec.config.own_fault.emplace();
  spec.config.own_fault->coordination_silent = true;
  spec.system_name = "acasx-sharded";
  spec.own_cas = CasSpec::acas_xu("/tmp/pair.img", "/tmp/joint.img");
  spec.intruder_cas = CasSpec::svo();

  ByteWriter w;
  encode_campaign_spec(w, spec);
  ByteReader r(w.bytes());
  const CampaignSpec back = decode_campaign_spec(r);
  EXPECT_NO_THROW(r.expect_end());

  EXPECT_EQ(back.model.gs_mean_mps, spec.model.gs_mean_mps);
  EXPECT_EQ(back.config.encounters, spec.config.encounters);
  EXPECT_EQ(back.config.intruders, spec.config.intruders);
  EXPECT_EQ(back.config.seed, spec.config.seed);
  EXPECT_EQ(back.config.equipage_fraction, spec.config.equipage_fraction);
  EXPECT_EQ(back.config.unequipped_behavior, spec.config.unequipped_behavior);
  EXPECT_EQ(back.config.sim.record_trajectory, spec.config.sim.record_trajectory);
  ASSERT_TRUE(back.config.own_fault.has_value());
  EXPECT_TRUE(back.config.own_fault->coordination_silent);
  EXPECT_FALSE(back.config.intruder_fault.has_value());
  EXPECT_EQ(back.system_name, spec.system_name);
  EXPECT_EQ(back.own_cas.kind, CasKind::kAcasXu);
  EXPECT_EQ(back.own_cas.pair_image, "/tmp/pair.img");
  EXPECT_EQ(back.own_cas.joint_image, "/tmp/joint.img");
  EXPECT_EQ(back.intruder_cas.kind, CasKind::kSvo);
}

// Truncation fuzz over a full campaign-spec payload: every prefix must
// throw (the payload is consumed field-by-field through the bounds-checked
// reader, so a cut anywhere surfaces as ProtocolError).
TEST(DistSpecCodecTest, CampaignSpecTruncationFuzz) {
  CampaignSpec spec;
  spec.system_name = "fuzz";
  ByteWriter w;
  encode_campaign_spec(w, spec);
  const auto full = w.bytes();
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    ByteReader r(full.subspan(0, cut));
    EXPECT_THROW(
        {
          CampaignSpec s = decode_campaign_spec(r);
          r.expect_end();
          (void)s;
        },
        ProtocolError)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace cav::dist
