#include "core/analysis.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/angles.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::core {
namespace {

TEST(Classify, CanonicalGeometries) {
  EXPECT_EQ(classify(encounter::head_on()), EncounterClass::kHeadOn);
  EXPECT_EQ(classify(encounter::tail_approach()), EncounterClass::kTailApproach);
  EXPECT_EQ(classify(encounter::crossing()), EncounterClass::kCrossing);
}

TEST(Classify, OvertakeWithoutVerticalCrossing) {
  encounter::EncounterParams p = encounter::tail_approach();
  p.vs_own_mps = 0.0;  // both near-level: overtake, not the tail-approach trap
  p.vs_int_mps = 0.0;
  EXPECT_EQ(classify(p), EncounterClass::kOvertake);
}

TEST(Classify, SameSenseVerticalIsOvertake) {
  encounter::EncounterParams p = encounter::tail_approach();
  p.vs_own_mps = 2.0;  // both climbing
  p.vs_int_mps = 2.0;
  EXPECT_EQ(classify(p), EncounterClass::kOvertake);
}

TEST(Classify, FastSameCourseIsNotTailApproach) {
  encounter::EncounterParams p = encounter::tail_approach();
  p.gs_int_mps = 55.0;  // 30 m/s closure: fast overtake, tau logic works
  EXPECT_NE(classify(p), EncounterClass::kTailApproach);
}

TEST(Classify, NearReciprocalCoursesAreHeadOn) {
  encounter::EncounterParams p = encounter::head_on();
  p.theta_int_rad = kPi - 0.2;
  EXPECT_EQ(classify(p), EncounterClass::kHeadOn);
  p.theta_int_rad = -kPi + 0.2;
  EXPECT_EQ(classify(p), EncounterClass::kHeadOn);
}

TEST(Classify, ClassNamesDistinct) {
  std::set<std::string> names;
  for (const auto c : {EncounterClass::kHeadOn, EncounterClass::kTailApproach,
                       EncounterClass::kOvertake, EncounterClass::kCrossing,
                       EncounterClass::kOther}) {
    names.insert(encounter_class_name(c));
  }
  EXPECT_EQ(names.size(), 5U);
}

TEST(Describe, MentionsClassAndNumbers) {
  const std::string d = describe(encounter::tail_approach());
  EXPECT_NE(d.find("tail-approach"), std::string::npos);
  EXPECT_NE(d.find("closure"), std::string::npos);
  EXPECT_NE(d.find("CPA"), std::string::npos);
}

class KmeansTest : public ::testing::Test {
 protected:
  /// Two well-separated groups in parameter space: slow tail geometries and
  /// fast head-on geometries.
  std::vector<encounter::EncounterParams> two_groups() const {
    std::vector<encounter::EncounterParams> points;
    RngStream rng(3);
    for (int i = 0; i < 30; ++i) {
      encounter::EncounterParams p = encounter::tail_approach();
      p.t_cpa_s += rng.uniform(-2.0, 2.0);
      p.vs_own_mps += rng.uniform(-0.2, 0.2);
      points.push_back(p);
    }
    for (int i = 0; i < 20; ++i) {
      encounter::EncounterParams p = encounter::head_on();
      p.t_cpa_s += rng.uniform(-2.0, 2.0);
      p.gs_own_mps += rng.uniform(-1.0, 1.0);
      points.push_back(p);
    }
    return points;
  }
  encounter::ParamRanges ranges_;
};

TEST_F(KmeansTest, SeparatesObviousClusters) {
  const auto points = two_groups();
  const auto result = kmeans(points, ranges_, 2, 1);
  ASSERT_EQ(result.cluster_sizes.size(), 2U);
  // One cluster of 30, one of 20 (order free).
  const auto sizes = result.cluster_sizes;
  EXPECT_TRUE((sizes[0] == 30 && sizes[1] == 20) || (sizes[0] == 20 && sizes[1] == 30));
  // All tail points share a cluster.
  for (int i = 1; i < 30; ++i) EXPECT_EQ(result.assignment[0], result.assignment[i]);
  for (int i = 31; i < 50; ++i) EXPECT_EQ(result.assignment[30], result.assignment[i]);
  EXPECT_NE(result.assignment[0], result.assignment[30]);
}

TEST_F(KmeansTest, SingleClusterCentroidIsMean) {
  const auto points = two_groups();
  const auto result = kmeans(points, ranges_, 1, 1);
  EXPECT_EQ(result.cluster_sizes[0], points.size());
  EXPECT_GT(result.inertia, 0.0);
}

TEST_F(KmeansTest, MoreClustersNeverIncreaseInertia) {
  const auto points = two_groups();
  const double inertia1 = kmeans(points, ranges_, 1, 1).inertia;
  const double inertia2 = kmeans(points, ranges_, 2, 1).inertia;
  const double inertia4 = kmeans(points, ranges_, 4, 1).inertia;
  EXPECT_LE(inertia2, inertia1 + 1e-9);
  EXPECT_LE(inertia4, inertia2 + 1e-9);
}

TEST_F(KmeansTest, DeterministicPerSeed) {
  const auto points = two_groups();
  const auto a = kmeans(points, ranges_, 3, 7);
  const auto b = kmeans(points, ranges_, 3, 7);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST_F(KmeansTest, RejectsTooFewPoints) {
  std::vector<encounter::EncounterParams> two{encounter::head_on(), encounter::crossing()};
  EXPECT_THROW(kmeans(two, ranges_, 3, 1), ContractViolation);
  EXPECT_THROW(kmeans({}, ranges_, 1, 1), ContractViolation);
}

TEST_F(KmeansTest, AssignmentsIndexValidClusters) {
  const auto points = two_groups();
  const auto result = kmeans(points, ranges_, 5, 2);
  for (const std::size_t a : result.assignment) {
    EXPECT_LT(a, 5U);
  }
  std::size_t total = 0;
  for (const std::size_t s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, points.size());
}

}  // namespace
}  // namespace cav::core
