// Scenario-search integration tests with a scaled-down budget: the GA glue
// (genome <-> encounter params), telemetry, top-list deduplication, and the
// improvement property on the real simulation fitness.
#include "core/scenario_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/analysis.h"
#include "sim/acasx_cas.h"

namespace cav::core {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
    pool_ = new ThreadPool();
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete table_;
    pool_ = nullptr;
    table_ = nullptr;
  }

  static ScenarioSearchConfig small_search(std::uint64_t seed = 1) {
    ScenarioSearchConfig config;
    config.ga.population_size = 16;
    config.ga.generations = 4;
    config.ga.seed = seed;
    config.fitness.runs_per_encounter = 10;
    config.keep_top = 5;
    return config;
  }
  static sim::CasFactory acas() { return sim::AcasXuCas::factory(*table_); }

  static std::shared_ptr<const acasx::LogicTable>* table_;
  static ThreadPool* pool_;
};

std::shared_ptr<const acasx::LogicTable>* SearchTest::table_ = nullptr;
ThreadPool* SearchTest::pool_ = nullptr;

TEST(GenomeSpecMapping, BoundsMatchRanges) {
  const encounter::ParamRanges ranges;
  const ga::GenomeSpec spec = make_genome_spec(ranges);
  ASSERT_EQ(spec.size(), encounter::kNumParams);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_DOUBLE_EQ(spec.bound(i).lo, ranges.lo[i]);
    EXPECT_DOUBLE_EQ(spec.bound(i).hi, ranges.hi[i]);
  }
}

TEST_F(SearchTest, FindsChallengingScenarios) {
  const auto result = search_challenging_scenarios(small_search(), acas(), acas(), pool_);
  ASSERT_FALSE(result.top.empty());
  // With tail-approach blind spots in range, a short search already finds
  // high-fitness encounters.
  EXPECT_GT(result.best_fitness(), 0.0);
}

TEST_F(SearchTest, BestIsAtLeastInitialGenerationMax) {
  const auto result = search_challenging_scenarios(small_search(), acas(), acas(), pool_);
  EXPECT_GE(result.ga.best.fitness, result.ga.generations.front().max_fitness - 1e-9);
}

TEST_F(SearchTest, TelemetryCoversBudget) {
  const auto config = small_search();
  const auto result = search_challenging_scenarios(config, acas(), acas(), pool_);
  EXPECT_EQ(result.ga.generations.size(), config.ga.generations);
  EXPECT_EQ(result.ga.fitness_by_evaluation.size(), result.ga.total_evaluations);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST_F(SearchTest, TopListIsSortedAndDeduplicated) {
  const auto config = small_search();
  const auto result = search_challenging_scenarios(config, acas(), acas(), pool_);
  ASSERT_LE(result.top.size(), config.keep_top);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].fitness, result.top[i].fitness);
  }
  // Deduplication: no two entries nearly identical in every parameter.
  for (std::size_t i = 0; i < result.top.size(); ++i) {
    for (std::size_t j = i + 1; j < result.top.size(); ++j) {
      const auto a = result.top[i].params.to_array();
      const auto b = result.top[j].params.to_array();
      bool all_close = true;
      for (std::size_t k = 0; k < a.size(); ++k) {
        const double scale = config.ranges.hi[k] - config.ranges.lo[k];
        if (std::abs(a[k] - b[k]) > 0.05 * scale) all_close = false;
      }
      EXPECT_FALSE(all_close) << "entries " << i << " and " << j << " are duplicates";
    }
  }
}

TEST_F(SearchTest, TopScenariosHaveReEvaluatedDetail) {
  const auto result = search_challenging_scenarios(small_search(), acas(), acas(), pool_);
  for (const auto& found : result.top) {
    EXPECT_EQ(found.detail.runs, 10U);
    EXPECT_GE(found.detail.fitness, 0.0);
  }
}

TEST_F(SearchTest, DeterministicPerSeed) {
  const auto a = search_challenging_scenarios(small_search(3), acas(), acas(), pool_);
  const auto b = search_challenging_scenarios(small_search(3), acas(), acas(), pool_);
  EXPECT_EQ(a.ga.fitness_by_evaluation, b.ga.fitness_by_evaluation);
  EXPECT_EQ(a.ga.best.genome, b.ga.best.genome);
}

TEST_F(SearchTest, RandomSearchUsesSameBudget) {
  const auto config = small_search();
  const auto result = random_search_scenarios(config, acas(), acas(), pool_);
  EXPECT_EQ(result.ga.total_evaluations, config.ga.population_size * config.ga.generations);
  EXPECT_LE(result.top.size(), config.keep_top);
}

TEST_F(SearchTest, GenerationCallbackStreamsProgress) {
  std::size_t calls = 0;
  search_challenging_scenarios(small_search(), acas(), acas(), pool_,
                               [&calls](const ga::GenerationStats&) { ++calls; });
  EXPECT_EQ(calls, small_search().ga.generations);
}

TEST_F(SearchTest, AllEliteConfigIsRejectedUpFront) {
  // population_size == elites makes the per-generation evaluation count
  // zero (ga_budget lies, generation_of divides by zero); both search
  // entry points must reject it as a contract violation, not crash.
  auto config = small_search();
  config.ga.elites = config.ga.population_size;
  EXPECT_THROW(search_challenging_scenarios(config, acas(), acas(), pool_), ContractViolation);
  EXPECT_THROW(random_search_scenarios(config, acas(), acas(), pool_), ContractViolation);

  MultiScenarioSearchConfig multi;
  multi.ga = config.ga;
  EXPECT_THROW(search_challenging_multi_scenarios(multi, acas(), acas(), pool_),
               ContractViolation);
}

TEST(MultiGenomeSpecMapping, TwoOwnGenesPlusSevenPerIntruder) {
  const encounter::ParamRanges ranges;
  const ga::GenomeSpec spec = make_multi_genome_spec(ranges, 3);
  ASSERT_EQ(spec.size(), encounter::kOwnParams + 3 * encounter::kIntruderParams);
  // Own genes use the pairwise indices 0..1, every intruder block 2..8.
  EXPECT_DOUBLE_EQ(spec.bound(0).lo, ranges.lo[0]);
  EXPECT_DOUBLE_EQ(spec.bound(1).hi, ranges.hi[1]);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = encounter::kOwnParams; i < encounter::kNumParams; ++i) {
      const std::size_t gene =
          encounter::kOwnParams + k * encounter::kIntruderParams + (i - encounter::kOwnParams);
      EXPECT_DOUBLE_EQ(spec.bound(gene).lo, ranges.lo[i]) << gene;
      EXPECT_DOUBLE_EQ(spec.bound(gene).hi, ranges.hi[i]) << gene;
    }
  }
}

TEST_F(SearchTest, MultiIntruderSearchFindsChallengingTraffic) {
  MultiScenarioSearchConfig config;
  config.ga.population_size = 10;
  config.ga.generations = 2;
  config.ga.seed = 7;
  config.intruders = 2;
  config.fitness.runs_per_encounter = 4;
  config.keep_top = 3;

  const auto result = search_challenging_multi_scenarios(config, acas(), acas(), pool_);
  EXPECT_GT(result.best_fitness(), 0.0);
  ASSERT_FALSE(result.top.empty());
  ASSERT_LE(result.top.size(), config.keep_top);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].fitness, result.top[i].fitness);
  }
  for (const auto& found : result.top) {
    EXPECT_EQ(found.params.num_intruders(), 2U);
    EXPECT_EQ(found.detail.runs, 4U);
    EXPECT_GE(found.detail.fitness, 0.0);
  }
}

TEST_F(SearchTest, MultiIntruderSearchIsDeterministicPerSeed) {
  MultiScenarioSearchConfig config;
  config.ga.population_size = 8;
  config.ga.generations = 2;
  config.ga.seed = 11;
  config.intruders = 3;
  config.fitness.runs_per_encounter = 2;

  const auto a = search_challenging_multi_scenarios(config, acas(), acas(), pool_);
  const auto b = search_challenging_multi_scenarios(config, acas(), acas());
  EXPECT_EQ(a.ga.fitness_by_evaluation, b.ga.fitness_by_evaluation);
  EXPECT_EQ(a.ga.best.genome, b.ga.best.genome);
}

}  // namespace
}  // namespace cav::core
