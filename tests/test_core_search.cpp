// Scenario-search integration tests with a scaled-down budget: the GA glue
// (genome <-> encounter params), telemetry, top-list deduplication, and the
// improvement property on the real simulation fitness.
#include "core/scenario_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/analysis.h"
#include "sim/acasx_cas.h"

namespace cav::core {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
    pool_ = new ThreadPool();
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete table_;
    pool_ = nullptr;
    table_ = nullptr;
  }

  static ScenarioSearchConfig small_search(std::uint64_t seed = 1) {
    ScenarioSearchConfig config;
    config.ga.population_size = 16;
    config.ga.generations = 4;
    config.ga.seed = seed;
    config.fitness.runs_per_encounter = 10;
    config.keep_top = 5;
    return config;
  }
  static sim::CasFactory acas() { return sim::AcasXuCas::factory(*table_); }

  static std::shared_ptr<const acasx::LogicTable>* table_;
  static ThreadPool* pool_;
};

std::shared_ptr<const acasx::LogicTable>* SearchTest::table_ = nullptr;
ThreadPool* SearchTest::pool_ = nullptr;

TEST(GenomeSpecMapping, BoundsMatchRanges) {
  const encounter::ParamRanges ranges;
  const ga::GenomeSpec spec = make_genome_spec(ranges);
  ASSERT_EQ(spec.size(), encounter::kNumParams);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_DOUBLE_EQ(spec.bound(i).lo, ranges.lo[i]);
    EXPECT_DOUBLE_EQ(spec.bound(i).hi, ranges.hi[i]);
  }
}

TEST_F(SearchTest, FindsChallengingScenarios) {
  const auto result = search_challenging_scenarios(small_search(), acas(), acas(), pool_);
  ASSERT_FALSE(result.top.empty());
  // With tail-approach blind spots in range, a short search already finds
  // high-fitness encounters.
  EXPECT_GT(result.best_fitness(), 0.0);
}

TEST_F(SearchTest, BestIsAtLeastInitialGenerationMax) {
  const auto result = search_challenging_scenarios(small_search(), acas(), acas(), pool_);
  EXPECT_GE(result.ga.best.fitness, result.ga.generations.front().max_fitness - 1e-9);
}

TEST_F(SearchTest, TelemetryCoversBudget) {
  const auto config = small_search();
  const auto result = search_challenging_scenarios(config, acas(), acas(), pool_);
  EXPECT_EQ(result.ga.generations.size(), config.ga.generations);
  EXPECT_EQ(result.ga.fitness_by_evaluation.size(), result.ga.total_evaluations);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST_F(SearchTest, TopListIsSortedAndDeduplicated) {
  const auto config = small_search();
  const auto result = search_challenging_scenarios(config, acas(), acas(), pool_);
  ASSERT_LE(result.top.size(), config.keep_top);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].fitness, result.top[i].fitness);
  }
  // Deduplication: no two entries nearly identical in every parameter.
  for (std::size_t i = 0; i < result.top.size(); ++i) {
    for (std::size_t j = i + 1; j < result.top.size(); ++j) {
      const auto a = result.top[i].params.to_array();
      const auto b = result.top[j].params.to_array();
      bool all_close = true;
      for (std::size_t k = 0; k < a.size(); ++k) {
        const double scale = config.ranges.hi[k] - config.ranges.lo[k];
        if (std::abs(a[k] - b[k]) > 0.05 * scale) all_close = false;
      }
      EXPECT_FALSE(all_close) << "entries " << i << " and " << j << " are duplicates";
    }
  }
}

TEST_F(SearchTest, TopScenariosHaveReEvaluatedDetail) {
  const auto result = search_challenging_scenarios(small_search(), acas(), acas(), pool_);
  for (const auto& found : result.top) {
    EXPECT_EQ(found.detail.runs, 10U);
    EXPECT_GE(found.detail.fitness, 0.0);
  }
}

TEST_F(SearchTest, DeterministicPerSeed) {
  const auto a = search_challenging_scenarios(small_search(3), acas(), acas(), pool_);
  const auto b = search_challenging_scenarios(small_search(3), acas(), acas(), pool_);
  EXPECT_EQ(a.ga.fitness_by_evaluation, b.ga.fitness_by_evaluation);
  EXPECT_EQ(a.ga.best.genome, b.ga.best.genome);
}

TEST_F(SearchTest, RandomSearchUsesSameBudget) {
  const auto config = small_search();
  const auto result = random_search_scenarios(config, acas(), acas(), pool_);
  EXPECT_EQ(result.ga.total_evaluations, config.ga.population_size * config.ga.generations);
  EXPECT_LE(result.top.size(), config.keep_top);
}

TEST_F(SearchTest, GenerationCallbackStreamsProgress) {
  std::size_t calls = 0;
  search_challenging_scenarios(small_search(), acas(), acas(), pool_,
                               [&calls](const ga::GenerationStats&) { ++calls; });
  EXPECT_EQ(calls, small_search().ga.generations);
}

TEST_F(SearchTest, AllEliteConfigIsRejectedUpFront) {
  // population_size == elites makes the per-generation evaluation count
  // zero (ga_budget lies, generation_of divides by zero); both search
  // entry points must reject it as a contract violation, not crash.
  auto config = small_search();
  config.ga.elites = config.ga.population_size;
  EXPECT_THROW(search_challenging_scenarios(config, acas(), acas(), pool_), ContractViolation);
  EXPECT_THROW(random_search_scenarios(config, acas(), acas(), pool_), ContractViolation);

  MultiScenarioSearchConfig multi;
  multi.ga = config.ga;
  EXPECT_THROW(search_challenging_multi_scenarios(multi, acas(), acas(), pool_),
               ContractViolation);
}

TEST(MultiGenomeSpecMapping, TwoOwnGenesPlusSevenPerIntruder) {
  const encounter::ParamRanges ranges;
  const ga::GenomeSpec spec = make_multi_genome_spec(ranges, 3);
  ASSERT_EQ(spec.size(), encounter::kOwnParams + 3 * encounter::kIntruderParams);
  // Own genes use the pairwise indices 0..1, every intruder block 2..8.
  EXPECT_DOUBLE_EQ(spec.bound(0).lo, ranges.lo[0]);
  EXPECT_DOUBLE_EQ(spec.bound(1).hi, ranges.hi[1]);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = encounter::kOwnParams; i < encounter::kNumParams; ++i) {
      const std::size_t gene =
          encounter::kOwnParams + k * encounter::kIntruderParams + (i - encounter::kOwnParams);
      EXPECT_DOUBLE_EQ(spec.bound(gene).lo, ranges.lo[i]) << gene;
      EXPECT_DOUBLE_EQ(spec.bound(gene).hi, ranges.hi[i]) << gene;
    }
  }
}

TEST_F(SearchTest, MultiIntruderSearchFindsChallengingTraffic) {
  MultiScenarioSearchConfig config;
  config.ga.population_size = 10;
  config.ga.generations = 2;
  config.ga.seed = 7;
  config.intruders = 2;
  config.fitness.runs_per_encounter = 4;
  config.keep_top = 3;

  const auto result = search_challenging_multi_scenarios(config, acas(), acas(), pool_);
  EXPECT_GT(result.best_fitness(), 0.0);
  ASSERT_FALSE(result.top.empty());
  ASSERT_LE(result.top.size(), config.keep_top);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].fitness, result.top[i].fitness);
  }
  for (const auto& found : result.top) {
    EXPECT_EQ(found.params.num_intruders(), 2U);
    EXPECT_EQ(found.detail.runs, 4U);
    EXPECT_GE(found.detail.fitness, 0.0);
  }
}

TEST_F(SearchTest, MultiIntruderSearchIsDeterministicPerSeed) {
  MultiScenarioSearchConfig config;
  config.ga.population_size = 8;
  config.ga.generations = 2;
  config.ga.seed = 11;
  config.intruders = 3;
  config.fitness.runs_per_encounter = 2;

  const auto a = search_challenging_multi_scenarios(config, acas(), acas(), pool_);
  const auto b = search_challenging_multi_scenarios(config, acas(), acas());
  EXPECT_EQ(a.ga.fitness_by_evaluation, b.ga.fitness_by_evaluation);
  EXPECT_EQ(a.ga.best.genome, b.ga.best.genome);
}

TEST(DegradedGenomeSpec, AppendsFaultGenesAfterGeometry) {
  const encounter::ParamRanges ranges;
  const DegradedGeneRanges fault_ranges;
  const ga::GenomeSpec spec = make_degraded_genome_spec(ranges, 2, fault_ranges);
  const std::size_t geometry =
      encounter::kOwnParams + 2 * encounter::kIntruderParams;
  ASSERT_EQ(spec.size(), geometry + DegradedConditions::kNumGenes);
  // Geometry genes match the plain multi spec.
  const ga::GenomeSpec multi = make_multi_genome_spec(ranges, 2);
  for (std::size_t i = 0; i < geometry; ++i) {
    EXPECT_DOUBLE_EQ(spec.bound(i).lo, multi.bound(i).lo) << i;
    EXPECT_DOUBLE_EQ(spec.bound(i).hi, multi.bound(i).hi) << i;
  }
  // Fault genes: lows all 0 (the benign corner stays in the space), highs
  // from the configured ranges, in DegradedConditions::to_vector order.
  const double his[] = {fault_ranges.message_loss_hi, fault_ranges.burst_enter_hi,
                        fault_ranges.blackout_start_hi, fault_ranges.blackout_duration_hi,
                        fault_ranges.dropout_burst_hi};
  for (std::size_t g = 0; g < DegradedConditions::kNumGenes; ++g) {
    EXPECT_DOUBLE_EQ(spec.bound(geometry + g).lo, 0.0) << g;
    EXPECT_DOUBLE_EQ(spec.bound(geometry + g).hi, his[g]) << g;
  }
}

TEST(DegradedConditions, GenomeTailRoundTrip) {
  DegradedConditions conditions;
  conditions.message_loss_prob = 0.3;
  conditions.burst_enter_prob = 0.2;
  conditions.blackout_start_s = 25.0;
  conditions.blackout_duration_s = 12.0;
  conditions.adsb_dropout_burst_prob = 0.15;
  std::vector<double> genome = {1.0, 2.0, 3.0};  // fake geometry prefix
  const auto tail = conditions.to_vector();
  genome.insert(genome.end(), tail.begin(), tail.end());
  const DegradedConditions back = DegradedConditions::from_genome_tail(genome);
  EXPECT_DOUBLE_EQ(back.message_loss_prob, 0.3);
  EXPECT_DOUBLE_EQ(back.burst_enter_prob, 0.2);
  EXPECT_DOUBLE_EQ(back.blackout_start_s, 25.0);
  EXPECT_DOUBLE_EQ(back.blackout_duration_s, 12.0);
  EXPECT_DOUBLE_EQ(back.adsb_dropout_burst_prob, 0.15);
}

TEST(DegradedConditions, ApplyWritesTheSimConfig) {
  DegradedConditions conditions;
  conditions.message_loss_prob = 0.4;
  conditions.burst_enter_prob = 0.25;
  conditions.blackout_start_s = 30.0;
  conditions.blackout_duration_s = 10.0;
  conditions.adsb_dropout_burst_prob = 0.2;
  sim::SimConfig config;
  conditions.apply(&config);
  EXPECT_DOUBLE_EQ(config.coordination.message_loss_prob, 0.4);
  EXPECT_DOUBLE_EQ(config.coordination.burst_enter_prob, 0.25);
  ASSERT_EQ(config.fault.comms_blackouts.size(), 1U);
  EXPECT_DOUBLE_EQ(config.fault.comms_blackouts[0].start_s, 30.0);
  EXPECT_DOUBLE_EQ(config.fault.comms_blackouts[0].end_s, 40.0);
  EXPECT_DOUBLE_EQ(config.fault.adsb_dropout_burst_prob, 0.2);

  // The benign corner leaves a default config untouched.
  sim::SimConfig benign;
  DegradedConditions{}.apply(&benign);
  EXPECT_DOUBLE_EQ(benign.coordination.message_loss_prob, 0.0);
  EXPECT_FALSE(benign.coordination.burst_model_active());
  EXPECT_TRUE(benign.fault.comms_blackouts.empty());
  EXPECT_FALSE(benign.fault.degrades_surveillance());
}

TEST_F(SearchTest, DegradedSearchFindsScenariosAndDecodesFaultGenes) {
  MultiScenarioSearchConfig config;
  config.ga.population_size = 10;
  config.ga.generations = 2;
  config.ga.seed = 13;
  config.intruders = 2;
  config.fitness.runs_per_encounter = 3;
  config.keep_top = 3;
  const DegradedGeneRanges fault_ranges;

  const auto result =
      search_degraded_multi_scenarios(config, fault_ranges, acas(), acas(), pool_);
  EXPECT_GT(result.best_fitness(), 0.0);
  ASSERT_FALSE(result.top.empty());
  for (const auto& found : result.top) {
    EXPECT_EQ(found.params.num_intruders(), 2U);
    EXPECT_GE(found.faults.message_loss_prob, 0.0);
    EXPECT_LE(found.faults.message_loss_prob, fault_ranges.message_loss_hi);
    EXPECT_LE(found.faults.blackout_duration_s, fault_ranges.blackout_duration_hi);
    EXPECT_EQ(found.detail.runs, 3U);
  }
}

TEST_F(SearchTest, DegradedSearchIsDeterministicPerSeed) {
  MultiScenarioSearchConfig config;
  config.ga.population_size = 8;
  config.ga.generations = 2;
  config.ga.seed = 17;
  config.intruders = 2;
  config.fitness.runs_per_encounter = 2;
  const DegradedGeneRanges fault_ranges;

  const auto a = search_degraded_multi_scenarios(config, fault_ranges, acas(), acas(), pool_);
  const auto b = search_degraded_multi_scenarios(config, fault_ranges, acas(), acas());
  EXPECT_EQ(a.ga.fitness_by_evaluation, b.ga.fitness_by_evaluation);
  EXPECT_EQ(a.ga.best.genome, b.ga.best.genome);
}

}  // namespace
}  // namespace cav::core
