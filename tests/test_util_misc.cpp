// Contract-check and logging utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "util/expect.h"
#include "util/log.h"

namespace cav {
namespace {

TEST(Expect, PassingConditionIsSilent) {
  EXPECT_NO_THROW(expect(true, "always fine"));
  EXPECT_NO_THROW(ensure(true, "always fine"));
}

TEST(Expect, FailingPreconditionThrowsWithMessage) {
  try {
    expect(false, "population_size > 0");
    FAIL() << "expect must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("population_size > 0"), std::string::npos);
  }
}

TEST(Expect, FailingInvariantThrowsWithMessage) {
  try {
    ensure(false, "values converged");
    FAIL() << "ensure must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("values converged"), std::string::npos);
  }
}

TEST(Expect, ContractViolationIsLogicError) {
  EXPECT_THROW(expect(false, "x"), std::logic_error);
}

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ThresholdFiltersMessages) {
  const LogLevelGuard guard;
  // Capture stderr through a streambuf swap.
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());

  set_log_level(LogLevel::kWarn);
  log_debug("hidden debug");
  log_info("hidden info");
  log_warn("visible warn");
  log_error("visible error");

  std::cerr.rdbuf(old);
  const std::string out = captured.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible warn"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  const LogLevelGuard guard;
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  set_log_level(LogLevel::kOff);
  log_error("nothing");
  std::cerr.rdbuf(old);
  EXPECT_TRUE(captured.str().empty());
}

TEST(Log, DebugLevelShowsAll) {
  const LogLevelGuard guard;
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  set_log_level(LogLevel::kDebug);
  log_debug("d");
  log_info("i");
  std::cerr.rdbuf(old);
  EXPECT_NE(captured.str().find("[DEBUG]"), std::string::npos);
  EXPECT_NE(captured.str().find("[INFO]"), std::string::npos);
}

}  // namespace
}  // namespace cav
