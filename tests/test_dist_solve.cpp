// Sharded offline solves (dist/solve_driver.h) against real cav_worker
// processes: 2-way pair tau-layer sweeps and joint (delta, sense) slab
// handout must reassemble BIT-identically to the serial solvers, survive
// an unspawnable fleet, and the stencil TableImage round trip
// (acasx/stencil_image.h) must validate shapes loudly.
#include "dist/solve_driver.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "acasx/stencil_image.h"
#include "serving/table_image.h"

namespace cav::dist {
namespace {

using acasx::AcasXuConfig;
using acasx::JointConfig;

/// Small enough for a sub-second solve, big enough that every tau layer
/// shards into unequal slices across 2 workers.
AcasXuConfig tiny_pair_config() {
  AcasXuConfig c;
  c.space.h_ft = UniformAxis(-800.0, 800.0, 17);
  c.space.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  c.space.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  c.space.tau_max = 12;
  return c;
}

JointConfig tiny_joint_config() {
  JointConfig c;
  c.space = tiny_pair_config().space;
  // tau horizon must cover the last delta bin (1 * delta_step_s = 10 s).
  c.space.tau_max = 12;
  c.secondary.h2_ft = UniformAxis(-600.0, 600.0, 7);
  return c;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "dist_solve_" + std::to_string(::getpid()) + "_" + name;
}

/// RAII file cleanup.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

void expect_tables_identical(const float* a, const float* b, std::size_t n) {
  ASSERT_NE(a, b);
  EXPECT_EQ(std::memcmp(a, b, n * sizeof(float)), 0) << "tables must match bit for bit";
}

TEST(DistSolveTest, ShardedPairSolveIsBitIdenticalToSerial) {
  const AcasXuConfig config = tiny_pair_config();
  const acasx::LogicTable serial = acasx::solve_logic_table(config);

  TempFile image("pair_sten.cavt");
  SolveDriverOptions options;
  options.num_workers = 2;
  ShardedSolveReport report;
  const acasx::LogicTable sharded =
      solve_logic_table_sharded(config, image.path, options, &report);

  ASSERT_EQ(sharded.num_entries(), serial.num_entries());
  expect_tables_identical(sharded.values(), serial.values(), serial.num_entries());
  EXPECT_FALSE(report.degraded);
  EXPECT_GT(report.workers_used, 0u) << "the fleet must have carried real work";
  EXPECT_GT(report.stencil_build_s, 0.0) << "first run compiles the stencil image";

  // Second run: the stencil image is reused, and the answer is unchanged.
  ShardedSolveReport reuse;
  const acasx::LogicTable again =
      solve_logic_table_sharded(config, image.path, options, &reuse);
  expect_tables_identical(again.values(), serial.values(), serial.num_entries());
  EXPECT_EQ(reuse.stencil_build_s, 0.0) << "existing image must be reused, not recompiled";
}

TEST(DistSolveTest, StaleStencilImageIsRecompiled) {
  // An image compiled under a different config must not be trusted.
  AcasXuConfig a = tiny_pair_config();
  TempFile image("stale_sten.cavt");
  { acasx::CompiledAcasModel(a).save_stencils(image.path); }

  AcasXuConfig b = a;
  b.space.tau_max = 9;           // different recursion depth
  b.costs.nmac_cost = 20000.0;   // different preference model
  SolveDriverOptions options;
  options.num_workers = 2;
  ShardedSolveReport report;
  const acasx::LogicTable sharded = solve_logic_table_sharded(b, image.path, options, &report);
  EXPECT_GT(report.stencil_build_s, 0.0) << "mismatched image must be recompiled";

  const acasx::LogicTable serial = acasx::solve_logic_table(b);
  ASSERT_EQ(sharded.num_entries(), serial.num_entries());
  expect_tables_identical(sharded.values(), serial.values(), serial.num_entries());
}

TEST(DistSolveTest, ShardedJointSolveIsBitIdenticalToSerial) {
  const JointConfig config = tiny_joint_config();
  const acasx::JointLogicTable serial = acasx::solve_joint_table(config);

  TempFile image("joint_sten.cavt");
  SolveDriverOptions options;
  options.num_workers = 2;
  ShardedSolveReport report;
  const acasx::JointLogicTable sharded =
      solve_joint_table_sharded(config, image.path, options, &report);

  ASSERT_EQ(sharded.num_entries(), serial.num_entries());
  expect_tables_identical(sharded.values(), serial.values(), serial.num_entries());
  EXPECT_FALSE(report.degraded);
  EXPECT_GT(report.workers_used, 0u);
}

TEST(DistSolveTest, UnspawnableFleetFallsBackBitIdentically) {
  // Degraded-mode contract: with no usable workers at all, both solves
  // complete in-process and still produce the exact serial table.
  const AcasXuConfig config = tiny_pair_config();
  TempFile image("fallback_sten.cavt");
  SolveDriverOptions options;
  options.num_workers = 2;
  options.worker_path = "/nonexistent/cav_worker";
  ShardedSolveReport report;
  const acasx::LogicTable sharded =
      solve_logic_table_sharded(config, image.path, options, &report);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.workers_used, 0u);

  const acasx::LogicTable serial = acasx::solve_logic_table(config);
  expect_tables_identical(sharded.values(), serial.values(), serial.num_entries());

  TempFile jimage("fallback_sten2.cavt");
  ShardedSolveReport jreport;
  const acasx::JointLogicTable jsharded =
      solve_joint_table_sharded(tiny_joint_config(), jimage.path, options, &jreport);
  EXPECT_TRUE(jreport.degraded);
  const acasx::JointLogicTable jserial = acasx::solve_joint_table(tiny_joint_config());
  expect_tables_identical(jsharded.values(), jserial.values(), jserial.num_entries());
}

TEST(DistStencilImageTest, PairRoundTripSolvesIdentically) {
  const AcasXuConfig config = tiny_pair_config();
  const acasx::CompiledAcasModel compiled(config);
  TempFile image("rt_sten.cavt");
  compiled.save_stencils(image.path);

  const acasx::CompiledAcasModel reopened = acasx::CompiledAcasModel::open_stencils(image.path);
  EXPECT_EQ(reopened.stencil_entries(), compiled.stencil_entries());

  // The mmap'd stencils must drive the solver to the exact same table.
  const acasx::LogicTable from_disk = reopened.solve();
  const acasx::LogicTable from_memory = compiled.solve();
  ASSERT_EQ(from_disk.num_entries(), from_memory.num_entries());
  expect_tables_identical(from_disk.values(), from_memory.values(), from_memory.num_entries());
}

TEST(DistStencilImageTest, JointRoundTripSolvesIdentically) {
  const JointConfig config = tiny_joint_config();
  const acasx::JointOfflineSolver compiled(config);
  TempFile image("rt_sten2.cavt");
  compiled.save_stencils(image.path);

  const acasx::JointOfflineSolver reopened = acasx::JointOfflineSolver::open_stencils(image.path);
  EXPECT_EQ(reopened.stencil_entries(), compiled.stencil_entries());
  const acasx::JointLogicTable from_disk = reopened.solve();
  const acasx::JointLogicTable from_memory = compiled.solve();
  ASSERT_EQ(from_disk.num_entries(), from_memory.num_entries());
  expect_tables_identical(from_disk.values(), from_memory.values(), from_memory.num_entries());
}

TEST(DistStencilImageTest, KindMismatchIsRejected) {
  // A pair-stencil image must not open as a joint one (and vice versa):
  // the kind fourcc gates the loader before any slab is trusted.
  TempFile image("kind_sten.cavt");
  acasx::CompiledAcasModel(tiny_pair_config()).save_stencils(image.path);
  JointConfig config_out;
  EXPECT_THROW(acasx::open_joint_stencil_image(image.path, &config_out),
               serving::TableIoError);
  EXPECT_THROW(acasx::JointOfflineSolver::open_stencils(image.path), serving::TableIoError);
}

TEST(DistStencilImageTest, MissingAndGarbageFilesAreRejected) {
  EXPECT_THROW(acasx::CompiledAcasModel::open_stencils(temp_path("never_written.cavt")),
               serving::TableIoError);

  TempFile garbage("garbage_sten.cavt");
  {
    std::ofstream out(garbage.path, std::ios::binary);
    out << "this is not a table image at all, but it is long enough to mmap";
  }
  EXPECT_THROW(acasx::CompiledAcasModel::open_stencils(garbage.path), serving::TableIoError);
}

TEST(DistStencilImageTest, TruncatedImageIsRejected) {
  TempFile image("trunc_sten.cavt");
  acasx::CompiledAcasModel(tiny_pair_config()).save_stencils(image.path);
  // Chop the payload: the image checksum / slab bounds must catch it.
  std::ifstream in(image.path, std::ios::binary | std::ios::ate);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<std::size_t>(size) / 2, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(image.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(acasx::CompiledAcasModel::open_stencils(image.path), serving::TableIoError);
}

}  // namespace
}  // namespace cav::dist
