// Trajectory recording/rendering tests: CSV structure, ASCII view
// rendering, and the turn-command channel of the UAV agent (added with the
// horizontal logic).
#include "sim/trajectory.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/uav.h"
#include "util/angles.h"
#include "util/rng.h"

namespace cav::sim {
namespace {

Trajectory two_point_trajectory() {
  Trajectory traj;
  TrajectorySample a;
  a.t_s = 0.0;
  a.own_position_m = {0.0, 0.0, 1000.0};
  a.intruder_position_m = {2000.0, 100.0, 1050.0};
  a.own_advisory = "COC";
  a.intruder_advisory = "COC";
  a.separation_m = 2003.1;
  TrajectorySample b;
  b.t_s = 10.0;
  b.own_position_m = {400.0, 0.0, 1010.0};
  b.intruder_position_m = {1600.0, 100.0, 1040.0};
  b.own_advisory = "CL1500";
  b.intruder_advisory = "DES1500";
  b.separation_m = 1204.5;
  traj.push_back(a);
  traj.push_back(b);
  return traj;
}

TEST(Trajectory, CsvHasHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/cav_traj_test.csv";
  write_trajectory_csv(two_point_trajectory(), path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("t_s"), std::string::npos);
  EXPECT_NE(line.find("own_advisory"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
}

TEST(Trajectory, TopViewMarksAdvisoryStates) {
  const std::string view = render_top_view(two_point_trajectory());
  // Free flight lowercase, advisory uppercase.
  EXPECT_NE(view.find('o'), std::string::npos);
  EXPECT_NE(view.find('O'), std::string::npos);
  EXPECT_NE(view.find('I'), std::string::npos);
  EXPECT_NE(view.find("top view"), std::string::npos);
}

TEST(Trajectory, SideViewUsesTimeAxis) {
  const std::string view = render_side_view(two_point_trajectory());
  EXPECT_NE(view.find("side view"), std::string::npos);
  EXPECT_NE(view.find("altitude"), std::string::npos);
}

TEST(Trajectory, EmptyTrajectoryRendersGracefully) {
  EXPECT_NE(render_top_view({}).find("empty"), std::string::npos);
  EXPECT_NE(render_side_view({}).find("empty"), std::string::npos);
}

TEST(TurnCommand, AgentTurnsAtCommandedRate) {
  UavState init;
  init.ground_speed_mps = 30.0;
  init.bearing_rad = 0.0;
  UavAgent agent(0, init);
  TurnCommand turn;
  turn.active = true;
  turn.rate_rad_s = deg_to_rad(6.0);
  agent.set_turn_command(turn);
  RngStream rng(1);
  for (int i = 0; i < 100; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  // 10 s at 6 deg/s = 60 degrees.
  EXPECT_NEAR(agent.state().bearing_rad, deg_to_rad(60.0), 1e-9);
}

TEST(TurnCommand, InactiveHoldsBearing) {
  UavState init;
  init.ground_speed_mps = 30.0;
  init.bearing_rad = 0.7;
  UavAgent agent(0, init);
  RngStream rng(2);
  for (int i = 0; i < 100; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  EXPECT_DOUBLE_EQ(agent.state().bearing_rad, 0.7);
}

TEST(TurnCommand, BearingWrapsAcrossPi) {
  UavState init;
  init.ground_speed_mps = 30.0;
  init.bearing_rad = 3.1;  // close to +pi
  UavAgent agent(0, init);
  TurnCommand turn;
  turn.active = true;
  turn.rate_rad_s = 0.2;
  agent.set_turn_command(turn);
  RngStream rng(3);
  for (int i = 0; i < 10; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  // 3.1 + 0.2 = 3.3 -> wraps to 3.3 - 2*pi.
  EXPECT_NEAR(agent.state().bearing_rad, 3.3 - kTwoPi, 1e-9);
}

TEST(TurnCommand, TurningTracesAnArc) {
  UavState init;
  init.ground_speed_mps = 30.0;
  UavAgent agent(0, init);
  TurnCommand turn;
  turn.active = true;
  turn.rate_rad_s = deg_to_rad(6.0);
  agent.set_turn_command(turn);
  RngStream rng(4);
  // Full circle takes 60 s; fly half of it.
  for (int i = 0; i < 300; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  // After 180 degrees the agent flies the opposite direction, displaced by
  // the turn diameter along +y: radius = v / omega ~ 286.5 m.
  const double radius = 30.0 / deg_to_rad(6.0);
  EXPECT_NEAR(agent.state().bearing_rad, kPi, 0.01);
  EXPECT_NEAR(agent.state().position_m.y, 2.0 * radius, 6.0);
  EXPECT_NEAR(agent.state().position_m.x, 0.0, 6.0);
}

}  // namespace
}  // namespace cav::sim
