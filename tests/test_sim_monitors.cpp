#include "sim/monitors.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace cav::sim {
namespace {

TEST(ProximityMeasurer, TracksMinimumDistance) {
  ProximityMeasurer m;
  m.update(0.0, {0, 0, 0}, {1000, 0, 0});
  m.update(1.0, {0, 0, 0}, {500, 0, 0});
  m.update(2.0, {0, 0, 0}, {800, 0, 0});
  EXPECT_DOUBLE_EQ(m.report().min_distance_m, 500.0);
  EXPECT_DOUBLE_EQ(m.report().time_of_min_distance_s, 1.0);
}

TEST(ProximityMeasurer, TracksComponentsIndependently) {
  // Min horizontal and min vertical can occur at different times.
  ProximityMeasurer m;
  m.update(0.0, {0, 0, 0}, {100, 0, 500});  // horiz 100, vert 500
  m.update(1.0, {0, 0, 0}, {900, 0, 10});   // horiz 900, vert 10
  EXPECT_DOUBLE_EQ(m.report().min_horizontal_m, 100.0);
  EXPECT_DOUBLE_EQ(m.report().min_vertical_m, 10.0);
}

TEST(AccidentDetector, NmacRequiresBothThresholds) {
  const double h = units::ft_to_m(500.0);
  const double v = units::ft_to_m(100.0);
  {
    AccidentDetector d;
    d.update(0.0, {0, 0, 0}, {h * 0.9, 0, v * 1.5});  // horizontal ok, vertical not
    EXPECT_FALSE(d.nmac());
  }
  {
    AccidentDetector d;
    d.update(0.0, {0, 0, 0}, {h * 1.5, 0, v * 0.5});  // vertical ok, horizontal not
    EXPECT_FALSE(d.nmac());
  }
  {
    AccidentDetector d;
    d.update(3.0, {0, 0, 0}, {h * 0.9, 0, v * 0.9});
    EXPECT_TRUE(d.nmac());
    EXPECT_DOUBLE_EQ(d.nmac_time_s(), 3.0);
  }
}

TEST(AccidentDetector, FirstNmacTimeIsKept) {
  AccidentDetector d;
  d.update(1.0, {0, 0, 0}, {10, 0, 5});
  d.update(2.0, {0, 0, 0}, {5, 0, 2});
  EXPECT_TRUE(d.nmac());
  EXPECT_DOUBLE_EQ(d.nmac_time_s(), 1.0);
}

TEST(AccidentDetector, NoNmacReportsNegativeTime) {
  AccidentDetector d;
  d.update(0.0, {0, 0, 0}, {10000, 0, 0});
  EXPECT_FALSE(d.nmac());
  EXPECT_DOUBLE_EQ(d.nmac_time_s(), -1.0);
}

TEST(AccidentDetector, HardCollisionSphere) {
  AccidentConfig config;
  config.collision_radius_m = 30.0;
  {
    AccidentDetector d(config);
    d.update(0.0, {0, 0, 0}, {20, 20, 5});  // |d| ~ 28.7 < 30
    EXPECT_TRUE(d.hard_collision());
  }
  {
    AccidentDetector d(config);
    d.update(0.0, {0, 0, 0}, {25, 25, 5});  // |d| ~ 35.7 > 30
    EXPECT_FALSE(d.hard_collision());
  }
}

TEST(AccidentDetector, HardCollisionImpliesNmacWithDefaults) {
  AccidentDetector d;
  d.update(0.0, {0, 0, 0}, {10, 0, 3});
  EXPECT_TRUE(d.hard_collision());
  EXPECT_TRUE(d.nmac());
}

TEST(AccidentDetector, DefaultThresholdsAreAviationStandard) {
  const AccidentConfig config;
  EXPECT_NEAR(config.nmac_horizontal_m, 152.4, 0.01);  // 500 ft
  EXPECT_NEAR(config.nmac_vertical_m, 30.48, 0.01);    // 100 ft
}

}  // namespace
}  // namespace cav::sim
