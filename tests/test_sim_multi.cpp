// N-aircraft engine tests: bit-identity of the 2-aircraft path with the
// pre-refactor engine (golden values captured from the seed code on the
// same toolchain), per-pair monitor bookkeeping with 3+ aircraft,
// nearest-threat selection, the tail-step fix, and the reversal monitor.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>

#include "acasx/offline_solver.h"
#include "sim/acasx_cas.h"
#include "util/angles.h"
#include "util/expect.h"

namespace cav::sim {
namespace {

UavState state_at(double x, double y, double z, double gs, double bearing, double vs) {
  UavState s;
  s.position_m = {x, y, z};
  s.ground_speed_mps = gs;
  s.bearing_rad = bearing;
  s.vertical_speed_mps = vs;
  return s;
}

SimConfig quiet_config() {
  SimConfig config;
  config.disturbance = DisturbanceConfig::none();
  config.adsb = AdsbConfig::perfect();
  return config;
}

AgentSetup unequipped(const UavState& s) {
  AgentSetup a;
  a.initial_state = s;
  return a;
}

/// Scripted avoidance system: replays a fixed advisory sequence, one entry
/// per decision cycle (repeating the last entry when the script runs out).
struct ScriptedStep {
  bool maneuver = false;
  acasx::Sense sense = acasx::Sense::kNone;
};

class ScriptedCas final : public CollisionAvoidanceSystem {
 public:
  explicit ScriptedCas(std::vector<ScriptedStep> script) : script_(std::move(script)) {}

  CasDecision decide(const acasx::AircraftTrack&, const acasx::AircraftTrack&,
                     acasx::Sense) override {
    const ScriptedStep& step =
        script_[cycle_ < script_.size() ? cycle_ : script_.size() - 1];
    ++cycle_;
    CasDecision d;
    d.maneuver = step.maneuver;
    d.sense = step.sense;
    d.target_vs_mps = step.sense == acasx::Sense::kClimb    ? 5.0
                      : step.sense == acasx::Sense::kDescend ? -5.0
                                                             : 0.0;
    d.accel_mps2 = 2.0;
    d.label = step.maneuver ? "RA" : "COC";
    return d;
  }
  void reset() override { cycle_ = 0; }
  std::string name() const override { return "scripted"; }

 private:
  std::vector<ScriptedStep> script_;
  std::size_t cycle_ = 0;
};

class MultiSimWithTableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static AgentSetup equipped(const UavState& s) {
    AgentSetup a;
    a.initial_state = s;
    a.cas = std::make_unique<AcasXuCas>(*table_);
    return a;
  }
  static std::shared_ptr<const acasx::LogicTable>* table_;
};

std::shared_ptr<const acasx::LogicTable>* MultiSimWithTableTest::table_ = nullptr;

// ---------------------------------------------------------------------------
// Bit-identity of the refactored 2-aircraft path.  The golden values were
// captured from the pre-refactor run_encounter on this toolchain; every
// stochastic draw (ADS-B noise, disturbance, coordination loss) must hit
// the same stream in the same order for these to match exactly.

TEST_F(MultiSimWithTableTest, GoldenNoisyEquippedHeadOn) {
  SimConfig config;  // default noise
  config.max_time_s = 90.0;
  const auto r = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                               equipped(state_at(3200, 0, 1000, 40, kPi, 0)), 11);
  EXPECT_EQ(r.proximity.min_distance_m, 91.488145289202976);
  EXPECT_EQ(r.proximity.min_horizontal_m, 0.99166033301457901);
  EXPECT_EQ(r.proximity.min_vertical_m, 0.0);
  EXPECT_EQ(r.proximity.time_of_min_distance_s, 40.000000000000298);
  EXPECT_FALSE(r.nmac);
  EXPECT_TRUE(r.own.ever_alerted);
  EXPECT_EQ(r.own.first_alert_time_s, 25.000000000000085);
  EXPECT_EQ(r.own.alert_cycles, 2);
  EXPECT_EQ(r.intruder.alert_cycles, 3);
  EXPECT_EQ(r.elapsed_s, 89.999999999999162);
}

TEST(MultiSim, GoldenNoisyUnequipped) {
  SimConfig config;
  config.max_time_s = 30.0;
  const auto r = run_encounter(config, unequipped(state_at(0, 0, 1000, 30, 0, 0)),
                               unequipped(state_at(1500, 30, 1010, 30, kPi, 0)), 7);
  EXPECT_EQ(r.proximity.min_distance_m, 37.771413182990507);
  EXPECT_EQ(r.proximity.min_horizontal_m, 30.041425350531917);
  EXPECT_EQ(r.proximity.min_vertical_m, 8.5699864733875302);
  EXPECT_TRUE(r.nmac);
  EXPECT_EQ(r.nmac_time_s, 22.50000000000005);
  EXPECT_FALSE(r.hard_collision);
  EXPECT_EQ(r.elapsed_s, 30.000000000000156);
}

TEST_F(MultiSimWithTableTest, GoldenLossyEquipped) {
  // Exercises the per-link coordination loss draws and ADS-B dropout.
  SimConfig config;
  config.max_time_s = 90.0;
  config.adsb.dropout_prob = 0.3;
  config.coordination.message_loss_prob = 0.3;
  const auto r = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                               equipped(state_at(3000, 200, 1005, 35, kPi, -1)), 21);
  EXPECT_EQ(r.proximity.min_distance_m, 219.68830367883143);
  EXPECT_EQ(r.proximity.min_vertical_m, 0.024361138571407537);
  EXPECT_EQ(r.own.first_alert_time_s, 26.000000000000099);
  EXPECT_EQ(r.own.alert_cycles, 2);
  EXPECT_EQ(r.intruder.first_alert_time_s, 25.000000000000085);
  EXPECT_EQ(r.intruder.alert_cycles, 3);
}

// ---------------------------------------------------------------------------
// N-aircraft engine semantics.

TEST(MultiSim, PairwiseWrapperMatchesMultiEngine) {
  SimConfig config;  // noise on: both paths must draw identical streams
  config.max_time_s = 40.0;
  const auto own = [] { return state_at(0, 0, 1000, 30, 0, 0); };
  const auto other = [] { return state_at(1200, 0, 1000, 30, kPi, 0); };

  const auto a = run_encounter(config, unequipped(own()), unequipped(other()), 5);
  std::vector<AgentSetup> agents;
  agents.push_back(unequipped(own()));
  agents.push_back(unequipped(other()));
  const auto b = run_multi_encounter(config, std::move(agents), 5);

  EXPECT_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
  EXPECT_EQ(a.nmac, b.nmac);
  EXPECT_EQ(a.nmac_time_s, b.nmac_time_s);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
  ASSERT_EQ(b.agents.size(), 2U);
  ASSERT_EQ(b.pairs.size(), 1U);
  EXPECT_EQ(b.pairs[0].proximity.min_distance_m, b.proximity.min_distance_m);
}

TEST(MultiSim, RejectsFewerThanTwoAircraft) {
  SimConfig config = quiet_config();
  std::vector<AgentSetup> one;
  one.push_back(unequipped(state_at(0, 0, 1000, 30, 0, 0)));
  EXPECT_THROW(run_multi_encounter(config, std::move(one), 1), ContractViolation);
}

TEST(MultiSim, PerPairMonitorsSeparateOutcomes) {
  // Aircraft 0 and 1 collide head-on at t=10; aircraft 2 cruises far away:
  // pair (0,1) records the NMAC, pairs (0,2) and (1,2) stay clear.
  SimConfig config = quiet_config();
  config.max_time_s = 20.0;
  std::vector<AgentSetup> agents;
  agents.push_back(unequipped(state_at(0, 0, 1000, 50, 0, 0)));
  agents.push_back(unequipped(state_at(1000, 0, 1000, 50, kPi, 0)));
  agents.push_back(unequipped(state_at(0, 20000, 3000, 50, 0, 0)));
  const auto r = run_multi_encounter(config, std::move(agents), 3);

  ASSERT_EQ(r.pairs.size(), 3U);
  EXPECT_TRUE(r.pair(0, 1).nmac);
  EXPECT_TRUE(r.pair(0, 1).hard_collision);
  EXPECT_FALSE(r.pair(0, 2).nmac);
  EXPECT_FALSE(r.pair(1, 2).nmac);
  EXPECT_GT(r.pair(0, 2).proximity.min_distance_m, 10000.0);
  EXPECT_TRUE(r.nmac);
  EXPECT_TRUE(r.own_nmac());
  EXPECT_NEAR(r.pair(0, 1).nmac_time_s, r.nmac_time_s, 1e-12);
  // Aggregate proximity is the (0,1) minimum; own-centric separation too.
  EXPECT_EQ(r.proximity.min_distance_m, r.pair(0, 1).proximity.min_distance_m);
  EXPECT_EQ(r.own_min_separation_m(), r.pair(0, 1).proximity.min_distance_m);
  EXPECT_THROW(r.pair(1, 3), ContractViolation);
}

TEST(MultiSim, IntruderOnlyNmacIsNotAnOwnshipNmac) {
  // Aircraft 1 and 2 collide with each other far from the own-ship.
  SimConfig config = quiet_config();
  config.max_time_s = 20.0;
  std::vector<AgentSetup> agents;
  agents.push_back(unequipped(state_at(0, -20000, 1000, 50, 0, 0)));
  agents.push_back(unequipped(state_at(0, 0, 2000, 50, 0, 0)));
  agents.push_back(unequipped(state_at(1000, 0, 2000, 50, kPi, 0)));
  const auto r = run_multi_encounter(config, std::move(agents), 3);

  EXPECT_TRUE(r.nmac) << "the (1,2) pair collides";
  EXPECT_TRUE(r.pair(1, 2).nmac);
  EXPECT_FALSE(r.own_nmac());
  EXPECT_GT(r.own_min_separation_m(), 1000.0);
  EXPECT_EQ(r.own_miss_distance_m(), r.own_min_separation_m());
  EXPECT_EQ(r.miss_distance_m(), 0.0) << "the global miss distance sees the (1,2) NMAC";
}

TEST_F(MultiSimWithTableTest, DistantThirdAircraftDoesNotPerturbNearestThreatDecisions) {
  // Noise-free: no RNG draw is consumed anywhere, so adding a far-away
  // third aircraft must leave the own-ship's decisions against the nearest
  // threat exactly unchanged (nearest-threat selection picks aircraft 1).
  SimConfig config = quiet_config();
  config.max_time_s = 90.0;
  const auto own = [] { return state_at(0, 0, 1000, 40, 0, 0); };
  const auto near_threat = [] { return state_at(3200, 0, 1000, 40, kPi, 0); };
  const auto far_away = [] { return state_at(0, 50000, 1000, 40, kPi, 0); };

  const auto two = run_encounter(config, equipped(own()), equipped(near_threat()), 17);

  std::vector<AgentSetup> agents;
  agents.push_back(equipped(own()));
  agents.push_back(equipped(near_threat()));
  agents.push_back(equipped(far_away()));
  const auto three = run_multi_encounter(config, std::move(agents), 17);

  EXPECT_EQ(two.own.ever_alerted, three.own.ever_alerted);
  EXPECT_EQ(two.own.first_alert_time_s, three.own.first_alert_time_s);
  EXPECT_EQ(two.own.alert_cycles, three.own.alert_cycles);
  EXPECT_EQ(two.proximity.min_distance_m, three.pair(0, 1).proximity.min_distance_m);
  EXPECT_FALSE(three.own_nmac());
}

TEST_F(MultiSimWithTableTest, EquippedResolvesTwoStaggeredThreats) {
  // Two converging intruders with CPAs ~20 s apart (head-on at t=40, a
  // crosser at t=60); the equipped own-ship must resolve them in sequence
  // and stay NMAC-free while the unequipped own-ship collides.
  SimConfig config = quiet_config();
  config.max_time_s = 110.0;
  const auto build = [&](bool equip) {
    std::vector<AgentSetup> agents;
    const auto make = [&](const UavState& s) { return equip ? equipped(s) : unequipped(s); };
    agents.push_back(make(state_at(0, 0, 1000, 40, 0, 0)));
    agents.push_back(make(state_at(3200, 60, 1000, 40, kPi, 0)));
    agents.push_back(make(state_at(2400, -2400, 1000, 40, kPi / 2.0, 0)));
    return agents;
  };
  const auto bare = run_multi_encounter(config, build(false), 23);
  EXPECT_TRUE(bare.own_nmac()) << "sanity: the geometry is a real double conflict";
  const auto protected_run = run_multi_encounter(config, build(true), 23);
  EXPECT_FALSE(protected_run.own_nmac());
  EXPECT_TRUE(protected_run.own.ever_alerted);
}

TEST(MultiSim, MultiTrajectoryRecordsEveryAircraft) {
  SimConfig config = quiet_config();
  config.max_time_s = 10.0;
  config.record_trajectory = true;
  std::vector<AgentSetup> agents;
  agents.push_back(unequipped(state_at(0, 0, 1000, 10, 0, 0)));
  agents.push_back(unequipped(state_at(5000, 0, 1000, 10, kPi, 0)));
  agents.push_back(unequipped(state_at(0, 5000, 1200, 10, 0, 0)));
  const auto r = run_multi_encounter(config, std::move(agents), 4);
  ASSERT_EQ(r.multi_trajectory.size(), 10U);
  ASSERT_EQ(r.trajectory.size(), 10U) << "legacy pairwise view is kept";
  for (const auto& s : r.multi_trajectory) {
    EXPECT_EQ(s.position_m.size(), 3U);
    EXPECT_EQ(s.vs_mps.size(), 3U);
    EXPECT_EQ(s.advisory.size(), 3U);
  }
  EXPECT_EQ(r.multi_trajectory.front().position_m[0], r.trajectory.front().own_position_m);
}

// ---------------------------------------------------------------------------
// Satellite fixes.

TEST(MultiSim, TailStepCoversNonIntegerMaxTime) {
  // Closing at 100 m/s from 2010 m: separation at t is 2010 - 100 t, so the
  // last 0.04 s of a 20.04 s horizon is worth 4 m of approach.  The old
  // lround() step count truncated to 20.0 s and never saw it (min 10 m).
  SimConfig config = quiet_config();
  config.max_time_s = 20.04;
  const auto r = run_encounter(config, unequipped(state_at(0, 0, 1000, 50, 0, 0)),
                               unequipped(state_at(2010, 0, 1000, 50, kPi, 0)), 1);
  EXPECT_NEAR(r.elapsed_s, 20.04, 1e-9);
  EXPECT_NEAR(r.proximity.min_distance_m, 6.0, 1e-6);
  EXPECT_NEAR(r.proximity.time_of_min_distance_s, 20.04, 1e-9);
}

TEST(MultiSim, ExactMultipleHorizonHasNoTailStep) {
  SimConfig config = quiet_config();
  config.max_time_s = 15.0;
  const auto r = run_encounter(config, unequipped(state_at(0, 0, 1000, 10, 0, 0)),
                               unequipped(state_at(5000, 0, 1000, 10, kPi, 0)), 1);
  // 150 full steps of 0.1 s, accumulated exactly as before the fix.
  EXPECT_NEAR(r.elapsed_s, 15.0, 1e-9);
}

TEST(MultiSim, TailStepNeverOvershootsTheHorizon) {
  // max_time just above a step boundary: the old lround() rounded *up* and
  // simulated past the horizon; the clamped tail stops exactly on it.
  SimConfig config = quiet_config();
  config.max_time_s = 10.06;
  const auto r = run_encounter(config, unequipped(state_at(0, 0, 1000, 10, 0, 0)),
                               unequipped(state_at(5000, 0, 1000, 10, kPi, 0)), 1);
  EXPECT_NEAR(r.elapsed_s, 10.06, 1e-9);
  EXPECT_LT(r.elapsed_s, 10.1);
}

TEST(MultiSim, ReversalCountedAcrossCoastingGap) {
  // RA(climb) -> COC -> RA(descend): the paper's reversal monitor counts
  // this as one reversal; the pre-fix bookkeeping cleared its memory on
  // the COC cycle and missed it.
  SimConfig config = quiet_config();
  config.max_time_s = 6.0;
  std::vector<ScriptedStep> script = {
      {false, acasx::Sense::kNone},   {true, acasx::Sense::kClimb},
      {false, acasx::Sense::kNone},   {false, acasx::Sense::kNone},
      {true, acasx::Sense::kDescend}, {false, acasx::Sense::kNone},
  };
  AgentSetup own;
  own.initial_state = state_at(0, 0, 1000, 30, 0, 0);
  own.cas = std::make_unique<ScriptedCas>(script);
  const auto r = run_encounter(config, std::move(own),
                               unequipped(state_at(4000, 0, 1000, 30, kPi, 0)), 1);
  EXPECT_EQ(r.own.reversals, 1);
  EXPECT_EQ(r.own.alert_cycles, 2);
}

TEST(MultiSim, ContiguousSenseFlipStillCountsAsReversal) {
  SimConfig config = quiet_config();
  config.max_time_s = 5.0;
  std::vector<ScriptedStep> script = {
      {true, acasx::Sense::kClimb},
      {true, acasx::Sense::kDescend},
      {true, acasx::Sense::kDescend},
  };
  AgentSetup own;
  own.initial_state = state_at(0, 0, 1000, 30, 0, 0);
  own.cas = std::make_unique<ScriptedCas>(script);
  const auto r = run_encounter(config, std::move(own),
                               unequipped(state_at(4000, 0, 1000, 30, kPi, 0)), 1);
  EXPECT_EQ(r.own.reversals, 1) << "back-to-back opposite senses reverse once";
}

TEST(MultiSim, RepeatedSameSenseAfterGapIsNotAReversal) {
  SimConfig config = quiet_config();
  config.max_time_s = 5.0;
  std::vector<ScriptedStep> script = {
      {true, acasx::Sense::kClimb},
      {false, acasx::Sense::kNone},
      {true, acasx::Sense::kClimb},
  };
  AgentSetup own;
  own.initial_state = state_at(0, 0, 1000, 30, 0, 0);
  own.cas = std::make_unique<ScriptedCas>(script);
  const auto r = run_encounter(config, std::move(own),
                               unequipped(state_at(4000, 0, 1000, 30, kPi, 0)), 1);
  EXPECT_EQ(r.own.reversals, 0);
}

}  // namespace
}  // namespace cav::sim
