#include "sim/tracker.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace cav::sim {
namespace {

acasx::AircraftTrack track_at(double t, double noise_pos = 0.0, double noise_vel = 0.0) {
  // Truth: straight line from (0, 0, 1000) at (40, 0, -2) m/s.
  acasx::AircraftTrack tr;
  tr.position_m = {40.0 * t + noise_pos, 0.0, 1000.0 - 2.0 * t + noise_pos};
  tr.velocity_mps = {40.0 + noise_vel, 0.0, -2.0 + noise_vel};
  return tr;
}

TEST(TrackSmoother, FirstMeasurementPassesThrough) {
  TrackSmoother smoother;
  const auto m = track_at(0.0);
  const auto out = smoother.update(m);
  EXPECT_EQ(out.position_m, m.position_m);
  EXPECT_EQ(out.velocity_mps, m.velocity_mps);
  EXPECT_TRUE(smoother.initialized());
}

TEST(TrackSmoother, DisabledIsPassThrough) {
  TrackSmoother smoother(TrackerConfig::off());
  RngStream rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto m = track_at(i, rng.gaussian(0, 10), rng.gaussian(0, 2));
    const auto out = smoother.update(m);
    EXPECT_EQ(out.position_m, m.position_m);
    EXPECT_EQ(out.velocity_mps, m.velocity_mps);
  }
}

TEST(TrackSmoother, TracksNoiseFreeTargetExactly) {
  TrackSmoother smoother;
  for (int i = 0; i <= 30; ++i) {
    const auto out = smoother.update(track_at(i));
    // With perfect measurements the filter must stay on the trajectory.
    EXPECT_NEAR(out.position_m.x, 40.0 * i, 1e-6);
    EXPECT_NEAR(out.velocity_mps.x, 40.0, 1e-6);
  }
}

TEST(TrackSmoother, ReducesVelocityNoiseVariance) {
  RngStream rng(2);
  const double sigma = 1.0;
  TrackSmoother smoother;
  RunningStats raw_err;
  RunningStats smooth_err;
  for (int i = 0; i <= 500; ++i) {
    const double nv = rng.gaussian(0.0, sigma);
    const auto m = track_at(i, rng.gaussian(0.0, 15.0), nv);
    const auto out = smoother.update(m);
    if (i < 10) continue;  // let the filter settle
    raw_err.add(m.velocity_mps.x - 40.0);
    smooth_err.add(out.velocity_mps.x - 40.0);
  }
  EXPECT_LT(smooth_err.stddev(), 0.65 * raw_err.stddev())
      << "beta = 0.4 should cut velocity noise roughly in half";
}

TEST(TrackSmoother, FollowsManeuveringTargetWithBoundedLag) {
  TrackSmoother smoother;
  // Target flies level for 10 s, then climbs at 5 m/s.
  for (int i = 0; i <= 10; ++i) {
    acasx::AircraftTrack m;
    m.position_m = {40.0 * i, 0.0, 1000.0};
    m.velocity_mps = {40.0, 0.0, 0.0};
    smoother.update(m);
  }
  acasx::AircraftTrack last{};
  for (int i = 1; i <= 10; ++i) {
    acasx::AircraftTrack m;
    m.position_m = {40.0 * (10 + i), 0.0, 1000.0 + 5.0 * i};
    m.velocity_mps = {40.0, 0.0, 5.0};
    last = smoother.update(m);
  }
  // After 10 cycles at beta=0.4 the velocity estimate has converged to
  // within (1-0.4)^10 ~ 0.6% of the step.
  EXPECT_NEAR(last.velocity_mps.z, 5.0, 0.05);
  EXPECT_NEAR(last.position_m.z, 1050.0, 5.0);
}

TEST(TrackSmoother, ResetForgetsHistory) {
  TrackSmoother smoother;
  smoother.update(track_at(0.0));
  smoother.update(track_at(1.0));
  smoother.reset();
  EXPECT_FALSE(smoother.initialized());
  // Next measurement re-initializes verbatim even if far away.
  acasx::AircraftTrack far{};
  far.position_m = {99999.0, 0.0, 0.0};
  const auto out = smoother.update(far);
  EXPECT_EQ(out.position_m, far.position_m);
}

}  // namespace
}  // namespace cav::sim
