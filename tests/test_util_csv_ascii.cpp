#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/ascii_plot.h"
#include "util/csv.h"

namespace cav {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/cav_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"a", "b", "c"});
    csv.cell(1.5).cell(std::size_t{7}).cell("x");
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "a,b,c\n1.5,7,x\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.cell("has,comma").cell("has\"quote").cell("plain");
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST_F(CsvTest, IntCells) {
  {
    CsvWriter csv(path_);
    csv.cell(-3).cell(0).cell(42);
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "-3,0,42\n");
}

TEST(CsvWriterErrors, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(AsciiPlot, ContainsMarksAndRange) {
  const std::vector<double> y{0.0, 1.0, 2.0, 3.0, 4.0};
  AsciiPlotOptions opts;
  opts.title = "ramp";
  const std::string plot = ascii_plot(y, opts);
  EXPECT_NE(plot.find("ramp"), std::string::npos);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('4'), std::string::npos);  // max label
}

TEST(AsciiPlot, HandlesEmptySeries) {
  const std::string plot = ascii_plot({});
  EXPECT_FALSE(plot.empty());
}

TEST(AsciiPlot, HandlesConstantSeries) {
  const std::string plot = ascii_plot({2.0, 2.0, 2.0});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, IgnoresNonFinite) {
  const std::vector<double> y{1.0, std::numeric_limits<double>::infinity(), 2.0,
                              std::numeric_limits<double>::quiet_NaN(), 3.0};
  const std::string plot = ascii_plot(y);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_EQ(plot.find("inf"), std::string::npos);
}

TEST(AsciiPlot, MultiSeriesUsesDistinctMarks) {
  const std::string plot =
      ascii_plot_multi({{0.0, 1.0, 2.0}, {2.0, 1.0, 0.0}}, "ab");
  EXPECT_NE(plot.find('a'), std::string::npos);
  EXPECT_NE(plot.find('b'), std::string::npos);
}

TEST(AsciiPlot, XyPlotRespectsCoordinates) {
  AsciiPlotOptions opts;
  opts.width = 20;
  opts.height = 5;
  const std::string plot = ascii_plot_xy({0.0, 10.0}, {0.0, 1.0}, opts);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiHeatmap, RendersRamp) {
  std::vector<double> values(20);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  const std::string map = ascii_heatmap(values, 4, 5, "heat");
  EXPECT_NE(map.find("heat"), std::string::npos);
  EXPECT_NE(map.find('@'), std::string::npos);  // hottest cell
  EXPECT_NE(map.find("scale"), std::string::npos);
}

}  // namespace
}  // namespace cav
