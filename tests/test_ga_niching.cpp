// Fitness-sharing (niching) tests: on a symmetric two-peak landscape the
// plain GA collapses onto one peak while the niched GA keeps both
// populated — the mechanism behind searching for *areas* of challenging
// scenarios instead of a single worst point (§VIII).
#include "ga/ga.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cav::ga {
namespace {

/// Two equal peaks at x = 0.2 and x = 0.8 (1-D), value 1 at each apex.
double two_peaks(const Genome& g) {
  const double x = g[0];
  const double p1 = std::exp(-std::pow((x - 0.2) / 0.05, 2.0));
  const double p2 = std::exp(-std::pow((x - 0.8) / 0.05, 2.0));
  return std::max(p1, p2);
}

/// Count final individuals near each peak.
std::pair<int, int> peak_census(const std::vector<Individual>& population) {
  int near1 = 0;
  int near2 = 0;
  for (const auto& ind : population) {
    if (std::abs(ind.genome[0] - 0.2) < 0.1) ++near1;
    if (std::abs(ind.genome[0] - 0.8) < 0.1) ++near2;
  }
  return {near1, near2};
}

GaConfig base_config(std::uint64_t seed) {
  GaConfig config;
  config.population_size = 60;
  config.generations = 25;
  config.seed = seed;
  // Low mutation keeps the collapse/spread contrast sharp.
  config.mutation.gene_probability = 0.2;
  config.mutation.gaussian_sigma_frac = 0.03;
  config.mutation.reset_probability = 0.0;
  return config;
}

TEST(Niching, KeepsBothPeaksPopulated) {
  const GenomeSpec spec({{0.0, 1.0}});
  const auto fitness = [](const Genome& g, std::uint64_t) { return two_peaks(g); };

  int niched_both = 0;
  int plain_both = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GaConfig plain = base_config(seed);
    const auto plain_result = run_ga(spec, fitness, plain);
    const auto [p1, p2] = peak_census(plain_result.final_population);

    GaConfig niched = base_config(seed);
    niched.niching.enabled = true;
    niched.niching.share_radius = 0.2;
    const auto niched_result = run_ga(spec, fitness, niched);
    const auto [n1, n2] = peak_census(niched_result.final_population);

    if (p1 >= 5 && p2 >= 5) ++plain_both;
    if (n1 >= 5 && n2 >= 5) ++niched_both;
  }
  // Niching must retain both peaks at least as often as the plain GA, and
  // must do so in the majority of seeds.
  EXPECT_GE(niched_both, plain_both);
  EXPECT_GE(niched_both, 3);
}

TEST(Niching, DoesNotHurtPeakQuality) {
  const GenomeSpec spec({{0.0, 1.0}});
  const auto fitness = [](const Genome& g, std::uint64_t) { return two_peaks(g); };
  GaConfig config = base_config(3);
  config.niching.enabled = true;
  const auto result = run_ga(spec, fitness, config);
  EXPECT_GT(result.best.fitness, 0.95) << "niching must still climb the peaks";
}

TEST(Niching, DisabledMatchesPlainGaExactly) {
  const GenomeSpec spec({{0.0, 1.0}, {0.0, 1.0}});
  const auto fitness = [](const Genome& g, std::uint64_t) { return g[0] + g[1]; };
  GaConfig a = base_config(9);
  GaConfig b = base_config(9);
  b.niching.enabled = false;  // explicit, same as default
  const auto ra = run_ga(spec, fitness, a);
  const auto rb = run_ga(spec, fitness, b);
  EXPECT_EQ(ra.fitness_by_evaluation, rb.fitness_by_evaluation);
}

TEST(Niching, ElitismStillUsesRawFitness) {
  // The crowded best individual must survive even when sharing discounts
  // its neighborhood: elitism operates on raw fitness.
  const GenomeSpec spec({{0.0, 1.0}});
  const auto fitness = [](const Genome& g, std::uint64_t) { return two_peaks(g); };
  GaConfig config = base_config(5);
  config.niching.enabled = true;
  const auto result = run_ga(spec, fitness, config);
  for (std::size_t g = 1; g < result.generations.size(); ++g) {
    EXPECT_GE(result.generations[g].max_fitness,
              result.generations[g - 1].max_fitness - 1e-12);
  }
}

}  // namespace
}  // namespace cav::ga
