// Belief-aware (QMDP-style) logic tests: degenerate equivalence with the
// point-estimate logic, convexity of the averaged costs, uncertainty-
// driven behaviour differences, and closed-loop value under degraded
// surveillance.
#include "acasx/belief_logic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/belief_cas.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

AircraftTrack track(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

class BeliefTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const LogicTable>(
        std::make_shared<const LogicTable>(solve_logic_table(AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static std::shared_ptr<const LogicTable>* table_;
};

std::shared_ptr<const LogicTable>* BeliefTest::table_ = nullptr;

TEST_F(BeliefTest, ZeroSigmaReducesToPointEstimateLogic) {
  BeliefConfig degenerate;
  degenerate.h_sigma_ft = 0.0;
  degenerate.dh_int_sigma_fps = 0.0;
  BeliefAwareLogic belief(*table_, degenerate);
  AcasXuLogic point(*table_);

  // Sweep a family of geometries and demand identical advisories and costs.
  for (double x = 2500.0; x > 200.0; x -= 150.0) {
    for (double dz : {-80.0, -20.0, 0.0, 20.0, 80.0}) {
      const auto own = track(0, 0, 1000, 40, 0, 0);
      const auto intr = track(x, 0, 1000 + dz, -40, 0, dz > 0 ? -2.0 : 2.0);
      const Advisory a = point.decide(own, intr);
      const Advisory b = belief.decide(own, intr);
      ASSERT_EQ(a, b) << "x=" << x << " dz=" << dz;
      for (std::size_t i = 0; i < kNumAdvisories; ++i) {
        ASSERT_NEAR(point.last_costs()[i], belief.last_costs()[i], 1e-9);
      }
    }
  }
}

TEST_F(BeliefTest, AveragedCostsAreConvexCombinations) {
  BeliefConfig config;
  config.h_sigma_ft = 100.0;
  config.dh_int_sigma_fps = 5.0;
  BeliefAwareLogic belief(*table_, config);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1015, -40, 0, -1.0);
  belief.decide(own, intr);

  // Recompute the extreme sigma-point costs by hand and bracket.
  const double h = 1015.0 - 1000.0;
  const double h_ft = h * 3.280839895;
  const double spread_h = std::sqrt(3.0) * config.h_sigma_ft;
  const double spread_v = std::sqrt(3.0) * config.dh_int_sigma_fps;
  const double tau = belief.last_tau().tau_s;
  for (std::size_t a = 0; a < kNumAdvisories; ++a) {
    double lo = 1e30;
    double hi = -1e30;
    for (const double hp : {h_ft - spread_h, h_ft, h_ft + spread_h}) {
      for (const double vp : {-3.280839895 - spread_v, -3.280839895, -3.280839895 + spread_v}) {
        const auto costs = (*table_)->action_costs(tau, hp, 0.0, vp, Advisory::kCoc);
        lo = std::min(lo, costs[a]);
        hi = std::max(hi, costs[a]);
      }
    }
    EXPECT_GE(belief.last_costs()[a], lo - 1e-6);
    EXPECT_LE(belief.last_costs()[a], hi + 1e-6);
  }
}

TEST_F(BeliefTest, FarTrafficStillCoc) {
  BeliefAwareLogic belief(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(30000, 0, 1000, -40, 0, 0);
  EXPECT_EQ(belief.decide(own, intr), Advisory::kCoc);
}

TEST_F(BeliefTest, CoordinationMaskRespected) {
  // Close geometry (tau ~ 9 s) where alerting survives the belief smear:
  // near the alert/no-alert boundary the averaged costs legitimately tip
  // back to COC (see UncertaintyChangesCommitmentNearAmbiguity).
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(900, 0, 1000, -40, 0, 0);
  BeliefAwareLogic free_logic(*table_);
  const Advisory unconstrained = free_logic.decide(own, intr);
  ASSERT_NE(unconstrained, Advisory::kCoc);
  BeliefAwareLogic constrained(*table_);
  const Advisory forced = constrained.decide(own, intr, sense_of(unconstrained));
  EXPECT_NE(sense_of(forced), sense_of(unconstrained));
}

TEST_F(BeliefTest, UncertaintyChangesCommitmentNearAmbiguity) {
  // Near-ambiguous geometry (small |h|): the belief average smears the
  // sharp sense preference, so across a sweep of small offsets the two
  // logics must disagree somewhere (otherwise the belief adds nothing).
  BeliefConfig config;
  config.h_sigma_ft = 150.0;
  config.dh_int_sigma_fps = 6.0;
  int disagreements = 0;
  for (double dz = -30.0; dz <= 30.0; dz += 5.0) {
    AcasXuLogic point(*table_);
    BeliefAwareLogic belief(*table_, config);
    const auto own = track(0, 0, 1000, 40, 0, 0);
    const auto intr = track(1100, 0, 1000 + dz, -40, 0, 0);
    if (point.decide(own, intr) != belief.decide(own, intr)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST_F(BeliefTest, RejectsInvalidConfig) {
  BeliefConfig bad;
  bad.h_sigma_ft = -1.0;
  EXPECT_THROW(BeliefAwareLogic(*table_, bad), ContractViolation);
  EXPECT_THROW(BeliefAwareLogic(nullptr), ContractViolation);
}

TEST_F(BeliefTest, ResetClearsAdvisory) {
  BeliefAwareLogic belief(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(900, 0, 1000, -40, 0, 0);
  ASSERT_NE(belief.decide(own, intr), Advisory::kCoc);
  belief.reset();
  EXPECT_EQ(belief.current_advisory(), Advisory::kCoc);
}

TEST_F(BeliefTest, ModerateBeliefClosedLoopNotLessSafe) {
  // Closed-loop property (E9(g) quantifies the full sweep): a belief sigma
  // in the order of the actual sensor noise keeps head-on resolution at
  // least as safe as the point-estimate logic.
  core::FitnessConfig config;
  config.runs_per_encounter = 60;
  config.sim.adsb.vertical_pos_sigma_m = 30.0;

  acasx::BeliefConfig belief;
  belief.h_sigma_ft = 80.0;

  const core::EncounterEvaluator point_eval(config, sim::AcasXuCas::factory(*table_),
                                            sim::AcasXuCas::factory(*table_));
  const core::EncounterEvaluator belief_eval(
      config, sim::BeliefAcasXuCas::factory(*table_, belief),
      sim::BeliefAcasXuCas::factory(*table_, belief));

  const auto point_result = point_eval.evaluate(encounter::head_on(), 9);
  const auto belief_result = belief_eval.evaluate(encounter::head_on(), 9);
  EXPECT_LE(belief_result.nmac_count, point_result.nmac_count + 2);
}

TEST_F(BeliefTest, OversizedBeliefSuppressesAlertGradient) {
  // The documented failure mode of naive QMDP-style averaging: smear the
  // belief far beyond the table's structure and the maneuver-vs-COC
  // gradient washes out, so the logic stops alerting on a genuine
  // co-altitude collision course.
  acasx::BeliefConfig oversized;
  oversized.h_sigma_ft = 500.0;
  oversized.dh_int_sigma_fps = 20.0;
  BeliefAwareLogic smeared(*table_, oversized);
  AcasXuLogic point(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  int point_alerts = 0;
  int smeared_alerts = 0;
  for (double x = 1500.0; x > 300.0; x -= 80.0) {
    const auto intr = track(x, 0, 1000, -40, 0, 0);
    if (point.decide(own, intr) != Advisory::kCoc) ++point_alerts;
    if (smeared.decide(own, intr) != Advisory::kCoc) ++smeared_alerts;
  }
  EXPECT_GT(point_alerts, 0);
  EXPECT_LT(smeared_alerts, point_alerts);
}

}  // namespace
}  // namespace cav::acasx
