#include "util/grid.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace cav {
namespace {

TEST(UniformAxis, BasicProperties) {
  const UniformAxis axis(-10.0, 10.0, 21);
  EXPECT_DOUBLE_EQ(axis.lo(), -10.0);
  EXPECT_DOUBLE_EQ(axis.hi(), 10.0);
  EXPECT_DOUBLE_EQ(axis.step(), 1.0);
  EXPECT_EQ(axis.count(), 21U);
  EXPECT_DOUBLE_EQ(axis.value(0), -10.0);
  EXPECT_DOUBLE_EQ(axis.value(10), 0.0);
  EXPECT_DOUBLE_EQ(axis.value(20), 10.0);
}

TEST(UniformAxis, RejectsDegenerate) {
  EXPECT_THROW(UniformAxis(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(UniformAxis(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(UniformAxis(2.0, 1.0, 5), std::invalid_argument);
}

TEST(UniformAxis, NearestClamping) {
  const UniformAxis axis(0.0, 10.0, 11);
  EXPECT_EQ(axis.nearest(-100.0), 0U);
  EXPECT_EQ(axis.nearest(100.0), 10U);
  EXPECT_EQ(axis.nearest(4.4), 4U);
  EXPECT_EQ(axis.nearest(4.6), 5U);
}

TEST(UniformAxis, BracketInterior) {
  const UniformAxis axis(0.0, 10.0, 11);
  const auto b = axis.bracket(3.25);
  EXPECT_EQ(b.index, 3U);
  EXPECT_NEAR(b.frac, 0.25, 1e-12);
}

TEST(UniformAxis, BracketClampsOutside) {
  const UniformAxis axis(0.0, 10.0, 11);
  const auto lo = axis.bracket(-5.0);
  EXPECT_EQ(lo.index, 0U);
  EXPECT_DOUBLE_EQ(lo.frac, 0.0);
  const auto hi = axis.bracket(25.0);
  EXPECT_EQ(hi.index, 9U);
  EXPECT_DOUBLE_EQ(hi.frac, 1.0);
}

class Grid3Test : public ::testing::Test {
 protected:
  GridN<3> grid_{std::array<UniformAxis, 3>{UniformAxis(0.0, 4.0, 5), UniformAxis(-2.0, 2.0, 5),
                                            UniformAxis(0.0, 1.0, 3)}};
};

TEST_F(Grid3Test, SizeAndIndexRoundTrip) {
  EXPECT_EQ(grid_.size(), 5U * 5U * 3U);
  for (std::size_t flat = 0; flat < grid_.size(); ++flat) {
    EXPECT_EQ(grid_.flat_index(grid_.unflatten(flat)), flat);
  }
}

TEST_F(Grid3Test, ScatterWeightsSumToOne) {
  RngStream rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::array<double, 3> p{rng.uniform(-1.0, 5.0), rng.uniform(-3.0, 3.0),
                                  rng.uniform(-0.5, 1.5)};
    const auto verts = grid_.scatter(p);
    double sum = 0.0;
    for (const auto& v : verts) {
      EXPECT_GT(v.weight, 0.0);
      EXPECT_LT(v.flat, grid_.size());
      sum += v.weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST_F(Grid3Test, ScatterOnVertexIsSinglePoint) {
  const std::array<std::size_t, 3> idx{2, 3, 1};
  const auto verts = grid_.scatter(grid_.point(idx));
  ASSERT_EQ(verts.size(), 1U);
  EXPECT_EQ(verts[0].flat, grid_.flat_index(idx));
  EXPECT_DOUBLE_EQ(verts[0].weight, 1.0);
}

TEST_F(Grid3Test, InterpolationExactOnVertices) {
  std::vector<double> values(grid_.size());
  RngStream rng(10);
  for (auto& v : values) v = rng.uniform(-5.0, 5.0);
  for (std::size_t flat = 0; flat < grid_.size(); ++flat) {
    const auto p = grid_.point(grid_.unflatten(flat));
    EXPECT_NEAR(grid_.interpolate(values, p), values[flat], 1e-12);
  }
}

TEST_F(Grid3Test, InterpolationReproducesLinearFunctions) {
  // Multilinear interpolation is exact for f = a + b*x + c*y + d*z.
  const auto f = [](const std::array<double, 3>& p) {
    return 1.5 + 2.0 * p[0] - 3.0 * p[1] + 0.5 * p[2];
  };
  std::vector<double> values(grid_.size());
  for (std::size_t flat = 0; flat < grid_.size(); ++flat) {
    values[flat] = f(grid_.point(grid_.unflatten(flat)));
  }
  RngStream rng(11);
  for (int i = 0; i < 300; ++i) {
    const std::array<double, 3> p{rng.uniform(0.0, 4.0), rng.uniform(-2.0, 2.0),
                                  rng.uniform(0.0, 1.0)};
    EXPECT_NEAR(grid_.interpolate(values, p), f(p), 1e-9);
  }
}

TEST_F(Grid3Test, InterpolationClampsOutside) {
  std::vector<double> values(grid_.size(), 0.0);
  // Mark the (0, *, *) face.
  for (std::size_t flat = 0; flat < grid_.size(); ++flat) {
    if (grid_.unflatten(flat)[0] == 0) values[flat] = 7.0;
  }
  // Far left of the axis: should read the clamped face value.
  EXPECT_NEAR(grid_.interpolate(values, {-100.0, 0.0, 0.5}), 7.0, 1e-12);
}

TEST(Grid1, OneDimensionalInterpolation) {
  GridN<1> grid{std::array<UniformAxis, 1>{UniformAxis(0.0, 10.0, 11)}};
  std::vector<double> values(grid.size());
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i * i);
  EXPECT_NEAR(grid.interpolate(values, {3.5}), (9.0 + 16.0) / 2.0, 1e-12);
}

/// Property sweep: interpolation stays within [min, max] of vertex values
/// (convex combination) across random value sets and query points.
class GridConvexityTest : public ::testing::TestWithParam<int> {};

TEST_P(GridConvexityTest, InterpolationIsConvexCombination) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()));
  GridN<2> grid{std::array<UniformAxis, 2>{UniformAxis(0.0, 1.0, 4), UniformAxis(0.0, 1.0, 6)}};
  std::vector<double> values(grid.size());
  double lo = 1e30;
  double hi = -1e30;
  for (auto& v : values) {
    v = rng.uniform(-10.0, 10.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (int i = 0; i < 100; ++i) {
    const double q =
        grid.interpolate(values, {rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5)});
    EXPECT_GE(q, lo - 1e-9);
    EXPECT_LE(q, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridConvexityTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace cav
