// GA engine tests on analytic fitness landscapes (sphere, Rastrigin-like)
// where improvement and determinism can be asserted exactly.
#include "ga/ga.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/expect.h"

namespace cav::ga {
namespace {

GenomeSpec box_spec(std::size_t n, double lo, double hi) {
  return GenomeSpec(std::vector<GeneBounds>(n, GeneBounds{lo, hi}));
}

/// Maximized at the origin (value 0), negative elsewhere.
double neg_sphere(const Genome& g) {
  double s = 0.0;
  for (const double x : g) s -= x * x;
  return s;
}

/// Multimodal: negative Rastrigin, maximized at the origin.
double neg_rastrigin(const Genome& g) {
  double s = -10.0 * static_cast<double>(g.size());
  for (const double x : g) s -= x * x - 10.0 * std::cos(2.0 * 3.14159265358979 * x);
  return s;
}

GaConfig small_config(std::size_t pop = 40, std::size_t gens = 15) {
  GaConfig config;
  config.population_size = pop;
  config.generations = gens;
  config.seed = 7;
  return config;
}

TEST(Ga, ImprovesOnSphere) {
  const GenomeSpec spec = box_spec(4, -10.0, 10.0);
  const auto result = run_ga(
      spec, [](const Genome& g, std::uint64_t) { return neg_sphere(g); }, small_config());
  EXPECT_GT(result.best.fitness, result.generations.front().max_fitness - 1e-12);
  EXPECT_GT(result.generations.back().max_fitness, result.generations.front().max_fitness);
  EXPECT_GT(result.best.fitness, -5.0);  // near the optimum of 0
}

TEST(Ga, MeanFitnessRises) {
  const GenomeSpec spec = box_spec(3, -5.0, 5.0);
  const auto result = run_ga(
      spec, [](const Genome& g, std::uint64_t) { return neg_sphere(g); }, small_config());
  EXPECT_GT(result.generations.back().mean_fitness, result.generations.front().mean_fitness);
}

TEST(Ga, HandlesMultimodalLandscape) {
  const GenomeSpec spec = box_spec(2, -5.12, 5.12);
  const auto result = run_ga(
      spec, [](const Genome& g, std::uint64_t) { return neg_rastrigin(g); },
      small_config(60, 25));
  EXPECT_GT(result.best.fitness, -15.0);  // found a good basin
}

TEST(Ga, ElitismKeepsBestMonotone) {
  const GenomeSpec spec = box_spec(3, -10.0, 10.0);
  GaConfig config = small_config();
  config.elites = 2;
  const auto result = run_ga(
      spec, [](const Genome& g, std::uint64_t) { return neg_sphere(g); }, config);
  for (std::size_t g = 1; g < result.generations.size(); ++g) {
    EXPECT_GE(result.generations[g].max_fitness, result.generations[g - 1].max_fitness - 1e-12)
        << "elitism must never lose the best individual";
  }
}

TEST(Ga, TelemetryShapes) {
  const GenomeSpec spec = box_spec(2, 0.0, 1.0);
  GaConfig config = small_config(10, 4);
  const auto result = run_ga(
      spec, [](const Genome& g, std::uint64_t) { return g[0] + g[1]; }, config);
  EXPECT_EQ(result.generations.size(), 4U);
  EXPECT_EQ(result.final_population.size(), 10U);
  // Evaluations: full population in gen 0, pop-elites afterwards.
  EXPECT_EQ(result.total_evaluations, 10U + 3U * (10U - config.elites));
  EXPECT_EQ(result.fitness_by_evaluation.size(), result.total_evaluations);
}

TEST(Ga, DeterministicForSameSeed) {
  const GenomeSpec spec = box_spec(3, -1.0, 1.0);
  const auto fitness = [](const Genome& g, std::uint64_t) { return neg_sphere(g); };
  const auto a = run_ga(spec, fitness, small_config());
  const auto b = run_ga(spec, fitness, small_config());
  EXPECT_EQ(a.best.genome, b.best.genome);
  EXPECT_EQ(a.fitness_by_evaluation, b.fitness_by_evaluation);
}

TEST(Ga, DifferentSeedsDiffer) {
  const GenomeSpec spec = box_spec(3, -1.0, 1.0);
  const auto fitness = [](const Genome& g, std::uint64_t) { return neg_sphere(g); };
  GaConfig c1 = small_config();
  GaConfig c2 = small_config();
  c2.seed = 8;
  const auto a = run_ga(spec, fitness, c1);
  const auto b = run_ga(spec, fitness, c2);
  EXPECT_NE(a.fitness_by_evaluation, b.fitness_by_evaluation);
}

TEST(Ga, ParallelEvaluationMatchesSerial) {
  const GenomeSpec spec = box_spec(4, -3.0, 3.0);
  // The fitness must be deterministic in (genome, eval index) for this to
  // hold; that is the library's documented contract.
  const auto fitness = [](const Genome& g, std::uint64_t idx) {
    return neg_sphere(g) + static_cast<double>(idx % 3) * 1e-9;
  };
  const auto serial = run_ga(spec, fitness, small_config());
  ThreadPool pool(8);
  const auto parallel = run_ga(spec, fitness, small_config(), &pool);
  EXPECT_EQ(serial.fitness_by_evaluation, parallel.fitness_by_evaluation);
  EXPECT_EQ(serial.best.genome, parallel.best.genome);
}

TEST(Ga, GenerationCallbackFires) {
  const GenomeSpec spec = box_spec(1, 0.0, 1.0);
  GaConfig config = small_config(8, 5);
  std::size_t calls = 0;
  run_ga(
      spec, [](const Genome& g, std::uint64_t) { return g[0]; }, config, nullptr,
      [&calls](const GenerationStats& s) {
        EXPECT_EQ(s.generation, calls);
        ++calls;
      });
  EXPECT_EQ(calls, 5U);
}

TEST(Ga, EvalIndicesAreSequentialAndUnique) {
  const GenomeSpec spec = box_spec(1, 0.0, 1.0);
  GaConfig config = small_config(12, 3);
  std::vector<std::uint64_t> seen;
  std::mutex mutex;
  run_ga(
      spec,
      [&](const Genome&, std::uint64_t idx) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(idx);
        return 0.0;
      },
      config);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i);
  }
}

TEST(Ga, RejectsDegenerateConfigs) {
  const GenomeSpec spec = box_spec(2, 0.0, 1.0);
  const auto fitness = [](const Genome&, std::uint64_t) { return 0.0; };
  GaConfig bad = small_config();
  bad.population_size = 1;
  EXPECT_THROW(run_ga(spec, fitness, bad), ContractViolation);
  GaConfig bad2 = small_config();
  bad2.elites = bad2.population_size;
  EXPECT_THROW(run_ga(spec, fitness, bad2), ContractViolation);
  EXPECT_THROW(run_ga(GenomeSpec{}, fitness, small_config()), ContractViolation);
}

TEST(RandomSearch, BudgetAndTelemetry) {
  const GenomeSpec spec = box_spec(2, -1.0, 1.0);
  const auto result = run_random_search(
      spec, [](const Genome& g, std::uint64_t) { return neg_sphere(g); }, 250, 3);
  EXPECT_EQ(result.total_evaluations, 250U);
  EXPECT_EQ(result.fitness_by_evaluation.size(), 250U);
  EXPECT_EQ(result.final_population.size(), 250U);
  EXPECT_GE(result.best.fitness, -2.0);  // 250 uniform draws get close-ish
}

TEST(RandomSearch, DeterministicPerSeed) {
  const GenomeSpec spec = box_spec(2, -1.0, 1.0);
  const auto fitness = [](const Genome& g, std::uint64_t) { return neg_sphere(g); };
  const auto a = run_random_search(spec, fitness, 100, 5);
  const auto b = run_random_search(spec, fitness, 100, 5);
  EXPECT_EQ(a.best.genome, b.best.genome);
}

TEST(GaVsRandom, GaWinsOnSmoothLandscapeWithEqualBudget) {
  // The paper's claim (via [7]): GA finds high-fitness regions faster than
  // random search.  On a smooth landscape with a matched budget the GA's
  // best must beat random search's best across seeds (majority vote to
  // absorb stochastic flukes).
  const GenomeSpec spec = box_spec(6, -10.0, 10.0);
  const auto fitness = [](const Genome& g, std::uint64_t) { return neg_sphere(g); };
  int ga_wins = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    GaConfig config;
    config.population_size = 30;
    config.generations = 10;
    config.seed = seed;
    const auto ga_result = run_ga(spec, fitness, config);
    const auto rs_result =
        run_random_search(spec, fitness, ga_result.total_evaluations, seed);
    if (ga_result.best.fitness > rs_result.best.fitness) ++ga_wins;
  }
  EXPECT_GE(ga_wins, 4);
}

}  // namespace
}  // namespace cav::ga
