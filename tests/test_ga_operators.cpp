#include "ga/operators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/expect.h"

namespace cav::ga {
namespace {

GenomeSpec unit_spec(std::size_t n) {
  return GenomeSpec(std::vector<GeneBounds>(n, GeneBounds{0.0, 1.0}));
}

std::vector<Individual> ramp_population(std::size_t n) {
  std::vector<Individual> pop(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop[i].genome = {static_cast<double>(i)};
    pop[i].fitness = static_cast<double>(i);  // individual i has fitness i
    pop[i].evaluated = true;
  }
  return pop;
}

TEST(GenomeSpec, SampleWithinBounds) {
  GenomeSpec spec({{0.0, 1.0}, {-5.0, 5.0}, {100.0, 200.0}});
  RngStream rng(1);
  for (int i = 0; i < 200; ++i) {
    const Genome g = spec.sample(rng);
    EXPECT_TRUE(spec.contains(g));
  }
}

TEST(GenomeSpec, ClampPullsIntoBounds) {
  GenomeSpec spec({{0.0, 1.0}, {0.0, 1.0}});
  Genome g{-0.5, 1.5};
  spec.clamp(g);
  EXPECT_EQ(g, (Genome{0.0, 1.0}));
}

TEST(GenomeSpec, RejectsInvertedBounds) {
  EXPECT_THROW(GenomeSpec({{1.0, 0.0}}), ContractViolation);
}

TEST(Selection, TournamentPrefersFitter) {
  const auto pop = ramp_population(50);
  SelectionConfig config;
  config.tournament_size = 4;
  RngStream rng(2);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += pop[select_parent(pop, config, rng)].fitness;
  }
  // Expected max of 4 uniform picks from 0..49 is ~39; demand well above
  // the uniform mean of 24.5.
  EXPECT_GT(sum / n, 33.0);
}

TEST(Selection, LargerTournamentsSelectHarder) {
  const auto pop = ramp_population(50);
  RngStream rng(3);
  const auto mean_fitness = [&](std::size_t k) {
    SelectionConfig config;
    config.tournament_size = k;
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) sum += pop[select_parent(pop, config, rng)].fitness;
    return sum / 4000.0;
  };
  EXPECT_LT(mean_fitness(1), mean_fitness(2));
  EXPECT_LT(mean_fitness(2), mean_fitness(6));
}

TEST(Selection, RoulettePrefersFitter) {
  const auto pop = ramp_population(20);
  SelectionConfig config;
  config.type = SelectionType::kRoulette;
  RngStream rng(4);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += pop[select_parent(pop, config, rng)].fitness;
  EXPECT_GT(sum / n, 11.0);  // uniform mean would be 9.5
}

TEST(Selection, RouletteHandlesNegativeFitness) {
  auto pop = ramp_population(10);
  for (auto& ind : pop) ind.fitness -= 100.0;  // all negative
  SelectionConfig config;
  config.type = SelectionType::kRoulette;
  RngStream rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::size_t s = select_parent(pop, config, rng);
    EXPECT_LT(s, pop.size());
  }
}

TEST(Selection, EmptyPopulationRejected) {
  const std::vector<Individual> empty;
  RngStream rng(6);
  EXPECT_THROW(select_parent(empty, {}, rng), ContractViolation);
}

TEST(Crossover, OnePointPreservesPrefixSuffix) {
  const Genome a{1, 1, 1, 1, 1, 1};
  const Genome b{2, 2, 2, 2, 2, 2};
  CrossoverConfig config;
  config.type = CrossoverType::kOnePoint;
  config.probability = 1.0;
  RngStream rng(7);
  Genome c1;
  Genome c2;
  crossover(a, b, c1, c2, config, rng);
  // Each child must be a prefix of one parent and suffix of the other.
  int switches1 = 0;
  for (std::size_t i = 1; i < c1.size(); ++i) {
    if (c1[i] != c1[i - 1]) ++switches1;
  }
  EXPECT_LE(switches1, 1);
  // Gene-wise, children are a permutation of parents.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(c1[i] + c2[i], 3.0);
  }
}

TEST(Crossover, TwoPointSwapsMiddle) {
  const Genome a{1, 1, 1, 1, 1, 1, 1, 1};
  const Genome b{2, 2, 2, 2, 2, 2, 2, 2};
  CrossoverConfig config;
  config.type = CrossoverType::kTwoPoint;
  config.probability = 1.0;
  RngStream rng(8);
  Genome c1;
  Genome c2;
  crossover(a, b, c1, c2, config, rng);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c1[i] + c2[i], 3.0);
  int switches = 0;
  for (std::size_t i = 1; i < c1.size(); ++i) {
    if (c1[i] != c1[i - 1]) ++switches;
  }
  EXPECT_LE(switches, 2);
}

TEST(Crossover, UniformGeneWiseComplement) {
  const Genome a{1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const Genome b{2, 2, 2, 2, 2, 2, 2, 2, 2, 2};
  CrossoverConfig config;
  config.type = CrossoverType::kUniform;
  config.probability = 1.0;
  RngStream rng(9);
  Genome c1;
  Genome c2;
  crossover(a, b, c1, c2, config, rng);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c1[i] + c2[i], 3.0);
}

TEST(Crossover, BlendStaysInExpandedInterval) {
  const Genome a{0.0, 10.0};
  const Genome b{1.0, 20.0};
  CrossoverConfig config;
  config.type = CrossoverType::kBlend;
  config.probability = 1.0;
  config.blend_alpha = 0.5;
  RngStream rng(10);
  for (int i = 0; i < 100; ++i) {
    Genome c1;
    Genome c2;
    crossover(a, b, c1, c2, config, rng);
    EXPECT_GE(c1[0], -0.5);
    EXPECT_LE(c1[0], 1.5);
    EXPECT_GE(c1[1], 5.0);
    EXPECT_LE(c1[1], 25.0);
  }
}

TEST(Crossover, ZeroProbabilityCopiesParents) {
  const Genome a{1, 2, 3};
  const Genome b{4, 5, 6};
  CrossoverConfig config;
  config.probability = 0.0;
  RngStream rng(11);
  Genome c1;
  Genome c2;
  crossover(a, b, c1, c2, config, rng);
  EXPECT_EQ(c1, a);
  EXPECT_EQ(c2, b);
}

TEST(Crossover, MismatchedParentsRejected) {
  RngStream rng(12);
  Genome c1;
  Genome c2;
  EXPECT_THROW(crossover({1.0}, {1.0, 2.0}, c1, c2, {}, rng), ContractViolation);
}

TEST(Mutation, RespectsGeneProbability) {
  const GenomeSpec spec = unit_spec(1000);
  MutationConfig config;
  config.gene_probability = 0.1;
  config.reset_probability = 0.0;
  config.gaussian_sigma_frac = 0.05;
  RngStream rng(13);
  Genome g(1000, 0.5);
  mutate(g, spec, config, rng);
  int changed = 0;
  for (const double x : g) {
    if (x != 0.5) ++changed;
  }
  EXPECT_NEAR(changed / 1000.0, 0.1, 0.04);
}

TEST(Mutation, AlwaysClampsToBounds) {
  const GenomeSpec spec = unit_spec(50);
  MutationConfig config;
  config.gene_probability = 1.0;
  config.gaussian_sigma_frac = 10.0;  // violent
  RngStream rng(14);
  for (int i = 0; i < 50; ++i) {
    Genome g(50, 0.5);
    mutate(g, spec, config, rng);
    EXPECT_TRUE(spec.contains(g));
  }
}

TEST(Mutation, ZeroProbabilityIsIdentity) {
  const GenomeSpec spec = unit_spec(10);
  MutationConfig config;
  config.gene_probability = 0.0;
  RngStream rng(15);
  Genome g(10, 0.25);
  const Genome before = g;
  mutate(g, spec, config, rng);
  EXPECT_EQ(g, before);
}

TEST(Mutation, ResetDrawsUniform) {
  const GenomeSpec spec = unit_spec(1);
  MutationConfig config;
  config.gene_probability = 1.0;
  config.reset_probability = 1.0;
  RngStream rng(16);
  std::set<double> seen;
  for (int i = 0; i < 50; ++i) {
    Genome g{0.5};
    mutate(g, spec, config, rng);
    seen.insert(g[0]);
  }
  EXPECT_GT(seen.size(), 45U);  // essentially always a fresh uniform value
}

}  // namespace
}  // namespace cav::ga
