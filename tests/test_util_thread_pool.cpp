#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cav {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10007;  // prime, not divisible by chunking
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(16);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, SequentialParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 10L * (99L * 100L / 2L));
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1U);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // The same computation on 1 and 8 threads must agree (determinism of the
  // work itself; scheduling must not matter).
  const std::size_t n = 1000;
  std::vector<double> out1(n);
  std::vector<double> out8(n);
  {
    ThreadPool pool(1);
    pool.parallel_for(n, [&out1](std::size_t i) { out1[i] = static_cast<double>(i) * 1.5; });
  }
  {
    ThreadPool pool(8);
    pool.parallel_for(n, [&out8](std::size_t i) { out8[i] = static_cast<double>(i) * 1.5; });
  }
  EXPECT_EQ(out1, out8);
}

TEST(ThreadPool, ParallelForRangesCoversEveryIndexOnce) {
  // Ranges must tile [0, n) exactly: every index visited once, no overlap,
  // for sizes around the chunking boundaries.
  for (const std::size_t n : {0UL, 1UL, 7UL, 64UL, 1000UL}) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> visits(n);
    for (auto& v : visits) v.store(0);
    pool.parallel_for_ranges(n, [&visits](std::size_t begin, std::size_t end) {
      ASSERT_LE(begin, end);
      for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " of n=" << n;
    }
  }
}

TEST(ThreadPool, ParallelForRangesSupportsPerRangePartials) {
  // The pattern the solvers rely on: chunk-local accumulation with one
  // shared combine per range.
  const std::size_t n = 500;
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  pool.parallel_for_ranges(n, [&total](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace cav
