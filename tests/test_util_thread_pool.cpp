#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cav {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10007;  // prime, not divisible by chunking
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSmallerThanPool) {
  ThreadPool pool(16);
  std::atomic<int> counter{0};
  pool.parallel_for(3, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, SequentialParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  }
  EXPECT_EQ(sum.load(), 10L * (99L * 100L / 2L));
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThreadCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1U);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // The same computation on 1 and 8 threads must agree (determinism of the
  // work itself; scheduling must not matter).
  const std::size_t n = 1000;
  std::vector<double> out1(n);
  std::vector<double> out8(n);
  {
    ThreadPool pool(1);
    pool.parallel_for(n, [&out1](std::size_t i) { out1[i] = static_cast<double>(i) * 1.5; });
  }
  {
    ThreadPool pool(8);
    pool.parallel_for(n, [&out8](std::size_t i) { out8[i] = static_cast<double>(i) * 1.5; });
  }
  EXPECT_EQ(out1, out8);
}

TEST(ThreadPool, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace cav
