// Randomized cross-module property sweeps: invariants that must hold for
// EVERY collision avoidance system across arbitrary encounter geometries,
// and simulation-level invariants across random scenarios.  These are the
// fuzz-style guards for the validation framework itself: the GA will
// wander into weird corners of the space, and nothing there may crash,
// emit NaNs, or violate basic physics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "acasx/offline_solver.h"
#include "baselines/svo.h"
#include "baselines/tcas_like.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "encounter/statistical_model.h"
#include "sim/acasx_cas.h"
#include "sim/belief_cas.h"
#include "sim/simulation.h"

namespace cav {
namespace {

class PropertySweepTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }

  static std::vector<sim::CasFactory> all_systems() {
    return {
        sim::AcasXuCas::factory(*table_),
        sim::BeliefAcasXuCas::factory(*table_),
        baselines::TcasLikeCas::factory(),
        baselines::SvoCas::factory(),
    };
  }

  static std::shared_ptr<const acasx::LogicTable>* table_;
};

std::shared_ptr<const acasx::LogicTable>* PropertySweepTest::table_ = nullptr;

TEST_P(PropertySweepTest, DecisionsAreAlwaysWellFormed) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()));
  const encounter::ParamRanges ranges = encounter::monte_carlo_ranges();

  for (auto& factory : all_systems()) {
    auto cas = factory();
    for (int i = 0; i < 40; ++i) {
      const auto params = ranges.sample_uniform(rng);
      const auto init = encounter::generate_initial_states(params);
      const acasx::AircraftTrack own{init.own.position_m, init.own.velocity_mps()};
      const acasx::AircraftTrack intr{init.intruder.position_m, init.intruder.velocity_mps()};
      const auto decision = cas->decide(own, intr, acasx::Sense::kNone);

      ASSERT_TRUE(std::isfinite(decision.target_vs_mps)) << cas->name();
      ASSERT_TRUE(std::isfinite(decision.accel_mps2)) << cas->name();
      ASSERT_FALSE(decision.label.empty()) << cas->name();
      if (decision.maneuver) {
        ASSERT_NE(decision.sense, acasx::Sense::kNone) << cas->name();
        ASSERT_GE(decision.accel_mps2, 0.0) << cas->name();
        // A climb sense must not command a descent and vice versa.
        if (decision.sense == acasx::Sense::kClimb) {
          ASSERT_GE(decision.target_vs_mps, -1e-9) << cas->name();
        } else {
          ASSERT_LE(decision.target_vs_mps, 1e-9) << cas->name();
        }
      } else {
        ASSERT_EQ(decision.sense, acasx::Sense::kNone) << cas->name();
      }
    }
  }
}

TEST_P(PropertySweepTest, CoordinationConstraintIsNeverViolated) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const encounter::ParamRanges ranges;
  for (auto& factory : all_systems()) {
    for (const auto forbidden : {acasx::Sense::kClimb, acasx::Sense::kDescend}) {
      auto cas = factory();
      for (int i = 0; i < 25; ++i) {
        const auto params = ranges.sample_uniform(rng);
        const auto init = encounter::generate_initial_states(params);
        const acasx::AircraftTrack own{init.own.position_m, init.own.velocity_mps()};
        const acasx::AircraftTrack intr{init.intruder.position_m, init.intruder.velocity_mps()};
        const auto decision = cas->decide(own, intr, forbidden);
        ASSERT_NE(decision.sense, forbidden)
            << cas->name() << " violated the coordination constraint";
      }
    }
  }
}

TEST_P(PropertySweepTest, SimulationInvariants) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const encounter::ParamRanges ranges = encounter::monte_carlo_ranges();
  const auto params = ranges.sample_uniform(rng);
  const auto init = encounter::generate_initial_states(params);

  sim::SimConfig config;
  config.max_time_s = params.t_cpa_s + 30.0;
  config.record_trajectory = true;

  sim::AgentSetup own;
  own.initial_state = init.own;
  own.cas = std::make_unique<sim::AcasXuCas>(*table_);
  sim::AgentSetup intruder;
  intruder.initial_state = init.intruder;
  intruder.cas = std::make_unique<sim::AcasXuCas>(*table_);
  const auto result = sim::run_encounter(config, std::move(own), std::move(intruder),
                                         static_cast<std::uint64_t>(GetParam()));

  ASSERT_TRUE(std::isfinite(result.proximity.min_distance_m));
  ASSERT_GE(result.proximity.min_distance_m, 0.0);
  ASSERT_GE(result.proximity.min_horizontal_m, 0.0);
  ASSERT_GE(result.proximity.min_vertical_m, 0.0);
  // Component minima can never exceed the 3-D minimum's components.
  ASSERT_LE(result.proximity.min_horizontal_m, result.proximity.min_distance_m + 1e-9);
  ASSERT_LE(result.proximity.min_vertical_m, result.proximity.min_distance_m + 1e-9);
  ASSERT_NEAR(result.elapsed_s, config.max_time_s, config.dt_dynamics_s);
  if (result.nmac) {
    ASSERT_GE(result.nmac_time_s, 0.0);
    ASSERT_LE(result.nmac_time_s, result.elapsed_s);
  }

  // Trajectory physics: nobody teleports between decision cycles.
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    const auto& prev = result.trajectory[i - 1];
    const auto& cur = result.trajectory[i];
    const double dt = cur.t_s - prev.t_s;
    ASSERT_GT(dt, 0.0);
    // Max speed: generous bound from ground speed cap + vertical cap.
    const double own_step = distance(cur.own_position_m, prev.own_position_m);
    ASSERT_LT(own_step, (80.0 + 13.0) * dt + 1.0) << "own-ship teleported";
  }
}

TEST_P(PropertySweepTest, FitnessEvaluatorDeterministicUnderThreading) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const auto params = encounter::ParamRanges{}.sample_uniform(rng);

  core::FitnessConfig config;
  config.runs_per_encounter = 12;
  const core::EncounterEvaluator evaluator(config, sim::AcasXuCas::factory(*table_),
                                           sim::AcasXuCas::factory(*table_));
  const auto first = evaluator.evaluate(params, 7);
  const auto second = evaluator.evaluate(params, 7);
  ASSERT_EQ(first.fitness, second.fitness);
  ASSERT_EQ(first.nmac_count, second.nmac_count);
  ASSERT_EQ(first.mean_miss_m, second.mean_miss_m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace cav
