// Sharded-campaign driver tests against REAL cav_worker processes: the
// merged rates must be bit-identical to the in-process run, including
// through worker death (abrupt exit and wedged-worker deadlines), and the
// campaign must never hang.
//
// The worker binary is resolved next to this test binary (both land in
// the build root); the death tests drive the worker's env knobs
// (CAV_WORKER_EXIT_AFTER_STRIPES / CAV_WORKER_HANG_AFTER_STRIPES), which
// fork+exec'd children inherit from us.
#include "dist/campaign_driver.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>

#include <string>

#include "core/monte_carlo.h"
#include "core/validation_campaign.h"
#include "dist/spec_codec.h"

namespace cav::dist {
namespace {

/// Scoped env var: set on construction, unset on destruction (the knobs
/// must not leak into later tests' worker fleets).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

CampaignSpec small_spec(std::size_t encounters = 48) {
  CampaignSpec spec;
  spec.config.encounters = encounters;
  spec.config.seed = 23;
  spec.system_name = "tcas-sharded";
  spec.own_cas = CasSpec::tcas_like();
  spec.intruder_cas = CasSpec::tcas_like();
  return spec;
}

core::SystemRates in_process_rates(const CampaignSpec& spec) {
  return materialize_campaign(spec).run().rates;
}

void expect_rates_identical(const core::SystemRates& a, const core::SystemRates& b) {
  EXPECT_EQ(a.encounters, b.encounters);
  EXPECT_EQ(a.nmacs, b.nmacs);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.mean_min_separation_m, b.mean_min_separation_m) << "must match bit for bit";
}

TEST(DistCampaignTest, TwoWorkersMatchSingleProcessBitIdentically) {
  const CampaignSpec spec = small_spec();
  const core::SystemRates expected = in_process_rates(spec);

  CampaignDriverOptions options;
  options.num_workers = 2;
  options.stripes_per_worker = 3;
  std::size_t results_seen = 0;
  options.on_result = [&results_seen](std::size_t done, std::size_t) { results_seen = done; };

  const core::CampaignResult sharded = run_sharded_campaign(spec, options);
  expect_rates_identical(sharded.rates, expected);
  EXPECT_FALSE(sharded.degraded) << "healthy fleet must not degrade";
  EXPECT_EQ(sharded.requeues, 0u);
  EXPECT_EQ(sharded.work_units, results_seen);
  EXPECT_GT(sharded.work_units, 1u);
}

TEST(DistCampaignTest, SingleWorkerOptionRunsInProcess) {
  const CampaignSpec spec = small_spec(24);
  CampaignDriverOptions options;
  options.num_workers = 1;
  const core::CampaignResult result = run_sharded_campaign(spec, options);
  expect_rates_identical(result.rates, in_process_rates(spec));
  EXPECT_FALSE(result.degraded);
}

TEST(DistCampaignTest, AbruptWorkerDeathRequeuesAndStaysBitIdentical) {
  // Every worker dies (as abruptly as SIGKILL: _exit without flushing)
  // after serving one stripe.  Respawns burn down, then the driver drains
  // in-process — the rates must come out identical anyway.
  const ScopedEnv knob("CAV_WORKER_EXIT_AFTER_STRIPES", "1");
  const CampaignSpec spec = small_spec();
  const core::SystemRates expected = in_process_rates(spec);

  CampaignDriverOptions options;
  options.num_workers = 2;
  options.stripes_per_worker = 4;
  options.max_respawns = 2;

  const core::CampaignResult sharded = run_sharded_campaign(spec, options);
  expect_rates_identical(sharded.rates, expected);
  EXPECT_TRUE(sharded.degraded);
  EXPECT_GT(sharded.requeues, 0u);
  EXPECT_FALSE(sharded.notes.empty());
}

TEST(DistCampaignTest, ExternallyKilledWorkerIsRecovered) {
  // SIGKILL the first worker the moment it spawns: its setup/stripe is
  // lost mid-flight and must be requeued without perturbing the rates.
  const CampaignSpec spec = small_spec();
  const core::SystemRates expected = in_process_rates(spec);

  CampaignDriverOptions options;
  options.num_workers = 2;
  options.stripes_per_worker = 3;
  bool killed_one = false;
  options.on_spawn = [&killed_one](pid_t pid) {
    if (!killed_one) {
      killed_one = true;
      ::kill(pid, SIGKILL);
    }
  };

  const core::CampaignResult sharded = run_sharded_campaign(spec, options);
  expect_rates_identical(sharded.rates, expected);
  EXPECT_TRUE(sharded.degraded);
}

TEST(DistCampaignTest, WedgedWorkerHitsDeadlineAndCampaignCompletes) {
  // Workers serve one stripe then stop answering.  Without the deadline
  // the campaign would hang forever; with it, wedged workers are killed,
  // their stripes requeued, and the campaign completes bit-identically.
  const ScopedEnv knob("CAV_WORKER_HANG_AFTER_STRIPES", "1");
  const CampaignSpec spec = small_spec(32);
  const core::SystemRates expected = in_process_rates(spec);

  CampaignDriverOptions options;
  options.num_workers = 2;
  options.stripes_per_worker = 3;
  options.stripe_deadline_s = 0.5;
  options.max_respawns = 1;

  const core::CampaignResult sharded = run_sharded_campaign(spec, options);
  expect_rates_identical(sharded.rates, expected);
  EXPECT_TRUE(sharded.degraded);
  EXPECT_GT(sharded.requeues, 0u);
}

TEST(DistCampaignTest, UnspawnableWorkerBinaryFallsBackInProcess) {
  // A bad worker path must degrade to the in-process path, not throw and
  // not hang.
  const CampaignSpec spec = small_spec(16);
  CampaignDriverOptions options;
  options.num_workers = 2;
  options.worker_path = "/nonexistent/cav_worker";
  const core::CampaignResult result = run_sharded_campaign(spec, options);
  expect_rates_identical(result.rates, in_process_rates(spec));
  EXPECT_TRUE(result.degraded);
}

TEST(DistCampaignTest, MixedCasSpecsAcrossTheWire) {
  // SVO own-ship vs unequipped intruders: exercises a second CasSpec kind
  // end-to-end through worker materialization.
  CampaignSpec spec = small_spec(32);
  spec.system_name = "svo-vs-unequipped";
  spec.own_cas = CasSpec::svo();
  spec.intruder_cas = CasSpec::unequipped();

  CampaignDriverOptions options;
  options.num_workers = 2;
  const core::CampaignResult sharded = run_sharded_campaign(spec, options);
  expect_rates_identical(sharded.rates, in_process_rates(spec));
}

}  // namespace
}  // namespace cav::dist
