// Parallel logical-process determinism sweep (the `scale` ctest tier).
//
// The LP contract (LpConfig, airspace.h) says any AirspaceConfig::parallel
// setting is bit-identical to the serial engine: same trajectories, same
// per-pair minima, same reports, same RNG draw sequences.  This file
// attacks the contract from the directions the per-scenario equivalence
// tests do not: randomized K/geometry/fault-profile clouds, the composed
// {serial, 1-LP, N-LP} × {pool thread counts} matrix, agent-order
// permutations under LP partitions, and the acceptance-scale city run at
// K=256.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "acasx/offline_solver.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "util/thread_pool.h"

namespace cav {
namespace {

// Full-strength comparison: one reordered draw, one float reduction in a
// different order, or one pair merged out of canonical order fails it.
void expect_identical(const sim::SimResult& a, const sim::SimResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
  EXPECT_EQ(a.proximity.min_horizontal_m, b.proximity.min_horizontal_m);
  EXPECT_EQ(a.proximity.min_vertical_m, b.proximity.min_vertical_m);
  EXPECT_EQ(a.proximity.time_of_min_distance_s, b.proximity.time_of_min_distance_s);
  EXPECT_EQ(a.nmac, b.nmac);
  EXPECT_EQ(a.nmac_time_s, b.nmac_time_s);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
  EXPECT_EQ(a.stats.fine_agent_steps, b.stats.fine_agent_steps);
  EXPECT_EQ(a.stats.coarse_agent_steps, b.stats.coarse_agent_steps);
  EXPECT_EQ(a.stats.fault_events, b.stats.fault_events);
  EXPECT_EQ(a.stats.pair_updates, b.stats.pair_updates);
  EXPECT_EQ(a.stats.monitored_pairs, b.stats.monitored_pairs);
  EXPECT_EQ(a.stats.peak_active_pairs, b.stats.peak_active_pairs);

  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t p = 0; p < a.pairs.size(); ++p) {
    ASSERT_EQ(a.pairs[p].a, b.pairs[p].a) << p;
    ASSERT_EQ(a.pairs[p].b, b.pairs[p].b) << p;
    EXPECT_EQ(a.pairs[p].proximity.min_distance_m, b.pairs[p].proximity.min_distance_m) << p;
    EXPECT_EQ(a.pairs[p].proximity.time_of_min_distance_s,
              b.pairs[p].proximity.time_of_min_distance_s)
        << p;
    EXPECT_EQ(a.pairs[p].nmac, b.pairs[p].nmac) << p;
    EXPECT_EQ(a.pairs[p].nmac_time_s, b.pairs[p].nmac_time_s) << p;
  }

  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].ever_alerted, b.agents[i].ever_alerted) << i;
    EXPECT_EQ(a.agents[i].first_alert_time_s, b.agents[i].first_alert_time_s) << i;
    EXPECT_EQ(a.agents[i].alert_cycles, b.agents[i].alert_cycles) << i;
    EXPECT_EQ(a.agents[i].reversals, b.agents[i].reversals) << i;
    EXPECT_EQ(a.agents[i].final_advisory, b.agents[i].final_advisory) << i;
  }

  ASSERT_EQ(a.multi_trajectory.size(), b.multi_trajectory.size());
  for (std::size_t s = 0; s < a.multi_trajectory.size(); ++s) {
    ASSERT_EQ(a.multi_trajectory[s].t_s, b.multi_trajectory[s].t_s) << s;
    ASSERT_EQ(a.multi_trajectory[s].position_m.size(), b.multi_trajectory[s].position_m.size());
    for (std::size_t i = 0; i < a.multi_trajectory[s].position_m.size(); ++i) {
      ASSERT_EQ(a.multi_trajectory[s].position_m[i].x, b.multi_trajectory[s].position_m[i].x)
          << "sample " << s << " aircraft " << i;
      ASSERT_EQ(a.multi_trajectory[s].position_m[i].y, b.multi_trajectory[s].position_m[i].y)
          << "sample " << s << " aircraft " << i;
      ASSERT_EQ(a.multi_trajectory[s].position_m[i].z, b.multi_trajectory[s].position_m[i].z)
          << "sample " << s << " aircraft " << i;
      ASSERT_EQ(a.multi_trajectory[s].vs_mps[i], b.multi_trajectory[s].vs_mps[i]) << s;
      ASSERT_EQ(a.multi_trajectory[s].advisory[i], b.multi_trajectory[s].advisory[i]) << s;
    }
  }
}

class ParallelScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(
        std::make_shared<const acasx::LogicTable>(
            acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static sim::CasFactory equipped() { return sim::AcasXuCas::factory(*table_); }
  static std::shared_ptr<const acasx::LogicTable>* table_;
};

std::shared_ptr<const acasx::LogicTable>* ParallelScaleTest::table_ = nullptr;

sim::AirspaceConfig with_lps(sim::AirspaceConfig base, int num_lps, ThreadPool* pool) {
  base.parallel.num_lps = num_lps;
  base.parallel.pool = pool;
  return base;
}

TEST_F(ParallelScaleTest, RandomizedCloudsAreLpAndThreadCountInvariant) {
  // A deterministic fuzz cloud: every case draws its aircraft count,
  // geometry family, fault profile, and equipage from one generator, then
  // the whole {1, 2, 5 LP} × {1-thread, 3-thread pool} matrix must
  // reproduce the serial run bit for bit.
  std::mt19937_64 gen(20260807);
  ThreadPool one_thread(1);
  ThreadPool three_threads(3);

  for (int c = 0; c < 6; ++c) {
    const std::size_t k = 3 + gen() % 10;  // 3..12 aircraft
    const std::uint64_t geo_seed = gen();
    const std::uint64_t sim_seed = gen();
    const int family = static_cast<int>(gen() % 3);
    const scenarios::Scenario scenario =
        family == 0   ? scenarios::converging_ring(k)
        : family == 1 ? scenarios::high_density_random(k, geo_seed)
                      : scenarios::city_corridors(16 + 4 * k, geo_seed);

    sim::SimConfig config;
    config.record_trajectory = true;
    config.max_time_s = 45.0;
    if (family == 2) config.airspace.interaction_radius_m = 2000.0;

    // Fault axes: none / blackout windows / the full degraded stack.
    const int fault = static_cast<int>(gen() % 3);
    if (fault >= 1) {
      const double start = 5.0 + static_cast<double>(gen() % 20);
      config.fault.comms_blackouts.push_back({start, start + 8.0});
      // A second, zero-length window: schedules nothing, changes nothing.
      config.fault.comms_blackouts.push_back({start + 1.0, start + 1.0});
    }
    if (fault == 2) {
      config.fault.adsb_dropout_burst_prob = 0.15;
      config.fault.adsb_burst_continue_prob = 0.5;
      config.fault.adsb_position_bias_m = {4.0, -3.0, 1.5};
      config.fault.track_staleness_horizon_s = 12.0;
      config.coordination.message_loss_prob = 0.1;
    }

    // Equipage: all equipped, or own-only (intruders silently flying
    // their plan — the cas == nullptr skip in the surveillance phase).
    const bool mixed = gen() % 2 == 0;
    const sim::CasFactory own = equipped();
    const sim::CasFactory intruder = mixed ? sim::CasFactory{} : equipped();

    const std::string label = "case " + std::to_string(c) + " family " +
                              std::to_string(family) + " k " + std::to_string(k) + " fault " +
                              std::to_string(fault) + (mixed ? " mixed" : " equipped");
    const sim::SimResult serial =
        scenarios::run_scenario(scenario, config, own, intruder, sim_seed);
    for (const int num_lps : {1, 2, 5}) {
      for (ThreadPool* pool : {&one_thread, &three_threads}) {
        sim::SimConfig parallel_config = config;
        parallel_config.airspace = with_lps(config.airspace, num_lps, pool);
        const sim::SimResult parallel =
            scenarios::run_scenario(scenario, parallel_config, own, intruder, sim_seed);
        expect_identical(serial, parallel,
                         label + " lps " + std::to_string(num_lps) + " threads " +
                             std::to_string(pool->thread_count()));
      }
    }
  }
}

TEST_F(ParallelScaleTest, CityCorridors256IsLpInvariant) {
  // The acceptance-scale run: city_corridors K=256 under full default
  // noise, fully equipped, serial vs 2 and 4 LPs on a 4-thread pool.
  const scenarios::Scenario city = scenarios::city_corridors(256, 2016);
  sim::SimConfig config;
  config.airspace.interaction_radius_m = 2000.0;
  const sim::SimResult serial =
      scenarios::run_scenario(city, config, equipped(), equipped(), 13);
  ThreadPool pool(4);
  for (const int num_lps : {2, 4}) {
    sim::SimConfig parallel_config = config;
    parallel_config.airspace = with_lps(config.airspace, num_lps, &pool);
    const sim::SimResult parallel =
        scenarios::run_scenario(city, parallel_config, equipped(), equipped(), 13);
    expect_identical(serial, parallel, "city-256 lps " + std::to_string(num_lps));
  }
}

TEST_F(ParallelScaleTest, AgentOrderPermutationCommutesWithLpPartition) {
  // Permuting the agent vector permutes the LP ownership of every
  // aircraft (both the index stripes and the grid columns they fall in).
  // In the quiet unequipped configuration each trajectory is independent
  // of order, so order-independent aggregates must survive permutation ×
  // LP partition simultaneously.
  const scenarios::Scenario city = scenarios::city_corridors(64, 5);
  ThreadPool pool(3);
  auto run_with = [&](bool reversed, int num_lps) {
    std::vector<sim::UavState> states = city.initial_states();
    if (reversed) std::reverse(states.begin(), states.end());
    std::vector<sim::AgentSetup> agents(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) agents[i].initial_state = states[i];
    sim::SimConfig config;
    config.airspace.interaction_radius_m = 2000.0;
    config.airspace.parallel.num_lps = num_lps;
    config.airspace.parallel.pool = num_lps > 1 ? &pool : nullptr;
    config.disturbance = sim::DisturbanceConfig::none();
    config.adsb = sim::AdsbConfig::perfect();
    config.max_time_s = city.suggested_time_s();
    return sim::run_multi_encounter(config, std::move(agents), 5);
  };
  const sim::SimResult reference = run_with(false, 1);
  for (const bool reversed : {false, true}) {
    for (const int num_lps : {3, 4}) {
      const sim::SimResult permuted = run_with(reversed, num_lps);
      SCOPED_TRACE((reversed ? "reversed" : "forward") + std::string(" lps ") +
                   std::to_string(num_lps));
      EXPECT_EQ(reference.proximity.min_distance_m, permuted.proximity.min_distance_m);
      EXPECT_EQ(reference.proximity.min_horizontal_m, permuted.proximity.min_horizontal_m);
      EXPECT_EQ(reference.proximity.min_vertical_m, permuted.proximity.min_vertical_m);
      EXPECT_EQ(reference.nmac, permuted.nmac);
      EXPECT_EQ(reference.nmac_time_s, permuted.nmac_time_s);
      EXPECT_EQ(reference.pairs.size(), permuted.pairs.size());
      EXPECT_EQ(reference.stats.fine_agent_steps, permuted.stats.fine_agent_steps);
      EXPECT_EQ(reference.stats.coarse_agent_steps, permuted.stats.coarse_agent_steps);
      EXPECT_EQ(reference.stats.pair_updates, permuted.stats.pair_updates);
    }
  }
}

TEST_F(ParallelScaleTest, SharedPoolAcrossSimulationsStaysDeterministic) {
  // One pool serving many simulations in sequence (the campaign shape):
  // no state may leak between runs through the pool.
  ThreadPool pool(2);
  const scenarios::Scenario ring = scenarios::converging_ring(6);
  sim::SimConfig config;
  config.record_trajectory = true;
  config.airspace = with_lps(config.airspace, 3, &pool);
  const sim::SimResult first = scenarios::run_scenario(ring, config, equipped(), equipped(), 7);
  const sim::SimResult again = scenarios::run_scenario(ring, config, equipped(), equipped(), 7);
  expect_identical(first, again, "shared-pool repeat");
}

}  // namespace
}  // namespace cav
