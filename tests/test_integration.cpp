// Cross-module integration tests: the full pipeline (table -> simulation ->
// fitness -> search), the paper's headline tail-vs-head-on contrast, and
// failure-injection scenarios exercising the validation framework the way
// §VII uses it.
#include <gtest/gtest.h>

#include <memory>

#include "acasx/offline_solver.h"
#include "baselines/svo.h"
#include "baselines/tcas_like.h"
#include "core/analysis.h"
#include "core/fitness.h"
#include "core/scenario_search.h"
#include "sim/acasx_cas.h"

namespace cav {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
    pool_ = new ThreadPool();
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete table_;
    pool_ = nullptr;
    table_ = nullptr;
  }
  static core::FitnessConfig fitness_config(std::size_t runs = 50) {
    core::FitnessConfig config;
    config.runs_per_encounter = runs;
    return config;
  }
  static sim::CasFactory acas() { return sim::AcasXuCas::factory(*table_); }

  static std::shared_ptr<const acasx::LogicTable>* table_;
  static ThreadPool* pool_;
};

std::shared_ptr<const acasx::LogicTable>* IntegrationTest::table_ = nullptr;
ThreadPool* IntegrationTest::pool_ = nullptr;

TEST_F(IntegrationTest, PaperHeadlineContrast) {
  // §VII: tail approach ~80-90/100 collisions; head-on < 5/100.
  const core::EncounterEvaluator evaluator(fitness_config(100), acas(), acas());
  const auto tail = evaluator.evaluate(encounter::tail_approach(), 1);
  const auto head = evaluator.evaluate(encounter::head_on(), 2);
  EXPECT_GE(tail.nmac_count, 70U);
  EXPECT_LE(head.nmac_count, 5U);
}

TEST_F(IntegrationTest, TailApproachStaysLargelyUnalerted) {
  // The causal mechanism: the tau-based logic stays silent.
  const core::EncounterEvaluator evaluator(fitness_config(), acas(), acas());
  const auto tail = evaluator.evaluate(encounter::tail_approach(), 1);
  EXPECT_LT(tail.alert_fraction_own, 0.3);
  const auto head = evaluator.evaluate(encounter::head_on(), 2);
  EXPECT_GT(head.alert_fraction_own, 0.9);
}

TEST_F(IntegrationTest, ShortSearchSurfacesChallengingGeometry) {
  // A modest GA budget must find encounters with near-maximal fitness
  // (i.e. reliably colliding), reproducing the paper's qualitative result.
  core::ScenarioSearchConfig config;
  config.ga.population_size = 24;
  config.ga.generations = 5;
  config.ga.seed = 11;
  config.fitness.runs_per_encounter = 10;
  const auto result =
      core::search_challenging_scenarios(config, acas(), acas(), pool_);
  EXPECT_GT(result.best_fitness(), 5000.0)
      << "the search must find encounters that mostly end in collisions";
  EXPECT_GE(result.ga.generations.back().mean_fitness,
            result.ga.generations.front().mean_fitness);
}

TEST_F(IntegrationTest, CoordinationAblation) {
  // Disabling coordination must not make head-on encounters safer; with
  // both aircraft free to pick the same sense, resolution can degrade.
  core::FitnessConfig with_coord = fitness_config(100);
  core::FitnessConfig without_coord = fitness_config(100);
  without_coord.sim.coordination.enabled = false;

  const core::EncounterEvaluator coordinated(with_coord, acas(), acas());
  const core::EncounterEvaluator uncoordinated(without_coord, acas(), acas());
  const auto with_c = coordinated.evaluate(encounter::head_on(), 3);
  const auto without_c = uncoordinated.evaluate(encounter::head_on(), 3);
  EXPECT_LE(with_c.nmac_count, without_c.nmac_count + 2)
      << "coordination must not be harmful on the canonical geometry";
}

TEST_F(IntegrationTest, SensorNoiseDegradesTailCaseFurther) {
  // Failure injection: much larger velocity noise makes tau estimates in
  // slow-closure geometry even less reliable; NMAC count must not drop.
  core::FitnessConfig clean = fitness_config(60);
  clean.sim.adsb = sim::AdsbConfig::perfect();
  core::FitnessConfig noisy = fitness_config(60);
  noisy.sim.adsb.horizontal_vel_sigma_mps = 3.0;

  const core::EncounterEvaluator clean_eval(clean, acas(), acas());
  const core::EncounterEvaluator noisy_eval(noisy, acas(), acas());
  const auto tail_clean = clean_eval.evaluate(encounter::tail_approach(), 4);
  const auto tail_noisy = noisy_eval.evaluate(encounter::tail_approach(), 4);
  EXPECT_GE(tail_noisy.nmac_count + 5, tail_clean.nmac_count);
}

TEST_F(IntegrationTest, SearchWorksAgainstBaselines) {
  // The framework is system-agnostic (§V: "the proposed approach is quite
  // general"): plugging SVO or TCAS-like in must work end to end.
  core::ScenarioSearchConfig config;
  config.ga.population_size = 8;
  config.ga.generations = 2;
  config.fitness.runs_per_encounter = 5;

  const auto svo_result = core::search_challenging_scenarios(
      config, baselines::SvoCas::factory(), baselines::SvoCas::factory(), pool_);
  EXPECT_GT(svo_result.best_fitness(), 0.0);

  const auto tcas_result = core::search_challenging_scenarios(
      config, baselines::TcasLikeCas::factory(), baselines::TcasLikeCas::factory(), pool_);
  EXPECT_GT(tcas_result.best_fitness(), 0.0);
}

TEST_F(IntegrationTest, FoundScenariosClassifiable) {
  core::ScenarioSearchConfig config;
  config.ga.population_size = 16;
  config.ga.generations = 4;
  config.ga.seed = 13;
  config.fitness.runs_per_encounter = 10;
  const auto result = core::search_challenging_scenarios(config, acas(), acas(), pool_);
  ASSERT_FALSE(result.top.empty());
  // Every found scenario classifies into a named geometry bucket and
  // renders a human-readable description.
  for (const auto& found : result.top) {
    const auto c = core::classify(found.params);
    EXPECT_FALSE(std::string(core::encounter_class_name(c)).empty());
    EXPECT_FALSE(core::describe(found.params).empty());
  }
}

TEST_F(IntegrationTest, EndToEndDeterminism) {
  // The whole pipeline re-run with identical seeds is bit-identical even
  // with parallel evaluation.
  core::ScenarioSearchConfig config;
  config.ga.population_size = 12;
  config.ga.generations = 3;
  config.ga.seed = 21;
  config.fitness.runs_per_encounter = 8;
  const auto a = core::search_challenging_scenarios(config, acas(), acas(), pool_);
  const auto b = core::search_challenging_scenarios(config, acas(), acas(), pool_);
  EXPECT_EQ(a.ga.fitness_by_evaluation, b.ga.fitness_by_evaluation);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].params.to_array(), b.top[i].params.to_array());
  }
}

TEST_F(IntegrationTest, MixedEquipage) {
  // Equipped own-ship against an unequipped intruder still reduces NMACs
  // relative to both unequipped (single-sided resolution).
  const core::EncounterEvaluator one_sided(fitness_config(100), acas(), {});
  const core::EncounterEvaluator unequipped(fitness_config(100), {}, {});
  const auto one = one_sided.evaluate(encounter::head_on(), 5);
  const auto none = unequipped.evaluate(encounter::head_on(), 5);
  EXPECT_LT(one.nmac_count, none.nmac_count);
  EXPECT_GE(none.nmac_count, 95U) << "unequipped head-on must almost always collide";
}

}  // namespace
}  // namespace cav
