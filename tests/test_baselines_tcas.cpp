#include "baselines/tcas_like.h"

#include <gtest/gtest.h>

#include "util/units.h"

namespace cav::baselines {
namespace {

acasx::AircraftTrack track(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

TEST(TcasLike, SilentOnFarTraffic) {
  TcasLikeCas tcas;
  const auto d = tcas.decide(track(0, 0, 1000, 40, 0, 0), track(20000, 0, 1000, -40, 0, 0),
                             acasx::Sense::kNone);
  EXPECT_FALSE(d.maneuver);
  EXPECT_EQ(d.label, "COC");
}

TEST(TcasLike, SilentOnDivergingTraffic) {
  TcasLikeCas tcas;
  const auto d = tcas.decide(track(0, 0, 1000, 40, 0, 0), track(500, 0, 1000, 40, 0, 0),
                             acasx::Sense::kNone);
  EXPECT_FALSE(d.maneuver);
}

TEST(TcasLike, SilentWhenVerticallyClear) {
  TcasLikeCas tcas;
  // Converging but 800 ft apart vertically with no vertical closure.
  const auto d = tcas.decide(track(0, 0, 1000, 40, 0, 0),
                             track(1200, 0, 1000 + units::ft_to_m(800.0), -40, 0, 0),
                             acasx::Sense::kNone);
  EXPECT_FALSE(d.maneuver);
}

TEST(TcasLike, AlertsInsideRaTau) {
  TcasLikeCas tcas;
  // Co-altitude head-on, tau ~ 13 s < 25 s threshold.
  const auto d = tcas.decide(track(0, 0, 1000, 40, 0, 0), track(1200, 0, 1000, -40, 0, 0),
                             acasx::Sense::kNone);
  EXPECT_TRUE(d.maneuver);
  EXPECT_NE(d.sense, acasx::Sense::kNone);
}

TEST(TcasLike, SenseSelectionPrefersLargerSeparation) {
  TcasLikeCas tcas;
  // Intruder slightly below and climbing: climbing away is the better sense.
  const auto d = tcas.decide(track(0, 0, 1000, 40, 0, 0),
                             track(1200, 0, 1000 - units::ft_to_m(80.0), -40, 0, 1.5),
                             acasx::Sense::kNone);
  ASSERT_TRUE(d.maneuver);
  EXPECT_EQ(d.sense, acasx::Sense::kClimb);
}

TEST(TcasLike, CoordinationOverridesPreferredSense) {
  TcasLikeCas free_tcas;
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1000 - units::ft_to_m(80.0), -40, 0, 1.5);
  const auto preferred = free_tcas.decide(own, intr, acasx::Sense::kNone);
  ASSERT_TRUE(preferred.maneuver);

  TcasLikeCas constrained;
  const auto forced = constrained.decide(own, intr, preferred.sense);
  ASSERT_TRUE(forced.maneuver);
  EXPECT_NE(forced.sense, preferred.sense);
}

TEST(TcasLike, KeepsSenseOnceChosen) {
  TcasLikeCas tcas;
  const auto own = track(0, 0, 1000, 40, 0, 0);
  acasx::Sense first = acasx::Sense::kNone;
  for (double x = 1200.0; x > 200.0; x -= 80.0) {
    const auto d = tcas.decide(own, track(x, 0, 1001, -40, 0, 0), acasx::Sense::kNone);
    if (!d.maneuver) continue;
    if (first == acasx::Sense::kNone) {
      first = d.sense;
    } else {
      EXPECT_EQ(d.sense, first) << "TCAS sense must not flip mid-encounter";
    }
  }
  EXPECT_NE(first, acasx::Sense::kNone);
}

TEST(TcasLike, StrengthensWhenSeparationInsufficient) {
  TcasConfig config;
  TcasLikeCas tcas(config);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  bool saw_strengthened = false;
  // Close fast from co-altitude: late in the encounter ALIM cannot be met
  // at 1500 fpm, so the advisory strengthens to 2500.
  for (double x = 1900.0; x > 150.0; x -= 80.0) {
    const auto d = tcas.decide(own, track(x, 0, 1000, -40, 0, 0), acasx::Sense::kNone);
    if (d.label.find("2500") != std::string::npos) saw_strengthened = true;
  }
  EXPECT_TRUE(saw_strengthened);
}

TEST(TcasLike, ClearsAfterHysteresis) {
  TcasConfig config;
  config.clear_hysteresis_s = 2.0;
  TcasLikeCas tcas(config);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  ASSERT_TRUE(tcas.decide(own, track(1000, 0, 1000, -40, 0, 0), acasx::Sense::kNone).maneuver);
  // Threat gone: after the hysteresis window the RA must drop.
  int cycles_until_clear = 0;
  for (int i = 0; i < 10; ++i) {
    const auto d = tcas.decide(own, track(-5000, 0, 1000, -40, 0, 0), acasx::Sense::kNone);
    ++cycles_until_clear;
    if (!d.maneuver) break;
  }
  EXPECT_LE(cycles_until_clear, 4);
}

TEST(TcasLike, ResetRestoresInitialState) {
  TcasLikeCas tcas;
  const auto own = track(0, 0, 1000, 40, 0, 0);
  ASSERT_TRUE(tcas.decide(own, track(1000, 0, 1000, -40, 0, 0), acasx::Sense::kNone).maneuver);
  tcas.reset();
  const auto d = tcas.decide(own, track(20000, 0, 1000, -40, 0, 0), acasx::Sense::kNone);
  EXPECT_FALSE(d.maneuver);
}

TEST(TcasLike, FactoryProducesIndependentInstances) {
  const auto factory = TcasLikeCas::factory();
  auto a = factory();
  auto b = factory();
  const auto own = track(0, 0, 1000, 40, 0, 0);
  a->decide(own, track(1000, 0, 1000, -40, 0, 0), acasx::Sense::kNone);
  // b has no RA state from a's encounter.
  const auto d = b->decide(own, track(20000, 0, 1000, -40, 0, 0), acasx::Sense::kNone);
  EXPECT_FALSE(d.maneuver);
}

TEST(TcasLike, NameIsStable) {
  TcasLikeCas tcas;
  EXPECT_EQ(tcas.name(), "TCAS-like");
}

}  // namespace
}  // namespace cav::baselines
