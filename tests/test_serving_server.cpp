// PolicyServer (serving/policy_server.h): batch-of-one is bit-identical
// to the single-query table API, batches are invariant to input order,
// sorting and pooling, spans match the array wrappers, image-served f32
// matches in-memory serving bit for bit, and quantized serving's policy
// disagreement stays pinned.
#include "serving/policy_server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "acasx/online_logic.h"
#include "sim/served_cas.h"
#include "util/expect.h"
#include "util/thread_pool.h"

namespace cav::serving {
namespace {

using acasx::AcasXuConfig;
using acasx::JointConfig;
using acasx::JointLogicTable;
using acasx::kNumAdvisories;
using acasx::LogicTable;

acasx::StateSpaceConfig tiny_space() {
  acasx::StateSpaceConfig s;
  s.h_ft = UniformAxis(-800.0, 800.0, 17);
  s.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  s.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  s.tau_max = 16;
  return s;
}

std::vector<TrackQuery> fuzz_pair_queries(const AcasXuConfig& config, std::size_t n,
                                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto axis_span = [&](const UniformAxis& axis) {
    const double pad = 0.2 * (axis.hi() - axis.lo());
    return axis.lo() - pad + u01(rng) * (axis.hi() - axis.lo() + 2.0 * pad);
  };
  std::vector<TrackQuery> queries(n);
  for (auto& q : queries) {
    // tau beyond tau_max exercises the clamp; every integer layer is hit
    // with n >> tau_max.
    q.tau_s = u01(rng) * (static_cast<double>(config.space.tau_max) + 3.0);
    q.h_ft = axis_span(config.space.h_ft);
    q.dh_own_fps = axis_span(config.space.dh_own_fps);
    q.dh_int_fps = axis_span(config.space.dh_int_fps);
    q.ra = static_cast<acasx::Advisory>(rng() % kNumAdvisories);
  }
  return queries;
}

std::vector<JointTrackQuery> fuzz_joint_queries(const JointConfig& config, std::size_t n,
                                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  const auto axis_span = [&](const UniformAxis& axis) {
    const double pad = 0.2 * (axis.hi() - axis.lo());
    return axis.lo() - pad + u01(rng) * (axis.hi() - axis.lo() + 2.0 * pad);
  };
  std::vector<JointTrackQuery> queries(n);
  for (auto& q : queries) {
    q.tau1_s = u01(rng) * (static_cast<double>(config.space.tau_max) + 3.0);
    q.delta_s = u01(rng) * config.secondary.delta_step_s *
                static_cast<double>(config.secondary.num_delta_bins + 1);
    q.h1_ft = axis_span(config.space.h_ft);
    q.dh_own_fps = axis_span(config.space.dh_own_fps);
    q.dh_int1_fps = axis_span(config.space.dh_int_fps);
    q.h2_ft = axis_span(config.secondary.h2_ft);
    q.sense = static_cast<acasx::SecondarySense>(rng() % acasx::kNumSecondarySenses);
    q.ra = static_cast<acasx::Advisory>(rng() % kNumAdvisories);
  }
  return queries;
}

class PolicyServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pair_ = std::make_shared<const LogicTable>(acasx::solve_logic_table(AcasXuConfig::coarse()));
    JointConfig jc;
    jc.space = tiny_space();
    joint_ = std::make_shared<const JointLogicTable>(acasx::solve_joint_table(jc));
    server_ = new PolicyServer(pair_, joint_);

    pair_img_ = ::testing::TempDir() + "serving_server_pair.img";
    joint_img_ = ::testing::TempDir() + "serving_server_joint.img";
    pair_->save(pair_img_);
    joint_->save(joint_img_);
  }
  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    std::remove(pair_img_.c_str());
    std::remove(joint_img_.c_str());
    pair_.reset();
    joint_.reset();
  }

  static std::shared_ptr<const LogicTable> pair_;
  static std::shared_ptr<const JointLogicTable> joint_;
  static PolicyServer* server_;
  static std::string pair_img_;
  static std::string joint_img_;
};

std::shared_ptr<const LogicTable> PolicyServerTest::pair_;
std::shared_ptr<const JointLogicTable> PolicyServerTest::joint_;
PolicyServer* PolicyServerTest::server_ = nullptr;
std::string PolicyServerTest::pair_img_;
std::string PolicyServerTest::joint_img_;

TEST_F(PolicyServerTest, BatchOfOneIsBitIdenticalToSingleQuery) {
  const auto queries = fuzz_pair_queries(pair_->config(), 2000, 11);
  for (const auto& q : queries) {
    std::array<double, kNumAdvisories> batched{};
    server_->action_costs(q, batched);
    const auto single = pair_->action_costs(q.tau_s, q.h_ft, q.dh_own_fps, q.dh_int_fps, q.ra);
    for (std::size_t a = 0; a < kNumAdvisories; ++a) {
      ASSERT_EQ(batched[a], single[a]) << "advisory " << a;  // bitwise, not approx
    }
  }
}

TEST_F(PolicyServerTest, JointBatchOfOneIsBitIdenticalToSingleQuery) {
  const auto queries = fuzz_joint_queries(joint_->config(), 2000, 13);
  for (const auto& q : queries) {
    std::array<double, kNumAdvisories> batched{};
    server_->action_costs(q, batched);
    const auto single = joint_->action_costs(q.tau1_s, q.delta_s, q.h1_ft, q.dh_own_fps,
                                             q.dh_int1_fps, q.h2_ft, q.sense, q.ra);
    for (std::size_t a = 0; a < kNumAdvisories; ++a) {
      ASSERT_EQ(batched[a], single[a]) << "advisory " << a;
    }
  }
}

TEST_F(PolicyServerTest, BatchIsInvariantToOrderSortingAndPooling) {
  const auto queries = fuzz_pair_queries(pair_->config(), 4096, 17);
  std::vector<AdvisoryCosts> reference(queries.size());
  BatchOptions unsorted;
  unsorted.sort_by_cell = CellSort::kOff;
  server_->query_batch(queries, reference, unsorted);

  // Sorted evaluation returns results in input slots.
  std::vector<AdvisoryCosts> sorted_out(queries.size());
  BatchOptions sorted;
  sorted.sort_by_cell = CellSort::kOn;
  server_->query_batch(queries, sorted_out, sorted);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(sorted_out[i].costs, reference[i].costs) << "query " << i;
  }

  // Pool sharding is invisible in the results.
  ThreadPool pool(3);
  BatchOptions pooled;
  pooled.pool = &pool;
  std::vector<AdvisoryCosts> pooled_out(queries.size());
  server_->query_batch(queries, pooled_out, pooled);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(pooled_out[i].costs, reference[i].costs) << "query " << i;
  }

  // Shuffling the input permutes the outputs identically.
  std::vector<std::size_t> perm(queries.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), std::mt19937_64(23));
  std::vector<TrackQuery> shuffled(queries.size());
  for (std::size_t i = 0; i < perm.size(); ++i) shuffled[i] = queries[perm[i]];
  std::vector<AdvisoryCosts> shuffled_out(queries.size());
  server_->query_batch(shuffled, shuffled_out);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    ASSERT_EQ(shuffled_out[i].costs, reference[perm[i]].costs) << "query " << i;
  }
}

TEST_F(PolicyServerTest, SpanOverloadsMatchArrayWrappers) {
  const auto queries = fuzz_pair_queries(pair_->config(), 500, 29);
  for (const auto& q : queries) {
    std::array<double, kNumAdvisories> via_span{};
    pair_->action_costs(q.tau_s, q.h_ft, q.dh_own_fps, q.dh_int_fps, q.ra, via_span);
    const auto via_array = pair_->action_costs(q.tau_s, q.h_ft, q.dh_own_fps, q.dh_int_fps, q.ra);
    EXPECT_EQ(via_span, via_array);
  }
  const auto joint_queries = fuzz_joint_queries(joint_->config(), 500, 31);
  for (const auto& q : joint_queries) {
    std::array<double, kNumAdvisories> via_span{};
    joint_->action_costs(q.tau1_s, q.delta_s, q.h1_ft, q.dh_own_fps, q.dh_int1_fps, q.h2_ft,
                         q.sense, q.ra, via_span);
    const auto via_array = joint_->action_costs(q.tau1_s, q.delta_s, q.h1_ft, q.dh_own_fps,
                                                q.dh_int1_fps, q.h2_ft, q.sense, q.ra);
    EXPECT_EQ(via_span, via_array);
  }
}

TEST_F(PolicyServerTest, ImageServedMatchesInMemoryBitForBit) {
  const PolicyServer mapped = PolicyServer::open(pair_img_, joint_img_);
  EXPECT_EQ(mapped.pairwise_quantization(), Quantization::kNone);
  ASSERT_TRUE(mapped.has_joint());
  ASSERT_NE(mapped.pairwise_table(), nullptr);
  EXPECT_TRUE(mapped.pairwise_table()->is_mapped());

  const auto queries = fuzz_pair_queries(pair_->config(), 4096, 37);
  std::vector<AdvisoryCosts> from_memory(queries.size());
  std::vector<AdvisoryCosts> from_image(queries.size());
  server_->query_batch(queries, from_memory);
  mapped.query_batch(queries, from_image);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(from_image[i].costs, from_memory[i].costs) << "query " << i;
  }

  const auto joint_queries = fuzz_joint_queries(joint_->config(), 4096, 41);
  std::vector<AdvisoryCosts> joint_memory(joint_queries.size());
  std::vector<AdvisoryCosts> joint_image(joint_queries.size());
  server_->query_batch(joint_queries, joint_memory);
  mapped.query_batch(joint_queries, joint_image);
  for (std::size_t i = 0; i < joint_queries.size(); ++i) {
    ASSERT_EQ(joint_image[i].costs, joint_memory[i].costs) << "query " << i;
  }
}

TEST_F(PolicyServerTest, QuantizedServingDisagreementStaysPinned) {
  // Policy-level regression pin: the fraction of fuzz queries whose argmin
  // advisory flips under quantized serving.  Bounds are ~4x the measured
  // coarse-table rates (f16 0%, int8 ~0.1%) so codec regressions trip them
  // while discretization noise does not.
  const auto queries = fuzz_pair_queries(pair_->config(), 20'000, 43);
  std::vector<AdvisoryCosts> reference(queries.size());
  server_->query_batch(queries, reference);

  const struct {
    Quantization quant;
    double max_rate;
  } kPins[] = {{Quantization::kFloat16, 0.002}, {Quantization::kInt8, 0.01}};
  for (const auto& pin : kPins) {
    const std::string path = ::testing::TempDir() + "serving_server_quant.img";
    pair_->save(path, pin.quant);
    const PolicyServer quant_server = PolicyServer::open(path);
    EXPECT_EQ(quant_server.pairwise_quantization(), pin.quant);
    EXPECT_EQ(quant_server.pairwise_table(), nullptr);  // no float table in this mode
    std::vector<AdvisoryCosts> served(queries.size());
    quant_server.query_batch(queries, served);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto ref =
          acasx::select_advisory(reference[i].costs, acasx::Sense::kNone, queries[i].ra);
      const auto got = acasx::select_advisory(served[i].costs, acasx::Sense::kNone, queries[i].ra);
      if (ref != got) ++flips;
    }
    const double rate = static_cast<double>(flips) / static_cast<double>(queries.size());
    EXPECT_LE(rate, pin.max_rate) << "quantization mode " << static_cast<int>(pin.quant);
    std::remove(path.c_str());
  }
}

TEST_F(PolicyServerTest, QuantizedPayloadIsSmaller) {
  const std::string path = ::testing::TempDir() + "serving_server_int8.img";
  pair_->save(path, Quantization::kInt8);
  const PolicyServer quant_server = PolicyServer::open(path);
  const PolicyServer f32_server = PolicyServer::open(pair_img_);
  // int8 payload (1 B/value + per-block scales) must be at most 1/3 of f32.
  EXPECT_LE(3 * quant_server.pairwise_payload_bytes(), f32_server.pairwise_payload_bytes());
  std::remove(path.c_str());
}

TEST_F(PolicyServerTest, ServedCasFactoriesRejectQuantizedServing) {
  const std::string path = ::testing::TempDir() + "serving_server_f16.img";
  pair_->save(path, Quantization::kFloat16);
  const PolicyServer quant_server = PolicyServer::open(path);
  EXPECT_THROW(sim::served_acasx_factory(quant_server), ContractViolation);
  EXPECT_THROW(sim::served_belief_factory(quant_server), ContractViolation);

  // The f32-mapped server wires straight into the CAS adapters.
  const PolicyServer mapped = PolicyServer::open(pair_img_, joint_img_);
  const sim::CasFactory factory = sim::served_acasx_factory(mapped);
  EXPECT_NE(factory(), nullptr);
  std::remove(path.c_str());
}

TEST_F(PolicyServerTest, JointQueriesRequireAJointTable) {
  const PolicyServer pairwise_only = PolicyServer::open(pair_img_);
  EXPECT_FALSE(pairwise_only.has_joint());
  const auto joint_queries = fuzz_joint_queries(joint_->config(), 2, 47);
  std::vector<AdvisoryCosts> out(joint_queries.size());
  EXPECT_THROW(pairwise_only.query_batch(joint_queries, out), ContractViolation);
}

// Pins the kAuto cell-sort heuristic: the sequential sort stays off for
// serial evaluation and a single-worker pool, flips on once two or more
// workers can consume the perfectly-local shards, and the explicit
// settings override the pool size in both directions.
TEST(BatchOptionsHeuristic, AutoSortFollowsPoolSize) {
  BatchOptions options;
  ASSERT_EQ(options.sort_by_cell, CellSort::kAuto);
  EXPECT_FALSE(options.should_sort());

  ThreadPool one(1);
  options.pool = &one;
  EXPECT_FALSE(options.should_sort());

  ThreadPool two(2);
  options.pool = &two;
  EXPECT_TRUE(options.should_sort());

  options.sort_by_cell = CellSort::kOff;
  EXPECT_FALSE(options.should_sort());

  options.sort_by_cell = CellSort::kOn;
  options.pool = nullptr;
  EXPECT_TRUE(options.should_sort());
}

}  // namespace
}  // namespace cav::serving
