// Multi-threat arbitration tests: the converging-ring gap closes under
// ThreatPolicy::kCostFused, the kNearest path stays bit-identical to the
// PR 3 engine, the resolver's gate/severity order and fused selection are
// deterministic under threat-set permutation, the blocking-set veto
// fires (and counts) on squeezed geometries, and the kJointTable policy
// routes the two most severe threats through the joint table with exact
// kCostFused fallbacks (K=1, missing table, inactive secondary).  The
// headline paired-seed ring comparison for kJointTable lives in
// test_joint_policy.cpp (slow tier — it solves the full coarse joint
// table).
#include "sim/multi_threat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/simulation.h"
#include "util/angles.h"

namespace cav::sim {
namespace {

acasx::AircraftTrack track_at(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

ThreatObservation threat_at(int id, const acasx::AircraftTrack& track,
                            const acasx::AircraftTrack& own,
                            acasx::Sense forbidden = acasx::Sense::kNone) {
  ThreatObservation obs;
  obs.aircraft_id = id;
  obs.track = track;
  obs.forbidden_sense = forbidden;
  obs.range_m = distance(track.position_m, own.position_m);
  return obs;
}

/// Cost-capable stub whose per-threat costs depend only on the threat
/// identity — the fused result must then be a pure function of the threat
/// *set*, independent of presentation order.
class FakeCostCas final : public CollisionAvoidanceSystem {
 public:
  CasDecision decide(const acasx::AircraftTrack&, const acasx::AircraftTrack&,
                     acasx::Sense) override {
    return {};
  }
  void reset() override {}
  std::string name() const override { return "fake-cost"; }

  bool evaluate_costs(const acasx::AircraftTrack&, const ThreatObservation& threat,
                      ThreatCosts* out) override {
    out->active = true;
    for (std::size_t a = 0; a < acasx::kNumAdvisories; ++a) {
      // Deterministic pseudo-costs; several ids share values so ties occur.
      out->costs[a] =
          static_cast<double>(((threat.aircraft_id * 7 + static_cast<int>(a) * 13) % 5));
    }
    return true;
  }
  CasDecision commit_fused(const acasx::AircraftTrack&, const ThreatObservation&,
                           acasx::Advisory fused) override {
    committed = fused;
    CasDecision d;
    d.label = acasx::advisory_name(fused);
    d.sense = acasx::sense_of(fused);
    d.maneuver = fused != acasx::Advisory::kCoc;
    return d;
  }

  acasx::Advisory committed = acasx::Advisory::kCoc;
};

/// Decision-only stub that always commands a climb — the fallback path's
/// raw material for blocking-set veto tests.
class AlwaysClimbCas final : public CollisionAvoidanceSystem {
 public:
  CasDecision decide(const acasx::AircraftTrack&, const acasx::AircraftTrack&,
                     acasx::Sense) override {
    CasDecision d;
    d.maneuver = true;
    d.sense = acasx::Sense::kClimb;
    d.target_vs_mps = 7.62;
    d.accel_mps2 = 2.0;
    d.label = "CL1500";
    return d;
  }
  void reset() override {}
  std::string name() const override { return "always-climb"; }
};

/// Sanitizer-affordable joint config: full 100 ft h1 resolution (the NMAC
/// band must stay resolved), minimal rate axes, a coarse secondary.  The
/// full-fidelity JointConfig::coarse() solve lives in the slow tier.
acasx::JointConfig mini_joint_config() {
  acasx::JointConfig c;
  c.space.h_ft = UniformAxis(-800.0, 800.0, 17);
  c.space.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 3);
  c.space.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 3);
  c.space.tau_max = 16;
  c.secondary.h2_ft = UniformAxis(-600.0, 600.0, 7);
  return c;
}

class MultiThreatWithTableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(
        std::make_shared<const acasx::LogicTable>(
            acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
    joint_ = new std::shared_ptr<const acasx::JointLogicTable>(
        std::make_shared<const acasx::JointLogicTable>(
            acasx::solve_joint_table(mini_joint_config())));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete joint_;
    table_ = nullptr;
    joint_ = nullptr;
  }
  static CasFactory equipped() { return AcasXuCas::factory(*table_); }
  static CasFactory joint_equipped() { return AcasXuCas::factory(*table_, {}, {}, {}, *joint_); }
  static std::shared_ptr<const acasx::LogicTable>* table_;
  static std::shared_ptr<const acasx::JointLogicTable>* joint_;
};

std::shared_ptr<const acasx::LogicTable>* MultiThreatWithTableTest::table_ = nullptr;
std::shared_ptr<const acasx::JointLogicTable>* MultiThreatWithTableTest::joint_ = nullptr;

// ---------------------------------------------------------------------------
// The headline: the converging-ring gap E11 exposed closes under kCostFused.

TEST_F(MultiThreatWithTableTest, ConvergingRingK4FusedRecordsFewerNmacs) {
  // All-equipped K=4 ring (the hardest variant: every aircraft maneuvers).
  // Identical traffic and seeds under both policies — a paired comparison;
  // kCostFused must record strictly fewer own-ship NMACs than kNearest.
  const scenarios::Scenario scenario = scenarios::converging_ring(4);
  int nearest_nmacs = 0;
  int fused_nmacs = 0;
  int fused_cycles = 0;
  for (int seed = 1; seed <= 60; ++seed) {
    SimConfig config;  // default noise
    config.threat_policy = ThreatPolicy::kNearest;
    const SimResult nearest =
        scenarios::run_scenario(scenario, config, equipped(), equipped(), seed);
    if (nearest.own_nmac()) ++nearest_nmacs;

    config.threat_policy = ThreatPolicy::kCostFused;
    const SimResult fused =
        scenarios::run_scenario(scenario, config, equipped(), equipped(), seed);
    if (fused.own_nmac()) ++fused_nmacs;
    fused_cycles += fused.own.resolver.fused_cycles;
  }
  EXPECT_GT(nearest_nmacs, 0) << "sanity: the ring is a real multi-threat gap";
  EXPECT_LT(fused_nmacs, nearest_nmacs);
  EXPECT_GT(fused_cycles, 0) << "the cost-fused path actually arbitrated";
}

TEST_F(MultiThreatWithTableTest, ResolverStatsAreReported) {
  const scenarios::Scenario scenario = scenarios::converging_ring(4);
  SimConfig config;
  config.threat_policy = ThreatPolicy::kCostFused;
  const SimResult r = scenarios::run_scenario(scenario, config, equipped(), equipped(), 3);
  const ResolverStats& stats = r.own.resolver;
  EXPECT_GT(stats.cycles, 0);
  EXPECT_GE(stats.threats_considered, stats.cycles);
  EXPECT_EQ(stats.fused_cycles + stats.fallback_cycles, stats.cycles);
  EXPECT_LE(stats.max_threats_in_cycle, 4);
  EXPECT_GE(stats.max_threats_in_cycle, 2) << "the ring gates several threats at once";
  EXPECT_GT(stats.disagreements, 0) << "fusion departed from nearest-threat at least once";
}

// ---------------------------------------------------------------------------
// kNearest stays the PR 3 engine (bit-identity), and single-threat traffic
// is policy-invariant.

TEST_F(MultiThreatWithTableTest, NearestPolicyIsDefaultAndBitIdenticalToWrapper) {
  // The golden-value suite (test_sim_multi.cpp) pins the kNearest numbers
  // to the pre-refactor engine; here we pin that (a) the default SimConfig
  // still selects kNearest and (b) an explicit kNearest multi run equals
  // the 2-aircraft wrapper draw for draw.
  SimConfig config;
  EXPECT_EQ(config.threat_policy, ThreatPolicy::kNearest);
  config.max_time_s = 60.0;

  const auto own_state = [] {
    UavState s;
    s.position_m = {0, 0, 1000};
    s.ground_speed_mps = 40;
    s.bearing_rad = 0;
    return s;
  };
  const auto intruder_state = [] {
    UavState s;
    s.position_m = {3200, 40, 1005};
    s.ground_speed_mps = 40;
    s.bearing_rad = kPi;
    return s;
  };
  const auto make = [&](const UavState& s) {
    AgentSetup a;
    a.initial_state = s;
    a.cas = equipped()();
    return a;
  };

  const SimResult wrapper =
      run_encounter(config, make(own_state()), make(intruder_state()), 41);
  std::vector<AgentSetup> agents;
  agents.push_back(make(own_state()));
  agents.push_back(make(intruder_state()));
  const SimResult multi = run_multi_encounter(config, std::move(agents), 41);

  EXPECT_EQ(wrapper.proximity.min_distance_m, multi.proximity.min_distance_m);
  EXPECT_EQ(wrapper.own.alert_cycles, multi.own.alert_cycles);
  EXPECT_EQ(wrapper.own.first_alert_time_s, multi.own.first_alert_time_s);
  EXPECT_EQ(multi.own.resolver.cycles, 0) << "kNearest never invokes the resolver";
}

TEST_F(MultiThreatWithTableTest, SingleThreatHeadOnIsPolicyInvariant) {
  // With one (benign, co-altitude head-on) threat the fused path reduces to
  // the pairwise evaluation: same tau, same costs, same selection — the
  // outcomes must match the nearest-threat run exactly.
  const scenarios::Scenario scenario = scenarios::head_on(1);
  SimConfig config;
  config.threat_policy = ThreatPolicy::kNearest;
  const SimResult nearest = scenarios::run_scenario(scenario, config, equipped(), equipped(), 9);
  config.threat_policy = ThreatPolicy::kCostFused;
  const SimResult fused = scenarios::run_scenario(scenario, config, equipped(), equipped(), 9);

  EXPECT_EQ(nearest.proximity.min_distance_m, fused.proximity.min_distance_m);
  EXPECT_EQ(nearest.own.alert_cycles, fused.own.alert_cycles);
  EXPECT_EQ(nearest.own.first_alert_time_s, fused.own.first_alert_time_s);
  EXPECT_EQ(nearest.own.reversals, fused.own.reversals);
  EXPECT_FALSE(fused.own_nmac());
}

// ---------------------------------------------------------------------------
// Gate and severity order.

TEST(MultiThreatResolverTest, GateDropsFarDivergingKeepsConvergingBeyondRange) {
  ThreatGateConfig gate;
  gate.range_gate_m = 2000.0;
  MultiThreatResolver resolver(gate);
  const acasx::AircraftTrack own = track_at(0, 0, 1000, 40, 0, 0);

  std::vector<ThreatObservation> threats;
  // Close and converging: kept, most severe.
  threats.push_back(threat_at(1, track_at(1000, 0, 1000, -40, 0, 0), own));
  // Far but converging fast (inside the tau gate): kept by the tau arm.
  threats.push_back(threat_at(2, track_at(4000, 0, 1000, -80, 0, 0), own));
  // Far and flying away: dropped.
  threats.push_back(threat_at(3, track_at(5000, 0, 1000, 40, 0, 0), own));
  // Close but diverging: kept by the range arm (non-converging = least
  // severe, so the CAS can still clear a previously issued advisory).
  threats.push_back(threat_at(4, track_at(1500, 200, 1000, 40, 0, 0), own));

  resolver.gate_and_sort(own, &threats);
  ASSERT_EQ(threats.size(), 3U);
  EXPECT_EQ(threats[0].aircraft_id, 1);
  EXPECT_EQ(threats[1].aircraft_id, 2);
  EXPECT_EQ(threats[2].aircraft_id, 4);
}

TEST(MultiThreatResolverTest, GateTruncatesToMaxThreatsBySeverity) {
  ThreatGateConfig gate;
  gate.max_threats = 2;
  MultiThreatResolver resolver(gate);
  const acasx::AircraftTrack own = track_at(0, 0, 1000, 40, 0, 0);

  std::vector<ThreatObservation> threats;
  for (int id = 1; id <= 5; ++id) {
    threats.push_back(
        threat_at(id, track_at(800.0 * id, 0, 1000, -40, 0, 0), own));
  }
  resolver.gate_and_sort(own, &threats);
  ASSERT_EQ(threats.size(), 2U);
  EXPECT_EQ(threats[0].aircraft_id, 1);
  EXPECT_EQ(threats[1].aircraft_id, 2);
}

// ---------------------------------------------------------------------------
// Deterministic tie-break fuzz: the fused advisory is a function of the
// threat set, not its presentation order or repetition.

TEST(MultiThreatResolverTest, FusedSelectionInvariantUnderPermutation) {
  MultiThreatResolver resolver;
  std::mt19937 rng(2016);
  std::uniform_real_distribution<double> pos(-4000.0, 4000.0);
  std::uniform_real_distribution<double> alt(-150.0, 150.0);
  std::uniform_real_distribution<double> vel(-60.0, 60.0);
  std::uniform_int_distribution<int> count(2, 6);

  for (int round = 0; round < 200; ++round) {
    const acasx::AircraftTrack own = track_at(0, 0, 1000, 40, 0, 0);
    std::vector<ThreatObservation> threats;
    const int k = count(rng);
    for (int id = 1; id <= k; ++id) {
      threats.push_back(threat_at(
          id, track_at(pos(rng), pos(rng), 1000.0 + alt(rng), vel(rng), vel(rng), 0), own));
    }

    std::vector<ThreatObservation> shuffled = threats;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    resolver.gate_and_sort(own, &threats);
    resolver.gate_and_sort(own, &shuffled);
    if (threats.empty()) continue;

    ASSERT_EQ(threats.size(), shuffled.size());
    for (std::size_t i = 0; i < threats.size(); ++i) {
      EXPECT_EQ(threats[i].aircraft_id, shuffled[i].aircraft_id) << "round " << round;
    }

    FakeCostCas a;
    FakeCostCas b;
    ResolverStats stats_a;
    ResolverStats stats_b;
    resolver.resolve(a, own, threats, &stats_a);
    resolver.resolve(b, own, shuffled, &stats_b);
    EXPECT_EQ(a.committed, b.committed) << "round " << round;
    EXPECT_EQ(stats_a.vetoes, stats_b.vetoes);
    EXPECT_EQ(stats_a.disagreements, stats_b.disagreements);

    // Re-resolving the identical set is idempotent in selection.
    FakeCostCas c;
    ResolverStats stats_c;
    resolver.resolve(c, own, threats, &stats_c);
    EXPECT_EQ(a.committed, c.committed);
  }
}

// ---------------------------------------------------------------------------
// Blocking-set veto (fallback path for decision-only systems).

TEST(MultiThreatResolverTest, FallbackVetoFlipsClimbIntoClearDescend) {
  MultiThreatResolver resolver;
  const acasx::AircraftTrack own = track_at(0, 0, 1000, 30, 0, 0);

  // Primary: co-altitude head-on at 600 m (tau ~7.5 s) — the scripted CAS
  // commands a climb against it.  Blocker: head-on at 300 m (tau ~2.5 s),
  // 20 m above: a 1500 ft/min climb ends ~1 m from it at CPA, well inside
  // the blocking band, while a descend clears everything.
  std::vector<ThreatObservation> threats;
  threats.push_back(threat_at(1, track_at(600, 0, 1000, -30, 0, 0), own));
  threats.push_back(threat_at(2, track_at(300, 10, 1020, -30, 0, 0), own));
  resolver.gate_and_sort(own, &threats);
  ASSERT_EQ(threats.size(), 2U);
  EXPECT_EQ(threats[0].aircraft_id, 2) << "the blocker is the more severe threat";

  EXPECT_TRUE(resolver.steers_into(own, acasx::Sense::kClimb, threats[0]));
  EXPECT_FALSE(resolver.steers_into(own, acasx::Sense::kDescend, threats[0]));

  // Re-order so the climb-commanding decision targets the co-altitude
  // primary and the high blocker sits second (direct resolve call).
  std::swap(threats[0], threats[1]);
  AlwaysClimbCas cas;
  ResolverStats stats;
  const CasDecision d = resolver.resolve(cas, own, threats, &stats);
  EXPECT_EQ(stats.fallback_cycles, 1);
  EXPECT_EQ(stats.vetoes, 1);
  EXPECT_EQ(d.sense, acasx::Sense::kDescend);
  EXPECT_LT(d.target_vs_mps, 0.0);
  EXPECT_NE(d.label.find("veto"), std::string::npos);
}

TEST(MultiThreatResolverTest, FallbackKeepsAdvisoryWhenBothSensesBlocked) {
  MultiThreatResolver resolver;
  const acasx::AircraftTrack own = track_at(0, 0, 1000, 30, 0, 0);

  // Squeeze: blockers just above and just below at short tau — neither
  // sense is clear, so the most severe threat's advisory stands.
  std::vector<ThreatObservation> threats;
  threats.push_back(threat_at(1, track_at(600, 0, 1000, -30, 0, 0), own));
  threats.push_back(threat_at(2, track_at(300, 10, 1020, -30, 0, 0), own));
  threats.push_back(threat_at(3, track_at(300, -10, 980, -30, 0, 0), own));

  EXPECT_TRUE(resolver.steers_into(own, acasx::Sense::kClimb, threats[1]));
  EXPECT_TRUE(resolver.steers_into(own, acasx::Sense::kDescend, threats[2]));

  AlwaysClimbCas cas;
  ResolverStats stats;
  const CasDecision d = resolver.resolve(cas, own, threats, &stats);
  EXPECT_EQ(stats.vetoes, 0);
  EXPECT_EQ(d.sense, acasx::Sense::kClimb) << "most severe threat wins the squeeze";
}

// ---------------------------------------------------------------------------
// ThreatPolicy::kJointTable: routing, fallbacks, and policy invariance.

TEST_F(MultiThreatWithTableTest, JointPolicyK1IsBitIdenticalToNearest) {
  // With a single threat the joint query never fires (it needs two gated
  // threats) and the cycle reduces to the pairwise evaluation — the K=1
  // acceptance contract: bit-identical outcomes to kNearest.
  const scenarios::Scenario scenario = scenarios::head_on(1);
  SimConfig config;
  config.threat_policy = ThreatPolicy::kNearest;
  const SimResult nearest =
      scenarios::run_scenario(scenario, config, joint_equipped(), joint_equipped(), 9);
  config.threat_policy = ThreatPolicy::kJointTable;
  const SimResult joint =
      scenarios::run_scenario(scenario, config, joint_equipped(), joint_equipped(), 9);

  EXPECT_EQ(nearest.proximity.min_distance_m, joint.proximity.min_distance_m);
  EXPECT_EQ(nearest.own.alert_cycles, joint.own.alert_cycles);
  EXPECT_EQ(nearest.own.first_alert_time_s, joint.own.first_alert_time_s);
  EXPECT_EQ(nearest.own.reversals, joint.own.reversals);
  EXPECT_EQ(joint.own.resolver.joint_cycles, 0) << "one threat never reaches the joint table";
}

TEST_F(MultiThreatWithTableTest, JointPolicyWithoutJointTableMatchesCostFused) {
  // A CAS that carries no joint table declines every joint query, so the
  // kJointTable policy must reproduce kCostFused exactly.
  const scenarios::Scenario scenario = scenarios::converging_ring(4);
  SimConfig config;
  config.threat_policy = ThreatPolicy::kCostFused;
  const SimResult fused = scenarios::run_scenario(scenario, config, equipped(), equipped(), 7);
  config.threat_policy = ThreatPolicy::kJointTable;
  const SimResult joint = scenarios::run_scenario(scenario, config, equipped(), equipped(), 7);

  EXPECT_EQ(fused.proximity.min_distance_m, joint.proximity.min_distance_m);
  EXPECT_EQ(fused.own.alert_cycles, joint.own.alert_cycles);
  EXPECT_EQ(fused.own.resolver.fused_cycles, joint.own.resolver.fused_cycles);
  EXPECT_EQ(joint.own.resolver.joint_cycles, 0);
}

TEST_F(MultiThreatWithTableTest, JointPolicyArbitratesTheRingThroughTheJointTable) {
  const scenarios::Scenario scenario = scenarios::converging_ring(4);
  SimConfig config;
  config.threat_policy = ThreatPolicy::kJointTable;
  const SimResult r =
      scenarios::run_scenario(scenario, config, joint_equipped(), joint_equipped(), 3);
  const ResolverStats& stats = r.own.resolver;
  EXPECT_GT(stats.joint_cycles, 0) << "the simultaneous ring must reach the joint table";
  EXPECT_EQ(stats.fused_cycles + stats.joint_cycles + stats.fallback_cycles, stats.cycles);
}

TEST_F(MultiThreatWithTableTest, DivergingSecondaryFallsBackToPairwiseAdvisory) {
  // The marginalization contract at the resolver level: when the second
  // threat is not converging (tau = inf, kept by the range arm of the
  // gate), the joint query deactivates and the cycle must fly exactly the
  // pairwise advisory against the primary.
  MultiThreatResolver resolver;
  const acasx::AircraftTrack own = track_at(0, 0, 1000, 30, 0, 0);
  std::vector<ThreatObservation> threats;
  // Primary: converging head-on slightly above.  Secondary: close but
  // flying away (range-gated in, tau = inf).
  threats.push_back(threat_at(1, track_at(600, 0, 1012, -30, 0, 0), own));
  threats.push_back(threat_at(2, track_at(400, 150, 980, 35, 0, 0), own));
  resolver.gate_and_sort(own, &threats);
  ASSERT_EQ(threats.size(), 2U);
  ASSERT_EQ(threats[0].aircraft_id, 1);
  ASSERT_FALSE(threats[1].converging);

  AcasXuCas with_joint(*table_, {}, {}, {}, *joint_);
  ResolverStats stats;
  const CasDecision resolved =
      resolver.resolve(with_joint, own, threats, &stats, ThreatPolicy::kJointTable);
  EXPECT_EQ(stats.joint_cycles, 0);
  EXPECT_EQ(stats.fused_cycles, 1);

  AcasXuCas pairwise_only(*table_);
  const CasDecision pairwise =
      pairwise_only.decide(own, threats[0].track, acasx::Sense::kNone);
  EXPECT_EQ(resolved.label, pairwise.label);
  EXPECT_EQ(resolved.sense, pairwise.sense);
  EXPECT_EQ(resolved.maneuver, pairwise.maneuver);
}

/// FakeCostCas plus a deterministic joint answer: the joint vote depends
/// only on the (unordered) pair of threat ids, so resolver-level results
/// must be pure functions of the threat set under kJointTable too.
class FakeJointCas final : public CollisionAvoidanceSystem {
 public:
  CasDecision decide(const acasx::AircraftTrack&, const acasx::AircraftTrack&,
                     acasx::Sense) override {
    return {};
  }
  void reset() override {}
  std::string name() const override { return "fake-joint"; }

  bool evaluate_costs(const acasx::AircraftTrack&, const ThreatObservation& threat,
                      ThreatCosts* out) override {
    out->active = true;
    for (std::size_t a = 0; a < acasx::kNumAdvisories; ++a) {
      out->costs[a] =
          static_cast<double>(((threat.aircraft_id * 7 + static_cast<int>(a) * 13) % 5));
    }
    return true;
  }
  bool evaluate_joint_costs(const acasx::AircraftTrack&, const ThreatObservation& primary,
                            const ThreatObservation& secondary, ThreatCosts* out) override {
    joint_queries.push_back({primary.aircraft_id, secondary.aircraft_id});
    out->active = true;
    const int key = primary.aircraft_id * secondary.aircraft_id;
    for (std::size_t a = 0; a < acasx::kNumAdvisories; ++a) {
      out->costs[a] = static_cast<double>((key * 3 + static_cast<int>(a) * 11) % 7);
    }
    return true;
  }
  CasDecision commit_fused(const acasx::AircraftTrack&, const ThreatObservation&,
                           acasx::Advisory fused) override {
    committed = fused;
    CasDecision d;
    d.label = acasx::advisory_name(fused);
    d.sense = acasx::sense_of(fused);
    d.maneuver = fused != acasx::Advisory::kCoc;
    return d;
  }

  acasx::Advisory committed = acasx::Advisory::kCoc;
  std::vector<std::pair<int, int>> joint_queries;
};

TEST(MultiThreatResolverTest, JointSelectionInvariantUnderPermutation) {
  MultiThreatResolver resolver;
  std::mt19937 rng(4242);
  std::uniform_real_distribution<double> pos(-4000.0, 4000.0);
  std::uniform_real_distribution<double> alt(-150.0, 150.0);
  std::uniform_real_distribution<double> vel(-60.0, 60.0);
  std::uniform_int_distribution<int> count(2, 6);

  int joint_rounds = 0;
  for (int round = 0; round < 200; ++round) {
    const acasx::AircraftTrack own = track_at(0, 0, 1000, 40, 0, 0);
    std::vector<ThreatObservation> threats;
    const int k = count(rng);
    for (int id = 1; id <= k; ++id) {
      threats.push_back(threat_at(
          id, track_at(pos(rng), pos(rng), 1000.0 + alt(rng), vel(rng), vel(rng), 0), own));
    }
    std::vector<ThreatObservation> shuffled = threats;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    resolver.gate_and_sort(own, &threats);
    resolver.gate_and_sort(own, &shuffled);
    if (threats.empty()) continue;

    FakeJointCas a;
    FakeJointCas b;
    ResolverStats stats_a;
    ResolverStats stats_b;
    resolver.resolve(a, own, threats, &stats_a, ThreatPolicy::kJointTable);
    resolver.resolve(b, own, shuffled, &stats_b, ThreatPolicy::kJointTable);
    EXPECT_EQ(a.committed, b.committed) << "round " << round;
    EXPECT_EQ(a.joint_queries, b.joint_queries) << "round " << round;
    EXPECT_EQ(stats_a.joint_cycles, stats_b.joint_cycles);
    EXPECT_EQ(stats_a.vetoes, stats_b.vetoes);
    if (stats_a.joint_cycles > 0) {
      ++joint_rounds;
      // The joint query targets the two most severe gated threats.
      EXPECT_EQ(a.joint_queries.front().first, threats[0].aircraft_id);
      EXPECT_EQ(a.joint_queries.front().second, threats[1].aircraft_id);
    }
  }
  EXPECT_GT(joint_rounds, 20) << "the fuzz actually exercised the joint path";
}

TEST(MultiThreatResolverTest, FallbackRespectsForbiddenSenseOnFlip) {
  MultiThreatResolver resolver;
  const acasx::AircraftTrack own = track_at(0, 0, 1000, 30, 0, 0);

  // Same geometry as the veto test, but some link has forbidden descend:
  // the flip is off the table and the original climb stands.
  std::vector<ThreatObservation> threats;
  threats.push_back(
      threat_at(1, track_at(600, 0, 1000, -30, 0, 0), own, acasx::Sense::kDescend));
  threats.push_back(threat_at(2, track_at(300, 10, 1020, -30, 0, 0), own));

  AlwaysClimbCas cas;
  ResolverStats stats;
  const CasDecision d = resolver.resolve(cas, own, threats, &stats);
  EXPECT_EQ(stats.vetoes, 0);
  EXPECT_EQ(d.sense, acasx::Sense::kClimb);
}

}  // namespace
}  // namespace cav::sim
