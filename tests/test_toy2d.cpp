// Tests for the §III worked example: model structure matches the paper's
// numbers, the generated logic table avoids collisions, and the closed-loop
// simulation agrees with the model.
#include "toy2d/toy2d_mdp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "toy2d/toy2d_sim.h"
#include "util/expect.h"

namespace cav::toy2d {
namespace {

class Toy2dModelTest : public ::testing::Test {
 protected:
  Config config_;
  Toy2dMdp model_{config_};
};

TEST_F(Toy2dModelTest, StateCountMatchesGrid) {
  // (2*3+1)^2 altitudes x 10 ranges = 490.
  EXPECT_EQ(model_.num_states(), 490U);
  EXPECT_EQ(model_.num_actions(), 3U);
}

TEST_F(Toy2dModelTest, EncodeDecodeRoundTrip) {
  for (int yo = -3; yo <= 3; ++yo) {
    for (int xr = 0; xr <= 9; ++xr) {
      for (int yi = -3; yi <= 3; ++yi) {
        const GridState g{yo, xr, yi};
        EXPECT_EQ(model_.decode(model_.encode(g)), g);
      }
    }
  }
}

TEST_F(Toy2dModelTest, CollisionDefinitionMatchesPaper) {
  // "a collision state (where y_o == y_i and x_r == 0)"
  EXPECT_TRUE(model_.is_collision({2, 0, 2}));
  EXPECT_FALSE(model_.is_collision({2, 0, 1}));
  EXPECT_FALSE(model_.is_collision({2, 1, 2}));
}

TEST_F(Toy2dModelTest, TerminalLayerAndCosts) {
  EXPECT_TRUE(model_.is_terminal(model_.encode({0, 0, 0})));
  EXPECT_FALSE(model_.is_terminal(model_.encode({0, 1, 0})));
  EXPECT_DOUBLE_EQ(model_.terminal_cost(model_.encode({1, 0, 1})), 10000.0);
  EXPECT_DOUBLE_EQ(model_.terminal_cost(model_.encode({1, 0, -1})), 0.0);
}

TEST_F(Toy2dModelTest, ActionCostsMatchPaper) {
  const mdp::State s = model_.encode({0, 5, 0});
  EXPECT_DOUBLE_EQ(model_.cost(s, static_cast<mdp::Action>(Action::kLevel)), -50.0);
  EXPECT_DOUBLE_EQ(model_.cost(s, static_cast<mdp::Action>(Action::kUp)), 100.0);
  EXPECT_DOUBLE_EQ(model_.cost(s, static_cast<mdp::Action>(Action::kDown)), 100.0);
}

TEST_F(Toy2dModelTest, TransitionsSumToOne) {
  std::vector<mdp::Transition> out;
  for (int yo = -3; yo <= 3; ++yo) {
    for (int xr = 1; xr <= 9; ++xr) {
      for (int yi = -3; yi <= 3; ++yi) {
        for (std::size_t a = 0; a < kNumActions; ++a) {
          out.clear();
          model_.transitions(model_.encode({yo, xr, yi}), static_cast<mdp::Action>(a), out);
          double sum = 0.0;
          for (const auto& t : out) {
            EXPECT_GT(t.prob, 0.0);
            sum += t.prob;
            EXPECT_EQ(model_.decode(t.next).x_rel, xr - 1) << "intruder advances one grid";
          }
          EXPECT_NEAR(sum, 1.0, 1e-9);
        }
      }
    }
  }
}

TEST_F(Toy2dModelTest, PaperExampleUpDistribution) {
  // Paper: own-ship at (0,0) choosing "up" lands {(0,0):0.2, (0,1):0.7,
  // (0,-1):0.1}.  Cross the intruder's stay-put probability (0.5) out.
  std::vector<mdp::Transition> out;
  model_.transitions(model_.encode({0, 5, 3}), static_cast<mdp::Action>(Action::kUp), out);
  double p_up = 0.0;
  double p_stay = 0.0;
  double p_down = 0.0;
  for (const auto& t : out) {
    const GridState g = model_.decode(t.next);
    if (g.y_int != 3) continue;  // intruder at the clamped top may merge; take the stay slice
    if (g.y_own == 1) p_up += t.prob;
    if (g.y_own == 0) p_stay += t.prob;
    if (g.y_own == -1) p_down += t.prob;
  }
  // Intruder at the boundary (y=3): moves {0,+1,+2} all clamp to 3, so the
  // conditional own-ship split must still be 0.7 / 0.2 / 0.1.
  const double total = p_up + p_stay + p_down;
  EXPECT_NEAR(p_up / total, 0.7, 1e-9);
  EXPECT_NEAR(p_stay / total, 0.2, 1e-9);
  EXPECT_NEAR(p_down / total, 0.1, 1e-9);
}

TEST_F(Toy2dModelTest, BoundaryClampingMergesMass) {
  // Own at the top choosing "up": intended +1 clamps back to +3.
  std::vector<mdp::Transition> out;
  model_.transitions(model_.encode({3, 5, 0}), static_cast<mdp::Action>(Action::kUp), out);
  double p_stay_top = 0.0;
  for (const auto& t : out) {
    const GridState g = model_.decode(t.next);
    if (g.y_own == 3 && g.y_int == 0) p_stay_top += t.prob;
  }
  // own stays at 3 with prob 0.7 (clamped up) + 0.2 (stay) = 0.9, intruder
  // stays with 0.5 -> 0.45.
  EXPECT_NEAR(p_stay_top, 0.45, 1e-9);
}

TEST_F(Toy2dModelTest, RejectsBadConfig) {
  Config bad;
  bad.own_move_probs = {0.5, 0.5, 0.5};
  EXPECT_THROW(Toy2dMdp{bad}, ContractViolation);
  Config bad2;
  bad2.x_max = 0;
  EXPECT_THROW(Toy2dMdp{bad2}, ContractViolation);
}

class Toy2dPolicyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Toy2dMdp(Config{});
    table_ = new PolicyTable(solve(*model_));
  }
  static void TearDownTestSuite() {
    delete table_;
    delete model_;
    table_ = nullptr;
    model_ = nullptr;
  }
  static Toy2dMdp* model_;
  static PolicyTable* table_;
};

Toy2dMdp* Toy2dPolicyTest::model_ = nullptr;
PolicyTable* Toy2dPolicyTest::table_ = nullptr;

TEST_F(Toy2dPolicyTest, ManeuversWhenCollisionImminent) {
  // Intruder one step away at the same altitude: leveling risks collision
  // (intruder stays with 0.5), so the optimal action is to move.
  EXPECT_NE(table_->action_for({0, 1, 0}), Action::kLevel);
}

TEST_F(Toy2dPolicyTest, LevelsWhenFarAway) {
  // Intruder far away vertically: no collision risk, level-off collects
  // the +50 reward.
  EXPECT_EQ(table_->action_for({3, 9, -3}), Action::kLevel);
  EXPECT_EQ(table_->action_for({-3, 9, 3}), Action::kLevel);
}

TEST_F(Toy2dPolicyTest, ValueMirrorSymmetry) {
  // The model is symmetric under reflecting all altitudes, so values must
  // be too.
  for (int yo = -3; yo <= 3; ++yo) {
    for (int xr = 0; xr <= 9; ++xr) {
      for (int yi = -3; yi <= 3; ++yi) {
        EXPECT_NEAR(table_->value_for({yo, xr, yi}), table_->value_for({-yo, xr, -yi}), 1e-6);
      }
    }
  }
}

TEST_F(Toy2dPolicyTest, PolicyMirrorSymmetry) {
  // Mirrored states get mirrored actions (up <-> down), except where the
  // two are cost-ties (e.g. exactly centered states).
  int mismatches = 0;
  for (int yo = -3; yo <= 3; ++yo) {
    for (int xr = 1; xr <= 9; ++xr) {
      for (int yi = -3; yi <= 3; ++yi) {
        const Action a = table_->action_for({yo, xr, yi});
        const Action m = table_->action_for({-yo, xr, -yi});
        const Action expected = a == Action::kUp   ? Action::kDown
                                : a == Action::kDown ? Action::kUp
                                                     : Action::kLevel;
        if (m != expected) ++mismatches;
      }
    }
  }
  // Ties on the symmetry axis may break either way; allow a small number.
  EXPECT_LE(mismatches, 20);
}

TEST_F(Toy2dPolicyTest, ValuesBoundedByModelCosts) {
  // No value can exceed collision cost + accumulated maneuver costs, nor be
  // better than pure level-off reward for the whole episode.
  for (int yo = -3; yo <= 3; ++yo) {
    for (int xr = 0; xr <= 9; ++xr) {
      for (int yi = -3; yi <= 3; ++yi) {
        const double v = table_->value_for({yo, xr, yi});
        EXPECT_LE(v, 10000.0 + 9.0 * 100.0);
        EXPECT_GE(v, -50.0 * 9.0 - 1e-9);
      }
    }
  }
}

TEST_F(Toy2dPolicyTest, RenderSliceHasExpectedShape) {
  const std::string slice = table_->render_slice(0);
  EXPECT_NE(slice.find("policy slice"), std::string::npos);
  // 7 altitude rows with 10 columns each.
  EXPECT_NE(slice.find('X'), std::string::npos);  // the collision cell at (0, 0, 0)
}

TEST_F(Toy2dPolicyTest, RolloutNeverExceedsGrid) {
  RngStream rng(77);
  TablePolicy controller(*table_);
  const Rollout r = rollout(*model_, controller, {0, 9, 0}, rng);
  EXPECT_EQ(r.trajectory.size(), 10U);
  for (const auto& g : r.trajectory) {
    EXPECT_LE(std::abs(g.y_own), 3);
    EXPECT_LE(std::abs(g.y_int), 3);
  }
}

TEST_F(Toy2dPolicyTest, PolicyBeatsAlwaysLevelOnCollisionCourse) {
  // Residual collisions are genuinely optimal here: the intruder random-
  // walks up to +-2 per step while the own-ship moves at most +-1 on a
  // clamped +-3 grid, so some encounters cannot be escaped.  The generated
  // logic must still cut the collision rate by well over half and achieve
  // lower expected cost.
  TablePolicy policy(*table_);
  AlwaysLevel level;
  const GridState start{0, 9, 0};
  const auto with_policy = evaluate(*model_, policy, start, 2000, 42);
  const auto with_level = evaluate(*model_, level, start, 2000, 42);
  EXPECT_GT(with_level.collision_rate(), 0.10);
  EXPECT_LT(with_policy.collision_rate(), 0.5 * with_level.collision_rate());
  EXPECT_LT(with_policy.mean_cost, with_level.mean_cost);
}

TEST_F(Toy2dPolicyTest, RolloutDeterministicPerSeed) {
  TablePolicy controller(*table_);
  RngStream rng1(5);
  RngStream rng2(5);
  const Rollout a = rollout(*model_, controller, {1, 9, -1}, rng1);
  const Rollout b = rollout(*model_, controller, {1, 9, -1}, rng2);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i], b.trajectory[i]);
  }
  EXPECT_EQ(a.collided, b.collided);
  EXPECT_EQ(a.total_cost, b.total_cost);
}

TEST_F(Toy2dPolicyTest, MeanCostTracksModelValue) {
  // Closed-loop mean cost under the optimal policy should approximate the
  // model's predicted value at the start state (the model and simulator
  // share dynamics by construction).
  TablePolicy policy(*table_);
  const GridState start{0, 9, 0};
  const auto eval = evaluate(*model_, policy, start, 20000, 7);
  EXPECT_NEAR(eval.mean_cost, table_->value_for(start), 25.0);
}

/// Parameterized sweep over grid sizes: the solver must stay consistent.
class Toy2dSweepTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Toy2dSweepTest, SolvesAndAvoidsCollisions) {
  const auto [x_max, y_max] = GetParam();
  Config config;
  config.x_max = x_max;
  config.y_max = y_max;
  const Toy2dMdp model(config);
  const PolicyTable table = solve(model);
  TablePolicy policy(table);
  AlwaysLevel level;
  const GridState start{0, x_max, 0};
  const auto with_policy = evaluate(model, policy, start, 1000, 11);
  const auto with_level = evaluate(model, level, start, 1000, 11);
  // Comparative bound: the optimum depends on the grid (tight grids leave
  // unavoidable collisions), but it must always clearly beat no avoidance.
  EXPECT_LT(with_policy.collision_rate(), 0.6 * with_level.collision_rate() + 1e-9)
      << "x_max=" << x_max << " y_max=" << y_max;
  EXPECT_LT(with_policy.mean_cost, with_level.mean_cost);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, Toy2dSweepTest,
                         ::testing::Values(std::pair{5, 2}, std::pair{9, 3}, std::pair{12, 4},
                                           std::pair{15, 3}));

}  // namespace
}  // namespace cav::toy2d
