// The event-core equivalence contract (airspace.h): AirspaceConfig::legacy()
// must reproduce the pre-refactor dense fixed-dt engine bit for bit, and the
// DEFAULT config (grid index, 25 km radius, adaptive timers) must reproduce
// legacy() exactly on every geometry that stays inside the radius — which is
// all of the existing scenario families.  Every comparison here is exact
// double equality: one reordered RNG draw or float reduction fails it.
// The parallel-LP contract layers on top (LpConfig, airspace.h): any
// AirspaceConfig::parallel setting — 1 LP, N LPs, any pool thread count —
// must be bit-identical to the serial engine on the same scenario.
#include <gtest/gtest.h>

#include <memory>

#include "acasx/offline_solver.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/simulation.h"
#include "util/angles.h"
#include "util/thread_pool.h"

namespace cav::sim {
namespace {

UavState state_at(double x, double y, double z, double gs, double bearing, double vs) {
  UavState s;
  s.position_m = {x, y, z};
  s.ground_speed_mps = gs;
  s.bearing_rad = bearing;
  s.vertical_speed_mps = vs;
  return s;
}

void expect_bit_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
  EXPECT_EQ(a.proximity.min_horizontal_m, b.proximity.min_horizontal_m);
  EXPECT_EQ(a.proximity.min_vertical_m, b.proximity.min_vertical_m);
  EXPECT_EQ(a.proximity.time_of_min_distance_s, b.proximity.time_of_min_distance_s);
  EXPECT_EQ(a.nmac, b.nmac);
  EXPECT_EQ(a.nmac_time_s, b.nmac_time_s);
  EXPECT_EQ(a.hard_collision, b.hard_collision);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);

  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t p = 0; p < a.pairs.size(); ++p) {
    EXPECT_EQ(a.pairs[p].a, b.pairs[p].a) << p;
    EXPECT_EQ(a.pairs[p].b, b.pairs[p].b) << p;
    EXPECT_EQ(a.pairs[p].proximity.min_distance_m, b.pairs[p].proximity.min_distance_m) << p;
    EXPECT_EQ(a.pairs[p].proximity.time_of_min_distance_s,
              b.pairs[p].proximity.time_of_min_distance_s)
        << p;
    EXPECT_EQ(a.pairs[p].nmac, b.pairs[p].nmac) << p;
    EXPECT_EQ(a.pairs[p].nmac_time_s, b.pairs[p].nmac_time_s) << p;
    EXPECT_EQ(a.pairs[p].hard_collision, b.pairs[p].hard_collision) << p;
  }

  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].ever_alerted, b.agents[i].ever_alerted) << i;
    EXPECT_EQ(a.agents[i].first_alert_time_s, b.agents[i].first_alert_time_s) << i;
    EXPECT_EQ(a.agents[i].alert_cycles, b.agents[i].alert_cycles) << i;
    EXPECT_EQ(a.agents[i].reversals, b.agents[i].reversals) << i;
    EXPECT_EQ(a.agents[i].final_advisory, b.agents[i].final_advisory) << i;
    EXPECT_EQ(a.agents[i].resolver.cycles, b.agents[i].resolver.cycles) << i;
    EXPECT_EQ(a.agents[i].resolver.disagreements, b.agents[i].resolver.disagreements) << i;
  }

  ASSERT_EQ(a.multi_trajectory.size(), b.multi_trajectory.size());
  for (std::size_t s = 0; s < a.multi_trajectory.size(); ++s) {
    EXPECT_EQ(a.multi_trajectory[s].t_s, b.multi_trajectory[s].t_s) << s;
    ASSERT_EQ(a.multi_trajectory[s].position_m.size(), b.multi_trajectory[s].position_m.size());
    for (std::size_t i = 0; i < a.multi_trajectory[s].position_m.size(); ++i) {
      EXPECT_EQ(a.multi_trajectory[s].position_m[i].x, b.multi_trajectory[s].position_m[i].x);
      EXPECT_EQ(a.multi_trajectory[s].position_m[i].y, b.multi_trajectory[s].position_m[i].y);
      EXPECT_EQ(a.multi_trajectory[s].position_m[i].z, b.multi_trajectory[s].position_m[i].z);
    }
  }
}

class EquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(
        std::make_shared<const acasx::LogicTable>(
            acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static CasFactory equipped() { return AcasXuCas::factory(*table_); }
  static std::shared_ptr<const acasx::LogicTable>* table_;
};

std::shared_ptr<const acasx::LogicTable>* EquivalenceTest::table_ = nullptr;

SimResult run_family(const scenarios::Scenario& scenario, const AirspaceConfig& airspace,
                     const CasFactory& cas, std::uint64_t seed,
                     ThreatPolicy policy = ThreatPolicy::kNearest) {
  SimConfig config;  // default noise, dropout, coordination — every draw live
  config.airspace = airspace;
  config.record_trajectory = true;
  config.threat_policy = policy;
  return scenarios::run_scenario(scenario, config, cas, cas, seed);
}

TEST_F(EquivalenceTest, ConvergingRingDefaultMatchesLegacyExactly) {
  for (const std::size_t k : {4UL, 8UL}) {
    const scenarios::Scenario ring = scenarios::converging_ring(k);
    const SimResult dense = run_family(ring, AirspaceConfig::legacy(), equipped(), 5);
    const SimResult adaptive = run_family(ring, AirspaceConfig{}, equipped(), 5);
    expect_bit_identical(dense, adaptive);
    // The default grid mode must also have materialized every pair — the
    // ring never spans the 25 km radius.
    EXPECT_EQ(adaptive.pairs.size(), (k + 1) * k / 2);
    EXPECT_EQ(adaptive.stats.coarse_agent_steps, 0U);
  }
}

TEST_F(EquivalenceTest, HighDensityStatisticalSampleMatchesExactly) {
  const scenarios::Scenario dense_traffic = scenarios::high_density_random(8, 2016);
  const SimResult dense = run_family(dense_traffic, AirspaceConfig::legacy(), equipped(), 9);
  const SimResult adaptive = run_family(dense_traffic, AirspaceConfig{}, equipped(), 9);
  expect_bit_identical(dense, adaptive);
}

TEST_F(EquivalenceTest, CostFusedArbitrationMatchesExactly) {
  const scenarios::Scenario ring = scenarios::converging_ring(6);
  const SimResult dense =
      run_family(ring, AirspaceConfig::legacy(), equipped(), 3, ThreatPolicy::kCostFused);
  const SimResult adaptive =
      run_family(ring, AirspaceConfig{}, equipped(), 3, ThreatPolicy::kCostFused);
  expect_bit_identical(dense, adaptive);
}

TEST_F(EquivalenceTest, DegradedFixturesMatchExactly) {
  // The GA-found degraded fixtures exercise the event-driven blackout
  // toggles, Gilbert–Elliott link bursts, and ADS-B dropout bursts — the
  // draw-heaviest paths in the engine.
  for (const std::string& name : scenarios::degraded_scenario_names()) {
    const scenarios::DegradedScenario fixture = scenarios::make_degraded_scenario(name);
    SimConfig dense_config;
    dense_config.airspace = AirspaceConfig::legacy();
    dense_config.record_trajectory = true;
    SimConfig adaptive_config;
    adaptive_config.record_trajectory = true;
    const SimResult dense =
        scenarios::run_degraded_scenario(fixture, dense_config, equipped(), equipped());
    const SimResult adaptive =
        scenarios::run_degraded_scenario(fixture, adaptive_config, equipped(), equipped());
    expect_bit_identical(dense, adaptive);
  }
}

TEST_F(EquivalenceTest, ForcedModeReproducesGoldenHeadOn) {
  // The same golden numbers test_sim_multi.cpp pins for the default
  // config, re-asserted under the forced dense fixed-dt mode: the legacy
  // switch IS the pre-refactor engine, not merely close to it.
  SimConfig config;
  config.max_time_s = 90.0;
  config.airspace = AirspaceConfig::legacy();
  AgentSetup own;
  own.initial_state = state_at(0, 0, 1000, 40, 0, 0);
  own.cas = std::make_unique<AcasXuCas>(*table_);
  AgentSetup intruder;
  intruder.initial_state = state_at(3200, 0, 1000, 40, kPi, 0);
  intruder.cas = std::make_unique<AcasXuCas>(*table_);
  const auto r = run_encounter(config, std::move(own), std::move(intruder), 11);
  EXPECT_EQ(r.proximity.min_distance_m, 91.488145289202976);
  EXPECT_EQ(r.proximity.min_horizontal_m, 0.99166033301457901);
  EXPECT_EQ(r.proximity.min_vertical_m, 0.0);
  EXPECT_EQ(r.proximity.time_of_min_distance_s, 40.000000000000298);
  EXPECT_FALSE(r.nmac);
  EXPECT_TRUE(r.own.ever_alerted);
  EXPECT_EQ(r.own.first_alert_time_s, 25.000000000000085);
  EXPECT_EQ(r.own.alert_cycles, 2);
  EXPECT_EQ(r.intruder.alert_cycles, 3);
  EXPECT_EQ(r.elapsed_s, 89.999999999999162);
}

AirspaceConfig with_lps(AirspaceConfig base, int num_lps, ThreadPool* pool) {
  base.parallel.num_lps = num_lps;
  base.parallel.pool = pool;
  return base;
}

TEST_F(EquivalenceTest, ParallelLpsMatchSerialOnEveryFamily) {
  // Every existing K<=8 scenario family, serial vs {1, 2, 4} logical
  // processes on pools of 1 and 3 threads: trajectories, reports, and
  // pair minima must match to the bit (expect_bit_identical compares the
  // recorded multi-trajectory sample by sample).
  ThreadPool one_thread(1);
  ThreadPool three_threads(3);
  struct Family {
    scenarios::Scenario scenario;
    std::uint64_t seed;
    ThreatPolicy policy;
  };
  const Family families[] = {
      {scenarios::converging_ring(4), 5, ThreatPolicy::kNearest},
      {scenarios::converging_ring(8), 5, ThreatPolicy::kNearest},
      {scenarios::high_density_random(8, 2016), 9, ThreatPolicy::kNearest},
      {scenarios::converging_ring(6), 3, ThreatPolicy::kCostFused},
  };
  for (const Family& f : families) {
    const SimResult serial = run_family(f.scenario, AirspaceConfig{}, equipped(), f.seed,
                                        f.policy);
    for (const int num_lps : {1, 2, 4}) {
      for (ThreadPool* pool : {&one_thread, &three_threads}) {
        const SimResult parallel = run_family(
            f.scenario, with_lps(AirspaceConfig{}, num_lps, pool), equipped(), f.seed,
            f.policy);
        expect_bit_identical(serial, parallel);
      }
    }
  }
}

TEST_F(EquivalenceTest, ParallelLpsMatchSerialOnDegradedFixtures) {
  // Both GA-found degraded fixtures — blackout events, Gilbert–Elliott
  // bursts, ADS-B dropout bursts, mixed equipage — under 3 LPs: the
  // draw-heaviest paths survive the LP partition bit for bit.
  ThreadPool pool(2);
  for (const std::string& name : scenarios::degraded_scenario_names()) {
    const scenarios::DegradedScenario fixture = scenarios::make_degraded_scenario(name);
    SimConfig serial_config;
    serial_config.record_trajectory = true;
    SimConfig parallel_config = serial_config;
    parallel_config.airspace = with_lps(parallel_config.airspace, 3, &pool);
    const SimResult serial =
        scenarios::run_degraded_scenario(fixture, serial_config, equipped(), equipped());
    const SimResult parallel =
        scenarios::run_degraded_scenario(fixture, parallel_config, equipped(), equipped());
    expect_bit_identical(serial, parallel);
  }
}

TEST_F(EquivalenceTest, ParallelLegacyModeMatchesDenseSerial) {
  // LpConfig composes with the forced dense fixed-dt mode too: the pair
  // set is dense (no grid to stripe) but the physics and monitor phases
  // still fan out.
  ThreadPool pool(2);
  const scenarios::Scenario ring = scenarios::converging_ring(4);
  const SimResult serial = run_family(ring, AirspaceConfig::legacy(), equipped(), 5);
  const SimResult parallel =
      run_family(ring, with_lps(AirspaceConfig::legacy(), 4, &pool), equipped(), 5);
  expect_bit_identical(serial, parallel);
}

TEST_F(EquivalenceTest, ZeroLengthBlackoutWindowsAreInert) {
  // A window with end <= start never satisfied TimeWindow::contains, so
  // the event-driven engine schedules nothing for it: no events drain,
  // no cycle masks comms, and the run is bit-identical to the fault-free
  // one — serial and under an LP partition alike.
  ThreadPool pool(2);
  const scenarios::Scenario ring = scenarios::converging_ring(4);
  SimConfig clean;
  clean.record_trajectory = true;
  SimConfig degenerate = clean;
  degenerate.fault.comms_blackouts.push_back({20.0, 20.0});
  degenerate.fault.comms_blackouts.push_back({30.0, 25.0});  // inverted
  SimConfig degenerate_parallel = degenerate;
  degenerate_parallel.airspace = with_lps(degenerate_parallel.airspace, 2, &pool);

  const SimResult reference = scenarios::run_scenario(ring, clean, equipped(), equipped(), 5);
  const SimResult degen = scenarios::run_scenario(ring, degenerate, equipped(), equipped(), 5);
  const SimResult degen_lp =
      scenarios::run_scenario(ring, degenerate_parallel, equipped(), equipped(), 5);
  expect_bit_identical(reference, degen);
  expect_bit_identical(reference, degen_lp);
  EXPECT_EQ(degen.stats.fault_events, 0U);
  EXPECT_EQ(degen_lp.stats.fault_events, 0U);
}

TEST_F(EquivalenceTest, RecordEveryNDecimatesWithoutPerturbingTheRun) {
  const scenarios::Scenario ring = scenarios::converging_ring(4);
  SimConfig full;
  full.record_trajectory = true;
  SimConfig decimated = full;
  decimated.record_every_n = 3;
  const SimResult r_full = scenarios::run_scenario(ring, full, equipped(), equipped(), 5);
  const SimResult r_dec = scenarios::run_scenario(ring, decimated, equipped(), equipped(), 5);

  // Decimation only drops samples: the simulation itself is untouched.
  EXPECT_EQ(r_full.proximity.min_distance_m, r_dec.proximity.min_distance_m);
  EXPECT_EQ(r_full.elapsed_s, r_dec.elapsed_s);
  ASSERT_FALSE(r_full.multi_trajectory.empty());
  EXPECT_EQ(r_dec.multi_trajectory.size(), (r_full.multi_trajectory.size() + 2) / 3);
  for (std::size_t s = 0; s < r_dec.multi_trajectory.size(); ++s) {
    EXPECT_EQ(r_dec.multi_trajectory[s].t_s, r_full.multi_trajectory[3 * s].t_s) << s;
  }
}

}  // namespace
}  // namespace cav::sim
