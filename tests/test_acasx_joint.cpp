// Joint-threat table and solver (acasx/joint_table.h, joint_solver.h):
// abstraction binning, solve structure, marginalization against the
// pairwise table, query permutation invariance, serialization, and the
// compile-once / solve-per-revision bit-identity contract.
#include "acasx/joint_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <random>

#include "acasx/offline_solver.h"
#include "util/thread_pool.h"

namespace cav::acasx {
namespace {

/// Small shared state space: the pairwise table solved on the SAME grid is
/// the marginalization reference (identical interpolation geometry).
StateSpaceConfig tiny_space() {
  StateSpaceConfig s;
  s.h_ft = UniformAxis(-800.0, 800.0, 17);
  s.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  s.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  s.tau_max = 16;
  return s;
}

JointConfig tiny_joint_config() {
  JointConfig c;
  c.space = tiny_space();
  return c;
}

AcasXuConfig tiny_pairwise_config() {
  AcasXuConfig c;
  c.space = tiny_space();
  return c;
}

class JointTableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pool_ = new ThreadPool();
    joint_ = new JointLogicTable(solve_joint_table(tiny_joint_config(), pool_, &stats_));
    pairwise_ = new LogicTable(solve_logic_table(tiny_pairwise_config(), pool_));
  }
  static void TearDownTestSuite() {
    delete joint_;
    delete pairwise_;
    delete pool_;
    joint_ = nullptr;
    pairwise_ = nullptr;
    pool_ = nullptr;
  }

  static ThreadPool* pool_;
  static JointLogicTable* joint_;
  static LogicTable* pairwise_;
  static JointSolveStats stats_;
};

ThreadPool* JointTableTest::pool_ = nullptr;
JointLogicTable* JointTableTest::joint_ = nullptr;
LogicTable* JointTableTest::pairwise_ = nullptr;
JointSolveStats JointTableTest::stats_{};

// ---------------------------------------------------------------------------
// Abstraction binning.

TEST(SecondaryAbstractionTest, DeltaBinsSnapNearestAndClamp) {
  SecondaryAbstraction s;  // 2 bins at 0 and 10 s
  EXPECT_EQ(s.delta_bin(-3.0), 0U);
  EXPECT_EQ(s.delta_bin(0.0), 0U);
  EXPECT_EQ(s.delta_bin(4.9), 0U);
  EXPECT_EQ(s.delta_bin(5.1), 1U);
  EXPECT_EQ(s.delta_bin(10.0), 1U);
  EXPECT_EQ(s.delta_bin(500.0), 1U);
  EXPECT_EQ(s.delta_value_s(1), 10.0);
}

TEST(SecondaryAbstractionTest, SenseClassesAndRepresentativeRates) {
  SecondaryAbstraction s;
  EXPECT_EQ(s.sense_of_rate(0.0), SecondarySense::kLevel);
  EXPECT_EQ(s.sense_of_rate(20.0), SecondarySense::kClimbing);
  EXPECT_EQ(s.sense_of_rate(-20.0), SecondarySense::kDescending);
  EXPECT_GT(s.representative_rate_fps(SecondarySense::kClimbing), 0.0);
  EXPECT_LT(s.representative_rate_fps(SecondarySense::kDescending), 0.0);
  EXPECT_EQ(s.representative_rate_fps(SecondarySense::kLevel), 0.0);
  EXPECT_EQ(s.num_slabs(), s.num_delta_bins * kNumSecondarySenses);
}

// ---------------------------------------------------------------------------
// Solve structure.

TEST_F(JointTableTest, SolveStatsAndDimensions) {
  EXPECT_EQ(stats_.layers, tiny_space().tau_max + 1);
  EXPECT_EQ(stats_.slabs, joint_->num_slabs());
  EXPECT_GT(stats_.stencil_entries, 0U);
  EXPECT_EQ(joint_->num_entries(), joint_->num_slabs() * joint_->num_tau_layers() *
                                       joint_->num_grid_points() * kNumAdvisories *
                                       kNumAdvisories);
}

TEST_F(JointTableTest, TerminalLayerChargesBothThreatsOnlyAtDeltaZero) {
  const JointConfig& config = joint_->config();
  const GridN<4>& grid = joint_->grid();
  // Grid point with both threats inside the NMAC band (h1 = 0, h2 = 0).
  std::array<std::size_t, 4> both{};
  both[0] = config.space.h_ft.nearest(0.0);
  both[3] = config.secondary.h2_ft.nearest(0.0);
  // Grid point with only the secondary clear (h2 at the axis edge).
  std::array<std::size_t, 4> only_primary = both;
  only_primary[3] = config.secondary.h2_ft.count() - 1;

  const std::size_t slab0 = config.slab_index(0, SecondarySense::kLevel);
  const std::size_t slab1 = config.slab_index(1, SecondarySense::kLevel);
  const double nmac = config.costs.nmac_cost;

  // delta bin 0: both CPAs resolve at tau = 0 -> double charge.
  EXPECT_FLOAT_EQ(joint_->at(slab0, 0, grid.flat_index(both), Advisory::kCoc, Advisory::kCoc),
                  static_cast<float>(2.0 * nmac));
  EXPECT_FLOAT_EQ(
      joint_->at(slab0, 0, grid.flat_index(only_primary), Advisory::kCoc, Advisory::kCoc),
      static_cast<float>(nmac));
  // delta bin 1: only the secondary resolves at tau = 0; the primary's
  // charge lands at the interior layer tau == delta instead.
  EXPECT_FLOAT_EQ(joint_->at(slab1, 0, grid.flat_index(both), Advisory::kCoc, Advisory::kCoc),
                  static_cast<float>(nmac));
  EXPECT_FLOAT_EQ(
      joint_->at(slab1, 0, grid.flat_index(only_primary), Advisory::kCoc, Advisory::kCoc),
      0.0F);

  // At the primary-CPA layer of delta bin 1, a state inside the primary's
  // band costs at least the NMAC charge more than the same state clear.
  // Layers advance one dynamics step each: the primary's CPA layer is
  // delta_value / dt, matching solve_slab's charge layer.
  const auto delta_layer =
      static_cast<std::size_t>(config.secondary.delta_value_s(1) / config.dynamics.dt_s);
  std::array<std::size_t, 4> clear_primary = only_primary;
  clear_primary[0] = 0;  // h1 = -800 ft, far outside the band
  const float in_band = joint_->at(slab1, delta_layer, grid.flat_index(only_primary),
                                   Advisory::kCoc, Advisory::kCoc);
  const float clear = joint_->at(slab1, delta_layer, grid.flat_index(clear_primary),
                                 Advisory::kCoc, Advisory::kCoc);
  EXPECT_GE(in_band - clear, static_cast<float>(0.5 * nmac));
}

TEST_F(JointTableTest, SqueezeRaisesCostOfManeuveringIntoSecondary) {
  // The squeeze the table exists for: primary 300 ft above, secondary
  // 300 ft below at the same CPA.  A pairwise table cannot see that the
  // escape from the primary (descend) flies into the secondary; the joint
  // table must price that descent higher than with the secondary far off.
  const auto squeeze = joint_->action_costs(8.0, 0.0, 300.0, 0.0, 0.0, -300.0,
                                            SecondarySense::kLevel, Advisory::kCoc);
  const auto clear_below = joint_->action_costs(8.0, 0.0, 300.0, 0.0, 0.0, -600.0,
                                                SecondarySense::kLevel, Advisory::kCoc);
  const auto d1500 = static_cast<std::size_t>(Advisory::kDescend1500);
  EXPECT_GT(squeeze[d1500], clear_below[d1500])
      << "descending into the lower threat must cost more than descending into clear air";
}

// ---------------------------------------------------------------------------
// Marginalization: a far, level secondary at the same CPA adds nothing the
// pairwise table does not know, for horizons too short to reach it.

TEST_F(JointTableTest, FarSecondaryReproducesPairwiseAdvisories) {
  // At tau <= 2 the own-ship cannot close the 600 ft to the secondary
  // (max |dh_own| is ~42 ft/s), so the joint costs must match the
  // pairwise costs on the shared grid and the argmin advisory exactly.
  int checked = 0;
  for (double tau1 : {0.5, 1.0, 2.0}) {
    for (double h1 : {-400.0, -150.0, -100.0, 0.0, 100.0, 150.0, 400.0}) {
      for (double dh_own : {-20.0, 0.0, 20.0}) {
        for (double dh_int : {-20.0, 0.0, 20.0}) {
          for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
            const auto current = static_cast<Advisory>(ra);
            const auto jc = joint_->action_costs(tau1, 0.0, h1, dh_own, dh_int, 600.0,
                                                 SecondarySense::kLevel, current);
            const auto pc = pairwise_->action_costs(tau1, h1, dh_own, dh_int, current);
            for (std::size_t a = 0; a < kNumAdvisories; ++a) {
              EXPECT_NEAR(jc[a], pc[a], 1e-3 + 1e-6 * std::abs(pc[a]))
                  << "tau=" << tau1 << " h1=" << h1 << " a=" << a;
            }
            EXPECT_EQ(select_advisory(jc, Sense::kNone, current),
                      select_advisory(pc, Sense::kNone, current));
            ++checked;
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 500);
}

// ---------------------------------------------------------------------------
// Online query: permutation invariance and the activity envelope.

AircraftTrack track_at(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

TEST_F(JointTableTest, JointQueryInvariantUnderThreatSwap) {
  const OnlineConfig online;
  std::mt19937 rng(77);
  // Mostly-converging geometry (ahead of the own-ship, closing) so a good
  // fraction of rounds activate the joint query; the rest exercise the
  // inactive path's invariance.
  std::uniform_real_distribution<double> ahead(400.0, 2500.0);
  std::uniform_real_distribution<double> offset(-1200.0, 1200.0);
  std::uniform_real_distribution<double> alt(-180.0, 180.0);
  std::uniform_real_distribution<double> vx(-70.0, 10.0);
  std::uniform_real_distribution<double> vy(-30.0, 30.0);
  std::uniform_real_distribution<double> vs(-12.0, 12.0);

  int active_rounds = 0;
  for (int round = 0; round < 300; ++round) {
    const AircraftTrack own = track_at(0, 0, 1000, 40, 0, 0);
    const AircraftTrack a =
        track_at(ahead(rng), offset(rng), 1000 + alt(rng), vx(rng), vy(rng), vs(rng));
    const AircraftTrack b =
        track_at(ahead(rng), offset(rng), 1000 + alt(rng), vx(rng), vy(rng), vs(rng));
    bool active_ab = false;
    bool active_ba = false;
    const auto ab = joint_action_costs(*joint_, own, a, b, Advisory::kCoc, online, &active_ab);
    const auto ba = joint_action_costs(*joint_, own, b, a, Advisory::kCoc, online, &active_ba);
    ASSERT_EQ(active_ab, active_ba) << "round " << round;
    for (std::size_t i = 0; i < kNumAdvisories; ++i) {
      EXPECT_EQ(ab[i], ba[i]) << "round " << round << " advisory " << i;
    }
    if (active_ab) ++active_rounds;
  }
  EXPECT_GT(active_rounds, 20) << "the fuzz actually exercised active joint queries";
}

TEST_F(JointTableTest, QueryInactiveWhenEitherThreatOutsideEnvelope) {
  const OnlineConfig online;
  const AircraftTrack own = track_at(0, 0, 1000, 40, 0, 0);
  const AircraftTrack converging = track_at(900, 0, 1020, -40, 0, 0);
  const AircraftTrack diverging = track_at(500, 200, 980, 45, 0, 0);

  bool active = true;
  joint_action_costs(*joint_, own, converging, diverging, Advisory::kCoc, online, &active);
  EXPECT_FALSE(active) << "a diverging (tau = inf) secondary deactivates the joint query";
  joint_action_costs(*joint_, own, diverging, converging, Advisory::kCoc, online, &active);
  EXPECT_FALSE(active);

  const auto costs =
      joint_action_costs(*joint_, own, converging, converging, Advisory::kCoc, online, &active);
  EXPECT_TRUE(active);
  double spread = 0.0;
  for (const double c : costs) spread = std::max(spread, std::abs(c - costs[0]));
  EXPECT_GT(spread, 0.0) << "an active joint query carries a real preference";
}

// ---------------------------------------------------------------------------
// Serialization and the compile-once / refresh contract.

TEST_F(JointTableTest, SaveLoadRoundTripIsBitIdentical) {
  const std::string path = ::testing::TempDir() + "joint_table_roundtrip.bin";
  joint_->save(path);
  const JointLogicTable loaded = JointLogicTable::load(path);
  ASSERT_EQ(loaded.raw().size(), joint_->raw().size());
  EXPECT_EQ(loaded.raw(), joint_->raw());
  EXPECT_EQ(loaded.config().secondary.num_delta_bins,
            joint_->config().secondary.num_delta_bins);
  EXPECT_EQ(loaded.config().space.tau_max, joint_->config().space.tau_max);
  std::remove(path.c_str());
}

TEST_F(JointTableTest, CompiledSolverMatchesOneShotBitIdentically) {
  const JointOfflineSolver solver(tiny_joint_config(), pool_);
  const JointLogicTable resolved = solver.solve(pool_);
  EXPECT_EQ(resolved.raw(), joint_->raw());

  // Re-solving with the same costs is bit-identical (the refresh_costs
  // contract); a cost revision changes the table but not the stencils.
  const JointLogicTable again = solver.solve(pool_);
  EXPECT_EQ(again.raw(), resolved.raw());

  CostModel revised = tiny_joint_config().costs;
  revised.maneuver_cost *= 2.0;
  JointSolveStats revision_stats;
  const JointLogicTable rev = solver.solve(revised, pool_, &revision_stats);
  EXPECT_EQ(revision_stats.stencil_build_seconds, 0.0);
  EXPECT_NE(rev.raw(), resolved.raw());
  EXPECT_EQ(rev.config().costs.maneuver_cost, revised.maneuver_cost);

  // And a fresh full solve under the revised costs agrees bit-identically
  // with the refreshed solve.
  JointConfig fresh_config = tiny_joint_config();
  fresh_config.costs = revised;
  const JointLogicTable fresh = solve_joint_table(fresh_config, pool_);
  EXPECT_EQ(fresh.raw(), rev.raw());
}

TEST_F(JointTableTest, SolveIsThreadCountInvariant) {
  const JointLogicTable serial = solve_joint_table(tiny_joint_config(), nullptr);
  EXPECT_EQ(serial.raw(), joint_->raw()) << "pooled and serial solves are bit-identical";
}

}  // namespace
}  // namespace cav::acasx
