// Multi-process mmap smoke test: two forked processes open the same
// TableImage, answer the same queries bit-identically, and share the
// payload pages (each process's PSS share of the file mappings is well
// below its RSS).  Linux-only — the fork/smaps machinery has no portable
// equivalent; elsewhere the suite compiles to a skip.
#include "serving/policy_server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#ifdef __linux__
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "acasx/offline_solver.h"
#endif

namespace cav::serving {
namespace {

#ifdef __linux__

/// Sum an smaps field (kB) over mappings whose pathname contains `needle`.
double smaps_mapped_kb(const char* needle, const char* field) {
  std::ifstream in("/proc/self/smaps");
  std::string line;
  bool tracking = false;
  double sum_kb = 0.0;
  while (std::getline(in, line)) {
    const bool header = !line.empty() &&
                        std::isxdigit(static_cast<unsigned char>(line[0])) &&
                        line.find('-') != std::string::npos &&
                        line.find('-') < line.find(' ');
    if (header) {
      tracking = line.find(needle) != std::string::npos;
    } else if (tracking && line.rfind(field, 0) == 0) {
      std::istringstream row(line.substr(std::strlen(field)));
      double kb = 0.0;
      row >> kb;
      sum_kb += kb;
    }
  }
  return sum_kb;
}

TEST(ServingMultiprocess, TwoProcessesShareOnePhysicalCopy) {
  const std::string path = ::testing::TempDir() + "serving_multiproc.img";
  const auto table = acasx::solve_logic_table(acasx::AcasXuConfig::coarse());
  table.save(path);

  // Fixed probe queries; every process must produce these exact bits.
  std::vector<TrackQuery> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back({2.0 + 0.37 * i, -900.0 + 30.0 * i, -8.0 + 0.25 * i, 8.0 - 0.25 * i,
                       static_cast<acasx::Advisory>(i % acasx::kNumAdvisories)});
  }
  std::vector<AdvisoryCosts> expected(queries.size());
  const PolicyServer parent_server = PolicyServer::open(path);
  parent_server.query_batch(queries, expected);

  constexpr int kProcs = 2;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  for (int p = 0; p < kProcs; ++p) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      const PolicyServer server = PolicyServer::open(path);
      std::vector<AdvisoryCosts> got(queries.size());
      server.query_batch(queries, got);
      // Touch the whole payload so the mapping is fully resident.
      double touch = 0.0;
      const float* v = server.pairwise_table()->values();
      for (std::size_t i = 0; i < server.pairwise_table()->num_entries(); i += 256) {
        touch += v[i];
      }
      const double rss_kb = smaps_mapped_kb(".img", "Rss:");
      const double pss_kb = smaps_mapped_kb(".img", "Pss:");
      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (got[i].costs != expected[i].costs) ++mismatches;
      }
      double payload[4] = {static_cast<double>(mismatches), rss_kb, pss_kb, touch};
      [[maybe_unused]] const ssize_t n = write(fds[1], payload, sizeof payload);
      _exit(0);
    }
  }

  const double payload_kb =
      static_cast<double>(parent_server.pairwise_payload_bytes()) / 1024.0;
  for (int p = 0; p < kProcs; ++p) {
    double payload[4] = {};
    ASSERT_EQ(read(fds[0], payload, sizeof payload), static_cast<ssize_t>(sizeof payload));
    EXPECT_EQ(payload[0], 0.0) << "child " << p << " disagreed with the parent's results";
    // The child touched every payload page: its RSS for the mapping spans
    // the payload...
    EXPECT_GT(payload[1], 0.5 * payload_kb) << "child " << p << " mapping not resident";
    // ...but its *proportional* share is divided among the sharers
    // (parent + children), which is the point of MAP_SHARED serving.
    EXPECT_LT(payload[2], 0.8 * payload[1])
        << "child " << p << " PSS ~ RSS: pages are not being shared";
  }
  for (int p = 0; p < kProcs; ++p) wait(nullptr);
  close(fds[0]);
  close(fds[1]);
  std::remove(path.c_str());
}

#else

TEST(ServingMultiprocess, SkippedOffLinux) { GTEST_SKIP() << "fork/smaps are Linux-only"; }

#endif  // __linux__

}  // namespace
}  // namespace cav::serving
