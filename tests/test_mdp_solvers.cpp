// Solver tests on hand-solvable MDPs: a deterministic chain, a two-action
// risk/reward choice, and a stochastic coin-flip walk.  Cross-checks value
// iteration (Jacobi + Gauss-Seidel), finite-horizon backward induction, and
// policy iteration against each other and against closed forms.
#include "mdp/mdp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mdp/policy_iteration.h"
#include "mdp/value_iteration.h"
#include "util/expect.h"

namespace cav::mdp {
namespace {

/// States 0..n; deterministic step right with cost 1; state n terminal.
class ChainMdp final : public FiniteMdp {
 public:
  explicit ChainMdp(std::size_t n) : n_(n) {}
  std::size_t num_states() const override { return n_ + 1; }
  std::size_t num_actions() const override { return 1; }
  double cost(State, Action) const override { return 1.0; }
  void transitions(State s, Action, std::vector<Transition>& out) const override {
    out.push_back({static_cast<State>(s + 1), 1.0});
  }
  bool is_terminal(State s) const override { return s == n_; }
  double terminal_cost(State) const override { return 5.0; }

 private:
  std::size_t n_;
};

/// Two actions from state 0: "safe" -> terminal 1 (cost 1), "risky" ->
/// 50/50 terminal 1 (cost 0) or terminal 2 with terminal cost 10.
class ChoiceMdp final : public FiniteMdp {
 public:
  std::size_t num_states() const override { return 3; }
  std::size_t num_actions() const override { return 2; }
  double cost(State, Action a) const override { return a == 0 ? 1.0 : 0.0; }
  void transitions(State, Action a, std::vector<Transition>& out) const override {
    if (a == 0) {
      out.push_back({1, 1.0});
    } else {
      out.push_back({1, 0.5});
      out.push_back({2, 0.5});
    }
  }
  bool is_terminal(State s) const override { return s != 0; }
  double terminal_cost(State s) const override { return s == 2 ? 10.0 : 0.0; }
};

/// Self-loop with escape: action 0 loops (cost 1, stays with prob p), so
/// with discount g the value solves V = 1 + g*p*V  =>  V = 1/(1 - g*p).
class LoopMdp final : public FiniteMdp {
 public:
  explicit LoopMdp(double p) : p_(p) {}
  std::size_t num_states() const override { return 2; }
  std::size_t num_actions() const override { return 1; }
  double cost(State, Action) const override { return 1.0; }
  void transitions(State, Action, std::vector<Transition>& out) const override {
    out.push_back({0, p_});
    out.push_back({1, 1.0 - p_});
  }
  bool is_terminal(State s) const override { return s == 1; }

 private:
  double p_;
};

TEST(ValueIteration, ChainHasAdditiveCosts) {
  const ChainMdp chain(5);
  const auto result = solve_value_iteration(chain);
  EXPECT_TRUE(result.converged);
  // V(s) = (steps to go) * 1 + terminal 5.
  for (std::size_t s = 0; s <= 5; ++s) {
    EXPECT_NEAR(result.values[s], static_cast<double>(5 - s) + 5.0, 1e-9) << "state " << s;
  }
}

TEST(ValueIteration, ChainConvergesInDepthIterations) {
  const ChainMdp chain(7);
  const auto result = solve_value_iteration(chain);
  EXPECT_LE(result.iterations, 9U);
}

TEST(ValueIteration, ChoicePicksCheaperExpectedCost) {
  const ChoiceMdp mdp;
  const auto result = solve_value_iteration(mdp);
  // Q(safe) = 1, Q(risky) = 0.5 * 10 = 5 -> safe.
  EXPECT_NEAR(result.q.at(0, 0), 1.0, 1e-9);
  EXPECT_NEAR(result.q.at(0, 1), 5.0, 1e-9);
  EXPECT_EQ(result.policy[0], 0);
  EXPECT_NEAR(result.values[0], 1.0, 1e-9);
}

TEST(ValueIteration, TerminalValuesFixed) {
  const ChoiceMdp mdp;
  const auto result = solve_value_iteration(mdp);
  EXPECT_DOUBLE_EQ(result.values[1], 0.0);
  EXPECT_DOUBLE_EQ(result.values[2], 10.0);
}

TEST(ValueIteration, DiscountedLoopClosedForm) {
  const double p = 0.9;
  const double g = 0.95;
  const LoopMdp mdp(p);
  ValueIterationConfig config;
  config.discount = g;
  config.tolerance = 1e-12;
  config.max_iterations = 100000;
  const auto result = solve_value_iteration(mdp, config);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.values[0], 1.0 / (1.0 - g * p), 1e-6);
}

TEST(ValueIteration, GaussSeidelMatchesJacobi) {
  const ChainMdp chain(6);
  ValueIterationConfig gs;
  gs.gauss_seidel = true;
  const auto jacobi = solve_value_iteration(chain);
  const auto seidel = solve_value_iteration(chain, gs);
  ASSERT_EQ(jacobi.values.size(), seidel.values.size());
  for (std::size_t s = 0; s < jacobi.values.size(); ++s) {
    EXPECT_NEAR(jacobi.values[s], seidel.values[s], 1e-9);
  }
}

TEST(ValueIteration, UndiscountedLoopHitsIterationCap) {
  // Undiscounted self-loop with positive cost diverges; the solver must
  // stop at max_iterations and report non-convergence rather than hang.
  const LoopMdp mdp(1.0);
  ValueIterationConfig config;
  config.max_iterations = 50;
  const auto result = solve_value_iteration(mdp, config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 50U);
}

TEST(FiniteHorizon, StageZeroIsTerminalOnly) {
  const ChoiceMdp mdp;
  const auto stages = solve_finite_horizon(mdp, 3);
  EXPECT_DOUBLE_EQ(stages[0][0], 0.0);   // non-terminal: no cost yet
  EXPECT_DOUBLE_EQ(stages[0][2], 10.0);  // terminal cost
}

TEST(FiniteHorizon, ChainValuesGrowWithHorizon) {
  const ChainMdp chain(10);
  const auto stages = solve_finite_horizon(chain, 4);
  // From state 0 with t steps available: t * step cost (never reaches the
  // terminal in 4 steps from state 0, so no terminal contribution).
  EXPECT_NEAR(stages[1][0], 1.0, 1e-9);
  EXPECT_NEAR(stages[4][0], 4.0, 1e-9);
  // From state 7, 4 steps reach the terminal at depth 3: 3 steps + 5.
  EXPECT_NEAR(stages[4][7], 3.0 + 5.0, 1e-9);
}

TEST(FiniteHorizon, MatchesInfiniteHorizonOnEpisodicModel) {
  const ChainMdp chain(5);
  const auto stages = solve_finite_horizon(chain, 6);
  const auto vi = solve_value_iteration(chain);
  for (std::size_t s = 0; s <= 5; ++s) {
    EXPECT_NEAR(stages[6][s], vi.values[s], 1e-9);
  }
}

TEST(PolicyIteration, AgreesWithValueIteration) {
  const ChoiceMdp mdp;
  const auto pi = solve_policy_iteration(mdp);
  const auto vi = solve_value_iteration(mdp);
  EXPECT_TRUE(pi.converged);
  EXPECT_EQ(pi.policy[0], vi.policy[0]);
  EXPECT_NEAR(pi.values[0], vi.values[0], 1e-6);
}

TEST(PolicyIteration, ChainValues) {
  const ChainMdp chain(4);
  const auto pi = solve_policy_iteration(chain);
  EXPECT_TRUE(pi.converged);
  for (std::size_t s = 0; s <= 4; ++s) {
    EXPECT_NEAR(pi.values[s], static_cast<double>(4 - s) + 5.0, 1e-6);
  }
}

TEST(GreedyPolicy, PicksArgmin) {
  QTable q;
  q.num_actions = 3;
  q.q = {5.0, 2.0, 7.0,   // state 0 -> action 1
         1.0, 1.5, 0.5};  // state 1 -> action 2
  const Policy p = greedy_policy(q, 2);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], 2);
}

TEST(GreedyPolicy, TiesBreakTowardLowestActionIndex) {
  // Documented contract: among equal-cost actions the lowest index wins,
  // so compiled/virtual and serial/parallel sweeps emit identical tables.
  QTable q;
  q.num_actions = 3;
  q.q = {2.0, 2.0, 2.0,   // full three-way tie -> action 0
         4.0, 1.0, 1.0,   // tie between 1 and 2 -> action 1
         0.5, 0.5, 0.0};  // unique minimum last -> action 2
  const Policy p = greedy_policy(q, 3);
  EXPECT_EQ(p[0], 0);
  EXPECT_EQ(p[1], 1);
  EXPECT_EQ(p[2], 2);
}

TEST(Backup, ComputesExpectedCost) {
  const ChoiceMdp mdp;
  Values values{0.0, 0.0, 10.0};
  std::vector<Transition> scratch;
  EXPECT_NEAR(backup(mdp, 0, 1, values, 1.0, scratch), 5.0, 1e-12);
  EXPECT_NEAR(backup(mdp, 0, 1, values, 0.5, scratch), 2.5, 1e-12);
}

TEST(Solvers, RejectDegenerateConfig) {
  const ChainMdp chain(3);
  ValueIterationConfig bad;
  bad.discount = 0.0;
  EXPECT_THROW(solve_value_iteration(chain, bad), ContractViolation);
  bad.discount = 1.5;
  EXPECT_THROW(solve_value_iteration(chain, bad), ContractViolation);
}

}  // namespace
}  // namespace cav::mdp
