// Airspace-core unit tests: the spatial hash grid against a brute-force
// reference on random clouds, deterministic adjacency, the event queue's
// ordering contract, and the lazily-materialized pair-monitor bank.
#include "sim/airspace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/monitors.h"
#include "util/rng.h"
#include "util/vec3.h"

namespace cav::sim {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, double extent_m, std::uint64_t seed) {
  RngStream rng = RngStream::derive(seed, "cloud");
  std::vector<Vec3> positions(n);
  for (auto& p : positions) {
    p = {rng.uniform(-extent_m, extent_m), rng.uniform(-extent_m, extent_m),
         rng.uniform(900.0, 1100.0)};
  }
  return positions;
}

std::vector<std::pair<int, int>> brute_force_pairs(const std::vector<Vec3>& positions,
                                                   double radius_m) {
  std::vector<std::pair<int, int>> pairs;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const double dx = positions[i].x - positions[j].x;
      const double dy = positions[i].y - positions[j].y;
      if (dx * dx + dy * dy <= radius_m * radius_m) {
        pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return pairs;
}

TEST(SpatialHashGrid, MatchesBruteForceOnRandomClouds) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const double radius : {500.0, 2000.0, 8000.0}) {
      const auto positions = random_cloud(120, 10000.0, seed);
      SpatialHashGrid grid;
      grid.build(positions, radius);
      std::vector<std::pair<int, int>> pairs;
      grid.collect_near_pairs(positions, radius, &pairs);
      EXPECT_EQ(pairs, brute_force_pairs(positions, radius))
          << "seed " << seed << " radius " << radius;
    }
  }
}

TEST(SpatialHashGrid, PairsAreLexicographic) {
  const auto positions = random_cloud(80, 3000.0, 7);
  SpatialHashGrid grid;
  grid.build(positions, 1500.0);
  std::vector<std::pair<int, int>> pairs;
  grid.collect_near_pairs(positions, 1500.0, &pairs);
  ASSERT_FALSE(pairs.empty());
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  for (const auto& [i, j] : pairs) EXPECT_LT(i, j);
}

TEST(SpatialHashGrid, RadiusBoundaryIsInclusive) {
  // Exactly radius apart: <= keeps the pair (the dense engine has no
  // boundary at all, so ties erring toward inclusion is the safe side).
  const std::vector<Vec3> positions = {{0.0, 0.0, 1000.0}, {1000.0, 0.0, 1000.0}};
  SpatialHashGrid grid;
  grid.build(positions, 1000.0);
  std::vector<std::pair<int, int>> pairs;
  grid.collect_near_pairs(positions, 1000.0, &pairs);
  ASSERT_EQ(pairs.size(), 1U);
  EXPECT_EQ(pairs[0], std::make_pair(0, 1));
}

TEST(SpatialHashGrid, VerticalSeparationDoesNotExcludePairs) {
  // The radius is horizontal-only: ADS-B reception does not care about
  // altitude, and the vertical NMAC band is far smaller than any radius.
  const std::vector<Vec3> positions = {{0.0, 0.0, 0.0}, {100.0, 0.0, 5000.0}};
  SpatialHashGrid grid;
  grid.build(positions, 1000.0);
  std::vector<std::pair<int, int>> pairs;
  grid.collect_near_pairs(positions, 1000.0, &pairs);
  EXPECT_EQ(pairs.size(), 1U);
}

TEST(Airspace, AllPairsModeListsEveryPairWithoutPositions) {
  Airspace airspace(AirspaceConfig::legacy(), 5);
  airspace.rebuild(std::vector<Vec3>(5));
  EXPECT_EQ(airspace.near_pairs().size(), 10U);
  EXPECT_TRUE(std::is_sorted(airspace.near_pairs().begin(), airspace.near_pairs().end()));
  EXPECT_EQ(airspace.neighbors_of(2), (std::vector<int>{0, 1, 3, 4}));
}

TEST(Airspace, GridAdjacencyMatchesPairList) {
  AirspaceConfig config;
  config.interaction_radius_m = 2000.0;
  const auto positions = random_cloud(60, 5000.0, 11);
  Airspace airspace(config, positions.size());
  airspace.rebuild(positions);

  std::vector<std::vector<int>> expected(positions.size());
  for (const auto& [i, j] : airspace.near_pairs()) {
    expected[static_cast<std::size_t>(i)].push_back(j);
    expected[static_cast<std::size_t>(j)].push_back(i);
  }
  for (auto& adj : expected) std::sort(adj.begin(), adj.end());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(airspace.neighbors_of(i), expected[i]) << i;
  }
}

TEST(Airspace, RebuildReflectsMotion) {
  AirspaceConfig config;
  config.interaction_radius_m = 1000.0;
  Airspace airspace(config, 2);
  airspace.rebuild({{0.0, 0.0, 0.0}, {5000.0, 0.0, 0.0}});
  EXPECT_TRUE(airspace.near_pairs().empty());
  EXPECT_TRUE(airspace.neighbors_of(0).empty());
  airspace.rebuild({{0.0, 0.0, 0.0}, {800.0, 0.0, 0.0}});
  EXPECT_EQ(airspace.near_pairs().size(), 1U);
  EXPECT_EQ(airspace.neighbors_of(0), std::vector<int>{1});
}

TEST(EventQueue, OrdersByTimeTypeAgentSeq) {
  EventQueue queue;
  queue.push(10.0, EventType::kCommsBlackoutEnd, 1);
  queue.push(5.0, EventType::kCommsBlackoutStart, 3);
  queue.push(10.0, EventType::kCommsBlackoutStart, 2);
  queue.push(10.0, EventType::kCommsBlackoutStart, 0);

  EXPECT_FALSE(queue.has_due(4.9));
  ASSERT_TRUE(queue.has_due(5.0));
  EXPECT_EQ(queue.pop().agent, 3);
  EXPECT_FALSE(queue.has_due(9.0));
  ASSERT_TRUE(queue.has_due(30.0));
  // Same time: starts before ends, lower agent first.
  Event e = queue.pop();
  EXPECT_EQ(e.type, EventType::kCommsBlackoutStart);
  EXPECT_EQ(e.agent, 0);
  EXPECT_EQ(queue.pop().agent, 2);
  EXPECT_EQ(queue.pop().type, EventType::kCommsBlackoutEnd);
  EXPECT_TRUE(queue.empty());
}

TEST(PairwiseMonitors, LazyMaterializationFollowsTheActiveSet) {
  PairwiseMonitors monitors(4, AccidentConfig{});
  EXPECT_EQ(monitors.num_pairs(), 0U);

  const std::vector<Vec3> positions = {
      {0.0, 0.0, 0.0}, {100.0, 0.0, 0.0}, {200.0, 0.0, 0.0}, {300.0, 0.0, 0.0}};
  EXPECT_EQ(monitors.set_active_pairs({{0, 1}, {2, 3}}), 2U);
  monitors.update_new(0.0, positions, 2);
  EXPECT_EQ(monitors.num_pairs(), 2U);
  EXPECT_TRUE(monitors.monitored(0, 1));
  EXPECT_FALSE(monitors.monitored(0, 2));

  // A pair dropping out keeps its slot and minima but stops updating.
  EXPECT_EQ(monitors.set_active_pairs({{0, 1}}), 0U);
  EXPECT_EQ(monitors.num_pairs(), 2U);
  EXPECT_EQ(monitors.num_active_pairs(), 1U);
  const double frozen = monitors.proximity(2, 3).report().min_distance_m;
  std::vector<Vec3> closer = positions;
  closer[1] = {50.0, 0.0, 0.0};   // active pair tightens
  closer[3] = positions[2];       // inactive pair would read 0 if updated
  monitors.update(1.0, closer);
  EXPECT_EQ(monitors.proximity(2, 3).report().min_distance_m, frozen);
  EXPECT_EQ(monitors.proximity(0, 1).report().min_distance_m, 50.0);
}

TEST(PairwiseMonitors, DenseBankMatchesActivateAllPairs) {
  PairwiseMonitors monitors(3, AccidentConfig{});
  monitors.activate_all_pairs();
  EXPECT_EQ(monitors.num_pairs(), 3U);
  EXPECT_EQ(monitors.num_active_pairs(), 3U);
  EXPECT_EQ(monitors.pair_agents(0), std::make_pair(std::size_t{0}, std::size_t{1}));
  EXPECT_EQ(monitors.pair_agents(1), std::make_pair(std::size_t{0}, std::size_t{2}));
  EXPECT_EQ(monitors.pair_agents(2), std::make_pair(std::size_t{1}, std::size_t{2}));
}

TEST(PairwiseMonitors, SortedViewIsStableAcrossActivationChronology) {
  // Materialize pairs out of lexicographic order; the (i, j)-sorted view
  // used for result assembly must not depend on activation chronology.
  PairwiseMonitors monitors(4, AccidentConfig{});
  const std::vector<Vec3> positions(4);
  monitors.set_active_pairs({{1, 3}});
  monitors.update_new(0.0, positions, 1);
  monitors.set_active_pairs({{0, 2}, {1, 3}});
  monitors.update_new(1.0, positions, 1);
  ASSERT_EQ(monitors.num_pairs(), 2U);
  EXPECT_EQ(monitors.pair_agents(0), std::make_pair(std::size_t{0}, std::size_t{2}));
  EXPECT_EQ(monitors.pair_agents(1), std::make_pair(std::size_t{1}, std::size_t{3}));
}

TEST(PairwiseMonitors, AggregatesSpanOnlyMaterializedPairs) {
  PairwiseMonitors monitors(3, AccidentConfig{});
  const std::vector<Vec3> positions = {{0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}, {5000.0, 0.0, 0.0}};
  monitors.set_active_pairs({{0, 1}});
  monitors.update_new(0.0, positions, 1);
  const ProximityReport report = monitors.aggregate_proximity();
  EXPECT_DOUBLE_EQ(report.min_distance_m, 10.0);
  EXPECT_TRUE(monitors.any_nmac());  // 10 m separation is inside the cylinder
  EXPECT_EQ(monitors.earliest_nmac_time_s(), 0.0);
}

}  // namespace
}  // namespace cav::sim
