// Airspace-core unit tests: the spatial hash grid against a brute-force
// reference on random clouds, deterministic adjacency, the event queue's
// ordering contract, and the lazily-materialized pair-monitor bank.
#include "sim/airspace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/monitors.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/vec3.h"

namespace cav::sim {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, double extent_m, std::uint64_t seed) {
  RngStream rng = RngStream::derive(seed, "cloud");
  std::vector<Vec3> positions(n);
  for (auto& p : positions) {
    p = {rng.uniform(-extent_m, extent_m), rng.uniform(-extent_m, extent_m),
         rng.uniform(900.0, 1100.0)};
  }
  return positions;
}

std::vector<std::pair<int, int>> brute_force_pairs(const std::vector<Vec3>& positions,
                                                   double radius_m) {
  std::vector<std::pair<int, int>> pairs;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      const double dx = positions[i].x - positions[j].x;
      const double dy = positions[i].y - positions[j].y;
      if (dx * dx + dy * dy <= radius_m * radius_m) {
        pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return pairs;
}

TEST(SpatialHashGrid, MatchesBruteForceOnRandomClouds) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const double radius : {500.0, 2000.0, 8000.0}) {
      const auto positions = random_cloud(120, 10000.0, seed);
      SpatialHashGrid grid;
      grid.build(positions, radius);
      std::vector<std::pair<int, int>> pairs;
      grid.collect_near_pairs(positions, radius, &pairs);
      EXPECT_EQ(pairs, brute_force_pairs(positions, radius))
          << "seed " << seed << " radius " << radius;
    }
  }
}

TEST(SpatialHashGrid, PairsAreLexicographic) {
  const auto positions = random_cloud(80, 3000.0, 7);
  SpatialHashGrid grid;
  grid.build(positions, 1500.0);
  std::vector<std::pair<int, int>> pairs;
  grid.collect_near_pairs(positions, 1500.0, &pairs);
  ASSERT_FALSE(pairs.empty());
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  for (const auto& [i, j] : pairs) EXPECT_LT(i, j);
}

TEST(SpatialHashGrid, RadiusBoundaryIsInclusive) {
  // Exactly radius apart: <= keeps the pair (the dense engine has no
  // boundary at all, so ties erring toward inclusion is the safe side).
  const std::vector<Vec3> positions = {{0.0, 0.0, 1000.0}, {1000.0, 0.0, 1000.0}};
  SpatialHashGrid grid;
  grid.build(positions, 1000.0);
  std::vector<std::pair<int, int>> pairs;
  grid.collect_near_pairs(positions, 1000.0, &pairs);
  ASSERT_EQ(pairs.size(), 1U);
  EXPECT_EQ(pairs[0], std::make_pair(0, 1));
}

TEST(SpatialHashGrid, VerticalSeparationDoesNotExcludePairs) {
  // The radius is horizontal-only: ADS-B reception does not care about
  // altitude, and the vertical NMAC band is far smaller than any radius.
  const std::vector<Vec3> positions = {{0.0, 0.0, 0.0}, {100.0, 0.0, 5000.0}};
  SpatialHashGrid grid;
  grid.build(positions, 1000.0);
  std::vector<std::pair<int, int>> pairs;
  grid.collect_near_pairs(positions, 1000.0, &pairs);
  EXPECT_EQ(pairs.size(), 1U);
}

TEST(Airspace, AllPairsModeListsEveryPairWithoutPositions) {
  Airspace airspace(AirspaceConfig::legacy(), 5);
  airspace.rebuild(std::vector<Vec3>(5));
  EXPECT_EQ(airspace.near_pairs().size(), 10U);
  EXPECT_TRUE(std::is_sorted(airspace.near_pairs().begin(), airspace.near_pairs().end()));
  EXPECT_EQ(airspace.neighbors_of(2), (std::vector<int>{0, 1, 3, 4}));
}

TEST(Airspace, GridAdjacencyMatchesPairList) {
  AirspaceConfig config;
  config.interaction_radius_m = 2000.0;
  const auto positions = random_cloud(60, 5000.0, 11);
  Airspace airspace(config, positions.size());
  airspace.rebuild(positions);

  std::vector<std::vector<int>> expected(positions.size());
  for (const auto& [i, j] : airspace.near_pairs()) {
    expected[static_cast<std::size_t>(i)].push_back(j);
    expected[static_cast<std::size_t>(j)].push_back(i);
  }
  for (auto& adj : expected) std::sort(adj.begin(), adj.end());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(airspace.neighbors_of(i), expected[i]) << i;
  }
}

TEST(Airspace, RebuildReflectsMotion) {
  AirspaceConfig config;
  config.interaction_radius_m = 1000.0;
  Airspace airspace(config, 2);
  airspace.rebuild({{0.0, 0.0, 0.0}, {5000.0, 0.0, 0.0}});
  EXPECT_TRUE(airspace.near_pairs().empty());
  EXPECT_TRUE(airspace.neighbors_of(0).empty());
  airspace.rebuild({{0.0, 0.0, 0.0}, {800.0, 0.0, 0.0}});
  EXPECT_EQ(airspace.near_pairs().size(), 1U);
  EXPECT_EQ(airspace.neighbors_of(0), std::vector<int>{1});
}

TEST(EventQueue, OrdersByTimeTypeAgentSeq) {
  EventQueue queue;
  queue.push(10.0, EventType::kCommsBlackoutEnd, 1);
  queue.push(5.0, EventType::kCommsBlackoutStart, 3);
  queue.push(10.0, EventType::kCommsBlackoutStart, 2);
  queue.push(10.0, EventType::kCommsBlackoutStart, 0);

  EXPECT_FALSE(queue.has_due(4.9));
  ASSERT_TRUE(queue.has_due(5.0));
  EXPECT_EQ(queue.pop().agent, 3);
  EXPECT_FALSE(queue.has_due(9.0));
  ASSERT_TRUE(queue.has_due(30.0));
  // Same time: starts before ends, lower agent first.
  Event e = queue.pop();
  EXPECT_EQ(e.type, EventType::kCommsBlackoutStart);
  EXPECT_EQ(e.agent, 0);
  EXPECT_EQ(queue.pop().agent, 2);
  EXPECT_EQ(queue.pop().type, EventType::kCommsBlackoutEnd);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TotalOrderUnderCoincidentTimers) {
  // Property: draining yields exactly the pushed multiset, sorted by the
  // full (t, type, agent, seq) key — coincident (t, type, agent) events
  // are a valid input (two identical blackout windows) and must come out
  // in insertion order, making the order total, not just a partial tie.
  RngStream rng = RngStream::derive(99, "events");
  EventQueue queue;
  std::vector<std::tuple<double, int, int, int>> expected;  // (t, type, agent, insertion)
  for (int n = 0; n < 200; ++n) {
    const double t = static_cast<double>(rng.uniform_int(0, 9));  // heavy t collisions
    const auto type =
        rng.uniform_int(0, 1) == 0 ? EventType::kCommsBlackoutStart : EventType::kCommsBlackoutEnd;
    const int agent = static_cast<int>(rng.uniform_int(0, 3));
    queue.push(t, type, agent);
    expected.emplace_back(t, static_cast<int>(type), agent, n);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return std::make_tuple(std::get<0>(a), std::get<1>(a), std::get<2>(a)) <
                            std::make_tuple(std::get<0>(b), std::get<1>(b), std::get<2>(b));
                   });
  for (const auto& [t, type, agent, insertion] : expected) {
    ASSERT_TRUE(queue.has_due(t));
    const Event e = queue.pop();
    EXPECT_EQ(e.t_s, t);
    EXPECT_EQ(static_cast<int>(e.type), type);
    EXPECT_EQ(e.agent, agent);
    EXPECT_EQ(e.seq, static_cast<std::uint64_t>(insertion));
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ZeroLengthWindowEdgesCancelWithinOneDrain) {
  // A zero-length blackout window [t, t] — if a caller ever schedules one
  // — drains start-before-end at the same decision time, so the depth
  // counter returns to zero inside the drain and no cycle observes the
  // blackout.  (Simulation skips scheduling such windows entirely; this
  // pins the queue-level safety net that makes either choice equivalent.)
  EventQueue queue;
  queue.push(4.0, EventType::kCommsBlackoutEnd, 0);  // end pushed FIRST
  queue.push(4.0, EventType::kCommsBlackoutStart, 0);
  int depth = 0;
  bool observed = false;
  while (queue.has_due(4.0)) {
    const Event e = queue.pop();
    depth += e.type == EventType::kCommsBlackoutStart ? 1 : -1;
    observed = observed || depth < 0;  // an end before its start would go negative
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(observed) << "start must drain before end at the same time";
}

TEST(EventQueue, InsertionDuringDrainKeepsTheKeyOrder) {
  // Events inserted while a drain is in progress (a future event source
  // scheduling follow-ups) join the order at their key: due ones surface
  // in this very drain, later ones wait.
  EventQueue queue;
  queue.push(1.0, EventType::kCommsBlackoutStart, 0);
  queue.push(3.0, EventType::kCommsBlackoutStart, 1);
  std::vector<std::pair<double, int>> drained;
  bool injected = false;
  while (queue.has_due(3.0)) {
    const Event e = queue.pop();
    drained.emplace_back(e.t_s, e.agent);
    if (!injected) {
      injected = true;
      queue.push(2.0, EventType::kCommsBlackoutStart, 2);  // due now, t between
      queue.push(9.0, EventType::kCommsBlackoutStart, 3);  // not due
    }
  }
  EXPECT_EQ(drained,
            (std::vector<std::pair<double, int>>{{1.0, 0}, {2.0, 2}, {3.0, 1}}));
  ASSERT_EQ(queue.size(), 1U);
  EXPECT_FALSE(queue.has_due(8.9));
  EXPECT_EQ(queue.pop().agent, 3);
}

TEST(PairwiseMonitors, LazyMaterializationFollowsTheActiveSet) {
  PairwiseMonitors monitors(4, AccidentConfig{});
  EXPECT_EQ(monitors.num_pairs(), 0U);

  const std::vector<Vec3> positions = {
      {0.0, 0.0, 0.0}, {100.0, 0.0, 0.0}, {200.0, 0.0, 0.0}, {300.0, 0.0, 0.0}};
  EXPECT_EQ(monitors.set_active_pairs({{0, 1}, {2, 3}}), 2U);
  monitors.update_new(0.0, positions, 2);
  EXPECT_EQ(monitors.num_pairs(), 2U);
  EXPECT_TRUE(monitors.monitored(0, 1));
  EXPECT_FALSE(monitors.monitored(0, 2));

  // A pair dropping out keeps its slot and minima but stops updating.
  EXPECT_EQ(monitors.set_active_pairs({{0, 1}}), 0U);
  EXPECT_EQ(monitors.num_pairs(), 2U);
  EXPECT_EQ(monitors.num_active_pairs(), 1U);
  const double frozen = monitors.proximity(2, 3).report().min_distance_m;
  std::vector<Vec3> closer = positions;
  closer[1] = {50.0, 0.0, 0.0};   // active pair tightens
  closer[3] = positions[2];       // inactive pair would read 0 if updated
  monitors.update(1.0, closer);
  EXPECT_EQ(monitors.proximity(2, 3).report().min_distance_m, frozen);
  EXPECT_EQ(monitors.proximity(0, 1).report().min_distance_m, 50.0);
}

TEST(PairwiseMonitors, DenseBankMatchesActivateAllPairs) {
  PairwiseMonitors monitors(3, AccidentConfig{});
  monitors.activate_all_pairs();
  EXPECT_EQ(monitors.num_pairs(), 3U);
  EXPECT_EQ(monitors.num_active_pairs(), 3U);
  EXPECT_EQ(monitors.pair_agents(0), std::make_pair(std::size_t{0}, std::size_t{1}));
  EXPECT_EQ(monitors.pair_agents(1), std::make_pair(std::size_t{0}, std::size_t{2}));
  EXPECT_EQ(monitors.pair_agents(2), std::make_pair(std::size_t{1}, std::size_t{2}));
}

TEST(PairwiseMonitors, SortedViewIsStableAcrossActivationChronology) {
  // Materialize pairs out of lexicographic order; the (i, j)-sorted view
  // used for result assembly must not depend on activation chronology.
  PairwiseMonitors monitors(4, AccidentConfig{});
  const std::vector<Vec3> positions(4);
  monitors.set_active_pairs({{1, 3}});
  monitors.update_new(0.0, positions, 1);
  monitors.set_active_pairs({{0, 2}, {1, 3}});
  monitors.update_new(1.0, positions, 1);
  ASSERT_EQ(monitors.num_pairs(), 2U);
  EXPECT_EQ(monitors.pair_agents(0), std::make_pair(std::size_t{0}, std::size_t{2}));
  EXPECT_EQ(monitors.pair_agents(1), std::make_pair(std::size_t{1}, std::size_t{3}));
}

TEST(PairwiseMonitors, ChurnReactivationResumesTheFrozenSlot) {
  // activate -> drop -> re-activate: the pair keeps one slot for life, its
  // frozen minima resume (not reset), and re-activation is not a "new"
  // materialization — so no spurious activation-time update is applied.
  PairwiseMonitors monitors(3, AccidentConfig{});
  std::vector<Vec3> positions = {{0.0, 0.0, 0.0}, {100.0, 0.0, 0.0}, {0.0, 5000.0, 0.0}};
  EXPECT_EQ(monitors.set_active_pairs({{0, 1}}), 1U);
  monitors.update_new(0.0, positions, 1);
  EXPECT_EQ(monitors.proximity(0, 1).report().min_distance_m, 100.0);

  // Drop the pair; its would-be minimum tightens while unobserved.
  EXPECT_EQ(monitors.set_active_pairs({}), 0U);
  positions[1] = {40.0, 0.0, 0.0};
  monitors.update(1.0, positions);
  EXPECT_EQ(monitors.proximity(0, 1).report().min_distance_m, 100.0);

  // Re-activation reuses the slot (0 fresh) and resumes from the frozen
  // minima at the next update.
  EXPECT_EQ(monitors.set_active_pairs({{0, 1}}), 0U);
  EXPECT_EQ(monitors.num_pairs(), 1U);
  positions[1] = {70.0, 0.0, 0.0};
  monitors.update(2.0, positions);
  const ProximityReport report = monitors.proximity(0, 1).report();
  EXPECT_EQ(report.min_distance_m, 70.0);
  EXPECT_EQ(report.time_of_min_distance_s, 2.0);
}

TEST(PairwiseMonitors, UpdateSeriesMatchesSequentialReplayForAnyPartition) {
  // The LP hand-off seam: replaying a period of snapshots through
  // update_series — for any (num_lps, pool) partition of the slots — must
  // equal the sequential per-substep update() calls, and the (i, j)-sorted
  // assembly view must be identical afterwards.
  const std::size_t num_agents = 12;
  RngStream rng = RngStream::derive(5, "series");
  std::vector<std::pair<int, int>> pairs;
  for (std::size_t i = 0; i + 1 < num_agents; i += 2) {
    pairs.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
    pairs.emplace_back(static_cast<int>(i), static_cast<int>(i + 2 < num_agents ? i + 2 : 0));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  const std::size_t n_rows = 10;
  std::vector<double> times(n_rows);
  std::vector<std::vector<Vec3>> rows(n_rows, std::vector<Vec3>(num_agents));
  for (std::size_t s = 0; s < n_rows; ++s) {
    times[s] = 0.1 * static_cast<double>(s + 1);
    for (auto& p : rows[s]) {
      p = {rng.uniform(-400.0, 400.0), rng.uniform(-400.0, 400.0), rng.uniform(-40.0, 40.0)};
    }
  }

  PairwiseMonitors reference(num_agents, AccidentConfig{});
  reference.set_active_pairs(pairs);
  for (std::size_t s = 0; s < n_rows; ++s) reference.update(times[s], rows[s]);

  ThreadPool pool(3);
  for (const int num_lps : {1, 2, 5}) {
    PairwiseMonitors partitioned(num_agents, AccidentConfig{});
    partitioned.set_active_pairs(pairs);
    partitioned.update_series(times, rows, n_rows, num_lps, num_lps > 1 ? &pool : nullptr);
    ASSERT_EQ(partitioned.num_pairs(), reference.num_pairs()) << num_lps;
    for (std::size_t p = 0; p < reference.num_pairs(); ++p) {
      EXPECT_EQ(partitioned.pair_agents(p), reference.pair_agents(p)) << num_lps << " " << p;
      EXPECT_EQ(partitioned.proximity_at(p).report().min_distance_m,
                reference.proximity_at(p).report().min_distance_m)
          << num_lps << " " << p;
      EXPECT_EQ(partitioned.proximity_at(p).report().time_of_min_distance_s,
                reference.proximity_at(p).report().time_of_min_distance_s)
          << num_lps << " " << p;
      EXPECT_EQ(partitioned.accidents_at(p).nmac(), reference.accidents_at(p).nmac())
          << num_lps << " " << p;
      EXPECT_EQ(partitioned.accidents_at(p).nmac_time_s(),
                reference.accidents_at(p).nmac_time_s())
          << num_lps << " " << p;
    }
  }
}

TEST(PairwiseMonitors, AggregatesSpanOnlyMaterializedPairs) {
  PairwiseMonitors monitors(3, AccidentConfig{});
  const std::vector<Vec3> positions = {{0.0, 0.0, 0.0}, {10.0, 0.0, 0.0}, {5000.0, 0.0, 0.0}};
  monitors.set_active_pairs({{0, 1}});
  monitors.update_new(0.0, positions, 1);
  const ProximityReport report = monitors.aggregate_proximity();
  EXPECT_DOUBLE_EQ(report.min_distance_m, 10.0);
  EXPECT_TRUE(monitors.any_nmac());  // 10 m separation is inside the cylinder
  EXPECT_EQ(monitors.earliest_nmac_time_s(), 0.0);
}

}  // namespace
}  // namespace cav::sim
