// CompiledMdp v2 solver tests: the reverse graph must be the exact CSR
// transpose, prioritized sweeping must reach plain value iteration's fixed
// point (in far fewer state updates on sparse-goal models), and the float32
// value-layer path must track the double path within float rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "mdp/compiled_mdp.h"
#include "mdp/sparse_goal_chain.h"
#include "mdp/value_iteration.h"
#include "toy2d/toy2d_mdp.h"
#include "util/expect.h"
#include "util/thread_pool.h"

namespace cav::mdp {
namespace {

toy2d::Toy2dMdp toy_model() { return toy2d::Toy2dMdp{toy2d::Config{}}; }

TEST(CompiledMdpReverseGraph, IsExactTransposeOfCsr) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);

  // Brute-force the predecessor sets from the forward CSR arrays.
  std::vector<std::set<State>> expected(compiled.num_states());
  for (std::size_t s = 0; s < compiled.num_states(); ++s) {
    for (std::size_t a = 0; a < compiled.num_actions(); ++a) {
      const std::size_t r = compiled.row(static_cast<State>(s), static_cast<Action>(a));
      for (std::size_t k = compiled.row_offsets()[r]; k < compiled.row_offsets()[r + 1]; ++k) {
        expected[compiled.next_state()[k]].insert(static_cast<State>(s));
      }
    }
  }

  const auto& offsets = compiled.pred_offsets();
  const auto& pred = compiled.pred_state();
  ASSERT_EQ(offsets.size(), compiled.num_states() + 1);
  for (std::size_t s = 0; s < compiled.num_states(); ++s) {
    const std::set<State> actual(pred.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
                                 pred.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
    ASSERT_EQ(actual.size(), offsets[s + 1] - offsets[s]) << "duplicate predecessors of " << s;
    EXPECT_EQ(actual, expected[s]) << "predecessor set of state " << s;
  }
}

TEST(PrioritizedSweeping, MatchesJacobiFixedPointOnToy2d) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  const auto jacobi = solve_value_iteration(compiled);
  const auto prioritized = solve_prioritized(compiled);

  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(prioritized.converged);
  ASSERT_EQ(prioritized.values.size(), jacobi.values.size());
  for (std::size_t s = 0; s < jacobi.values.size(); ++s) {
    EXPECT_NEAR(prioritized.values[s], jacobi.values[s], 1e-9) << "state " << s;
  }
  EXPECT_EQ(prioritized.policy, jacobi.policy);
  EXPECT_LE(prioritized.residual, 1e-9);
  EXPECT_GE(prioritized.verification_sweeps, 1U);
}

TEST(PrioritizedSweeping, DiscountedModelMatchesJacobi) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  ValueIterationConfig vi;
  vi.discount = 0.9;
  PrioritizedSweepConfig ps;
  ps.discount = 0.9;
  const auto jacobi = solve_value_iteration(compiled, vi);
  const auto prioritized = solve_prioritized(compiled, ps);
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(prioritized.converged);
  for (std::size_t s = 0; s < jacobi.values.size(); ++s) {
    // Both solvers stop within `tolerance` of the same fixed point, so they
    // agree within tolerance / (1 - discount) of each other.
    EXPECT_NEAR(prioritized.values[s], jacobi.values[s], 1e-7) << "state " << s;
  }
}

TEST(PrioritizedSweeping, FewerStateUpdatesOnSparseGoalModel) {
  const SparseGoalChain model(/*length=*/2000, /*costly_band=*/10);
  const CompiledMdp compiled(model);

  // The chain's hold-position loop makes each solver's error up to
  // residual / (1 - 0.1); solve a decade below the comparison tolerance.
  ValueIterationConfig vi;
  vi.tolerance = 1e-10;
  PrioritizedSweepConfig ps;
  ps.tolerance = 1e-10;
  const auto jacobi = solve_value_iteration(compiled, vi);
  const auto prioritized = solve_prioritized(compiled, ps);
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(prioritized.converged);
  for (std::size_t s = 0; s < jacobi.values.size(); ++s) {
    ASSERT_NEAR(prioritized.values[s], jacobi.values[s], 1e-9) << "state " << s;
  }

  const std::size_t non_terminal = compiled.num_states() - 1;
  const std::size_t jacobi_updates = jacobi.iterations * non_terminal;
  // The queue only ever touches the costly band and its fringe; everything
  // else is paid once in seeding and once in the verification sweep.
  EXPECT_LT(prioritized.state_updates, jacobi_updates / 2)
      << "prioritized: " << prioritized.state_updates << " vs jacobi: " << jacobi_updates;
}

TEST(PrioritizedSweeping, BudgetCutStillReportsHonestResidualAndPolicy) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  PrioritizedSweepConfig config;
  config.max_state_updates = 100;  // far below what convergence needs
  const auto result = solve_prioritized(compiled, config);
  EXPECT_FALSE(result.converged);
  // Soft budget: the seeding pass and the final Q-fill sweep always run.
  EXPECT_LE(result.state_updates, 100U + 2 * compiled.num_states());
  // The cut result is still self-consistent: a measured (non-zero, we are
  // far from the fixed point) residual and a policy greedy w.r.t. the
  // returned Q table.
  EXPECT_GT(result.residual, 0.0);
  EXPECT_GE(result.verification_sweeps, 1U);
  for (std::size_t s = 0; s < compiled.num_states(); ++s) {
    const auto state = static_cast<State>(s);
    if (compiled.is_terminal(state)) continue;
    for (std::size_t a = 0; a < compiled.num_actions(); ++a) {
      EXPECT_LE(result.q.at(state, result.policy[s]),
                result.q.at(state, static_cast<Action>(a)))
          << "state " << s;
    }
  }
}

TEST(Float32ValueIteration, TracksDoublePathWithinFloatRounding) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  const auto ref = solve_value_iteration(compiled);
  const auto f32 = solve_value_iteration_f32(compiled);
  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(f32.converged);

  double scale = 1.0;
  for (const double v : ref.values) scale = std::max(scale, std::abs(v));
  ASSERT_EQ(f32.values.size(), ref.values.size());
  for (std::size_t s = 0; s < ref.values.size(); ++s) {
    // Documented tolerance: 1e-4 of the value scale (observed ~1e-6).
    EXPECT_NEAR(static_cast<double>(f32.values[s]), ref.values[s], 1e-4 * scale)
        << "state " << s;
  }
  EXPECT_GT(f32.float_floor, 0.0);
}

TEST(Float32ValueIteration, ParallelMatchesSerialBitwise) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  const auto serial = solve_value_iteration_f32(compiled);
  for (const std::size_t threads : {2U, 5U}) {
    ThreadPool pool(threads);
    ValueIterationConfig config;
    config.pool = &pool;
    const auto parallel = solve_value_iteration_f32(compiled, config);
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads << " threads";
    ASSERT_EQ(parallel.values.size(), serial.values.size());
    for (std::size_t s = 0; s < serial.values.size(); ++s) {
      // Jacobi writes are disjoint, so thread count cannot change a bit.
      EXPECT_EQ(parallel.values[s], serial.values[s])
          << "state " << s << " with " << threads << " threads";
    }
    EXPECT_EQ(parallel.policy, serial.policy) << threads << " threads";
  }
}

TEST(Float32ValueIteration, RejectsGaussSeidel) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  ValueIterationConfig config;
  config.gauss_seidel = true;
  EXPECT_THROW(solve_value_iteration_f32(compiled, config), ContractViolation);
}

}  // namespace
}  // namespace cav::mdp
