// Joint-state indexing (mdp/joint_state.h): the mixed-radix convention the
// joint-threat solver builds its slab layout on.
#include "mdp/joint_state.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cav::mdp {
namespace {

TEST(JointStateIndexerTest, SizesAndStrides) {
  const JointStateIndexer idx({2, 3, 5});
  EXPECT_EQ(idx.rank(), 3U);
  EXPECT_EQ(idx.size(), 30U);
  EXPECT_EQ(idx.factor_size(0), 2U);
  EXPECT_EQ(idx.factor_size(2), 5U);
  // Row-major: factor 0 slowest, last factor contiguous.
  EXPECT_EQ(idx.stride(0), 15U);
  EXPECT_EQ(idx.stride(1), 5U);
  EXPECT_EQ(idx.stride(2), 1U);
}

TEST(JointStateIndexerTest, FlatUnflattenRoundTrip) {
  const JointStateIndexer idx({3, 4, 2, 5});
  for (std::size_t f = 0; f < idx.size(); ++f) {
    const auto parts = idx.unflatten(f);
    ASSERT_EQ(parts.size(), 4U);
    for (std::size_t d = 0; d < parts.size(); ++d) EXPECT_LT(parts[d], idx.factor_size(d));
    EXPECT_EQ(idx.flat(parts), f);
  }
}

TEST(JointStateIndexerTest, SlabsAreContiguous) {
  const JointStateIndexer idx({4, 7});
  for (std::size_t slab = 0; slab < 4; ++slab) {
    EXPECT_EQ(idx.slab_begin(slab), slab * 7);
    // Every state of the slab lies inside [begin, begin + stride(0)).
    for (std::size_t local = 0; local < 7; ++local) {
      const std::size_t f = idx.flat({slab, local});
      EXPECT_GE(f, idx.slab_begin(slab));
      EXPECT_LT(f, idx.slab_begin(slab) + idx.stride(0));
    }
  }
}

TEST(JointStateIndexerTest, SingleFactorIsIdentity) {
  const JointStateIndexer idx({9});
  for (std::size_t f = 0; f < 9; ++f) {
    EXPECT_EQ(idx.flat({f}), f);
    EXPECT_EQ(idx.unflatten(f).front(), f);
  }
}

TEST(JointStateIndexerTest, RejectsDegenerateFactors) {
  EXPECT_THROW(JointStateIndexer(std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW(JointStateIndexer({3, 0, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace cav::mdp
