#include "baselines/svo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angles.h"

namespace cav::baselines {
namespace {

acasx::AircraftTrack track(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

TEST(SvoConflict, HeadOnPredicted) {
  const SvoConfig config;
  const auto c = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                          track(2000, 0, 1000, -40, 0, 0), config);
  EXPECT_TRUE(c.predicted);
  EXPECT_NEAR(c.t_cpa_s, 25.0, 1e-6);
  EXPECT_NEAR(c.miss_horizontal_m, 0.0, 1e-6);
}

TEST(SvoConflict, LateralMissOutsideProtectedZone) {
  const SvoConfig config;  // protected radius 150 m
  const auto c = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                          track(2000, 200, 1000, -40, 0, 0), config);
  EXPECT_FALSE(c.predicted);
  EXPECT_NEAR(c.miss_horizontal_m, 200.0, 1e-6);
}

TEST(SvoConflict, VerticalMissOutsideProtectedZone) {
  const SvoConfig config;  // protected half-height 60 m
  const auto c = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                          track(2000, 0, 1100, -40, 0, 0), config);
  EXPECT_FALSE(c.predicted);
  EXPECT_NEAR(c.miss_vertical_m, 100.0, 1e-6);
}

TEST(SvoConflict, SignedVerticalMiss) {
  const SvoConfig config;
  const auto above = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                              track(2000, 0, 1040, -40, 0, 0), config);
  EXPECT_GT(above.miss_vertical_m, 0.0);
  const auto below = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                              track(2000, 0, 960, -40, 0, 0), config);
  EXPECT_LT(below.miss_vertical_m, 0.0);
}

TEST(SvoConflict, BeyondLookaheadIgnored) {
  SvoConfig config;
  config.lookahead_s = 10.0;
  // CPA at 25 s: clamped to 10 s, where separation is still large.
  const auto c = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                          track(2000, 0, 1000, -40, 0, 0), config);
  EXPECT_FALSE(c.predicted);
}

TEST(SvoConflict, NoRelativeMotionInsideZone) {
  const SvoConfig config;
  const auto c = SvoCas::predict_conflict(track(0, 0, 1000, 40, 0, 0),
                                          track(100, 0, 1010, 40, 0, 0), config);
  EXPECT_TRUE(c.predicted);
  EXPECT_DOUBLE_EQ(c.t_cpa_s, 0.0);
}

TEST(SvoRightOfWay, HeadOnBothGiveWay) {
  const SvoConfig config;
  EXPECT_TRUE(SvoCas::must_give_way(track(0, 0, 1000, 40, 0, 0),
                                    track(2000, 0, 1000, -40, 0, 0), config));
}

TEST(SvoRightOfWay, OvertakerGivesWay) {
  const SvoConfig config;
  // Own faster, intruder ahead on the same course.
  EXPECT_TRUE(SvoCas::must_give_way(track(0, 0, 1000, 40, 0, 0),
                                    track(500, 0, 1000, 25, 0, 0), config));
  // The slower aircraft being overtaken stands on (intruder behind).
  EXPECT_FALSE(SvoCas::must_give_way(track(500, 0, 1000, 25, 0, 0),
                                     track(0, 0, 1000, 40, 0, 0), config));
}

TEST(SvoRightOfWay, IntruderOnRightGivesWay) {
  const SvoConfig config;
  // Own flying +x; intruder to the south (negative y = to the right),
  // crossing northbound.
  EXPECT_TRUE(SvoCas::must_give_way(track(0, 0, 1000, 40, 0, 0),
                                    track(800, -800, 1000, 0, 40, 0), config));
  // Intruder to the left crossing southbound: own stands on.
  EXPECT_FALSE(SvoCas::must_give_way(track(0, 0, 1000, 40, 0, 0),
                                     track(800, 800, 1000, 0, -40, 0), config));
}

TEST(SvoDecide, ManeuversOnConflictWhenResponsible) {
  SvoCas svo;
  const auto d = svo.decide(track(0, 0, 1000, 40, 0, 0), track(2000, 0, 1000, -40, 0, 0),
                            acasx::Sense::kNone);
  EXPECT_TRUE(d.maneuver);
  EXPECT_NE(d.sense, acasx::Sense::kNone);
  EXPECT_NE(d.target_vs_mps, 0.0);
}

TEST(SvoDecide, StandOnAircraftDoesNotManeuver) {
  SvoCas svo;
  // Intruder crossing from the left: own has right of way.
  const auto d = svo.decide(track(0, 0, 1000, 40, 0, 0), track(800, 800, 1000, 0, -40, 0),
                            acasx::Sense::kNone);
  EXPECT_FALSE(d.maneuver);
}

TEST(SvoDecide, ResolutionRestoresProtectedVolume) {
  SvoCas svo;
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(2000, 0, 1010, -40, 0, 0);
  const auto d = svo.decide(own, intr, acasx::Sense::kNone);
  ASSERT_TRUE(d.maneuver);
  // Apply the commanded rate and re-predict: the conflict must be resolved.
  auto own_after = own;
  own_after.velocity_mps.z = d.target_vs_mps;
  const auto c = SvoCas::predict_conflict(own_after, intr, SvoConfig{});
  EXPECT_FALSE(c.predicted) << "commanded rate must clear the protected volume";
}

TEST(SvoDecide, PrefersGeometricallyFavoredSense) {
  SvoCas svo;
  // Intruder will pass slightly above: descending (away) is favored.
  const auto d = svo.decide(track(0, 0, 1000, 40, 0, 0), track(2000, 0, 1030, -40, 0, 0),
                            acasx::Sense::kNone);
  ASSERT_TRUE(d.maneuver);
  EXPECT_EQ(d.sense, acasx::Sense::kDescend);
}

TEST(SvoDecide, CoordinationForbidsSense) {
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(2000, 0, 1030, -40, 0, 0);
  SvoCas free_svo;
  const auto preferred = free_svo.decide(own, intr, acasx::Sense::kNone);
  ASSERT_TRUE(preferred.maneuver);
  SvoCas constrained;
  const auto forced = constrained.decide(own, intr, preferred.sense);
  ASSERT_TRUE(forced.maneuver);
  EXPECT_NE(forced.sense, preferred.sense);
}

TEST(SvoDecide, HysteresisThenClear) {
  SvoConfig config;
  config.clear_hysteresis_s = 2.0;
  SvoCas svo(config);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  ASSERT_TRUE(svo.decide(own, track(2000, 0, 1000, -40, 0, 0), acasx::Sense::kNone).maneuver);
  int cycles = 0;
  for (int i = 0; i < 10; ++i) {
    ++cycles;
    if (!svo.decide(own, track(-5000, 0, 1000, -40, 0, 0), acasx::Sense::kNone).maneuver) break;
  }
  EXPECT_LE(cycles, 4);
}

TEST(SvoDecide, CommandedRateRespectsCaps) {
  SvoConfig config;
  config.max_rate_mps = 2.0;
  SvoCas svo(config);
  // Late, severe conflict wanting a big rate: must clamp to 2 m/s.
  const auto d = svo.decide(track(0, 0, 1000, 40, 0, 0), track(400, 0, 1005, -40, 0, 0),
                            acasx::Sense::kNone);
  ASSERT_TRUE(d.maneuver);
  EXPECT_LE(std::abs(d.target_vs_mps), 2.0 + 1e-9);
}

TEST(SvoDecide, ResetClearsAvoidanceState) {
  SvoCas svo;
  const auto own = track(0, 0, 1000, 40, 0, 0);
  ASSERT_TRUE(svo.decide(own, track(2000, 0, 1000, -40, 0, 0), acasx::Sense::kNone).maneuver);
  svo.reset();
  EXPECT_FALSE(svo.decide(own, track(20000, 0, 1000, -40, 0, 0), acasx::Sense::kNone).maneuver);
}

}  // namespace
}  // namespace cav::baselines
