// Scenario library + multi-intruder encounter model tests: family
// construction, CPA geometry invariants, deterministic per-intruder
// sampling, and the genome round trip the multi GA search relies on.
#include "scenarios/scenario_library.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "encounter/multi_encounter.h"
#include "util/angles.h"
#include "util/expect.h"
#include "util/vec3.h"

namespace cav::scenarios {
namespace {

sim::SimConfig quiet_config() {
  sim::SimConfig config;
  config.disturbance = sim::DisturbanceConfig::none();
  config.adsb = sim::AdsbConfig::perfect();
  return config;
}

TEST(ScenarioLibrary, NamesRoundTripThroughMakeScenario) {
  ASSERT_EQ(scenario_names().size(), 6U);
  for (const std::string& name : scenario_names()) {
    const Scenario s = make_scenario(name);
    EXPECT_EQ(s.name, name);
    EXPECT_EQ(s.initial_states().size(), s.num_aircraft());
    if (s.explicit_states.empty()) {
      EXPECT_GE(s.params.num_intruders(), 1U);
      EXPECT_GT(s.suggested_time_s(), s.params.max_t_cpa_s());
    } else {
      // Explicit-state family (city-corridors): the states are the
      // scenario and the horizon is explicit.
      EXPECT_GE(s.num_aircraft(), 2U);
      EXPECT_GT(s.suggested_time_s(), 0.0);
    }
  }
  EXPECT_THROW(make_scenario("no-such-family"), ContractViolation);
}

TEST(ScenarioLibrary, OvertakeRejectsMultipleIntruders) {
  // A silent fallback to K=1 would mislabel density sweeps.
  EXPECT_THROW(make_scenario("overtake", 3), ContractViolation);
  EXPECT_EQ(make_scenario("overtake", 1).params.num_intruders(), 1U);
}

TEST(ScenarioLibrary, RequestedIntruderCountsAreHonored) {
  EXPECT_EQ(head_on(3).params.num_intruders(), 3U);
  EXPECT_EQ(crossing(5).params.num_intruders(), 5U);
  EXPECT_EQ(converging_ring(6).params.num_intruders(), 6U);
  EXPECT_EQ(high_density_random(9, 1).params.num_intruders(), 9U);
  EXPECT_EQ(overtake().params.num_intruders(), 1U);
  EXPECT_EQ(make_scenario("converging-ring").params.num_intruders(), 4U) << "family default";
}

TEST(ScenarioLibrary, ConvergingRingIsEquidistantAndSimultaneous) {
  const Scenario ring = converging_ring(5, 40.0);
  const auto states = ring.initial_states();
  ASSERT_EQ(states.size(), 6U);
  // Every intruder converges on the own-ship's CPA position at the same
  // time, so all start equidistant from it (gs * T) at distinct bearings.
  const Vec3 own_cpa =
      states[0].position_m + states[0].velocity_mps() * 40.0;
  for (std::size_t k = 1; k < states.size(); ++k) {
    EXPECT_NEAR(distance(states[k].position_m, own_cpa), 35.0 * 40.0, 1e-6) << k;
    const Vec3 at_cpa = states[k].position_m + states[k].velocity_mps() * 40.0;
    EXPECT_NEAR(distance(at_cpa, own_cpa), 0.0, 1e-6) << k;
  }
}

TEST(ScenarioLibrary, UnequippedConvergingRingHitsTheOwnship) {
  const Scenario ring = converging_ring(4);
  const auto result = run_scenario(ring, quiet_config(), {}, {}, 1);
  EXPECT_TRUE(result.own_nmac()) << "all intruders pass through the own-ship's CPA";
  EXPECT_EQ(result.agents.size(), 5U);
}

TEST(ScenarioLibrary, OvertakeMatchesThePaperTailApproach) {
  const Scenario s = overtake();
  const encounter::EncounterParams expected = encounter::tail_approach();
  const encounter::EncounterParams got = s.params.pairwise(0);
  EXPECT_DOUBLE_EQ(got.gs_own_mps, expected.gs_own_mps);
  EXPECT_DOUBLE_EQ(got.vs_own_mps, expected.vs_own_mps);
  EXPECT_DOUBLE_EQ(got.t_cpa_s, expected.t_cpa_s);
  EXPECT_DOUBLE_EQ(got.gs_int_mps, expected.gs_int_mps);
  EXPECT_DOUBLE_EQ(got.vs_int_mps, expected.vs_int_mps);
}

TEST(ScenarioLibrary, HighDensityIsDeterministicInSeed) {
  const Scenario a = high_density_random(6, 42);
  const Scenario b = high_density_random(6, 42);
  const Scenario c = high_density_random(6, 43);
  EXPECT_EQ(a.params.to_vector(), b.params.to_vector());
  EXPECT_NE(a.params.to_vector(), c.params.to_vector());
}

TEST(ScenarioLibrary, DefaultEquipageIsBitIdenticalToPlainOverload) {
  const Scenario ring = converging_ring(3);
  sim::SimConfig config;
  config.coordination.message_loss_prob = 0.2;  // exercise the lossy path too
  const auto plain = run_scenario(ring, config, {}, {}, 7);
  const auto with_equipage = run_scenario(ring, config, {}, {}, 7, ScenarioEquipage{});
  EXPECT_EQ(plain.nmac, with_equipage.nmac);
  EXPECT_DOUBLE_EQ(plain.proximity.min_distance_m, with_equipage.proximity.min_distance_m);
  EXPECT_EQ(plain.own.alert_cycles, with_equipage.own.alert_cycles);
}

TEST(ScenarioLibrary, ZeroEquipageStripsEveryIntruderCas) {
  // With fraction 0 the intruder factory must never be invoked — identical
  // to passing no factory (and to the unequipped baseline result).
  const Scenario ring = converging_ring(4);
  int factory_calls = 0;
  const sim::CasFactory counting = [&factory_calls]() {
    ++factory_calls;
    return std::unique_ptr<sim::CollisionAvoidanceSystem>();
  };
  ScenarioEquipage equipage;
  equipage.equipage_fraction = 0.0;
  const auto stripped = run_scenario(ring, quiet_config(), {}, counting, 1, equipage);
  EXPECT_EQ(factory_calls, 0);
  const auto unequipped = run_scenario(ring, quiet_config(), {}, {}, 1);
  EXPECT_EQ(stripped.own_nmac(), unequipped.own_nmac());
  EXPECT_DOUBLE_EQ(stripped.proximity.min_distance_m, unequipped.proximity.min_distance_m);
}

TEST(ScenarioLibrary, EquipageDrawIsDeterministicInSeed) {
  // Same seed -> same equipage pattern -> identical results.
  const Scenario dense = high_density_random(5, 11);
  ScenarioEquipage equipage;
  equipage.equipage_fraction = 0.5;
  sim::SimConfig config = quiet_config();
  const auto a = run_scenario(dense, config, {}, {}, 21, equipage);
  const auto b = run_scenario(dense, config, {}, {}, 21, equipage);
  EXPECT_EQ(a.nmac, b.nmac);
  EXPECT_DOUBLE_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
}

TEST(ScenarioLibrary, AdversarialUnequippedGetScriptedCas) {
  // Fraction 0 + adversarial: every intruder flies the scripted maneuver
  // (visible through the advisory labels) and counts no alerts.
  const Scenario ring = converging_ring(3);
  ScenarioEquipage equipage;
  equipage.equipage_fraction = 0.0;
  equipage.adversarial_unequipped = true;
  const auto r = run_scenario(ring, quiet_config(), {}, {}, 5, equipage);
  for (std::size_t i = 1; i < r.agents.size(); ++i) {
    EXPECT_FALSE(r.agents[i].ever_alerted) << "agent " << i;
    EXPECT_EQ(r.agents[i].alert_cycles, 0) << "agent " << i;
  }
}

TEST(DegradedScenarios, NamesRoundTripThroughFactory) {
  ASSERT_EQ(degraded_scenario_names().size(), 2U);
  for (const std::string& name : degraded_scenario_names()) {
    const DegradedScenario d = make_degraded_scenario(name);
    EXPECT_EQ(d.scenario.name, name);
    EXPECT_EQ(d.scenario.params.num_intruders(), 2U);
    EXPECT_TRUE(d.fault.any() || d.coordination.message_loss_prob > 0.0 ||
                d.coordination.burst_model_active())
        << name << " must actually be degraded";
  }
  EXPECT_THROW(make_degraded_scenario("no-such-fixture"), ContractViolation);
}

TEST(DegradedScenarios, RunsAreDeterministic) {
  for (const std::string& name : degraded_scenario_names()) {
    const DegradedScenario d = make_degraded_scenario(name);
    const auto a = run_degraded_scenario(d, sim::SimConfig{}, {}, {});
    const auto b = run_degraded_scenario(d, sim::SimConfig{}, {}, {});
    EXPECT_EQ(a.own_nmac(), b.own_nmac()) << name;
    EXPECT_DOUBLE_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m) << name;
  }
}

TEST(MultiEncounterModel, PerIntruderStreamsAreIndependentOfK) {
  // Intruder k's geometry depends only on (seed, index, k): growing the
  // fleet extends an encounter without disturbing the intruders it had.
  const encounter::MultiEncounterModel small(3);
  const encounter::MultiEncounterModel large(7);
  const auto a = small.sample(9, 4);
  const auto b = large.sample(9, 4);
  ASSERT_EQ(a.num_intruders(), 3U);
  ASSERT_EQ(b.num_intruders(), 7U);
  EXPECT_DOUBLE_EQ(a.gs_own_mps, b.gs_own_mps);
  EXPECT_DOUBLE_EQ(a.vs_own_mps, b.vs_own_mps);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(a.pairwise(k).to_array(), b.pairwise(k).to_array()) << k;
  }
}

TEST(MultiEncounterModel, SamplesRespectTheConfiguredRanges) {
  const encounter::MultiEncounterModel model(4);
  const encounter::ParamRanges& ranges = model.base().config().ranges;
  for (std::uint64_t i = 0; i < 25; ++i) {
    const auto m = model.sample(3, i);
    for (std::size_t k = 0; k < m.num_intruders(); ++k) {
      EXPECT_TRUE(ranges.contains(m.pairwise(k).to_array())) << i << "/" << k;
    }
  }
}

TEST(MultiEncounterParams, VectorRoundTrip) {
  const auto m = encounter::MultiEncounterModel(3).sample(5, 0);
  const std::vector<double> x = m.to_vector();
  ASSERT_EQ(x.size(), encounter::kOwnParams + 3 * encounter::kIntruderParams);
  const auto back = encounter::MultiEncounterParams::from_vector(x);
  EXPECT_EQ(back.to_vector(), x);
  EXPECT_EQ(back.num_intruders(), 3U);
  EXPECT_THROW(encounter::MultiEncounterParams::from_vector({1.0, 2.0, 3.0}),
               ContractViolation);
}

TEST(MultiEncounterParams, PairwiseRoundTrip) {
  const encounter::EncounterParams p = encounter::crossing();
  const auto m = encounter::MultiEncounterParams::from_pairwise(p);
  ASSERT_EQ(m.num_intruders(), 1U);
  EXPECT_EQ(m.pairwise(0).to_array(), p.to_array());
  EXPECT_DOUBLE_EQ(m.max_t_cpa_s(), p.t_cpa_s);
}

TEST(MultiEncounterParams, MultiInitialStatesMatchPairwiseReconstruction) {
  const auto m = encounter::MultiEncounterModel(3).sample(11, 2);
  const auto states = encounter::generate_multi_initial_states(m);
  ASSERT_EQ(states.size(), 4U);
  for (std::size_t k = 0; k < 3; ++k) {
    const auto pair = encounter::generate_initial_states(m.pairwise(k));
    EXPECT_EQ(states[0].position_m, pair.own.position_m);
    EXPECT_EQ(states[k + 1].position_m, pair.intruder.position_m);
    EXPECT_DOUBLE_EQ(states[k + 1].ground_speed_mps, pair.intruder.ground_speed_mps);
  }
}

TEST(MultiEncounterParams, BoundsAreIndexAlignedWithTheVectorEncoding) {
  std::vector<double> lo;
  std::vector<double> hi;
  const encounter::ParamRanges ranges;
  encounter::multi_param_bounds(ranges, 2, &lo, &hi);
  ASSERT_EQ(lo.size(), encounter::kOwnParams + 2 * encounter::kIntruderParams);
  ASSERT_EQ(hi.size(), lo.size());
  // A sampled encounter flattens inside its own bounds.
  const auto m = encounter::MultiEncounterModel(
                     2, encounter::StatisticalModelConfig{.ranges = ranges})
                     .sample(1, 0);
  const auto x = m.to_vector();
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], lo[i]) << i;
    EXPECT_LE(x[i], hi[i]) << i;
  }
}

}  // namespace
}  // namespace cav::scenarios
