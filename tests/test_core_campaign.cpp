// ValidationCampaign work-unit surface: stripe tiling, the N-shard merge
// bit-identity contract (the property sharded execution stands on), the
// estimate_rates compatibility wrapper, the risk-ratio sentinel/Wilson
// API, and the fitness evaluators' matching evaluate_runs/merge surface.
#include "core/validation_campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/tcas_like.h"
#include "core/fitness.h"
#include "core/monte_carlo.h"
#include "encounter/encounter.h"
#include "encounter/multi_encounter.h"

namespace cav::core {
namespace {

MonteCarloConfig small_config(std::size_t encounters = 90) {
  MonteCarloConfig config;
  config.encounters = encounters;
  config.seed = 17;
  return config;
}

void expect_rates_identical(const SystemRates& a, const SystemRates& b) {
  EXPECT_EQ(a.encounters, b.encounters);
  EXPECT_EQ(a.nmacs, b.nmacs);
  EXPECT_EQ(a.alerts, b.alerts);
  // Bit-identity, not tolerance: the canonical-cell accumulation fixes
  // the FP grouping, so the doubles must match exactly.
  EXPECT_EQ(a.mean_min_separation_m, b.mean_min_separation_m);
}

TEST(ValidationCampaignTest, EstimateRatesIsASingleStripeCampaign) {
  const encounter::StatisticalEncounterModel model;
  const auto config = small_config();
  const SystemRates wrapper =
      estimate_rates(model, config, "tcas", baselines::TcasLikeCas::factory(),
                     baselines::TcasLikeCas::factory());

  const ValidationCampaign campaign(model, config, "tcas", baselines::TcasLikeCas::factory(),
                                    baselines::TcasLikeCas::factory());
  const CampaignResult result = campaign.run();
  expect_rates_identical(wrapper, result.rates);
  EXPECT_EQ(result.work_units, 1u);
  EXPECT_FALSE(result.degraded);
}

TEST(ValidationCampaignTest, StripesTileTheEncounterRange) {
  const encounter::StatisticalEncounterModel model;
  const ValidationCampaign campaign(model, small_config(), "none", {}, {});
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    const auto stripes = campaign.make_stripes(shards);
    ASSERT_FALSE(stripes.empty());
    EXPECT_LE(stripes.size(), shards);
    EXPECT_EQ(stripes.front().begin, 0u);
    EXPECT_EQ(stripes.back().end, campaign.config().encounters);
    for (std::size_t i = 0; i + 1 < stripes.size(); ++i) {
      EXPECT_EQ(stripes[i].end, stripes[i + 1].begin) << "gap or overlap at stripe " << i;
      EXPECT_GT(stripes[i].size(), 0u);
    }
    for (const auto& s : stripes) EXPECT_EQ(s.seed, campaign.config().seed);
  }
}

TEST(ValidationCampaignTest, ShardedMergeIsBitIdenticalForRaggedStripeCounts) {
  // 90 encounters -> 64 canonical cells, which 2, 3, and 7 shards cut
  // raggedly (cells per stripe differ).  Whatever the striping — and
  // whatever order the results arrive in — the merge must equal the
  // single-stripe run bit for bit.
  const encounter::StatisticalEncounterModel model;
  const auto config = small_config();
  const ValidationCampaign campaign(model, config, "tcas", baselines::TcasLikeCas::factory(),
                                    baselines::TcasLikeCas::factory());
  const SystemRates whole = campaign.run().rates;

  for (const std::size_t shards : {2u, 3u, 7u}) {
    const auto stripes = campaign.make_stripes(shards);
    std::vector<StripeResult> results;
    for (const auto& stripe : stripes) results.push_back(campaign.run_stripe(stripe));
    // Completion order must not matter: merge sorts by first_cell.
    std::reverse(results.begin(), results.end());
    expect_rates_identical(campaign.merge(results), whole);
  }
}

TEST(ValidationCampaignTest, ThreadPoolDoesNotPerturbStripeResults) {
  const encounter::StatisticalEncounterModel model;
  const ValidationCampaign campaign(model, small_config(60), "none", {}, {});
  const auto stripes = campaign.make_stripes(3);
  ThreadPool pool(3);
  for (const auto& stripe : stripes) {
    const StripeResult serial = campaign.run_stripe(stripe);
    const StripeResult pooled = campaign.run_stripe(stripe, &pool);
    ASSERT_EQ(serial.cells.size(), pooled.cells.size());
    EXPECT_EQ(serial.first_cell, pooled.first_cell);
    for (std::size_t c = 0; c < serial.cells.size(); ++c) {
      EXPECT_EQ(serial.cells[c].nmacs, pooled.cells[c].nmacs);
      EXPECT_EQ(serial.cells[c].alerts, pooled.cells[c].alerts);
      EXPECT_EQ(serial.cells[c].sep_sum, pooled.cells[c].sep_sum);
    }
  }
}

TEST(ValidationCampaignTest, StripeSeedOverridesCampaignSeed) {
  // A driver can re-seed work units without rebuilding the campaign: the
  // stripe's seed governs every draw.
  const encounter::StatisticalEncounterModel model;
  const ValidationCampaign campaign(model, small_config(40), "none", {}, {});
  auto stripes = campaign.make_stripes(1);
  ASSERT_EQ(stripes.size(), 1u);
  const StripeResult original = campaign.run_stripe(stripes[0]);
  stripes[0].seed = 4242;
  const StripeResult reseeded = campaign.run_stripe(stripes[0]);
  double sep_a = 0.0, sep_b = 0.0;
  for (const auto& c : original.cells) sep_a += c.sep_sum;
  for (const auto& c : reseeded.cells) sep_b += c.sep_sum;
  EXPECT_NE(sep_a, sep_b) << "different seed must sample different traffic";
}

TEST(RiskRatioTest, WilsonVariantOnDefinedBaseline) {
  SystemRates base;
  base.encounters = 1000;
  base.nmacs = 100;
  SystemRates sys;
  sys.encounters = 1000;
  sys.nmacs = 10;

  const double point = risk_ratio(sys, base);
  EXPECT_NEAR(point, 0.1, 1e-12);

  const RiskRatioEstimate est = risk_ratio_wilson(sys, base);
  EXPECT_TRUE(est.defined);
  EXPECT_EQ(est.ratio, point);
  EXPECT_GT(est.lo, 0.0);
  EXPECT_LT(est.lo, est.ratio);
  EXPECT_GT(est.hi, est.ratio);
  EXPECT_TRUE(std::isfinite(est.hi));
}

TEST(RiskRatioTest, ZeroNmacBaselineYieldsSentinelNotNan) {
  SystemRates base;
  base.encounters = 500;
  base.nmacs = 0;
  SystemRates sys;
  sys.encounters = 500;
  sys.nmacs = 5;

  const double point = risk_ratio(sys, base);
  EXPECT_FALSE(std::isnan(point)) << "the historical quiet-NaN must be gone";
  EXPECT_EQ(point, kRiskRatioUndefined);

  const RiskRatioEstimate est = risk_ratio_wilson(sys, base);
  EXPECT_FALSE(est.defined);
  EXPECT_EQ(est.ratio, kRiskRatioUndefined);
  // The honest interval: bounded below (baseline's Wilson hi is > 0 on
  // finite data), unbounded above.
  EXPECT_GT(est.lo, 0.0);
  EXPECT_TRUE(std::isinf(est.hi));
}

TEST(RiskRatioTest, ZeroSystemNmacsIsAHardZeroWhenDefined) {
  SystemRates base;
  base.encounters = 200;
  base.nmacs = 20;
  SystemRates sys;
  sys.encounters = 200;
  sys.nmacs = 0;
  EXPECT_EQ(risk_ratio(sys, base), 0.0);
  const RiskRatioEstimate est = risk_ratio_wilson(sys, base);
  EXPECT_TRUE(est.defined);
  EXPECT_EQ(est.ratio, 0.0);
  EXPECT_GE(est.lo, 0.0);
  EXPECT_GT(est.hi, 0.0) << "Wilson hi of 0/200 is positive — no false certainty";
}

TEST(FitnessWorkUnitTest, EvaluateEqualsMergedStripes) {
  // The GA fitness evaluator mirrors the campaign's work-unit surface:
  // any partition of the run range merges bit-identically to evaluate().
  FitnessConfig config;
  config.runs_per_encounter = 12;
  const EncounterEvaluator evaluator(config, {}, {});
  const auto params = encounter::crossing();

  const EncounterEvaluation whole = evaluator.evaluate(params, 7);
  for (const std::size_t cut : {1u, 5u, 11u}) {
    auto head = evaluator.evaluate_runs(params, 7, 0, cut);
    const auto tail = evaluator.evaluate_runs(params, 7, cut, config.runs_per_encounter);
    head.insert(head.end(), tail.begin(), tail.end());
    const EncounterEvaluation merged = evaluator.merge(head);
    EXPECT_EQ(merged.runs, whole.runs);
    EXPECT_EQ(merged.nmac_count, whole.nmac_count);
    EXPECT_EQ(merged.fitness, whole.fitness) << "cut=" << cut;
    EXPECT_EQ(merged.mean_miss_m, whole.mean_miss_m) << "cut=" << cut;
    EXPECT_EQ(merged.min_miss_m, whole.min_miss_m) << "cut=" << cut;
    EXPECT_EQ(merged.alert_fraction_own, whole.alert_fraction_own) << "cut=" << cut;
  }
}

TEST(FitnessWorkUnitTest, MultiEvaluatorMatchesToo) {
  FitnessConfig config;
  config.runs_per_encounter = 8;
  const MultiEncounterEvaluator evaluator(config, {}, {});
  encounter::MultiEncounterParams params;
  params.intruders.resize(2);
  params.intruders[0].r_cpa_m = 60.0;
  params.intruders[1].theta_cpa_rad = 1.2;
  params.intruders[1].t_cpa_s = 50.0;

  const MultiEncounterEvaluation whole = evaluator.evaluate(params, 3);
  auto a = evaluator.evaluate_runs(params, 3, 0, 3);
  const auto b = evaluator.evaluate_runs(params, 3, 3, 8);
  a.insert(a.end(), b.begin(), b.end());
  const MultiEncounterEvaluation merged = evaluator.merge(a);
  EXPECT_EQ(merged.own_nmac_count, whole.own_nmac_count);
  EXPECT_EQ(merged.fitness, whole.fitness);
  EXPECT_EQ(merged.mean_miss_m, whole.mean_miss_m);
}

}  // namespace
}  // namespace cav::core
