#include "sim/sensors.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace cav::sim {
namespace {

UavState level_state() {
  UavState s;
  s.position_m = {100.0, 200.0, 1000.0};
  s.ground_speed_mps = 30.0;
  s.bearing_rad = 0.0;
  s.vertical_speed_mps = 1.0;
  return s;
}

TEST(AdsbSensor, PerfectConfigIsExact) {
  const AdsbSensor sensor(AdsbConfig::perfect());
  RngStream rng(1);
  const auto track = sensor.observe(level_state(), rng);
  ASSERT_TRUE(track.has_value());
  EXPECT_EQ(track->position_m, (Vec3{100.0, 200.0, 1000.0}));
  EXPECT_EQ(track->velocity_mps, (Vec3{30.0, 0.0, 1.0}));
}

TEST(AdsbSensor, NoiseIsUnbiasedWithConfiguredSpread) {
  AdsbConfig config;
  config.horizontal_pos_sigma_m = 15.0;
  config.vertical_pos_sigma_m = 7.5;
  config.horizontal_vel_sigma_mps = 1.0;
  config.vertical_vel_sigma_mps = 0.5;
  const AdsbSensor sensor(config);
  RngStream rng(2);

  RunningStats x;
  RunningStats z;
  RunningStats vz;
  const UavState truth = level_state();
  for (int i = 0; i < 20000; ++i) {
    const auto track = sensor.observe(truth, rng);
    ASSERT_TRUE(track.has_value());
    x.add(track->position_m.x);
    z.add(track->position_m.z);
    vz.add(track->velocity_mps.z);
  }
  EXPECT_NEAR(x.mean(), 100.0, 0.5);
  EXPECT_NEAR(x.stddev(), 15.0, 0.5);
  EXPECT_NEAR(z.mean(), 1000.0, 0.25);
  EXPECT_NEAR(z.stddev(), 7.5, 0.25);
  EXPECT_NEAR(vz.mean(), 1.0, 0.02);
  EXPECT_NEAR(vz.stddev(), 0.5, 0.02);
}

TEST(AdsbSensor, DropoutFrequencyMatchesConfig) {
  AdsbConfig config;
  config.dropout_prob = 0.25;
  const AdsbSensor sensor(config);
  RngStream rng(3);
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!sensor.observe(level_state(), rng).has_value()) ++lost;
  }
  EXPECT_NEAR(lost / static_cast<double>(n), 0.25, 0.02);
}

TEST(AdsbSensor, ZeroDropoutNeverLoses) {
  const AdsbSensor sensor(AdsbConfig{});
  RngStream rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sensor.observe(level_state(), rng).has_value());
  }
}

TEST(AdsbSensor, DeterministicPerStream) {
  const AdsbSensor sensor(AdsbConfig{});
  RngStream a(9);
  RngStream b(9);
  const auto ta = sensor.observe(level_state(), a);
  const auto tb = sensor.observe(level_state(), b);
  ASSERT_TRUE(ta.has_value() && tb.has_value());
  EXPECT_EQ(ta->position_m, tb->position_m);
  EXPECT_EQ(ta->velocity_mps, tb->velocity_mps);
}

}  // namespace
}  // namespace cav::sim
