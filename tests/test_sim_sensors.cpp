#include "sim/sensors.h"

#include <gtest/gtest.h>

#include "sim/faults.h"
#include "util/stats.h"

namespace cav::sim {
namespace {

UavState level_state() {
  UavState s;
  s.position_m = {100.0, 200.0, 1000.0};
  s.ground_speed_mps = 30.0;
  s.bearing_rad = 0.0;
  s.vertical_speed_mps = 1.0;
  return s;
}

TEST(AdsbSensor, PerfectConfigIsExact) {
  const AdsbSensor sensor(AdsbConfig::perfect());
  RngStream rng(1);
  const auto track = sensor.observe(level_state(), rng);
  ASSERT_TRUE(track.has_value());
  EXPECT_EQ(track->position_m, (Vec3{100.0, 200.0, 1000.0}));
  EXPECT_EQ(track->velocity_mps, (Vec3{30.0, 0.0, 1.0}));
}

TEST(AdsbSensor, NoiseIsUnbiasedWithConfiguredSpread) {
  AdsbConfig config;
  config.horizontal_pos_sigma_m = 15.0;
  config.vertical_pos_sigma_m = 7.5;
  config.horizontal_vel_sigma_mps = 1.0;
  config.vertical_vel_sigma_mps = 0.5;
  const AdsbSensor sensor(config);
  RngStream rng(2);

  RunningStats x;
  RunningStats z;
  RunningStats vz;
  const UavState truth = level_state();
  for (int i = 0; i < 20000; ++i) {
    const auto track = sensor.observe(truth, rng);
    ASSERT_TRUE(track.has_value());
    x.add(track->position_m.x);
    z.add(track->position_m.z);
    vz.add(track->velocity_mps.z);
  }
  EXPECT_NEAR(x.mean(), 100.0, 0.5);
  EXPECT_NEAR(x.stddev(), 15.0, 0.5);
  EXPECT_NEAR(z.mean(), 1000.0, 0.25);
  EXPECT_NEAR(z.stddev(), 7.5, 0.25);
  EXPECT_NEAR(vz.mean(), 1.0, 0.02);
  EXPECT_NEAR(vz.stddev(), 0.5, 0.02);
}

TEST(AdsbSensor, DropoutFrequencyMatchesConfig) {
  AdsbConfig config;
  config.dropout_prob = 0.25;
  const AdsbSensor sensor(config);
  RngStream rng(3);
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!sensor.observe(level_state(), rng).has_value()) ++lost;
  }
  EXPECT_NEAR(lost / static_cast<double>(n), 0.25, 0.02);
}

TEST(AdsbSensor, ZeroDropoutNeverLoses) {
  const AdsbSensor sensor(AdsbConfig{});
  RngStream rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(sensor.observe(level_state(), rng).has_value());
  }
}

TEST(AdsbDegraded, BurstDropoutRateMatchesTheory) {
  // With burst start probability p and continuation probability c, the
  // receive path is a renewal process: each received cycle starts a burst
  // with probability p, and a burst costs 1/(1-c) lost cycles on average.
  // Long-run loss fraction = E[lost] / (E[lost] + E[received run]) with
  // E[received run] = 1/p, i.e. loss = L / (L + 1/p) for L = 1/(1-c).
  const AdsbSensor sensor(AdsbConfig::perfect());
  FaultProfile fault;
  fault.adsb_dropout_burst_prob = 0.1;
  fault.adsb_burst_continue_prob = 0.5;
  RngStream noise(5);
  RngStream fault_rng(6);
  int burst_left = 0;
  int lost = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (!observe_degraded(sensor, level_state(), fault, noise, fault_rng, &burst_left)
             .has_value()) {
      ++lost;
    }
  }
  const double mean_burst = 1.0 / (1.0 - fault.adsb_burst_continue_prob);
  const double expected = mean_burst / (mean_burst + 1.0 / fault.adsb_dropout_burst_prob);
  EXPECT_NEAR(lost / static_cast<double>(n), expected, 0.02);
}

TEST(AdsbDegraded, BiasShiftsMeanWithoutChangingSigma) {
  AdsbConfig config;
  config.horizontal_pos_sigma_m = 15.0;
  const AdsbSensor sensor(config);
  FaultProfile fault;
  fault.adsb_position_bias_m = {40.0, -25.0, 10.0};
  fault.adsb_velocity_bias_mps = {0.0, 0.0, 2.0};
  RngStream noise(7);
  RngStream fault_rng(8);
  int burst_left = 0;

  RunningStats x;
  RunningStats y;
  RunningStats vz;
  const UavState truth = level_state();
  for (int i = 0; i < 20000; ++i) {
    const auto track = observe_degraded(sensor, truth, fault, noise, fault_rng, &burst_left);
    ASSERT_TRUE(track.has_value());
    x.add(track->position_m.x);
    y.add(track->position_m.y);
    vz.add(track->velocity_mps.z);
  }
  EXPECT_NEAR(x.mean(), 100.0 + 40.0, 0.5);
  EXPECT_NEAR(x.stddev(), 15.0, 0.5);
  EXPECT_NEAR(y.mean(), 200.0 - 25.0, 0.5);
  EXPECT_NEAR(vz.mean(), 1.0 + 2.0, 0.02);
}

TEST(AdsbDegraded, BiasOnlyProfileConsumesNoFaultDraws) {
  // Enabling bias alone must not touch the fault stream, so bias can be
  // added to an existing campaign without re-pairing any seed.
  const AdsbSensor sensor(AdsbConfig{});
  FaultProfile fault;
  fault.adsb_position_bias_m = {5.0, 0.0, 0.0};
  RngStream noise(9);
  RngStream fault_rng(10);
  RngStream fault_ref(10);
  int burst_left = 0;
  for (int i = 0; i < 100; ++i) {
    observe_degraded(sensor, level_state(), fault, noise, fault_rng, &burst_left);
  }
  EXPECT_EQ(fault_rng.next_u64(), fault_ref.next_u64());
}

TEST(AdsbDegraded, NoneProfileMatchesPlainSensorDrawForDraw) {
  // observe_degraded with a no-op profile is routed around in the engine,
  // but it must still agree with the plain sensor when called directly.
  AdsbConfig config;
  config.dropout_prob = 0.2;
  const AdsbSensor sensor(config);
  RngStream a(11);
  RngStream b(11);
  RngStream fault_rng(12);
  int burst_left = 0;
  for (int i = 0; i < 200; ++i) {
    const auto plain = sensor.observe(level_state(), a);
    const auto degraded = observe_degraded(sensor, level_state(), FaultProfile::none(), b,
                                           fault_rng, &burst_left);
    ASSERT_EQ(plain.has_value(), degraded.has_value());
    if (plain.has_value()) {
      EXPECT_EQ(plain->position_m, degraded->position_m);
      EXPECT_EQ(plain->velocity_mps, degraded->velocity_mps);
    }
  }
}

TEST(AdsbDegraded, BurstLengthIsCappedAndPositive) {
  RngStream rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int len = draw_burst_length(rng, 0.999);
    EXPECT_GE(len, 1);
    EXPECT_LE(len, FaultProfile::kMaxBurstCycles);
  }
}

TEST(AdsbSensor, DeterministicPerStream) {
  const AdsbSensor sensor(AdsbConfig{});
  RngStream a(9);
  RngStream b(9);
  const auto ta = sensor.observe(level_state(), a);
  const auto tb = sensor.observe(level_state(), b);
  ASSERT_TRUE(ta.has_value() && tb.has_value());
  EXPECT_EQ(ta->position_m, tb->position_m);
  EXPECT_EQ(ta->velocity_mps, tb->velocity_mps);
}

}  // namespace
}  // namespace cav::sim
