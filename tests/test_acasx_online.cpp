// Online-logic tests: tau estimation geometry, advisory selection against
// the solved table, coordination masking, and hysteresis.
#include "acasx/online_logic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "acasx/offline_solver.h"
#include "util/expect.h"
#include "util/units.h"

namespace cav::acasx {
namespace {

AircraftTrack track(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

class OnlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const LogicTable>(
        std::make_shared<const LogicTable>(solve_logic_table(AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static std::shared_ptr<const LogicTable>* table_;
};

std::shared_ptr<const LogicTable>* OnlineTest::table_ = nullptr;

TEST(TauEstimate, HeadOnClosure) {
  // Intruder 2000 m ahead closing at 80 m/s.
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(2000, 0, 1000, -40, 0, 0);
  const auto est = AcasXuLogic::estimate_tau(own, intr, {});
  EXPECT_TRUE(est.converging);
  EXPECT_NEAR(est.range_ft, units::m_to_ft(2000.0), 1e-6);
  EXPECT_NEAR(est.closure_fps, units::m_to_ft(80.0), 1e-6);
  // tau = (range - dmod) / closure.
  const double expected = (units::m_to_ft(2000.0) - 500.0) / units::m_to_ft(80.0);
  EXPECT_NEAR(est.tau_s, expected, 1e-6);
}

TEST(TauEstimate, DivergingIsNotConverging) {
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(2000, 0, 1000, 40, 0, 0);  // same velocity: no closure
  EXPECT_FALSE(AcasXuLogic::estimate_tau(own, intr, {}).converging);
  const auto receding = track(2000, 0, 1000, 80, 0, 0);
  EXPECT_FALSE(AcasXuLogic::estimate_tau(own, receding, {}).converging);
}

TEST(TauEstimate, InsideDmodIsZero) {
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(100.0, 0, 1000, 39, 0, 0);  // 328 ft < dmod
  const auto est = AcasXuLogic::estimate_tau(own, intr, {});
  EXPECT_TRUE(est.converging);
  EXPECT_DOUBLE_EQ(est.tau_s, 0.0);
}

TEST(TauEstimate, SlowClosureBlindSpot) {
  // The structural weakness: 260 m apart, closing at only 0.2 m/s.
  const auto own = track(0, 0, 1000, 25, 0, -2);
  const auto intr = track(-260, 0, 990, 25.2, 0, 2);
  const auto est = AcasXuLogic::estimate_tau(own, intr, {});
  EXPECT_FALSE(est.converging) << "closure below min_closure must not predict conflict";
}

TEST(TauEstimate, CoincidentHorizontalPositions) {
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(0, 0, 1200, 40, 0, -5);
  const auto est = AcasXuLogic::estimate_tau(own, intr, {});
  EXPECT_TRUE(est.converging);
  EXPECT_DOUBLE_EQ(est.tau_s, 0.0);
}

TEST(TauEstimate, CrossingGeometry) {
  // Perpendicular crossing, both 1000 m from the crossing point at 40 m/s:
  // range 1414 m, closure = |d/dt range| = 40 * sqrt(2).
  const auto own = track(-1000, 0, 1000, 40, 0, 0);
  const auto intr = track(0, -1000, 1000, 0, 40, 0);
  const auto est = AcasXuLogic::estimate_tau(own, intr, {});
  EXPECT_TRUE(est.converging);
  EXPECT_NEAR(est.closure_fps, units::m_to_ft(40.0 * std::sqrt(2.0)), 1e-6);
}

TEST_F(OnlineTest, FarTrafficGetsCoc) {
  AcasXuLogic logic(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(20000, 0, 1000, -40, 0, 0);  // tau ~ 240 s
  EXPECT_EQ(logic.decide(own, intr), Advisory::kCoc);
  EXPECT_FALSE(logic.last_tau().converging && logic.last_tau().tau_s < 40.0);
}

TEST_F(OnlineTest, ImminentCoAltitudeThreatAlerts) {
  AcasXuLogic logic(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1000, -40, 0, 0);  // tau ~ 13 s, co-altitude
  const Advisory a = logic.decide(own, intr);
  EXPECT_NE(a, Advisory::kCoc);
}

TEST_F(OnlineTest, AdvisorySenseAwayFromIntruder) {
  AcasXuLogic logic(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  // Intruder converging and 60 m ABOVE, descending toward us.
  const auto intr = track(1200, 0, 1060, -40, 0, -3);
  const Advisory a = logic.decide(own, intr);
  EXPECT_EQ(sense_of(a), Sense::kDescend) << "chose " << advisory_name(a);

  logic.reset();
  // Mirrored: intruder below, climbing toward us.
  const auto intr2 = track(1200, 0, 940, -40, 0, 3);
  const Advisory a2 = logic.decide(own, intr2);
  EXPECT_EQ(sense_of(a2), Sense::kClimb) << "chose " << advisory_name(a2);
}

TEST_F(OnlineTest, CoordinationMaskForbidsSense) {
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1000, -40, 0, 0);

  AcasXuLogic unconstrained(*table_);
  const Advisory free_choice = unconstrained.decide(own, intr);
  ASSERT_NE(free_choice, Advisory::kCoc);

  AcasXuLogic constrained(*table_);
  const Advisory forced = constrained.decide(own, intr, sense_of(free_choice));
  EXPECT_NE(sense_of(forced), sense_of(free_choice))
      << "coordination must forbid the intruder's announced sense";
}

TEST_F(OnlineTest, HysteresisKeepsAdvisoryThroughEncounter) {
  AcasXuLogic logic(*table_);
  // Fly the encounter forward: a reasonable logic alerts once and holds the
  // sense (no chattering).
  int sense_changes = 0;
  Sense last = Sense::kNone;
  for (double t = 0.0; t < 25.0; t += 1.0) {
    const double x_int = 1400.0 - 80.0 * t;
    if (x_int < 30.0) break;
    const auto own = track(0, 0, 1000, 40, 0, 0);
    const auto intr = track(x_int, 0, 1002, -40, 0, 0);
    const Advisory a = logic.decide(own, intr);
    const Sense s = sense_of(a);
    if (s != Sense::kNone && last != Sense::kNone && s != last) ++sense_changes;
    if (s != Sense::kNone) last = s;
  }
  EXPECT_EQ(sense_changes, 0) << "sense reversed mid-encounter without cause";
  EXPECT_NE(last, Sense::kNone) << "never alerted at all";
}

TEST_F(OnlineTest, ResetClearsAdvisoryMemory) {
  AcasXuLogic logic(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1000, -40, 0, 0);
  ASSERT_NE(logic.decide(own, intr), Advisory::kCoc);
  logic.reset();
  EXPECT_EQ(logic.current_advisory(), Advisory::kCoc);
}

TEST_F(OnlineTest, CocAfterThreatPasses) {
  AcasXuLogic logic(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1000, -40, 0, 0);
  ASSERT_NE(logic.decide(own, intr), Advisory::kCoc);
  // Intruder now behind and receding.
  const auto past = track(-2000, 0, 1000, -40, 0, 0);
  EXPECT_EQ(logic.decide(own, past), Advisory::kCoc);
}

TEST_F(OnlineTest, NullTableRejected) {
  EXPECT_THROW(AcasXuLogic(nullptr), ContractViolation);
}

TEST_F(OnlineTest, LastCostsExposed) {
  AcasXuLogic logic(*table_);
  const auto own = track(0, 0, 1000, 40, 0, 0);
  const auto intr = track(1200, 0, 1000, -40, 0, 0);
  logic.decide(own, intr);
  const auto& costs = logic.last_costs();
  // Costs must differ across actions in a threat state.
  bool all_equal = true;
  for (std::size_t a = 1; a < kNumAdvisories; ++a) {
    if (costs[a] != costs[0]) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace cav::acasx
