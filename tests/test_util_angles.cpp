#include "util/angles.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cav {
namespace {

TEST(Angles, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi), 180.0);
  for (double d = -720.0; d <= 720.0; d += 37.5) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-9);
  }
}

TEST(Angles, WrapPiRange) {
  for (double a = -20.0; a <= 20.0; a += 0.137) {
    const double w = wrap_pi(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same direction: sin/cos must match.
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
  }
}

TEST(Angles, WrapPiFixedPoints) {
  EXPECT_DOUBLE_EQ(wrap_pi(0.0), 0.0);
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);       // pi maps to +pi (half-open at -pi)
  EXPECT_NEAR(wrap_pi(-kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(3.0 * kPi), kPi, 1e-9);
}

TEST(Angles, WrapTwoPiRange) {
  for (double a = -20.0; a <= 20.0; a += 0.119) {
    const double w = wrap_two_pi(a);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi + 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
  }
}

TEST(Angles, AngleDiffShortestPath) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-0.1, 0.1), -0.2, 1e-12);
  // Across the wrap: 179deg vs -179deg differ by 2deg, not 358deg.
  EXPECT_NEAR(angle_diff(deg_to_rad(179.0), deg_to_rad(-179.0)), deg_to_rad(-2.0), 1e-9);
}

TEST(Angles, AngleDiffAntisymmetric) {
  for (double a = -3.0; a <= 3.0; a += 0.7) {
    for (double b = -3.0; b <= 3.0; b += 0.9) {
      EXPECT_NEAR(angle_diff(a, b), -angle_diff(b, a), 1e-9);
    }
  }
}

}  // namespace
}  // namespace cav
