// Encounter-encoding tests.  The central property (the paper's equations
// (1)-(3)): reconstructing initial states from the 9 CPA-relative
// parameters and flying both aircraft straight (no noise, no avoidance)
// must bring them to the encoded miss distance at the encoded time.
#include "encounter/encounter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulation.h"
#include "util/angles.h"
#include "util/expect.h"

namespace cav::encounter {
namespace {

TEST(EncounterParams, ArrayRoundTrip) {
  EncounterParams p = tail_approach();
  const auto a = p.to_array();
  const EncounterParams q = EncounterParams::from_array(a);
  EXPECT_EQ(q.to_array(), a);
}

TEST(EncounterParams, NamesAlignWithArray) {
  const auto names = param_names();
  EXPECT_EQ(names.size(), kNumParams);
  EXPECT_EQ(names[0], "gs_own_mps");
  EXPECT_EQ(names[2], "t_cpa_s");
  EXPECT_EQ(names[8], "vs_int_mps");
}

TEST(ParamRanges, ContainsAndClamp) {
  const ParamRanges ranges;
  auto x = head_on().to_array();
  EXPECT_TRUE(ranges.contains(x));
  x[0] = 1000.0;  // ground speed far out of range
  EXPECT_FALSE(ranges.contains(x));
  const auto clamped = ranges.clamp(x);
  EXPECT_TRUE(ranges.contains(clamped));
  EXPECT_DOUBLE_EQ(clamped[0], ranges.hi[0]);
}

TEST(ParamRanges, UniformSamplesStayInside) {
  const ParamRanges ranges;
  RngStream rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(ranges.contains(ranges.sample_uniform(rng).to_array()));
  }
}

TEST(Generate, OwnShipStartsAtReference) {
  const OwnshipReference ref;
  const InitialStates init = generate_initial_states(head_on(), ref);
  EXPECT_EQ(init.own.position_m, ref.position_m);
  EXPECT_DOUBLE_EQ(init.own.bearing_rad, ref.bearing_rad);
}

TEST(Generate, HeadOnGeometryIsSymmetric) {
  const InitialStates init = generate_initial_states(head_on());
  // Own flies +x at 40; intruder starts 3200 m ahead flying -x at 40.
  EXPECT_NEAR(init.intruder.position_m.x, 40.0 * 40.0 + 40.0 * 40.0, 1e-9);
  EXPECT_NEAR(init.intruder.position_m.y, 0.0, 1e-9);
  EXPECT_NEAR(init.intruder.position_m.z, init.own.position_m.z, 1e-9);
  EXPECT_NEAR(init.intruder.velocity_mps().x, -40.0, 1e-9);
}

TEST(Generate, RejectsNonPositiveTime) {
  EncounterParams p = head_on();
  p.t_cpa_s = 0.0;
  EXPECT_THROW(generate_initial_states(p), ContractViolation);
}

/// The round-trip property, swept across the parameter space.
class CpaRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CpaRoundTripTest, StraightFlightReachesEncodedCpa) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()));
  const ParamRanges ranges;
  const EncounterParams params = ranges.sample_uniform(rng);
  const InitialStates init = generate_initial_states(params);

  // Propagate both trajectories analytically to t_cpa.
  const Vec3 own_cpa = init.own.position_m + init.own.velocity_mps() * params.t_cpa_s;
  const Vec3 int_cpa = init.intruder.position_m + init.intruder.velocity_mps() * params.t_cpa_s;
  const Vec3 offset = int_cpa - own_cpa;

  EXPECT_NEAR(std::hypot(offset.x, offset.y), params.r_cpa_m, 1e-6);
  EXPECT_NEAR(offset.z, params.y_cpa_m, 1e-6);
  if (params.r_cpa_m > 1.0) {
    EXPECT_NEAR(wrap_pi(std::atan2(offset.y, offset.x) - params.theta_cpa_rad), 0.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomParams, CpaRoundTripTest, ::testing::Range(1, 26));

TEST(Generate, SimulatedFlightMatchesAnalyticCpa) {
  // Integrate with the actual simulator (no noise, unequipped) and compare
  // against the analytic CPA of the two straight-line trajectories.
  //
  // Note a real property of the paper's encoding: the parameters place the
  // intruder at offset (R, theta, Y) at time T, but when R > 0 that offset
  // need not be perpendicular to the relative velocity, so the *true* CPA
  // can be slightly closer than hypot(R, Y) and slightly off T.
  EncounterParams params = crossing();
  params.r_cpa_m = 80.0;
  params.y_cpa_m = 20.0;
  const InitialStates init = generate_initial_states(params);

  // Analytic straight-line CPA.
  const Vec3 d0 = init.intruder.position_m - init.own.position_m;
  const Vec3 dv = init.intruder.velocity_mps() - init.own.velocity_mps();
  const double t_star = -d0.dot(dv) / dv.norm_sq();
  const double analytic_miss = (d0 + dv * t_star).norm();

  sim::SimConfig config;
  config.disturbance = sim::DisturbanceConfig::none();
  config.adsb = sim::AdsbConfig::perfect();
  config.max_time_s = params.t_cpa_s + 30.0;

  sim::AgentSetup own;
  own.initial_state = init.own;
  sim::AgentSetup intruder;
  intruder.initial_state = init.intruder;
  const auto result = sim::run_encounter(config, std::move(own), std::move(intruder), 1);

  EXPECT_NEAR(result.proximity.min_distance_m, analytic_miss, 1.0);
  EXPECT_NEAR(result.proximity.time_of_min_distance_s, t_star, 1.0);
  // The encoded miss is an upper bound on the true CPA distance.
  EXPECT_LE(result.proximity.min_distance_m, std::hypot(80.0, 20.0) + 1.0);
}

TEST(Canonical, HeadOnIsCollisionCourse) {
  const EncounterParams p = head_on();
  EXPECT_DOUBLE_EQ(p.r_cpa_m, 0.0);
  EXPECT_DOUBLE_EQ(p.y_cpa_m, 0.0);
  EXPECT_NEAR(std::abs(wrap_pi(p.theta_int_rad)), kPi, 1e-9);
}

TEST(Canonical, TailApproachHasSlowClosureAndOppositeVerticalSenses) {
  const EncounterParams p = tail_approach();
  const double rvx = p.gs_int_mps * std::cos(p.theta_int_rad) - p.gs_own_mps;
  const double rvy = p.gs_int_mps * std::sin(p.theta_int_rad);
  EXPECT_LT(std::hypot(rvx, rvy), 10.0) << "closure must be slow";
  EXPECT_LT(p.vs_own_mps * p.vs_int_mps, 0.0) << "one climbs, one descends";
}

TEST(Canonical, AllWithinDefaultRanges) {
  const ParamRanges ranges;
  EXPECT_TRUE(ranges.contains(head_on().to_array()));
  EXPECT_TRUE(ranges.contains(tail_approach().to_array()));
  EXPECT_TRUE(ranges.contains(crossing().to_array()));
  EXPECT_TRUE(ranges.contains(descending_intruder().to_array()));
}

}  // namespace
}  // namespace cav::encounter
