// Regression pins for the GA-found degraded-mode fixtures (slow tier:
// coarse pairwise + joint table solves, then a handful of full encounter
// replays).  Each fixture freezes (geometry, fault conditions, seed) from
// the E14 attack campaign; these tests pin the own-NMAC outcome under every
// threat policy AND the fault-free control, so a change to the fault
// models, the coordination channel, or the tables that flips a frozen
// worst case is caught — in either direction.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/coordination.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "util/thread_pool.h"

namespace cav::scenarios {
namespace {

class DegradedFixtureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ThreadPool pool;
    table_ = std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse(), &pool));
    joint_ = std::make_shared<const acasx::JointLogicTable>(
        acasx::solve_joint_table(acasx::JointConfig::coarse(), &pool));
  }

  static bool run_nmac(const DegradedScenario& d, sim::ThreatPolicy policy) {
    sim::SimConfig config;
    config.threat_policy = policy;
    const sim::CasFactory factory = sim::AcasXuCas::factory(table_, {}, {}, {}, joint_);
    return run_degraded_scenario(d, config, factory, factory).own_nmac();
  }

  /// The same frozen (geometry, seed) with every fault stripped.
  static DegradedScenario clean_control(const DegradedScenario& d) {
    DegradedScenario plain = d;
    plain.coordination = sim::CoordinationConfig{};
    plain.fault = sim::FaultProfile::none();
    return plain;
  }

  static std::shared_ptr<const acasx::LogicTable> table_;
  static std::shared_ptr<const acasx::JointLogicTable> joint_;
};

std::shared_ptr<const acasx::LogicTable> DegradedFixtureTest::table_;
std::shared_ptr<const acasx::JointLogicTable> DegradedFixtureTest::joint_;

TEST_F(DegradedFixtureTest, BlackoutPincerNmacsUnderEveryPolicyWhenDegraded) {
  const DegradedScenario d = ga_blackout_pincer();
  EXPECT_TRUE(run_nmac(d, sim::ThreatPolicy::kNearest));
  EXPECT_TRUE(run_nmac(d, sim::ThreatPolicy::kCostFused));
  EXPECT_TRUE(run_nmac(d, sim::ThreatPolicy::kJointTable));
}

TEST_F(DegradedFixtureTest, BlackoutPincerCleanControlResolvesUnderJointTable) {
  // The degradation, not the geometry, defeats the strongest policy: with
  // faults stripped at the same seed the joint table resolves the pincer.
  const DegradedScenario d = ga_blackout_pincer();
  EXPECT_FALSE(run_nmac(clean_control(d), sim::ThreatPolicy::kJointTable));
}

TEST_F(DegradedFixtureTest, BurstStaleOvertakeNmacsUnderEveryPolicyWhenDegraded) {
  const DegradedScenario d = ga_burst_stale_overtake();
  EXPECT_TRUE(run_nmac(d, sim::ThreatPolicy::kNearest));
  EXPECT_TRUE(run_nmac(d, sim::ThreatPolicy::kCostFused));
  EXPECT_TRUE(run_nmac(d, sim::ThreatPolicy::kJointTable));
}

TEST_F(DegradedFixtureTest, BurstStaleOvertakeCleanControlResolvesUnderJointTable) {
  const DegradedScenario d = ga_burst_stale_overtake();
  EXPECT_FALSE(run_nmac(clean_control(d), sim::ThreatPolicy::kJointTable));
}

}  // namespace
}  // namespace cav::scenarios
