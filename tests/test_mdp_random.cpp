// Randomized MDP solver cross-validation: generate random layered
// (episodic) MDPs and demand that every solver agrees — Jacobi and
// Gauss-Seidel value iteration, policy iteration, and finite-horizon
// backward induction all characterize the same optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mdp/mdp.h"
#include "mdp/policy_iteration.h"
#include "mdp/value_iteration.h"
#include "util/rng.h"

namespace cav::mdp {
namespace {

/// A random layered MDP: `layers` layers of `width` states; transitions go
/// strictly to the next layer (so episodes terminate in `layers` steps),
/// with random sparse distributions and random costs in [-5, 10].
class RandomLayeredMdp final : public FiniteMdp {
 public:
  RandomLayeredMdp(std::size_t layers, std::size_t width, std::size_t actions,
                   std::uint64_t seed)
      : layers_(layers), width_(width), actions_(actions) {
    RngStream rng(seed);
    costs_.resize(num_states() * actions_);
    for (auto& c : costs_) c = rng.uniform(-5.0, 10.0);
    terminal_costs_.resize(width_);
    for (auto& c : terminal_costs_) c = rng.uniform(0.0, 100.0);

    transitions_.resize((num_states() - width_) * actions_);
    for (std::size_t s = 0; s < num_states() - width_; ++s) {
      const std::size_t layer = s / width_;
      for (std::size_t a = 0; a < actions_; ++a) {
        auto& dist = transitions_[s * actions_ + a];
        const int branches = rng.uniform_int(1, 3);
        double remaining = 1.0;
        for (int b = 0; b < branches; ++b) {
          const double p = (b == branches - 1) ? remaining : remaining * rng.uniform(0.2, 0.8);
          const auto next_in_layer = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(width_) - 1));
          dist.push_back({static_cast<State>((layer + 1) * width_ + next_in_layer), p});
          remaining -= p;
        }
      }
    }
  }

  std::size_t num_states() const override { return (layers_ + 1) * width_; }
  std::size_t num_actions() const override { return actions_; }
  double cost(State s, Action a) const override {
    return costs_[static_cast<std::size_t>(s) * actions_ + a];
  }
  void transitions(State s, Action a, std::vector<Transition>& out) const override {
    const auto& dist = transitions_[static_cast<std::size_t>(s) * actions_ + a];
    out.insert(out.end(), dist.begin(), dist.end());
  }
  bool is_terminal(State s) const override {
    return static_cast<std::size_t>(s) >= layers_ * width_;
  }
  double terminal_cost(State s) const override {
    return terminal_costs_[static_cast<std::size_t>(s) - layers_ * width_];
  }

  std::size_t depth() const { return layers_; }

 private:
  std::size_t layers_;
  std::size_t width_;
  std::size_t actions_;
  std::vector<double> costs_;
  std::vector<double> terminal_costs_;
  std::vector<std::vector<Transition>> transitions_;
};

class RandomMdpTest : public ::testing::TestWithParam<int> {
 protected:
  RandomLayeredMdp make_mdp() const {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    RngStream rng(seed * 77);
    const auto layers = static_cast<std::size_t>(rng.uniform_int(2, 6));
    const auto width = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const auto actions = static_cast<std::size_t>(rng.uniform_int(1, 4));
    return RandomLayeredMdp(layers, width, actions, seed);
  }
};

TEST_P(RandomMdpTest, TransitionsAreDistributions) {
  const auto mdp = make_mdp();
  std::vector<Transition> out;
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) continue;
    for (std::size_t a = 0; a < mdp.num_actions(); ++a) {
      out.clear();
      mdp.transitions(static_cast<State>(s), static_cast<Action>(a), out);
      double sum = 0.0;
      for (const auto& t : out) {
        ASSERT_GT(t.prob, 0.0);
        ASSERT_LT(t.next, mdp.num_states());
        sum += t.prob;
      }
      ASSERT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST_P(RandomMdpTest, JacobiAndGaussSeidelAgree) {
  const auto mdp = make_mdp();
  const auto jacobi = solve_value_iteration(mdp);
  ValueIterationConfig gs;
  gs.gauss_seidel = true;
  const auto seidel = solve_value_iteration(mdp, gs);
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(seidel.converged);
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    ASSERT_NEAR(jacobi.values[s], seidel.values[s], 1e-7) << "state " << s;
  }
}

TEST_P(RandomMdpTest, PrioritizedSweepingMatchesJacobi) {
  // The random-MDP fuzz loop for the prioritized solver: residual-ordered
  // asynchronous backups must land on the same fixed point as full sweeps.
  const auto mdp = make_mdp();
  const CompiledMdp compiled(mdp);
  const auto jacobi = solve_value_iteration(compiled);
  const auto prioritized = solve_prioritized(compiled);
  ASSERT_TRUE(jacobi.converged);
  ASSERT_TRUE(prioritized.converged);
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    ASSERT_NEAR(prioritized.values[s], jacobi.values[s], 1e-9) << "state " << s;
  }
  ASSERT_LE(prioritized.residual, 1e-9);
}

TEST_P(RandomMdpTest, Float32TracksDoubleWithinFloatRounding) {
  const auto mdp = make_mdp();
  const CompiledMdp compiled(mdp);
  const auto ref = solve_value_iteration(compiled);
  const auto f32 = solve_value_iteration_f32(compiled);
  ASSERT_TRUE(ref.converged);
  ASSERT_TRUE(f32.converged);
  double scale = 1.0;
  for (const double v : ref.values) scale = std::max(scale, std::abs(v));
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    ASSERT_NEAR(static_cast<double>(f32.values[s]), ref.values[s], 1e-4 * scale)
        << "state " << s;
  }
}

TEST_P(RandomMdpTest, PolicyIterationMatchesValueIteration) {
  const auto mdp = make_mdp();
  const auto vi = solve_value_iteration(mdp);
  const auto pi = solve_policy_iteration(mdp);
  ASSERT_TRUE(pi.converged);
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    ASSERT_NEAR(vi.values[s], pi.values[s], 1e-6) << "state " << s;
  }
}

TEST_P(RandomMdpTest, FiniteHorizonConvergesToEpisodicOptimum) {
  const auto mdp = make_mdp();
  const auto vi = solve_value_iteration(mdp);
  const auto stages = solve_finite_horizon(mdp, mdp.depth() + 2);
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    ASSERT_NEAR(stages.back()[s], vi.values[s], 1e-7) << "state " << s;
  }
}

TEST_P(RandomMdpTest, ValueSatisfiesBellmanOptimality) {
  const auto mdp = make_mdp();
  const auto vi = solve_value_iteration(mdp);
  std::vector<Transition> scratch;
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      ASSERT_EQ(vi.values[s], mdp.terminal_cost(state));
      continue;
    }
    double best = 1e30;
    for (std::size_t a = 0; a < mdp.num_actions(); ++a) {
      best = std::min(best, backup(mdp, state, static_cast<Action>(a), vi.values, 1.0, scratch));
    }
    ASSERT_NEAR(vi.values[s], best, 1e-7) << "Bellman residual at state " << s;
  }
}

TEST_P(RandomMdpTest, GreedyPolicyAchievesQMinimum) {
  const auto mdp = make_mdp();
  const auto vi = solve_value_iteration(mdp);
  for (std::size_t s = 0; s < mdp.num_states(); ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) continue;
    const Action chosen = vi.policy[s];
    for (std::size_t a = 0; a < mdp.num_actions(); ++a) {
      ASSERT_LE(vi.q.at(static_cast<State>(s), chosen),
                vi.q.at(static_cast<State>(s), static_cast<Action>(a)) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMdpTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace cav::mdp
