// Fitness-function tests: the paper's 10000/(1+d) shape, bounds,
// determinism, and monotonicity in encounter severity.
#include "core/fitness.h"

#include <gtest/gtest.h>

#include <memory>

#include "acasx/offline_solver.h"
#include "sim/acasx_cas.h"
#include "util/expect.h"

namespace cav::core {
namespace {

class FitnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static FitnessConfig fast_config(std::size_t runs = 20) {
    FitnessConfig config;
    config.runs_per_encounter = runs;
    return config;
  }
  static sim::CasFactory acas() { return sim::AcasXuCas::factory(*table_); }
  static sim::CasFactory none() { return {}; }
  static std::shared_ptr<const acasx::LogicTable>* table_;
};

std::shared_ptr<const acasx::LogicTable>* FitnessTest::table_ = nullptr;

TEST_F(FitnessTest, FitnessBoundedByGainMax) {
  const EncounterEvaluator evaluator(fast_config(), acas(), acas());
  for (const auto& params :
       {encounter::head_on(), encounter::tail_approach(), encounter::crossing()}) {
    const auto eval = evaluator.evaluate(params, 1);
    EXPECT_GT(eval.fitness, 0.0);
    EXPECT_LE(eval.fitness, 10000.0);
  }
}

TEST_F(FitnessTest, CollisionRunsScoreMaximumGain) {
  // Unequipped head-on: every run is an NMAC, so d_k = 0 and the fitness
  // is exactly gain_max.
  const EncounterEvaluator evaluator(fast_config(), none(), none());
  const auto eval = evaluator.evaluate(encounter::head_on(), 1);
  EXPECT_EQ(eval.nmac_count, eval.runs);
  EXPECT_DOUBLE_EQ(eval.fitness, 10000.0);
  EXPECT_DOUBLE_EQ(eval.mean_miss_m, 0.0);
}

TEST_F(FitnessTest, EquippedHeadOnScoresLow) {
  const EncounterEvaluator evaluator(fast_config(), acas(), acas());
  const auto eval = evaluator.evaluate(encounter::head_on(), 1);
  EXPECT_EQ(eval.nmac_count, 0U);
  EXPECT_LT(eval.fitness, 500.0);
  EXPECT_GT(eval.alert_fraction_own, 0.9);
}

TEST_F(FitnessTest, TailApproachScoresHigh) {
  const EncounterEvaluator evaluator(fast_config(), acas(), acas());
  const auto tail = evaluator.evaluate(encounter::tail_approach(), 1);
  const auto head = evaluator.evaluate(encounter::head_on(), 1);
  EXPECT_GT(tail.fitness, 10.0 * head.fitness)
      << "the challenging geometry must dominate the resolved one";
}

TEST_F(FitnessTest, FitnessDecreasesWithMissDistance) {
  // Unequipped encounters with growing encoded CPA miss: fitness must fall.
  const EncounterEvaluator evaluator(fast_config(), none(), none());
  double previous = 1e18;
  for (const double r : {0.0, 40.0, 100.0, 140.0}) {
    encounter::EncounterParams params = encounter::crossing();
    params.r_cpa_m = r;
    params.y_cpa_m = 45.0;  // keep vertical offset so small r isn't NMAC-saturated
    const auto eval = evaluator.evaluate(params, 2);
    EXPECT_LT(eval.fitness, previous) << "r = " << r;
    previous = eval.fitness;
  }
}

TEST_F(FitnessTest, DeterministicPerStreamId) {
  const EncounterEvaluator evaluator(fast_config(), acas(), acas());
  const auto a = evaluator.evaluate(encounter::head_on(), 42);
  const auto b = evaluator.evaluate(encounter::head_on(), 42);
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.nmac_count, b.nmac_count);
  const auto c = evaluator.evaluate(encounter::head_on(), 43);
  EXPECT_NE(a.fitness, c.fitness);
}

TEST_F(FitnessTest, RunOnceRecordsTrajectoryOnDemand) {
  const EncounterEvaluator evaluator(fast_config(), acas(), acas());
  const auto with = evaluator.run_once(encounter::head_on(), 1, 0, true);
  EXPECT_FALSE(with.trajectory.empty());
  const auto without = evaluator.run_once(encounter::head_on(), 1, 0, false);
  EXPECT_TRUE(without.trajectory.empty());
  // Same seed derivation: identical outcome either way.
  EXPECT_DOUBLE_EQ(with.proximity.min_distance_m, without.proximity.min_distance_m);
}

TEST_F(FitnessTest, SimTimeCoversEncounter) {
  // The evaluator must simulate past t_cpa; a long encounter still sees
  // its CPA.
  const EncounterEvaluator evaluator(fast_config(5), none(), none());
  encounter::EncounterParams params = encounter::head_on();
  params.t_cpa_s = 55.0;
  const auto eval = evaluator.evaluate(params, 3);
  // Nearly every run collides; disturbance may let the odd one escape, but
  // a truncated simulation window would miss ALL of them.
  EXPECT_GE(eval.nmac_count + 1, eval.runs) << "CPA at 55 s must be inside the simulated window";
}

TEST_F(FitnessTest, MeanMissTracksGeometry) {
  const EncounterEvaluator evaluator(fast_config(), none(), none());
  encounter::EncounterParams params = encounter::crossing();
  params.r_cpa_m = 120.0;
  params.y_cpa_m = 50.0;
  const auto eval = evaluator.evaluate(params, 4);
  // The analytic straight-line CPA for this geometry (the encoded offset is
  // not perpendicular to the relative velocity, so it is below
  // hypot(120, 50) = 130); disturbance adds scatter around it.
  const auto init = encounter::generate_initial_states(params);
  const Vec3 d0 = init.intruder.position_m - init.own.position_m;
  const Vec3 dv = init.intruder.velocity_mps() - init.own.velocity_mps();
  const double analytic_miss = (d0 + dv * (-d0.dot(dv) / dv.norm_sq())).norm();
  EXPECT_NEAR(eval.mean_miss_m, analytic_miss, 25.0);
  EXPECT_LT(eval.mean_miss_m, 131.0);
}

TEST_F(FitnessTest, RejectsDegenerateConfig) {
  FitnessConfig bad;
  bad.runs_per_encounter = 0;
  EXPECT_THROW(EncounterEvaluator(bad, acas(), acas()), ContractViolation);
  FitnessConfig bad2;
  bad2.gain_max = 0.0;
  EXPECT_THROW(EncounterEvaluator(bad2, acas(), acas()), ContractViolation);
}

}  // namespace
}  // namespace cav::core
