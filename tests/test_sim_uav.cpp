#include "sim/uav.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/angles.h"

namespace cav::sim {
namespace {

TEST(UavState, VelocityFromPolarComponents) {
  UavState s;
  s.ground_speed_mps = 10.0;
  s.bearing_rad = 0.0;
  s.vertical_speed_mps = 2.0;
  EXPECT_NEAR(s.velocity_mps().x, 10.0, 1e-12);
  EXPECT_NEAR(s.velocity_mps().y, 0.0, 1e-12);
  EXPECT_NEAR(s.velocity_mps().z, 2.0, 1e-12);

  s.bearing_rad = kPi / 2.0;
  EXPECT_NEAR(s.velocity_mps().x, 0.0, 1e-12);
  EXPECT_NEAR(s.velocity_mps().y, 10.0, 1e-12);
}

TEST(UavAgent, StraightFlightWithoutDisturbance) {
  UavState init;
  init.position_m = {0.0, 0.0, 1000.0};
  init.ground_speed_mps = 20.0;
  init.bearing_rad = 0.0;
  UavAgent agent(0, init);
  RngStream rng(1);
  for (int i = 0; i < 100; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  EXPECT_NEAR(agent.state().position_m.x, 200.0, 1e-6);
  EXPECT_NEAR(agent.state().position_m.y, 0.0, 1e-9);
  EXPECT_NEAR(agent.state().position_m.z, 1000.0, 1e-9);
}

TEST(UavAgent, CommandTracksTargetRate) {
  UavState init;
  init.position_m = {0.0, 0.0, 1000.0};
  init.ground_speed_mps = 20.0;
  UavAgent agent(0, init);
  VerticalCommand cmd;
  cmd.active = true;
  cmd.target_vs_mps = 7.62;  // 1500 fpm
  cmd.accel_mps2 = 2.45;     // g/4
  agent.set_command(cmd);
  RngStream rng(2);
  // Rate capture takes ~7.62/2.45 ~ 3.1 s.
  for (int i = 0; i < 50; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  EXPECT_NEAR(agent.state().vertical_speed_mps, 7.62, 1e-9);
  EXPECT_GT(agent.state().position_m.z, 1000.0);
}

TEST(UavAgent, CommandCaptureHasNoOvershoot) {
  UavState init;
  UavAgent agent(0, init);
  VerticalCommand cmd;
  cmd.active = true;
  cmd.target_vs_mps = 5.0;
  cmd.accel_mps2 = 3.0;
  agent.set_command(cmd);
  RngStream rng(3);
  double max_vs = 0.0;
  for (int i = 0; i < 100; ++i) {
    agent.step(0.1, DisturbanceConfig::none(), rng);
    max_vs = std::max(max_vs, agent.state().vertical_speed_mps);
  }
  EXPECT_LE(max_vs, 5.0 + 1e-9);
}

TEST(UavAgent, VerticalSpeedClampedToPerformance) {
  UavState init;
  UavPerformance perf;
  perf.max_vertical_speed_mps = 3.0;
  UavAgent agent(0, init, perf);
  VerticalCommand cmd;
  cmd.active = true;
  cmd.target_vs_mps = 50.0;  // beyond performance
  cmd.accel_mps2 = 10.0;
  agent.set_command(cmd);
  RngStream rng(4);
  for (int i = 0; i < 100; ++i) agent.step(0.1, DisturbanceConfig::none(), rng);
  EXPECT_NEAR(agent.state().vertical_speed_mps, 3.0, 1e-9);
}

TEST(UavAgent, MeanReversionPullsTowardNominal) {
  UavState init;
  init.vertical_speed_mps = -2.0;  // flight plan: descend at 2 m/s
  UavAgent agent(0, init);
  // Kick the rate away from nominal via a command, then release it.
  VerticalCommand cmd;
  cmd.active = true;
  cmd.target_vs_mps = 5.0;
  cmd.accel_mps2 = 5.0;
  agent.set_command(cmd);
  RngStream rng(5);
  DisturbanceConfig quiet;
  quiet.vertical_sigma = 0.0;
  quiet.horizontal_sigma = 0.0;
  quiet.vertical_reversion = 0.3;
  quiet.horizontal_reversion = 0.3;
  for (int i = 0; i < 30; ++i) agent.step(0.1, quiet, rng);
  ASSERT_NEAR(agent.state().vertical_speed_mps, 5.0, 1e-6);
  agent.set_command({});  // release
  for (int i = 0; i < 400; ++i) agent.step(0.1, quiet, rng);
  EXPECT_NEAR(agent.state().vertical_speed_mps, -2.0, 0.01)
      << "free flight must revert to the flight-plan rate";
}

TEST(UavAgent, DisturbanceIsBoundedByMeanReversion) {
  UavState init;
  init.ground_speed_mps = 30.0;
  UavAgent agent(0, init);
  RngStream rng(6);
  DisturbanceConfig disturbance;  // defaults: sigma 0.5, reversion 0.3
  double max_abs_vs = 0.0;
  for (int i = 0; i < 5000; ++i) {
    agent.step(0.1, disturbance, rng);
    max_abs_vs = std::max(max_abs_vs, std::abs(agent.state().vertical_speed_mps));
  }
  // Stationary sigma = 0.5 / sqrt(2 * 0.3) ~ 0.65 m/s; 6-sigma bound.
  EXPECT_LT(max_abs_vs, 4.0);
}

TEST(UavAgent, GroundSpeedNeverNegative) {
  UavState init;
  init.ground_speed_mps = 0.5;
  UavAgent agent(0, init);
  RngStream rng(7);
  DisturbanceConfig violent;
  violent.horizontal_sigma = 5.0;
  violent.horizontal_reversion = 0.0;
  for (int i = 0; i < 1000; ++i) {
    agent.step(0.1, violent, rng);
    ASSERT_GE(agent.state().ground_speed_mps, 0.0);
  }
}

TEST(UavAgent, DeterministicGivenSeed) {
  const auto fly = [](std::uint64_t seed) {
    UavState init;
    init.ground_speed_mps = 25.0;
    UavAgent agent(0, init);
    RngStream rng(seed);
    for (int i = 0; i < 200; ++i) agent.step(0.1, DisturbanceConfig{}, rng);
    return agent.state().position_m;
  };
  EXPECT_EQ(fly(42), fly(42));
  EXPECT_NE(fly(42), fly(43));
}

}  // namespace
}  // namespace cav::sim
