// Offline-solver and logic-table properties on the coarse configuration:
// structural invariants the generated logic must have regardless of exact
// discretization (the kind of sanity validation §IV calls for).
#include "acasx/logic_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "acasx/offline_solver.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

class TableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new LogicTable(solve_logic_table(AcasXuConfig::coarse()));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static const AcasXuConfig& config() { return table_->config(); }
  static LogicTable* table_;
};

LogicTable* TableTest::table_ = nullptr;

TEST_F(TableTest, AllEntriesFinite) {
  for (const float q : table_->raw()) {
    ASSERT_TRUE(std::isfinite(q));
  }
}

TEST_F(TableTest, TerminalLayerEncodesNmacCost) {
  const auto& grid = table_->grid();
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto idx = grid.unflatten(g);
    const double h = grid.axis(0).value(idx[0]);
    const float expected =
        std::abs(h) <= config().costs.nmac_h_ft ? static_cast<float>(config().costs.nmac_cost)
                                                : 0.0F;
    EXPECT_EQ(table_->at(0, g, Advisory::kCoc, Advisory::kCoc), expected);
  }
}

TEST_F(TableTest, CocPreferredWhenSafelySeparated) {
  // Intruder 1000 ft above, both level, tau = 20 s: no maneuver needed.
  const auto costs = table_->action_costs(20.0, 1000.0, 0.0, 0.0, Advisory::kCoc);
  const std::size_t coc = static_cast<std::size_t>(Advisory::kCoc);
  for (std::size_t a = 0; a < kNumAdvisories; ++a) {
    if (a == coc) continue;
    EXPECT_LT(costs[coc], costs[a]) << "COC must beat " << advisory_name(static_cast<Advisory>(a));
  }
}

TEST_F(TableTest, AlertPreferredOnImminentCollisionCourse) {
  // Co-altitude, both level, tau = 10 s: some advisory must beat COC.
  const auto costs = table_->action_costs(10.0, 0.0, 0.0, 0.0, Advisory::kCoc);
  const double coc = costs[static_cast<std::size_t>(Advisory::kCoc)];
  double best_maneuver = coc;
  for (std::size_t a = 1; a < kNumAdvisories; ++a) {
    best_maneuver = std::min(best_maneuver, costs[a]);
  }
  EXPECT_LT(best_maneuver, coc);
}

TEST_F(TableTest, MirrorSymmetryInRelativeAltitude) {
  // Flipping (h, vo, vi) -> (-h, -vo, -vi) swaps climb and descend roles.
  const auto costs = table_->action_costs(12.0, 300.0, 5.0, -5.0, Advisory::kCoc);
  const auto mirrored = table_->action_costs(12.0, -300.0, -5.0, 5.0, Advisory::kCoc);
  EXPECT_NEAR(costs[static_cast<std::size_t>(Advisory::kClimb1500)],
              mirrored[static_cast<std::size_t>(Advisory::kDescend1500)], 0.6);
  EXPECT_NEAR(costs[static_cast<std::size_t>(Advisory::kClimb2500)],
              mirrored[static_cast<std::size_t>(Advisory::kDescend2500)], 0.6);
  EXPECT_NEAR(costs[static_cast<std::size_t>(Advisory::kCoc)],
              mirrored[static_cast<std::size_t>(Advisory::kCoc)], 0.6);
}

TEST_F(TableTest, AdvisoryPushesAwayFromIntruder) {
  // Intruder 300 ft ABOVE on a converging vertical path at tau = 8 s:
  // descending must be cheaper than climbing into it.
  const auto costs = table_->action_costs(8.0, 300.0, 0.0, -10.0, Advisory::kCoc);
  EXPECT_LT(costs[static_cast<std::size_t>(Advisory::kDescend1500)],
            costs[static_cast<std::size_t>(Advisory::kClimb1500)]);
  // And mirrored: intruder below climbing into us -> climb is cheaper.
  const auto costs2 = table_->action_costs(8.0, -300.0, 0.0, 10.0, Advisory::kCoc);
  EXPECT_LT(costs2[static_cast<std::size_t>(Advisory::kClimb1500)],
            costs2[static_cast<std::size_t>(Advisory::kDescend1500)]);
}

TEST_F(TableTest, ValuesDecreaseWithSeparationAtSmallTau) {
  // At tau = 5 s, being co-altitude must cost at least as much as being
  // widely separated (values of the best action).
  const auto near = table_->action_costs(5.0, 0.0, 0.0, 0.0, Advisory::kCoc);
  const auto far = table_->action_costs(5.0, 900.0, 0.0, 0.0, Advisory::kCoc);
  const double best_near = *std::min_element(near.begin(), near.end());
  const double best_far = *std::min_element(far.begin(), far.end());
  EXPECT_GT(best_near, best_far);
}

TEST_F(TableTest, KeepingAdvisoryCheaperThanReversing) {
  // With an active climb and symmetric geometry, continuing the climb must
  // be cheaper than reversing to a descend (reversal surcharge).
  const auto costs = table_->action_costs(10.0, 0.0, 12.0, 0.0, Advisory::kClimb1500);
  EXPECT_LT(costs[static_cast<std::size_t>(Advisory::kClimb1500)],
            costs[static_cast<std::size_t>(Advisory::kDescend1500)]);
}

TEST_F(TableTest, InterpolationMatchesVertexValues) {
  const auto& grid = table_->grid();
  const auto idx = grid.unflatten(grid.size() / 2);
  const auto p = grid.point(idx);
  const auto costs = table_->action_costs(7.0, p[0], p[1], p[2], Advisory::kCoc);
  for (std::size_t a = 0; a < kNumAdvisories; ++a) {
    const float direct = table_->at(7, grid.flat_index(idx), Advisory::kCoc,
                                    static_cast<Advisory>(a));
    EXPECT_NEAR(costs[a], static_cast<double>(direct), 1e-4);
  }
}

TEST_F(TableTest, TauClampsToHorizon) {
  // Beyond the table horizon the lookup clamps to the last layer.
  const auto at_max = table_->action_costs(static_cast<double>(config().space.tau_max), 0.0, 0.0,
                                           0.0, Advisory::kCoc);
  const auto beyond = table_->action_costs(1e9, 0.0, 0.0, 0.0, Advisory::kCoc);
  for (std::size_t a = 0; a < kNumAdvisories; ++a) {
    EXPECT_DOUBLE_EQ(at_max[a], beyond[a]);
  }
}

TEST_F(TableTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cav_table_test.bin";
  table_->save(path);
  const LogicTable loaded = LogicTable::load(path);
  EXPECT_EQ(loaded.num_entries(), table_->num_entries());
  EXPECT_EQ(loaded.config().space.tau_max, config().space.tau_max);
  EXPECT_EQ(loaded.config().space.h_ft.count(), config().space.h_ft.count());
  EXPECT_DOUBLE_EQ(loaded.config().costs.nmac_cost, config().costs.nmac_cost);
  // Spot-check payload equality.
  for (std::size_t i = 0; i < table_->raw().size(); i += 1009) {
    ASSERT_EQ(loaded.raw()[i], table_->raw()[i]);
  }
  std::remove(path.c_str());
}

TEST_F(TableTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/cav_table_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a table", f);
    std::fclose(f);
  }
  EXPECT_THROW(LogicTable::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(LogicTable::load("/definitely/missing/file.bin"), std::runtime_error);
}

TEST(TableSolver, ParallelMatchesSerial) {
  const AcasXuConfig config = AcasXuConfig::coarse();
  const LogicTable serial = solve_logic_table(config);
  ThreadPool pool(4);
  const LogicTable parallel = solve_logic_table(config, &pool);
  ASSERT_EQ(serial.raw().size(), parallel.raw().size());
  for (std::size_t i = 0; i < serial.raw().size(); ++i) {
    ASSERT_EQ(serial.raw()[i], parallel.raw()[i]) << "entry " << i;
  }
}

TEST(TableSolver, StencilsMatchReferenceSolverExactly) {
  // The precompiled stencils preserve the reference kernel's two-level
  // accumulation order (inner interpolation sum, pair-weighted outer sum),
  // so the fast path must reproduce the legacy table bit for bit.
  const AcasXuConfig config = AcasXuConfig::coarse();
  const LogicTable stencil = solve_logic_table(config);
  const LogicTable reference =
      solve_logic_table(config, nullptr, nullptr, SolverMode::kReference);
  ASSERT_EQ(stencil.raw().size(), reference.raw().size());
  for (std::size_t i = 0; i < stencil.raw().size(); ++i) {
    ASSERT_EQ(stencil.raw()[i], reference.raw()[i]) << "entry " << i;
  }
}

TEST(TableSolver, CompiledModelReproducesSolveExactly) {
  // CompiledAcasModel factors the stencil build out of the solve; with the
  // costs it was compiled under it must reproduce solve_logic_table bit
  // for bit (same kernels, same accumulation order).
  const AcasXuConfig config = AcasXuConfig::coarse();
  const CompiledAcasModel model(config);
  const LogicTable fresh = solve_logic_table(config);
  const LogicTable reused = model.solve();
  ASSERT_EQ(fresh.raw().size(), reused.raw().size());
  for (std::size_t i = 0; i < fresh.raw().size(); ++i) {
    ASSERT_EQ(fresh.raw()[i], reused.raw()[i]) << "entry " << i;
  }
  EXPECT_GT(model.stencil_entries(), 0U);
  EXPECT_GT(model.stencil_build_seconds(), 0.0);
}

TEST(TableSolver, CompiledModelCostRevisionMatchesFreshSolve) {
  // A cost-only revision re-solved on the precompiled stencils must equal
  // a from-scratch solve of the revised config, bit for bit — the ACAS
  // analogue of CompiledMdp::refresh_costs.
  const AcasXuConfig config = AcasXuConfig::coarse();
  const CompiledAcasModel model(config);

  CostModel revised = config.costs;
  revised.nmac_cost = 20000.0;
  revised.maneuver_cost = 400.0;
  revised.level_reward = 10.0;
  AcasXuConfig revised_config = config;
  revised_config.costs = revised;

  const LogicTable fresh = solve_logic_table(revised_config);
  SolveStats stats;
  const LogicTable reused = model.solve(revised, nullptr, &stats);
  ASSERT_EQ(fresh.raw().size(), reused.raw().size());
  for (std::size_t i = 0; i < fresh.raw().size(); ++i) {
    ASSERT_EQ(fresh.raw()[i], reused.raw()[i]) << "entry " << i;
  }
  // The revised costs ride along on the returned table's config, and no
  // stencil build happened during the revision solve.
  EXPECT_DOUBLE_EQ(reused.config().costs.maneuver_cost, 400.0);
  EXPECT_EQ(stats.stencil_build_seconds, 0.0);
  EXPECT_EQ(stats.stencil_entries, model.stencil_entries());
}

TEST(TableSolver, StencilStatsReported) {
  SolveStats stats;
  const LogicTable table = solve_logic_table(AcasXuConfig::coarse(), nullptr, &stats);
  // Every non-degenerate (grid point, action) row scatters somewhere.
  EXPECT_GE(stats.stencil_entries, table.num_grid_points() * kNumAdvisories);
  EXPECT_GT(stats.stencil_build_seconds, 0.0);
  EXPECT_LE(stats.stencil_build_seconds, stats.wall_seconds);
}

TEST(TableSolver, StatsReported) {
  SolveStats stats;
  const LogicTable table = solve_logic_table(AcasXuConfig::coarse(), nullptr, &stats);
  EXPECT_GT(stats.states_per_layer, 0U);
  EXPECT_EQ(stats.layers, table.config().space.tau_max + 1);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(TableSolver, ModeledNoiseRaisesResidualRisk) {
  // Ablation-style property: more modeled dynamics noise means a co-
  // altitude collision course at short tau cannot be mitigated as well, so
  // the optimal (best-action) expected cost rises monotonically with sigma.
  // (Alert *timing* is NOT monotone in sigma — coarse-grid interpolation
  // shifts it, the §IV inaccuracy this suite documents elsewhere.)
  double previous = -1e30;
  for (const double sigma : {1.0, 3.0, 6.0}) {
    AcasXuConfig config = AcasXuConfig::coarse();
    config.dynamics.accel_noise_sigma_fps2 = sigma;
    const LogicTable table = solve_logic_table(config);
    const auto costs = table.action_costs(10.0, 0.0, 0.0, 0.0, Advisory::kCoc);
    const double best = *std::min_element(costs.begin(), costs.end());
    EXPECT_GT(best, previous) << "sigma " << sigma;
    previous = best;
  }
}

TEST(TableSolver, AlertingHelpsUnderLowNoise) {
  // With quiet dynamics, maneuvering out of a tau=10 co-altitude collision
  // course must beat staying clear-of-conflict.
  AcasXuConfig config = AcasXuConfig::coarse();
  config.dynamics.accel_noise_sigma_fps2 = 1.0;
  const LogicTable table = solve_logic_table(config);
  const auto costs = table.action_costs(10.0, 0.0, 0.0, 0.0, Advisory::kCoc);
  double best_maneuver = 1e30;
  for (std::size_t a = 1; a < kNumAdvisories; ++a) {
    best_maneuver = std::min(best_maneuver, costs[a]);
  }
  EXPECT_LT(best_maneuver, costs[static_cast<std::size_t>(Advisory::kCoc)]);
}

}  // namespace
}  // namespace cav::acasx
