// Logbook tests: CSV round trip, filtering, class histograms, and the
// §VIII "areas of the search space" region mining.
#include "core/logbook.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/rng.h"

namespace cav::core {
namespace {

LogEntry entry(std::size_t index, std::size_t generation,
               const encounter::EncounterParams& params, double fitness) {
  LogEntry e;
  e.evaluation_index = index;
  e.generation = generation;
  e.params = params;
  e.fitness = fitness;
  e.nmac_rate = fitness / 10000.0;
  e.alert_fraction = 1.0 - fitness / 10000.0;
  return e;
}

Logbook mixed_logbook() {
  Logbook logbook;
  RngStream rng(5);
  // Generation 0: mostly benign crossings; generation 1: tail approaches.
  for (std::size_t i = 0; i < 20; ++i) {
    encounter::EncounterParams p = encounter::crossing();
    p.t_cpa_s += rng.uniform(-5.0, 5.0);
    logbook.add(entry(i, 0, p, rng.uniform(50.0, 300.0)));
  }
  for (std::size_t i = 20; i < 35; ++i) {
    encounter::EncounterParams p = encounter::tail_approach();
    p.t_cpa_s += rng.uniform(-5.0, 5.0);
    p.vs_int_mps += rng.uniform(-0.3, 0.3);
    logbook.add(entry(i, 1, p, rng.uniform(8000.0, 10000.0)));
  }
  return logbook;
}

TEST(Logbook, AboveThresholdFilters) {
  const Logbook logbook = mixed_logbook();
  EXPECT_EQ(logbook.size(), 35U);
  EXPECT_EQ(logbook.above(5000.0).size(), 15U);
  EXPECT_EQ(logbook.above(20000.0).size(), 0U);
  EXPECT_EQ(logbook.above(0.0).size(), 35U);
}

TEST(Logbook, CsvRoundTrip) {
  const Logbook logbook = mixed_logbook();
  const std::string path = ::testing::TempDir() + "/cav_logbook_test.csv";
  logbook.save_csv(path);
  const Logbook loaded = Logbook::load_csv(path);
  ASSERT_EQ(loaded.size(), logbook.size());
  for (std::size_t i = 0; i < logbook.size(); ++i) {
    const auto& a = logbook.entries()[i];
    const auto& b = loaded.entries()[i];
    EXPECT_EQ(a.evaluation_index, b.evaluation_index);
    EXPECT_EQ(a.generation, b.generation);
    EXPECT_NEAR(a.fitness, b.fitness, 1e-6);
    const auto pa = a.params.to_array();
    const auto pb = b.params.to_array();
    for (std::size_t d = 0; d < pa.size(); ++d) {
      EXPECT_NEAR(pa[d], pb[d], 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(Logbook, LoadRejectsMissingAndMalformed) {
  EXPECT_THROW(Logbook::load_csv("/nonexistent/logbook.csv"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/cav_logbook_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("header\n1,2,3\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(Logbook::load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Logbook, ClassHistogramOverall) {
  const Logbook logbook = mixed_logbook();
  const auto histogram = class_histogram(logbook);
  EXPECT_EQ(histogram.at(EncounterClass::kCrossing), 20U);
  EXPECT_EQ(histogram.at(EncounterClass::kTailApproach), 15U);
}

TEST(Logbook, ClassHistogramPerGeneration) {
  const Logbook logbook = mixed_logbook();
  const auto gen0 = class_histogram(logbook, 0);
  EXPECT_EQ(gen0.at(EncounterClass::kCrossing), 20U);
  EXPECT_EQ(gen0.count(EncounterClass::kTailApproach), 0U);
  const auto gen1 = class_histogram(logbook, 1);
  EXPECT_EQ(gen1.at(EncounterClass::kTailApproach), 15U);
}

TEST(Logbook, FindRegionsIsolatesHighFitnessArea) {
  const Logbook logbook = mixed_logbook();
  const encounter::ParamRanges ranges;
  const auto regions = find_regions(logbook, 5000.0, 1, ranges);
  ASSERT_EQ(regions.size(), 1U);
  EXPECT_EQ(regions[0].members, 15U);
  EXPECT_EQ(regions[0].dominant_class, EncounterClass::kTailApproach);
  EXPECT_GT(regions[0].mean_fitness, 8000.0);
  // The bounding box must cover the tail-approach CPA times (40-50 s).
  EXPECT_LE(regions[0].lo[2], 41.0);
  EXPECT_GE(regions[0].hi[2], 49.0);
}

TEST(Logbook, FindRegionsHandlesUnderfilledClusters) {
  const Logbook logbook = mixed_logbook();
  const encounter::ParamRanges ranges;
  // More clusters than distinct areas: empty ones must be dropped, member
  // counts must sum to the survivor count.
  const auto regions = find_regions(logbook, 5000.0, 4, ranges);
  std::size_t total = 0;
  for (const auto& r : regions) total += r.members;
  EXPECT_EQ(total, 15U);
  // Requesting more clusters than points yields nothing.
  EXPECT_TRUE(find_regions(logbook, 9999.9, 16, ranges).empty());
}

TEST(Logbook, DescribeRegionMentionsBoundsAndClass) {
  const Logbook logbook = mixed_logbook();
  const encounter::ParamRanges ranges;
  const auto regions = find_regions(logbook, 5000.0, 1, ranges);
  ASSERT_FALSE(regions.empty());
  const std::string text = describe_region(regions[0]);
  EXPECT_NE(text.find("tail-approach"), std::string::npos);
  EXPECT_NE(text.find("t_cpa_s"), std::string::npos);
  EXPECT_NE(text.find("gs_own_mps"), std::string::npos);
}

}  // namespace
}  // namespace cav::core
