#include "acasx/advisory.h"

#include <gtest/gtest.h>

namespace cav::acasx {
namespace {

TEST(Advisory, SenseMapping) {
  EXPECT_EQ(sense_of(Advisory::kCoc), Sense::kNone);
  EXPECT_EQ(sense_of(Advisory::kClimb1500), Sense::kClimb);
  EXPECT_EQ(sense_of(Advisory::kClimb2500), Sense::kClimb);
  EXPECT_EQ(sense_of(Advisory::kDescend1500), Sense::kDescend);
  EXPECT_EQ(sense_of(Advisory::kDescend2500), Sense::kDescend);
}

TEST(Advisory, TargetRates) {
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kCoc), 0.0);
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kClimb1500), 1500.0);
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kDescend1500), -1500.0);
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kClimb2500), 2500.0);
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kDescend2500), -2500.0);
}

TEST(Advisory, Strengthened) {
  EXPECT_FALSE(is_strengthened(Advisory::kCoc));
  EXPECT_FALSE(is_strengthened(Advisory::kClimb1500));
  EXPECT_TRUE(is_strengthened(Advisory::kClimb2500));
  EXPECT_TRUE(is_strengthened(Advisory::kDescend2500));
}

TEST(Advisory, ReversalDetection) {
  EXPECT_TRUE(is_reversal(Advisory::kClimb1500, Advisory::kDescend1500));
  EXPECT_TRUE(is_reversal(Advisory::kDescend2500, Advisory::kClimb1500));
  EXPECT_FALSE(is_reversal(Advisory::kClimb1500, Advisory::kClimb2500));
  EXPECT_FALSE(is_reversal(Advisory::kCoc, Advisory::kClimb1500));
  EXPECT_FALSE(is_reversal(Advisory::kDescend1500, Advisory::kCoc));
}

TEST(Advisory, StrengtheningDetection) {
  EXPECT_TRUE(is_strengthening(Advisory::kClimb1500, Advisory::kClimb2500));
  EXPECT_TRUE(is_strengthening(Advisory::kDescend1500, Advisory::kDescend2500));
  EXPECT_FALSE(is_strengthening(Advisory::kClimb1500, Advisory::kDescend2500));
  EXPECT_FALSE(is_strengthening(Advisory::kClimb2500, Advisory::kClimb2500));
  EXPECT_FALSE(is_strengthening(Advisory::kCoc, Advisory::kClimb2500));
  EXPECT_FALSE(is_strengthening(Advisory::kClimb2500, Advisory::kClimb1500));
}

TEST(Advisory, NamesAreUnique) {
  for (std::size_t i = 0; i < kNumAdvisories; ++i) {
    for (std::size_t j = i + 1; j < kNumAdvisories; ++j) {
      EXPECT_STRNE(advisory_name(kAllAdvisories[i]), advisory_name(kAllAdvisories[j]));
    }
  }
}

TEST(Advisory, ClimbRatesAreSymmetricWithDescend) {
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kClimb1500),
                   -target_rate_fpm(Advisory::kDescend1500));
  EXPECT_DOUBLE_EQ(target_rate_fpm(Advisory::kClimb2500),
                   -target_rate_fpm(Advisory::kDescend2500));
}

}  // namespace
}  // namespace cav::acasx
