// Monte-Carlo harness tests: paired traffic, rate arithmetic, and the
// qualitative system ordering (equipped safer than unequipped) on a small
// but statistically sufficient sample.  Rates come from the campaign API
// (core::ValidationCampaign — the primary surface since PR 9); the
// deprecated estimate_rates wrapper keeps its own bit-identity assertion
// in tests/test_core_campaign.cpp.
#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include "core/validation_campaign.h"

#include <memory>

#include "acasx/offline_solver.h"
#include "baselines/tcas_like.h"
#include "sim/acasx_cas.h"

namespace cav::core {
namespace {

class MonteCarloTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
    pool_ = new ThreadPool();
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete table_;
    pool_ = nullptr;
    table_ = nullptr;
  }
  static MonteCarloConfig small_config() {
    MonteCarloConfig config;
    config.encounters = 300;
    config.seed = 5;
    return config;
  }
  static std::shared_ptr<const acasx::LogicTable>* table_;
  static ThreadPool* pool_;
};

std::shared_ptr<const acasx::LogicTable>* MonteCarloTest::table_ = nullptr;
ThreadPool* MonteCarloTest::pool_ = nullptr;

// The campaign-API spelling of the old estimate_rates call shape, so every
// test below runs through the primary surface.
SystemRates campaign_rates(const encounter::StatisticalEncounterModel& model,
                           const MonteCarloConfig& config, const std::string& system_name,
                           const sim::CasFactory& own_cas, const sim::CasFactory& intruder_cas,
                           ThreadPool* pool = nullptr) {
  return ValidationCampaign(model, config, system_name, own_cas, intruder_cas).run(pool).rates;
}

TEST_F(MonteCarloTest, UnequippedTrafficHasSubstantialNmacRate) {
  const encounter::StatisticalEncounterModel model;
  const auto rates = campaign_rates(model, small_config(), "none", {}, {}, pool_);
  EXPECT_EQ(rates.encounters, 300U);
  // The traffic mixes conflicts with safe passes; a material share of
  // encounters must still be true conflicts.
  EXPECT_GT(rates.nmac_rate(), 0.05);
  EXPECT_LT(rates.nmac_rate(), 0.60);
  EXPECT_EQ(rates.alerts, 0U) << "unequipped aircraft never alert";
}

TEST_F(MonteCarloTest, AcasReducesRiskSubstantially) {
  const encounter::StatisticalEncounterModel model;
  const auto config = small_config();
  const auto unequipped = campaign_rates(model, config, "none", {}, {}, pool_);
  const auto acas = campaign_rates(model, config, "acas",
                                   sim::AcasXuCas::factory(*table_),
                                   sim::AcasXuCas::factory(*table_), pool_);
  EXPECT_LT(acas.nmac_rate(), unequipped.nmac_rate());
  const double rr = risk_ratio(acas, unequipped);
  EXPECT_LT(rr, 0.5) << "equipped risk ratio must be well below 1";
  EXPECT_GT(acas.alert_rate(), 0.0);
}

TEST_F(MonteCarloTest, PairedTrafficAcrossSystems) {
  // Same seed -> same geometries: mean unequipped separation must be
  // bit-identical across two estimates with different system names.
  const encounter::StatisticalEncounterModel model;
  const auto a = campaign_rates(model, small_config(), "a", {}, {}, pool_);
  const auto b = campaign_rates(model, small_config(), "b", {}, {}, pool_);
  EXPECT_DOUBLE_EQ(a.mean_min_separation_m, b.mean_min_separation_m);
  EXPECT_EQ(a.nmacs, b.nmacs);
}

TEST_F(MonteCarloTest, SerialMatchesParallel) {
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 60;
  const auto serial = campaign_rates(model, config, "s", {}, {});
  const auto parallel = campaign_rates(model, config, "p", {}, {}, pool_);
  EXPECT_EQ(serial.nmacs, parallel.nmacs);
  EXPECT_DOUBLE_EQ(serial.mean_min_separation_m, parallel.mean_min_separation_m);
}

TEST_F(MonteCarloTest, ResultsInvariantAcrossThreadCounts) {
  // The striped accumulators are combined in stripe order, so estimates are
  // bit-identical no matter how the work is scheduled — the lock-free
  // rewrite must not have changed results.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 90;
  const auto serial = campaign_rates(model, config, "serial", {}, {});
  for (const std::size_t threads : {1U, 2U, 5U}) {
    ThreadPool pool(threads);
    const auto parallel = campaign_rates(model, config, "parallel", {}, {}, &pool);
    EXPECT_EQ(parallel.nmacs, serial.nmacs) << threads << " threads";
    EXPECT_EQ(parallel.alerts, serial.alerts) << threads << " threads";
    EXPECT_DOUBLE_EQ(parallel.mean_min_separation_m, serial.mean_min_separation_m)
        << threads << " threads";
  }
}

TEST_F(MonteCarloTest, ConfidenceIntervalsBracketRates) {
  const encounter::StatisticalEncounterModel model;
  const auto rates = campaign_rates(model, small_config(), "none", {}, {}, pool_);
  const Interval ci = rates.nmac_ci();
  EXPECT_LE(ci.lo, rates.nmac_rate());
  EXPECT_GE(ci.hi, rates.nmac_rate());
  EXPECT_GT(ci.hi - ci.lo, 0.0);
}

TEST_F(MonteCarloTest, RiskRatioEdgeCases) {
  SystemRates zero;
  zero.system = "base";
  zero.encounters = 100;
  zero.nmacs = 0;
  SystemRates some;
  some.encounters = 100;
  some.nmacs = 10;
  // A zero-NMAC baseline used to yield a silent quiet-NaN; the ratio is
  // now the documented sentinel (and risk_ratio_wilson the uncertainty-
  // aware variant — tests/test_core_campaign.cpp).
  EXPECT_EQ(risk_ratio(some, zero), kRiskRatioUndefined);
  EXPECT_NEAR(risk_ratio(zero, some), 0.0, 1e-12);
}

TEST_F(MonteCarloTest, ZeroEncountersIsRejected) {
  // An empty stripe set used to reach parallel_for(0, ...); the config is
  // now rejected at the API boundary.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 0;
  EXPECT_THROW(campaign_rates(model, config, "none", {}, {}, pool_), ContractViolation);
  config.encounters = 10;
  config.intruders = 0;
  EXPECT_THROW(campaign_rates(model, config, "none", {}, {}, pool_), ContractViolation);
}

TEST_F(MonteCarloTest, MultiIntruderRatesInvariantAcrossThreadCounts) {
  // The multi-intruder path derives every geometry from (seed, index,
  // intruder) and every sim from (seed, index), so rates are bit-identical
  // for any thread count — the determinism contract of the pairwise path
  // extends to K > 1.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 40;
  config.intruders = 3;
  const auto serial = campaign_rates(model, config, "serial", {}, {});
  for (const std::size_t threads : {1U, 2U, 5U}) {
    ThreadPool pool(threads);
    const auto parallel = campaign_rates(model, config, "parallel", {}, {}, &pool);
    EXPECT_EQ(parallel.nmacs, serial.nmacs) << threads << " threads";
    EXPECT_EQ(parallel.alerts, serial.alerts) << threads << " threads";
    EXPECT_DOUBLE_EQ(parallel.mean_min_separation_m, serial.mean_min_separation_m)
        << threads << " threads";
  }
}

TEST_F(MonteCarloTest, MoreIntrudersMeanMoreOwnshipRisk) {
  // Density monotonicity on unequipped traffic: with three independent
  // threats per encounter the own-ship NMAC rate must exceed the
  // single-intruder rate (each intruder alone would produce roughly the
  // pairwise rate).
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 200;
  const auto one = campaign_rates(model, config, "K1", {}, {}, pool_);
  config.intruders = 3;
  const auto three = campaign_rates(model, config, "K3", {}, {}, pool_);
  EXPECT_GT(three.nmac_rate(), one.nmac_rate());
}

TEST_F(MonteCarloTest, MultiIntruderEquippedBeatsUnequipped) {
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 120;
  config.intruders = 3;
  const auto unequipped = campaign_rates(model, config, "none", {}, {}, pool_);
  const auto acas = campaign_rates(model, config, "acas", sim::AcasXuCas::factory(*table_),
                                   sim::AcasXuCas::factory(*table_), pool_);
  EXPECT_LT(acas.nmac_rate(), unequipped.nmac_rate());
  EXPECT_GT(acas.alert_rate(), 0.0);
  EXPECT_EQ(unequipped.alerts, 0U);
}

TEST_F(MonteCarloTest, FullEquipageFractionIsBitIdenticalToDefault) {
  // 1.0 takes the pre-fault path without drawing: identical to an
  // untouched config, bit for bit.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 60;
  config.intruders = 2;
  const auto plain = campaign_rates(model, config, "plain", {}, baselines::TcasLikeCas::factory(),
                                    pool_);
  config.equipage_fraction = 1.0;
  const auto full = campaign_rates(model, config, "full", {}, baselines::TcasLikeCas::factory(),
                                   pool_);
  EXPECT_EQ(plain.nmacs, full.nmacs);
  EXPECT_EQ(plain.alerts, full.alerts);
  EXPECT_DOUBLE_EQ(plain.mean_min_separation_m, full.mean_min_separation_m);
}

TEST_F(MonteCarloTest, ZeroEquipageFractionMatchesNullFactory) {
  // 0.0 must strip every intruder's CAS — bit-identical to passing no
  // intruder factory at all (and, like 1.0, it never draws).
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 60;
  config.intruders = 2;
  const auto null_factory = campaign_rates(model, config, "null", {}, {}, pool_);
  config.equipage_fraction = 0.0;
  const auto zero = campaign_rates(model, config, "zero", {},
                                   baselines::TcasLikeCas::factory(), pool_);
  EXPECT_EQ(null_factory.nmacs, zero.nmacs);
  EXPECT_EQ(null_factory.alerts, zero.alerts);
  EXPECT_DOUBLE_EQ(null_factory.mean_min_separation_m, zero.mean_min_separation_m);
}

TEST_F(MonteCarloTest, PartialEquipageLandsBetweenTheBoundaries) {
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 200;
  config.intruders = 2;
  config.sim.coordination.message_loss_prob = 0.0;
  const auto own = sim::AcasXuCas::factory(*table_);
  config.equipage_fraction = 0.0;
  const auto none = campaign_rates(model, config, "0%", own, sim::AcasXuCas::factory(*table_),
                                   pool_);
  config.equipage_fraction = 1.0;
  const auto full = campaign_rates(model, config, "100%", own, sim::AcasXuCas::factory(*table_),
                                   pool_);
  config.equipage_fraction = 0.5;
  const auto half = campaign_rates(model, config, "50%", own, sim::AcasXuCas::factory(*table_),
                                   pool_);
  // Unequipped intruders still fly their plans, so half equipage cannot be
  // safer than full or riskier than none on this paired traffic.
  EXPECT_GE(half.nmac_rate(), full.nmac_rate());
  EXPECT_LE(half.nmac_rate(), none.nmac_rate());
}

TEST_F(MonteCarloTest, DegradedRunInvariantAcrossThreadCounts) {
  // The full fault stack — bursty comms, a blackout, ADS-B dropout bursts
  // with a staleness horizon, mixed adversarial equipage — derives every
  // draw from (seed, encounter, agent), so the campaign rates stay
  // bit-identical for any thread count.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 40;
  config.intruders = 2;
  config.equipage_fraction = 0.5;
  config.unequipped_behavior = UnequippedBehavior::kManeuverAtCpa;
  config.sim.coordination.message_loss_prob = 0.2;
  config.sim.coordination.burst_enter_prob = 0.2;
  config.sim.coordination.staleness_ttl_cycles = 4;
  config.sim.fault.comms_blackouts.push_back({25.0, 40.0});
  config.sim.fault.adsb_dropout_burst_prob = 0.15;
  config.sim.fault.adsb_burst_continue_prob = 0.5;
  config.sim.fault.track_staleness_horizon_s = 8.0;
  const auto own = sim::AcasXuCas::factory(*table_);
  const auto serial = campaign_rates(model, config, "serial", own,
                                     sim::AcasXuCas::factory(*table_));
  for (const std::size_t threads : {2U, 5U}) {
    ThreadPool pool(threads);
    const auto parallel = campaign_rates(model, config, "parallel", own,
                                         sim::AcasXuCas::factory(*table_), &pool);
    EXPECT_EQ(parallel.nmacs, serial.nmacs) << threads << " threads";
    EXPECT_EQ(parallel.alerts, serial.alerts) << threads << " threads";
    EXPECT_DOUBLE_EQ(parallel.mean_min_separation_m, serial.mean_min_separation_m)
        << threads << " threads";
  }
}

TEST_F(MonteCarloTest, AdversarialUnequippedIntrudersRaiseRisk) {
  // Maneuver-at-CPA unequipped intruders chase the own-ship's altitude;
  // against an equipped own-ship they must be at least as dangerous as
  // passive unequipped ones on the same paired traffic.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig config = small_config();
  config.encounters = 200;
  config.intruders = 2;
  config.equipage_fraction = 0.0;
  const auto own = sim::AcasXuCas::factory(*table_);
  const auto passive = campaign_rates(model, config, "passive", own, {}, pool_);
  config.unequipped_behavior = UnequippedBehavior::kManeuverAtCpa;
  const auto hostile = campaign_rates(model, config, "hostile", own, {}, pool_);
  EXPECT_GE(hostile.nmac_rate(), passive.nmac_rate());
  // The scripted maneuvers must not pollute the alert statistics.
  EXPECT_EQ(hostile.alerts == 0U, passive.alerts == 0U);
}

TEST_F(MonteCarloTest, PerAgentFaultProfilesOverrideFleetProfile) {
  // A crippling fleet-wide profile overridden per agent by none() must
  // reproduce the clean run bit for bit.
  const encounter::StatisticalEncounterModel model;
  MonteCarloConfig clean = small_config();
  clean.encounters = 60;
  MonteCarloConfig overridden = clean;
  overridden.sim.fault.adsb_dropout_burst_prob = 1.0;
  overridden.sim.fault.adsb_burst_continue_prob = 1.0;
  overridden.own_fault = sim::FaultProfile::none();
  overridden.intruder_fault = sim::FaultProfile::none();
  const auto a = campaign_rates(model, clean, "clean", {}, baselines::TcasLikeCas::factory(),
                                pool_);
  const auto b = campaign_rates(model, overridden, "override", {},
                                baselines::TcasLikeCas::factory(), pool_);
  EXPECT_EQ(a.nmacs, b.nmacs);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_DOUBLE_EQ(a.mean_min_separation_m, b.mean_min_separation_m);
}

TEST_F(MonteCarloTest, TcasLikeAlsoReducesRisk) {
  const encounter::StatisticalEncounterModel model;
  const auto config = small_config();
  const auto unequipped = campaign_rates(model, config, "none", {}, {}, pool_);
  const auto tcas = campaign_rates(model, config, "tcas", baselines::TcasLikeCas::factory(),
                                   baselines::TcasLikeCas::factory(), pool_);
  EXPECT_LT(tcas.nmac_rate(), unequipped.nmac_rate());
}

}  // namespace
}  // namespace cav::core
