#include "encounter/statistical_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cav::encounter {
namespace {

TEST(StatisticalModel, SamplesStayWithinRanges) {
  const StatisticalEncounterModel model;
  RngStream rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(model.config().ranges.contains(model.sample(rng).to_array()));
  }
}

TEST(StatisticalModel, LevelFlightFractionMatchesConfig) {
  StatisticalModelConfig config;
  config.p_level = 0.6;
  const StatisticalEncounterModel model(config);
  RngStream rng(2);
  int level = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto p = model.sample(rng);
    if (std::abs(p.vs_own_mps) < 3.0 * config.level_jitter_mps) ++level;
  }
  // "Level" detection threshold catches the jitter population and a tiny
  // slice of the maneuvering one.
  EXPECT_NEAR(level / static_cast<double>(n), 0.6, 0.05);
}

TEST(StatisticalModel, MissDistancesMixConflictAndSafePasses) {
  const StatisticalEncounterModel model;
  RngStream rng(3);
  double r_sum = 0.0;
  int conflicts = 0;
  int safe = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double r = model.sample(rng).r_cpa_m;
    r_sum += r;
    if (r < 152.4) ++conflicts;  // inside the NMAC cylinder radius
    if (r > 450.0) ++safe;
  }
  // |N(0, 300)| has mean 300 * sqrt(2/pi) ~ 239 m (clamping shifts slightly).
  EXPECT_NEAR(r_sum / n, 239.0, 20.0);
  // Both sub-populations must be materially represented (the alert-rate
  // metric needs safe passes; the NMAC metric needs conflicts).
  EXPECT_GT(conflicts, n / 10);
  EXPECT_GT(safe, n / 10);
}

TEST(StatisticalModel, GroundSpeedsFollowTruncatedNormal) {
  const StatisticalEncounterModel model;
  RngStream rng(4);
  double sum = 0.0;
  double lo = 1e30;
  double hi = -1e30;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double g = model.sample(rng).gs_own_mps;
    sum += g;
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  EXPECT_NEAR(sum / n, 35.0, 1.5);
  EXPECT_GE(lo, model.config().ranges.lo[0]);
  EXPECT_LE(hi, model.config().ranges.hi[0]);
}

TEST(StatisticalModel, DeterministicPerStream) {
  const StatisticalEncounterModel model;
  RngStream a(9);
  RngStream b(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model.sample(a).to_array(), model.sample(b).to_array());
  }
}

TEST(StatisticalModel, CoursesCoverTheCircle) {
  const StatisticalEncounterModel model;
  RngStream rng(5);
  int quadrants[4] = {0, 0, 0, 0};
  for (int i = 0; i < 2000; ++i) {
    const double theta = model.sample(rng).theta_int_rad;
    const int q = theta < -1.5708 ? 0 : theta < 0.0 ? 1 : theta < 1.5708 ? 2 : 3;
    ++quadrants[q];
  }
  for (const int q : quadrants) EXPECT_GT(q, 300);
}

}  // namespace
}  // namespace cav::encounter
