#include "acasx/dynamics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cav::acasx {
namespace {

TEST(SigmaSamples, MatchGaussianMoments) {
  const double sigma = 3.0;
  const auto samples = sigma_samples(sigma);
  double mean = 0.0;
  double var = 0.0;
  double weight_sum = 0.0;
  for (const auto& s : samples) {
    weight_sum += s.weight;
    mean += s.weight * s.accel_fps2;
  }
  for (const auto& s : samples) {
    var += s.weight * (s.accel_fps2 - mean) * (s.accel_fps2 - mean);
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-12);
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, sigma * sigma, 1e-9);
}

TEST(SigmaSamples, ZeroSigmaDegenerates) {
  const auto samples = sigma_samples(0.0);
  for (const auto& s : samples) EXPECT_DOUBLE_EQ(s.accel_fps2, 0.0);
}

TEST(RateResponse, CocHoldsRate) {
  DynamicsConfig dyn;
  EXPECT_DOUBLE_EQ(advisory_rate_response(12.3, Advisory::kCoc, dyn), 12.3);
}

TEST(RateResponse, AcceleratesTowardTarget) {
  DynamicsConfig dyn;  // initial accel ~8.04 ft/s^2, dt 1 s
  // From level flight toward CL1500 (25 ft/s): one step gains ~8 ft/s.
  const double v1 = advisory_rate_response(0.0, Advisory::kClimb1500, dyn);
  EXPECT_NEAR(v1, dyn.accel_initial_fps2, 1e-9);
  EXPECT_LT(v1, 25.0);
}

TEST(RateResponse, CapturesTargetWithoutOvershoot) {
  DynamicsConfig dyn;
  double v = 0.0;
  for (int i = 0; i < 10; ++i) v = advisory_rate_response(v, Advisory::kClimb1500, dyn);
  EXPECT_NEAR(v, 25.0, 1e-9);  // exactly 1500 fpm, no overshoot
}

TEST(RateResponse, AlreadyPastTargetHolds) {
  DynamicsConfig dyn;
  // Climbing at 30 ft/s with a CL1500 (25 ft/s) advisory: the advisory is a
  // "at least" in reality, but our response model tracks the target rate;
  // it must approach from above, not jump.
  const double v = advisory_rate_response(30.0, Advisory::kClimb1500, dyn);
  EXPECT_LT(v, 30.0);
  EXPECT_GE(v, 25.0 - 1e-9);
}

TEST(RateResponse, StrengthenedUsesLargerAcceleration) {
  DynamicsConfig dyn;
  const double d1 = advisory_rate_response(0.0, Advisory::kClimb1500, dyn);
  const double d2 = advisory_rate_response(0.0, Advisory::kClimb2500, dyn);
  EXPECT_GT(d2, d1);
  EXPECT_NEAR(d2, dyn.accel_strength_fps2, 1e-9);
}

TEST(RateResponse, DescendMirrorsClimb) {
  DynamicsConfig dyn;
  EXPECT_DOUBLE_EQ(advisory_rate_response(0.0, Advisory::kDescend1500, dyn),
                   -advisory_rate_response(0.0, Advisory::kClimb1500, dyn));
}

TEST(Integrate, TrapezoidalRelativeAltitude) {
  // Constant rates: h moves by (vi - vo) * dt.
  EXPECT_DOUBLE_EQ(integrate_relative_altitude(100.0, 0.0, 0.0, 10.0, 10.0, 1.0), 110.0);
  // Ramping rates use the average.
  EXPECT_DOUBLE_EQ(integrate_relative_altitude(0.0, 0.0, 10.0, 0.0, 0.0, 1.0), -5.0);
  EXPECT_DOUBLE_EQ(integrate_relative_altitude(0.0, 0.0, 0.0, 0.0, 10.0, 2.0), 10.0);
}

TEST(ActionCost, MatchesPaperNumbers) {
  const CostModel costs;
  // Level off rewarded 50.
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kCoc, Advisory::kCoc, costs), -50.0);
  // Maneuver costs 100.
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kCoc, Advisory::kClimb1500, costs), 100.0);
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kClimb1500, Advisory::kClimb1500, costs), 100.0);
}

TEST(ActionCost, StrengthenSurcharge) {
  const CostModel costs;
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kClimb1500, Advisory::kClimb2500, costs),
                   costs.strengthened_maneuver_cost + costs.strengthen_cost);
  // Continuing a strengthened advisory pays only the per-step cost.
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kClimb2500, Advisory::kClimb2500, costs),
                   costs.strengthened_maneuver_cost);
}

TEST(ActionCost, ReversalSurcharge) {
  const CostModel costs;
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kClimb1500, Advisory::kDescend1500, costs),
                   costs.maneuver_cost + costs.reversal_cost);
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kDescend1500, Advisory::kClimb2500, costs),
                   costs.strengthened_maneuver_cost + costs.reversal_cost);
}

TEST(ActionCost, TerminationSurcharge) {
  const CostModel costs;
  // Dropping an active advisory collects the level reward but pays the
  // termination surcharge (anti-chattering hysteresis).
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kClimb2500, Advisory::kCoc, costs),
                   -costs.level_reward + costs.termination_cost);
  // Staying clear of conflict pays nothing extra.
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kCoc, Advisory::kCoc, costs), -costs.level_reward);
}

TEST(ActionCost, ZeroTerminationCostRestoresPureLevelReward) {
  CostModel costs;
  costs.termination_cost = 0.0;
  EXPECT_DOUBLE_EQ(action_cost(Advisory::kClimb2500, Advisory::kCoc, costs), -50.0);
}

}  // namespace
}  // namespace cav::acasx
