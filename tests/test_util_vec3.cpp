#include "util/vec3.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace cav {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, -3.0, 9.0}));
  EXPECT_EQ(a - b, (Vec3{-3.0, 7.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += {1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= {1.0, 1.0, 1.0};
  EXPECT_EQ(v, (Vec3{1.0, 2.0, 3.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3.0, 6.0, 9.0}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  const Vec3 z{0.0, 0.0, 1.0};
  EXPECT_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ((Vec3{2.0, 3.0, 4.0}).dot({5.0, 6.0, 7.0}), 10.0 + 18.0 + 28.0);
}

TEST(Vec3, Norms) {
  const Vec3 v{3.0, 4.0, 12.0};
  EXPECT_DOUBLE_EQ(v.norm(), 13.0);
  EXPECT_DOUBLE_EQ(v.norm_sq(), 169.0);
  EXPECT_DOUBLE_EQ(v.horizontal_norm(), 5.0);
}

TEST(Vec3, NormalizedUnitLength) {
  const Vec3 v{3.0, 4.0, 0.0};
  const Vec3 n = v.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  EXPECT_DOUBLE_EQ(n.y, 0.8);
}

TEST(Vec3, NormalizedZeroStaysZero) {
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, Distances) {
  const Vec3 a{0.0, 0.0, 0.0};
  const Vec3 b{3.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(horizontal_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(vertical_distance(a, b), 10.0);
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(125.0));
}

TEST(Vec3, VerticalDistanceIsAbsolute) {
  EXPECT_DOUBLE_EQ(vertical_distance({0, 0, 5}, {0, 0, -3}), 8.0);
  EXPECT_DOUBLE_EQ(vertical_distance({0, 0, -3}, {0, 0, 5}), 8.0);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1.5, -2.0, 3.0};
  EXPECT_EQ(os.str(), "(1.5, -2, 3)");
}

}  // namespace
}  // namespace cav
