// End-to-end simulation-engine tests: kinematics, determinism, monitor
// wiring, trajectory recording, alert bookkeeping, and the equipped/
// unequipped contrast on a head-on geometry.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>

#include "acasx/offline_solver.h"
#include "sim/acasx_cas.h"
#include "util/angles.h"
#include "util/expect.h"

namespace cav::sim {
namespace {

UavState state_at(double x, double y, double z, double gs, double bearing, double vs) {
  UavState s;
  s.position_m = {x, y, z};
  s.ground_speed_mps = gs;
  s.bearing_rad = bearing;
  s.vertical_speed_mps = vs;
  return s;
}

SimConfig quiet_config() {
  SimConfig config;
  config.disturbance = DisturbanceConfig::none();
  config.adsb = AdsbConfig::perfect();
  return config;
}

AgentSetup unequipped(const UavState& s) {
  AgentSetup a;
  a.initial_state = s;
  return a;
}

class SimulationWithTableTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new std::shared_ptr<const acasx::LogicTable>(std::make_shared<const acasx::LogicTable>(
        acasx::solve_logic_table(acasx::AcasXuConfig::coarse())));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static AgentSetup equipped(const UavState& s) {
    AgentSetup a;
    a.initial_state = s;
    a.cas = std::make_unique<AcasXuCas>(*table_);
    return a;
  }
  static std::shared_ptr<const acasx::LogicTable>* table_;
};

std::shared_ptr<const acasx::LogicTable>* SimulationWithTableTest::table_ = nullptr;

TEST(Simulation, StraightLineKinematics) {
  SimConfig config = quiet_config();
  config.max_time_s = 15.0;
  // Closing at 100 m/s from 1000 m: they meet at t = 10 s.
  const auto result = run_encounter(config, unequipped(state_at(0, 0, 1000, 50, 0, 0)),
                                    unequipped(state_at(1000, 0, 1000, 50, kPi, 0)), 1);
  EXPECT_NEAR(result.elapsed_s, 15.0, 1e-9);
  // They meet in the middle: min distance ~0 (within a physics step).
  EXPECT_LT(result.proximity.min_distance_m, 6.0);
  EXPECT_NEAR(result.proximity.time_of_min_distance_s, 10.0, 0.2);
  EXPECT_TRUE(result.nmac);
  EXPECT_TRUE(result.hard_collision);
}

TEST(Simulation, NonConflictingTrafficStaysClear) {
  SimConfig config = quiet_config();
  config.max_time_s = 30.0;
  const auto result = run_encounter(config, unequipped(state_at(0, 0, 1000, 20, 0, 0)),
                                    unequipped(state_at(0, 5000, 2000, 20, 0, 0)), 2);
  EXPECT_FALSE(result.nmac);
  EXPECT_GT(result.proximity.min_distance_m, 999.0);
}

TEST(Simulation, DeterministicForSameSeed) {
  SimConfig config;  // default noise on
  config.max_time_s = 30.0;
  const auto run = [&](std::uint64_t seed) {
    return run_encounter(config, unequipped(state_at(0, 0, 1000, 30, 0, 0)),
                         unequipped(state_at(1500, 30, 1010, 30, kPi, 0)), seed);
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
  EXPECT_EQ(a.nmac, b.nmac);
  const auto c = run(8);
  EXPECT_NE(a.proximity.min_distance_m, c.proximity.min_distance_m);
}

TEST(Simulation, TrajectoryRecordingSampledPerDecisionCycle) {
  SimConfig config = quiet_config();
  config.max_time_s = 20.0;
  config.record_trajectory = true;
  const auto result = run_encounter(config, unequipped(state_at(0, 0, 1000, 10, 0, 0)),
                                    unequipped(state_at(5000, 0, 1000, 10, kPi, 0)), 3);
  ASSERT_EQ(result.trajectory.size(), 20U);  // one per decision cycle
  EXPECT_DOUBLE_EQ(result.trajectory.front().t_s, 0.0);
  // Separation column is consistent with the positions.
  for (const auto& s : result.trajectory) {
    EXPECT_NEAR(s.separation_m, distance(s.own_position_m, s.intruder_position_m), 1e-9);
  }
}

TEST(Simulation, RejectsBadConfig) {
  SimConfig config;
  config.dt_dynamics_s = 0.0;
  EXPECT_THROW(run_encounter(config, unequipped({}), unequipped({}), 1), ContractViolation);
  SimConfig config2;
  config2.decision_period_s = 0.01;  // smaller than physics step
  EXPECT_THROW(run_encounter(config2, unequipped({}), unequipped({}), 1), ContractViolation);
}

TEST_F(SimulationWithTableTest, EquippedResolvesHeadOn) {
  SimConfig config;  // realistic noise
  config.max_time_s = 90.0;
  const auto result = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                                    equipped(state_at(3200, 0, 1000, 40, kPi, 0)), 11);
  EXPECT_FALSE(result.nmac);
  EXPECT_TRUE(result.own.ever_alerted);
  // The DP alerts late and minimally (the paper's §III cost scale prices an
  // advisory step at 100 against an NMAC at 10000), so even two cycles of
  // g/4 climb can be cost-optimal — what matters is that it resolves.
  EXPECT_GE(result.own.alert_cycles, 2);
}

TEST_F(SimulationWithTableTest, UnequippedHeadOnCollides) {
  SimConfig config;
  config.max_time_s = 90.0;
  const auto result = run_encounter(config, unequipped(state_at(0, 0, 1000, 40, 0, 0)),
                                    unequipped(state_at(3200, 0, 1000, 40, kPi, 0)), 11);
  EXPECT_TRUE(result.nmac);
}

TEST_F(SimulationWithTableTest, CoordinationYieldsComplementarySenses) {
  SimConfig config = quiet_config();
  config.max_time_s = 90.0;
  config.record_trajectory = true;
  const auto result = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                                    equipped(state_at(3200, 0, 1000, 40, kPi, 0)), 12);
  // Find a cycle where both had active advisories and check opposite senses.
  bool saw_complementary = false;
  bool saw_same_sense = false;
  for (const auto& s : result.trajectory) {
    const bool own_climb = s.own_advisory.find("CL") != std::string::npos;
    const bool own_descend = s.own_advisory.find("DES") != std::string::npos;
    const bool int_climb = s.intruder_advisory.find("CL") != std::string::npos;
    const bool int_descend = s.intruder_advisory.find("DES") != std::string::npos;
    if ((own_climb && int_descend) || (own_descend && int_climb)) saw_complementary = true;
    if ((own_climb && int_climb) || (own_descend && int_descend)) saw_same_sense = true;
  }
  EXPECT_TRUE(saw_complementary);
  EXPECT_FALSE(saw_same_sense) << "coordination must prevent same-sense maneuvers";
}

TEST_F(SimulationWithTableTest, AlertBookkeeping) {
  SimConfig config = quiet_config();
  config.max_time_s = 90.0;
  const auto result = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                                    unequipped(state_at(3200, 0, 1000, 40, kPi, 0)), 13);
  EXPECT_TRUE(result.own.ever_alerted);
  EXPECT_GE(result.own.first_alert_time_s, 0.0);
  EXPECT_GT(result.own.alert_cycles, 0);
  EXPECT_FALSE(result.intruder.ever_alerted);
  EXPECT_EQ(result.intruder.alert_cycles, 0);
}

TEST_F(SimulationWithTableTest, SensorDropoutCoastsInsteadOfCrashing) {
  SimConfig config;
  config.adsb.dropout_prob = 0.8;  // heavy surveillance loss
  config.max_time_s = 90.0;
  const auto result = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                                    equipped(state_at(3200, 0, 1000, 40, kPi, 0)), 14);
  // With 80% dropout decisions still happen on stale tracks; the run must
  // complete and produce a sane report either way.
  EXPECT_GT(result.proximity.min_distance_m, 0.0);
  EXPECT_NEAR(result.elapsed_s, 90.0, 1e-9);
}

TEST_F(SimulationWithTableTest, TotalSurveillanceLossMeansNoAlerts) {
  SimConfig config;
  config.adsb.dropout_prob = 1.0;
  config.max_time_s = 60.0;
  const auto result = run_encounter(config, equipped(state_at(0, 0, 1000, 40, 0, 0)),
                                    equipped(state_at(2400, 0, 1000, 40, kPi, 0)), 15);
  EXPECT_FALSE(result.own.ever_alerted);
  EXPECT_FALSE(result.intruder.ever_alerted);
  EXPECT_TRUE(result.nmac) << "blind aircraft on a collision course collide";
}

}  // namespace
}  // namespace cav::sim
