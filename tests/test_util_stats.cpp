#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cav {
namespace {

TEST(RunningStats, EmptyState) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population variance is 4.0; unbiased sample variance is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.sem(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0), 1e-12);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  // Welford should not lose the variance of small deviations on a large base.
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(Wilson, ZeroTrials) {
  const Interval ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(Wilson, ZeroSuccessesStaysAboveZero) {
  const Interval ci = wilson_interval(0, 100);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.05);  // rule of three: ~3/n
}

TEST(Wilson, AllSuccesses) {
  const Interval ci = wilson_interval(100, 100);
  EXPECT_LT(ci.lo, 1.0);
  EXPECT_GT(ci.lo, 0.95);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(Wilson, CoversPointEstimate) {
  for (std::size_t k : {1U, 10U, 50U, 90U, 99U}) {
    const Interval ci = wilson_interval(k, 100);
    const double p = k / 100.0;
    EXPECT_LE(ci.lo, p);
    EXPECT_GE(ci.hi, p);
  }
}

TEST(Wilson, ShrinksWithSampleSize) {
  const Interval small = wilson_interval(5, 50);
  const Interval large = wilson_interval(500, 5000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(MeanOf, Basics) {
  EXPECT_TRUE(std::isnan(mean_of({})));
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(Percentile, KnownQuantiles) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0, 5.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  // Interpolated between order statistics.
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 1.5);
}

TEST(Percentile, Empty) {
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
}

}  // namespace
}  // namespace cav
