// The cost-weight revision loop: one compiled transition structure,
// refreshed costs per revision, and closed-loop evaluation on a fixed
// yardstick.  The identity revision must reproduce the base solve exactly,
// and the loop must respond to weight changes the way the paper's Fig. 1
// iteration expects (pricier maneuvers -> less maneuvering).
#include "core/model_revision.h"

#include <gtest/gtest.h>

#include "mdp/value_iteration.h"
#include "toy2d/toy2d_mdp.h"
#include "util/thread_pool.h"

namespace cav::core {
namespace {

TEST(Toy2dRevisionLoop, IdentityRevisionReproducesBaseSolve) {
  const toy2d::Config base;
  Toy2dRevisionLoop loop(base);
  const auto report = loop.evaluate(Toy2dCostRevision{});  // defaults == paper weights

  const auto reference = mdp::solve_value_iteration(toy2d::Toy2dMdp(base));
  ASSERT_EQ(report.values.size(), reference.values.size());
  for (std::size_t s = 0; s < reference.values.size(); ++s) {
    EXPECT_EQ(report.values[s], reference.values[s]) << "state " << s;
  }
  EXPECT_EQ(report.policy, reference.policy);
  EXPECT_EQ(loop.revisions_evaluated(), 1U);
}

TEST(Toy2dRevisionLoop, RepeatedRevisionsAreDeterministicAndIndependent) {
  // Evaluating A, then B, then A again must give A's exact result twice:
  // refresh_costs leaves no residue in the compiled structure.
  Toy2dRevisionLoop loop(toy2d::Config{});
  Toy2dCostRevision a;
  a.maneuver_cost = 20.0;
  Toy2dCostRevision b;
  b.maneuver_cost = 700.0;

  const auto first = loop.evaluate(a);
  loop.evaluate(b);
  const auto second = loop.evaluate(a);
  EXPECT_EQ(first.policy, second.policy);
  EXPECT_EQ(first.collisions, second.collisions);
  EXPECT_EQ(first.mean_base_cost, second.mean_base_cost);
  for (std::size_t s = 0; s < first.values.size(); ++s) {
    EXPECT_EQ(first.values[s], second.values[s]) << "state " << s;
  }
  EXPECT_EQ(loop.revisions_evaluated(), 3U);
}

TEST(Toy2dRevisionLoop, PricierManeuversMeanLessManeuvering) {
  Toy2dRevisionLoop loop(toy2d::Config{}, /*episodes_per_start=*/100);
  Toy2dCostRevision cheap;
  cheap.maneuver_cost = 0.0;
  cheap.level_reward = 0.0;
  Toy2dCostRevision pricey;
  pricey.maneuver_cost = 5000.0;

  const auto lenient = loop.evaluate(cheap);
  const auto strict = loop.evaluate(pricey);
  EXPECT_GT(lenient.mean_maneuver_steps, strict.mean_maneuver_steps);
  // Maneuvering less cannot reduce collisions.
  EXPECT_LE(lenient.collisions, strict.collisions);
}

TEST(Toy2dRevisionLoop, PooledSolveMatchesSerial) {
  Toy2dRevisionLoop serial_loop(toy2d::Config{});
  Toy2dRevisionLoop pooled_loop(toy2d::Config{});
  Toy2dCostRevision revision;
  revision.collision_cost = 50000.0;

  ThreadPool pool(3);
  const auto serial = serial_loop.evaluate(revision);
  const auto pooled = pooled_loop.evaluate(revision, &pool);
  EXPECT_EQ(serial.policy, pooled.policy);
  for (std::size_t s = 0; s < serial.values.size(); ++s) {
    EXPECT_EQ(serial.values[s], pooled.values[s]) << "state " << s;
  }
  EXPECT_EQ(serial.mean_base_cost, pooled.mean_base_cost);
}

}  // namespace
}  // namespace cav::core
