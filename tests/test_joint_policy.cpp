// The joint-threat table's acceptance gate (slow tier: full coarse joint
// solve + 180 ring simulations).  PR 4 closed part of the converging-ring
// gap with cost fusion (45 -> 38 own-NMACs over 60 paired seeds); the
// joint table must strictly beat cost fusion on the same paired seeds
// with an encounter alert rate no worse — the symmetric co-altitude
// squeeze is exactly the geometry pairwise fusion cannot price.
#include <gtest/gtest.h>

#include <memory>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/simulation.h"
#include "util/thread_pool.h"

namespace cav::sim {
namespace {

struct PolicyOutcome {
  int own_nmacs = 0;
  int alerted_encounters = 0;
  int joint_cycles = 0;
};

PolicyOutcome run_ring(const scenarios::Scenario& scenario, ThreatPolicy policy,
                       const CasFactory& factory, int seeds) {
  PolicyOutcome out;
  for (int seed = 1; seed <= seeds; ++seed) {
    SimConfig config;  // default noise — identical traffic across policies
    config.threat_policy = policy;
    const SimResult r = scenarios::run_scenario(scenario, config, factory, factory, seed);
    if (r.own_nmac()) ++out.own_nmacs;
    if (r.own.ever_alerted) ++out.alerted_encounters;
    out.joint_cycles += r.own.resolver.joint_cycles;
  }
  return out;
}

TEST(JointPolicyRingTest, JointTableBeatsCostFusionOnThePairedSeedRing) {
  ThreadPool pool;
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::coarse(), &pool));
  const auto joint = std::make_shared<const acasx::JointLogicTable>(
      acasx::solve_joint_table(acasx::JointConfig::coarse(), &pool));

  const scenarios::Scenario ring = scenarios::converging_ring(4);
  constexpr int kSeeds = 60;

  const PolicyOutcome fused =
      run_ring(ring, ThreatPolicy::kCostFused, AcasXuCas::factory(table), kSeeds);
  const PolicyOutcome jointly =
      run_ring(ring, ThreatPolicy::kJointTable,
               AcasXuCas::factory(table, {}, {}, {}, joint), kSeeds);

  EXPECT_GT(fused.own_nmacs, 0) << "sanity: the squeeze still defeats pairwise fusion";
  EXPECT_LT(jointly.own_nmacs, fused.own_nmacs)
      << "the joint table must record strictly fewer own-NMACs than cost fusion";
  EXPECT_LE(jointly.alerted_encounters, fused.alerted_encounters)
      << "the safety gain must not come from alerting more encounters";
  EXPECT_GT(jointly.joint_cycles, 0) << "the joint table actually arbitrated";
  EXPECT_EQ(fused.joint_cycles, 0) << "cost fusion never touches the joint table";
}

}  // namespace
}  // namespace cav::sim
