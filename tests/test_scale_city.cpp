// City-scale airspace tests (the `scale` ctest tier): hundreds-of-aircraft
// determinism — across repeated runs, intruder-count growth, agent-order
// permutation, and thread counts — plus the event-core accounting that
// proves the adaptive engine does O(near pairs) work, not O(K²).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "acasx/offline_solver.h"
#include "core/validation_campaign.h"
#include "encounter/multi_encounter.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/simulation.h"
#include "util/angles.h"
#include "util/thread_pool.h"

namespace cav {
namespace {

sim::SimConfig city_config(bool adaptive) {
  sim::SimConfig config;
  if (adaptive) {
    config.airspace.interaction_radius_m = 2000.0;  // == corridor lane spacing
  } else {
    config.airspace = sim::AirspaceConfig::legacy();
  }
  return config;
}

sim::SimConfig quiet_city_config(bool adaptive) {
  sim::SimConfig config = city_config(adaptive);
  config.disturbance = sim::DisturbanceConfig::none();
  config.adsb = sim::AdsbConfig::perfect();
  return config;
}

TEST(CityCorridors, ConstructionIsDeterministicAndStructured) {
  const scenarios::Scenario a = scenarios::city_corridors(256, 2016);
  const scenarios::Scenario b = scenarios::city_corridors(256, 2016);
  ASSERT_EQ(a.num_aircraft(), 256U);
  ASSERT_EQ(a.explicit_states.size(), b.explicit_states.size());
  for (std::size_t i = 0; i < a.explicit_states.size(); ++i) {
    EXPECT_EQ(a.explicit_states[i].position_m.x, b.explicit_states[i].position_m.x) << i;
    EXPECT_EQ(a.explicit_states[i].position_m.y, b.explicit_states[i].position_m.y) << i;
    EXPECT_EQ(a.explicit_states[i].ground_speed_mps, b.explicit_states[i].ground_speed_mps) << i;
    // Corridor structure: eastbound at 1000 m, northbound 15 m above —
    // inside the NMAC vertical band, so crossings are live conflicts.
    const auto& s = a.explicit_states[i];
    EXPECT_TRUE(s.position_m.z == 1000.0 || s.position_m.z == 1015.0) << i;
    EXPECT_TRUE(s.bearing_rad == 0.0 || s.bearing_rad == kPi / 2.0) << i;
    EXPECT_GE(s.ground_speed_mps, 30.0);
    EXPECT_LT(s.ground_speed_mps, 45.0);
    EXPECT_EQ(s.vertical_speed_mps, 0.0);
  }
  // A different seed shuffles the along-lane offsets.
  const scenarios::Scenario c = scenarios::city_corridors(256, 7);
  EXPECT_NE(a.explicit_states[0].position_m.x, c.explicit_states[0].position_m.x);
  EXPECT_EQ(a.suggested_time_s(), 120.0);
  EXPECT_EQ(scenarios::make_scenario("city-corridors", 64).num_aircraft(), 64U);
}

TEST(MultiEncounterModelScale, IntruderPrefixStableUnderKGrowth) {
  // The per-intruder-stream contract, checked well past K=8: raising K
  // extends an encounter without disturbing the intruders it already had.
  const encounter::MultiEncounterModel small(8);
  const encounter::MultiEncounterModel large(32);
  for (const std::uint64_t encounter_index : {0ULL, 3ULL}) {
    const auto p8 = small.sample(99, encounter_index);
    const auto p32 = large.sample(99, encounter_index);
    EXPECT_EQ(p8.gs_own_mps, p32.gs_own_mps);
    EXPECT_EQ(p8.vs_own_mps, p32.vs_own_mps);
    ASSERT_EQ(p32.num_intruders(), 32U);
    for (std::size_t k = 0; k < 8; ++k) {
      EXPECT_EQ(p8.intruders[k].t_cpa_s, p32.intruders[k].t_cpa_s) << k;
      EXPECT_EQ(p8.intruders[k].r_cpa_m, p32.intruders[k].r_cpa_m) << k;
      EXPECT_EQ(p8.intruders[k].theta_cpa_rad, p32.intruders[k].theta_cpa_rad) << k;
      EXPECT_EQ(p8.intruders[k].y_cpa_m, p32.intruders[k].y_cpa_m) << k;
      EXPECT_EQ(p8.intruders[k].gs_mps, p32.intruders[k].gs_mps) << k;
      EXPECT_EQ(p8.intruders[k].course_rad, p32.intruders[k].course_rad) << k;
      EXPECT_EQ(p8.intruders[k].vs_mps, p32.intruders[k].vs_mps) << k;
    }
  }
}

TEST(CityScale, AgentOrderPermutationLeavesAggregatesInvariant) {
  // Unequipped quiet-config flight draws nothing, so permuting the agent
  // vector permutes trajectories without changing any of them — every
  // order-independent aggregate must be exactly equal.
  const scenarios::Scenario city = scenarios::city_corridors(64, 5);
  auto run_with_order = [&](bool reversed) {
    std::vector<sim::UavState> states = city.initial_states();
    if (reversed) std::reverse(states.begin(), states.end());
    std::vector<sim::AgentSetup> agents(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) agents[i].initial_state = states[i];
    sim::SimConfig config = quiet_city_config(/*adaptive=*/true);
    config.max_time_s = city.suggested_time_s();
    return sim::run_multi_encounter(config, std::move(agents), 5);
  };
  const sim::SimResult forward = run_with_order(false);
  const sim::SimResult reversed = run_with_order(true);
  EXPECT_EQ(forward.proximity.min_distance_m, reversed.proximity.min_distance_m);
  EXPECT_EQ(forward.proximity.min_horizontal_m, reversed.proximity.min_horizontal_m);
  EXPECT_EQ(forward.proximity.min_vertical_m, reversed.proximity.min_vertical_m);
  EXPECT_EQ(forward.nmac, reversed.nmac);
  EXPECT_EQ(forward.nmac_time_s, reversed.nmac_time_s);
  EXPECT_EQ(forward.pairs.size(), reversed.pairs.size());
  EXPECT_EQ(forward.stats.fine_agent_steps, reversed.stats.fine_agent_steps);
  EXPECT_EQ(forward.stats.coarse_agent_steps, reversed.stats.coarse_agent_steps);
}

TEST(CityScale, AdaptiveEngineDoesNearPairWork) {
  const scenarios::Scenario city = scenarios::city_corridors(64, 2016);
  sim::SimConfig adaptive_config = quiet_city_config(/*adaptive=*/true);
  sim::SimConfig dense_config = quiet_city_config(/*adaptive=*/false);
  const sim::SimResult adaptive =
      scenarios::run_scenario(city, adaptive_config, {}, {}, 2016);
  const sim::SimResult dense = scenarios::run_scenario(city, dense_config, {}, {}, 2016);

  const std::size_t all_pairs = 64 * 63 / 2;
  // Dense mode materializes and updates every pair at the fixed dt.
  EXPECT_EQ(dense.stats.monitored_pairs, all_pairs);
  EXPECT_EQ(dense.stats.peak_active_pairs, all_pairs);
  EXPECT_EQ(dense.stats.coarse_agent_steps, 0U);
  EXPECT_EQ(dense.pairs.size(), all_pairs);
  // The adaptive engine's pair set and stepping follow the local traffic.
  EXPECT_LT(adaptive.stats.monitored_pairs, all_pairs / 4);
  EXPECT_LT(adaptive.stats.peak_active_pairs, all_pairs / 4);
  EXPECT_GT(adaptive.stats.coarse_agent_steps, 0U);
  EXPECT_LT(adaptive.stats.fine_agent_steps, dense.stats.fine_agent_steps);
  EXPECT_LT(adaptive.stats.pair_updates, dense.stats.pair_updates / 4);
  EXPECT_EQ(adaptive.stats.decision_cycles, dense.stats.decision_cycles);
  EXPECT_EQ(adaptive.pairs.size(), adaptive.stats.monitored_pairs);
}

TEST(CityScale, RepeatedRunsAreBitIdenticalUnderFullNoise) {
  // Full default noise at K=128: every surveillance, disturbance, and
  // coordination draw live, twice — one reordered draw breaks this.
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::coarse()));
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);
  const scenarios::Scenario city = scenarios::city_corridors(128, 2016);
  sim::SimConfig config = city_config(/*adaptive=*/true);
  const sim::SimResult a = scenarios::run_scenario(city, config, equipped, equipped, 13);
  const sim::SimResult b = scenarios::run_scenario(city, config, equipped, equipped, 13);
  EXPECT_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
  EXPECT_EQ(a.proximity.time_of_min_distance_s, b.proximity.time_of_min_distance_s);
  EXPECT_EQ(a.nmac, b.nmac);
  EXPECT_EQ(a.nmac_time_s, b.nmac_time_s);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t p = 0; p < a.pairs.size(); ++p) {
    EXPECT_EQ(a.pairs[p].proximity.min_distance_m, b.pairs[p].proximity.min_distance_m) << p;
  }
  EXPECT_EQ(a.stats.fine_agent_steps, b.stats.fine_agent_steps);
  EXPECT_EQ(a.stats.coarse_agent_steps, b.stats.coarse_agent_steps);
  EXPECT_EQ(a.stats.monitored_pairs, b.stats.monitored_pairs);
  EXPECT_GT(a.wall_time_s, 0.0);
}

TEST(CityScale, CampaignThreadCountInvariantPastK8) {
  // The Monte-Carlo campaign at K=12 intruders: serial and pooled stripes
  // must agree exactly, and the new wall-clock surfacing must be populated.
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::coarse()));
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);
  const encounter::StatisticalEncounterModel model;
  core::MonteCarloConfig config;
  config.encounters = 6;
  config.intruders = 12;
  config.seed = 42;
  const core::ValidationCampaign campaign(model, config, "city", equipped, equipped);
  const core::SystemRates serial = campaign.run().rates;
  ThreadPool pool(3);
  const core::SystemRates pooled = campaign.run(&pool).rates;
  EXPECT_EQ(serial.nmacs, pooled.nmacs);
  EXPECT_EQ(serial.alerts, pooled.alerts);
  EXPECT_EQ(serial.mean_min_separation_m, pooled.mean_min_separation_m);
  EXPECT_GT(serial.sim_wall_s, 0.0);
  EXPECT_GT(serial.mean_encounter_wall_s(), 0.0);
}

}  // namespace
}  // namespace cav
