// The TableImage container (serving/table_image.h) and the table dump /
// load / mmap paths built on it: save -> load round-trips are bit
// identical for both tables, mapped views serve the same bytes zero-copy,
// corruption is caught by the payload checksum, TableIoError carries a
// machine-checkable (op, reason, path), and the deprecated legacy format
// still loads for one release.
#include "serving/table_image.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "acasx/joint_solver.h"
#include "acasx/logic_table.h"
#include "acasx/offline_solver.h"
#include "serving/table_codec.h"
#include "util/expect.h"

namespace cav::serving {
namespace {

using acasx::AcasXuConfig;
using acasx::JointConfig;
using acasx::JointLogicTable;
using acasx::LogicTable;

acasx::StateSpaceConfig tiny_space() {
  acasx::StateSpaceConfig s;
  s.h_ft = UniformAxis(-800.0, 800.0, 17);
  s.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  s.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  s.tau_max = 16;
  return s;
}

class ServingImageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pair_ = new LogicTable(acasx::solve_logic_table(AcasXuConfig::coarse()));
    JointConfig jc;
    jc.space = tiny_space();
    joint_ = new JointLogicTable(acasx::solve_joint_table(jc));
  }
  static void TearDownTestSuite() {
    delete pair_;
    delete joint_;
    pair_ = nullptr;
    joint_ = nullptr;
  }
  static std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

  static LogicTable* pair_;
  static JointLogicTable* joint_;
};

LogicTable* ServingImageTest::pair_ = nullptr;
JointLogicTable* ServingImageTest::joint_ = nullptr;

TEST_F(ServingImageTest, PairwiseRoundTripIsBitIdentical) {
  const std::string path = temp_path("serving_pair_rt.img");
  pair_->save(path);
  const LogicTable loaded = LogicTable::load(path);
  ASSERT_EQ(loaded.raw().size(), pair_->raw().size());
  EXPECT_EQ(loaded.raw(), pair_->raw());
  EXPECT_EQ(loaded.config().space.tau_max, pair_->config().space.tau_max);
  EXPECT_DOUBLE_EQ(loaded.config().costs.nmac_cost, pair_->config().costs.nmac_cost);
  EXPECT_DOUBLE_EQ(loaded.config().space.h_ft.lo(), pair_->config().space.h_ft.lo());
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, PairwiseMappedViewServesIdenticalBytes) {
  const std::string path = temp_path("serving_pair_map.img");
  pair_->save(path);
  const LogicTable mapped = LogicTable::open_mapped(path);
  EXPECT_TRUE(mapped.is_mapped());
  ASSERT_EQ(mapped.num_entries(), pair_->num_entries());
  const float* v = mapped.values();
  for (std::size_t i = 0; i < pair_->raw().size(); ++i) {
    ASSERT_EQ(v[i], pair_->raw()[i]) << "entry " << i;
  }
  // Mapped views are read-only: the owning-vector accessor must refuse.
  EXPECT_THROW(mapped.raw(), ContractViolation);
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, JointRoundTripIsBitIdentical) {
  const std::string path = temp_path("serving_joint_rt.img");
  joint_->save(path);
  const JointLogicTable loaded = JointLogicTable::load(path);
  ASSERT_EQ(loaded.raw().size(), joint_->raw().size());
  EXPECT_EQ(loaded.raw(), joint_->raw());
  EXPECT_EQ(loaded.config().secondary.num_delta_bins, joint_->config().secondary.num_delta_bins);
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, JointMappedViewServesIdenticalBytes) {
  const std::string path = temp_path("serving_joint_map.img");
  joint_->save(path);
  const JointLogicTable mapped = JointLogicTable::open_mapped(path);
  EXPECT_TRUE(mapped.is_mapped());
  ASSERT_EQ(mapped.num_entries(), joint_->num_entries());
  const float* v = mapped.values();
  for (std::size_t i = 0; i < joint_->raw().size(); i += 97) {
    ASSERT_EQ(v[i], joint_->raw()[i]) << "entry " << i;
  }
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, ChecksumCatchesPayloadCorruption) {
  const std::string path = temp_path("serving_pair_corrupt.img");
  pair_->save(path);
  {
    // Flip one byte deep in the value payload.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-64, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-64, std::ios::end);
    byte = static_cast<char>(byte ^ 0x5A);
    f.write(&byte, 1);
  }
  try {
    TableImage::open(path);
    FAIL() << "corrupted image must not open";
  } catch (const TableIoError& e) {
    EXPECT_EQ(e.reason(), "checksum mismatch");
    EXPECT_EQ(e.path(), path);
  }
  // Trusting callers can skip verification and still map the file.
  TableImage::OpenOptions trusting;
  trusting.verify_checksum = false;
  EXPECT_NO_THROW(TableImage::open(path, trusting));
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, TableIoErrorCarriesOpReasonPath) {
  const std::string missing = "/definitely/missing/table.img";
  try {
    TableImage::open(missing);
    FAIL() << "missing file must not open";
  } catch (const TableIoError& e) {
    EXPECT_EQ(e.op(), "TableImage::open");
    EXPECT_EQ(e.reason(), "cannot open");
    EXPECT_EQ(e.path(), missing);
    // And it still is a runtime_error, so pre-serving catch sites hold.
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
  EXPECT_THROW(LogicTable::load(missing), std::runtime_error);
}

TEST_F(ServingImageTest, WrongKindIsRejected) {
  const std::string path = temp_path("serving_kind_mismatch.img");
  joint_->save(path);
  try {
    LogicTable::load(path);
    FAIL() << "joint image must not load as a pairwise table";
  } catch (const TableIoError& e) {
    EXPECT_EQ(e.reason(), "wrong table kind");
  }
  EXPECT_THROW(LogicTable::open_mapped(path), TableIoError);
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, QuantizedImagesLoadViaDequantization) {
  for (const Quantization quant : {Quantization::kFloat16, Quantization::kInt8}) {
    const std::string path = temp_path("serving_pair_quant.img");
    pair_->save(path, quant);
    // open_mapped promises float bytes, so quantized images must refuse...
    EXPECT_THROW(LogicTable::open_mapped(path), TableIoError);
    // ...while load() dequantizes into an owning table of the same shape.
    const LogicTable loaded = LogicTable::load(path);
    ASSERT_EQ(loaded.raw().size(), pair_->raw().size());
    double worst = 0.0;
    double scale = 1.0;
    for (std::size_t i = 0; i < pair_->raw().size(); ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(loaded.raw()[i]) -
                                       static_cast<double>(pair_->raw()[i])));
      scale = std::max(scale, std::abs(static_cast<double>(pair_->raw()[i])));
    }
    // Coarse relative-error sanity; the policy-level impact is pinned in
    // test_serving_server.cpp.
    EXPECT_LT(worst / scale, quant == Quantization::kFloat16 ? 1e-3 : 1e-2);
    std::remove(path.c_str());
  }
}

TEST_F(ServingImageTest, LegacyFormatLoadsForOneRelease) {
  // Hand-write the deprecated "ACX1" stream (axis triples, tau_max,
  // dynamics, costs, count, payload) and check the deprecation shim reads
  // it bit for bit.
  const std::string path = temp_path("serving_pair_legacy.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t magic = 0x41435831;  // "ACX1"
    out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
    const auto& c = pair_->config();
    const auto write_axis = [&out](const UniformAxis& axis) {
      const double lo = axis.lo();
      const double hi = axis.hi();
      const std::uint64_t count = axis.count();
      out.write(reinterpret_cast<const char*>(&lo), sizeof lo);
      out.write(reinterpret_cast<const char*>(&hi), sizeof hi);
      out.write(reinterpret_cast<const char*>(&count), sizeof count);
    };
    write_axis(c.space.h_ft);
    write_axis(c.space.dh_own_fps);
    write_axis(c.space.dh_int_fps);
    const std::uint64_t tau_max = c.space.tau_max;
    out.write(reinterpret_cast<const char*>(&tau_max), sizeof tau_max);
    const double dyn[4] = {c.dynamics.dt_s, c.dynamics.accel_initial_fps2,
                           c.dynamics.accel_strength_fps2, c.dynamics.accel_noise_sigma_fps2};
    out.write(reinterpret_cast<const char*>(dyn), sizeof dyn);
    const double costs[8] = {c.costs.nmac_cost,          c.costs.nmac_h_ft,
                             c.costs.maneuver_cost,      c.costs.strengthened_maneuver_cost,
                             c.costs.level_reward,       c.costs.strengthen_cost,
                             c.costs.reversal_cost,      c.costs.termination_cost};
    out.write(reinterpret_cast<const char*>(costs), sizeof costs);
    const std::uint64_t n = pair_->raw().size();
    out.write(reinterpret_cast<const char*>(&n), sizeof n);
    out.write(reinterpret_cast<const char*>(pair_->raw().data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  const LogicTable loaded = LogicTable::load(path);
  ASSERT_EQ(loaded.raw().size(), pair_->raw().size());
  EXPECT_EQ(loaded.raw(), pair_->raw());
  EXPECT_EQ(loaded.config().space.tau_max, pair_->config().space.tau_max);
  std::remove(path.c_str());
}

TEST_F(ServingImageTest, SlabDirectoryIsTyped) {
  const std::string path = temp_path("serving_pair_slabs.img");
  pair_->save(path);
  const TableImage image = TableImage::open(path);
  EXPECT_EQ(image.kind_name(), kKindPairwise);
  EXPECT_TRUE(image.has_slab(kSlabValues));
  EXPECT_TRUE(image.has_slab(kSlabMetaF64));
  EXPECT_EQ(image.slab_dtype(kSlabValues), SlabType::kF32);
  // A typed view with the wrong element type must refuse.
  EXPECT_THROW(image.slab_as<double>(kSlabValues), TableIoError);
  EXPECT_THROW(image.slab(std::string_view("no_such_slab")), TableIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cav::serving
