// Compiled-kernel tests: CompiledMdp must be a faithful flattening of the
// virtual FiniteMdp (CSR rows are proper distributions), and the compiled /
// parallel solver paths must reproduce the legacy virtual-dispatch sweeps
// exactly on the paper's toy 2-D model.
#include "mdp/compiled_mdp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mdp/policy_iteration.h"
#include "mdp/value_iteration.h"
#include "toy2d/toy2d_mdp.h"
#include "util/expect.h"
#include "util/thread_pool.h"

namespace cav::mdp {
namespace {

toy2d::Toy2dMdp toy_model() { return toy2d::Toy2dMdp{toy2d::Config{}}; }

TEST(CompiledMdp, MirrorsModelShapeAndTerminals) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  ASSERT_EQ(compiled.num_states(), model.num_states());
  ASSERT_EQ(compiled.num_actions(), model.num_actions());
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    const auto state = static_cast<State>(s);
    EXPECT_EQ(compiled.is_terminal(state), model.is_terminal(state)) << "state " << s;
    if (model.is_terminal(state)) {
      EXPECT_DOUBLE_EQ(compiled.terminal_cost(state), model.terminal_cost(state));
    } else {
      for (std::size_t a = 0; a < model.num_actions(); ++a) {
        EXPECT_DOUBLE_EQ(compiled.cost(state, static_cast<Action>(a)),
                         model.cost(state, static_cast<Action>(a)));
      }
    }
  }
}

TEST(CompiledMdp, CsrRowsAreProperDistributions) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  const auto& offsets = compiled.row_offsets();
  const auto& prob = compiled.prob();
  const auto& next = compiled.next_state();
  ASSERT_EQ(offsets.size(), compiled.num_states() * compiled.num_actions() + 1);
  for (std::size_t s = 0; s < compiled.num_states(); ++s) {
    const auto state = static_cast<State>(s);
    for (std::size_t a = 0; a < compiled.num_actions(); ++a) {
      const std::size_t r = compiled.row(state, static_cast<Action>(a));
      if (compiled.is_terminal(state)) {
        EXPECT_EQ(offsets[r], offsets[r + 1]) << "terminal rows stay empty";
        continue;
      }
      double sum = 0.0;
      for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
        EXPECT_LT(next[k], compiled.num_states());
        EXPECT_GT(prob[k], 0.0);
        sum += prob[k];
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "row (" << s << ", " << a << ")";
    }
  }
}

TEST(CompiledMdp, BackupMatchesVirtualBackup) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  Values values(model.num_states());
  for (std::size_t s = 0; s < values.size(); ++s) {
    values[s] = std::sin(static_cast<double>(s)) * 100.0;  // arbitrary but fixed
  }
  std::vector<Transition> scratch;
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    const auto state = static_cast<State>(s);
    if (model.is_terminal(state)) continue;
    for (std::size_t a = 0; a < model.num_actions(); ++a) {
      const auto action = static_cast<Action>(a);
      // CSR preserves the expansion order, so the sums round identically.
      EXPECT_EQ(compiled.backup(state, action, values, 0.97),
                backup(model, state, action, values, 0.97, scratch))
          << "state " << s << " action " << a;
    }
  }
}

TEST(CompiledMdp, RejectsEmptyModel) {
  class EmptyMdp final : public FiniteMdp {
   public:
    std::size_t num_states() const override { return 0; }
    std::size_t num_actions() const override { return 1; }
    double cost(State, Action) const override { return 0.0; }
    void transitions(State, Action, std::vector<Transition>&) const override {}
    bool is_terminal(State) const override { return true; }
  };
  EXPECT_THROW(CompiledMdp{EmptyMdp{}}, ContractViolation);
}

TEST(CompiledMdp, RejectsUnnormalizedTransitions) {
  class BrokenMdp final : public FiniteMdp {
   public:
    std::size_t num_states() const override { return 2; }
    std::size_t num_actions() const override { return 1; }
    double cost(State, Action) const override { return 0.0; }
    void transitions(State, Action, std::vector<Transition>& out) const override {
      out.push_back({1, 0.5});  // sums to 0.5, violating the contract
    }
    bool is_terminal(State s) const override { return s == 1; }
  };
  EXPECT_THROW(CompiledMdp{BrokenMdp{}}, ContractViolation);
}

TEST(CompiledValueIteration, MatchesVirtualPathExactly) {
  const auto model = toy_model();
  ValueIterationConfig virtual_config;
  virtual_config.use_compiled = false;
  const auto reference = solve_value_iteration(model, virtual_config);
  const auto compiled = solve_value_iteration(model);  // default: compiled

  ASSERT_TRUE(reference.converged);
  ASSERT_TRUE(compiled.converged);
  EXPECT_EQ(compiled.iterations, reference.iterations);
  ASSERT_EQ(compiled.values.size(), reference.values.size());
  for (std::size_t s = 0; s < reference.values.size(); ++s) {
    EXPECT_EQ(compiled.values[s], reference.values[s]) << "state " << s;
  }
  ASSERT_EQ(compiled.q.q.size(), reference.q.q.size());
  for (std::size_t i = 0; i < reference.q.q.size(); ++i) {
    EXPECT_EQ(compiled.q.q[i], reference.q.q[i]) << "q entry " << i;
  }
  EXPECT_EQ(compiled.policy, reference.policy);
}

TEST(CompiledValueIteration, GaussSeidelMatchesVirtualGaussSeidel) {
  const auto model = toy_model();
  ValueIterationConfig config;
  config.gauss_seidel = true;
  config.use_compiled = false;
  const auto reference = solve_value_iteration(model, config);
  config.use_compiled = true;
  const auto compiled = solve_value_iteration(model, config);
  ASSERT_EQ(compiled.values.size(), reference.values.size());
  for (std::size_t s = 0; s < reference.values.size(); ++s) {
    EXPECT_EQ(compiled.values[s], reference.values[s]) << "state " << s;
  }
  EXPECT_EQ(compiled.policy, reference.policy);
}

TEST(CompiledValueIteration, ParallelMatchesSerialForAnyThreadCount) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  const auto serial = solve_value_iteration(compiled);
  for (const std::size_t threads : {1U, 2U, 3U, 8U}) {
    ThreadPool pool(threads);
    ValueIterationConfig config;
    config.pool = &pool;
    const auto parallel = solve_value_iteration(compiled, config);
    EXPECT_EQ(parallel.iterations, serial.iterations) << threads << " threads";
    ASSERT_EQ(parallel.values.size(), serial.values.size());
    for (std::size_t s = 0; s < serial.values.size(); ++s) {
      EXPECT_EQ(parallel.values[s], serial.values[s])
          << "state " << s << " with " << threads << " threads";
    }
    for (std::size_t i = 0; i < serial.q.q.size(); ++i) {
      EXPECT_EQ(parallel.q.q[i], serial.q.q[i])
          << "q entry " << i << " with " << threads << " threads";
    }
    EXPECT_EQ(parallel.policy, serial.policy) << threads << " threads";
  }
}

TEST(CompiledFiniteHorizon, MatchesVirtualPathExactly) {
  const auto model = toy_model();
  const auto reference = solve_finite_horizon(model, 9, 1.0, nullptr, /*use_compiled=*/false);
  const auto compiled = solve_finite_horizon(model, 9);
  ASSERT_EQ(reference.size(), compiled.size());
  for (std::size_t t = 0; t < reference.size(); ++t) {
    for (std::size_t s = 0; s < reference[t].size(); ++s) {
      EXPECT_EQ(compiled[t][s], reference[t][s]) << "stage " << t << " state " << s;
    }
  }
}

TEST(CompiledFiniteHorizon, MatchesPerStageAndParallel) {
  const auto model = toy_model();
  const CompiledMdp compiled(model);
  const auto serial = solve_finite_horizon(compiled, 9);
  ThreadPool pool(3);
  const auto parallel = solve_finite_horizon(compiled, 9, 1.0, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    for (std::size_t s = 0; s < serial[t].size(); ++s) {
      EXPECT_EQ(serial[t][s], parallel[t][s]) << "stage " << t << " state " << s;
    }
  }
  // The toy model is episodic with depth x_max, so the full-horizon stage
  // equals the converged value-iteration fixpoint.
  const auto vi = solve_value_iteration(compiled);
  for (std::size_t s = 0; s < vi.values.size(); ++s) {
    EXPECT_NEAR(serial.back()[s], vi.values[s], 1e-9) << "state " << s;
  }
}

TEST(CompiledPolicyIteration, MatchesVirtualAndParallelImprovement) {
  const auto model = toy_model();
  PolicyIterationConfig config;
  config.use_compiled = false;
  const auto reference = solve_policy_iteration(model, config);
  ASSERT_TRUE(reference.converged);

  const auto compiled = solve_policy_iteration(model);  // default: compiled
  EXPECT_TRUE(compiled.converged);
  EXPECT_EQ(compiled.policy, reference.policy);
  for (std::size_t s = 0; s < reference.values.size(); ++s) {
    EXPECT_EQ(compiled.values[s], reference.values[s]) << "state " << s;
  }

  ThreadPool pool(4);
  PolicyIterationConfig parallel_config;
  parallel_config.pool = &pool;
  const auto parallel = solve_policy_iteration(model, parallel_config);
  EXPECT_TRUE(parallel.converged);
  EXPECT_EQ(parallel.policy, reference.policy);
}

TEST(CompiledMdp, RefreshCostsMatchesFreshCompileBitwise) {
  // A cost-only revision of the SIII preference weights: the refreshed
  // kernel must be indistinguishable from flattening the revised model
  // from scratch — same costs, and bit-identical solver output.
  toy2d::Config revised_config;
  revised_config.collision_cost = 25000.0;
  revised_config.maneuver_cost = 40.0;
  revised_config.level_reward = 10.0;
  const toy2d::Toy2dMdp revised(revised_config);

  CompiledMdp refreshed(toy_model());
  refreshed.refresh_costs(revised);
  const CompiledMdp fresh(revised);

  for (std::size_t s = 0; s < fresh.num_states(); ++s) {
    const auto state = static_cast<State>(s);
    if (fresh.is_terminal(state)) {
      EXPECT_EQ(refreshed.terminal_cost(state), fresh.terminal_cost(state)) << "state " << s;
      continue;
    }
    for (std::size_t a = 0; a < fresh.num_actions(); ++a) {
      EXPECT_EQ(refreshed.cost(state, static_cast<Action>(a)),
                fresh.cost(state, static_cast<Action>(a)))
          << "state " << s << " action " << a;
    }
  }

  const auto from_refreshed = solve_value_iteration(refreshed);
  const auto from_fresh = solve_value_iteration(fresh);
  ASSERT_TRUE(from_refreshed.converged);
  EXPECT_EQ(from_refreshed.iterations, from_fresh.iterations);
  for (std::size_t s = 0; s < from_fresh.values.size(); ++s) {
    EXPECT_EQ(from_refreshed.values[s], from_fresh.values[s]) << "state " << s;
  }
  for (std::size_t i = 0; i < from_fresh.q.q.size(); ++i) {
    EXPECT_EQ(from_refreshed.q.q[i], from_fresh.q.q[i]) << "q entry " << i;
  }
  EXPECT_EQ(from_refreshed.policy, from_fresh.policy);
}

TEST(CompiledMdp, RefreshCostsIsUndoneByRefreshingBack) {
  const auto base = toy_model();
  CompiledMdp compiled(base);
  const auto before = solve_value_iteration(compiled);

  toy2d::Config revised_config;
  revised_config.maneuver_cost = 900.0;
  compiled.refresh_costs(toy2d::Toy2dMdp(revised_config));
  compiled.refresh_costs(base);

  const auto after = solve_value_iteration(compiled);
  for (std::size_t s = 0; s < before.values.size(); ++s) {
    EXPECT_EQ(after.values[s], before.values[s]) << "state " << s;
  }
}

TEST(CompiledMdp, RefreshCostsRejectsStructuralChanges) {
  CompiledMdp compiled(toy_model());
  // A different grid is a structural revision, not a cost revision.
  toy2d::Config bigger;
  bigger.x_max = 12;
  EXPECT_THROW(compiled.refresh_costs(toy2d::Toy2dMdp(bigger)), ContractViolation);

  // Same shape but a different terminal set must also be rejected.
  class ShiftedTerminals final : public FiniteMdp {
   public:
    explicit ShiftedTerminals(const toy2d::Toy2dMdp& base) : base_(base) {}
    std::size_t num_states() const override { return base_.num_states(); }
    std::size_t num_actions() const override { return base_.num_actions(); }
    double cost(State s, Action a) const override { return base_.cost(s, a); }
    void transitions(State s, Action a, std::vector<Transition>& out) const override {
      base_.transitions(s, a, out);
    }
    bool is_terminal(State s) const override { return !base_.is_terminal(s); }

   private:
    const toy2d::Toy2dMdp& base_;
  };
  const auto base = toy_model();
  const auto before = solve_value_iteration(compiled);
  EXPECT_THROW(compiled.refresh_costs(ShiftedTerminals(base)), ContractViolation);

  // Strong guarantee: the rejected revision left no partial writes — a
  // caller that catches the throw and keeps the model sees it unchanged.
  const auto after = solve_value_iteration(compiled);
  for (std::size_t s = 0; s < before.values.size(); ++s) {
    ASSERT_EQ(after.values[s], before.values[s]) << "state " << s;
  }
}

TEST(CompiledValueIteration, AgreesWithToy2dSolveThroughPool) {
  // toy2d::solve is the user-facing wiring; pooled and unpooled tables
  // must encode the same logic.
  const auto model = toy_model();
  const auto serial_table = toy2d::solve(model);
  ThreadPool pool(2);
  const auto parallel_table = toy2d::solve(model, &pool);
  EXPECT_EQ(serial_table.policy(), parallel_table.policy());
  for (std::size_t s = 0; s < serial_table.values().size(); ++s) {
    EXPECT_EQ(serial_table.values()[s], parallel_table.values()[s]) << "state " << s;
  }
}

}  // namespace
}  // namespace cav::mdp
