// Fault-injection layer tests: profile semantics, the scripted adversary,
// and the engine-level determinism / bit-identity contracts the degraded
// campaign (E14) rests on.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/tcas_like.h"
#include "encounter/encounter.h"
#include "encounter/multi_encounter.h"
#include "sim/simulation.h"

namespace cav::sim {
namespace {

// --- FaultProfile semantics -----------------------------------------

TEST(FaultProfile, NoneInjectsNothing) {
  const FaultProfile none = FaultProfile::none();
  EXPECT_FALSE(none.any());
  EXPECT_FALSE(none.degrades_surveillance());
  EXPECT_FALSE(none.in_comms_blackout(0.0));
}

TEST(FaultProfile, BlackoutWindowIsHalfOpen) {
  FaultProfile fault;
  fault.comms_blackouts.push_back({10.0, 20.0});
  fault.comms_blackouts.push_back({40.0, 45.0});
  EXPECT_FALSE(fault.in_comms_blackout(9.999));
  EXPECT_TRUE(fault.in_comms_blackout(10.0));
  EXPECT_TRUE(fault.in_comms_blackout(19.999));
  EXPECT_FALSE(fault.in_comms_blackout(20.0));
  EXPECT_TRUE(fault.in_comms_blackout(42.0));
  EXPECT_TRUE(fault.any());
  EXPECT_FALSE(fault.degrades_surveillance());  // comms only
}

TEST(FaultProfile, SurveillanceKnobsFlagDegradation) {
  FaultProfile burst;
  burst.adsb_dropout_burst_prob = 0.1;
  EXPECT_TRUE(burst.degrades_surveillance());

  FaultProfile bias;
  bias.adsb_velocity_bias_mps = {0.0, 0.0, 1.0};
  EXPECT_TRUE(bias.degrades_surveillance());

  FaultProfile stale;
  stale.track_staleness_horizon_s = 10.0;
  EXPECT_TRUE(stale.degrades_surveillance());

  FaultProfile silent;
  silent.coordination_silent = true;
  EXPECT_FALSE(silent.degrades_surveillance());
  EXPECT_TRUE(silent.any());
}

// --- ScriptedManeuverCas --------------------------------------------

acasx::AircraftTrack track_at(double z_m, double vs_mps = 0.0) {
  acasx::AircraftTrack t;
  t.position_m = {0.0, 0.0, z_m};
  t.velocity_mps = {30.0, 0.0, vs_mps};
  return t;
}

TEST(ScriptedManeuver, ManeuversTowardThreatOnlyInsideWindow) {
  ScriptedManeuverConfig config;
  config.start_s = 3.0;
  config.duration_s = 2.0;
  config.decision_period_s = 1.0;
  ScriptedManeuverCas cas(config);

  const auto own = track_at(900.0);
  const auto threat = track_at(1000.0);  // above: adversary should climb

  // t = 0, 1, 2: before the window — no maneuver, no announced sense.
  for (int t = 0; t < 3; ++t) {
    const CasDecision d = cas.decide(own, threat, acasx::Sense::kNone);
    EXPECT_FALSE(d.maneuver) << "t=" << t;
    EXPECT_EQ(d.sense, acasx::Sense::kNone);
  }
  // t = 3, 4: inside — climbs toward the threat above.
  for (int t = 3; t < 5; ++t) {
    const CasDecision d = cas.decide(own, threat, acasx::Sense::kNone);
    EXPECT_TRUE(d.maneuver) << "t=" << t;
    EXPECT_GT(d.target_vs_mps, 0.0);
    EXPECT_EQ(d.sense, acasx::Sense::kNone);  // never coordinates
  }
  // t = 5: past the window.
  EXPECT_FALSE(cas.decide(own, threat, acasx::Sense::kNone).maneuver);
}

TEST(ScriptedManeuver, DivesWhenThreatIsBelowAndResetsCleanly) {
  ScriptedManeuverConfig config;
  config.start_s = 0.0;
  config.duration_s = 10.0;
  ScriptedManeuverCas cas(config);
  const CasDecision d = cas.decide(track_at(1100.0), track_at(1000.0), acasx::Sense::kNone);
  ASSERT_TRUE(d.maneuver);
  EXPECT_LT(d.target_vs_mps, 0.0);

  // reset() rewinds the cycle clock: a window starting later is inactive
  // again after reset.
  ScriptedManeuverConfig late;
  late.start_s = 5.0;
  late.duration_s = 1.0;
  ScriptedManeuverCas cas2(late);
  for (int t = 0; t < 6; ++t) cas2.decide(track_at(0.0), track_at(10.0), acasx::Sense::kNone);
  cas2.reset();
  EXPECT_FALSE(cas2.decide(track_at(0.0), track_at(10.0), acasx::Sense::kNone).maneuver);
}

// --- Engine-level contracts -----------------------------------------

/// A two-intruder conflict geometry with CPAs a few seconds apart.
encounter::MultiEncounterParams pincer_params() {
  encounter::MultiEncounterParams params;
  params.gs_own_mps = 35.0;
  params.vs_own_mps = 0.0;
  encounter::IntruderGeometry a;
  a.t_cpa_s = 35.0;
  a.course_rad = 3.0;
  a.gs_mps = 38.0;
  encounter::IntruderGeometry b;
  b.t_cpa_s = 41.0;
  b.course_rad = -1.6;
  b.gs_mps = 33.0;
  params.intruders = {a, b};
  return params;
}

std::vector<AgentSetup> equipped_agents(const encounter::MultiEncounterParams& params) {
  const auto states = encounter::generate_multi_initial_states(params);
  std::vector<AgentSetup> agents(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    agents[i].initial_state = states[i];
    agents[i].cas = std::make_unique<baselines::TcasLikeCas>();
  }
  return agents;
}

/// Heavy degradation on every axis at once.
SimConfig degraded_config() {
  SimConfig config;
  config.max_time_s = 60.0;
  config.coordination.message_loss_prob = 0.3;
  config.coordination.burst_enter_prob = 0.25;
  config.coordination.burst_exit_prob = 0.3;
  config.coordination.staleness_ttl_cycles = 5;
  config.fault.comms_blackouts.push_back({20.0, 35.0});
  config.fault.adsb_dropout_burst_prob = 0.2;
  config.fault.adsb_burst_continue_prob = 0.5;
  config.fault.adsb_position_bias_m = {10.0, -5.0, 3.0};
  config.fault.track_staleness_horizon_s = 6.0;
  return config;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.nmac, b.nmac);
  EXPECT_EQ(a.nmac_time_s, b.nmac_time_s);
  EXPECT_EQ(a.proximity.min_distance_m, b.proximity.min_distance_m);
  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].ever_alerted, b.agents[i].ever_alerted) << "agent " << i;
    EXPECT_EQ(a.agents[i].alert_cycles, b.agents[i].alert_cycles) << "agent " << i;
    EXPECT_EQ(a.agents[i].reversals, b.agents[i].reversals) << "agent " << i;
    EXPECT_EQ(a.agents[i].final_advisory, b.agents[i].final_advisory) << "agent " << i;
  }
}

TEST(DegradedEngine, HeavyFaultRunIsDeterministic) {
  const auto params = pincer_params();
  const SimConfig config = degraded_config();
  const SimResult first = run_multi_encounter(config, equipped_agents(params), 31337);
  const SimResult second = run_multi_encounter(config, equipped_agents(params), 31337);
  expect_identical(first, second);
}

TEST(DegradedEngine, InfiniteTtlMatchesHugeTtlBitForBit) {
  // staleness_ttl_cycles == 0 means infinite; a TTL far beyond the run
  // length must be indistinguishable on a lossy multi-aircraft run.
  const auto params = pincer_params();
  SimConfig infinite = degraded_config();
  infinite.coordination.staleness_ttl_cycles = 0;
  SimConfig huge = degraded_config();
  huge.coordination.staleness_ttl_cycles = 1 << 20;
  const SimResult a = run_multi_encounter(infinite, equipped_agents(params), 4242);
  const SimResult b = run_multi_encounter(huge, equipped_agents(params), 4242);
  expect_identical(a, b);
}

TEST(DegradedEngine, NoneProfileMatchesDefaultConfigBitForBit) {
  // Explicitly attaching the none() profile everywhere (fleet and per
  // agent) must not perturb a single draw relative to the plain config.
  const auto params = pincer_params();
  SimConfig plain;
  plain.max_time_s = 60.0;
  plain.coordination.message_loss_prob = 0.2;
  plain.adsb.dropout_prob = 0.1;

  SimConfig with_profile = plain;
  with_profile.fault = FaultProfile::none();
  auto agents = equipped_agents(params);
  for (auto& agent : agents) agent.fault = FaultProfile::none();

  const SimResult a = run_multi_encounter(plain, equipped_agents(params), 911);
  const SimResult b = run_multi_encounter(with_profile, std::move(agents), 911);
  expect_identical(a, b);
}

TEST(DegradedEngine, DegenerateBurstConfigMatchesUniformLoss) {
  // burst_enter_prob == 0 with every other burst knob armed must stay on
  // the uniform-loss draw sequence (the degenerate-case contract, checked
  // through the full engine rather than the channel in isolation).
  const auto params = pincer_params();
  SimConfig uniform;
  uniform.max_time_s = 60.0;
  uniform.coordination.message_loss_prob = 0.4;

  SimConfig degenerate = uniform;
  degenerate.coordination.burst_enter_prob = 0.0;
  degenerate.coordination.burst_exit_prob = 0.9;
  degenerate.coordination.burst_loss_prob = 0.1;

  const SimResult a = run_multi_encounter(uniform, equipped_agents(params), 555);
  const SimResult b = run_multi_encounter(degenerate, equipped_agents(params), 555);
  expect_identical(a, b);
}

TEST(DegradedEngine, FullBlackoutEquivalentToDisabledCoordination) {
  // A blackout covering the whole run silences every sender before any
  // loss draw, exactly like a disabled channel — bit-identical results.
  const auto params = pincer_params();
  SimConfig disabled;
  disabled.max_time_s = 60.0;
  disabled.coordination.enabled = false;

  SimConfig blackout;
  blackout.max_time_s = 60.0;
  blackout.fault.comms_blackouts.push_back({0.0, 1e9});

  const SimResult a = run_multi_encounter(disabled, equipped_agents(params), 777);
  const SimResult b = run_multi_encounter(blackout, equipped_agents(params), 777);
  expect_identical(a, b);
}

TEST(DegradedEngine, PostRunBlackoutWindowChangesNothing) {
  // A blackout window entirely after max_time_s gates nothing and draws
  // nothing: bit-identical to no blackout at all.
  const auto params = pincer_params();
  SimConfig plain;
  plain.max_time_s = 60.0;
  plain.coordination.message_loss_prob = 0.25;

  SimConfig late = plain;
  late.fault.comms_blackouts.push_back({500.0, 600.0});

  const SimResult a = run_multi_encounter(plain, equipped_agents(params), 888);
  const SimResult b = run_multi_encounter(late, equipped_agents(params), 888);
  expect_identical(a, b);
}

TEST(DegradedEngine, StalenessHorizonDropsCoastedTracks) {
  // With total surveillance outage after the first receptions, an infinite
  // horizon coasts the stale tracks forever (the CAS keeps alerting on
  // them); a short horizon drops them and the own-ship goes blind.  The
  // observable difference: alert cycles vanish under the short horizon.
  auto params = pincer_params();
  SimConfig outage;
  outage.max_time_s = 60.0;
  // A few early receptions get through, then a permanent outage: each
  // received cycle starts a never-ending burst with p = 0.3 (the cap,
  // 120 cycles, outlasts the run).
  outage.fault.adsb_dropout_burst_prob = 0.3;
  outage.fault.adsb_burst_continue_prob = 1.0;

  SimConfig dropped = outage;
  dropped.fault.track_staleness_horizon_s = 3.0;

  const SimResult coasting = run_multi_encounter(outage, equipped_agents(params), 99);
  const SimResult blind = run_multi_encounter(dropped, equipped_agents(params), 99);
  // Coasted forever: the fixture CAS still sees (stale) converging traffic.
  EXPECT_TRUE(coasting.own.ever_alerted);
  // Dropped after 3 s: no track survives long enough to alert on.
  EXPECT_FALSE(blind.own.ever_alerted);
}

TEST(DegradedEngine, ScriptedAdversaryDoesNotCountAlerts) {
  const auto params = pincer_params();
  const auto states = encounter::generate_multi_initial_states(params);
  std::vector<AgentSetup> agents(states.size());
  ScriptedManeuverConfig maneuver;
  maneuver.start_s = 0.0;
  maneuver.duration_s = 60.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    agents[i].initial_state = states[i];
    if (i == 0) {
      agents[i].cas = std::make_unique<baselines::TcasLikeCas>();
    } else {
      agents[i].cas = std::make_unique<ScriptedManeuverCas>(maneuver);
      agents[i].count_alerts = false;
    }
  }
  SimConfig config;
  config.max_time_s = 60.0;
  const SimResult r = run_multi_encounter(config, std::move(agents), 606);
  for (std::size_t i = 1; i < r.agents.size(); ++i) {
    EXPECT_FALSE(r.agents[i].ever_alerted) << "agent " << i;
    EXPECT_EQ(r.agents[i].alert_cycles, 0) << "agent " << i;
  }
}

}  // namespace
}  // namespace cav::sim
