// Horizontal-logic tests: solver invariants, geometric symmetries, the
// blind-spot coverage that motivates the module, and closed-loop behaviour
// of the combined system.
#include "acasx/horizontal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/combined_cas.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

AircraftTrack track(double x, double y, double z, double vx, double vy, double vz) {
  return {{x, y, z}, {vx, vy, vz}};
}

class HorizontalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ThreadPool pool;
    table_ = new std::shared_ptr<const HorizontalTable>(std::make_shared<const HorizontalTable>(
        solve_horizontal_table(HorizontalConfig::coarse(), &pool)));
  }
  static void TearDownTestSuite() {
    delete table_;
    table_ = nullptr;
  }
  static const HorizontalConfig& config() { return (*table_)->config(); }
  static std::shared_ptr<const HorizontalTable>* table_;
};

std::shared_ptr<const HorizontalTable>* HorizontalTest::table_ = nullptr;

TEST_F(HorizontalTest, AllEntriesFinite) {
  for (const float q : (*table_)->raw()) {
    ASSERT_TRUE(std::isfinite(q));
  }
}

TEST_F(HorizontalTest, ConflictDiskIsAbsorbingCost) {
  const auto costs = (*table_)->action_costs(0.0, 0.0, 10.0, 0.0);
  for (const double c : costs) {
    EXPECT_NEAR(c, config().conflict_cost, 1.0);
  }
}

TEST_F(HorizontalTest, SafeDivergingStatePrefersStraight) {
  // Intruder behind and receding: straight collects the reward.
  const auto costs = (*table_)->action_costs(-1200.0, 0.0, -30.0, 0.0);
  EXPECT_LT(costs[0], costs[1]);
  EXPECT_LT(costs[0], costs[2]);
  // Value approaches the all-straight fixed point -reward/(1-discount).
  const double baseline = -config().straight_reward / (1.0 - config().discount);
  EXPECT_NEAR(costs[0], baseline, 150.0);
}

TEST_F(HorizontalTest, SlowOvertakeThreatIsVisible) {
  // The tau blind spot geometry: intruder 200 m behind closing slowly.
  // The relative-velocity state makes this a real, costed threat, and
  // near the conflict disk turning beats holding course.  (Far out, the
  // DP rationally defers the turn — see SlowOvertakeDefersTurnWhenFar.)
  for (const double rv : {4.0, 6.0, 12.0}) {
    const auto costs = (*table_)->action_costs(-200.0, 0.0, rv, 0.0);
    const double best = *std::min_element(costs.begin(), costs.end());
    EXPECT_GT(best, 0.0) << "rv = " << rv << ": slow overtake must not look safe";
    EXPECT_LT(std::min(costs[1], costs[2]), costs[0]) << "rv = " << rv;
  }
}

TEST_F(HorizontalTest, SlowOvertakeDefersTurnWhenFar) {
  // 800 m out at 4 m/s the conflict is minutes away: holding course and
  // turning later is cheaper — but the state must still cost more than a
  // diverging one (the threat is visible, just not urgent).
  const auto closing = (*table_)->action_costs(-800.0, 0.0, 4.0, 0.0);
  const auto diverging = (*table_)->action_costs(-800.0, 0.0, -4.0, 0.0);
  EXPECT_LT(closing[0], std::min(closing[1], closing[2]));
  const double best_closing = *std::min_element(closing.begin(), closing.end());
  const double best_diverging = *std::min_element(diverging.begin(), diverging.end());
  EXPECT_GT(best_closing, best_diverging);
}

TEST_F(HorizontalTest, MirrorSymmetry) {
  // Reflecting the geometry across the own-ship axis (dy -> -dy,
  // rvy -> -rvy) swaps the left/right advisories.
  const auto costs = (*table_)->action_costs(900.0, 300.0, -40.0, -5.0);
  const auto mirrored = (*table_)->action_costs(900.0, -300.0, -40.0, 5.0);
  EXPECT_NEAR(costs[0], mirrored[0], 1.0);
  EXPECT_NEAR(costs[static_cast<std::size_t>(TurnAdvisory::kTurnLeft)],
              mirrored[static_cast<std::size_t>(TurnAdvisory::kTurnRight)], 1.0);
  EXPECT_NEAR(costs[static_cast<std::size_t>(TurnAdvisory::kTurnRight)],
              mirrored[static_cast<std::size_t>(TurnAdvisory::kTurnLeft)], 1.0);
}

TEST_F(HorizontalTest, CostDecreasesWithMissDistance) {
  // Same closing velocity, growing lateral offset: the best cost falls.
  double previous = std::numeric_limits<double>::infinity();
  for (const double dy : {0.0, 400.0, 800.0, 1400.0}) {
    const auto costs = (*table_)->action_costs(1000.0, dy, -40.0, 0.0);
    const double best = *std::min_element(costs.begin(), costs.end());
    EXPECT_LE(best, previous + 1.0) << "dy = " << dy;
    previous = best;
  }
}

/// Very small space for solver-plumbing tests (serial solves stay fast).
HorizontalConfig tiny_config() {
  HorizontalConfig c;
  c.x_m = UniformAxis(-1200.0, 1200.0, 9);
  c.y_m = UniformAxis(-1200.0, 1200.0, 9);
  c.rvx_mps = UniformAxis(-60.0, 60.0, 7);
  c.rvy_mps = UniformAxis(-60.0, 60.0, 7);
  c.conflict_radius_m = 300.0;
  c.tolerance = 2.0;
  c.max_iterations = 250;
  return c;
}

TEST_F(HorizontalTest, SolverStatsReported) {
  HorizontalSolveStats stats;
  const HorizontalTable t = solve_horizontal_table(tiny_config(), nullptr, &stats);
  EXPECT_GT(stats.states, 0U);
  EXPECT_GT(stats.iterations, 5U);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_LE(stats.residual, tiny_config().tolerance + 1e-9);
}

TEST_F(HorizontalTest, ParallelMatchesSerial) {
  const HorizontalConfig config = tiny_config();
  const HorizontalTable serial = solve_horizontal_table(config);
  ThreadPool pool(4);
  const HorizontalTable parallel = solve_horizontal_table(config, &pool);
  ASSERT_EQ(serial.raw().size(), parallel.raw().size());
  for (std::size_t i = 0; i < serial.raw().size(); ++i) {
    ASSERT_EQ(serial.raw()[i], parallel.raw()[i]) << "entry " << i;
  }
}

TEST_F(HorizontalTest, OnlineFarTrafficStraight) {
  HorizontalLogic logic(*table_);
  EXPECT_EQ(logic.decide(track(0, 0, 1000, 35, 0, 0), track(9000, 0, 1000, -35, 0, 0)),
            TurnAdvisory::kStraight);
}

TEST_F(HorizontalTest, OnlineSlowOvertakeTurns) {
  HorizontalLogic logic(*table_);
  // Own at 25 m/s, intruder 200 m behind at 31 m/s on the same course:
  // inside the turn-now region of the solved policy.
  const auto a = logic.decide(track(0, 0, 1000, 25, 0, 0), track(-200, 0, 1000, 31, 0, 0));
  EXPECT_NE(a, TurnAdvisory::kStraight);
}

TEST_F(HorizontalTest, OnlineBodyFrameIsHeadingRelative) {
  // The same geometry rotated by 90 degrees must give the same advisory.
  HorizontalLogic logic_east(*table_);
  const auto east = logic_east.decide(track(0, 0, 1000, 25, 0, 0), track(-300, 40, 1000, 31, 0, 0));
  HorizontalLogic logic_north(*table_);
  const auto north =
      logic_north.decide(track(0, 0, 1000, 0, 25, 0), track(-40, -300, 1000, 0, 31, 0));
  EXPECT_EQ(east, north);
}

TEST_F(HorizontalTest, OnlineZeroSpeedIsStraight) {
  HorizontalLogic logic(*table_);
  EXPECT_EQ(logic.decide(track(0, 0, 1000, 0, 0, 0), track(-300, 0, 1000, 31, 0, 0)),
            TurnAdvisory::kStraight);
}

TEST_F(HorizontalTest, NullTableRejected) {
  EXPECT_THROW(HorizontalLogic(nullptr), ContractViolation);
}

TEST_F(HorizontalTest, AdvisoryNamesAndRates) {
  EXPECT_STREQ(turn_advisory_name(TurnAdvisory::kStraight), "STRAIGHT");
  EXPECT_GT(turn_rate_of(TurnAdvisory::kTurnLeft, 0.1), 0.0);
  EXPECT_LT(turn_rate_of(TurnAdvisory::kTurnRight, 0.1), 0.0);
  EXPECT_EQ(turn_rate_of(TurnAdvisory::kStraight, 0.1), 0.0);
}

class CombinedClosedLoopTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ThreadPool pool;
    vertical_ = new std::shared_ptr<const LogicTable>(std::make_shared<const LogicTable>(
        solve_logic_table(AcasXuConfig::coarse(), &pool)));
    horizontal_ = new std::shared_ptr<const HorizontalTable>(
        std::make_shared<const HorizontalTable>(
            solve_horizontal_table(HorizontalConfig::coarse(), &pool)));
  }
  static void TearDownTestSuite() {
    delete vertical_;
    delete horizontal_;
    vertical_ = nullptr;
    horizontal_ = nullptr;
  }
  static std::shared_ptr<const LogicTable>* vertical_;
  static std::shared_ptr<const HorizontalTable>* horizontal_;
};

std::shared_ptr<const LogicTable>* CombinedClosedLoopTest::vertical_ = nullptr;
std::shared_ptr<const HorizontalTable>* CombinedClosedLoopTest::horizontal_ = nullptr;

TEST_F(CombinedClosedLoopTest, RevisionClosesTheTailBlindSpot) {
  core::FitnessConfig config;
  config.runs_per_encounter = 60;
  const auto vertical_only = sim::AcasXuCas::factory(*vertical_);
  const auto combined = sim::CombinedCas::factory(*vertical_, *horizontal_);

  const core::EncounterEvaluator before(config, vertical_only, vertical_only);
  const core::EncounterEvaluator after(config, combined, combined);

  const auto tail_before = before.evaluate(encounter::tail_approach(), 1);
  const auto tail_after = after.evaluate(encounter::tail_approach(), 1);
  EXPECT_GT(tail_before.nmac_count, 50U) << "the blind spot must exist pre-revision";
  EXPECT_LT(tail_after.nmac_count, tail_before.nmac_count / 4)
      << "the revision must cut tail NMACs by at least 4x";
}

TEST_F(CombinedClosedLoopTest, RevisionPreservesHeadOnResolution) {
  core::FitnessConfig config;
  config.runs_per_encounter = 60;
  const auto combined = sim::CombinedCas::factory(*vertical_, *horizontal_);
  const core::EncounterEvaluator evaluator(config, combined, combined);
  const auto head = evaluator.evaluate(encounter::head_on(), 2);
  EXPECT_LE(head.nmac_count, 3U);
}

TEST_F(CombinedClosedLoopTest, CombinedDecisionChannelsIndependent) {
  sim::CombinedCas cas(*vertical_, *horizontal_);
  // Slow overtake: expect a turn without necessarily a vertical advisory.
  const auto d = cas.decide(track(0, 0, 1000, 25, 0, 0), track(-200, 0, 1000, 31, 0, 0),
                            Sense::kNone);
  EXPECT_TRUE(d.turn);
  EXPECT_NE(d.turn_rate_rad_s, 0.0);
  // Label reflects the horizontal channel.
  EXPECT_TRUE(d.label.find("+L") != std::string::npos ||
              d.label.find("+R") != std::string::npos);
}

TEST_F(CombinedClosedLoopTest, ResetClearsBothChannels) {
  sim::CombinedCas cas(*vertical_, *horizontal_);
  cas.decide(track(0, 0, 1000, 25, 0, 0), track(-300, 0, 1000, 31, 0, 0), Sense::kNone);
  cas.reset();
  EXPECT_EQ(cas.vertical().current_advisory(), Advisory::kCoc);
  EXPECT_EQ(cas.horizontal().current_advisory(), TurnAdvisory::kStraight);
}

}  // namespace
}  // namespace cav::acasx
