#include "util/units.h"

#include <gtest/gtest.h>

namespace cav::units {
namespace {

TEST(Units, FeetMetersRoundTrip) {
  EXPECT_NEAR(ft_to_m(1.0), 0.3048, 1e-12);
  EXPECT_NEAR(m_to_ft(0.3048), 1.0, 1e-12);
  for (double x = -10000.0; x <= 10000.0; x += 777.7) {
    EXPECT_NEAR(m_to_ft(ft_to_m(x)), x, 1e-9);
  }
}

TEST(Units, KnownAviationValues) {
  // NMAC thresholds: 500 ft / 100 ft.
  EXPECT_NEAR(ft_to_m(500.0), 152.4, 1e-9);
  EXPECT_NEAR(ft_to_m(100.0), 30.48, 1e-9);
  // A 1500 ft/min climb is 25 ft/s = 7.62 m/s.
  EXPECT_NEAR(fpm_to_mps(1500.0), 7.62, 1e-9);
  EXPECT_NEAR(mps_to_fpm(7.62), 1500.0, 1e-9);
}

TEST(Units, KnotsRoundTrip) {
  EXPECT_NEAR(kt_to_mps(1.0), 0.5144444444, 1e-9);
  for (double x = 0.0; x <= 600.0; x += 73.0) {
    EXPECT_NEAR(mps_to_kt(kt_to_mps(x)), x, 1e-9);
  }
}

TEST(Units, Gravity) {
  EXPECT_NEAR(kGravity, 9.80665, 1e-12);
  EXPECT_NEAR(kGravityFtS2, 32.17404855643044, 1e-9);
  // The classic pilot-response accelerations.
  EXPECT_NEAR(kGravityFtS2 / 4.0, 8.04, 0.01);
  EXPECT_NEAR(kGravityFtS2 / 3.0, 10.72, 0.01);
}

TEST(Units, ConversionsAreConstexpr) {
  static_assert(ft_to_m(0.0) == 0.0);
  static_assert(m_to_ft(0.0) == 0.0);
  static_assert(fpm_to_mps(0.0) == 0.0);
  SUCCEED();
}

}  // namespace
}  // namespace cav::units
