#include "sim/coordination.h"

#include <gtest/gtest.h>

namespace cav::sim {
namespace {

TEST(Coordination, ForbidsOtherAircraftsSense) {
  CoordinationChannel channel;
  RngStream rng(1);
  channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
  EXPECT_EQ(channel.forbidden_for(0), acasx::Sense::kNone);  // own message doesn't bind self
}

TEST(Coordination, LatestAnnouncementWins) {
  CoordinationChannel channel;
  RngStream rng(2);
  channel.post(0, acasx::Sense::kClimb, rng);
  channel.post(0, acasx::Sense::kDescend, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kDescend);
}

TEST(Coordination, BothDirectionsIndependent) {
  CoordinationChannel channel;
  RngStream rng(3);
  channel.post(0, acasx::Sense::kClimb, rng);
  channel.post(1, acasx::Sense::kDescend, rng);
  EXPECT_EQ(channel.forbidden_for(0), acasx::Sense::kDescend);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
}

TEST(Coordination, DisabledChannelIsSilent) {
  CoordinationConfig config;
  config.enabled = false;
  CoordinationChannel channel(config);
  RngStream rng(4);
  channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, ResetClearsAnnouncements) {
  CoordinationChannel channel;
  RngStream rng(5);
  channel.post(0, acasx::Sense::kClimb, rng);
  channel.post(1, acasx::Sense::kDescend, rng);
  channel.reset();
  EXPECT_EQ(channel.forbidden_for(0), acasx::Sense::kNone);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, TotalLossNeverDelivers) {
  CoordinationConfig config;
  config.message_loss_prob = 1.0;
  CoordinationChannel channel(config);
  RngStream rng(6);
  for (int i = 0; i < 32; ++i) channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, PartialLossEventuallyDelivers) {
  CoordinationConfig config;
  config.message_loss_prob = 0.5;
  CoordinationChannel channel(config);
  RngStream rng(7);
  bool delivered = false;
  for (int i = 0; i < 64 && !delivered; ++i) {
    channel.post(0, acasx::Sense::kDescend, rng);
    delivered = channel.forbidden_for(1) == acasx::Sense::kDescend;
  }
  EXPECT_TRUE(delivered);
}

TEST(Coordination, LostUpdateKeepsPreviousAnnouncement) {
  // Deliver a climb reliably, then lose every subsequent update: receivers
  // keep acting on the last thing they heard (stale-coordination hazard).
  CoordinationConfig lossless;
  CoordinationChannel channel(lossless);
  RngStream rng(8);
  channel.post(0, acasx::Sense::kClimb, rng);
  ASSERT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
  // The channel has no config swap; emulate staleness by simply not
  // posting again — the announcement persists.
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
}

}  // namespace
}  // namespace cav::sim
