#include "sim/coordination.h"

#include <gtest/gtest.h>

namespace cav::sim {
namespace {

TEST(Coordination, ForbidsOtherAircraftsSense) {
  CoordinationChannel channel;
  RngStream rng(1);
  channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
  EXPECT_EQ(channel.forbidden_for(0), acasx::Sense::kNone);  // own message doesn't bind self
}

TEST(Coordination, LatestAnnouncementWins) {
  CoordinationChannel channel;
  RngStream rng(2);
  channel.post(0, acasx::Sense::kClimb, rng);
  channel.post(0, acasx::Sense::kDescend, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kDescend);
}

TEST(Coordination, BothDirectionsIndependent) {
  CoordinationChannel channel;
  RngStream rng(3);
  channel.post(0, acasx::Sense::kClimb, rng);
  channel.post(1, acasx::Sense::kDescend, rng);
  EXPECT_EQ(channel.forbidden_for(0), acasx::Sense::kDescend);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
}

TEST(Coordination, DisabledChannelIsSilent) {
  CoordinationConfig config;
  config.enabled = false;
  CoordinationChannel channel(config);
  RngStream rng(4);
  channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, ResetClearsAnnouncements) {
  CoordinationChannel channel;
  RngStream rng(5);
  channel.post(0, acasx::Sense::kClimb, rng);
  channel.post(1, acasx::Sense::kDescend, rng);
  channel.reset();
  EXPECT_EQ(channel.forbidden_for(0), acasx::Sense::kNone);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, TotalLossNeverDelivers) {
  CoordinationConfig config;
  config.message_loss_prob = 1.0;
  CoordinationChannel channel(config);
  RngStream rng(6);
  for (int i = 0; i < 32; ++i) channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, PartialLossEventuallyDelivers) {
  CoordinationConfig config;
  config.message_loss_prob = 0.5;
  CoordinationChannel channel(config);
  RngStream rng(7);
  bool delivered = false;
  for (int i = 0; i < 64 && !delivered; ++i) {
    channel.post(0, acasx::Sense::kDescend, rng);
    delivered = channel.forbidden_for(1) == acasx::Sense::kDescend;
  }
  EXPECT_TRUE(delivered);
}

TEST(Coordination, UniformLossIsBitIdenticalToPreBurstChannel) {
  // The Gilbert–Elliott channel with burst_enter_prob == 0 must consume
  // exactly the draws the pre-burst uniform channel consumed and deliver
  // exactly the same messages.  Reference: the original loop, reimplemented
  // here, fed a stream with the identical seed.
  CoordinationConfig config;
  config.message_loss_prob = 0.37;
  CoordinationChannel channel(config, /*num_agents=*/4);
  RngStream rng(42);

  constexpr std::size_t kAgents = 4;
  std::vector<acasx::Sense> reference(kAgents * kAgents, acasx::Sense::kNone);
  RngStream ref_rng(42);

  const acasx::Sense senses[] = {acasx::Sense::kClimb, acasx::Sense::kDescend,
                                 acasx::Sense::kNone};
  for (int round = 0; round < 200; ++round) {
    const int sender = round % kAgents;
    const acasx::Sense sense = senses[round % 3];
    channel.post(sender, sense, rng);
    for (std::size_t receiver = 0; receiver < kAgents; ++receiver) {
      if (receiver == static_cast<std::size_t>(sender)) continue;
      if (config.message_loss_prob > 0.0 && ref_rng.chance(config.message_loss_prob)) continue;
      reference[receiver * kAgents + static_cast<std::size_t>(sender)] = sense;
    }
  }
  for (std::size_t receiver = 0; receiver < kAgents; ++receiver) {
    for (std::size_t sender = 0; sender < kAgents; ++sender) {
      if (receiver == sender) continue;
      EXPECT_EQ(channel.forbidden_for(static_cast<int>(receiver), static_cast<int>(sender)),
                reference[receiver * kAgents + sender])
          << "link " << receiver << "<-" << sender;
    }
  }
  // And the streams must be in lockstep: same next draw.
  EXPECT_EQ(rng.next_u64(), ref_rng.next_u64());
}

TEST(Coordination, BurstStateBlocksDeliveryUntilExit) {
  // Force the link into the BAD state (burst_enter_prob = 1) with total
  // burst loss and no exit: nothing is ever delivered.
  CoordinationConfig config;
  config.burst_enter_prob = 1.0;
  config.burst_exit_prob = 0.0;
  config.burst_loss_prob = 1.0;
  CoordinationChannel channel(config);
  RngStream rng(9);
  for (int i = 0; i < 32; ++i) channel.post(0, acasx::Sense::kClimb, rng);
  EXPECT_TRUE(channel.link_in_burst(1, 0));
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, BurstExitsAndRecovers) {
  // Certain entry but certain exit on the next attempt: the link oscillates
  // and deliveries get through on the GOOD visits (message_loss 0).
  CoordinationConfig config;
  config.burst_enter_prob = 1.0;
  config.burst_exit_prob = 1.0;
  config.burst_loss_prob = 1.0;
  CoordinationChannel channel(config);
  RngStream rng(10);
  channel.post(0, acasx::Sense::kClimb, rng);   // GOOD -> BAD, lost
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
  channel.post(0, acasx::Sense::kDescend, rng); // BAD -> GOOD, delivered
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kDescend);
  EXPECT_FALSE(channel.link_in_burst(1, 0));
}

TEST(Coordination, BurstLossBelowOneLeaksDeliveries) {
  // A BAD state with burst_loss_prob < 1 is lossy, not silent.
  CoordinationConfig config;
  config.burst_enter_prob = 1.0;
  config.burst_exit_prob = 0.0;
  config.burst_loss_prob = 0.5;
  CoordinationChannel channel(config);
  RngStream rng(11);
  bool delivered = false;
  for (int i = 0; i < 64 && !delivered; ++i) {
    channel.post(0, acasx::Sense::kClimb, rng);
    delivered = channel.forbidden_for(1) == acasx::Sense::kClimb;
  }
  EXPECT_TRUE(delivered);
}

TEST(Coordination, StalenessTtlDecaysConstraintToNone) {
  CoordinationConfig config;
  config.staleness_ttl_cycles = 3;
  CoordinationChannel channel(config);
  RngStream rng(12);
  channel.post(0, acasx::Sense::kClimb, rng);
  for (int cycle = 0; cycle < 3; ++cycle) {
    channel.tick();
    EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb) << "cycle " << cycle;
  }
  channel.tick();  // age 4 > ttl 3: decayed
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, DeliveryResetsStalenessClock) {
  CoordinationConfig config;
  config.staleness_ttl_cycles = 2;
  CoordinationChannel channel(config);
  RngStream rng(13);
  channel.post(0, acasx::Sense::kDescend, rng);
  channel.tick();
  channel.tick();
  channel.post(0, acasx::Sense::kDescend, rng);  // refreshes the link
  channel.tick();
  channel.tick();
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kDescend);
  channel.tick();
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kNone);
}

TEST(Coordination, InfiniteTtlNeverDecays) {
  // ttl == 0 is the pre-fault behavior: a delivered sense persists through
  // arbitrarily many silent cycles.
  CoordinationChannel channel;
  RngStream rng(14);
  channel.post(0, acasx::Sense::kClimb, rng);
  for (int cycle = 0; cycle < 1000; ++cycle) channel.tick();
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
}

TEST(Coordination, DeafReceiverGetsNothingButLinkStateEvolves) {
  CoordinationConfig config;
  CoordinationChannel channel(config, /*num_agents=*/3);
  RngStream rng(15);
  std::vector<bool> deaf = {false, true, false};
  channel.post(0, acasx::Sense::kClimb, rng, &deaf);
  EXPECT_EQ(channel.forbidden_for(1, 0), acasx::Sense::kNone);  // blacked out
  EXPECT_EQ(channel.forbidden_for(2, 0), acasx::Sense::kClimb);
}

TEST(Coordination, LostUpdateKeepsPreviousAnnouncement) {
  // Deliver a climb reliably, then lose every subsequent update: receivers
  // keep acting on the last thing they heard (stale-coordination hazard).
  CoordinationConfig lossless;
  CoordinationChannel channel(lossless);
  RngStream rng(8);
  channel.post(0, acasx::Sense::kClimb, rng);
  ASSERT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
  // The channel has no config swap; emulate staleness by simply not
  // posting again — the announcement persists.
  EXPECT_EQ(channel.forbidden_for(1), acasx::Sense::kClimb);
}

}  // namespace
}  // namespace cav::sim
