#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace cav {
namespace {

TEST(Rng, SameSeedSameSequence) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedDifferentSequence) {
  RngStream a(42);
  RngStream b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeriveIsDeterministic) {
  RngStream a = RngStream::derive(7, "purpose", 1, 2);
  RngStream b = RngStream::derive(7, "purpose", 1, 2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveSeparatesPurposes) {
  RngStream a = RngStream::derive(7, "adsb", 0);
  RngStream b = RngStream::derive(7, "disturbance", 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveSeparatesIndices) {
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 64; ++i) {
    firsts.insert(RngStream::derive(7, "x", i).next_u64());
  }
  EXPECT_EQ(firsts.size(), 64U);  // no collisions across 64 derived streams
}

TEST(Rng, UniformWithinBounds) {
  RngStream rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  RngStream rng(2);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, GaussianMoments) {
  RngStream rng(3);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  RngStream rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  RngStream rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, DiscreteFollowsWeights) {
  RngStream rng(6);
  const std::array<double, 3> weights{0.5, 0.15, 0.35};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.discrete(weights))];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.15, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.35, 0.02);
}

TEST(Rng, Mix64AvalanchesSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = mix64(0x1234'5678'9abc'def0ULL);
  const std::uint64_t b = mix64(0x1234'5678'9abc'def1ULL);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(Rng, HashStringDistinguishes) {
  EXPECT_NE(hash_string("adsb"), hash_string("adsc"));
  EXPECT_NE(hash_string(""), hash_string(" "));
  EXPECT_EQ(hash_string("same"), hash_string("same"));
}

}  // namespace
}  // namespace cav
