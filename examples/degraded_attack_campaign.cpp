// The E14 attack campaign as a library user would run it: GA search over
// (encounter geometry x degraded-mode conditions) against the joint-threat
// policy, with the fault knobs — link loss, burst rate, blackout window,
// ADS-B dropout — bred alongside the geometry.  The benign corner (all
// fault genes zero) is in the space, so every degradation in a found
// scenario is one the GA chose because it paid off in fitness.
//
// The two frozen fixtures in scenarios:: (ga-blackout-pincer,
// ga-burst-stale-overtake) came out of runs of this program; rerun it to
// hunt for new ones.
//
// Usage: degraded_attack_campaign [population] [generations] [runs_per_encounter] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "core/scenario_search.h"
#include "sim/acasx_cas.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace cav;

  ThreadPool pool;
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::coarse(), &pool));
  const auto joint = std::make_shared<const acasx::JointLogicTable>(
      acasx::solve_joint_table(acasx::JointConfig::coarse(), &pool));
  const sim::CasFactory acas = sim::AcasXuCas::factory(table, {}, {}, {}, joint);

  core::MultiScenarioSearchConfig config;
  config.ga.population_size = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 40;
  config.ga.generations = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 5;
  config.fitness.runs_per_encounter =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 20;
  config.ga.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;
  config.intruders = 2;
  config.keep_top = 8;
  // Attack the strongest arbitration: the joint-threat table.
  config.fitness.sim.threat_policy = sim::ThreatPolicy::kJointTable;

  const core::DegradedGeneRanges fault_ranges;
  std::printf("degraded attack: population %zu, %zu generations, %zu runs/encounter, "
              "seed %llu, target kJointTable\n\n",
              config.ga.population_size, config.ga.generations,
              config.fitness.runs_per_encounter,
              static_cast<unsigned long long>(config.ga.seed));

  const auto result = core::search_degraded_multi_scenarios(
      config, fault_ranges, acas, acas, &pool, [](const ga::GenerationStats& s) {
        std::printf("generation %zu: min %7.1f  mean %7.1f  max %7.1f\n", s.generation,
                    s.min_fitness, s.mean_fitness, s.max_fitness);
      });

  std::printf("\nsearch took %.1f s; %zu evaluations\n", result.wall_seconds,
              result.ga.total_evaluations);
  std::printf("\ntop degraded scenarios (geometry genes | fault genes):\n");
  for (const auto& found : result.top) {
    std::printf("  fitness %7.1f  NMAC %zu/%zu  loss %.2f burst %.2f blackout [%.1fs +%.1fs] "
                "dropout %.2f\n",
                found.fitness, found.detail.own_nmac_count, found.detail.runs,
                found.faults.message_loss_prob, found.faults.burst_enter_prob,
                found.faults.blackout_start_s, found.faults.blackout_duration_s,
                found.faults.adsb_dropout_burst_prob);
    std::printf("    genes:");
    for (const double g : found.params.to_vector()) std::printf(" %.3f", g);
    std::printf("\n");
  }
  return 0;
}
