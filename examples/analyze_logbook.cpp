// Offline analysis of a search logbook (the paper's §VIII data-mining
// extension): load the CSV a previous search wrote, histogram the
// geometries per generation, and mine the high-fitness *areas* of the
// encounter space via clustering.
//
// Usage: analyze_logbook [search_logbook.csv] [fitness_threshold] [clusters]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/logbook.h"

int main(int argc, char** argv) {
  using namespace cav;

  const std::string path = argc > 1 ? argv[1] : "search_logbook.csv";
  const double threshold = argc > 2 ? std::atof(argv[2]) : 5000.0;
  const auto clusters = argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 2;

  core::Logbook logbook;
  try {
    logbook = core::Logbook::load_csv(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "could not load '%s' (%s)\nrun examples/search_challenging first, or pass a "
                 "logbook path.\n",
                 path.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %zu evaluations from %s\n\n", logbook.size(), path.c_str());

  // Generation-by-generation geometry mix.
  std::size_t max_generation = 0;
  for (const auto& e : logbook.entries()) max_generation = std::max(max_generation, e.generation);

  std::printf("geometry mix (all evaluations | fitness >= %.0f):\n", threshold);
  for (std::size_t gen = 0; gen <= max_generation; ++gen) {
    const auto all = core::class_histogram(logbook, static_cast<int>(gen));
    std::map<core::EncounterClass, std::size_t> hot;
    for (const auto& e : logbook.entries()) {
      if (e.generation == gen && e.fitness >= threshold) ++hot[core::classify(e.params)];
    }
    std::printf("  generation %zu:\n", gen);
    for (const auto& [cls, count] : all) {
      std::printf("    %-14s %4zu | %4zu challenging\n", core::encounter_class_name(cls), count,
                  hot.count(cls) ? hot.at(cls) : 0);
    }
  }

  // Region mining.
  const encounter::ParamRanges ranges;  // display only: normalization basis
  const auto regions = core::find_regions(logbook, threshold, clusters, ranges);
  if (regions.empty()) {
    std::printf("\nno region has fitness >= %.0f with %zu clusters\n", threshold, clusters);
    return 0;
  }
  std::printf("\nhigh-fitness regions (threshold %.0f, %zu clusters requested):\n", threshold,
              clusters);
  for (const auto& region : regions) {
    std::printf("\n%s\n", core::describe_region(region).c_str());
  }
  std::printf("\nthese parameter boxes are the 'areas of the search space that show\n"
              "certain properties' the paper's SVIII proposes extending the point\n"
              "search toward.\n");
  return 0;
}
