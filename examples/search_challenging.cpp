// The paper's §VII application as a library user would run it: search the
// encounter space with the GA for situations where ACAS XU behaves poorly,
// then analyze the findings (geometry classification + the §VIII
// clustering extension).
//
// Usage: search_challenging [population] [generations] [runs_per_encounter]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/analysis.h"
#include "core/scenario_search.h"
#include "sim/acasx_cas.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace cav;

  ThreadPool pool;
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::standard(), &pool));
  const sim::CasFactory acas = sim::AcasXuCas::factory(table);

  core::ScenarioSearchConfig config;
  config.ga.population_size = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 50;
  config.ga.generations = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 5;
  config.fitness.runs_per_encounter =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 30;
  config.keep_top = 8;

  std::printf("searching: population %zu, %zu generations, %zu runs per encounter\n",
              config.ga.population_size, config.ga.generations,
              config.fitness.runs_per_encounter);
  std::printf("fitness = mean over runs of 10000/(1 + d_k)  (paper SVII)\n\n");

  const auto result = core::search_challenging_scenarios(
      config, acas, acas, &pool, [](const ga::GenerationStats& s) {
        std::printf("generation %zu: min %7.1f  mean %7.1f  max %7.1f\n", s.generation,
                    s.min_fitness, s.mean_fitness, s.max_fitness);
      });

  std::printf("\nsearch took %.1f s; %zu evaluations total\n", result.wall_seconds,
              result.ga.total_evaluations);

  std::printf("\ntop challenging encounters:\n");
  std::vector<encounter::EncounterParams> found_params;
  for (const auto& found : result.top) {
    std::printf("  fitness %7.1f  NMAC %zu/%zu  %s\n", found.fitness, found.detail.nmac_count,
                found.detail.runs, core::describe(found.params).c_str());
    found_params.push_back(found.params);
  }

  // SVIII extension: "find areas of the search space ... clustering could
  // potentially be used to analyze the logged data to find such areas."
  if (found_params.size() >= 3) {
    const auto clusters = core::kmeans(found_params, config.ranges, 2, /*seed=*/1);
    std::printf("\nk-means over the findings (2 clusters, normalized parameters):\n");
    for (std::size_t c = 0; c < clusters.cluster_sizes.size(); ++c) {
      std::printf("  cluster %zu: %zu scenarios, centroid t_cpa=%.0fs closure-space center\n",
                  c, clusters.cluster_sizes[c],
                  config.ranges.lo[2] +
                      clusters.centroids[c][2] * (config.ranges.hi[2] - config.ranges.lo[2]));
    }
    std::printf("  (inertia %.3f after %zu iterations)\n", clusters.inertia, clusters.iterations);
  }

  // Persist every evaluation for offline data mining (see the
  // analyze_logbook example, which consumes this file).
  const std::string logbook_path = "search_logbook.csv";
  result.logbook.save_csv(logbook_path);
  std::printf("\nlogbook with all %zu evaluations written to %s\n", result.logbook.size(),
              logbook_path.c_str());

  std::printf("\ninterpretation: high-fitness encounters are where the system under\n"
              "test has difficulty avoiding collisions; hand them to the model\n"
              "designers as the starting point for MDP-model improvement (Fig. 1's\n"
              "manual revision loop).\n");
  return 0;
}
