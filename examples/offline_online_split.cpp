// The production workflow mirrored by real ACAS X deployments: the logic
// table is generated OFFLINE (Fig. 1's optimization box), shipped as a
// binary artifact, and loaded by the ONLINE system at startup.  This
// example solves, saves, reloads, verifies, and flies with the reloaded
// table.
//
// Usage: offline_online_split [table.bin]
#include <chrono>
#include <cstdio>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace cav;
  const std::string path = argc > 1 ? argv[1] : "acasx_table.bin";

  // --- Offline: solve and persist. ---
  ThreadPool pool;
  acasx::SolveStats stats;
  const acasx::LogicTable solved =
      acasx::solve_logic_table(acasx::AcasXuConfig::standard(), &pool, &stats);
  solved.save(path);
  std::printf("offline: solved %zu states x %zu tau layers in %.2f s; saved %zu Q entries (%.1f MB) to %s\n",
              stats.states_per_layer, stats.layers, stats.wall_seconds, solved.num_entries(),
              static_cast<double>(solved.num_entries() * sizeof(float)) / 1e6, path.c_str());

  // --- Online: load and verify the artifact, then fly. ---
  const auto t0 = std::chrono::steady_clock::now();
  auto loaded = std::make_shared<const acasx::LogicTable>(acasx::LogicTable::load(path));
  const double load_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("online: loaded in %.3f s; config round-trip: tau_max=%zu, nmac_cost=%.0f\n",
              load_s, loaded->config().space.tau_max, loaded->config().costs.nmac_cost);

  // Spot-verify the payload against the in-memory original.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < solved.raw().size(); i += 10007) {
    if (solved.raw()[i] != loaded->raw()[i]) {
      std::fprintf(stderr, "payload mismatch at entry %zu\n", i);
      return 1;
    }
    ++checked;
  }
  std::printf("online: %zu spot-checked entries identical\n", checked);

  core::FitnessConfig config;
  config.runs_per_encounter = 100;
  const auto acas = sim::AcasXuCas::factory(loaded);
  const core::EncounterEvaluator evaluator(config, acas, acas);
  const auto eval = evaluator.evaluate(encounter::head_on(), 1);
  std::printf("online: head-on with the loaded table: NMAC %zu/%zu, mean miss %.1f m\n",
              eval.nmac_count, eval.runs, eval.mean_miss_m);
  return 0;
}
