// Inspect the generated logic tables the way the paper's §III inspects the
// toy policy: render which advisory the optimized ACAS XU logic selects
// across slices of the state space, plus the toy model's lookup table.
//
// Usage: policy_inspector
#include <cstdio>
#include <memory>

#include "acasx/offline_solver.h"
#include "toy2d/toy2d_mdp.h"
#include "util/thread_pool.h"

namespace {

using namespace cav;

char advisory_glyph(acasx::Advisory a) {
  switch (a) {
    case acasx::Advisory::kCoc: return '.';
    case acasx::Advisory::kClimb1500: return '^';
    case acasx::Advisory::kDescend1500: return 'v';
    case acasx::Advisory::kClimb2500: return 'A';
    case acasx::Advisory::kDescend2500: return 'V';
  }
  return '?';
}

/// Render the greedy advisory over (tau, h) for fixed rates.
void render_policy_slice(const acasx::LogicTable& table, double dh_own_fps, double dh_int_fps,
                         acasx::Advisory ra) {
  std::printf("advisory map over (tau, h) at dh_own=%.0f ft/s, dh_int=%.0f ft/s, ra=%s\n",
              dh_own_fps, dh_int_fps, acasx::advisory_name(ra));
  std::printf("  ('.'=COC '^'=CL1500 'v'=DES1500 'A'=SCL2500 'V'=SDES2500)\n");
  std::printf("  h[ft]\\tau ");
  for (int tau = 0; tau <= 40; tau += 2) std::printf("%d", (tau / 10) % 10);
  std::printf("  (columns: tau = 0..40 step 2)\n");
  for (double h = 800.0; h >= -800.0; h -= 100.0) {
    std::printf("  %6.0f    ", h);
    for (int tau = 0; tau <= 40; tau += 2) {
      const auto costs = table.action_costs(static_cast<double>(tau), h, dh_own_fps, dh_int_fps, ra);
      std::size_t best = 0;
      for (std::size_t a = 1; a < acasx::kNumAdvisories; ++a) {
        if (costs[a] < costs[best]) best = a;
      }
      std::printf("%c", advisory_glyph(static_cast<acasx::Advisory>(best)));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ThreadPool pool;
  const auto table = acasx::solve_logic_table(acasx::AcasXuConfig::standard(), &pool);

  std::printf("== ACAS XU-style logic table (%zu Q entries) ==\n\n", table.num_entries());
  // Level-vs-level: the classic alerting wedge around co-altitude.
  render_policy_slice(table, 0.0, 0.0, acasx::Advisory::kCoc);
  // Intruder descending through our level: the wedge shifts and
  // strengthens.
  render_policy_slice(table, 0.0, -15.0, acasx::Advisory::kCoc);
  // Advisory memory: with an active climb, the climb region persists
  // (hysteresis from the reversal/strengthen costs).
  render_policy_slice(table, 12.0, 0.0, acasx::Advisory::kClimb1500);

  std::printf("== SIII toy model lookup table ==\n\n");
  const toy2d::Toy2dMdp toy{toy2d::Config{}};
  const toy2d::PolicyTable toy_table = toy2d::solve(toy);
  for (const int y_int : {0, 2}) {
    std::printf("%s\n", toy_table.render_slice(y_int).c_str());
  }

  std::printf("reading the maps: no advisory far from conflict (tau high or |h|\n"
              "large), maneuvers concentrated where the terminal NMAC cost can still\n"
              "be averted — the structure dynamic programming extracts from the MDP.\n");
  return 0;
}
