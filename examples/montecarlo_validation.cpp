// Monte-Carlo validation as a library user would run it (§IV): estimate
// NMAC and alert rates with confidence intervals under the statistical
// encounter model, for a chosen equipage.
//
// Usage: montecarlo_validation [encounters]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "acasx/offline_solver.h"
#include "baselines/tcas_like.h"
#include "core/validation_campaign.h"
#include "sim/acasx_cas.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace cav;

  ThreadPool pool;
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::standard(), &pool));

  core::MonteCarloConfig config;
  config.encounters = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2000;

  const encounter::StatisticalEncounterModel model;
  std::printf("sampling %zu encounters from the statistical model (conflicts mixed\n"
              "with safe passes; every system sees the same paired traffic)\n\n",
              config.encounters);

  // ValidationCampaign is the primary entry: a run() here is one merged
  // set of stripe work units, the same surface dist::run_sharded_campaign
  // spreads over worker processes with bit-identical results.
  const auto run = [&](const char* name, const sim::CasFactory& cas) {
    return core::ValidationCampaign(model, config, name, cas, cas).run(&pool).rates;
  };
  const auto unequipped = run("unequipped", {});
  const auto acas = run("ACAS-XU", sim::AcasXuCas::factory(table));
  const auto tcas = run("TCAS-like", baselines::TcasLikeCas::factory());

  std::printf("%-12s %-10s %-24s %-10s %-12s\n", "system", "NMACs", "NMAC rate [95% CI]",
              "alerts", "risk ratio");
  for (const auto& r : {unequipped, tcas, acas}) {
    const auto ci = r.nmac_ci();
    // risk_ratio reports the kRiskRatioUndefined sentinel (-1) when the
    // unequipped baseline happened to record zero NMACs.
    std::printf("%-12s %-10zu %.4f [%.4f, %.4f]  %-10.3f %-12.3f\n", r.system.c_str(), r.nmacs,
                r.nmac_rate(), ci.lo, ci.hi, r.alert_rate(), core::risk_ratio(r, unequipped));
  }

  std::printf("\nreading: risk ratio is the fraction of unequipped NMAC risk remaining\n"
              "with the system installed; the alert rate is the false-alarm proxy the\n"
              "paper pairs with it.  Monte-Carlo gives statistical confidence, which\n"
              "the GA search deliberately trades away for fault-finding power (SVIII).\n");
  return 0;
}
