// Quickstart: the full pipeline in one file.
//
//   1. Generate the collision avoidance logic offline (MDP + DP -> table).
//   2. Fly a head-on encounter with both UAVs equipped: the advisories and
//      coordination resolve it (paper Fig. 5).
//   3. Fly the tail-approach geometry the paper's GA search discovered
//      (Figs. 7-8): the tau-based logic stays silent and the encounter
//      frequently ends in an NMAC.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "util/thread_pool.h"

namespace {

void report(const char* name, const cav::core::EncounterEvaluation& eval) {
  std::printf("%-14s NMAC %3zu/%zu runs   mean miss %7.1f m   fitness %8.1f   own alerted %3.0f%%\n",
              name, eval.nmac_count, eval.runs, eval.mean_miss_m, eval.fitness,
              100.0 * eval.alert_fraction_own);
}

}  // namespace

int main() {
  using namespace cav;

  std::printf("== 1. solving the ACAS XU-style logic table (offline DP) ==\n");
  ThreadPool pool;
  acasx::SolveStats stats;
  auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::standard(), &pool, &stats));
  std::printf("   %zu states x %zu tau layers solved in %.2f s (%zu Q entries)\n\n",
              stats.states_per_layer, stats.layers, stats.wall_seconds, table->num_entries());

  core::FitnessConfig fitness_config;
  fitness_config.runs_per_encounter = 100;
  const sim::CasFactory acas = sim::AcasXuCas::factory(table);
  const core::EncounterEvaluator evaluator(fitness_config, acas, acas);

  std::printf("== 2. head-on encounter, both UAVs equipped (paper Fig. 5) ==\n");
  report("head-on", evaluator.evaluate(encounter::head_on(), 1));

  std::printf("\n== 3. tail approach: climbing intruder overtakes descending own-ship ==\n");
  report("tail-approach", evaluator.evaluate(encounter::tail_approach(), 2));

  std::printf("\nThe tail approach defeats tau-based alerting (closure is tiny), which is\n"
              "exactly the challenging situation the paper's GA search surfaced.\n");
  return 0;
}
