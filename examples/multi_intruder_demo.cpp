// Scenario-library tour: run every named multi-aircraft scenario family
// against an equipped own-ship (coarse table for a fast solve), print the
// per-pair outcome table, and render the converging-ring geometry.
//
//   ./multi_intruder_demo [intruders]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "acasx/joint_solver.h"
#include "acasx/offline_solver.h"
#include "scenarios/scenario_library.h"
#include "sim/acasx_cas.h"
#include "sim/trajectory.h"

int main(int argc, char** argv) {
  using namespace cav;

  std::size_t intruders = 0;  // 0 = family defaults
  if (argc > 1) intruders = static_cast<std::size_t>(std::atol(argv[1]));

  std::printf("solving coarse logic table...\n");
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::coarse()));
  const sim::CasFactory equipped = sim::AcasXuCas::factory(table);

  std::printf("\n%-16s %-4s %-14s %-14s %-8s %-8s %-6s\n", "scenario", "K", "own minsep[m]",
              "global minsep", "ownNMAC", "anyNMAC", "alerts");
  for (const std::string& name : scenarios::scenario_names()) {
    // overtake is a fixed single-intruder geometry; keep its default.
    // city-corridors counts whole aircraft and is demoed at a small fleet
    // (bench_airspace_scale owns the hundreds-of-aircraft sweep).
    const bool city = (name == "city-corridors");
    const std::size_t k = (name == "overtake") ? 0
                          : city ? std::max<std::size_t>(2, intruders == 0 ? 24 : intruders)
                                 : intruders;
    const scenarios::Scenario scenario = scenarios::make_scenario(name, k);
    sim::SimConfig config;
    config.record_trajectory = true;
    if (city) config.airspace.interaction_radius_m = 2000.0;
    const auto result = scenarios::run_scenario(scenario, config, equipped, equipped, 7);

    int alerted = 0;
    for (const auto& agent : result.agents) alerted += agent.ever_alerted ? 1 : 0;
    std::printf("%-16s %-4zu %-14.1f %-14.1f %-8s %-8s %-6d\n", scenario.name.c_str(),
                scenario.num_aircraft() - 1, result.own_min_separation_m(),
                result.proximity.min_distance_m, result.own_nmac() ? "yes" : "no",
                result.nmac ? "yes" : "no", alerted);
  }

  // Detail view: the converging ring, the headline multi-threat case —
  // including all three arbitration policies (nearest-threat pairwise,
  // the cost-fused MultiThreatResolver, and the joint-threat table) over
  // a few paired seeds.
  const scenarios::Scenario ring = scenarios::make_scenario("converging-ring", intruders);
  sim::SimConfig config;
  config.record_trajectory = true;
  const auto equipped_run = scenarios::run_scenario(ring, config, equipped, equipped, 7);
  const auto unequipped_run = scenarios::run_scenario(ring, config, {}, {}, 7);

  std::printf("\nconverging-ring, %zu intruders:\n", ring.params.num_intruders());
  std::printf("  unequipped: own minsep %.1f m, own NMAC %s\n",
              unequipped_run.own_min_separation_m(), unequipped_run.own_nmac() ? "yes" : "no");
  std::printf("  equipped:   own minsep %.1f m, own NMAC %s\n",
              equipped_run.own_min_separation_m(), equipped_run.own_nmac() ? "yes" : "no");

  std::printf("\nsolving coarse joint-threat table...\n");
  const auto joint = std::make_shared<const acasx::JointLogicTable>(
      acasx::solve_joint_table(acasx::JointConfig::coarse()));
  const sim::CasFactory joint_equipped = sim::AcasXuCas::factory(table, {}, {}, {}, joint);

  std::printf("\nthreat policy on the ring (all equipped, 20 paired seeds):\n");
  for (const sim::ThreatPolicy policy :
       {sim::ThreatPolicy::kNearest, sim::ThreatPolicy::kCostFused,
        sim::ThreatPolicy::kJointTable}) {
    const bool is_joint = policy == sim::ThreatPolicy::kJointTable;
    const sim::CasFactory& factory = is_joint ? joint_equipped : equipped;
    int nmacs = 0;
    int disagreements = 0;
    for (int seed = 1; seed <= 20; ++seed) {
      sim::SimConfig policy_config;
      policy_config.threat_policy = policy;
      const auto r = scenarios::run_scenario(ring, policy_config, factory, factory, seed);
      if (r.own_nmac()) ++nmacs;
      disagreements += r.own.resolver.disagreements;
    }
    std::printf("  %-12s own NMACs %2d/20%s\n",
                policy == sim::ThreatPolicy::kNearest     ? "nearest:"
                : policy == sim::ThreatPolicy::kCostFused ? "cost-fused:"
                                                          : "joint-table:",
                nmacs,
                policy == sim::ThreatPolicy::kNearest
                    ? ""
                    : (std::string("  (vs-nearest disagreements ") +
                       std::to_string(disagreements) + ")")
                        .c_str());
  }
  std::printf("\nper-pair minima (equipped):\n");
  for (const auto& pair : equipped_run.pairs) {
    std::printf("  (%d, %d): minsep %.1f m%s\n", pair.a, pair.b, pair.proximity.min_distance_m,
                pair.nmac ? "  [NMAC]" : "");
  }

  // Plan view of own vs the first ring intruder (the legacy pairwise
  // trajectory view), plus the full run as CSV for external plotting.
  std::printf("\n%s\n", sim::render_top_view(equipped_run.trajectory).c_str());
  const std::string csv_path = "multi_intruder_ring.csv";
  sim::write_multi_trajectory_csv(equipped_run.multi_trajectory, csv_path);
  std::printf("full %zu-aircraft trajectory: %s\n", equipped_run.agents.size(),
              csv_path.c_str());
  return 0;
}
