// Fig. 5 walkthrough: fly one head-on encounter with both UAVs equipped
// and coordinating, print the advisory timeline cycle by cycle, render
// ASCII top/side views, and export the trajectory as CSV for plotting.
//
// Usage: headon_coordination [output.csv]
#include <cstdio>
#include <memory>

#include "acasx/offline_solver.h"
#include "core/fitness.h"
#include "encounter/encounter.h"
#include "sim/acasx_cas.h"
#include "sim/trajectory.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace cav;

  ThreadPool pool;
  const auto table = std::make_shared<const acasx::LogicTable>(
      acasx::solve_logic_table(acasx::AcasXuConfig::standard(), &pool));
  const sim::CasFactory acas = sim::AcasXuCas::factory(table);

  core::FitnessConfig config;
  config.runs_per_encounter = 1;
  const core::EncounterEvaluator evaluator(config, acas, acas);

  const encounter::EncounterParams head_on = encounter::head_on();
  const sim::SimResult run = evaluator.run_once(head_on, /*stream_id=*/5, /*run_index=*/0,
                                                /*record_trajectory=*/true);

  std::printf("head-on encounter (paper Fig. 5): both UAVs at 40 m/s, co-altitude,\n"
              "collision at t = %.0f s if nobody maneuvers.\n\n", head_on.t_cpa_s);

  std::printf("%-6s %-12s %-12s %-14s %-14s %-12s\n", "t[s]", "own alt[m]", "int alt[m]",
              "own advisory", "int advisory", "sep[m]");
  for (const auto& s : run.trajectory) {
    // Print only the interesting window around the alerts.
    if (s.own_advisory == "COC" && s.intruder_advisory == "COC" && s.separation_m > 1500.0) {
      continue;
    }
    std::printf("%-6.0f %-12.1f %-12.1f %-14s %-14s %-12.1f\n", s.t_s, s.own_position_m.z,
                s.intruder_position_m.z, s.own_advisory.c_str(), s.intruder_advisory.c_str(),
                s.separation_m);
  }

  std::printf("\n%s\n", sim::render_side_view(run.trajectory).c_str());
  std::printf("%s\n", sim::render_top_view(run.trajectory).c_str());
  std::printf("outcome: min separation %.1f m at t = %.1f s; NMAC: %s\n",
              run.proximity.min_distance_m, run.proximity.time_of_min_distance_s,
              run.nmac ? "YES" : "no");
  std::printf("own-ship alerted at t = %.0f s; coordination gave the intruder the\n"
              "complementary sense (own %s / intruder %s final advisories).\n",
              run.own.first_alert_time_s, run.own.final_advisory.c_str(),
              run.intruder.final_advisory.c_str());

  const std::string csv_path = argc > 1 ? argv[1] : "headon_trajectory.csv";
  sim::write_trajectory_csv(run.trajectory, csv_path);
  std::printf("trajectory written to %s\n", csv_path.c_str());
  return 0;
}
