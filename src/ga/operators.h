// Genetic operators: selection, crossover, mutation.  The set mirrors what
// the paper's ECJ configuration exposes ("the size of the population, the
// number of generations and the selection mechanism etc.", §VI.B).
#pragma once

#include <cstddef>
#include <vector>

#include "ga/genome.h"
#include "util/rng.h"

namespace cav::ga {

enum class SelectionType { kTournament, kRoulette };
enum class CrossoverType { kOnePoint, kTwoPoint, kUniform, kBlend };

struct SelectionConfig {
  SelectionType type = SelectionType::kTournament;
  std::size_t tournament_size = 2;  ///< ECJ's default binary tournament
};

struct CrossoverConfig {
  CrossoverType type = CrossoverType::kUniform;
  double probability = 0.9;   ///< applied per offspring pair; else parents copy
  double uniform_swap = 0.5;  ///< per-gene swap probability (kUniform)
  double blend_alpha = 0.3;   ///< BLX-alpha expansion (kBlend)
};

struct MutationConfig {
  double gene_probability = 0.15;  ///< chance each gene mutates
  double gaussian_sigma_frac = 0.1;  ///< sigma as a fraction of the gene's range
  double reset_probability = 0.02;   ///< chance a mutating gene resets uniformly
};

/// Select one parent index from the population (fitness-maximizing).
/// Roulette shifts fitness so the minimum has weight ~0.
std::size_t select_parent(const std::vector<Individual>& population,
                          const SelectionConfig& config, RngStream& rng);

/// Produce two children from two parents (genomes only; fitness cleared by
/// the caller).  Parents must have equal sizes.
void crossover(const Genome& a, const Genome& b, Genome& child1, Genome& child2,
               const CrossoverConfig& config, RngStream& rng);

/// Mutate in place, then clamp to the spec.
void mutate(Genome& g, const GenomeSpec& spec, const MutationConfig& config, RngStream& rng);

}  // namespace cav::ga
