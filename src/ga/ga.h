// The generational genetic algorithm (§V, Fig. 3) and the random-search
// baseline it is compared against (§V, via ref [7]).
//
// Fitness is MAXIMIZED (the paper's fitness rewards bad encounters for the
// avoidance system: "the worse ACAS XU behaves in an encounter, the higher
// fitness the encounter will get").
//
// Evaluations are dispatched in deterministic batches: the fitness
// function receives a globally increasing evaluation index, from which it
// derives its own RNG streams — parallel and serial runs produce identical
// telemetry.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ga/genome.h"
#include "ga/operators.h"
#include "util/thread_pool.h"

namespace cav::ga {

/// fitness(genome, eval_index) — must be thread-safe and deterministic in
/// its arguments.
using FitnessFunction = std::function<double(const Genome&, std::uint64_t eval_index)>;

/// Fitness sharing (niching): selection sees fitness divided by a
/// crowding factor, so the population spreads across multiple optima
/// instead of collapsing onto the single best one.  Useful when the goal
/// is mapping *areas* of challenging scenarios (§VIII) rather than the
/// single worst point.  Telemetry and elitism always use raw fitness.
struct NichingConfig {
  bool enabled = false;
  /// Sharing radius as a fraction of the normalized genome-space diagonal.
  double share_radius = 0.15;
  /// Kernel shape: share = 1 - (d/radius)^alpha for d < radius.
  double alpha = 1.0;
};

struct GaConfig {
  std::size_t population_size = 200;  ///< paper §VII: "population size to be 200"
  std::size_t generations = 5;        ///< paper §VII: "5 generations of evolution"
  std::size_t elites = 2;             ///< best individuals copied unchanged
  SelectionConfig selection;
  CrossoverConfig crossover;
  MutationConfig mutation;
  NichingConfig niching;
  std::uint64_t seed = 1;
};

struct GenerationStats {
  std::size_t generation = 0;
  double min_fitness = 0.0;
  double mean_fitness = 0.0;
  double max_fitness = 0.0;
  Genome best_genome;
};

struct SearchResult {
  Individual best;
  std::vector<double> fitness_by_evaluation;  ///< Fig. 6's series, in eval order
  std::vector<GenerationStats> generations;
  std::vector<Individual> final_population;
  std::size_t total_evaluations = 0;
};

using GenerationCallback = std::function<void(const GenerationStats&)>;

/// Run the GA.  `pool` parallelizes fitness evaluation when provided.
SearchResult run_ga(const GenomeSpec& spec, const FitnessFunction& fitness, const GaConfig& config,
                    ThreadPool* pool = nullptr, const GenerationCallback& on_generation = {});

/// Random search with the same evaluation budget and telemetry shape:
/// every candidate drawn uniformly from the spec.
SearchResult run_random_search(const GenomeSpec& spec, const FitnessFunction& fitness,
                               std::size_t evaluations, std::uint64_t seed,
                               ThreadPool* pool = nullptr);

}  // namespace cav::ga
