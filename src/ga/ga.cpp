#include "ga/ga.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/expect.h"

namespace cav::ga {
namespace {

/// Evaluate all unevaluated individuals; eval indices are assigned in
/// population order so results are independent of thread scheduling.
void evaluate_batch(std::vector<Individual>& population, const FitnessFunction& fitness,
                    std::uint64_t& next_eval_index, std::vector<double>& fitness_log,
                    ThreadPool* pool) {
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population[i].evaluated) todo.push_back(i);
  }
  std::vector<std::uint64_t> indices(todo.size());
  for (std::size_t k = 0; k < todo.size(); ++k) indices[k] = next_eval_index++;

  const auto eval_one = [&](std::size_t k) {
    Individual& ind = population[todo[k]];
    ind.fitness = fitness(ind.genome, indices[k]);
    ind.evaluated = true;
  };
  if (pool != nullptr) {
    pool->parallel_for(todo.size(), eval_one);
  } else {
    for (std::size_t k = 0; k < todo.size(); ++k) eval_one(k);
  }
  for (std::size_t k = 0; k < todo.size(); ++k) {
    fitness_log.push_back(population[todo[k]].fitness);
  }
}

GenerationStats stats_of(std::size_t generation, const std::vector<Individual>& population) {
  GenerationStats s;
  s.generation = generation;
  s.min_fitness = std::numeric_limits<double>::infinity();
  s.max_fitness = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (const auto& ind : population) {
    s.min_fitness = std::min(s.min_fitness, ind.fitness);
    if (ind.fitness > s.max_fitness) {
      s.max_fitness = ind.fitness;
      s.best_genome = ind.genome;
    }
    sum += ind.fitness;
  }
  s.mean_fitness = population.empty() ? 0.0 : sum / static_cast<double>(population.size());
  return s;
}

void track_best(Individual& best, const std::vector<Individual>& population) {
  for (const auto& ind : population) {
    if (!best.evaluated || ind.fitness > best.fitness) best = ind;
  }
}

/// Normalized genome distance in units of the spec's bounds (so the
/// sharing radius is scale-free).
double normalized_distance(const Genome& a, const Genome& b, const GenomeSpec& spec) {
  double sum = 0.0;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const double w = spec.bound(i).width();
    const double d = w > 0.0 ? (a[i] - b[i]) / w : 0.0;
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(spec.size()));
}

/// Replace each individual's fitness with its shared value for breeding:
/// f' = f / m, where m sums the sharing kernel over the population.  The
/// raw-fitness floor is shifted to keep shared values order-consistent for
/// negative fitness.
std::vector<Individual> shared_view(const std::vector<Individual>& population,
                                    const GenomeSpec& spec, const NichingConfig& config) {
  double min_fit = std::numeric_limits<double>::infinity();
  for (const auto& ind : population) min_fit = std::min(min_fit, ind.fitness);

  std::vector<Individual> view = population;
  for (std::size_t i = 0; i < population.size(); ++i) {
    double crowd = 0.0;
    for (std::size_t j = 0; j < population.size(); ++j) {
      const double d = normalized_distance(population[i].genome, population[j].genome, spec);
      if (d < config.share_radius) {
        crowd += 1.0 - std::pow(d / config.share_radius, config.alpha);
      }
    }
    // crowd >= 1 always (self-distance 0); dividing a shifted-positive
    // fitness keeps the ordering meaningful.
    view[i].fitness = (population[i].fitness - min_fit) / crowd;
  }
  return view;
}

}  // namespace

SearchResult run_ga(const GenomeSpec& spec, const FitnessFunction& fitness, const GaConfig& config,
                    ThreadPool* pool, const GenerationCallback& on_generation) {
  expect(spec.size() > 0, "genome spec non-empty");
  expect(config.population_size >= 2, "population_size >= 2");
  expect(config.generations >= 1, "generations >= 1");
  expect(config.elites < config.population_size, "elites < population_size");

  SearchResult result;
  std::uint64_t next_eval = 0;

  RngStream init_rng = RngStream::derive(config.seed, "ga-init");
  std::vector<Individual> population(config.population_size);
  for (auto& ind : population) ind.genome = spec.sample(init_rng);

  evaluate_batch(population, fitness, next_eval, result.fitness_by_evaluation, pool);
  GenerationStats gen_stats = stats_of(0, population);
  result.generations.push_back(gen_stats);
  track_best(result.best, population);
  if (on_generation) on_generation(gen_stats);

  RngStream breed_rng = RngStream::derive(config.seed, "ga-breed");
  for (std::size_t gen = 1; gen < config.generations; ++gen) {
    // Elitism: carry over the best individuals unchanged (already
    // evaluated, so they cost no simulation budget).
    std::vector<std::size_t> order(population.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(config.elites),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return population[a].fitness > population[b].fitness;
                      });

    std::vector<Individual> next;
    next.reserve(config.population_size);
    for (std::size_t e = 0; e < config.elites; ++e) next.push_back(population[order[e]]);

    // With niching, parents are selected on crowding-discounted fitness.
    std::vector<Individual> shared_storage;
    if (config.niching.enabled) shared_storage = shared_view(population, spec, config.niching);
    const std::vector<Individual>& breeding_pool =
        config.niching.enabled ? shared_storage : population;

    while (next.size() < config.population_size) {
      const std::size_t pa = select_parent(breeding_pool, config.selection, breed_rng);
      const std::size_t pb = select_parent(breeding_pool, config.selection, breed_rng);
      Genome c1;
      Genome c2;
      crossover(population[pa].genome, population[pb].genome, c1, c2, config.crossover, breed_rng);
      mutate(c1, spec, config.mutation, breed_rng);
      mutate(c2, spec, config.mutation, breed_rng);
      next.push_back({std::move(c1), 0.0, false});
      if (next.size() < config.population_size) next.push_back({std::move(c2), 0.0, false});
    }

    population.swap(next);
    evaluate_batch(population, fitness, next_eval, result.fitness_by_evaluation, pool);
    gen_stats = stats_of(gen, population);
    result.generations.push_back(gen_stats);
    track_best(result.best, population);
    if (on_generation) on_generation(gen_stats);
  }

  result.final_population = std::move(population);
  result.total_evaluations = next_eval;
  return result;
}

SearchResult run_random_search(const GenomeSpec& spec, const FitnessFunction& fitness,
                               std::size_t evaluations, std::uint64_t seed, ThreadPool* pool) {
  expect(spec.size() > 0, "genome spec non-empty");
  expect(evaluations >= 1, "evaluations >= 1");

  SearchResult result;
  RngStream rng = RngStream::derive(seed, "random-search");
  std::vector<Individual> batch(evaluations);
  for (auto& ind : batch) ind.genome = spec.sample(rng);

  std::uint64_t next_eval = 0;
  evaluate_batch(batch, fitness, next_eval, result.fitness_by_evaluation, pool);
  track_best(result.best, batch);
  result.generations.push_back(stats_of(0, batch));
  result.final_population = std::move(batch);
  result.total_evaluations = next_eval;
  return result;
}

}  // namespace cav::ga
