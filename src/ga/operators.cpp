#include "ga/operators.h"

#include <algorithm>
#include <limits>

#include "util/expect.h"

namespace cav::ga {

std::size_t select_parent(const std::vector<Individual>& population,
                          const SelectionConfig& config, RngStream& rng) {
  expect(!population.empty(), "population non-empty");
  const int max_index = static_cast<int>(population.size()) - 1;

  if (config.type == SelectionType::kTournament) {
    expect(config.tournament_size >= 1, "tournament_size >= 1");
    std::size_t best = static_cast<std::size_t>(rng.uniform_int(0, max_index));
    for (std::size_t k = 1; k < config.tournament_size; ++k) {
      const auto challenger = static_cast<std::size_t>(rng.uniform_int(0, max_index));
      if (population[challenger].fitness > population[best].fitness) best = challenger;
    }
    return best;
  }

  // Roulette: weights are fitness shifted so the worst individual gets a
  // small positive weight (handles negative fitness).
  double min_fit = std::numeric_limits<double>::infinity();
  double max_fit = -std::numeric_limits<double>::infinity();
  for (const auto& ind : population) {
    min_fit = std::min(min_fit, ind.fitness);
    max_fit = std::max(max_fit, ind.fitness);
  }
  const double span = max_fit - min_fit;
  const double floor_weight = span > 0.0 ? span * 1e-3 : 1.0;
  std::vector<double> weights(population.size());
  for (std::size_t i = 0; i < population.size(); ++i) {
    weights[i] = population[i].fitness - min_fit + floor_weight;
  }
  return static_cast<std::size_t>(rng.discrete(weights));
}

void crossover(const Genome& a, const Genome& b, Genome& child1, Genome& child2,
               const CrossoverConfig& config, RngStream& rng) {
  expect(a.size() == b.size(), "parents have equal genome length");
  child1 = a;
  child2 = b;
  if (a.size() < 2) return;
  if (!rng.chance(config.probability)) return;

  const auto n = a.size();
  switch (config.type) {
    case CrossoverType::kOnePoint: {
      const auto cut = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(n) - 1));
      for (std::size_t i = cut; i < n; ++i) std::swap(child1[i], child2[i]);
      break;
    }
    case CrossoverType::kTwoPoint: {
      auto c1 = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(n) - 1));
      auto c2 = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(n) - 1));
      if (c1 > c2) std::swap(c1, c2);
      for (std::size_t i = c1; i < c2; ++i) std::swap(child1[i], child2[i]);
      break;
    }
    case CrossoverType::kUniform: {
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.chance(config.uniform_swap)) std::swap(child1[i], child2[i]);
      }
      break;
    }
    case CrossoverType::kBlend: {
      // BLX-alpha: children drawn uniformly from the parents' interval
      // expanded by alpha on both sides.
      for (std::size_t i = 0; i < n; ++i) {
        const double lo = std::min(a[i], b[i]);
        const double hi = std::max(a[i], b[i]);
        const double pad = (hi - lo) * config.blend_alpha;
        child1[i] = rng.uniform(lo - pad, hi + pad);
        child2[i] = rng.uniform(lo - pad, hi + pad);
      }
      break;
    }
  }
}

void mutate(Genome& g, const GenomeSpec& spec, const MutationConfig& config, RngStream& rng) {
  expect(g.size() == spec.size(), "genome matches spec");
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (!rng.chance(config.gene_probability)) continue;
    const GeneBounds& b = spec.bound(i);
    if (rng.chance(config.reset_probability)) {
      g[i] = rng.uniform(b.lo, b.hi);
    } else {
      g[i] += rng.gaussian(0.0, config.gaussian_sigma_frac * b.width());
    }
  }
  spec.clamp(g);
}

}  // namespace cav::ga
