// Real-valued bounded genomes.  A scenario is "parameterized ... then
// encoded as genomes for the use of GA" (§V); here a genome is a fixed-
// length vector of doubles with per-gene bounds (the encounter parameter
// ranges).
#pragma once

#include <cstddef>
#include <vector>

#include "util/expect.h"
#include "util/rng.h"

namespace cav::ga {

using Genome = std::vector<double>;

struct GeneBounds {
  double lo = 0.0;
  double hi = 1.0;

  double width() const { return hi - lo; }
};

/// The search space: one bound per gene.
class GenomeSpec {
 public:
  GenomeSpec() = default;
  explicit GenomeSpec(std::vector<GeneBounds> bounds) : bounds_(std::move(bounds)) {
    for (const auto& b : bounds_) expect(b.hi > b.lo, "gene bounds hi > lo");
  }

  std::size_t size() const { return bounds_.size(); }
  const GeneBounds& bound(std::size_t i) const { return bounds_[i]; }

  /// Uniform random genome within bounds.
  Genome sample(RngStream& rng) const {
    Genome g(bounds_.size());
    for (std::size_t i = 0; i < bounds_.size(); ++i) g[i] = rng.uniform(bounds_[i].lo, bounds_[i].hi);
    return g;
  }

  /// Clamp each gene into its bounds.
  void clamp(Genome& g) const {
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (g[i] < bounds_[i].lo) g[i] = bounds_[i].lo;
      if (g[i] > bounds_[i].hi) g[i] = bounds_[i].hi;
    }
  }

  bool contains(const Genome& g) const {
    if (g.size() != bounds_.size()) return false;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (g[i] < bounds_[i].lo || g[i] > bounds_[i].hi) return false;
    }
    return true;
  }

 private:
  std::vector<GeneBounds> bounds_;
};

struct Individual {
  Genome genome;
  double fitness = 0.0;
  bool evaluated = false;
};

}  // namespace cav::ga
