#include "acasx/joint_table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/expect.h"
#include "util/units.h"

namespace cav::acasx {
namespace {

constexpr std::uint32_t kMagic = 0x4a545831;  // "JTX1"

void write_axis(std::ofstream& out, const UniformAxis& axis) {
  const double lo = axis.lo();
  const double hi = axis.hi();
  const std::uint64_t count = axis.count();
  out.write(reinterpret_cast<const char*>(&lo), sizeof lo);
  out.write(reinterpret_cast<const char*>(&hi), sizeof hi);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
}

UniformAxis read_axis(std::ifstream& in) {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&lo), sizeof lo);
  in.read(reinterpret_cast<char*>(&hi), sizeof hi);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  return UniformAxis(lo, hi, static_cast<std::size_t>(count));
}

}  // namespace

JointConfig JointConfig::coarse() {
  JointConfig c;
  c.space = StateSpaceConfig::coarse();
  c.space.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  c.space.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  return c;
}

JointConfig JointConfig::standard() {
  JointConfig c;
  c.space = StateSpaceConfig::standard();
  c.space.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 7);
  c.space.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 7);
  return c;
}

JointLogicTable::JointLogicTable(const JointConfig& config)
    : config_(config), grid_(config.grid()) {
  const std::size_t n = config_.secondary.num_slabs() * num_tau_layers() * grid_.size() *
                        kNumAdvisories * kNumAdvisories;
  q_.assign(n, 0.0F);
}

std::array<double, kNumAdvisories> JointLogicTable::action_costs(
    double tau1_s, double delta_s, double h1_ft, double dh_own_fps, double dh_int1_fps,
    double h2_ft, SecondarySense sense, Advisory ra) const {
  expect(!q_.empty(), "joint table is solved/loaded");
  const std::size_t db = config_.secondary.delta_bin(delta_s);
  const std::size_t slab = config_.slab_index(db, sense);

  // The layer axis counts down to the SECONDARY's CPA and advances one
  // dynamics step (dt_s) per layer; with delta snapped to its bin value the
  // primary's CPA sits at layer delta_value/dt, so the query layer
  // preserving the primary's tau is (tau1 + delta_value) / dt.  (At the
  // default dt_s = 1 this is the pairwise LogicTable convention exactly.)
  const double tau_max = static_cast<double>(config_.space.tau_max);
  const double tau = std::clamp(
      (tau1_s + config_.secondary.delta_value_s(db)) / config_.dynamics.dt_s, 0.0, tau_max);
  const auto t_lo = static_cast<std::size_t>(tau);
  const std::size_t t_hi = std::min<std::size_t>(t_lo + 1, config_.space.tau_max);
  const double t_frac = tau - static_cast<double>(t_lo);

  const auto vertices = grid_.scatter({h1_ft, dh_own_fps, dh_int1_fps, h2_ft});

  std::array<double, kNumAdvisories> costs{};
  for (std::size_t ai = 0; ai < kNumAdvisories; ++ai) {
    const auto action = static_cast<Advisory>(ai);
    double lo = 0.0;
    double hi = 0.0;
    for (const auto& v : vertices) {
      lo += v.weight * static_cast<double>(at(slab, t_lo, v.flat, ra, action));
      if (t_hi != t_lo) {
        hi += v.weight * static_cast<double>(at(slab, t_hi, v.flat, ra, action));
      }
    }
    costs[ai] = (t_hi == t_lo) ? lo : lo * (1.0 - t_frac) + hi * t_frac;
  }
  return costs;
}

void JointLogicTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("JointLogicTable::save: cannot open " + path);

  out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  write_axis(out, config_.space.h_ft);
  write_axis(out, config_.space.dh_own_fps);
  write_axis(out, config_.space.dh_int_fps);
  write_axis(out, config_.secondary.h2_ft);
  const std::uint64_t tau_max = config_.space.tau_max;
  out.write(reinterpret_cast<const char*>(&tau_max), sizeof tau_max);
  const std::uint64_t delta_bins = config_.secondary.num_delta_bins;
  out.write(reinterpret_cast<const char*>(&delta_bins), sizeof delta_bins);
  const double secondary[3] = {config_.secondary.delta_step_s, config_.secondary.sense_rate_fps,
                               config_.secondary.sense_level_threshold_fps};
  out.write(reinterpret_cast<const char*>(secondary), sizeof secondary);

  const double dyn[4] = {config_.dynamics.dt_s, config_.dynamics.accel_initial_fps2,
                         config_.dynamics.accel_strength_fps2,
                         config_.dynamics.accel_noise_sigma_fps2};
  out.write(reinterpret_cast<const char*>(dyn), sizeof dyn);
  const double costs[8] = {config_.costs.nmac_cost,      config_.costs.nmac_h_ft,
                           config_.costs.maneuver_cost,  config_.costs.strengthened_maneuver_cost,
                           config_.costs.level_reward,   config_.costs.strengthen_cost,
                           config_.costs.reversal_cost,  config_.costs.termination_cost};
  out.write(reinterpret_cast<const char*>(costs), sizeof costs);

  const std::uint64_t n = q_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(q_.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  if (!out) throw std::runtime_error("JointLogicTable::save: write failed for " + path);
}

JointLogicTable JointLogicTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("JointLogicTable::load: cannot open " + path);

  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kMagic) throw std::runtime_error("JointLogicTable::load: bad magic in " + path);

  JointConfig config;
  config.space.h_ft = read_axis(in);
  config.space.dh_own_fps = read_axis(in);
  config.space.dh_int_fps = read_axis(in);
  config.secondary.h2_ft = read_axis(in);
  std::uint64_t tau_max = 0;
  in.read(reinterpret_cast<char*>(&tau_max), sizeof tau_max);
  config.space.tau_max = static_cast<std::size_t>(tau_max);
  std::uint64_t delta_bins = 0;
  in.read(reinterpret_cast<char*>(&delta_bins), sizeof delta_bins);
  config.secondary.num_delta_bins = static_cast<std::size_t>(delta_bins);
  double secondary[3];
  in.read(reinterpret_cast<char*>(secondary), sizeof secondary);
  config.secondary.delta_step_s = secondary[0];
  config.secondary.sense_rate_fps = secondary[1];
  config.secondary.sense_level_threshold_fps = secondary[2];

  double dyn[4];
  in.read(reinterpret_cast<char*>(dyn), sizeof dyn);
  config.dynamics.dt_s = dyn[0];
  config.dynamics.accel_initial_fps2 = dyn[1];
  config.dynamics.accel_strength_fps2 = dyn[2];
  config.dynamics.accel_noise_sigma_fps2 = dyn[3];
  double costs[8];
  in.read(reinterpret_cast<char*>(costs), sizeof costs);
  config.costs.nmac_cost = costs[0];
  config.costs.nmac_h_ft = costs[1];
  config.costs.maneuver_cost = costs[2];
  config.costs.strengthened_maneuver_cost = costs[3];
  config.costs.level_reward = costs[4];
  config.costs.strengthen_cost = costs[5];
  config.costs.reversal_cost = costs[6];
  config.costs.termination_cost = costs[7];

  JointLogicTable table(config);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (n != table.q_.size()) {
    throw std::runtime_error("JointLogicTable::load: size mismatch in " + path);
  }
  in.read(reinterpret_cast<char*>(table.q_.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("JointLogicTable::load: truncated file " + path);
  return table;
}

std::array<double, kNumAdvisories> joint_action_costs(const JointLogicTable& table,
                                                      const AircraftTrack& own,
                                                      const AircraftTrack& a,
                                                      const AircraftTrack& b, Advisory ra,
                                                      const OnlineConfig& online, bool* active) {
  std::array<double, kNumAdvisories> costs{};
  const TauEstimate tau_a = AcasXuLogic::estimate_tau(own, a, online);
  const TauEstimate tau_b = AcasXuLogic::estimate_tau(own, b, online);
  const bool a_active = tau_a.converging && tau_a.tau_s <= online.tau_alert_max_s;
  const bool b_active = tau_b.converging && tau_b.tau_s <= online.tau_alert_max_s;
  if (!a_active || !b_active) {
    *active = false;
    return costs;
  }
  *active = true;

  // Deterministic primary selection: smaller tau first, ties broken on the
  // relative state (so swapping a and b can never change the result).
  const double ha = units::m_to_ft(a.position_m.z - own.position_m.z);
  const double hb = units::m_to_ft(b.position_m.z - own.position_m.z);
  const double dha = units::m_to_ft(a.velocity_mps.z);
  const double dhb = units::m_to_ft(b.velocity_mps.z);
  bool a_primary = tau_a.tau_s < tau_b.tau_s;
  if (tau_a.tau_s == tau_b.tau_s) {
    a_primary = (ha != hb) ? ha < hb : dha <= dhb;
  }

  const double tau1 = a_primary ? tau_a.tau_s : tau_b.tau_s;
  const double delta = (a_primary ? tau_b.tau_s : tau_a.tau_s) - tau1;
  const double h1 = a_primary ? ha : hb;
  const double dh_int1 = a_primary ? dha : dhb;
  const double h2 = a_primary ? hb : ha;
  const double dh2 = a_primary ? dhb : dha;
  const double dh_own = units::m_to_ft(own.velocity_mps.z);

  return table.action_costs(tau1, delta, h1, dh_own, dh_int1, h2,
                            table.config().secondary.sense_of_rate(dh2), ra);
}

}  // namespace cav::acasx
