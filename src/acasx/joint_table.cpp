#include "acasx/joint_table.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "serving/kernel.h"
#include "serving/table_codec.h"
#include "serving/table_image.h"
#include "util/expect.h"
#include "util/units.h"

namespace cav::acasx {
namespace {

using serving::TableIoError;

constexpr std::uint32_t kLegacyMagic = 0x4a545831;  // "JTX1", the pre-serving format

// meta_f64 layout: 4 axes x (lo, hi), secondary x 3, dynamics x 4, costs x 8.
constexpr std::size_t kMetaF64Count = 4 * 2 + 3 + 4 + 8;
// meta_u64 layout: 4 axis counts, tau_max, num_delta_bins.
constexpr std::size_t kMetaU64Count = 4 + 2;

void encode_meta(const JointConfig& c, double* f64, std::uint64_t* u64) {
  const UniformAxis* axes[4] = {&c.space.h_ft, &c.space.dh_own_fps, &c.space.dh_int_fps,
                                &c.secondary.h2_ft};
  for (std::size_t i = 0; i < 4; ++i) {
    f64[2 * i] = axes[i]->lo();
    f64[2 * i + 1] = axes[i]->hi();
    u64[i] = axes[i]->count();
  }
  u64[4] = c.space.tau_max;
  u64[5] = c.secondary.num_delta_bins;
  double* s = f64 + 8;
  s[0] = c.secondary.delta_step_s;
  s[1] = c.secondary.sense_rate_fps;
  s[2] = c.secondary.sense_level_threshold_fps;
  double* d = f64 + 11;
  d[0] = c.dynamics.dt_s;
  d[1] = c.dynamics.accel_initial_fps2;
  d[2] = c.dynamics.accel_strength_fps2;
  d[3] = c.dynamics.accel_noise_sigma_fps2;
  double* k = f64 + 15;
  k[0] = c.costs.nmac_cost;
  k[1] = c.costs.nmac_h_ft;
  k[2] = c.costs.maneuver_cost;
  k[3] = c.costs.strengthened_maneuver_cost;
  k[4] = c.costs.level_reward;
  k[5] = c.costs.strengthen_cost;
  k[6] = c.costs.reversal_cost;
  k[7] = c.costs.termination_cost;
}

JointConfig decode_meta(const serving::TableImage& image) {
  const auto f64 = image.slab_as<double>(serving::kSlabMetaF64);
  const auto u64 = image.slab_as<std::uint64_t>(serving::kSlabMetaU64);
  if (f64.size() != kMetaF64Count || u64.size() != kMetaU64Count) {
    throw TableIoError("JointLogicTable::load", "bad meta slab", image.path());
  }
  JointConfig c;
  c.space.h_ft = UniformAxis(f64[0], f64[1], static_cast<std::size_t>(u64[0]));
  c.space.dh_own_fps = UniformAxis(f64[2], f64[3], static_cast<std::size_t>(u64[1]));
  c.space.dh_int_fps = UniformAxis(f64[4], f64[5], static_cast<std::size_t>(u64[2]));
  c.secondary.h2_ft = UniformAxis(f64[6], f64[7], static_cast<std::size_t>(u64[3]));
  c.space.tau_max = static_cast<std::size_t>(u64[4]);
  c.secondary.num_delta_bins = static_cast<std::size_t>(u64[5]);
  c.secondary.delta_step_s = f64[8];
  c.secondary.sense_rate_fps = f64[9];
  c.secondary.sense_level_threshold_fps = f64[10];
  c.dynamics.dt_s = f64[11];
  c.dynamics.accel_initial_fps2 = f64[12];
  c.dynamics.accel_strength_fps2 = f64[13];
  c.dynamics.accel_noise_sigma_fps2 = f64[14];
  c.costs.nmac_cost = f64[15];
  c.costs.nmac_h_ft = f64[16];
  c.costs.maneuver_cost = f64[17];
  c.costs.strengthened_maneuver_cost = f64[18];
  c.costs.level_reward = f64[19];
  c.costs.strengthen_cost = f64[20];
  c.costs.reversal_cost = f64[21];
  c.costs.termination_cost = f64[22];
  return c;
}

UniformAxis read_legacy_axis(std::ifstream& in) {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&lo), sizeof lo);
  in.read(reinterpret_cast<char*>(&hi), sizeof hi);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  return UniformAxis(lo, hi, static_cast<std::size_t>(count));
}

// DEPRECATED read path for the pre-serving "JTX1" format; kept for one
// release so cached tables survive the migration.  save() always writes
// the TableImage container now.
JointLogicTable load_legacy(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TableIoError("JointLogicTable::load", "cannot open", path);

  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kLegacyMagic) throw TableIoError("JointLogicTable::load", "bad magic", path);

  JointConfig config;
  config.space.h_ft = read_legacy_axis(in);
  config.space.dh_own_fps = read_legacy_axis(in);
  config.space.dh_int_fps = read_legacy_axis(in);
  config.secondary.h2_ft = read_legacy_axis(in);
  std::uint64_t tau_max = 0;
  in.read(reinterpret_cast<char*>(&tau_max), sizeof tau_max);
  config.space.tau_max = static_cast<std::size_t>(tau_max);
  std::uint64_t delta_bins = 0;
  in.read(reinterpret_cast<char*>(&delta_bins), sizeof delta_bins);
  config.secondary.num_delta_bins = static_cast<std::size_t>(delta_bins);
  double secondary[3];
  in.read(reinterpret_cast<char*>(secondary), sizeof secondary);
  config.secondary.delta_step_s = secondary[0];
  config.secondary.sense_rate_fps = secondary[1];
  config.secondary.sense_level_threshold_fps = secondary[2];

  double dyn[4];
  in.read(reinterpret_cast<char*>(dyn), sizeof dyn);
  config.dynamics.dt_s = dyn[0];
  config.dynamics.accel_initial_fps2 = dyn[1];
  config.dynamics.accel_strength_fps2 = dyn[2];
  config.dynamics.accel_noise_sigma_fps2 = dyn[3];
  double costs[8];
  in.read(reinterpret_cast<char*>(costs), sizeof costs);
  config.costs.nmac_cost = costs[0];
  config.costs.nmac_h_ft = costs[1];
  config.costs.maneuver_cost = costs[2];
  config.costs.strengthened_maneuver_cost = costs[3];
  config.costs.level_reward = costs[4];
  config.costs.strengthen_cost = costs[5];
  config.costs.reversal_cost = costs[6];
  config.costs.termination_cost = costs[7];

  JointLogicTable table(config);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (n != table.raw().size()) {
    throw TableIoError("JointLogicTable::load", "size mismatch", path);
  }
  in.read(reinterpret_cast<char*>(table.raw().data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw TableIoError("JointLogicTable::load", "truncated", path);
  return table;
}

}  // namespace

JointConfig JointLogicTable::decode_config(const serving::TableImage& image) {
  return decode_meta(image);
}

JointConfig JointConfig::coarse() {
  JointConfig c;
  c.space = StateSpaceConfig::coarse();
  c.space.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  c.space.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 5);
  return c;
}

JointConfig JointConfig::standard() {
  JointConfig c;
  c.space = StateSpaceConfig::standard();
  c.space.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 7);
  c.space.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 7);
  return c;
}

JointLogicTable::JointLogicTable(const JointConfig& config)
    : config_(config), grid_(config.grid()) {
  const std::size_t n = config_.secondary.num_slabs() * num_tau_layers() * grid_.size() *
                        kNumAdvisories * kNumAdvisories;
  q_.assign(n, 0.0F);
}

void JointLogicTable::action_costs(double tau1_s, double delta_s, double h1_ft,
                                   double dh_own_fps, double dh_int1_fps, double h2_ft,
                                   SecondarySense sense, Advisory ra,
                                   std::span<double, kNumAdvisories> out) const {
  expect(num_entries() != 0, "joint table is solved/loaded");
  const std::size_t db = config_.secondary.delta_bin(delta_s);
  const std::size_t slab = config_.slab_index(db, sense);

  // The layer axis counts down to the SECONDARY's CPA and advances one
  // dynamics step (dt_s) per layer; with delta snapped to its bin value the
  // primary's CPA sits at layer delta_value/dt, so the query layer
  // preserving the primary's tau is (tau1 + delta_value) / dt.  (At the
  // default dt_s = 1 this is the pairwise LogicTable convention exactly.)
  const serving::TauBracket t = serving::bracket_tau(
      (tau1_s + config_.secondary.delta_value_s(db)) / config_.dynamics.dt_s,
      config_.space.tau_max);
  serving::grid_query<kNumAdvisories>(serving::F32View{values()}, grid_,
                                      {h1_ft, dh_own_fps, dh_int1_fps, h2_ft},
                                      slab * num_tau_layers(), t, static_cast<std::size_t>(ra),
                                      out.data());
}

std::vector<float>& JointLogicTable::raw() {
  expect(view_ == nullptr, "owning table (mapped views are read-only)");
  return q_;
}

const std::vector<float>& JointLogicTable::raw() const {
  expect(view_ == nullptr, "owning table (mapped views have no vector)");
  return q_;
}

void JointLogicTable::encode_config(const JointConfig& config,
                                    serving::TableImageWriter& writer) {
  double meta_f64[kMetaF64Count];
  std::uint64_t meta_u64[kMetaU64Count];
  encode_meta(config, meta_f64, meta_u64);
  writer.add_slab(serving::kSlabMetaF64, serving::SlabType::kF64, meta_f64, sizeof meta_f64);
  writer.add_slab(serving::kSlabMetaU64, serving::SlabType::kU64, meta_u64, sizeof meta_u64);
}

void JointLogicTable::save(const std::string& path, serving::Quantization quant) const {
  serving::TableImageWriter writer(path, serving::kKindJoint);
  encode_config(config_, writer);
  serving::write_value_slabs(writer, {values(), num_entries()}, quant);
  writer.finish();
}

JointLogicTable JointLogicTable::load(const std::string& path) {
  if (serving::peek_magic(path) == kLegacyMagic) return load_legacy(path);

  serving::TableImage image = serving::TableImage::open(path);
  if (image.kind_name() != serving::kKindJoint) {
    throw TableIoError("JointLogicTable::load", "wrong table kind", path);
  }
  JointLogicTable table(decode_meta(image));
  const serving::ValueSlabs values = serving::open_value_slabs(image);
  if (values.count != table.q_.size()) {
    throw TableIoError("JointLogicTable::load", "size mismatch", path);
  }
  table.q_ = serving::dequantize_values(values);
  return table;
}

JointLogicTable JointLogicTable::open_mapped(const std::string& path) {
  return open_mapped(
      std::make_shared<const serving::TableImage>(serving::TableImage::open(path)));
}

JointLogicTable JointLogicTable::open_mapped(std::shared_ptr<const serving::TableImage> image) {
  const std::string& path = image->path();
  if (image->kind_name() != serving::kKindJoint) {
    throw TableIoError("JointLogicTable::open_mapped", "wrong table kind", path);
  }
  const serving::ValueSlabs values = serving::open_value_slabs(*image);
  if (values.quant != serving::Quantization::kNone) {
    throw TableIoError("JointLogicTable::open_mapped", "quantized image (use load())", path);
  }

  JointLogicTable table;
  table.config_ = decode_meta(*image);
  table.grid_ = table.config_.grid();
  const std::size_t expected = table.num_slabs() * table.num_tau_layers() * table.grid_.size() *
                               kNumAdvisories * kNumAdvisories;
  if (values.count != expected) {
    throw TableIoError("JointLogicTable::open_mapped", "size mismatch", path);
  }
  table.view_ = values.f32;
  table.view_size_ = values.count;
  table.image_ = std::move(image);
  return table;
}

void joint_action_costs(const JointLogicTable& table, const AircraftTrack& own,
                        const AircraftTrack& a, const AircraftTrack& b, Advisory ra,
                        const OnlineConfig& online, bool* active,
                        std::span<double, kNumAdvisories> out) {
  const TauEstimate tau_a = AcasXuLogic::estimate_tau(own, a, online);
  const TauEstimate tau_b = AcasXuLogic::estimate_tau(own, b, online);
  const bool a_active = tau_a.converging && tau_a.tau_s <= online.tau_alert_max_s;
  const bool b_active = tau_b.converging && tau_b.tau_s <= online.tau_alert_max_s;
  if (!a_active || !b_active) {
    *active = false;
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  *active = true;

  // Deterministic primary selection: smaller tau first, ties broken on the
  // relative state (so swapping a and b can never change the result).
  const double ha = units::m_to_ft(a.position_m.z - own.position_m.z);
  const double hb = units::m_to_ft(b.position_m.z - own.position_m.z);
  const double dha = units::m_to_ft(a.velocity_mps.z);
  const double dhb = units::m_to_ft(b.velocity_mps.z);
  bool a_primary = tau_a.tau_s < tau_b.tau_s;
  if (tau_a.tau_s == tau_b.tau_s) {
    a_primary = (ha != hb) ? ha < hb : dha <= dhb;
  }

  const double tau1 = a_primary ? tau_a.tau_s : tau_b.tau_s;
  const double delta = (a_primary ? tau_b.tau_s : tau_a.tau_s) - tau1;
  const double h1 = a_primary ? ha : hb;
  const double dh_int1 = a_primary ? dha : dhb;
  const double h2 = a_primary ? hb : ha;
  const double dh2 = a_primary ? dhb : dha;
  const double dh_own = units::m_to_ft(own.velocity_mps.z);

  table.action_costs(tau1, delta, h1, dh_own, dh_int1, h2,
                     table.config().secondary.sense_of_rate(dh2), ra, out);
}

std::array<double, kNumAdvisories> joint_action_costs(const JointLogicTable& table,
                                                      const AircraftTrack& own,
                                                      const AircraftTrack& a,
                                                      const AircraftTrack& b, Advisory ra,
                                                      const OnlineConfig& online, bool* active) {
  std::array<double, kNumAdvisories> costs{};
  joint_action_costs(table, own, a, b, ra, online, active, costs);
  return costs;
}

}  // namespace cav::acasx
