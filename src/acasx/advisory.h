// Resolution advisories (RAs) for the ACAS XU-style vertical logic.
//
// The action set mirrors the structure of the MIT-LL reports the paper's
// implementation was based on (ATC-360/371): clear-of-conflict, initial
// 1500 ft/min climb/descend advisories, and strengthened 2500 ft/min
// versions.  The advisory memory (the "s_RA" state variable) is what gives
// the generated logic hysteresis: strengthening and reversing are distinct,
// costed transitions rather than free re-decisions.
#pragma once

#include <array>
#include <cstdint>

namespace cav::acasx {

enum class Advisory : std::uint8_t {
  kCoc = 0,      ///< clear of conflict (no advisory; own-ship flies free)
  kClimb1500,    ///< climb at >= 1500 ft/min
  kDescend1500,  ///< descend at >= 1500 ft/min
  kClimb2500,    ///< strengthened climb at >= 2500 ft/min
  kDescend2500,  ///< strengthened descend at >= 2500 ft/min
};

inline constexpr std::size_t kNumAdvisories = 5;

inline constexpr std::array<Advisory, kNumAdvisories> kAllAdvisories{
    Advisory::kCoc, Advisory::kClimb1500, Advisory::kDescend1500, Advisory::kClimb2500,
    Advisory::kDescend2500};

/// Vertical sense of an advisory, used for coordination ("do not choose
/// maneuvers in the same direction", paper §VI.C) and reversal detection.
enum class Sense : std::uint8_t { kNone = 0, kClimb, kDescend };

constexpr Sense sense_of(Advisory a) {
  switch (a) {
    case Advisory::kClimb1500:
    case Advisory::kClimb2500: return Sense::kClimb;
    case Advisory::kDescend1500:
    case Advisory::kDescend2500: return Sense::kDescend;
    case Advisory::kCoc: return Sense::kNone;
  }
  return Sense::kNone;
}

/// Commanded target vertical rate in ft/min (0 for COC, where the own-ship
/// is not constrained).
constexpr double target_rate_fpm(Advisory a) {
  switch (a) {
    case Advisory::kCoc: return 0.0;
    case Advisory::kClimb1500: return 1500.0;
    case Advisory::kDescend1500: return -1500.0;
    case Advisory::kClimb2500: return 2500.0;
    case Advisory::kDescend2500: return -2500.0;
  }
  return 0.0;
}

constexpr bool is_strengthened(Advisory a) {
  return a == Advisory::kClimb2500 || a == Advisory::kDescend2500;
}

/// True when switching from `from` to `to` flips the vertical sense.
constexpr bool is_reversal(Advisory from, Advisory to) {
  const Sense sf = sense_of(from);
  const Sense st = sense_of(to);
  return sf != Sense::kNone && st != Sense::kNone && sf != st;
}

/// True when `to` keeps the sense of `from` but raises the commanded rate.
constexpr bool is_strengthening(Advisory from, Advisory to) {
  return sense_of(from) == sense_of(to) && sense_of(from) != Sense::kNone &&
         is_strengthened(to) && !is_strengthened(from);
}

constexpr const char* advisory_name(Advisory a) {
  switch (a) {
    case Advisory::kCoc: return "COC";
    case Advisory::kClimb1500: return "CL1500";
    case Advisory::kDescend1500: return "DES1500";
    case Advisory::kClimb2500: return "SCL2500";
    case Advisory::kDescend2500: return "SDES2500";
  }
  return "?";
}

}  // namespace cav::acasx
