#include "acasx/logic_table.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "serving/kernel.h"
#include "serving/table_codec.h"
#include "serving/table_image.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

using serving::TableIoError;

constexpr std::uint32_t kLegacyMagic = 0x41435831;  // "ACX1", the pre-serving format

// meta_f64 layout: 3 axes x (lo, hi), dynamics x 4, costs x 8.
constexpr std::size_t kMetaF64Count = 3 * 2 + 4 + 8;
// meta_u64 layout: 3 axis counts, tau_max.
constexpr std::size_t kMetaU64Count = 3 + 1;

void encode_meta(const AcasXuConfig& c, double* f64, std::uint64_t* u64) {
  const UniformAxis* axes[3] = {&c.space.h_ft, &c.space.dh_own_fps, &c.space.dh_int_fps};
  for (std::size_t i = 0; i < 3; ++i) {
    f64[2 * i] = axes[i]->lo();
    f64[2 * i + 1] = axes[i]->hi();
    u64[i] = axes[i]->count();
  }
  u64[3] = c.space.tau_max;
  double* d = f64 + 6;
  d[0] = c.dynamics.dt_s;
  d[1] = c.dynamics.accel_initial_fps2;
  d[2] = c.dynamics.accel_strength_fps2;
  d[3] = c.dynamics.accel_noise_sigma_fps2;
  double* k = f64 + 10;
  k[0] = c.costs.nmac_cost;
  k[1] = c.costs.nmac_h_ft;
  k[2] = c.costs.maneuver_cost;
  k[3] = c.costs.strengthened_maneuver_cost;
  k[4] = c.costs.level_reward;
  k[5] = c.costs.strengthen_cost;
  k[6] = c.costs.reversal_cost;
  k[7] = c.costs.termination_cost;
}

AcasXuConfig decode_meta(const serving::TableImage& image) {
  const auto f64 = image.slab_as<double>(serving::kSlabMetaF64);
  const auto u64 = image.slab_as<std::uint64_t>(serving::kSlabMetaU64);
  if (f64.size() != kMetaF64Count || u64.size() != kMetaU64Count) {
    throw TableIoError("LogicTable::load", "bad meta slab", image.path());
  }
  AcasXuConfig c;
  c.space.h_ft = UniformAxis(f64[0], f64[1], static_cast<std::size_t>(u64[0]));
  c.space.dh_own_fps = UniformAxis(f64[2], f64[3], static_cast<std::size_t>(u64[1]));
  c.space.dh_int_fps = UniformAxis(f64[4], f64[5], static_cast<std::size_t>(u64[2]));
  c.space.tau_max = static_cast<std::size_t>(u64[3]);
  c.dynamics.dt_s = f64[6];
  c.dynamics.accel_initial_fps2 = f64[7];
  c.dynamics.accel_strength_fps2 = f64[8];
  c.dynamics.accel_noise_sigma_fps2 = f64[9];
  c.costs.nmac_cost = f64[10];
  c.costs.nmac_h_ft = f64[11];
  c.costs.maneuver_cost = f64[12];
  c.costs.strengthened_maneuver_cost = f64[13];
  c.costs.level_reward = f64[14];
  c.costs.strengthen_cost = f64[15];
  c.costs.reversal_cost = f64[16];
  c.costs.termination_cost = f64[17];
  return c;
}

UniformAxis read_legacy_axis(std::ifstream& in) {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&lo), sizeof lo);
  in.read(reinterpret_cast<char*>(&hi), sizeof hi);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  return UniformAxis(lo, hi, static_cast<std::size_t>(count));
}

// DEPRECATED read path for the pre-serving "ACX1" format; kept for one
// release so cached tables survive the migration.  save() always writes
// the TableImage container now.
LogicTable load_legacy(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TableIoError("LogicTable::load", "cannot open", path);

  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kLegacyMagic) throw TableIoError("LogicTable::load", "bad magic", path);

  AcasXuConfig config;
  config.space.h_ft = read_legacy_axis(in);
  config.space.dh_own_fps = read_legacy_axis(in);
  config.space.dh_int_fps = read_legacy_axis(in);
  std::uint64_t tau_max = 0;
  in.read(reinterpret_cast<char*>(&tau_max), sizeof tau_max);
  config.space.tau_max = static_cast<std::size_t>(tau_max);

  double dyn[4];
  in.read(reinterpret_cast<char*>(dyn), sizeof dyn);
  config.dynamics.dt_s = dyn[0];
  config.dynamics.accel_initial_fps2 = dyn[1];
  config.dynamics.accel_strength_fps2 = dyn[2];
  config.dynamics.accel_noise_sigma_fps2 = dyn[3];
  double costs[8];
  in.read(reinterpret_cast<char*>(costs), sizeof costs);
  config.costs.nmac_cost = costs[0];
  config.costs.nmac_h_ft = costs[1];
  config.costs.maneuver_cost = costs[2];
  config.costs.strengthened_maneuver_cost = costs[3];
  config.costs.level_reward = costs[4];
  config.costs.strengthen_cost = costs[5];
  config.costs.reversal_cost = costs[6];
  config.costs.termination_cost = costs[7];

  LogicTable table(config);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (n != table.raw().size()) throw TableIoError("LogicTable::load", "size mismatch", path);
  in.read(reinterpret_cast<char*>(table.raw().data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw TableIoError("LogicTable::load", "truncated", path);
  return table;
}

}  // namespace

AcasXuConfig LogicTable::decode_config(const serving::TableImage& image) {
  return decode_meta(image);
}

LogicTable::LogicTable(const AcasXuConfig& config)
    : config_(config),
      grid_(config.space.grid()) {
  const std::size_t n =
      num_tau_layers() * grid_.size() * kNumAdvisories * kNumAdvisories;
  q_.assign(n, 0.0F);
}

void LogicTable::action_costs(double tau_s, double h_ft, double dh_own_fps, double dh_int_fps,
                              Advisory ra, std::span<double, kNumAdvisories> out) const {
  expect(num_entries() != 0, "logic table is solved/loaded");
  const serving::TauBracket t = serving::bracket_tau(tau_s, config_.space.tau_max);
  serving::grid_query<kNumAdvisories>(serving::F32View{values()}, grid_,
                                      {h_ft, dh_own_fps, dh_int_fps}, 0, t,
                                      static_cast<std::size_t>(ra), out.data());
}

std::vector<float>& LogicTable::raw() {
  expect(view_ == nullptr, "owning table (mapped views are read-only)");
  return q_;
}

const std::vector<float>& LogicTable::raw() const {
  expect(view_ == nullptr, "owning table (mapped views have no vector)");
  return q_;
}

void LogicTable::encode_config(const AcasXuConfig& config, serving::TableImageWriter& writer) {
  double meta_f64[kMetaF64Count];
  std::uint64_t meta_u64[kMetaU64Count];
  encode_meta(config, meta_f64, meta_u64);
  writer.add_slab(serving::kSlabMetaF64, serving::SlabType::kF64, meta_f64, sizeof meta_f64);
  writer.add_slab(serving::kSlabMetaU64, serving::SlabType::kU64, meta_u64, sizeof meta_u64);
}

void LogicTable::save(const std::string& path, serving::Quantization quant) const {
  serving::TableImageWriter writer(path, serving::kKindPairwise);
  encode_config(config_, writer);
  serving::write_value_slabs(writer, {values(), num_entries()}, quant);
  writer.finish();
}

LogicTable LogicTable::load(const std::string& path) {
  if (serving::peek_magic(path) == kLegacyMagic) return load_legacy(path);

  serving::TableImage image = serving::TableImage::open(path);
  if (image.kind_name() != serving::kKindPairwise) {
    throw TableIoError("LogicTable::load", "wrong table kind", path);
  }
  LogicTable table(decode_meta(image));
  const serving::ValueSlabs values = serving::open_value_slabs(image);
  if (values.count != table.q_.size()) {
    throw TableIoError("LogicTable::load", "size mismatch", path);
  }
  table.q_ = serving::dequantize_values(values);
  return table;
}

LogicTable LogicTable::open_mapped(const std::string& path) {
  return open_mapped(
      std::make_shared<const serving::TableImage>(serving::TableImage::open(path)));
}

LogicTable LogicTable::open_mapped(std::shared_ptr<const serving::TableImage> image) {
  const std::string& path = image->path();
  if (image->kind_name() != serving::kKindPairwise) {
    throw TableIoError("LogicTable::open_mapped", "wrong table kind", path);
  }
  const serving::ValueSlabs values = serving::open_value_slabs(*image);
  if (values.quant != serving::Quantization::kNone) {
    throw TableIoError("LogicTable::open_mapped", "quantized image (use load())", path);
  }

  LogicTable table;
  table.config_ = decode_meta(*image);
  table.grid_ = table.config_.space.grid();
  const std::size_t expected = table.num_tau_layers() * table.grid_.size() *
                               kNumAdvisories * kNumAdvisories;
  if (values.count != expected) {
    throw TableIoError("LogicTable::open_mapped", "size mismatch", path);
  }
  table.view_ = values.f32;
  table.view_size_ = values.count;
  table.image_ = std::move(image);
  return table;
}

}  // namespace cav::acasx
