#include "acasx/logic_table.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/expect.h"

namespace cav::acasx {
namespace {

constexpr std::uint32_t kMagic = 0x41435831;  // "ACX1"

void write_axis(std::ofstream& out, const UniformAxis& axis) {
  const double lo = axis.lo();
  const double hi = axis.hi();
  const std::uint64_t count = axis.count();
  out.write(reinterpret_cast<const char*>(&lo), sizeof lo);
  out.write(reinterpret_cast<const char*>(&hi), sizeof hi);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
}

UniformAxis read_axis(std::ifstream& in) {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&lo), sizeof lo);
  in.read(reinterpret_cast<char*>(&hi), sizeof hi);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  return UniformAxis(lo, hi, static_cast<std::size_t>(count));
}

}  // namespace

LogicTable::LogicTable(const AcasXuConfig& config)
    : config_(config),
      grid_(config.space.grid()) {
  const std::size_t n =
      num_tau_layers() * grid_.size() * kNumAdvisories * kNumAdvisories;
  q_.assign(n, 0.0F);
}

std::array<double, kNumAdvisories> LogicTable::action_costs(double tau_s, double h_ft,
                                                            double dh_own_fps, double dh_int_fps,
                                                            Advisory ra) const {
  expect(!q_.empty(), "logic table is solved/loaded");
  const double tau_max = static_cast<double>(config_.space.tau_max);
  const double tau = std::clamp(tau_s, 0.0, tau_max);
  const auto t_lo = static_cast<std::size_t>(tau);
  const std::size_t t_hi = std::min<std::size_t>(t_lo + 1, config_.space.tau_max);
  const double t_frac = tau - static_cast<double>(t_lo);

  const auto vertices = grid_.scatter({h_ft, dh_own_fps, dh_int_fps});

  std::array<double, kNumAdvisories> costs{};
  for (std::size_t ai = 0; ai < kNumAdvisories; ++ai) {
    const auto action = static_cast<Advisory>(ai);
    double lo = 0.0;
    double hi = 0.0;
    for (const auto& v : vertices) {
      lo += v.weight * static_cast<double>(at(t_lo, v.flat, ra, action));
      if (t_hi != t_lo) hi += v.weight * static_cast<double>(at(t_hi, v.flat, ra, action));
    }
    costs[ai] = (t_hi == t_lo) ? lo : lo * (1.0 - t_frac) + hi * t_frac;
  }
  return costs;
}

void LogicTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("LogicTable::save: cannot open " + path);

  out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  write_axis(out, config_.space.h_ft);
  write_axis(out, config_.space.dh_own_fps);
  write_axis(out, config_.space.dh_int_fps);
  const std::uint64_t tau_max = config_.space.tau_max;
  out.write(reinterpret_cast<const char*>(&tau_max), sizeof tau_max);

  const double dyn[4] = {config_.dynamics.dt_s, config_.dynamics.accel_initial_fps2,
                         config_.dynamics.accel_strength_fps2,
                         config_.dynamics.accel_noise_sigma_fps2};
  out.write(reinterpret_cast<const char*>(dyn), sizeof dyn);
  const double costs[8] = {config_.costs.nmac_cost,      config_.costs.nmac_h_ft,
                           config_.costs.maneuver_cost,  config_.costs.strengthened_maneuver_cost,
                           config_.costs.level_reward,   config_.costs.strengthen_cost,
                           config_.costs.reversal_cost,  config_.costs.termination_cost};
  out.write(reinterpret_cast<const char*>(costs), sizeof costs);

  const std::uint64_t n = q_.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(q_.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  if (!out) throw std::runtime_error("LogicTable::save: write failed for " + path);
}

LogicTable LogicTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("LogicTable::load: cannot open " + path);

  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kMagic) throw std::runtime_error("LogicTable::load: bad magic in " + path);

  AcasXuConfig config;
  config.space.h_ft = read_axis(in);
  config.space.dh_own_fps = read_axis(in);
  config.space.dh_int_fps = read_axis(in);
  std::uint64_t tau_max = 0;
  in.read(reinterpret_cast<char*>(&tau_max), sizeof tau_max);
  config.space.tau_max = static_cast<std::size_t>(tau_max);

  double dyn[4];
  in.read(reinterpret_cast<char*>(dyn), sizeof dyn);
  config.dynamics.dt_s = dyn[0];
  config.dynamics.accel_initial_fps2 = dyn[1];
  config.dynamics.accel_strength_fps2 = dyn[2];
  config.dynamics.accel_noise_sigma_fps2 = dyn[3];
  double costs[8];
  in.read(reinterpret_cast<char*>(costs), sizeof costs);
  config.costs.nmac_cost = costs[0];
  config.costs.nmac_h_ft = costs[1];
  config.costs.maneuver_cost = costs[2];
  config.costs.strengthened_maneuver_cost = costs[3];
  config.costs.level_reward = costs[4];
  config.costs.strengthen_cost = costs[5];
  config.costs.reversal_cost = costs[6];
  config.costs.termination_cost = costs[7];

  LogicTable table(config);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  if (n != table.q_.size()) throw std::runtime_error("LogicTable::load: size mismatch in " + path);
  in.read(reinterpret_cast<char*>(table.q_.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!in) throw std::runtime_error("LogicTable::load: truncated file " + path);
  return table;
}

}  // namespace cav::acasx
