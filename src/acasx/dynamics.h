// Vertical dynamics shared by the offline MDP transition model and (via
// the simulator's UAV agents) the closed-loop evaluation.
//
// Own-ship: while an advisory is active it accelerates deterministically at
// the advisory's acceleration limit toward the commanded rate (a UAV
// autopilot, no pilot delay); once clear of conflict the vertical rate is
// perturbed by white acceleration noise.  Intruder: always noise-driven.
//
// The offline solver approximates the Gaussian acceleration noise with a
// three-point sigma sampling {-sigma*sqrt(2), 0, +sigma*sqrt(2)} weighted
// {1/4, 1/2, 1/4}, which matches the noise mean and variance exactly — the
// "sampling techniques ... used in model construction" whose inaccuracy the
// paper lists among the validation challenges (§IV).
#pragma once

#include <array>

#include "acasx/advisory.h"
#include "acasx/config.h"

namespace cav::acasx {

/// One discrete noise hypothesis: vertical-acceleration offset + weight.
struct NoiseSample {
  double accel_fps2;
  double weight;
};

/// The three-point sigma approximation for a given noise sigma.
std::array<NoiseSample, 3> sigma_samples(double sigma_fps2);

/// Deterministic part of the own-ship's rate response: new vertical rate
/// after dt seconds of complying with `advisory` starting from rate
/// `dh_fps` (ft/s).  For COC the deterministic part is "hold rate" (noise
/// is added separately by the caller).
double advisory_rate_response(double dh_fps, Advisory advisory, const DynamicsConfig& dyn);

/// Relative-altitude update over one step given old/new rates of both
/// aircraft (trapezoidal integration).  h is intruder-above-own, ft.
double integrate_relative_altitude(double h_ft, double dh_own_old, double dh_own_new,
                                   double dh_int_old, double dh_int_new, double dt_s);

/// Per-step cost of displaying advisory `a` while the previous advisory was
/// `ra` (maneuver/level costs plus strengthen/reversal surcharges).
double action_cost(Advisory ra, Advisory a, const CostModel& costs);

}  // namespace cav::acasx
