#include "acasx/joint_solver.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "acasx/dynamics.h"
#include "acasx/stencil_image.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

/// Value function for one tau layer of one slab:
/// v[grid4_flat * kNumAdvisories + ra].
using ValueLayer = std::vector<float>;

struct StencilRow {
  struct Group {
    double pair_weight;
    std::vector<GridVertexWeight> entries;
  };
  std::vector<Group> groups;
};

/// Record the stencil row for one (joint grid point, action): the pairwise
/// noise/dynamics walk for (h1, dh_own, dh_int1) plus the deterministic
/// secondary update for h2, scattered jointly onto the 4-D grid.
StencilRow build_stencil_row(const GridN<4>& grid, double h1, double dh_own, double dh_int1,
                             double h2, double dh2_rep, Advisory action,
                             const DynamicsConfig& dyn,
                             const std::array<NoiseSample, 3>& noise) {
  const double dt = dyn.dt_s;
  const bool own_noisy = (action == Advisory::kCoc);
  const double dh_own_cmd = advisory_rate_response(dh_own, action, dyn);

  StencilRow row;
  row.groups.reserve(noise.size() * noise.size());
  for (const NoiseSample& own_n : noise) {
    const double w_own = own_noisy ? own_n.weight : (own_n.accel_fps2 == 0.0 ? 1.0 : 0.0);
    if (w_own == 0.0) continue;
    const double dh_own_new =
        std::clamp(dh_own_cmd + (own_noisy ? own_n.accel_fps2 * dt : 0.0),
                   grid.axis(1).lo(), grid.axis(1).hi());
    // The secondary's altitude responds to the own-ship's rate change with
    // the same trapezoidal integration as the primary; its own rate is the
    // slab's constant representative rate (off-grid h2' clamps at the h2
    // axis boundary via scatter, like every other table boundary).
    const double h2_new =
        integrate_relative_altitude(h2, dh_own, dh_own_new, dh2_rep, dh2_rep, dt);
    for (const NoiseSample& int_n : noise) {
      const double dh_int1_new =
          std::clamp(dh_int1 + int_n.accel_fps2 * dt, grid.axis(2).lo(), grid.axis(2).hi());
      const double h1_new =
          integrate_relative_altitude(h1, dh_own, dh_own_new, dh_int1, dh_int1_new, dt);
      row.groups.push_back(
          {w_own * int_n.weight, grid.scatter({h1_new, dh_own_new, dh_int1_new, h2_new})});
    }
  }
  return row;
}

StencilArrays build_sense_stencils(const GridN<4>& grid, double dh2_rep,
                                   const DynamicsConfig& dyn,
                                   const std::array<NoiseSample, 3>& noise, ThreadPool* pool) {
  const std::size_t num_points = grid.size();
  const std::size_t num_rows = num_points * kNumAdvisories;

  std::vector<StencilRow> rows(num_rows);
  const auto build_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const auto idx = grid.unflatten(g);
      const double h1 = grid.axis(0).value(idx[0]);
      const double dh_own = grid.axis(1).value(idx[1]);
      const double dh_int1 = grid.axis(2).value(idx[2]);
      const double h2 = grid.axis(3).value(idx[3]);
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        rows[g * kNumAdvisories + a] = build_stencil_row(
            grid, h1, dh_own, dh_int1, h2, dh2_rep, static_cast<Advisory>(a), dyn, noise);
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for_ranges(num_points, build_range);
  } else {
    build_range(0, num_points);
  }

  StencilArrays set;
  set.group_offsets.assign(num_rows + 1, 0);
  std::size_t num_groups = 0;
  std::size_t num_entries = 0;
  for (std::size_t r = 0; r < num_rows; ++r) {
    num_groups += rows[r].groups.size();
    set.group_offsets[r + 1] = num_groups;
    for (const auto& group : rows[r].groups) num_entries += group.entries.size();
  }
  set.group_weight.reserve(num_groups);
  set.entry_offsets.reserve(num_groups + 1);
  set.entry_offsets.push_back(0);
  set.vertex.reserve(num_entries);
  set.weight.reserve(num_entries);
  for (auto& row : rows) {
    for (const auto& group : row.groups) {
      set.group_weight.push_back(group.pair_weight);
      for (const auto& e : group.entries) {
        set.vertex.push_back(static_cast<std::uint32_t>(e.flat));
        set.weight.push_back(e.weight);
      }
      set.entry_offsets.push_back(set.vertex.size());
    }
    row = StencilRow{};  // release per-row heap early; caps peak memory at ~1x
  }
  return set;
}

JointStencilSets build_stencils_for(const JointConfig& config, ThreadPool* pool,
                                    double& build_seconds) {
  const auto build_start = std::chrono::steady_clock::now();
  const GridN<4> grid = config.grid();
  const auto noise = sigma_samples(config.dynamics.accel_noise_sigma_fps2);
  JointStencilSets sets;
  for (std::size_t s = 0; s < kNumSecondarySenses; ++s) {
    const double dh2_rep =
        config.secondary.representative_rate_fps(static_cast<SecondarySense>(s));
    sets.per_sense[s] = StencilSet::adopt(
        build_sense_stencils(grid, dh2_rep, config.dynamics, noise, pool));
  }
  build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  return sets;
}

JointLogicTable run_joint_induction(const JointConfig& config, const JointStencilSets& stencils,
                                    ThreadPool* pool, JointSolveStats* stats,
                                    std::chrono::steady_clock::time_point start_time) {
  JointLogicTable table(config);
  for (std::size_t s = 0; s < kNumSecondarySenses; ++s) {
    expect(stencils.per_sense[s].group_offsets.size() ==
               table.grid().size() * kNumAdvisories + 1,
           "joint stencils were built for this grid");
  }
  // Each slab is contiguous in the table (slab index slowest), so the
  // per-slab kernel writes straight into the table's slab slice.
  const std::size_t slab_floats =
      table.num_tau_layers() * table.num_grid_points() * kNumAdvisories * kNumAdvisories;
  const std::span<float> q{table.raw()};
  for (std::size_t db = 0; db < config.secondary.num_delta_bins; ++db) {
    for (std::size_t s = 0; s < kNumSecondarySenses; ++s) {
      const std::size_t slab = config.slab_index(db, static_cast<SecondarySense>(s));
      solve_joint_slab(config, stencils.per_sense[s], db, static_cast<SecondarySense>(s), pool,
                       q.subspan(slab * slab_floats, slab_floats));
    }
  }
  if (stats != nullptr) {
    stats->states_per_layer = table.num_grid_points() * kNumAdvisories;
    stats->layers = table.num_tau_layers();
    stats->slabs = table.num_slabs();
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  }
  return table;
}

}  // namespace

void solve_joint_slab(const JointConfig& config, const StencilSet& stencils,
                      std::size_t delta_bin, SecondarySense sense, ThreadPool* pool,
                      std::span<float> slab_out) {
  const GridN<4> grid = config.grid();
  const std::size_t num_points = grid.size();
  const std::size_t tau_max = config.space.tau_max;
  constexpr std::size_t kQPerPoint = kNumAdvisories * kNumAdvisories;
  expect(stencils.group_offsets.size() == num_points * kNumAdvisories + 1,
         "joint stencils were built for this grid");
  expect(slab_out.size() == (tau_max + 1) * num_points * kQPerPoint,
         "slab buffer matches [tau][grid][ra][action]");
  (void)sense;  // the sense selects `stencils`; the recursion itself is sense-blind

  // The primary's CPA layer inside this slab: delta bin values must land
  // on integer tau layers (SecondaryAbstraction's contract) and inside the
  // horizon, or the primary's conflict would never be charged.
  const double delta_layers_d = config.secondary.delta_value_s(delta_bin) / config.dynamics.dt_s;
  const auto delta_layers = static_cast<std::size_t>(std::lround(delta_layers_d));
  expect(std::abs(delta_layers_d - static_cast<double>(delta_layers)) < 1e-9,
         "delta_step_s is a multiple of the dynamics step");
  expect(delta_layers <= tau_max, "every delta bin lies inside the tau horizon");

  const auto nmac1 = [&](std::size_t g) -> double {
    const auto idx = grid.unflatten(g);
    const double h1 = grid.axis(0).value(idx[0]);
    return std::abs(h1) <= config.costs.nmac_h_ft ? config.costs.nmac_cost : 0.0;
  };

  // Terminal layer (tau = 0): the SECONDARY's CPA resolves now; the
  // primary's resolves here too when its offset bin is 0.  Like the
  // pairwise solver, Q at tau=0 holds the terminal value for every
  // (ra, action) so online interpolation near tau=0 degrades gracefully.
  ValueLayer v_prev(num_points * kNumAdvisories, 0.0F);
  for (std::size_t g = 0; g < num_points; ++g) {
    const auto idx = grid.unflatten(g);
    const double h2 = grid.axis(3).value(idx[3]);
    double terminal = std::abs(h2) <= config.costs.nmac_h_ft ? config.costs.nmac_cost : 0.0;
    if (delta_layers == 0) terminal += nmac1(g);
    const auto terminal_f = static_cast<float>(terminal);
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      v_prev[g * kNumAdvisories + ra] = terminal_f;
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        slab_out[g * kQPerPoint + ra * kNumAdvisories + a] = terminal_f;
      }
    }
  }

  ValueLayer v_cur(num_points * kNumAdvisories, 0.0F);

  for (std::size_t tau = 1; tau <= tau_max; ++tau) {
    // The primary threat's CPA is reached at this layer: every state pays
    // its |h1| NMAC charge on top of the Bellman backup, mirroring how the
    // terminal layer charges the secondary.
    const bool primary_cpa = (tau == delta_layers);
    float* const q_layer = slab_out.data() + tau * num_points * kQPerPoint;
    const auto sweep_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t g = begin; g < end; ++g) {
        std::array<double, kNumAdvisories> next_value{};
        for (std::size_t a = 0; a < kNumAdvisories; ++a) {
          const std::size_t r = g * kNumAdvisories + a;
          double acc = 0.0;
          for (std::size_t j = stencils.group_offsets[r]; j < stencils.group_offsets[r + 1];
               ++j) {
            double value = 0.0;
            for (std::size_t k = stencils.entry_offsets[j]; k < stencils.entry_offsets[j + 1];
                 ++k) {
              value += stencils.weight[k] *
                       static_cast<double>(v_prev[stencils.vertex[k] * kNumAdvisories + a]);
            }
            acc += stencils.group_weight[j] * value;
          }
          next_value[a] = acc;
        }
        const double bonus = primary_cpa ? nmac1(g) : 0.0;
        for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
          double best = std::numeric_limits<double>::infinity();
          for (std::size_t a = 0; a < kNumAdvisories; ++a) {
            const double q = bonus +
                             action_cost(static_cast<Advisory>(ra), static_cast<Advisory>(a),
                                         config.costs) +
                             next_value[a];
            q_layer[g * kQPerPoint + ra * kNumAdvisories + a] = static_cast<float>(q);
            best = std::min(best, q);
          }
          v_cur[g * kNumAdvisories + ra] = static_cast<float>(best);
        }
      }
    };
    if (pool != nullptr) {
      pool->parallel_for_ranges(num_points, sweep_range);
    } else {
      sweep_range(0, num_points);
    }
    v_prev.swap(v_cur);
  }
}

JointOfflineSolver::JointOfflineSolver(const JointConfig& config, ThreadPool* pool)
    : config_(config) {
  stencils_ = build_stencils_for(config, pool, build_seconds_);
}

void JointOfflineSolver::save_stencils(const std::string& path) const {
  save_joint_stencil_image(path, config_, stencils_.per_sense);
}

JointOfflineSolver JointOfflineSolver::open_stencils(const std::string& path) {
  JointOfflineSolver solver;
  solver.stencils_.per_sense = open_joint_stencil_image(path, &solver.config_);
  return solver;
}

JointLogicTable JointOfflineSolver::solve(const CostModel& costs, ThreadPool* pool,
                                          JointSolveStats* stats) const {
  JointConfig revised = config_;
  revised.costs = costs;
  const auto start_time = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    stats->stencil_entries = stencils_.num_entries();
    stats->stencil_build_seconds = 0.0;  // amortized at construction
  }
  return run_joint_induction(revised, stencils_, pool, stats, start_time);
}

JointLogicTable JointOfflineSolver::solve(ThreadPool* pool, JointSolveStats* stats) const {
  return solve(config_.costs, pool, stats);
}

JointLogicTable solve_joint_table(const JointConfig& config, ThreadPool* pool,
                                  JointSolveStats* stats) {
  const auto start_time = std::chrono::steady_clock::now();
  double build_seconds = 0.0;
  const JointStencilSets stencils = build_stencils_for(config, pool, build_seconds);
  if (stats != nullptr) {
    stats->stencil_entries = stencils.num_entries();
    stats->stencil_build_seconds = build_seconds;
  }
  return run_joint_induction(config, stencils, pool, stats, start_time);
}

}  // namespace cav::acasx
