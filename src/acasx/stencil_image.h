// Serialization of compiled successor stencils (acasx/stencil_set.h) as
// serving::TableImage files — the distributed solve's transport for the
// transition structure.
//
// A pairwise image (kind "STEN") holds the config meta slabs written by
// LogicTable::encode_config plus one slab per stencil array:
//
//   group_offsets  u64[num_points * kNumAdvisories + 1]
//   group_weight   f64[num_groups]
//   entry_offsets  u64[num_groups + 1]
//   vertex         u32[num_entries]
//   weight         f64[num_entries]
//
// A joint image (kind "STE2") holds JointLogicTable::encode_config meta
// plus the same five slabs per secondary sense class, prefixed "s0." /
// "s1." / "s2." (15 + 2 slabs — comfortably inside the container's fixed
// 32-entry directory).
//
// The open_* loaders return zero-copy views whose `storage` keeps the
// mmap alive, and VALIDATE the arrays against the embedded config grid
// (offset monotonicity, row count, vertex range) before handing them to
// the sweep kernels — a stencil image for the wrong discretization, or a
// corrupted one, throws serving::TableIoError instead of scattering onto
// out-of-range vertices.
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>

#include "acasx/config.h"
#include "acasx/joint_table.h"
#include "acasx/stencil_set.h"

namespace cav::acasx {

inline constexpr std::string_view kKindPairStencils = "STEN";
inline constexpr std::string_view kKindJointStencils = "STE2";

/// Write `stencils` (compiled for `config`) as a "STEN" image.
void save_stencil_image(const std::string& path, const AcasXuConfig& config,
                        const StencilSet& stencils);

/// mmap a "STEN" image back.  Writes the embedded config to *config_out
/// (must be non-null) and returns validated zero-copy views.
StencilSet open_stencil_image(const std::string& path, AcasXuConfig* config_out);

/// Write the per-sense stencil sets (compiled for `config`) as a "STE2"
/// image.  `per_sense` must have kNumSecondarySenses elements, indexed by
/// SecondarySense.
void save_joint_stencil_image(const std::string& path, const JointConfig& config,
                              std::span<const StencilSet> per_sense);

/// mmap a "STE2" image back; every sense set is validated independently.
std::array<StencilSet, kNumSecondarySenses> open_joint_stencil_image(const std::string& path,
                                                                     JointConfig* config_out);

}  // namespace cav::acasx
