// Configuration of the ACAS XU-style MDP: state-space discretization,
// vertical dynamics model, and the cost ("preference") model.
//
// The paper's §III preference numbers are kept: a collision state costs
// 10000, an active maneuver costs 100 per step, level flight is rewarded
// 50 per step ("in order to make the own-ship level off if there is no
// collision risk").  Strengthen/reversal surcharges follow the structure of
// the ACAS X reports and give the logic its hysteresis.
#pragma once

#include <cstddef>

#include "util/grid.h"
#include "util/units.h"

namespace cav::acasx {

/// Discretization of the continuous state variables.  The MDP state is
/// (h, dh_own, dh_int, tau, ra):
///   h       relative altitude of the intruder above the own-ship [ft]
///   dh_own  own-ship vertical rate [ft/s]
///   dh_int  intruder vertical rate [ft/s]
///   tau     time to loss of horizontal separation [s], integer layers
///   ra      advisory currently displayed (advisory memory)
struct StateSpaceConfig {
  UniformAxis h_ft{-1000.0, 1000.0, 21};
  UniformAxis dh_own_fps{-2500.0 / 60.0, 2500.0 / 60.0, 21};
  UniformAxis dh_int_fps{-2500.0 / 60.0, 2500.0 / 60.0, 21};
  std::size_t tau_max = 40;  ///< layers tau = 0..tau_max (ACAS XU horizon, "20-40 s ahead")

  /// THE solver grid over (h, dh_own, dh_int).  Every consumer (LogicTable,
  /// stencil builds) goes through here so their geometries cannot diverge.
  GridN<3> grid() const { return GridN<3>({h_ft, dh_own_fps, dh_int_fps}); }

  /// The laptop-scale default used across benches (matches the reports'
  /// order of state count after our deliberate coarsening; see DESIGN.md).
  static StateSpaceConfig standard() { return {}; }

  /// Small space for unit tests (fast to solve, same code paths).  The h
  /// step stays at 100 ft so the NMAC threshold is resolved; range and
  /// rate axes shrink instead.
  static StateSpaceConfig coarse() {
    StateSpaceConfig c;
    c.h_ft = UniformAxis(-800.0, 800.0, 17);
    c.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 7);
    c.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 7);
    c.tau_max = 30;
    return c;
  }

  /// Finer grid for the discretization-sensitivity ablation (E9).
  static StateSpaceConfig fine() {
    StateSpaceConfig c;
    c.h_ft = UniformAxis(-1000.0, 1000.0, 41);
    c.dh_own_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 27);
    c.dh_int_fps = UniformAxis(-2500.0 / 60.0, 2500.0 / 60.0, 27);
    c.tau_max = 40;
    return c;
  }
};

/// Vertical dynamics model shared by the offline MDP and the simulator's
/// UAV response, so that the optimized logic and the evaluation environment
/// agree on maneuver capability (differences are injected deliberately in
/// the ablation benches).
struct DynamicsConfig {
  double dt_s = 1.0;  ///< decision/transition period

  /// Own-ship vertical acceleration when complying with an initial
  /// advisory, ft/s^2 (g/4, the classic pilot-response assumption; a UAV
  /// autopilot responds without delay).
  double accel_initial_fps2 = units::kGravityFtS2 / 4.0;
  /// Acceleration for strengthened advisories, ft/s^2 (g/3).
  double accel_strength_fps2 = units::kGravityFtS2 / 3.0;

  /// Std-dev of the white vertical acceleration noise, ft/s^2, applied to
  /// the intruder always and to the own-ship while clear of conflict.
  double accel_noise_sigma_fps2 = 3.0;
};

/// The preference ("reward/punishment") model, §III numbers.
struct CostModel {
  double nmac_cost = 10000.0;    ///< terminal cost when |h| <= nmac_h_ft at tau = 0
  double nmac_h_ft = 100.0;      ///< NMAC vertical threshold
  double maneuver_cost = 100.0;  ///< per-step cost of an active 1500 ft/min advisory
  double strengthened_maneuver_cost = 150.0;  ///< per-step cost of a 2500 ft/min advisory
  double level_reward = 50.0;    ///< per-step reward (negative cost) for COC
  double strengthen_cost = 20.0; ///< one-off surcharge for strengthening an advisory
  double reversal_cost = 300.0;  ///< one-off surcharge for reversing sense
  /// One-off surcharge for terminating an active advisory (ra != COC,
  /// action = COC).  Suppresses alert chattering: without it the logic
  /// drops the advisory the moment separation looks adequate and re-alerts
  /// when disturbance narrows it again.
  double termination_cost = 100.0;
};

struct AcasXuConfig {
  StateSpaceConfig space;
  DynamicsConfig dynamics;
  CostModel costs;

  static AcasXuConfig standard() { return {}; }
  static AcasXuConfig coarse() {
    AcasXuConfig c;
    c.space = StateSpaceConfig::coarse();
    return c;
  }
};

}  // namespace cav::acasx
