// Offline generation of the ACAS XU logic table by dynamic programming.
//
// Because tau (time to loss of horizontal separation) decrements
// deterministically by one per step, the MDP is layered in tau and the
// optimal costs are computed by a single backward-induction pass:
//
//   V(0, s)  = nmac_cost if |h| <= nmac_h else 0          (terminal layer)
//   Q(t, s, a) = action_cost(ra, a)
//              + sum_noise w * V(t-1, interp(h', dh_own', dh_int'), ra'=a)
//   V(t, s)  = min_a Q(t, s, a)
//
// Off-grid successor states are scattered onto grid vertices with
// multilinear weights — the interpolation step whose fidelity §IV calls
// out as a validation concern (ablated in bench_ablations).
//
// The successor stencil of each (grid point, action) — which vertices of
// the next layer receive probability mass, and with what weight — does not
// depend on tau, so the default solver PRECOMPILES all stencils once
// (noise pairs and interpolation weights folded together; acasx/
// stencil_set.h) and reduces each layer's expected-value computation to a
// sparse dot product over the previous layer, parallelized across grid
// points.  SolverMode::kReference keeps the original per-layer
// recomputation as a cross-check.
//
// The per-layer sweep kernel is exposed (sweep_pair_layer_range) so the
// distributed solve (dist/solve_driver.h) can hand grid-point slices of a
// tau layer to worker processes and concatenate the results bit-
// identically to the serial pass.
//
// This is the paper's "Optimization" box in Fig. 1 (MDP model -> logic
// table); footnote 2 reports <5 min on a laptop for the real model — the
// bench_value_iteration binary reports our timing.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "acasx/logic_table.h"
#include "acasx/stencil_set.h"
#include "util/thread_pool.h"

namespace cav::acasx {

struct SolveStats {
  std::size_t states_per_layer = 0;
  std::size_t layers = 0;
  double wall_seconds = 0.0;
  std::size_t stencil_entries = 0;     ///< total (vertex, weight) pairs precompiled
  double stencil_build_seconds = 0.0;  ///< time spent precompiling stencils
};

enum class SolverMode {
  kPrecompiledStencils,  ///< default: stencils built once, sparse-dot sweeps
  kReference,            ///< original path: scatter recomputed every layer
};

/// Solve the MDP defined by `config`; parallelizes the stencil build and
/// each tau layer over `pool` when provided.  Both modes, with or without
/// a pool, produce bit-identical tables: the stencils preserve the
/// reference kernel's two-level accumulation order, and each grid point's
/// writes are independent of sweep scheduling.
LogicTable solve_logic_table(const AcasXuConfig& config, ThreadPool* pool = nullptr,
                             SolveStats* stats = nullptr,
                             SolverMode mode = SolverMode::kPrecompiledStencils);

/// Fill the terminal (tau = 0) value layer: out[g * kNumAdvisories + ra],
/// sized num_grid_points * kNumAdvisories.  Shared by the in-process
/// induction and the distributed solve so both recursions start from
/// bit-identical values.
void fill_pair_terminal_layer(const AcasXuConfig& config, std::span<float> out);

/// Apply one tau layer's stencil sweep to grid points [begin, end), given
/// the full previous value layer.  Writes
///   q_out[(g - begin) * kNumAdvisories^2 + ra * kNumAdvisories + a]
///   v_out[(g - begin) * kNumAdvisories + ra]
/// — exactly the per-point kernel the serial induction applies, exposed so
/// worker processes can compute slices whose concatenation is
/// bit-identical to the single-process solve.
void sweep_pair_layer_range(const AcasXuConfig& config, const StencilSet& stencils,
                            std::span<const float> v_prev, std::size_t begin, std::size_t end,
                            float* q_out, float* v_out);

/// The compiled transition structure of the ACAS XU MDP: the successor
/// stencils depend only on the state-space discretization and the dynamics
/// model, NOT on the cost ("preference") model.  Model-revision loops that
/// re-tune punishments and re-solve (the paper's Fig. 1 revision edge, and
/// any GA over cost weights) therefore compile once and call solve() per
/// revision, skipping the stencil build — the ACAS analogue of
/// mdp::CompiledMdp::refresh_costs.
///
/// Every solve() is bit-identical to solve_logic_table() of the matching
/// config in kPrecompiledStencils mode (same kernels, same accumulation
/// order).
class CompiledAcasModel {
 public:
  /// Build the stencils for config.space + config.dynamics; `pool`
  /// parallelizes the build.  config.costs is kept as the default cost
  /// model for the zero-argument solve().
  explicit CompiledAcasModel(const AcasXuConfig& config, ThreadPool* pool = nullptr);

  /// Solve the tau recursion with a revised cost model (cost-only revision:
  /// space and dynamics stay as compiled).  The returned table's config()
  /// carries the revised costs.
  LogicTable solve(const CostModel& costs, ThreadPool* pool = nullptr,
                   SolveStats* stats = nullptr) const;

  /// Solve with the cost model the structure was compiled with.
  LogicTable solve(ThreadPool* pool = nullptr, SolveStats* stats = nullptr) const;

  /// Dump the compiled stencils (plus the config they were built under)
  /// into a "STEN" serving::TableImage, and mmap one back.  This is how
  /// the distributed solve ships the transition structure to workers:
  /// the driver compiles (or reuses) one image, every worker open_stencils
  /// it, and the page cache shares a single physical copy.  open_stencils
  /// validates the arrays against the embedded config grid and throws
  /// serving::TableIoError on any shape mismatch.
  void save_stencils(const std::string& path) const;
  static CompiledAcasModel open_stencils(const std::string& path);

  const AcasXuConfig& config() const { return config_; }
  const StencilSet& stencils() const { return stencils_; }
  std::size_t stencil_entries() const { return stencils_.num_entries(); }
  double stencil_build_seconds() const { return build_seconds_; }

 private:
  CompiledAcasModel() = default;

  AcasXuConfig config_;
  StencilSet stencils_;
  double build_seconds_ = 0.0;
};

}  // namespace cav::acasx
