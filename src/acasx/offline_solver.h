// Offline generation of the ACAS XU logic table by dynamic programming.
//
// Because tau (time to loss of horizontal separation) decrements
// deterministically by one per step, the MDP is layered in tau and the
// optimal costs are computed by a single backward-induction pass:
//
//   V(0, s)  = nmac_cost if |h| <= nmac_h else 0          (terminal layer)
//   Q(t, s, a) = action_cost(ra, a)
//              + sum_noise w * V(t-1, interp(h', dh_own', dh_int'), ra'=a)
//   V(t, s)  = min_a Q(t, s, a)
//
// Off-grid successor states are scattered onto grid vertices with
// multilinear weights — the interpolation step whose fidelity §IV calls
// out as a validation concern (ablated in bench_ablations).
//
// This is the paper's "Optimization" box in Fig. 1 (MDP model -> logic
// table); footnote 2 reports <5 min on a laptop for the real model — the
// bench_value_iteration binary reports our timing.
#pragma once

#include <cstddef>

#include "acasx/logic_table.h"
#include "util/thread_pool.h"

namespace cav::acasx {

struct SolveStats {
  std::size_t states_per_layer = 0;
  std::size_t layers = 0;
  double wall_seconds = 0.0;
};

/// Solve the MDP defined by `config`; parallelizes within each tau layer
/// over `pool` when provided.
LogicTable solve_logic_table(const AcasXuConfig& config, ThreadPool* pool = nullptr,
                             SolveStats* stats = nullptr);

}  // namespace cav::acasx
