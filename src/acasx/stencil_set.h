// Precompiled successor stencils — the shared representation behind both
// the pairwise (offline_solver.h) and joint (joint_solver.h) DP solvers.
//
// For every (grid point, action) row we record the next-layer grid
// vertices that receive probability mass, grouped by noise-pair exactly
// as the reference kernel visits them:
//
//   row (g, a) -> groups [group_offsets[r], group_offsets[r+1])
//   group j    -> pair weight group_weight[j] and interpolation entries
//                 [entry_offsets[j], entry_offsets[j+1])  (vertex, weight)
//
// Keeping the two-level accumulation (inner interpolation sum, then the
// pair-weighted outer sum) preserves the reference kernel's floating-
// point evaluation order, so the stencil sweep is BIT-IDENTICAL to the
// per-layer recomputation — only ~100x cheaper.
//
// Since PR 9 the arrays live behind read-only views: a StencilSet either
// aliases owned vectors (the build path) or the mapping of a stencil
// TableImage (acasx/stencil_image.h), so worker processes mmap compiled
// stencils instead of recompiling them — zero-copy in both modes, and N
// workers share one physical copy through the page cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace cav::acasx {

/// Owned stencil arrays — what a build produces.  Offsets are stored as
/// uint64 so the in-memory layout equals the on-disk slab layout.
struct StencilArrays {
  std::vector<std::uint64_t> group_offsets;  ///< row r -> group range
  std::vector<double> group_weight;          ///< per-group noise-pair probability
  std::vector<std::uint64_t> entry_offsets;  ///< group -> entry range
  std::vector<std::uint32_t> vertex;         ///< flat grid index of successor vertex
  std::vector<double> weight;                ///< multilinear interpolation weight
};

/// Read-only view of one compiled stencil set.  Cheap to copy; `storage`
/// keeps the viewed memory alive (the owned arrays, or the mmap'd image).
struct StencilSet {
  std::span<const std::uint64_t> group_offsets;
  std::span<const double> group_weight;
  std::span<const std::uint64_t> entry_offsets;
  std::span<const std::uint32_t> vertex;
  std::span<const double> weight;
  std::shared_ptr<const void> storage;

  std::size_t num_entries() const { return vertex.size(); }

  /// Wrap freshly built arrays (the compile path).
  static StencilSet adopt(StencilArrays arrays) {
    auto owned = std::make_shared<const StencilArrays>(std::move(arrays));
    StencilSet set;
    set.group_offsets = owned->group_offsets;
    set.group_weight = owned->group_weight;
    set.entry_offsets = owned->entry_offsets;
    set.vertex = owned->vertex;
    set.weight = owned->weight;
    set.storage = owned;
    return set;
  }
};

}  // namespace cav::acasx
