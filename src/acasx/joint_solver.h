// Offline generation of the joint-threat logic table (joint_table.h) by
// dynamic programming — the PR 1 stencil machinery lifted to the 4-D joint
// grid.
//
// The recursion is layered on tau-to-the-SECONDARY's-CPA and runs once per
// (delta bin, sense class) slab, since neither changes mid-episode:
//
//   V(0, s)   = nmac2(h2) [+ nmac1(h1) when delta = 0]      (terminal)
//   Q(t, s, a) = [t == delta] * nmac1(h1)                    (primary CPA)
//              + action_cost(ra, a)
//              + sum_noise w * V(t-1, joint_successor, ra'=a)
//   V(t, s)   = min_a Q(t, s, a)
//
// The joint successor scatters (h1', dh_own', dh_int1', h2') onto the 4-D
// grid with multilinear weights; h2 evolves deterministically at the
// slab's representative sense rate, so the successor stencil of each
// (grid point, action) depends on the sense class but not on tau or the
// delta bin.  The solver therefore precompiles ONE stencil set per sense
// class (shared StencilSet layout, acasx/stencil_set.h) and reuses it
// across every delta bin and tau layer — and, like CompiledAcasModel,
// across COST REVISIONS: JointOfflineSolver keeps the stencils and
// re-solves per CostModel bit-identically (the PR 2 refresh_costs path,
// so revision loops never pay the stencil build twice).
//
// Slabs are mutually independent (each starts its own terminal layer), so
// the whole-table solve is just a loop over solve_joint_slab — the same
// per-slab kernel the distributed solve (dist/solve_driver.h) hands to
// worker processes, whose outputs concatenate bit-identically.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "acasx/joint_table.h"
#include "acasx/stencil_set.h"
#include "util/thread_pool.h"

namespace cav::acasx {

/// One stencil set per secondary sense class (the only thing the
/// abstracted secondary changes about the transition kernel).
struct JointStencilSets {
  std::array<StencilSet, kNumSecondarySenses> per_sense;

  std::size_t num_entries() const {
    std::size_t n = 0;
    for (const auto& s : per_sense) n += s.num_entries();
    return n;
  }
};

struct JointSolveStats {
  std::size_t states_per_layer = 0;    ///< grid4 x advisory-memory states
  std::size_t layers = 0;              ///< tau layers per slab
  std::size_t slabs = 0;               ///< (delta bin, sense class) slabs
  double wall_seconds = 0.0;           ///< total solve wall time
  std::size_t stencil_entries = 0;     ///< (vertex, weight) pairs, all sense sets
  double stencil_build_seconds = 0.0;  ///< time spent precompiling stencils
};

/// Solve one (delta bin, sense class) slab's full tau recursion into
/// `slab_out`, a buffer of num_tau_layers * grid4 * kNumAdvisories^2
/// floats laid out [tau][grid4][ra][action] — exactly the table's slab
/// layout, so a slab computed in a worker process and memcpy'd into the
/// table is bit-identical to the serial in-process solve.  `stencils`
/// must be the set compiled for `sense`.
void solve_joint_slab(const JointConfig& config, const StencilSet& stencils,
                      std::size_t delta_bin, SecondarySense sense, ThreadPool* pool,
                      std::span<float> slab_out);

/// Compile-once / solve-per-revision joint solver.  The stencils depend
/// only on the state-space discretization, the dynamics model, and the
/// secondary abstraction — NOT on the cost model — so every solve(costs)
/// call is a cost-only refresh.  Solves with the same costs are
/// bit-identical to each other (fixed accumulation order, scheduling-
/// independent writes), with or without a thread pool.
class JointOfflineSolver {
 public:
  /// Build the per-sense stencil sets for config.space + config.secondary
  /// + config.dynamics; `pool` parallelizes the build.  config.costs is
  /// kept as the default cost model for the zero-argument solve().
  explicit JointOfflineSolver(const JointConfig& config, ThreadPool* pool = nullptr);

  /// Solve every slab's tau recursion with a revised cost model
  /// (cost-only revision: space, abstraction, and dynamics stay as
  /// compiled).  The returned table's config() carries the revised costs.
  JointLogicTable solve(const CostModel& costs, ThreadPool* pool = nullptr,
                        JointSolveStats* stats = nullptr) const;

  /// Solve with the cost model the structure was compiled with.
  JointLogicTable solve(ThreadPool* pool = nullptr, JointSolveStats* stats = nullptr) const;

  /// Dump the compiled per-sense stencils (plus the config they were built
  /// under) into a "STE2" serving::TableImage, and mmap one back — the
  /// joint analogue of CompiledAcasModel::save_stencils, used by the
  /// distributed solve to ship the transition structure to workers without
  /// recompiling it per process.  open_stencils validates every sense
  /// set's shape against the embedded config grid.
  void save_stencils(const std::string& path) const;
  static JointOfflineSolver open_stencils(const std::string& path);

  const JointConfig& config() const { return config_; }
  const StencilSet& sense_stencils(SecondarySense sense) const {
    return stencils_.per_sense[static_cast<std::size_t>(sense)];
  }
  std::size_t stencil_entries() const { return stencils_.num_entries(); }
  double stencil_build_seconds() const { return build_seconds_; }

 private:
  JointOfflineSolver() = default;

  JointConfig config_;
  JointStencilSets stencils_;
  double build_seconds_ = 0.0;
};

/// One-shot convenience: compile the stencils and solve once.
JointLogicTable solve_joint_table(const JointConfig& config, ThreadPool* pool = nullptr,
                                  JointSolveStats* stats = nullptr);

}  // namespace cav::acasx
