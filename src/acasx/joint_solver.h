// Offline generation of the joint-threat logic table (joint_table.h) by
// dynamic programming — the PR 1 stencil machinery lifted to the 4-D joint
// grid.
//
// The recursion is layered on tau-to-the-SECONDARY's-CPA and runs once per
// (delta bin, sense class) slab, since neither changes mid-episode:
//
//   V(0, s)   = nmac2(h2) [+ nmac1(h1) when delta = 0]      (terminal)
//   Q(t, s, a) = [t == delta] * nmac1(h1)                    (primary CPA)
//              + action_cost(ra, a)
//              + sum_noise w * V(t-1, joint_successor, ra'=a)
//   V(t, s)   = min_a Q(t, s, a)
//
// The joint successor scatters (h1', dh_own', dh_int1', h2') onto the 4-D
// grid with multilinear weights; h2 evolves deterministically at the
// slab's representative sense rate, so the successor stencil of each
// (grid point, action) depends on the sense class but not on tau or the
// delta bin.  The solver therefore precompiles ONE stencil set per sense
// class and reuses it across every delta bin and tau layer — and, like
// CompiledAcasModel, across COST REVISIONS: JointOfflineSolver keeps the
// stencils and re-solves per CostModel bit-identically (the PR 2
// refresh_costs path, so revision loops never pay the stencil build
// twice).
#pragma once

#include <cstddef>
#include <memory>

#include "acasx/joint_table.h"
#include "util/thread_pool.h"

namespace cav::acasx {

struct JointStencilSets;  // precompiled per-sense successor stencils

struct JointSolveStats {
  std::size_t states_per_layer = 0;    ///< grid4 x advisory-memory states
  std::size_t layers = 0;              ///< tau layers per slab
  std::size_t slabs = 0;               ///< (delta bin, sense class) slabs
  double wall_seconds = 0.0;           ///< total solve wall time
  std::size_t stencil_entries = 0;     ///< (vertex, weight) pairs, all sense sets
  double stencil_build_seconds = 0.0;  ///< time spent precompiling stencils
};

/// Compile-once / solve-per-revision joint solver.  The stencils depend
/// only on the state-space discretization, the dynamics model, and the
/// secondary abstraction — NOT on the cost model — so every solve(costs)
/// call is a cost-only refresh.  Solves with the same costs are
/// bit-identical to each other (fixed accumulation order, scheduling-
/// independent writes), with or without a thread pool.
class JointOfflineSolver {
 public:
  /// Build the per-sense stencil sets for config.space + config.secondary
  /// + config.dynamics; `pool` parallelizes the build.  config.costs is
  /// kept as the default cost model for the zero-argument solve().
  explicit JointOfflineSolver(const JointConfig& config, ThreadPool* pool = nullptr);
  ~JointOfflineSolver();
  JointOfflineSolver(JointOfflineSolver&&) noexcept;
  JointOfflineSolver& operator=(JointOfflineSolver&&) noexcept;

  /// Solve every slab's tau recursion with a revised cost model
  /// (cost-only revision: space, abstraction, and dynamics stay as
  /// compiled).  The returned table's config() carries the revised costs.
  JointLogicTable solve(const CostModel& costs, ThreadPool* pool = nullptr,
                        JointSolveStats* stats = nullptr) const;

  /// Solve with the cost model the structure was compiled with.
  JointLogicTable solve(ThreadPool* pool = nullptr, JointSolveStats* stats = nullptr) const;

  const JointConfig& config() const { return config_; }
  std::size_t stencil_entries() const;
  double stencil_build_seconds() const { return build_seconds_; }

 private:
  JointConfig config_;
  std::unique_ptr<const JointStencilSets> stencils_;
  double build_seconds_ = 0.0;
};

/// One-shot convenience: compile the stencils and solve once.
JointLogicTable solve_joint_table(const JointConfig& config, ThreadPool* pool = nullptr,
                                  JointSolveStats* stats = nullptr);

}  // namespace cav::acasx
