// Belief-aware online logic — the paper's §IV "Model structure" question
// made concrete: "Is the chosen modelling technique (i.e. MDP model)
// impressive enough ... Or should another model (e.g. a POMDP) be used?"
//
// The point-estimate logic (AcasXuLogic) treats the noisy surveillance
// snapshot as the true state.  This variant is the standard QMDP-style
// partial answer: represent the measurement uncertainty as an independent
// Gaussian belief over the noisiest state dimensions (relative altitude
// and intruder vertical rate), and select the advisory minimizing the
// EXPECTED cost under that belief,
//
//     a* = argmin_a  E_{x ~ belief} [ Q(x, a) ]
//
// approximated by 3-point sigma quadrature per dimension (exact for the
// mean and variance of the belief).  With belief sigmas at 0 it reduces
// exactly to the point-estimate logic; with degraded surveillance it stops
// committing to a sense the noise cannot support (E9(g) quantifies this).
//
// This is deliberately not a full POMDP solve (the offline model is
// unchanged); it is the cheapest structurally-different online model the
// validation framework can compare against — which is the paper's point.
#pragma once

#include <array>
#include <memory>
#include <span>

#include "acasx/online_logic.h"

namespace cav::acasx {

/// Measurement-uncertainty model for the belief average.  The values are
/// configuration (known sensor characteristics), not online estimates.
struct BeliefConfig {
  double h_sigma_ft = 25.0;       ///< relative-altitude uncertainty
  double dh_int_sigma_fps = 1.6;  ///< intruder vertical-rate uncertainty
};

class BeliefAwareLogic {
 public:
  BeliefAwareLogic(std::shared_ptr<const LogicTable> table, BeliefConfig belief = {},
                   OnlineConfig online = {});

  /// Same contract as AcasXuLogic::decide.
  Advisory decide(const AircraftTrack& own, const AircraftTrack& intruder,
                  Sense forbidden_sense = Sense::kNone);

  Advisory current_advisory() const { return ra_; }

  /// Belief-averaged per-advisory costs against one threat at the current
  /// advisory memory, without advancing it (see AcasXuLogic::peek_costs).
  /// The span overload writes into caller storage; the array form wraps it.
  void peek_costs(const AircraftTrack& own, const AircraftTrack& intruder, bool* active,
                  std::span<double, kNumAdvisories> out) const;
  std::array<double, kNumAdvisories> peek_costs(const AircraftTrack& own,
                                                const AircraftTrack& intruder,
                                                bool* active) const {
    std::array<double, kNumAdvisories> costs{};
    peek_costs(own, intruder, active, costs);
    return costs;
  }

  /// Overwrite the advisory memory with the resolver's fused choice.
  void set_advisory(Advisory a) { ra_ = a; }

  void reset() { ra_ = Advisory::kCoc; }

  const TauEstimate& last_tau() const { return last_tau_; }
  /// Belief-averaged per-action costs from the last decide().
  const std::array<double, kNumAdvisories>& last_costs() const { return last_costs_; }

  const BeliefConfig& belief_config() const { return belief_; }
  const OnlineConfig& online_config() const { return online_; }

 private:
  std::shared_ptr<const LogicTable> table_;
  BeliefConfig belief_;
  OnlineConfig online_;
  Advisory ra_ = Advisory::kCoc;
  TauEstimate last_tau_{};
  std::array<double, kNumAdvisories> last_costs_{};
};

}  // namespace cav::acasx
