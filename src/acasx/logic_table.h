// The generated "logic table" — the paper's central artifact: a look-up
// table of expected costs over the discretized encounter state space,
// produced offline by dynamic programming and interpolated online.
//
// Layout: q[tau][h][dh_own][dh_int][ra][action], row-major with action
// fastest.  Values are float to keep the standard table ~38 MB.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "acasx/advisory.h"
#include "acasx/config.h"
#include "util/grid.h"

namespace cav::acasx {

class LogicTable {
 public:
  LogicTable() = default;
  explicit LogicTable(const AcasXuConfig& config);

  const AcasXuConfig& config() const { return config_; }
  const GridN<3>& grid() const { return grid_; }  ///< (h, dh_own, dh_int)

  std::size_t num_tau_layers() const { return config_.space.tau_max + 1; }
  std::size_t num_grid_points() const { return grid_.size(); }
  /// Total stored Q entries (tau layers x grid x ra x action).
  std::size_t num_entries() const { return q_.size(); }

  /// Flat index of (tau, grid point, ra, action).
  std::size_t index(std::size_t tau, std::size_t grid_flat, Advisory ra, Advisory action) const {
    return ((tau * grid_.size() + grid_flat) * kNumAdvisories +
            static_cast<std::size_t>(ra)) * kNumAdvisories +
           static_cast<std::size_t>(action);
  }

  float at(std::size_t tau, std::size_t grid_flat, Advisory ra, Advisory action) const {
    return q_[index(tau, grid_flat, ra, action)];
  }
  float& at(std::size_t tau, std::size_t grid_flat, Advisory ra, Advisory action) {
    return q_[index(tau, grid_flat, ra, action)];
  }

  /// Interpolated per-action costs at a continuous state.  tau_s is clamped
  /// to [0, tau_max] and interpolated linearly between integer layers; the
  /// (h, dh_own, dh_int) point is interpolated multilinearly (clamped at
  /// the grid boundary).
  std::array<double, kNumAdvisories> action_costs(double tau_s, double h_ft, double dh_own_fps,
                                                  double dh_int_fps, Advisory ra) const;

  /// Serialize to / from a versioned little-endian binary file, so the
  /// minutes-scale offline solve can be cached across runs.
  void save(const std::string& path) const;
  static LogicTable load(const std::string& path);

  /// Direct access for the solver.
  std::vector<float>& raw() { return q_; }
  const std::vector<float>& raw() const { return q_; }

 private:
  AcasXuConfig config_;
  GridN<3> grid_;
  std::vector<float> q_;
};

}  // namespace cav::acasx
