// The generated "logic table" — the paper's central artifact: a look-up
// table of expected costs over the discretized encounter state space,
// produced offline by dynamic programming and interpolated online.
//
// Layout: q[tau][h][dh_own][dh_int][ra][action], row-major with action
// fastest.  Values are float to keep the standard table ~38 MB.
//
// Storage: a table either OWNS its values (solved in memory, or load()ed
// with a copy/dequantization) or is a zero-copy VIEW over an mmap-backed
// serving::TableImage (open_mapped()), in which case N processes opening
// the same image share one physical copy of the payload.  Every query
// goes through values(); the two modes are indistinguishable to callers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "acasx/advisory.h"
#include "acasx/config.h"
#include "serving/quantize.h"
#include "util/grid.h"

namespace cav::serving {
class TableImage;
class TableImageWriter;
}

namespace cav::acasx {

class LogicTable {
 public:
  LogicTable() = default;
  explicit LogicTable(const AcasXuConfig& config);

  const AcasXuConfig& config() const { return config_; }
  const GridN<3>& grid() const { return grid_; }  ///< (h, dh_own, dh_int)

  std::size_t num_tau_layers() const { return config_.space.tau_max + 1; }
  std::size_t num_grid_points() const { return grid_.size(); }
  /// Total stored Q entries (tau layers x grid x ra x action).
  std::size_t num_entries() const { return view_ != nullptr ? view_size_ : q_.size(); }

  /// Flat index of (tau, grid point, ra, action).
  std::size_t index(std::size_t tau, std::size_t grid_flat, Advisory ra, Advisory action) const {
    return ((tau * grid_.size() + grid_flat) * kNumAdvisories +
            static_cast<std::size_t>(ra)) * kNumAdvisories +
           static_cast<std::size_t>(action);
  }

  float at(std::size_t tau, std::size_t grid_flat, Advisory ra, Advisory action) const {
    return values()[index(tau, grid_flat, ra, action)];
  }
  /// Mutable access — owning tables only (the solver's write path).
  float& at(std::size_t tau, std::size_t grid_flat, Advisory ra, Advisory action) {
    return q_[index(tau, grid_flat, ra, action)];
  }

  /// Interpolated per-action costs at a continuous state.  tau_s is clamped
  /// to [0, tau_max] and interpolated linearly between integer layers; the
  /// (h, dh_own, dh_int) point is interpolated multilinearly (clamped at
  /// the grid boundary).  The span overload is the real entry point — the
  /// same serving kernel the batched PolicyServer runs (batch-of-one is
  /// bit-identical by construction); the array form is a thin wrapper.
  void action_costs(double tau_s, double h_ft, double dh_own_fps, double dh_int_fps, Advisory ra,
                    std::span<double, kNumAdvisories> out) const;
  std::array<double, kNumAdvisories> action_costs(double tau_s, double h_ft, double dh_own_fps,
                                                  double dh_int_fps, Advisory ra) const {
    std::array<double, kNumAdvisories> costs{};
    action_costs(tau_s, h_ft, dh_own_fps, dh_int_fps, ra, costs);
    return costs;
  }

  /// Serialize to a versioned serving::TableImage container, so the
  /// minutes-scale offline solve can be cached across runs and mmap-shared
  /// across processes.  `quant` selects the stored value precision
  /// (serving/quantize.h); kNone round-trips bit-identically.
  void save(const std::string& path, serving::Quantization quant) const;
  void save(const std::string& path) const { save(path, serving::Quantization::kNone); }

  /// Load into an OWNING table: TableImage payloads are copied (and
  /// dequantized when the image is f16/int8 — lossy, by design).  Files
  /// written by the pre-serving ad-hoc format (magic "ACX1") still load
  /// for one release; saving always writes the image container.
  /// Throws serving::TableIoError (a std::runtime_error).
  static LogicTable load(const std::string& path);

  /// Zero-copy load: the returned table's values alias the mmap'd image
  /// (shared physical pages across processes).  Requires an unquantized
  /// (f32) image; use load() to dequantize a compressed one.  The
  /// shared_ptr overload adopts an image something else already opened
  /// (PolicyServer maps each file exactly once).
  static LogicTable open_mapped(const std::string& path);
  static LogicTable open_mapped(std::shared_ptr<const serving::TableImage> image);

  /// True when this table is an mmap view (no owned payload).
  bool is_mapped() const { return view_ != nullptr; }

  /// Decode the config metadata of a "PAIR" image without touching its
  /// value payload — how PolicyServer serves quantized images directly.
  static AcasXuConfig decode_config(const serving::TableImage& image);

  /// Append the config's meta_f64/meta_u64 slabs to `writer` — the one
  /// AcasXuConfig codec, shared by save() and by every artifact that
  /// embeds a solver config (stencil images, acasx/stencil_image.h).
  /// decode_config reads the result back from any image kind.
  static void encode_config(const AcasXuConfig& config, serving::TableImageWriter& writer);

  /// The value payload, owning or mapped — the serving kernel's view.
  const float* values() const { return view_ != nullptr ? view_ : q_.data(); }

  /// Direct access for the solver (owning tables only; throws on a
  /// mapped view).
  std::vector<float>& raw();
  const std::vector<float>& raw() const;

 private:
  AcasXuConfig config_;
  GridN<3> grid_;
  std::vector<float> q_;
  // Set only on mapped tables: the view pointer targets image_'s mapping,
  // so default copy/move keep it valid (the image is shared).
  const float* view_ = nullptr;
  std::size_t view_size_ = 0;
  std::shared_ptr<const serving::TableImage> image_;
};

}  // namespace cav::acasx
