#include "acasx/horizontal.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace cav::acasx {
namespace {

/// Own-ship displacement over one step while turning at rate omega
/// (exact arc; straight-line limit for |omega| ~ 0).
void own_displacement(double speed, double omega, double dt, double& ox, double& oy) {
  if (std::abs(omega) < 1e-9) {
    ox = speed * dt;
    oy = 0.0;
    return;
  }
  ox = speed / omega * std::sin(omega * dt);
  oy = speed / omega * (1.0 - std::cos(omega * dt));
}

/// Rotate (x, y) by angle a (CCW).
void rotate(double a, double& x, double& y) {
  const double c = std::cos(a);
  const double s = std::sin(a);
  const double nx = c * x - s * y;
  const double ny = s * x + c * y;
  x = nx;
  y = ny;
}

/// 5-point sigma sampling of isotropic 2-D velocity noise: matches the
/// per-axis variance (sigma^2) with spread s = sigma * sqrt(3).
struct VelNoise {
  double dx;
  double dy;
  double weight;
};

std::array<VelNoise, 5> velocity_noise(double sigma, double dt) {
  const double s = sigma * dt * std::sqrt(3.0);
  if (sigma <= 0.0) {
    return {{{0.0, 0.0, 1.0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}}};
  }
  return {{{0.0, 0.0, 1.0 / 3.0},
           {+s, 0.0, 1.0 / 6.0},
           {-s, 0.0, 1.0 / 6.0},
           {0.0, +s, 1.0 / 6.0},
           {0.0, -s, 1.0 / 6.0}}};
}

}  // namespace

const char* turn_advisory_name(TurnAdvisory a) {
  switch (a) {
    case TurnAdvisory::kStraight: return "STRAIGHT";
    case TurnAdvisory::kTurnLeft: return "TURN-L";
    case TurnAdvisory::kTurnRight: return "TURN-R";
  }
  return "?";
}

double turn_rate_of(TurnAdvisory a, double turn_rate_rad_s) {
  switch (a) {
    case TurnAdvisory::kStraight: return 0.0;
    case TurnAdvisory::kTurnLeft: return +turn_rate_rad_s;
    case TurnAdvisory::kTurnRight: return -turn_rate_rad_s;
  }
  return 0.0;
}

HorizontalConfig HorizontalConfig::coarse() {
  HorizontalConfig c;
  // Step 200 m keeps the conflict disk resolvable; the radius shrinks to
  // 150 m so grid vertices adjacent to the disk stay outside it and the
  // turn-vs-straight gradient survives interpolation.
  c.x_m = UniformAxis(-1600.0, 1600.0, 17);
  c.y_m = UniformAxis(-1600.0, 1600.0, 17);
  c.rvx_mps = UniformAxis(-60.0, 60.0, 21);  // step 6: resolves slow closures
  c.rvy_mps = UniformAxis(-60.0, 60.0, 21);
  c.conflict_radius_m = 150.0;
  c.max_iterations = 150;
  return c;
}

HorizontalTable::HorizontalTable(const HorizontalConfig& config)
    : config_(config), grid_({config.x_m, config.y_m, config.rvx_mps, config.rvy_mps}) {
  q_.assign(grid_.size() * kNumTurnAdvisories, 0.0F);
}

bool HorizontalTable::in_conflict(double dx_m, double dy_m) const {
  return std::hypot(dx_m, dy_m) <= config_.conflict_radius_m;
}

std::array<double, kNumTurnAdvisories> HorizontalTable::action_costs(double dx_m, double dy_m,
                                                                     double rvx_mps,
                                                                     double rvy_mps) const {
  const auto vertices = grid_.scatter({dx_m, dy_m, rvx_mps, rvy_mps});
  std::array<double, kNumTurnAdvisories> costs{};
  for (std::size_t a = 0; a < kNumTurnAdvisories; ++a) {
    double acc = 0.0;
    for (const auto& v : vertices) {
      acc += v.weight * static_cast<double>(q_[v.flat * kNumTurnAdvisories + a]);
    }
    costs[a] = acc;
  }
  return costs;
}

HorizontalTable solve_horizontal_table(const HorizontalConfig& config, ThreadPool* pool,
                                       HorizontalSolveStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  HorizontalTable table(config);
  const GridN<4>& grid = table.grid();
  const std::size_t n = grid.size();
  const auto noise = velocity_noise(config.accel_noise_mps2, config.dt_s);

  std::vector<float> v(n, 0.0F);
  std::vector<float> v_next(n, 0.0F);

  // Initialize conflict values.
  for (std::size_t flat = 0; flat < n; ++flat) {
    const auto idx = grid.unflatten(flat);
    const double dx = config.x_m.value(idx[0]);
    const double dy = config.y_m.value(idx[1]);
    if (table.in_conflict(dx, dy)) v[flat] = static_cast<float>(config.conflict_cost);
  }

  const double dt = config.dt_s;
  const double so = config.own_speed_mps;

  const auto update_state = [&](std::size_t flat) {
    const auto idx = grid.unflatten(flat);
    const double dx = config.x_m.value(idx[0]);
    const double dy = config.y_m.value(idx[1]);
    const double rvx = config.rvx_mps.value(idx[2]);
    const double rvy = config.rvy_mps.value(idx[3]);

    if (table.in_conflict(dx, dy)) {
      for (std::size_t a = 0; a < kNumTurnAdvisories; ++a) {
        table.at(flat, static_cast<TurnAdvisory>(a)) = static_cast<float>(config.conflict_cost);
      }
      v_next[flat] = static_cast<float>(config.conflict_cost);
      return;
    }

    double best = std::numeric_limits<double>::infinity();
    for (std::size_t ai = 0; ai < kNumTurnAdvisories; ++ai) {
      const auto action = static_cast<TurnAdvisory>(ai);
      const double omega = turn_rate_of(action, config.turn_rate_rad_s);
      const double alpha = omega * dt;  // own heading change this step

      // Relative displacement: the intruder moves by (rv + vo) * dt in the
      // old frame while the own-ship traces its arc.
      double arc_x = 0.0;
      double arc_y = 0.0;
      own_displacement(so, omega, dt, arc_x, arc_y);
      double dpx = dx + (rvx + so) * dt - arc_x;
      double dpy = dy + rvy * dt - arc_y;
      rotate(-alpha, dpx, dpy);

      // Relative velocity after the own velocity rotates with the turn:
      // rv' = R(-alpha) (rv + vo) - vo, with vo = (so, 0) in body coords.
      double rvx_new = rvx + so;
      double rvy_new = rvy;
      rotate(-alpha, rvx_new, rvy_new);
      rvx_new -= so;

      double expected = 0.0;
      for (const VelNoise& nz : noise) {
        if (nz.weight == 0.0) continue;
        expected += nz.weight *
                    grid.interpolate(v, {dpx, dpy, rvx_new + nz.dx, rvy_new + nz.dy});
      }

      const double step_cost =
          action == TurnAdvisory::kStraight ? -config.straight_reward : config.turn_cost;
      const double q = step_cost + config.discount * expected;
      table.at(flat, action) = static_cast<float>(q);
      best = std::min(best, q);
    }
    v_next[flat] = static_cast<float>(best);
  };

  std::size_t iterations = 0;
  double residual = 0.0;
  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    if (pool != nullptr) {
      // Range-based dispatch: one closure call per chunk, not per state.
      pool->parallel_for_ranges(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t flat = begin; flat < end; ++flat) update_state(flat);
      });
    } else {
      for (std::size_t flat = 0; flat < n; ++flat) update_state(flat);
    }
    residual = 0.0;
    for (std::size_t flat = 0; flat < n; ++flat) {
      residual =
          std::max(residual, std::abs(static_cast<double>(v_next[flat]) - v[flat]));
    }
    v.swap(v_next);
    iterations = it + 1;
    if (residual <= config.tolerance) break;
  }

  if (stats != nullptr) {
    stats->states = n;
    stats->iterations = iterations;
    stats->residual = residual;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return table;
}

HorizontalLogic::HorizontalLogic(std::shared_ptr<const HorizontalTable> table)
    : table_(std::move(table)) {
  expect(table_ != nullptr, "horizontal table provided");
  last_costs_.fill(0.0);
}

TurnAdvisory HorizontalLogic::decide(const AircraftTrack& own, const AircraftTrack& intruder) {
  const double own_speed = std::hypot(own.velocity_mps.x, own.velocity_mps.y);
  if (own_speed < 1e-6) {
    current_ = TurnAdvisory::kStraight;
    return current_;
  }
  const double psi_own = std::atan2(own.velocity_mps.y, own.velocity_mps.x);

  double dx = intruder.position_m.x - own.position_m.x;
  double dy = intruder.position_m.y - own.position_m.y;
  const auto& cfg = table_->config();
  if (std::abs(dx) > cfg.x_m.hi() * 1.5 || std::abs(dy) > cfg.y_m.hi() * 1.5) {
    // Far outside the solved region: no horizontal threat worth a turn.
    current_ = TurnAdvisory::kStraight;
    last_costs_.fill(0.0);
    return current_;
  }
  double rvx = intruder.velocity_mps.x - own.velocity_mps.x;
  double rvy = intruder.velocity_mps.y - own.velocity_mps.y;
  rotate(-psi_own, dx, dy);
  rotate(-psi_own, rvx, rvy);

  last_costs_ = table_->action_costs(dx, dy, rvx, rvy);

  const double best = *std::min_element(last_costs_.begin(), last_costs_.end());
  const std::array<TurnAdvisory, kNumTurnAdvisories + 1> preference{
      current_, TurnAdvisory::kStraight, TurnAdvisory::kTurnLeft, TurnAdvisory::kTurnRight};
  constexpr double kTieEps = 1e-9;
  for (const TurnAdvisory a : preference) {
    if (last_costs_[static_cast<std::size_t>(a)] <= best + kTieEps) {
      current_ = a;
      return current_;
    }
  }
  current_ = TurnAdvisory::kStraight;
  return current_;
}

}  // namespace cav::acasx
