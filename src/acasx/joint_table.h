// The joint-threat logic table: expected costs over the joint state of the
// own-ship and TWO simultaneous intruders, produced offline by the joint
// solver (joint_solver.h) and interpolated online.
//
// Why it exists: per-threat tables solved against a single intruder cannot
// represent the symmetric co-altitude squeeze (threats above and below at
// the same CPA time) — each table prices only its own geometry, so any
// fusion of pairwise optima (sim/multi_threat.h, ThreatPolicy::kCostFused)
// votes with costs that ignore the other threat's future.  Solving over
// joint intruder state is the ADP direction of Sunberg et al.
// (arXiv:1602.04762) and the joint-conflict layer of Wang et al.
// (arXiv:2005.14455).
//
// State factorization (kept tractable by abstraction, not truncation):
//   * PRIMARY threat (the one whose CPA comes first): full pairwise
//     fidelity — the (h1, dh_own, dh_int1) grid of StateSpaceConfig.
//   * SECONDARY threat: a compact abstraction — relative altitude h2 on
//     its own (coarser) axis, CPA offset delta = tau2 - tau1 >= 0 snapped
//     to a few bins, and a vertical-sense class {level, climbing,
//     descending} flown at a representative rate.
//   * tau LAYERS count down to the SECONDARY's CPA (the later one), so
//     both conflicts happen inside the recursion: the primary's NMAC cost
//     is charged at interior layer tau == delta, the secondary's at the
//     tau = 0 terminal layer.
//
// Each (delta bin, sense class) pair is one independent SLAB: neither
// changes during an encounter under the model, so the solver runs one
// 4-D tau recursion per slab (see mdp/joint_state.h for the indexing
// convention).  Layout: q[slab][tau][grid4][ra][action], action fastest.
//
// Storage mirrors LogicTable: owning (solved / load()ed) or a zero-copy
// view over an mmap-backed serving::TableImage (open_mapped()) — at
// standard size the ~330 MB payload is the strongest case for sharing
// one physical copy across processes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "acasx/advisory.h"
#include "acasx/config.h"
#include "acasx/online_logic.h"
#include "mdp/joint_state.h"
#include "serving/quantize.h"
#include "util/grid.h"

namespace cav::serving {
class TableImage;
class TableImageWriter;
}

namespace cav::acasx {

/// Vertical-sense class of the secondary threat (its abstracted dynamics:
/// a constant representative rate instead of a full rate axis).
enum class SecondarySense : std::uint8_t { kLevel = 0, kClimbing, kDescending };
inline constexpr std::size_t kNumSecondarySenses = 3;

/// The compact second-intruder abstraction: what the joint state keeps of
/// the secondary threat, and how continuous observations snap into it.
struct SecondaryAbstraction {
  /// Relative-altitude axis of the secondary (intruder above own-ship,
  /// ft).  The 100 ft step matters: a coarser axis leaks the terminal
  /// NMAC band outward through the multilinear interpolation (measured:
  /// a 200 ft step costs ~4 ring NMACs and makes the logic over-cautious
  /// on statistical traffic).
  UniformAxis h2_ft{-600.0, 600.0, 13};
  /// CPA-offset bins: delta = tau2 - tau1 in seconds, bin i at value
  /// i * delta_step_s.  Queries snap to the NEAREST bin (clamped), so
  /// num_delta_bins * delta_step_s is the largest offset told apart from
  /// "delta_max".  delta_step_s must be a multiple of the dynamics step
  /// (the primary's NMAC charge lands on an integer tau layer).
  std::size_t num_delta_bins = 2;
  double delta_step_s = 10.0;
  /// Representative vertical rate (ft/s) flown by the climbing/descending
  /// sense classes (1500 ft/min, the initial-advisory rate).
  double sense_rate_fps = 1500.0 / 60.0;
  /// |vertical rate| below this (ft/s) classifies as kLevel.
  double sense_level_threshold_fps = 400.0 / 60.0;

  /// Nearest delta bin for a continuous offset (negative clamps to 0).
  std::size_t delta_bin(double delta_s) const {
    if (delta_s <= 0.0) return 0;
    const auto b = static_cast<std::size_t>(delta_s / delta_step_s + 0.5);
    return b >= num_delta_bins ? num_delta_bins - 1 : b;
  }
  /// CPA offset represented by bin b, seconds.
  double delta_value_s(std::size_t b) const { return static_cast<double>(b) * delta_step_s; }

  /// Sense class of a continuous vertical rate (ft/s).
  SecondarySense sense_of_rate(double dh_fps) const {
    if (dh_fps > sense_level_threshold_fps) return SecondarySense::kClimbing;
    if (dh_fps < -sense_level_threshold_fps) return SecondarySense::kDescending;
    return SecondarySense::kLevel;
  }
  /// Representative rate (ft/s) the abstraction flies for a sense class.
  double representative_rate_fps(SecondarySense s) const {
    switch (s) {
      case SecondarySense::kClimbing: return sense_rate_fps;
      case SecondarySense::kDescending: return -sense_rate_fps;
      case SecondarySense::kLevel: return 0.0;
    }
    return 0.0;
  }

  std::size_t num_slabs() const { return num_delta_bins * kNumSecondarySenses; }
};

/// Full configuration of the joint-threat MDP.  `space` describes the
/// primary threat exactly as in the pairwise AcasXuConfig (its tau_max is
/// the joint horizon: layers count down to the secondary's CPA); dynamics
/// and costs are shared with the pairwise model so joint Q values are in
/// the same cost units as pairwise Q values — the resolver sums both.
struct JointConfig {
  StateSpaceConfig space;
  SecondaryAbstraction secondary;
  DynamicsConfig dynamics;
  CostModel costs;

  /// THE joint solver grid over (h1, dh_own, dh_int1, h2).
  GridN<4> grid() const {
    return GridN<4>({space.h_ft, space.dh_own_fps, space.dh_int_fps, secondary.h2_ft});
  }

  /// Slab index convention: (delta bin, sense class), delta slowest.
  mdp::JointStateIndexer slabs() const {
    return mdp::JointStateIndexer({secondary.num_delta_bins, kNumSecondarySenses});
  }
  std::size_t slab_index(std::size_t delta_bin, SecondarySense sense) const {
    return slabs().flat({delta_bin, static_cast<std::size_t>(sense)});
  }

  /// Test-size preset (fast to solve, same code paths as standard;
  /// ~100 MB of Q, sub-second solve in Release).
  static JointConfig coarse();
  /// The laptop-scale default: the standard h axis with reduced rate
  /// axes.  ~330 MB of Q — size it down via `secondary`/`space` before
  /// solving on small machines.
  static JointConfig standard();
};

/// The solved joint-threat table.  Values are float (like LogicTable) to
/// keep the joint state space affordable.
class JointLogicTable {
 public:
  JointLogicTable() = default;
  explicit JointLogicTable(const JointConfig& config);

  const JointConfig& config() const { return config_; }
  const GridN<4>& grid() const { return grid_; }  ///< (h1, dh_own, dh_int1, h2)

  std::size_t num_slabs() const { return config_.secondary.num_slabs(); }
  std::size_t num_tau_layers() const { return config_.space.tau_max + 1; }
  std::size_t num_grid_points() const { return grid_.size(); }
  /// Total stored Q entries (slabs x tau layers x grid x ra x action).
  std::size_t num_entries() const { return view_ != nullptr ? view_size_ : q_.size(); }

  /// Flat index of (slab, tau, grid point, ra, action), action fastest.
  std::size_t index(std::size_t slab, std::size_t tau, std::size_t grid_flat, Advisory ra,
                    Advisory action) const {
    return (((slab * num_tau_layers() + tau) * grid_.size() + grid_flat) * kNumAdvisories +
            static_cast<std::size_t>(ra)) * kNumAdvisories +
           static_cast<std::size_t>(action);
  }

  float at(std::size_t slab, std::size_t tau, std::size_t grid_flat, Advisory ra,
           Advisory action) const {
    return values()[index(slab, tau, grid_flat, ra, action)];
  }
  /// Mutable access — owning tables only (the solver's write path).
  float& at(std::size_t slab, std::size_t tau, std::size_t grid_flat, Advisory ra,
            Advisory action) {
    return q_[index(slab, tau, grid_flat, ra, action)];
  }

  /// Interpolated per-action costs at a continuous joint state.  `tau1_s`
  /// is the PRIMARY's time to CPA and `delta_s = tau2 - tau1 >= 0` the
  /// secondary's offset; delta and the sense class snap to their bins
  /// (nearest), then the layer (tau1 + delta_bin_value) / dynamics.dt_s is
  /// interpolated linearly and (h1, dh_own, dh_int1, h2) multilinearly,
  /// exactly like LogicTable::action_costs.  The span overload is the real
  /// entry point (the shared serving kernel); the array form wraps it.
  void action_costs(double tau1_s, double delta_s, double h1_ft, double dh_own_fps,
                    double dh_int1_fps, double h2_ft, SecondarySense sense, Advisory ra,
                    std::span<double, kNumAdvisories> out) const;
  std::array<double, kNumAdvisories> action_costs(double tau1_s, double delta_s, double h1_ft,
                                                  double dh_own_fps, double dh_int1_fps,
                                                  double h2_ft, SecondarySense sense,
                                                  Advisory ra) const {
    std::array<double, kNumAdvisories> costs{};
    action_costs(tau1_s, delta_s, h1_ft, dh_own_fps, dh_int1_fps, h2_ft, sense, ra, costs);
    return costs;
  }

  /// Serialize to a versioned serving::TableImage container (the joint
  /// solve is minutes-scale at standard size; cache it like LogicTable).
  /// `quant` selects the stored value precision; int8 cuts the standard
  /// image to ~1/3 of the f32 bytes.
  void save(const std::string& path, serving::Quantization quant) const;
  void save(const std::string& path) const { save(path, serving::Quantization::kNone); }

  /// Load into an OWNING table (copies / dequantizes the payload).  Files
  /// in the pre-serving ad-hoc format (magic "JTX1") still load for one
  /// release; saving always writes the image container.  Throws
  /// serving::TableIoError (a std::runtime_error).
  static JointLogicTable load(const std::string& path);

  /// Zero-copy load over an unquantized (f32) image: values alias the
  /// shared mmap, so N processes pay one physical copy of the payload.
  /// The shared_ptr overload adopts an already-opened image
  /// (PolicyServer maps each file exactly once).
  static JointLogicTable open_mapped(const std::string& path);
  static JointLogicTable open_mapped(std::shared_ptr<const serving::TableImage> image);

  /// True when this table is an mmap view (no owned payload).
  bool is_mapped() const { return view_ != nullptr; }

  /// Decode the config metadata of a "JNT2" image without touching its
  /// value payload — how PolicyServer serves quantized images directly.
  static JointConfig decode_config(const serving::TableImage& image);

  /// Append the config's meta_f64/meta_u64 slabs to `writer` — the one
  /// JointConfig codec, shared by save() and by every artifact that
  /// embeds a joint solver config (stencil images).
  static void encode_config(const JointConfig& config, serving::TableImageWriter& writer);

  /// The value payload, owning or mapped — the serving kernel's view.
  const float* values() const { return view_ != nullptr ? view_ : q_.data(); }

  /// Direct access for the solver (owning tables only; throws on a
  /// mapped view).
  std::vector<float>& raw();
  const std::vector<float>& raw() const;

 private:
  JointConfig config_;
  GridN<4> grid_;
  std::vector<float> q_;
  // Set only on mapped tables: the view pointer targets image_'s mapping,
  // so default copy/move keep it valid (the image is shared).
  const float* view_ = nullptr;
  std::size_t view_size_ = 0;
  std::shared_ptr<const serving::TableImage> image_;
};

/// Online joint query from surveillance tracks — the joint analogue of
/// AcasXuLogic::peek_costs, shared by every table-backed CAS adapter
/// (sim/acasx_cas.h and friends).  Estimates each threat's horizontal tau
/// under `online`, orders the pair deterministically by (tau, then
/// relative state) so the result is invariant under swapping `a` and `b`,
/// and queries the table with the primary at full fidelity.  `*active` is
/// false — and the costs are all zero, carrying no preference — unless
/// BOTH threats are converging within the alerting horizon
/// (`online.tau_alert_max_s`); the caller then falls back to pairwise
/// fusion.  The span overload writes into caller storage; the array form
/// wraps it.
void joint_action_costs(const JointLogicTable& table, const AircraftTrack& own,
                        const AircraftTrack& a, const AircraftTrack& b, Advisory ra,
                        const OnlineConfig& online, bool* active,
                        std::span<double, kNumAdvisories> out);
std::array<double, kNumAdvisories> joint_action_costs(const JointLogicTable& table,
                                                      const AircraftTrack& own,
                                                      const AircraftTrack& a,
                                                      const AircraftTrack& b, Advisory ra,
                                                      const OnlineConfig& online, bool* active);

}  // namespace cav::acasx
