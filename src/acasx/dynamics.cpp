#include "acasx/dynamics.h"

#include <algorithm>
#include <cmath>

namespace cav::acasx {

std::array<NoiseSample, 3> sigma_samples(double sigma_fps2) {
  const double delta = sigma_fps2 * std::sqrt(2.0);
  return {{{-delta, 0.25}, {0.0, 0.5}, {+delta, 0.25}}};
}

double advisory_rate_response(double dh_fps, Advisory advisory, const DynamicsConfig& dyn) {
  if (advisory == Advisory::kCoc) return dh_fps;
  const double target = target_rate_fpm(advisory) / 60.0;  // fpm -> ft/s
  const double accel =
      is_strengthened(advisory) ? dyn.accel_strength_fps2 : dyn.accel_initial_fps2;
  const double max_delta = accel * dyn.dt_s;
  const double delta = std::clamp(target - dh_fps, -max_delta, max_delta);
  return dh_fps + delta;
}

double integrate_relative_altitude(double h_ft, double dh_own_old, double dh_own_new,
                                   double dh_int_old, double dh_int_new, double dt_s) {
  const double mean_rel_rate = 0.5 * ((dh_int_old + dh_int_new) - (dh_own_old + dh_own_new));
  return h_ft + mean_rel_rate * dt_s;
}

double action_cost(Advisory ra, Advisory a, const CostModel& costs) {
  double c = 0.0;
  if (a == Advisory::kCoc) {
    c -= costs.level_reward;
    if (ra != Advisory::kCoc) c += costs.termination_cost;
  } else {
    c += is_strengthened(a) ? costs.strengthened_maneuver_cost : costs.maneuver_cost;
    if (is_reversal(ra, a)) c += costs.reversal_cost;
    if (is_strengthening(ra, a)) c += costs.strengthen_cost;
  }
  return c;
}

}  // namespace cav::acasx
