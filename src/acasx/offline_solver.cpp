#include "acasx/offline_solver.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "acasx/dynamics.h"
#include "acasx/stencil_image.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

/// Value function for one tau layer: v[grid_flat * kNumAdvisories + ra].
using ValueLayer = std::vector<float>;

/// Expected next-layer value for one (state, action): average over the
/// applicable acceleration-noise hypotheses, each scattered onto the grid.
/// Reference kernel — the stencil path must agree with this to rounding.
double expected_next_value(const GridN<3>& grid, const ValueLayer& v_next, double h,
                           double dh_own, double dh_int, Advisory action,
                           const DynamicsConfig& dyn,
                           const std::array<NoiseSample, 3>& noise) {
  const double dt = dyn.dt_s;
  // Own-ship: deterministic compliance under an advisory, noise under COC.
  const bool own_noisy = (action == Advisory::kCoc);
  const double dh_own_cmd = advisory_rate_response(dh_own, action, dyn);

  const auto ra_next = static_cast<std::size_t>(action);
  double acc = 0.0;
  for (const NoiseSample& own_n : noise) {
    const double w_own = own_noisy ? own_n.weight : (own_n.accel_fps2 == 0.0 ? 1.0 : 0.0);
    if (w_own == 0.0) continue;
    const double dh_own_new =
        std::clamp(dh_own_cmd + (own_noisy ? own_n.accel_fps2 * dt : 0.0),
                   grid.axis(1).lo(), grid.axis(1).hi());
    for (const NoiseSample& int_n : noise) {
      const double dh_int_new =
          std::clamp(dh_int + int_n.accel_fps2 * dt, grid.axis(2).lo(), grid.axis(2).hi());
      const double h_new =
          integrate_relative_altitude(h, dh_own, dh_own_new, dh_int, dh_int_new, dt);
      const auto vertices = grid.scatter({h_new, dh_own_new, dh_int_new});
      double value = 0.0;
      for (const auto& vert : vertices) {
        value += vert.weight *
                 static_cast<double>(v_next[vert.flat * kNumAdvisories + ra_next]);
      }
      acc += w_own * int_n.weight * value;
    }
  }
  return acc;
}

/// One row's groups, built independently per grid point for parallelism.
struct StencilRow {
  struct Group {
    double pair_weight;
    std::vector<GridVertexWeight> entries;
  };
  std::vector<Group> groups;
};

/// Record the stencil row for one (grid point, action): the same noise /
/// dynamics / scatter walk as expected_next_value, stored instead of
/// evaluated.
StencilRow build_stencil_row(const GridN<3>& grid, double h, double dh_own, double dh_int,
                             Advisory action, const DynamicsConfig& dyn,
                             const std::array<NoiseSample, 3>& noise) {
  const double dt = dyn.dt_s;
  const bool own_noisy = (action == Advisory::kCoc);
  const double dh_own_cmd = advisory_rate_response(dh_own, action, dyn);

  StencilRow row;
  row.groups.reserve(noise.size() * noise.size());
  for (const NoiseSample& own_n : noise) {
    const double w_own = own_noisy ? own_n.weight : (own_n.accel_fps2 == 0.0 ? 1.0 : 0.0);
    if (w_own == 0.0) continue;
    const double dh_own_new =
        std::clamp(dh_own_cmd + (own_noisy ? own_n.accel_fps2 * dt : 0.0),
                   grid.axis(1).lo(), grid.axis(1).hi());
    for (const NoiseSample& int_n : noise) {
      const double dh_int_new =
          std::clamp(dh_int + int_n.accel_fps2 * dt, grid.axis(2).lo(), grid.axis(2).hi());
      const double h_new =
          integrate_relative_altitude(h, dh_own, dh_own_new, dh_int, dh_int_new, dt);
      row.groups.push_back(
          {w_own * int_n.weight, grid.scatter({h_new, dh_own_new, dh_int_new})});
    }
  }
  return row;
}

StencilArrays build_stencils(const GridN<3>& grid, const DynamicsConfig& dyn,
                             const std::array<NoiseSample, 3>& noise, ThreadPool* pool) {
  const std::size_t num_points = grid.size();
  const std::size_t num_rows = num_points * kNumAdvisories;

  // Row sizes are data-dependent, so build per-point rows independently
  // (parallel) and concatenate with a serial prefix pass afterwards.
  std::vector<StencilRow> rows(num_rows);
  const auto build_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const auto idx = grid.unflatten(g);
      const double h = grid.axis(0).value(idx[0]);
      const double dh_own = grid.axis(1).value(idx[1]);
      const double dh_int = grid.axis(2).value(idx[2]);
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        rows[g * kNumAdvisories + a] = build_stencil_row(
            grid, h, dh_own, dh_int, static_cast<Advisory>(a), dyn, noise);
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for_ranges(num_points, build_range);
  } else {
    build_range(0, num_points);
  }

  StencilArrays set;
  set.group_offsets.assign(num_rows + 1, 0);
  std::size_t num_groups = 0;
  std::size_t num_entries = 0;
  for (std::size_t r = 0; r < num_rows; ++r) {
    num_groups += rows[r].groups.size();
    set.group_offsets[r + 1] = num_groups;
    for (const auto& group : rows[r].groups) num_entries += group.entries.size();
  }
  set.group_weight.reserve(num_groups);
  set.entry_offsets.reserve(num_groups + 1);
  set.entry_offsets.push_back(0);
  set.vertex.reserve(num_entries);
  set.weight.reserve(num_entries);
  for (auto& row : rows) {
    for (const auto& group : row.groups) {
      set.group_weight.push_back(group.pair_weight);
      for (const auto& e : group.entries) {
        set.vertex.push_back(static_cast<std::uint32_t>(e.flat));
        set.weight.push_back(e.weight);
      }
      set.entry_offsets.push_back(set.vertex.size());
    }
    row = StencilRow{};  // release per-row heap early; caps peak memory at ~1x
  }
  return set;
}

/// The tau backward induction shared by solve_logic_table and
/// CompiledAcasModel::solve.  `stencils` must be non-null in
/// kPrecompiledStencils mode and is ignored in kReference mode; `config`
/// carries the cost model actually applied (possibly a revision of the one
/// the stencils were built under — the stencils only depend on space and
/// dynamics).
LogicTable run_backward_induction(const AcasXuConfig& config, const StencilSet* stencil_set,
                                  SolverMode mode, ThreadPool* pool, SolveStats* stats,
                                  std::chrono::steady_clock::time_point start_time) {
  LogicTable table(config);
  const GridN<3>& grid = table.grid();
  const std::size_t num_points = grid.size();
  const std::size_t tau_max = config.space.tau_max;
  const auto noise = sigma_samples(config.dynamics.accel_noise_sigma_fps2);

  // Terminal layer (tau = 0): the encounter resolves now; the only thing
  // that matters is whether vertical separation is an NMAC.  The value is
  // independent of rates and advisory memory.
  ValueLayer v_prev(num_points * kNumAdvisories, 0.0F);
  fill_pair_terminal_layer(config, v_prev);
  // Q at tau=0 equals the terminal value for every (ra, action) so that
  // online interpolation near tau=0 degrades gracefully.
  for (std::size_t g = 0; g < num_points; ++g) {
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      const float terminal = v_prev[g * kNumAdvisories + ra];
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        table.at(0, g, static_cast<Advisory>(ra), static_cast<Advisory>(a)) = terminal;
      }
    }
  }

  expect(mode == SolverMode::kReference || stencil_set != nullptr,
         "stencil mode requires precompiled stencils");
  // Guard against grid/stencil divergence: a stencil set built for a
  // different discretization would silently scatter onto wrong (or
  // out-of-range) vertices.
  expect(stencil_set == nullptr ||
             stencil_set->group_offsets.size() == num_points * kNumAdvisories + 1,
         "stencils were built for this grid");

  ValueLayer v_cur(num_points * kNumAdvisories, 0.0F);

  // Per-point layer update for the reference mode: expected successor
  // values per action (hoisted out of the ra loop — they depend on the
  // advisory memory only through the successor's ra' = a), then the costed
  // Bellman minimum.  The stencil mode runs the same epilogue inside
  // sweep_pair_layer_range.
  const auto finish_point = [&](std::size_t tau, std::size_t g,
                                const std::array<double, kNumAdvisories>& next_value) {
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        const double q = action_cost(static_cast<Advisory>(ra), static_cast<Advisory>(a),
                                     config.costs) +
                         next_value[a];
        table.at(tau, g, static_cast<Advisory>(ra), static_cast<Advisory>(a)) =
            static_cast<float>(q);
        best = std::min(best, q);
      }
      v_cur[g * kNumAdvisories + ra] = static_cast<float>(best);
    }
  };

  const auto solve_point_reference = [&](std::size_t tau, std::size_t g) {
    const auto idx = grid.unflatten(g);
    const double h = grid.axis(0).value(idx[0]);
    const double dh_own = grid.axis(1).value(idx[1]);
    const double dh_int = grid.axis(2).value(idx[2]);
    std::array<double, kNumAdvisories> next_value{};
    for (std::size_t a = 0; a < kNumAdvisories; ++a) {
      next_value[a] = expected_next_value(grid, v_prev, h, dh_own, dh_int,
                                          static_cast<Advisory>(a), config.dynamics, noise);
    }
    finish_point(tau, g, next_value);
  };

  // The tau layer is contiguous in the table (point index next-fastest
  // after tau), so the stencil sweep writes its Q values straight into the
  // layer's slice via the shared range kernel.
  constexpr std::size_t kQPerPoint = kNumAdvisories * kNumAdvisories;
  float* const q_base = table.raw().data();

  for (std::size_t tau = 1; tau <= tau_max; ++tau) {
    float* const q_layer = q_base + tau * num_points * kQPerPoint;
    const auto sweep_range = [&](std::size_t begin, std::size_t end) {
      if (mode == SolverMode::kPrecompiledStencils) {
        sweep_pair_layer_range(config, *stencil_set, v_prev, begin, end,
                               q_layer + begin * kQPerPoint,
                               v_cur.data() + begin * kNumAdvisories);
      } else {
        for (std::size_t g = begin; g < end; ++g) solve_point_reference(tau, g);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for_ranges(num_points, sweep_range);
    } else {
      sweep_range(0, num_points);
    }
    v_prev.swap(v_cur);
  }

  if (stats != nullptr) {
    stats->states_per_layer = num_points * kNumAdvisories;
    stats->layers = tau_max + 1;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  }
  return table;
}

/// The one stencil-build entry point (grid + noise + timing), shared by
/// solve_logic_table's stencil mode and CompiledAcasModel so the two build
/// paths cannot diverge.
StencilArrays build_stencils_for(const AcasXuConfig& config, ThreadPool* pool,
                                 double& build_seconds) {
  const auto build_start = std::chrono::steady_clock::now();
  StencilArrays stencils =
      build_stencils(config.space.grid(), config.dynamics,
                     sigma_samples(config.dynamics.accel_noise_sigma_fps2), pool);
  build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - build_start).count();
  return stencils;
}

}  // namespace

void fill_pair_terminal_layer(const AcasXuConfig& config, std::span<float> out) {
  const GridN<3> grid = config.space.grid();
  expect(out.size() == grid.size() * kNumAdvisories, "terminal layer buffer matches grid");
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto idx = grid.unflatten(g);
    const double h = grid.axis(0).value(idx[0]);
    const float terminal =
        (std::abs(h) <= config.costs.nmac_h_ft) ? static_cast<float>(config.costs.nmac_cost)
                                                : 0.0F;
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      out[g * kNumAdvisories + ra] = terminal;
    }
  }
}

void sweep_pair_layer_range(const AcasXuConfig& config, const StencilSet& stencils,
                            std::span<const float> v_prev, std::size_t begin, std::size_t end,
                            float* q_out, float* v_out) {
  for (std::size_t g = begin; g < end; ++g) {
    std::array<double, kNumAdvisories> next_value{};
    for (std::size_t a = 0; a < kNumAdvisories; ++a) {
      const std::size_t r = g * kNumAdvisories + a;
      double acc = 0.0;
      for (std::size_t j = stencils.group_offsets[r]; j < stencils.group_offsets[r + 1]; ++j) {
        double value = 0.0;
        for (std::size_t k = stencils.entry_offsets[j]; k < stencils.entry_offsets[j + 1]; ++k) {
          value += stencils.weight[k] *
                   static_cast<double>(v_prev[stencils.vertex[k] * kNumAdvisories + a]);
        }
        acc += stencils.group_weight[j] * value;
      }
      next_value[a] = acc;
    }
    float* const q_row = q_out + (g - begin) * kNumAdvisories * kNumAdvisories;
    float* const v_row = v_out + (g - begin) * kNumAdvisories;
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        const double q = action_cost(static_cast<Advisory>(ra), static_cast<Advisory>(a),
                                     config.costs) +
                         next_value[a];
        q_row[ra * kNumAdvisories + a] = static_cast<float>(q);
        best = std::min(best, q);
      }
      v_row[ra] = static_cast<float>(best);
    }
  }
}

LogicTable solve_logic_table(const AcasXuConfig& config, ThreadPool* pool, SolveStats* stats,
                             SolverMode mode) {
  const auto start_time = std::chrono::steady_clock::now();

  StencilSet stencils;
  if (mode == SolverMode::kPrecompiledStencils) {
    double build_seconds = 0.0;
    stencils = StencilSet::adopt(build_stencils_for(config, pool, build_seconds));
    if (stats != nullptr) {
      stats->stencil_entries = stencils.num_entries();
      stats->stencil_build_seconds = build_seconds;
    }
  }
  return run_backward_induction(config, mode == SolverMode::kPrecompiledStencils ? &stencils : nullptr,
                                mode, pool, stats, start_time);
}

CompiledAcasModel::CompiledAcasModel(const AcasXuConfig& config, ThreadPool* pool)
    : config_(config) {
  stencils_ = StencilSet::adopt(build_stencils_for(config, pool, build_seconds_));
}

void CompiledAcasModel::save_stencils(const std::string& path) const {
  save_stencil_image(path, config_, stencils_);
}

CompiledAcasModel CompiledAcasModel::open_stencils(const std::string& path) {
  CompiledAcasModel model;
  model.stencils_ = open_stencil_image(path, &model.config_);
  return model;
}

LogicTable CompiledAcasModel::solve(const CostModel& costs, ThreadPool* pool,
                                    SolveStats* stats) const {
  AcasXuConfig revised = config_;
  revised.costs = costs;
  const auto start_time = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    stats->stencil_entries = stencils_.num_entries();
    stats->stencil_build_seconds = 0.0;  // amortized at construction
  }
  return run_backward_induction(revised, &stencils_, SolverMode::kPrecompiledStencils,
                                pool, stats, start_time);
}

LogicTable CompiledAcasModel::solve(ThreadPool* pool, SolveStats* stats) const {
  return solve(config_.costs, pool, stats);
}

}  // namespace cav::acasx
