#include "acasx/offline_solver.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "acasx/dynamics.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

/// Value function for one tau layer: v[grid_flat * kNumAdvisories + ra].
using ValueLayer = std::vector<float>;

/// Expected next-layer value for one (state, action): average over the
/// applicable acceleration-noise hypotheses, each scattered onto the grid.
double expected_next_value(const GridN<3>& grid, const ValueLayer& v_next, double h,
                           double dh_own, double dh_int, Advisory action,
                           const DynamicsConfig& dyn,
                           const std::array<NoiseSample, 3>& noise) {
  const double dt = dyn.dt_s;
  // Own-ship: deterministic compliance under an advisory, noise under COC.
  const bool own_noisy = (action == Advisory::kCoc);
  const double dh_own_cmd = advisory_rate_response(dh_own, action, dyn);

  const auto ra_next = static_cast<std::size_t>(action);
  double acc = 0.0;
  for (const NoiseSample& own_n : noise) {
    const double w_own = own_noisy ? own_n.weight : (own_n.accel_fps2 == 0.0 ? 1.0 : 0.0);
    if (w_own == 0.0) continue;
    const double dh_own_new =
        std::clamp(dh_own_cmd + (own_noisy ? own_n.accel_fps2 * dt : 0.0),
                   grid.axis(1).lo(), grid.axis(1).hi());
    for (const NoiseSample& int_n : noise) {
      const double dh_int_new =
          std::clamp(dh_int + int_n.accel_fps2 * dt, grid.axis(2).lo(), grid.axis(2).hi());
      const double h_new =
          integrate_relative_altitude(h, dh_own, dh_own_new, dh_int, dh_int_new, dt);
      const auto vertices = grid.scatter({h_new, dh_own_new, dh_int_new});
      double value = 0.0;
      for (const auto& vert : vertices) {
        value += vert.weight *
                 static_cast<double>(v_next[vert.flat * kNumAdvisories + ra_next]);
      }
      acc += w_own * int_n.weight * value;
    }
  }
  return acc;
}

}  // namespace

LogicTable solve_logic_table(const AcasXuConfig& config, ThreadPool* pool, SolveStats* stats) {
  const auto start_time = std::chrono::steady_clock::now();

  LogicTable table(config);
  const GridN<3>& grid = table.grid();
  const std::size_t num_points = grid.size();
  const std::size_t tau_max = config.space.tau_max;
  const auto noise = sigma_samples(config.dynamics.accel_noise_sigma_fps2);

  // Terminal layer (tau = 0): the encounter resolves now; the only thing
  // that matters is whether vertical separation is an NMAC.  The value is
  // independent of rates and advisory memory.
  ValueLayer v_prev(num_points * kNumAdvisories, 0.0F);
  for (std::size_t g = 0; g < num_points; ++g) {
    const auto idx = grid.unflatten(g);
    const double h = grid.axis(0).value(idx[0]);
    const float terminal =
        (std::abs(h) <= config.costs.nmac_h_ft) ? static_cast<float>(config.costs.nmac_cost)
                                                : 0.0F;
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      v_prev[g * kNumAdvisories + ra] = terminal;
    }
    // Q at tau=0 equals the terminal value for every (ra, action) so that
    // online interpolation near tau=0 degrades gracefully.
    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        table.at(0, g, static_cast<Advisory>(ra), static_cast<Advisory>(a)) = terminal;
      }
    }
  }

  ValueLayer v_cur(num_points * kNumAdvisories, 0.0F);

  const auto solve_point = [&](std::size_t tau, std::size_t g) {
    const auto idx = grid.unflatten(g);
    const double h = grid.axis(0).value(idx[0]);
    const double dh_own = grid.axis(1).value(idx[1]);
    const double dh_int = grid.axis(2).value(idx[2]);

    // The expected successor value depends on (state, action) but not on
    // the advisory memory, so hoist it out of the ra loop.
    std::array<double, kNumAdvisories> next_value{};
    for (std::size_t a = 0; a < kNumAdvisories; ++a) {
      next_value[a] = expected_next_value(grid, v_prev, h, dh_own, dh_int,
                                          static_cast<Advisory>(a), config.dynamics, noise);
    }

    for (std::size_t ra = 0; ra < kNumAdvisories; ++ra) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < kNumAdvisories; ++a) {
        const double q = action_cost(static_cast<Advisory>(ra), static_cast<Advisory>(a),
                                     config.costs) +
                         next_value[a];
        table.at(tau, g, static_cast<Advisory>(ra), static_cast<Advisory>(a)) =
            static_cast<float>(q);
        best = std::min(best, q);
      }
      v_cur[g * kNumAdvisories + ra] = static_cast<float>(best);
    }
  };

  for (std::size_t tau = 1; tau <= tau_max; ++tau) {
    if (pool != nullptr) {
      pool->parallel_for(num_points, [&](std::size_t g) { solve_point(tau, g); });
    } else {
      for (std::size_t g = 0; g < num_points; ++g) solve_point(tau, g);
    }
    v_prev.swap(v_cur);
  }

  if (stats != nullptr) {
    stats->states_per_layer = num_points * kNumAdvisories;
    stats->layers = tau_max + 1;
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
  }
  return table;
}

}  // namespace cav::acasx
