#include "acasx/belief_logic.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cav::acasx {
namespace {

/// 3-point Gauss-Hermite-style quadrature matching mean and variance:
/// points {mu - sqrt(3) s, mu, mu + sqrt(3) s}, weights {1/6, 2/3, 1/6}.
struct QuadPoint {
  double value;
  double weight;
};

std::array<QuadPoint, 3> quadrature(double mean, double sigma) {
  if (sigma <= 0.0) return {{{mean, 1.0}, {mean, 0.0}, {mean, 0.0}}};
  const double spread = std::sqrt(3.0) * sigma;
  return {{{mean - spread, 1.0 / 6.0}, {mean, 2.0 / 3.0}, {mean + spread, 1.0 / 6.0}}};
}

}  // namespace

BeliefAwareLogic::BeliefAwareLogic(std::shared_ptr<const LogicTable> table, BeliefConfig belief,
                                   OnlineConfig online)
    : table_(std::move(table)), belief_(belief), online_(online) {
  expect(table_ != nullptr, "logic table provided");
  expect(belief_.h_sigma_ft >= 0.0, "h_sigma_ft >= 0");
  expect(belief_.dh_int_sigma_fps >= 0.0, "dh_int_sigma_fps >= 0");
  last_costs_.fill(0.0);
}

void BeliefAwareLogic::peek_costs(const AircraftTrack& own, const AircraftTrack& intruder,
                                  bool* active, std::span<double, kNumAdvisories> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  const TauEstimate tau = AcasXuLogic::estimate_tau(own, intruder, online_);
  if (!tau.converging || tau.tau_s > online_.tau_alert_max_s) {
    *active = false;
    return;
  }
  *active = true;

  const double h_ft = units::m_to_ft(intruder.position_m.z - own.position_m.z);
  const double dh_own_fps = units::m_to_ft(own.velocity_mps.z);  // own state is known well
  const double dh_int_fps = units::m_to_ft(intruder.velocity_mps.z);

  const auto h_points = quadrature(h_ft, belief_.h_sigma_ft);
  const auto dhi_points = quadrature(dh_int_fps, belief_.dh_int_sigma_fps);

  std::array<double, kNumAdvisories> costs{};
  for (const QuadPoint& hp : h_points) {
    if (hp.weight == 0.0) continue;
    for (const QuadPoint& vp : dhi_points) {
      if (vp.weight == 0.0) continue;
      table_->action_costs(tau.tau_s, hp.value, dh_own_fps, vp.value, ra_, costs);
      const double w = hp.weight * vp.weight;
      for (std::size_t a = 0; a < kNumAdvisories; ++a) out[a] += w * costs[a];
    }
  }
}

Advisory BeliefAwareLogic::decide(const AircraftTrack& own, const AircraftTrack& intruder,
                                  Sense forbidden_sense) {
  last_tau_ = AcasXuLogic::estimate_tau(own, intruder, online_);

  if (!last_tau_.converging || last_tau_.tau_s > online_.tau_alert_max_s) {
    last_costs_.fill(0.0);
    ra_ = Advisory::kCoc;
    return ra_;
  }

  const double h_ft = units::m_to_ft(intruder.position_m.z - own.position_m.z);
  const double dh_own_fps = units::m_to_ft(own.velocity_mps.z);  // own state is known well
  const double dh_int_fps = units::m_to_ft(intruder.velocity_mps.z);

  const auto h_points = quadrature(h_ft, belief_.h_sigma_ft);
  const auto dhi_points = quadrature(dh_int_fps, belief_.dh_int_sigma_fps);

  last_costs_.fill(0.0);
  for (const QuadPoint& hp : h_points) {
    if (hp.weight == 0.0) continue;
    for (const QuadPoint& vp : dhi_points) {
      if (vp.weight == 0.0) continue;
      const auto costs =
          table_->action_costs(last_tau_.tau_s, hp.value, dh_own_fps, vp.value, ra_);
      const double w = hp.weight * vp.weight;
      for (std::size_t a = 0; a < kNumAdvisories; ++a) last_costs_[a] += w * costs[a];
    }
  }

  ra_ = select_advisory(last_costs_, forbidden_sense, ra_);
  return ra_;
}

}  // namespace cav::acasx
