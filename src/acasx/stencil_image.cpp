#include "acasx/stencil_image.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "acasx/advisory.h"
#include "acasx/logic_table.h"
#include "serving/table_image.h"
#include "util/expect.h"

namespace cav::acasx {
namespace {

using serving::TableImage;
using serving::TableImageWriter;
using serving::TableIoError;

void add_stencil_slabs(TableImageWriter& writer, std::string_view prefix,
                       const StencilSet& stencils) {
  const auto name = [&](std::string_view slab) { return std::string(prefix) + std::string(slab); };
  writer.add_slab(name("group_offsets"), stencils.group_offsets);
  writer.add_slab(name("group_weight"), stencils.group_weight);
  writer.add_slab(name("entry_offsets"), stencils.entry_offsets);
  writer.add_slab(name("vertex"), stencils.vertex);
  writer.add_slab(name("weight"), stencils.weight);
}

/// View + validate one stencil set out of a mapped image.  `num_points`
/// is the grid size the embedded config implies; anything inconsistent —
/// wrong row count, non-monotone offsets, dangling ranges, out-of-grid
/// vertices — throws rather than letting the sweep kernel read garbage.
StencilSet view_stencil_slabs(const std::shared_ptr<const TableImage>& image,
                              std::string_view prefix, std::size_t num_points) {
  const auto name = [&](std::string_view slab) { return std::string(prefix) + std::string(slab); };
  StencilSet s;
  s.group_offsets = image->slab_as<std::uint64_t>(name("group_offsets"));
  s.group_weight = image->slab_as<double>(name("group_weight"));
  s.entry_offsets = image->slab_as<std::uint64_t>(name("entry_offsets"));
  s.vertex = image->slab_as<std::uint32_t>(name("vertex"));
  s.weight = image->slab_as<double>(name("weight"));
  s.storage = image;

  const auto fail = [&](const char* reason) {
    throw TableIoError("open_stencil_image", reason, image->path());
  };
  const std::size_t num_rows = num_points * kNumAdvisories;
  if (s.group_offsets.size() != num_rows + 1) fail("stencils do not match the config grid");
  if (s.group_offsets.front() != 0 || s.entry_offsets.empty() || s.entry_offsets.front() != 0) {
    fail("offset slab does not start at zero");
  }
  if (s.group_offsets.back() != s.group_weight.size() ||
      s.entry_offsets.size() != s.group_weight.size() + 1 ||
      s.entry_offsets.back() != s.vertex.size() || s.vertex.size() != s.weight.size()) {
    fail("stencil slab sizes are inconsistent");
  }
  for (std::size_t r = 0; r < num_rows; ++r) {
    if (s.group_offsets[r] > s.group_offsets[r + 1]) fail("group offsets not monotone");
  }
  for (std::size_t j = 0; j < s.group_weight.size(); ++j) {
    if (s.entry_offsets[j] > s.entry_offsets[j + 1]) fail("entry offsets not monotone");
  }
  for (const std::uint32_t v : s.vertex) {
    if (v >= num_points) fail("stencil vertex outside the config grid");
  }
  return s;
}

}  // namespace

void save_stencil_image(const std::string& path, const AcasXuConfig& config,
                        const StencilSet& stencils) {
  expect(stencils.group_offsets.size() == config.space.grid().size() * kNumAdvisories + 1,
         "stencils were built for this config");
  TableImageWriter writer(path, kKindPairStencils);
  LogicTable::encode_config(config, writer);
  add_stencil_slabs(writer, "", stencils);
  writer.finish();
}

StencilSet open_stencil_image(const std::string& path, AcasXuConfig* config_out) {
  expect(config_out != nullptr, "open_stencil_image needs a config out-param");
  auto image = std::make_shared<const TableImage>(TableImage::open(path));
  if (image->kind_name() != kKindPairStencils) {
    throw TableIoError("open_stencil_image", "wrong table kind", path);
  }
  *config_out = LogicTable::decode_config(*image);
  return view_stencil_slabs(image, "", config_out->space.grid().size());
}

void save_joint_stencil_image(const std::string& path, const JointConfig& config,
                              std::span<const StencilSet> per_sense) {
  expect(per_sense.size() == kNumSecondarySenses, "one stencil set per sense class");
  const std::size_t num_points = config.grid().size();
  for (const StencilSet& s : per_sense) {
    expect(s.group_offsets.size() == num_points * kNumAdvisories + 1,
           "stencils were built for this config");
  }
  TableImageWriter writer(path, kKindJointStencils);
  JointLogicTable::encode_config(config, writer);
  for (std::size_t k = 0; k < per_sense.size(); ++k) {
    const std::string prefix = "s" + std::to_string(k) + ".";
    add_stencil_slabs(writer, prefix, per_sense[k]);
  }
  writer.finish();
}

std::array<StencilSet, kNumSecondarySenses> open_joint_stencil_image(const std::string& path,
                                                                     JointConfig* config_out) {
  expect(config_out != nullptr, "open_joint_stencil_image needs a config out-param");
  auto image = std::make_shared<const TableImage>(TableImage::open(path));
  if (image->kind_name() != kKindJointStencils) {
    throw TableIoError("open_joint_stencil_image", "wrong table kind", path);
  }
  *config_out = JointLogicTable::decode_config(*image);
  const std::size_t num_points = config_out->grid().size();
  std::array<StencilSet, kNumSecondarySenses> sets;
  for (std::size_t k = 0; k < kNumSecondarySenses; ++k) {
    const std::string prefix = "s" + std::to_string(k) + ".";
    sets[k] = view_stencil_slabs(image, prefix, num_points);
  }
  return sets;
}

}  // namespace cav::acasx
