// Horizontal resolution logic — the "model revision" the GA's findings
// call for (paper Fig. 1: Simulation Evaluation -> manual model revision).
//
// The validation search (§VII) exposes a *structural* blind spot of the
// vertical logic: tau = (range - DMOD)/closure diverges as closure -> 0,
// so slow tail approaches never alert no matter how the MDP parameters
// are tuned.  The fix has to change the model structure (§IV "Model
// structure"), not its parameters: this module optimizes a second MDP over
// the FULL relative horizontal state — intruder position AND relative
// velocity in the own-ship body frame — with turn advisories as actions.
// Because the state carries the actual relative velocity (a 4 m/s
// overtake is represented exactly, where the tau projection saw "no
// conflict"), a slowly converging intruder sits squarely inside the
// costed region and the logic turns away long before the cylinder is
// violated.
//
// Model (own-ship body frame, own heading = +x, CCW positive):
//   state   (dx, dy, rvx, rvy): intruder relative position [m] and
//           relative velocity [m/s]
//   actions straight / turn-left / turn-right at a fixed rate
//   dynamics positions advance by the relative velocity; an own turn
//            rotates the frame and shifts the relative velocity by the
//            own-ship velocity change (computed at a nominal own speed —
//            the single documented approximation); the intruder's
//            acceleration noise enters as sigma samples on the relative
//            velocity
//   cost    conflict disk |d| <= conflict_radius costs 10000 (absorbing,
//            the §III scale); turning costs 100/step; straight earns 50
//   solve   infinite-horizon discounted value iteration (no tau layering
//            exists here — that is the point)
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "acasx/online_logic.h"
#include "util/angles.h"
#include "util/grid.h"
#include "util/thread_pool.h"

namespace cav::acasx {

enum class TurnAdvisory : std::uint8_t {
  kStraight = 0,
  kTurnLeft,   ///< CCW (positive turn rate)
  kTurnRight,  ///< CW (negative turn rate)
};
inline constexpr std::size_t kNumTurnAdvisories = 3;

const char* turn_advisory_name(TurnAdvisory a);

/// Signed turn rate commanded by an advisory, given the configured rate.
double turn_rate_of(TurnAdvisory a, double turn_rate_rad_s);

struct HorizontalConfig {
  UniformAxis x_m{-2400.0, 2400.0, 21};
  UniformAxis y_m{-2400.0, 2400.0, 21};
  UniformAxis rvx_mps{-80.0, 80.0, 17};
  UniformAxis rvy_mps{-80.0, 80.0, 17};

  double own_speed_mps = 35.0;        ///< nominal own speed (turn-response scale)
  double turn_rate_rad_s = 0.1047;    ///< ~6 deg/s UAV turn
  double dt_s = 1.0;
  double accel_noise_mps2 = 1.0;      ///< intruder horizontal accel sigma (per axis)

  double conflict_radius_m = 200.0;   ///< horizontal conflict disk
  double conflict_cost = 10000.0;     ///< the §III scale
  double turn_cost = 100.0;
  double straight_reward = 50.0;

  double discount = 0.95;
  double tolerance = 0.5;             ///< max-norm VI residual
  std::size_t max_iterations = 200;

  /// Small configuration for tests (same code paths, ~10k states).
  static HorizontalConfig coarse();
};

/// The solved horizontal logic table over (dx, dy, rvx, rvy).
class HorizontalTable {
 public:
  explicit HorizontalTable(const HorizontalConfig& config);

  const HorizontalConfig& config() const { return config_; }
  const GridN<4>& grid() const { return grid_; }
  std::size_t num_entries() const { return q_.size(); }

  float at(std::size_t grid_flat, TurnAdvisory a) const {
    return q_[grid_flat * kNumTurnAdvisories + static_cast<std::size_t>(a)];
  }
  float& at(std::size_t grid_flat, TurnAdvisory a) {
    return q_[grid_flat * kNumTurnAdvisories + static_cast<std::size_t>(a)];
  }

  /// Interpolated per-action costs at a continuous body-frame state.
  std::array<double, kNumTurnAdvisories> action_costs(double dx_m, double dy_m, double rvx_mps,
                                                      double rvy_mps) const;

  /// True when the position is inside the conflict disk.
  bool in_conflict(double dx_m, double dy_m) const;

  std::vector<float>& raw() { return q_; }
  const std::vector<float>& raw() const { return q_; }

 private:
  HorizontalConfig config_;
  GridN<4> grid_;
  std::vector<float> q_;
};

struct HorizontalSolveStats {
  std::size_t states = 0;
  std::size_t iterations = 0;
  double residual = 0.0;
  double wall_seconds = 0.0;
};

/// Solve the horizontal MDP by discounted value iteration.
HorizontalTable solve_horizontal_table(const HorizontalConfig& config, ThreadPool* pool = nullptr,
                                       HorizontalSolveStats* stats = nullptr);

/// Online horizontal logic: body-frame state from tracks, interpolated
/// lookup, chatter-free advisory selection.
class HorizontalLogic {
 public:
  explicit HorizontalLogic(std::shared_ptr<const HorizontalTable> table);

  TurnAdvisory decide(const AircraftTrack& own, const AircraftTrack& intruder);

  TurnAdvisory current_advisory() const { return current_; }
  void reset() { current_ = TurnAdvisory::kStraight; }
  const std::array<double, kNumTurnAdvisories>& last_costs() const { return last_costs_; }

  const HorizontalTable& table() const { return *table_; }

 private:
  std::shared_ptr<const HorizontalTable> table_;
  TurnAdvisory current_ = TurnAdvisory::kStraight;
  std::array<double, kNumTurnAdvisories> last_costs_{};
};

}  // namespace cav::acasx
