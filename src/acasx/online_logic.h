// The online ACAS XU-style controller: estimates the relative encounter
// state and tau from surveillance tracks, interpolates the offline logic
// table, and selects the cost-minimizing advisory subject to coordination.
//
// This is the piece whose weaknesses the paper's GA search exposes: tau is
// estimated from horizontal range and closure rate, so a slow tail
// approach ("the relative speed is very small") yields a huge tau, the
// logic "still thinks the collision risk is low and does not emit collision
// avoidance commands" (§VII) — and a small disturbance can then collide the
// aircraft from close proximity.
#pragma once

#include <array>
#include <limits>
#include <memory>
#include <span>

#include "acasx/logic_table.h"
#include "util/vec3.h"

namespace cav::acasx {

/// Minimal surveillance picture of one aircraft (SI units; sensor noise is
/// the simulator's responsibility — this class trusts its inputs).
struct AircraftTrack {
  Vec3 position_m;   ///< ENU position, z = altitude
  Vec3 velocity_mps; ///< ENU velocity, z = vertical rate
};

/// Result of horizontal tau estimation.
struct TauEstimate {
  double tau_s = std::numeric_limits<double>::infinity();
  double range_ft = 0.0;     ///< current horizontal range
  double closure_fps = 0.0;  ///< positive when horizontally converging
  bool converging = false;   ///< false -> no horizontal conflict predicted
};

struct OnlineConfig {
  /// Horizontal range treated as "separation lost" (tau = 0 inside).
  double dmod_ft = 500.0;
  /// Closure rates below this (ft/s) are treated as non-converging — the
  /// structural cause of the paper's tail-approach blind spot.
  double min_closure_fps = 1.0;
  /// No advisory is considered beyond this tau (table horizon).
  double tau_alert_max_s = 40.0;
};

/// Pick the cost-minimizing advisory subject to a coordination constraint,
/// breaking ties in a stable preference order (keep the current advisory,
/// then COC, then weaker before stronger) so equal-cost regions do not
/// chatter.  Shared by the point-estimate and belief-aware logics.
Advisory select_advisory(std::array<double, kNumAdvisories> costs, Sense forbidden_sense,
                         Advisory current);

class AcasXuLogic {
 public:
  /// The table is shared because every UAV agent in a simulation (and every
  /// parallel simulation in a fitness evaluation) reads the same table.
  explicit AcasXuLogic(std::shared_ptr<const LogicTable> table, OnlineConfig config = {});

  /// Select the advisory for this surveillance cycle.  `forbidden_sense` is
  /// the coordination constraint received from the intruder ("do not choose
  /// maneuvers in the same direction"); kNone means unconstrained.
  Advisory decide(const AircraftTrack& own, const AircraftTrack& intruder,
                  Sense forbidden_sense = Sense::kNone);

  /// Advisory currently displayed (kCoc before the first decide()).
  Advisory current_advisory() const { return ra_; }

  /// Per-advisory costs against one threat at the *current* advisory
  /// memory, without advancing it — the building block of multi-threat
  /// cost fusion (sim/multi_threat.h), where several per-threat cost
  /// vectors are summed before one advisory is committed.  `active` is
  /// false when the threat is outside the alerting envelope (not
  /// converging, or tau beyond the table horizon); the costs are then all
  /// zero and carry no preference.  The span overload writes into caller
  /// storage (the allocation-free serving path); the array form wraps it.
  void peek_costs(const AircraftTrack& own, const AircraftTrack& intruder, bool* active,
                  std::span<double, kNumAdvisories> out) const;
  std::array<double, kNumAdvisories> peek_costs(const AircraftTrack& own,
                                                const AircraftTrack& intruder,
                                                bool* active) const {
    std::array<double, kNumAdvisories> costs{};
    peek_costs(own, intruder, active, costs);
    return costs;
  }

  /// Overwrite the advisory memory with an externally selected advisory
  /// (the resolver's fused choice).  The next peek_costs/decide is then
  /// conditioned on it exactly as if decide() had selected it.
  void set_advisory(Advisory a) { ra_ = a; }

  /// Forget advisory memory (new encounter).
  void reset() { ra_ = Advisory::kCoc; }

  /// Diagnostics from the last decide() call.
  const TauEstimate& last_tau() const { return last_tau_; }
  const std::array<double, kNumAdvisories>& last_costs() const { return last_costs_; }

  /// Horizontal tau estimation, exposed for tests and baselines.
  static TauEstimate estimate_tau(const AircraftTrack& own, const AircraftTrack& intruder,
                                  const OnlineConfig& config);

  const LogicTable& table() const { return *table_; }
  const OnlineConfig& config() const { return config_; }

 private:
  std::shared_ptr<const LogicTable> table_;
  OnlineConfig config_;
  Advisory ra_ = Advisory::kCoc;
  TauEstimate last_tau_{};
  std::array<double, kNumAdvisories> last_costs_{};
};

}  // namespace cav::acasx
