#include "acasx/online_logic.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace cav::acasx {

AcasXuLogic::AcasXuLogic(std::shared_ptr<const LogicTable> table, OnlineConfig config)
    : table_(std::move(table)), config_(config) {
  expect(table_ != nullptr, "logic table provided");
  last_costs_.fill(0.0);
}

TauEstimate AcasXuLogic::estimate_tau(const AircraftTrack& own, const AircraftTrack& intruder,
                                      const OnlineConfig& config) {
  TauEstimate est;
  const double dx = units::m_to_ft(intruder.position_m.x - own.position_m.x);
  const double dy = units::m_to_ft(intruder.position_m.y - own.position_m.y);
  const double dvx = units::m_to_ft(intruder.velocity_mps.x - own.velocity_mps.x);
  const double dvy = units::m_to_ft(intruder.velocity_mps.y - own.velocity_mps.y);

  est.range_ft = std::hypot(dx, dy);
  if (est.range_ft <= 1e-9) {
    // Degenerate coincident horizontal position: separation already lost.
    est.closure_fps = 0.0;
    est.tau_s = 0.0;
    est.converging = true;
    return est;
  }
  // Range rate: d(range)/dt = (d . dv) / |d|; closure is its negative.
  est.closure_fps = -(dx * dvx + dy * dvy) / est.range_ft;

  if (est.range_ft <= config.dmod_ft) {
    est.tau_s = 0.0;
    est.converging = true;
    return est;
  }
  if (est.closure_fps < config.min_closure_fps) {
    // Diverging or drifting: no horizontal conflict is predicted.  This is
    // deliberate fidelity to the tau-based alerting structure — see the
    // file comment about the tail-approach blind spot.
    est.converging = false;
    return est;
  }
  est.tau_s = (est.range_ft - config.dmod_ft) / est.closure_fps;
  est.converging = true;
  return est;
}

Advisory select_advisory(std::array<double, kNumAdvisories> costs, Sense forbidden_sense,
                         Advisory current) {
  // Coordination: the intruder's announced sense is off-limits.
  if (forbidden_sense != Sense::kNone) {
    for (std::size_t a = 0; a < kNumAdvisories; ++a) {
      if (sense_of(static_cast<Advisory>(a)) == forbidden_sense) {
        costs[a] = std::numeric_limits<double>::infinity();
      }
    }
  }

  const double best = *std::min_element(costs.begin(), costs.end());
  const std::array<Advisory, kNumAdvisories + 1> preference{
      current,
      Advisory::kCoc,
      Advisory::kClimb1500,
      Advisory::kDescend1500,
      Advisory::kClimb2500,
      Advisory::kDescend2500,
  };
  constexpr double kTieEps = 1e-9;
  for (const Advisory a : preference) {
    if (costs[static_cast<std::size_t>(a)] <= best + kTieEps) return a;
  }
  return Advisory::kCoc;  // unreachable: preference covers all advisories
}

void AcasXuLogic::peek_costs(const AircraftTrack& own, const AircraftTrack& intruder,
                             bool* active, std::span<double, kNumAdvisories> out) const {
  const TauEstimate tau = estimate_tau(own, intruder, config_);
  if (!tau.converging || tau.tau_s > config_.tau_alert_max_s) {
    *active = false;
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  *active = true;
  const double h_ft = units::m_to_ft(intruder.position_m.z - own.position_m.z);
  const double dh_own_fps = units::m_to_ft(own.velocity_mps.z);
  const double dh_int_fps = units::m_to_ft(intruder.velocity_mps.z);
  table_->action_costs(tau.tau_s, h_ft, dh_own_fps, dh_int_fps, ra_, out);
}

Advisory AcasXuLogic::decide(const AircraftTrack& own, const AircraftTrack& intruder,
                             Sense forbidden_sense) {
  last_tau_ = estimate_tau(own, intruder, config_);

  if (!last_tau_.converging || last_tau_.tau_s > config_.tau_alert_max_s) {
    last_costs_.fill(0.0);
    ra_ = Advisory::kCoc;
    return ra_;
  }

  const double h_ft = units::m_to_ft(intruder.position_m.z - own.position_m.z);
  const double dh_own_fps = units::m_to_ft(own.velocity_mps.z);
  const double dh_int_fps = units::m_to_ft(intruder.velocity_mps.z);

  last_costs_ = table_->action_costs(last_tau_.tau_s, h_ft, dh_own_fps, dh_int_fps, ra_);
  ra_ = select_advisory(last_costs_, forbidden_sense, ra_);
  return ra_;
}

}  // namespace cav::acasx
