// Wiring simulator CAS agents onto a PolicyServer's shared storage.
//
// A PolicyServer opened over f32 images exposes its mmap-backed tables
// (serving/policy_server.h); these factories hand exactly those
// shared_ptrs to the table-backed CAS adapters, so every agent in every
// simulation — and every simulating process on the machine — reads the
// one physical copy of the table pages.  Quantized serving mode has no
// float tables, so these factories reject it (dequantize via
// LogicTable::load to simulate against a compressed image).
#pragma once

#include "acasx/belief_logic.h"
#include "serving/policy_server.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

/// AcasXuCas agents over the server's tables (joint query enabled when the
/// server has a joint table).
CasFactory served_acasx_factory(const serving::PolicyServer& server,
                                acasx::OnlineConfig online = {}, UavPerformance perf = {},
                                TrackerConfig tracker = {});

/// BeliefAcasXuCas agents over the server's tables.
CasFactory served_belief_factory(const serving::PolicyServer& server,
                                 acasx::BeliefConfig belief = {},
                                 acasx::OnlineConfig online = {}, UavPerformance perf = {},
                                 TrackerConfig tracker = {});

}  // namespace cav::sim
