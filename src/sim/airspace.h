// Airspace-scale machinery for the event-driven simulation core (ROADMAP
// item 3): a uniform spatial hash grid over horizontal position so threat
// gating and pair-monitor activation cost O(near pairs) instead of O(K²),
// and a deterministic event queue that carries fault-profile transitions
// (comms-blackout window edges) as first-class scheduled events.
//
// Equivalence contract (asserted by tests/test_sim_equivalence.cpp):
//
//   * `AirspaceConfig::legacy()` — index forced to all-pairs, adaptive
//     timers off — reproduces the pre-refactor fixed-dt engine bit for
//     bit: every RNG draw, monitor update, and coordination delivery
//     happens in the same order with the same operands.
//   * The default config (grid index, 25 km interaction radius, adaptive
//     timers) is bit-identical to legacy() whenever every aircraft pair
//     stays within the interaction radius for the whole run — true of
//     every existing K≤8 scenario, whose geometry spans a few km.  Beyond
//     the radius the model changes deliberately: ADS-B reception has a
//     finite range, so far traffic is unseen (tracks drop), unseen
//     aircraft fly their flight plan on coarse steps, and their pair
//     monitors do not materialize.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/thread_pool.h"
#include "util/vec3.h"

namespace cav::sim {

enum class IndexMode : std::uint8_t {
  kGrid,      ///< uniform hash grid; near = horizontal distance <= radius
  kAllPairs,  ///< every pair is near (the pre-refactor dense engine)
};

/// Parallel logical-process execution (ROADMAP item 3).  The airspace is
/// partitioned into `num_lps` logical processes — grid-column stripes of
/// the spatial hash (a cell at integer x-index cx belongs to LP
/// mod(cx, num_lps)) — whose event loops run on `pool` workers and
/// synchronize at decision-period boundaries.  Every cross-LP exchange
/// (near-pair lists, monitor minima) is merged in the grid's canonical
/// lexicographic order, never in completion order, so the result is
/// bit-identical to the serial engine for every (num_lps, pool,
/// thread-count) choice — including the default {1, nullptr}, which runs
/// the very same code inline.
///
/// `pool` is non-owning and may be shared across simulations, but must
/// NOT be a pool the caller is currently executing on: ThreadPool::
/// wait_idle blocks until the whole pool drains, so nesting a simulation
/// inside one of its own pool's tasks deadlocks.  Campaign code that
/// parallelizes across encounters should keep per-encounter simulations
/// serial (num_lps = 1), or give them a dedicated pool.
struct LpConfig {
  int num_lps = 1;           ///< logical processes (>= 1); 1 = serial
  ThreadPool* pool = nullptr;  ///< workers for the LP event loops; null = inline
};

/// Run fn(lp) for every logical process.  With a pool and more than one
/// LP the calls run concurrently (fn must touch only LP-disjoint state);
/// otherwise they run inline, in LP order, on the calling thread.  The
/// partition — and therefore every result — depends only on num_lps,
/// never on the pool's thread count.
inline void for_each_lp(const LpConfig& parallel, const std::function<void(int)>& fn) {
  if (parallel.pool != nullptr && parallel.num_lps > 1) {
    parallel.pool->parallel_for(static_cast<std::size_t>(parallel.num_lps),
                                [&fn](std::size_t lp) { fn(static_cast<int>(lp)); });
  } else {
    for (int lp = 0; lp < parallel.num_lps; ++lp) fn(lp);
  }
}

/// Contiguous index stripe [begin, end) owned by `lp` out of `num_lps`
/// over `n` items — the load-balancing partition the per-agent phases
/// (integration, surveillance) use.  Deterministic in (n, lp, num_lps).
inline std::pair<std::size_t, std::size_t> lp_index_range(int lp, int num_lps, std::size_t n) {
  const auto l = static_cast<std::size_t>(lp);
  const auto k = static_cast<std::size_t>(num_lps);
  return {l * n / k, (l + 1) * n / k};
}

struct AirspaceConfig {
  IndexMode index_mode = IndexMode::kGrid;
  /// Horizontal ADS-B reception / interaction radius.  Pairs farther apart
  /// than this exchange no surveillance or coordination and are not
  /// monitored.  The 25 km default exceeds the span of every legacy
  /// scenario (encounter geometry tops out near 12 km), so the default
  /// engine reproduces all existing results exactly; city-scale scenarios
  /// override it downward to realistic reception ranges.
  double interaction_radius_m = 25000.0;
  /// Agents with no aircraft inside the interaction radius integrate one
  /// coarse step per decision period instead of densifying to the physics
  /// dt.  Their OU disturbance draws coarsen accordingly (the documented
  /// divergence — only ever engaged beyond the interaction radius).
  bool adaptive_timers = true;
  /// Logical-process parallelism.  The default {1, nullptr} is the serial
  /// engine; any other setting is bit-identical to it (see LpConfig).
  LpConfig parallel;

  /// The pre-refactor engine: dense pairing, fixed dt everywhere.
  static AirspaceConfig legacy() {
    return {IndexMode::kAllPairs, std::numeric_limits<double>::infinity(), false, {}};
  }
};

/// Uniform hash grid over horizontal (x, y) position with cell size equal
/// to the query radius, so a 3×3 neighborhood bounds every near pair.
/// All outputs are in deterministic index order regardless of hash-map
/// iteration order: pairs are emitted lexicographically (i < j, i
/// ascending, j ascending within i).
class SpatialHashGrid {
 public:
  /// Rebuild the grid from scratch.  `cell_size_m` must be positive and
  /// finite; callers with an infinite radius should not use the grid.
  void build(const std::vector<Vec3>& positions, double cell_size_m);

  /// Append every pair (i, j), i < j, with horizontal separation <=
  /// `radius_m` to `out`, in lexicographic order.
  void collect_near_pairs(const std::vector<Vec3>& positions, double radius_m,
                          std::vector<std::pair<int, int>>* out) const;

  /// One logical process's share of collect_near_pairs: the pairs whose
  /// lower aircraft `i` sits in a grid column owned by `lp` (column cx
  /// belongs to LP mod(cx, num_lps)).  Output is in the same lexicographic
  /// order; the LP outputs are disjoint and their (i, j)-sorted union is
  /// exactly the serial collect_near_pairs list.
  void collect_near_pairs_stripe(const std::vector<Vec3>& positions, double radius_m, int lp,
                                 int num_lps, std::vector<std::pair<int, int>>* out) const;

  /// Grid-column stripe owning the aircraft at `position` (mod of the
  /// integer cell x-index).  Only valid after build().
  int stripe_of(const Vec3& position, int num_lps) const;

 private:
  static std::uint64_t cell_key(std::int64_t ix, std::int64_t iy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ix)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(iy));
  }
  std::int64_t cell_of(double coord_m) const;
  void collect_pairs_for(std::size_t i, const std::vector<Vec3>& positions, double radius_m,
                         std::vector<int>* candidates,
                         std::vector<std::pair<int, int>>* out) const;

  double cell_size_m_ = 0.0;
  std::unordered_map<std::uint64_t, std::vector<int>> cells_;
};

/// The airspace view the simulation consults once per decision cycle:
/// which unordered pairs are near, and each agent's sorted neighbor list.
/// In kAllPairs mode every pair is near and the grid is never built.
///
/// With config.parallel.num_lps > 1 (grid mode only), rebuild() fans the
/// pair collection out across logical processes — each LP walks the grid
/// columns it owns — and merges the per-LP lists back into the canonical
/// lexicographic order with one sort, so near_pairs()/neighbors_of() are
/// bit-identical to the serial rebuild for any LP count.
class Airspace {
 public:
  Airspace(const AirspaceConfig& config, std::size_t num_agents);

  /// Recompute near pairs and adjacency from current positions.
  void rebuild(const std::vector<Vec3>& positions);

  const AirspaceConfig& config() const { return config_; }
  bool all_pairs() const { return config_.index_mode == IndexMode::kAllPairs; }

  /// Near pairs (i < j) in lexicographic order.
  const std::vector<std::pair<int, int>>& near_pairs() const { return near_pairs_; }

  /// Ascending ids of the aircraft within the interaction radius of `i`.
  const std::vector<int>& neighbors_of(std::size_t i) const { return neighbors_[i]; }

 private:
  AirspaceConfig config_;
  std::size_t num_agents_;
  SpatialHashGrid grid_;
  std::vector<std::pair<int, int>> near_pairs_;
  std::vector<std::vector<int>> neighbors_;
  /// Per-LP pair-collection scratch, persistent across rebuilds so the
  /// steady-state cycle makes no allocations.
  std::vector<std::vector<std::pair<int, int>>> lp_pairs_;
  bool built_ = false;
};

/// Scheduled simulation events.  Today these are the fault-profile comms
/// transitions; the queue ordering key (time, type, agent, seq) is the
/// contract new event types must slot into.
enum class EventType : std::uint8_t {
  kCommsBlackoutStart = 0,
  kCommsBlackoutEnd = 1,
};

struct Event {
  double t_s = 0.0;
  EventType type = EventType::kCommsBlackoutStart;
  int agent = 0;
  std::uint64_t seq = 0;  ///< insertion order; final determinism tiebreak
};

/// Deterministic min-queue over (t_s, type, agent, seq).  Events are
/// drained against the simulation's accumulated clock (`pop_due`), which
/// is what makes event-driven blackout toggles reproduce the legacy
/// per-cycle `TimeWindow::contains` comparisons exactly: an event with
/// t_e fires at the first decision time t >= t_e, the same half-open
/// boundary the window test evaluated.
class EventQueue {
 public:
  void push(double t_s, EventType type, int agent) {
    heap_.push(Event{t_s, type, agent, next_seq_++});
  }

  bool has_due(double t_s) const { return !heap_.empty() && heap_.top().t_s <= t_s; }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t_s != b.t_s) return a.t_s > b.t_s;
      if (a.type != b.type) return a.type > b.type;
      if (a.agent != b.agent) return a.agent > b.agent;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cav::sim
