#include "sim/monitors.h"

#include <algorithm>

#include "util/expect.h"
#include "util/thread_pool.h"

namespace cav::sim {

void ProximityMeasurer::update(double t_s, const Vec3& a, const Vec3& b) {
  const double d = distance(a, b);
  if (d < report_.min_distance_m) {
    report_.min_distance_m = d;
    report_.time_of_min_distance_s = t_s;
  }
  const double h = horizontal_distance(a, b);
  if (h < report_.min_horizontal_m) report_.min_horizontal_m = h;
  const double v = vertical_distance(a, b);
  if (v < report_.min_vertical_m) report_.min_vertical_m = v;
}

void AccidentDetector::update(double t_s, const Vec3& a, const Vec3& b) {
  const double h = horizontal_distance(a, b);
  const double v = vertical_distance(a, b);
  if (!nmac_ && h < config_.nmac_horizontal_m && v < config_.nmac_vertical_m) {
    nmac_ = true;
    nmac_time_s_ = t_s;
  }
  if (!hard_collision_ && distance(a, b) < config_.collision_radius_m) {
    hard_collision_ = true;
  }
}

PairwiseMonitors::PairwiseMonitors(std::size_t num_agents, const AccidentConfig& config)
    : num_agents_(num_agents), config_(config) {}

std::size_t PairwiseMonitors::find_or_create(std::size_t i, std::size_t j) {
  const auto [it, created] = index_.try_emplace(slot_key(i, j), slots_.size());
  if (created) {
    PairSlot slot;
    slot.a = static_cast<std::uint32_t>(i);
    slot.b = static_cast<std::uint32_t>(j);
    slot.accidents = AccidentDetector(config_);
    slots_.push_back(std::move(slot));
    sorted_valid_ = false;
  }
  return it->second;
}

void PairwiseMonitors::activate_all_pairs() {
  active_.clear();
  for (std::size_t i = 0; i + 1 < num_agents_; ++i) {
    for (std::size_t j = i + 1; j < num_agents_; ++j) {
      active_.push_back(find_or_create(i, j));
    }
  }
}

std::size_t PairwiseMonitors::set_active_pairs(const std::vector<std::pair<int, int>>& pairs) {
  const std::size_t before = slots_.size();
  active_.clear();
  for (const auto& [i, j] : pairs) {
    active_.push_back(find_or_create(static_cast<std::size_t>(i), static_cast<std::size_t>(j)));
  }
  return slots_.size() - before;
}

void PairwiseMonitors::update(double t_s, const std::vector<Vec3>& positions) {
  for (const std::size_t s : active_) {
    PairSlot& slot = slots_[s];
    slot.proximity.update(t_s, positions[slot.a], positions[slot.b]);
    slot.accidents.update(t_s, positions[slot.a], positions[slot.b]);
  }
}

void PairwiseMonitors::update_series(const std::vector<double>& times_s,
                                     const std::vector<std::vector<Vec3>>& position_rows,
                                     std::size_t n_rows, int num_lps, ThreadPool* pool) {
  if (active_.empty() || n_rows == 0) return;
  const std::size_t n_active = active_.size();
  auto run_stripe = [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      PairSlot& slot = slots_[active_[k]];
      for (std::size_t s = 0; s < n_rows; ++s) {
        const std::vector<Vec3>& positions = position_rows[s];
        slot.proximity.update(times_s[s], positions[slot.a], positions[slot.b]);
        slot.accidents.update(times_s[s], positions[slot.a], positions[slot.b]);
      }
    }
  };
  if (pool != nullptr && num_lps > 1) {
    pool->parallel_for(static_cast<std::size_t>(num_lps), [&](std::size_t lp) {
      const std::size_t k = static_cast<std::size_t>(num_lps);
      run_stripe(lp * n_active / k, (lp + 1) * n_active / k);
    });
  } else {
    run_stripe(0, n_active);
  }
}

void PairwiseMonitors::update_new(double t_s, const std::vector<Vec3>& positions,
                                  std::size_t count) {
  for (std::size_t s = slots_.size() - count; s < slots_.size(); ++s) {
    PairSlot& slot = slots_[s];
    slot.proximity.update(t_s, positions[slot.a], positions[slot.b]);
    slot.accidents.update(t_s, positions[slot.a], positions[slot.b]);
  }
}

bool PairwiseMonitors::monitored(std::size_t i, std::size_t j) const {
  return index_.find(slot_key(i, j)) != index_.end();
}

const ProximityMeasurer& PairwiseMonitors::proximity(std::size_t i, std::size_t j) const {
  const auto it = index_.find(slot_key(i, j));
  expect(it != index_.end(), "pair was never monitored");
  return slots_[it->second].proximity;
}

const AccidentDetector& PairwiseMonitors::accidents(std::size_t i, std::size_t j) const {
  const auto it = index_.find(slot_key(i, j));
  expect(it != index_.end(), "pair was never monitored");
  return slots_[it->second].accidents;
}

const std::vector<std::size_t>& PairwiseMonitors::sorted_order() const {
  if (!sorted_valid_) {
    sorted_.resize(slots_.size());
    for (std::size_t s = 0; s < slots_.size(); ++s) sorted_[s] = s;
    std::sort(sorted_.begin(), sorted_.end(), [this](std::size_t x, std::size_t y) {
      if (slots_[x].a != slots_[y].a) return slots_[x].a < slots_[y].a;
      return slots_[x].b < slots_[y].b;
    });
    sorted_valid_ = true;
  }
  return sorted_;
}

const ProximityMeasurer& PairwiseMonitors::proximity_at(std::size_t pair) const {
  return slots_[sorted_order()[pair]].proximity;
}

const AccidentDetector& PairwiseMonitors::accidents_at(std::size_t pair) const {
  return slots_[sorted_order()[pair]].accidents;
}

std::pair<std::size_t, std::size_t> PairwiseMonitors::pair_agents(std::size_t pair) const {
  const PairSlot& slot = slots_[sorted_order()[pair]];
  return {slot.a, slot.b};
}

ProximityReport PairwiseMonitors::aggregate_proximity() const {
  ProximityReport out;
  for (const std::size_t s : sorted_order()) {
    const ProximityReport& r = slots_[s].proximity.report();
    if (r.min_distance_m < out.min_distance_m) {
      out.min_distance_m = r.min_distance_m;
      out.time_of_min_distance_s = r.time_of_min_distance_s;
    }
    if (r.min_horizontal_m < out.min_horizontal_m) out.min_horizontal_m = r.min_horizontal_m;
    if (r.min_vertical_m < out.min_vertical_m) out.min_vertical_m = r.min_vertical_m;
  }
  return out;
}

bool PairwiseMonitors::any_nmac() const {
  for (const PairSlot& slot : slots_) {
    if (slot.accidents.nmac()) return true;
  }
  return false;
}

double PairwiseMonitors::earliest_nmac_time_s() const {
  double earliest = -1.0;
  for (const PairSlot& slot : slots_) {
    if (!slot.accidents.nmac()) continue;
    if (earliest < 0.0 || slot.accidents.nmac_time_s() < earliest) {
      earliest = slot.accidents.nmac_time_s();
    }
  }
  return earliest;
}

bool PairwiseMonitors::any_hard_collision() const {
  for (const PairSlot& slot : slots_) {
    if (slot.accidents.hard_collision()) return true;
  }
  return false;
}

}  // namespace cav::sim
