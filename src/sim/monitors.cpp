#include "sim/monitors.h"

namespace cav::sim {

void ProximityMeasurer::update(double t_s, const Vec3& a, const Vec3& b) {
  const double d = distance(a, b);
  if (d < report_.min_distance_m) {
    report_.min_distance_m = d;
    report_.time_of_min_distance_s = t_s;
  }
  const double h = horizontal_distance(a, b);
  if (h < report_.min_horizontal_m) report_.min_horizontal_m = h;
  const double v = vertical_distance(a, b);
  if (v < report_.min_vertical_m) report_.min_vertical_m = v;
}

void AccidentDetector::update(double t_s, const Vec3& a, const Vec3& b) {
  const double h = horizontal_distance(a, b);
  const double v = vertical_distance(a, b);
  if (!nmac_ && h < config_.nmac_horizontal_m && v < config_.nmac_vertical_m) {
    nmac_ = true;
    nmac_time_s_ = t_s;
  }
  if (!hard_collision_ && distance(a, b) < config_.collision_radius_m) {
    hard_collision_ = true;
  }
}

}  // namespace cav::sim
