#include "sim/monitors.h"

namespace cav::sim {

void ProximityMeasurer::update(double t_s, const Vec3& a, const Vec3& b) {
  const double d = distance(a, b);
  if (d < report_.min_distance_m) {
    report_.min_distance_m = d;
    report_.time_of_min_distance_s = t_s;
  }
  const double h = horizontal_distance(a, b);
  if (h < report_.min_horizontal_m) report_.min_horizontal_m = h;
  const double v = vertical_distance(a, b);
  if (v < report_.min_vertical_m) report_.min_vertical_m = v;
}

void AccidentDetector::update(double t_s, const Vec3& a, const Vec3& b) {
  const double h = horizontal_distance(a, b);
  const double v = vertical_distance(a, b);
  if (!nmac_ && h < config_.nmac_horizontal_m && v < config_.nmac_vertical_m) {
    nmac_ = true;
    nmac_time_s_ = t_s;
  }
  if (!hard_collision_ && distance(a, b) < config_.collision_radius_m) {
    hard_collision_ = true;
  }
}

PairwiseMonitors::PairwiseMonitors(std::size_t num_agents, const AccidentConfig& config)
    : num_agents_(num_agents) {
  const std::size_t pairs = num_agents * (num_agents - 1) / 2;
  proximity_.resize(pairs);
  accidents_.assign(pairs, AccidentDetector(config));
}

std::size_t PairwiseMonitors::pair_index(std::size_t i, std::size_t j) const {
  // Lexicographic order over (i, j) with i < j: pairs before row i, plus
  // the offset of j within row i.
  return i * num_agents_ - i * (i + 1) / 2 + (j - i - 1);
}

std::pair<std::size_t, std::size_t> PairwiseMonitors::pair_agents(std::size_t pair) const {
  std::size_t i = 0;
  while (pair_index(i, num_agents_ - 1) < pair) ++i;
  const std::size_t j = pair - pair_index(i, i + 1) + i + 1;
  return {i, j};
}

void PairwiseMonitors::update(double t_s, const std::vector<Vec3>& positions) {
  std::size_t pair = 0;
  for (std::size_t i = 0; i + 1 < num_agents_; ++i) {
    for (std::size_t j = i + 1; j < num_agents_; ++j, ++pair) {
      proximity_[pair].update(t_s, positions[i], positions[j]);
      accidents_[pair].update(t_s, positions[i], positions[j]);
    }
  }
}

ProximityReport PairwiseMonitors::aggregate_proximity() const {
  ProximityReport out;
  for (const ProximityMeasurer& m : proximity_) {
    const ProximityReport& r = m.report();
    if (r.min_distance_m < out.min_distance_m) {
      out.min_distance_m = r.min_distance_m;
      out.time_of_min_distance_s = r.time_of_min_distance_s;
    }
    if (r.min_horizontal_m < out.min_horizontal_m) out.min_horizontal_m = r.min_horizontal_m;
    if (r.min_vertical_m < out.min_vertical_m) out.min_vertical_m = r.min_vertical_m;
  }
  return out;
}

bool PairwiseMonitors::any_nmac() const {
  for (const AccidentDetector& d : accidents_) {
    if (d.nmac()) return true;
  }
  return false;
}

double PairwiseMonitors::earliest_nmac_time_s() const {
  double earliest = -1.0;
  for (const AccidentDetector& d : accidents_) {
    if (!d.nmac()) continue;
    if (earliest < 0.0 || d.nmac_time_s() < earliest) earliest = d.nmac_time_s();
  }
  return earliest;
}

bool PairwiseMonitors::any_hard_collision() const {
  for (const AccidentDetector& d : accidents_) {
    if (d.hard_collision()) return true;
  }
  return false;
}

}  // namespace cav::sim
