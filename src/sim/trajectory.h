// Trajectory recording and rendering — the headless substitute for the
// paper tool's MASON visualization mode.  Examples dump CSV files and
// render top/side ASCII views of encounters (cf. Figs. 5, 7, 8).
#pragma once

#include <string>
#include <vector>

#include "util/vec3.h"

namespace cav::sim {

struct TrajectorySample {
  double t_s = 0.0;
  Vec3 own_position_m;
  Vec3 intruder_position_m;
  double own_vs_mps = 0.0;
  double intruder_vs_mps = 0.0;
  std::string own_advisory = "COC";
  std::string intruder_advisory = "COC";
  double separation_m = 0.0;
};

using Trajectory = std::vector<TrajectorySample>;

/// One decision-cycle snapshot of an N-aircraft run: index 0 is the
/// own-ship, the rest are intruders (same order as the AgentSetup vector).
struct MultiTrajectorySample {
  double t_s = 0.0;
  std::vector<Vec3> position_m;
  std::vector<double> vs_mps;
  std::vector<std::string> advisory;
};

using MultiTrajectory = std::vector<MultiTrajectorySample>;

/// Write one sample per row (t, positions, rates, advisories, separation).
void write_trajectory_csv(const Trajectory& trajectory, const std::string& path);

/// Long-format CSV for N-aircraft runs: one row per (sample, aircraft).
void write_multi_trajectory_csv(const MultiTrajectory& trajectory, const std::string& path);

/// Plan view (x-y) of both aircraft; own-ship 'o', intruder 'i'; samples
/// where an advisory was active are upper-cased (cf. the red/green maneuver
/// dots in Fig. 5).
std::string render_top_view(const Trajectory& trajectory, int width = 72, int height = 20);

/// Profile view (time vs altitude) of both aircraft, same glyph scheme.
std::string render_side_view(const Trajectory& trajectory, int width = 72, int height = 20);

}  // namespace cav::sim
