// Adapter exposing the ACAS XU online logic as a simulator plug-in.
//
// Multi-threat: the table's per-threat Q-costs are exposed through the
// cost interface (evaluate_costs / commit_fused), with one track smoother
// per threat aircraft so multiple targets never share filter state.  An
// optional joint-threat table (acasx/joint_table.h) additionally answers
// the two-threat joint query (evaluate_joint_costs) from the tracks this
// cycle's evaluate_costs calls already smoothed.  The pairwise decide()
// path and its single smoother are untouched — the nearest-threat policy
// stays bit-identical.
#pragma once

#include <memory>

#include "acasx/joint_table.h"
#include "acasx/online_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class AcasXuCas final : public CollisionAvoidanceSystem {
 public:
  /// `joint` may be null: the system then declines the joint query and
  /// ThreatPolicy::kJointTable degrades to kCostFused behaviour.  (The
  /// joint table trails the parameter list in all three table-backed
  /// CASes — see BeliefAcasXuCas / CombinedCas.)
  AcasXuCas(std::shared_ptr<const acasx::LogicTable> table, acasx::OnlineConfig online = {},
            UavPerformance perf = {}, TrackerConfig tracker = {},
            std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    logic_.reset();
    smoother_.reset();
    threat_smoothers_.clear();
  }
  std::string name() const override { return "ACAS-XU"; }

  bool evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                      ThreatCosts* out) override;
  bool evaluate_joint_costs(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                            const ThreatObservation& secondary, ThreatCosts* out) override;
  CasDecision commit_fused(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                           acasx::Advisory fused) override;
  acasx::Advisory current_advisory() const override { return logic_.current_advisory(); }

  const acasx::AcasXuLogic& logic() const { return logic_; }

  /// Factory capturing the shared table(s); leave `joint` null for a
  /// pairwise-only system (joint query off).
  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> table,
                            acasx::OnlineConfig online = {}, UavPerformance perf = {},
                            TrackerConfig tracker = {},
                            std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

 private:
  CasDecision to_decision(acasx::Advisory advisory) const;

  acasx::AcasXuLogic logic_;
  std::shared_ptr<const acasx::JointLogicTable> joint_;
  UavPerformance perf_;
  TrackSmoother smoother_;  ///< the STM analog: smooths the intruder track
  ThreatSmootherBank threat_smoothers_;  ///< per-threat STM (fused mode)
};

}  // namespace cav::sim
