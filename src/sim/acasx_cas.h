// Adapter exposing the ACAS XU online logic as a simulator plug-in.
//
// Multi-threat: the table's per-threat Q-costs are exposed through the
// cost interface (evaluate_costs / commit_fused), with one track smoother
// per threat aircraft so multiple targets never share filter state.  The
// pairwise decide() path and its single smoother are untouched — the
// nearest-threat policy stays bit-identical.
#pragma once

#include <memory>

#include "acasx/online_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class AcasXuCas final : public CollisionAvoidanceSystem {
 public:
  AcasXuCas(std::shared_ptr<const acasx::LogicTable> table, acasx::OnlineConfig online = {},
            UavPerformance perf = {}, TrackerConfig tracker = {});

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    logic_.reset();
    smoother_.reset();
    threat_smoothers_.clear();
  }
  std::string name() const override { return "ACAS-XU"; }

  bool evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                      ThreatCosts* out) override;
  CasDecision commit_fused(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                           acasx::Advisory fused) override;
  acasx::Advisory current_advisory() const override { return logic_.current_advisory(); }

  const acasx::AcasXuLogic& logic() const { return logic_; }

  /// Factory capturing a shared table.
  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> table,
                            acasx::OnlineConfig online = {}, UavPerformance perf = {},
                            TrackerConfig tracker = {});

 private:
  CasDecision to_decision(acasx::Advisory advisory) const;

  acasx::AcasXuLogic logic_;
  UavPerformance perf_;
  TrackSmoother smoother_;  ///< the STM analog: smooths the intruder track
  ThreatSmootherBank threat_smoothers_;  ///< per-threat STM (fused mode)
};

}  // namespace cav::sim
