// Adapter exposing the ACAS XU online logic as a simulator plug-in.
#pragma once

#include <memory>

#include "acasx/online_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class AcasXuCas final : public CollisionAvoidanceSystem {
 public:
  AcasXuCas(std::shared_ptr<const acasx::LogicTable> table, acasx::OnlineConfig online = {},
            UavPerformance perf = {}, TrackerConfig tracker = {});

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    logic_.reset();
    smoother_.reset();
  }
  std::string name() const override { return "ACAS-XU"; }

  const acasx::AcasXuLogic& logic() const { return logic_; }

  /// Factory capturing a shared table.
  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> table,
                            acasx::OnlineConfig online = {}, UavPerformance perf = {},
                            TrackerConfig tracker = {});

 private:
  acasx::AcasXuLogic logic_;
  UavPerformance perf_;
  TrackSmoother smoother_;  ///< the STM analog: smooths the intruder track
};

}  // namespace cav::sim
