#include "sim/acasx_cas.h"

#include "util/units.h"

namespace cav::sim {

AcasXuCas::AcasXuCas(std::shared_ptr<const acasx::LogicTable> table, acasx::OnlineConfig online,
                     UavPerformance perf, TrackerConfig tracker,
                     std::shared_ptr<const acasx::JointLogicTable> joint)
    : logic_(std::move(table), online), joint_(std::move(joint)), perf_(perf),
      smoother_(tracker) {}

CasDecision AcasXuCas::to_decision(acasx::Advisory advisory) const {
  CasDecision decision;
  decision.label = acasx::advisory_name(advisory);
  decision.sense = acasx::sense_of(advisory);
  if (advisory == acasx::Advisory::kCoc) return decision;

  decision.maneuver = true;
  decision.target_vs_mps = units::fpm_to_mps(acasx::target_rate_fpm(advisory));
  decision.accel_mps2 = acasx::is_strengthened(advisory) ? perf_.accel_strength_mps2
                                                         : perf_.accel_initial_mps2;
  return decision;
}

CasDecision AcasXuCas::decide(const acasx::AircraftTrack& own,
                              const acasx::AircraftTrack& intruder,
                              acasx::Sense forbidden_sense) {
  const acasx::AircraftTrack smoothed = smoother_.update(intruder);
  return to_decision(logic_.decide(own, smoothed, forbidden_sense));
}

bool AcasXuCas::evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                               ThreatCosts* out) {
  const acasx::AircraftTrack smoothed =
      threat_smoothers_.smooth(threat.aircraft_id, threat.track, smoother_.config());
  logic_.peek_costs(own, smoothed, &out->active, out->costs);
  return true;
}

bool AcasXuCas::evaluate_joint_costs(const acasx::AircraftTrack& own,
                                     const ThreatObservation& primary,
                                     const ThreatObservation& secondary, ThreatCosts* out) {
  if (joint_ == nullptr) return false;
  // Read the smoothed tracks this cycle's evaluate_costs calls produced —
  // the protocol (sim/cas.h) forbids advancing the smoothers here.
  const acasx::AircraftTrack& a = threat_smoothers_.current_or(primary.aircraft_id,
                                                              primary.track);
  const acasx::AircraftTrack& b = threat_smoothers_.current_or(secondary.aircraft_id,
                                                              secondary.track);
  acasx::joint_action_costs(*joint_, own, a, b, logic_.current_advisory(), logic_.config(),
                            &out->active, out->costs);
  return true;
}

CasDecision AcasXuCas::commit_fused(const acasx::AircraftTrack&, const ThreatObservation&,
                                    acasx::Advisory fused) {
  logic_.set_advisory(fused);
  return to_decision(fused);
}

CasFactory AcasXuCas::factory(std::shared_ptr<const acasx::LogicTable> table,
                              acasx::OnlineConfig online, UavPerformance perf,
                              TrackerConfig tracker,
                              std::shared_ptr<const acasx::JointLogicTable> joint) {
  return [table = std::move(table), joint = std::move(joint), online, perf,
          tracker]() -> std::unique_ptr<CollisionAvoidanceSystem> {
    return std::make_unique<AcasXuCas>(table, online, perf, tracker, joint);
  };
}

}  // namespace cav::sim
