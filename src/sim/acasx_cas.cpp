#include "sim/acasx_cas.h"

#include "util/units.h"

namespace cav::sim {

AcasXuCas::AcasXuCas(std::shared_ptr<const acasx::LogicTable> table, acasx::OnlineConfig online,
                     UavPerformance perf, TrackerConfig tracker)
    : logic_(std::move(table), online), perf_(perf), smoother_(tracker) {}

CasDecision AcasXuCas::to_decision(acasx::Advisory advisory) const {
  CasDecision decision;
  decision.label = acasx::advisory_name(advisory);
  decision.sense = acasx::sense_of(advisory);
  if (advisory == acasx::Advisory::kCoc) return decision;

  decision.maneuver = true;
  decision.target_vs_mps = units::fpm_to_mps(acasx::target_rate_fpm(advisory));
  decision.accel_mps2 = acasx::is_strengthened(advisory) ? perf_.accel_strength_mps2
                                                         : perf_.accel_initial_mps2;
  return decision;
}

CasDecision AcasXuCas::decide(const acasx::AircraftTrack& own,
                              const acasx::AircraftTrack& intruder,
                              acasx::Sense forbidden_sense) {
  const acasx::AircraftTrack smoothed = smoother_.update(intruder);
  return to_decision(logic_.decide(own, smoothed, forbidden_sense));
}

bool AcasXuCas::evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                               ThreatCosts* out) {
  const acasx::AircraftTrack smoothed =
      threat_smoothers_.smooth(threat.aircraft_id, threat.track, smoother_.config());
  out->costs = logic_.peek_costs(own, smoothed, &out->active);
  return true;
}

CasDecision AcasXuCas::commit_fused(const acasx::AircraftTrack&, const ThreatObservation&,
                                    acasx::Advisory fused) {
  logic_.set_advisory(fused);
  return to_decision(fused);
}

CasFactory AcasXuCas::factory(std::shared_ptr<const acasx::LogicTable> table,
                              acasx::OnlineConfig online, UavPerformance perf,
                              TrackerConfig tracker) {
  return [table = std::move(table), online, perf,
          tracker]() -> std::unique_ptr<CollisionAvoidanceSystem> {
    return std::make_unique<AcasXuCas>(table, online, perf, tracker);
  };
}

}  // namespace cav::sim
