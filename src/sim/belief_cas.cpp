#include "sim/belief_cas.h"

#include "util/units.h"

namespace cav::sim {

BeliefAcasXuCas::BeliefAcasXuCas(std::shared_ptr<const acasx::LogicTable> table,
                                 acasx::BeliefConfig belief, acasx::OnlineConfig online,
                                 UavPerformance perf, TrackerConfig tracker,
                                 std::shared_ptr<const acasx::JointLogicTable> joint)
    : logic_(std::move(table), belief, online), joint_(std::move(joint)), perf_(perf),
      smoother_(tracker) {}

CasDecision BeliefAcasXuCas::to_decision(acasx::Advisory advisory) const {
  CasDecision decision;
  decision.label = acasx::advisory_name(advisory);
  decision.sense = acasx::sense_of(advisory);
  if (advisory == acasx::Advisory::kCoc) return decision;

  decision.maneuver = true;
  decision.target_vs_mps = units::fpm_to_mps(acasx::target_rate_fpm(advisory));
  decision.accel_mps2 = acasx::is_strengthened(advisory) ? perf_.accel_strength_mps2
                                                         : perf_.accel_initial_mps2;
  return decision;
}

CasDecision BeliefAcasXuCas::decide(const acasx::AircraftTrack& own,
                                    const acasx::AircraftTrack& intruder,
                                    acasx::Sense forbidden_sense) {
  const acasx::AircraftTrack smoothed = smoother_.update(intruder);
  return to_decision(logic_.decide(own, smoothed, forbidden_sense));
}

bool BeliefAcasXuCas::evaluate_costs(const acasx::AircraftTrack& own,
                                     const ThreatObservation& threat, ThreatCosts* out) {
  const acasx::AircraftTrack smoothed =
      threat_smoothers_.smooth(threat.aircraft_id, threat.track, smoother_.config());
  logic_.peek_costs(own, smoothed, &out->active, out->costs);
  return true;
}

bool BeliefAcasXuCas::evaluate_joint_costs(const acasx::AircraftTrack& own,
                                           const ThreatObservation& primary,
                                           const ThreatObservation& secondary,
                                           ThreatCosts* out) {
  if (joint_ == nullptr) return false;
  // Point-estimate joint query on the tracks this cycle's evaluate_costs
  // calls smoothed (the belief quadrature covers the pairwise path only).
  const acasx::AircraftTrack& a = threat_smoothers_.current_or(primary.aircraft_id,
                                                              primary.track);
  const acasx::AircraftTrack& b = threat_smoothers_.current_or(secondary.aircraft_id,
                                                              secondary.track);
  acasx::joint_action_costs(*joint_, own, a, b, logic_.current_advisory(),
                            logic_.online_config(), &out->active, out->costs);
  return true;
}

CasDecision BeliefAcasXuCas::commit_fused(const acasx::AircraftTrack&, const ThreatObservation&,
                                          acasx::Advisory fused) {
  logic_.set_advisory(fused);
  return to_decision(fused);
}

CasFactory BeliefAcasXuCas::factory(std::shared_ptr<const acasx::LogicTable> table,
                                    acasx::BeliefConfig belief, acasx::OnlineConfig online,
                                    UavPerformance perf, TrackerConfig tracker,
                                    std::shared_ptr<const acasx::JointLogicTable> joint) {
  return [table = std::move(table), belief, online, perf, tracker,
          joint = std::move(joint)]() -> std::unique_ptr<CollisionAvoidanceSystem> {
    return std::make_unique<BeliefAcasXuCas>(table, belief, online, perf, tracker, joint);
  };
}

}  // namespace cav::sim
