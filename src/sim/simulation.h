// N-aircraft encounter simulation (§VI.C): "The environment in our
// simulation is a 3-D infinite flight area ... When simulation begins, the
// two UAVs fly following their initial velocities but also be affected by
// environment disturbance.  The collision avoidance algorithm is
// incorporated into the UAVs."  The engine generalizes the paper's
// two-aircraft setup to any number of aircraft; the two-aircraft path is
// the same code and produces the same results.
//
// Structure per decision cycle (1 Hz by default), aircraft in index order:
//   1. each equipped UAV receives every other aircraft's ADS-B broadcast
//      (white sensor noise, optional dropout -> coast on the last track
//      heard for that aircraft);
//   2. it turns the tracks it holds into one advisory under the configured
//      ThreatPolicy — kNearest runs the (pairwise) collision avoidance
//      system against the nearest track, constrained by the coordination
//      sense that threat last delivered; kCostFused and kJointTable
//      arbitrate every gated threat through sim::MultiThreatResolver —
//      then broadcasts its own sense;
//   3. dynamics integrate at the (faster) physics rate with environment
//      disturbance, while per-pair monitors watch every true separation.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/cas.h"
#include "sim/coordination.h"
#include "sim/monitors.h"
#include "sim/multi_threat.h"
#include "sim/sensors.h"
#include "sim/trajectory.h"
#include "sim/uav.h"
#include "util/rng.h"

namespace cav::sim {

struct SimConfig {
  double dt_dynamics_s = 0.1;     ///< physics integration step
  double decision_period_s = 1.0; ///< surveillance/decision cycle
  double max_time_s = 120.0;      ///< hard stop
  DisturbanceConfig disturbance;
  AdsbConfig adsb;
  CoordinationConfig coordination;
  AccidentConfig accident;
  /// kNearest reproduces the PR 3 engine bit-identically (and is the
  /// paper's pairwise setup for two aircraft); kCostFused arbitrates all
  /// gated threats per cycle; kJointTable additionally prices the two
  /// most severe threats through the joint-threat table when the CAS
  /// carries one (multi_threat.h).
  ThreatPolicy threat_policy = ThreatPolicy::kNearest;
  ThreatGateConfig threat_gate;   ///< only read under kCostFused/kJointTable
  bool record_trajectory = false; ///< keep per-decision-cycle samples
};

struct AgentReport {
  bool ever_alerted = false;
  double first_alert_time_s = -1.0;
  int alert_cycles = 0;       ///< decision cycles with an active maneuver
  int reversals = 0;          ///< sense flips between issued advisories
                              ///< (counted across COC coasting gaps)
  std::string final_advisory = "COC";
  ResolverStats resolver;     ///< multi-threat arbitration stats (kCostFused)
};

/// Monitor outcome for one unordered aircraft pair (a < b).
struct PairReport {
  int a = 0;
  int b = 1;
  ProximityReport proximity;
  bool nmac = false;
  double nmac_time_s = -1.0;
  bool hard_collision = false;
};

struct SimResult {
  ProximityReport proximity;  ///< minima over every aircraft pair
  bool nmac = false;          ///< any pair penetrated the NMAC cylinder
  double nmac_time_s = -1.0;  ///< earliest penetration across pairs
  bool hard_collision = false;
  AgentReport own;            ///< agents[0], mirrored for the pairwise API
  AgentReport intruder;       ///< agents[1], mirrored for the pairwise API
  std::vector<AgentReport> agents;  ///< one per aircraft, in setup order
  std::vector<PairReport> pairs;    ///< lexicographic (a < b)
  double elapsed_s = 0.0;
  Trajectory trajectory;            ///< own vs first intruder (legacy view);
                                    ///< empty unless record_trajectory
  MultiTrajectory multi_trajectory; ///< all aircraft; same sampling

  /// The fitness distance d_k of the paper (§VII): 0 on a mid-air
  /// collision, otherwise the minimum 3-D separation over the run.
  double miss_distance_m() const { return nmac ? 0.0 : proximity.min_distance_m; }

  /// Own-ship-centric variants over the pairs involving aircraft 0 — the
  /// multi-intruder fitness ignores intruder-vs-intruder proximity.
  bool own_nmac() const;
  double own_min_separation_m() const;
  double own_miss_distance_m() const {
    return own_nmac() ? 0.0 : own_min_separation_m();
  }

  const PairReport& pair(int a, int b) const;
};

/// Initial condition + avoidance system for one aircraft.
struct AgentSetup {
  UavState initial_state;
  std::unique_ptr<CollisionAvoidanceSystem> cas;  ///< may be null (unequipped)
  UavPerformance performance;
};

/// Per-aircraft bookkeeping during a run.
struct AgentRuntime {
  UavAgent agent;
  std::unique_ptr<CollisionAvoidanceSystem> cas;  ///< may be null
  std::vector<std::optional<acasx::AircraftTrack>> last_track_of;  ///< per aircraft id
  AgentReport report;
  acasx::Sense last_sense = acasx::Sense::kNone;  ///< announced sense (COC clears it)
  acasx::Sense last_issued_sense = acasx::Sense::kNone;  ///< survives COC gaps
  std::string current_label = "COC";
  RngStream rng_adsb;
  RngStream rng_disturbance;
  /// Scratch for the kCostFused threat list, reused across decision cycles
  /// so the Monte-Carlo hot path does not allocate per cycle.
  std::vector<ThreatObservation> threat_scratch;
};

/// One N-aircraft encounter.  All stochastic draws derive from `seed` and
/// the aircraft index, so identical inputs give identical results
/// regardless of thread; with two aircraft the engine reproduces the
/// original pairwise simulation exactly.
class Simulation {
 public:
  Simulation(const SimConfig& config, std::vector<AgentSetup> agents, std::uint64_t seed);

  std::size_t num_agents() const { return runtimes_.size(); }

  /// Run to the configured time limit and collect the result.
  SimResult run();

 private:
  void decide_for(AgentRuntime& me, std::size_t my_id, double t_s);
  void decide_all(double t_s);
  void record_sample(double t_s, SimResult& result) const;
  void update_monitors(double t_s);

  SimConfig config_;
  std::vector<AgentRuntime> runtimes_;
  CoordinationChannel coord_;
  AdsbSensor sensor_;
  PairwiseMonitors monitors_;
  MultiThreatResolver resolver_;  ///< arbitration layer (kCostFused)
  RngStream rng_coord_;
  std::vector<Vec3> positions_;  ///< scratch for monitor updates
};

/// Run one two-aircraft encounter to completion (the paper's setup).
SimResult run_encounter(const SimConfig& config, AgentSetup own, AgentSetup intruder,
                        std::uint64_t seed);

/// Run one N-aircraft encounter; `agents[0]` is the own-ship.
SimResult run_multi_encounter(const SimConfig& config, std::vector<AgentSetup> agents,
                              std::uint64_t seed);

}  // namespace cav::sim
