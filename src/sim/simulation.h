// Two-UAV encounter simulation (§VI.C): "The environment in our simulation
// is a 3-D infinite flight area ... When simulation begins, the two UAVs
// fly following their initial velocities but also be affected by
// environment disturbance.  The collision avoidance algorithm is
// incorporated into the UAVs."
//
// Structure per decision cycle (1 Hz by default):
//   1. each UAV receives the other's ADS-B broadcast (white sensor noise,
//      optional dropout -> coast on last track);
//   2. each UAV runs its collision avoidance system, constrained by the
//      coordination sense last announced by the other aircraft, then
//      announces its own sense;
//   3. dynamics integrate at the (faster) physics rate with environment
//      disturbance, while the monitors watch true separations.
#pragma once

#include <memory>
#include <optional>

#include "sim/cas.h"
#include "sim/coordination.h"
#include "sim/monitors.h"
#include "sim/sensors.h"
#include "sim/trajectory.h"
#include "sim/uav.h"
#include "util/rng.h"

namespace cav::sim {

struct SimConfig {
  double dt_dynamics_s = 0.1;     ///< physics integration step
  double decision_period_s = 1.0; ///< surveillance/decision cycle
  double max_time_s = 120.0;      ///< hard stop
  DisturbanceConfig disturbance;
  AdsbConfig adsb;
  CoordinationConfig coordination;
  AccidentConfig accident;
  bool record_trajectory = false; ///< keep per-decision-cycle samples
};

struct AgentReport {
  bool ever_alerted = false;
  double first_alert_time_s = -1.0;
  int alert_cycles = 0;       ///< decision cycles with an active maneuver
  int reversals = 0;          ///< sense flips between consecutive maneuvers
  std::string final_advisory = "COC";
};

struct SimResult {
  ProximityReport proximity;
  bool nmac = false;
  double nmac_time_s = -1.0;
  bool hard_collision = false;
  AgentReport own;
  AgentReport intruder;
  double elapsed_s = 0.0;
  Trajectory trajectory;  ///< empty unless SimConfig::record_trajectory

  /// The fitness distance d_k of the paper (§VII): 0 on a mid-air
  /// collision, otherwise the minimum 3-D separation over the run.
  double miss_distance_m() const { return nmac ? 0.0 : proximity.min_distance_m; }
};

/// Initial condition + avoidance system for one aircraft.
struct AgentSetup {
  UavState initial_state;
  std::unique_ptr<CollisionAvoidanceSystem> cas;  ///< may be null (unequipped)
  UavPerformance performance;
};

/// Run one encounter to completion.  All stochastic draws derive from
/// `seed`, so identical inputs give identical results regardless of thread.
SimResult run_encounter(const SimConfig& config, AgentSetup own, AgentSetup intruder,
                        std::uint64_t seed);

}  // namespace cav::sim
