// N-aircraft encounter simulation (§VI.C): "The environment in our
// simulation is a 3-D infinite flight area ... When simulation begins, the
// two UAVs fly following their initial velocities but also be affected by
// environment disturbance.  The collision avoidance algorithm is
// incorporated into the UAVs."  The engine generalizes the paper's
// two-aircraft setup to any number of aircraft; the two-aircraft path is
// the same code and produces the same results.
//
// Structure per decision cycle (1 Hz by default):
//   1. surveillance: each equipped UAV receives every in-radius aircraft's
//      ADS-B broadcast (white sensor noise, optional dropout -> coast on
//      the last track heard for that aircraft; under a FaultProfile
//      additionally dropout bursts, per-axis bias, and a staleness horizon
//      that drops coasted tracks — faults.h);
//   2. decision + coordination, aircraft strictly in index order: each UAV
//      turns the tracks it holds into one advisory under the configured
//      ThreatPolicy — kNearest runs the (pairwise) collision avoidance
//      system against the nearest track, constrained by the coordination
//      sense that threat last delivered; kCostFused and kJointTable
//      arbitrate every gated threat through sim::MultiThreatResolver —
//      then broadcasts its own sense (skipped while its comms are blacked
//      out or the aircraft is coordination-silent);
//   3. dynamics integrate at the (faster) physics rate with environment
//      disturbance, while per-pair monitors watch every true separation.
//
// Phases 1 and 3 are per-agent / per-pair independent (every draw comes
// from a per-(seed, purpose, aircraft) stream; truth states are frozen
// during the cycle) and run on the logical processes configured by
// AirspaceConfig::parallel — bit-identically to the serial sweep for any
// LP/thread count.  Phase 2 is the engine's serial section: aircraft i's
// decision reads the coordination posts of aircraft j < i from this very
// cycle, and every post draws from the single shared coordination stream,
// so decisions and posts are sequentially coupled by design (the paper's
// own-ship -> intruder coordination command); LPs synchronize at exactly
// this boundary.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/airspace.h"
#include "sim/cas.h"
#include "sim/coordination.h"
#include "sim/faults.h"
#include "sim/monitors.h"
#include "sim/multi_threat.h"
#include "sim/sensors.h"
#include "sim/trajectory.h"
#include "sim/uav.h"
#include "util/rng.h"

namespace cav::sim {

struct SimConfig {
  double dt_dynamics_s = 0.1;     ///< physics integration step
  double decision_period_s = 1.0; ///< surveillance/decision cycle
  double max_time_s = 120.0;      ///< hard stop
  DisturbanceConfig disturbance;
  AdsbConfig adsb;                ///< white noise + i.i.d. dropout (all links)
  /// Loss model for the coordination datalink, including the per-link
  /// Gilbert–Elliott burst states and the staleness TTL (coordination.h).
  CoordinationConfig coordination;
  AccidentConfig accident;
  /// Fleet-wide fault profile (faults.h): comms blackout windows, ADS-B
  /// dropout bursts / per-axis bias, and the track-staleness horizon.
  /// Applied to every aircraft unless AgentSetup::fault overrides it.
  /// The default none() profile injects nothing and keeps the engine
  /// bit-identical to the pre-fault seed path.
  FaultProfile fault;
  /// kNearest reproduces the PR 3 engine bit-identically (and is the
  /// paper's pairwise setup for two aircraft); kCostFused arbitrates all
  /// gated threats per cycle; kJointTable additionally prices the two
  /// most severe threats through the joint-threat table when the CAS
  /// carries one (multi_threat.h).
  ThreatPolicy threat_policy = ThreatPolicy::kNearest;
  ThreatGateConfig threat_gate;   ///< only read under kCostFused/kJointTable
  /// Spatial index + adaptive-timer configuration (airspace.h).  The
  /// default (grid, 25 km radius, adaptive) reproduces every legacy
  /// scenario exactly because their geometry never spans the radius;
  /// `AirspaceConfig::legacy()` forces the dense fixed-dt engine.
  AirspaceConfig airspace;
  bool record_trajectory = false; ///< keep per-decision-cycle samples
  /// Record every Nth decision-cycle sample (1 = every cycle, the
  /// pre-decimation behavior).  City-scale runs set this higher so a
  /// recorded trajectory of 1000 aircraft stays bounded.
  int record_every_n = 1;
};

/// Event-core accounting for one run — what the adaptive engine actually
/// did, so benches and tests can assert O(near pairs) behavior instead of
/// inferring it from wall clock alone.
struct SimStats {
  std::uint64_t decision_cycles = 0;
  std::uint64_t fine_agent_steps = 0;    ///< UavAgent::step calls at the physics dt
  std::uint64_t coarse_agent_steps = 0;  ///< one-per-decision-period catch-up steps
  std::uint64_t fault_events = 0;        ///< blackout toggles popped off the event queue
  std::uint64_t pair_updates = 0;        ///< per-pair monitor updates
  std::size_t monitored_pairs = 0;       ///< pair-monitor slots materialized
  std::size_t peak_active_pairs = 0;     ///< largest per-cycle near-pair set
};

struct AgentReport {
  bool ever_alerted = false;
  double first_alert_time_s = -1.0;
  int alert_cycles = 0;       ///< decision cycles with an active maneuver
  int reversals = 0;          ///< sense flips between issued advisories
                              ///< (counted across COC coasting gaps)
  std::string final_advisory = "COC";
  /// Multi-threat arbitration stats — populated under both kCostFused and
  /// kJointTable (joint_cycles is nonzero only under the latter); zeroed
  /// under kNearest, which never reaches the resolver.
  ResolverStats resolver;
};

/// Monitor outcome for one unordered aircraft pair (a < b).
struct PairReport {
  int a = 0;
  int b = 1;
  ProximityReport proximity;
  bool nmac = false;
  double nmac_time_s = -1.0;
  bool hard_collision = false;
};

struct SimResult {
  ProximityReport proximity;  ///< minima over every aircraft pair
  bool nmac = false;          ///< any pair penetrated the NMAC cylinder
  double nmac_time_s = -1.0;  ///< earliest penetration across pairs
  bool hard_collision = false;
  AgentReport own;            ///< agents[0], mirrored for the pairwise API
  AgentReport intruder;       ///< agents[1], mirrored for the pairwise API
  std::vector<AgentReport> agents;  ///< one per aircraft, in setup order
  /// Monitored pairs, sorted by (a, b).  Under the dense/legacy index this
  /// is every pair; under the grid index only pairs that ever came within
  /// the interaction radius materialize.
  std::vector<PairReport> pairs;
  double elapsed_s = 0.0;
  double wall_time_s = 0.0;  ///< host wall clock consumed by run(); not
                             ///< part of the determinism contract
  SimStats stats;
  Trajectory trajectory;            ///< own vs first intruder (legacy view);
                                    ///< empty unless record_trajectory
  MultiTrajectory multi_trajectory; ///< all aircraft; same sampling

  /// The fitness distance d_k of the paper (§VII): 0 on a mid-air
  /// collision, otherwise the minimum 3-D separation over the run.
  double miss_distance_m() const { return nmac ? 0.0 : proximity.min_distance_m; }

  /// Own-ship-centric variants over the pairs involving aircraft 0 — the
  /// multi-intruder fitness ignores intruder-vs-intruder proximity.
  bool own_nmac() const;
  double own_min_separation_m() const;
  double own_miss_distance_m() const {
    return own_nmac() ? 0.0 : own_min_separation_m();
  }

  const PairReport& pair(int a, int b) const;
};

/// Initial condition + avoidance system for one aircraft.
struct AgentSetup {
  UavState initial_state;
  std::unique_ptr<CollisionAvoidanceSystem> cas;  ///< may be null (unequipped)
  UavPerformance performance;
  /// Per-aircraft fault profile; overrides SimConfig::fault for this
  /// aircraft when set (mixed fleets: one degraded receiver, one
  /// non-cooperative intruder, ...).
  std::optional<FaultProfile> fault;
  /// Whether this aircraft's maneuvers count in the alert statistics.
  /// Scripted adversaries (ScriptedManeuverCas) set this false: their
  /// maneuvers are attacks, not avoidance alerts.
  bool count_alerts = true;
};

/// Surveillance state one aircraft holds about one other aircraft.  Slots
/// exist only for aircraft inside the interaction radius (every other
/// aircraft under the dense index), kept sorted by target id so the
/// per-cycle reception order — and therefore the ADS-B draw sequence — is
/// ascending, exactly as the dense engine's 0..K loop drew it.
struct TrackSlot {
  int target = -1;
  std::optional<acasx::AircraftTrack> track;  ///< nullopt: never heard / dropped stale
  int age_cycles = 0;        ///< decision cycles since last reception
  int burst_cycles_left = 0; ///< active ADS-B dropout burst
};

/// Per-aircraft bookkeeping during a run.
struct AgentRuntime {
  UavAgent agent;
  std::unique_ptr<CollisionAvoidanceSystem> cas;  ///< may be null
  std::vector<TrackSlot> tracks;  ///< sorted by target id; in-radius targets only
  AgentReport report;
  acasx::Sense last_sense = acasx::Sense::kNone;  ///< announced sense (COC clears it)
  acasx::Sense last_issued_sense = acasx::Sense::kNone;  ///< survives COC gaps
  std::string current_label = "COC";
  RngStream rng_adsb;
  RngStream rng_disturbance;
  /// Burst start/length draws for ADS-B dropout bursts — separate from
  /// rng_adsb so a bias-only or burst-free profile leaves the noise draw
  /// sequence untouched.
  RngStream rng_fault;
  /// Scratch for the kCostFused threat list, reused across decision cycles
  /// so the Monte-Carlo hot path does not allocate per cycle.
  std::vector<ThreatObservation> threat_scratch;
  std::vector<TrackSlot> tracks_scratch;  ///< merge buffer for the track set
  FaultProfile fault;             ///< resolved profile (agent override or fleet)
  bool count_alerts = true;
  /// Adaptive-timer state: an active agent (some aircraft inside its
  /// interaction radius) integrates at the physics dt; an inactive one
  /// takes a single catch-up step per decision period.  Always active
  /// when adaptive timers are off.
  bool active = true;
  double last_step_t_s = 0.0;  ///< simulation time this agent is integrated to
};

/// One N-aircraft encounter.  All stochastic draws derive from `seed` and
/// the aircraft index, so identical inputs give identical results
/// regardless of thread; with two aircraft the engine reproduces the
/// original pairwise simulation exactly.
class Simulation {
 public:
  Simulation(const SimConfig& config, std::vector<AgentSetup> agents, std::uint64_t seed);

  std::size_t num_agents() const { return runtimes_.size(); }

  /// Run to the configured time limit and collect the result.
  SimResult run();

 private:
  void decide_for(AgentRuntime& me, std::size_t my_id, double t_s);
  void decide_all(double t_s);
  void receive_track(AgentRuntime& me, TrackSlot& slot);
  void refresh_tracks(AgentRuntime& me, const std::vector<int>& neighbors);
  /// Surveillance phase: every equipped agent receives this cycle's
  /// in-radius broadcasts.  Each agent touches only its own streams and
  /// reads frozen truth states, so the phase runs LP-parallel and is
  /// bit-identical to the legacy per-agent interleaving.
  void refresh_surveillance();
  void record_sample(double t_s, SimResult& result) const;
  void refresh_positions(bool active_only);
  /// Drain due fault events, catch up coarse agents, rebuild the spatial
  /// index, refresh the monitor set, and recompute the active set — the
  /// per-decision-cycle event-core work, before the decisions themselves.
  void begin_decision_cycle(double t_s, SimStats* stats);
  /// The LP event loop for one decision period: integrate every active
  /// agent through `n_sub` physics substeps (recording a position snapshot
  /// per substep) and replay the snapshots through the pair monitors.
  /// `tail_dt`, when positive, replaces the physics dt on the last substep
  /// (the clamped run-closing step).  Advances *t_io to the period end.
  void advance_period(double* t_io, std::size_t n_sub, double tail_dt, SimStats* stats);

  SimConfig config_;
  std::vector<AgentRuntime> runtimes_;
  CoordinationChannel coord_;
  AdsbSensor sensor_;
  PairwiseMonitors monitors_;
  MultiThreatResolver resolver_;  ///< arbitration layer (kCostFused/kJointTable)
  RngStream rng_coord_;
  Airspace airspace_;             ///< spatial index + adjacency, rebuilt per cycle
  EventQueue events_;             ///< scheduled fault transitions
  std::vector<Vec3> positions_;   ///< scratch for index/monitor updates
  std::vector<bool> comms_down_;  ///< per-agent blackout mask, event-driven
  std::vector<int> blackout_depth_;  ///< active blackout windows per agent
  // Per-decision-period scratch for the LP event loop (advance_period):
  // substep times (the serial clock accumulation, precomputed) and one
  // position snapshot row per substep.  Persistent so the steady-state
  // period allocates nothing.
  std::vector<double> step_times_;
  std::vector<std::vector<Vec3>> step_positions_;
  std::vector<std::uint64_t> lp_step_counts_;  ///< per-LP step tallies, summed serially
};

/// Run one two-aircraft encounter to completion (the paper's setup).
SimResult run_encounter(const SimConfig& config, AgentSetup own, AgentSetup intruder,
                        std::uint64_t seed);

/// Run one N-aircraft encounter; `agents[0]` is the own-ship.
SimResult run_multi_encounter(const SimConfig& config, std::vector<AgentSetup> agents,
                              std::uint64_t seed);

}  // namespace cav::sim
