#include "sim/faults.h"

namespace cav::sim {

int draw_burst_length(RngStream& rng, double continue_prob, int cap) {
  int length = 1;
  while (length < cap && continue_prob > 0.0 && rng.chance(continue_prob)) ++length;
  return length;
}

std::optional<acasx::AircraftTrack> observe_degraded(const AdsbSensor& sensor,
                                                     const UavState& truth,
                                                     const FaultProfile& fault,
                                                     RngStream& noise_rng, RngStream& fault_rng,
                                                     int* burst_cycles_left) {
  if (*burst_cycles_left > 0) {
    --*burst_cycles_left;
    return std::nullopt;
  }

  std::optional<acasx::AircraftTrack> received = sensor.observe(truth, noise_rng);

  // A burst can only start on a cycle that would otherwise have been
  // received: the i.i.d. dropout underneath stays untouched and burst
  // draws come from the dedicated fault stream, so a zero-burst profile
  // consumes exactly the seed path's noise draws.
  if (received.has_value() && fault.adsb_dropout_burst_prob > 0.0 &&
      fault_rng.chance(fault.adsb_dropout_burst_prob)) {
    *burst_cycles_left = draw_burst_length(fault_rng, fault.adsb_burst_continue_prob) - 1;
    return std::nullopt;
  }

  if (received.has_value()) {
    received->position_m += fault.adsb_position_bias_m;
    received->velocity_mps += fault.adsb_velocity_bias_mps;
  }
  return received;
}

CasDecision ScriptedManeuverCas::decide(const acasx::AircraftTrack& own,
                                        const acasx::AircraftTrack& intruder,
                                        acasx::Sense /*forbidden_sense*/) {
  const double t_s = static_cast<double>(cycles_) * config_.decision_period_s;
  ++cycles_;

  CasDecision decision;
  if (t_s < config_.start_s || t_s >= config_.start_s + config_.duration_s) return decision;

  // Close on the threat's altitude: climb when it is above, descend when
  // below (ties descend — arbitrary but deterministic).
  const double sign = intruder.position_m.z > own.position_m.z ? 1.0 : -1.0;
  decision.maneuver = true;
  decision.target_vs_mps = sign * config_.rate_mps;
  decision.accel_mps2 = config_.accel_mps2;
  decision.sense = acasx::Sense::kNone;  // announces nothing (non-cooperative)
  decision.label = "SCRIPTED";
  return decision;
}

CasFactory ScriptedManeuverCas::factory(const ScriptedManeuverConfig& config) {
  return [config] { return std::make_unique<ScriptedManeuverCas>(config); };
}

}  // namespace cav::sim
