#include "sim/combined_cas.h"

#include "util/units.h"

namespace cav::sim {

CombinedCas::CombinedCas(std::shared_ptr<const acasx::LogicTable> vertical_table,
                         std::shared_ptr<const acasx::HorizontalTable> horizontal_table,
                         acasx::OnlineConfig online, UavPerformance perf, TrackerConfig tracker,
                         std::shared_ptr<const acasx::JointLogicTable> joint)
    : vertical_(std::move(vertical_table), online),
      horizontal_(std::move(horizontal_table)),
      joint_(std::move(joint)),
      perf_(perf),
      smoother_(tracker) {}

CasDecision CombinedCas::build_decision(acasx::Advisory advisory,
                                        acasx::TurnAdvisory turn) const {
  CasDecision decision;
  decision.label = acasx::advisory_name(advisory);
  decision.sense = acasx::sense_of(advisory);
  if (advisory != acasx::Advisory::kCoc) {
    decision.maneuver = true;
    decision.target_vs_mps = units::fpm_to_mps(acasx::target_rate_fpm(advisory));
    decision.accel_mps2 = acasx::is_strengthened(advisory) ? perf_.accel_strength_mps2
                                                           : perf_.accel_initial_mps2;
  }
  if (turn != acasx::TurnAdvisory::kStraight) {
    decision.turn = true;
    decision.turn_rate_rad_s =
        acasx::turn_rate_of(turn, horizontal_.table().config().turn_rate_rad_s);
    decision.label += turn == acasx::TurnAdvisory::kTurnLeft ? "+L" : "+R";
  }
  return decision;
}

CasDecision CombinedCas::decide(const acasx::AircraftTrack& own,
                                const acasx::AircraftTrack& intruder,
                                acasx::Sense forbidden_sense) {
  const acasx::AircraftTrack smoothed = smoother_.update(intruder);

  const acasx::Advisory advisory = vertical_.decide(own, smoothed, forbidden_sense);
  const acasx::TurnAdvisory turn = horizontal_.decide(own, smoothed);
  return build_decision(advisory, turn);
}

bool CombinedCas::evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                                 ThreatCosts* out) {
  const acasx::AircraftTrack smoothed =
      threat_smoothers_.smooth(threat.aircraft_id, threat.track, smoother_.config());
  vertical_.peek_costs(own, smoothed, &out->active, out->costs);
  return true;
}

bool CombinedCas::evaluate_joint_costs(const acasx::AircraftTrack& own,
                                       const ThreatObservation& primary,
                                       const ThreatObservation& secondary, ThreatCosts* out) {
  if (joint_ == nullptr) return false;
  // Vertical channel only: the joint query reads the tracks this cycle's
  // evaluate_costs calls smoothed (the protocol forbids re-smoothing).
  const acasx::AircraftTrack& a = threat_smoothers_.current_or(primary.aircraft_id,
                                                              primary.track);
  const acasx::AircraftTrack& b = threat_smoothers_.current_or(secondary.aircraft_id,
                                                              secondary.track);
  acasx::joint_action_costs(*joint_, own, a, b, vertical_.current_advisory(),
                            vertical_.config(), &out->active, out->costs);
  return true;
}

CasDecision CombinedCas::commit_fused(const acasx::AircraftTrack& own,
                                      const ThreatObservation& primary, acasx::Advisory fused) {
  vertical_.set_advisory(fused);
  // The horizontal channel is a position-state pairwise logic: steer it
  // against the most severe threat, reusing the track evaluate_costs
  // already smoothed this cycle.
  const acasx::AircraftTrack& reference =
      threat_smoothers_.current_or(primary.aircraft_id, primary.track);
  const acasx::TurnAdvisory turn = horizontal_.decide(own, reference);
  return build_decision(fused, turn);
}

CasFactory CombinedCas::factory(std::shared_ptr<const acasx::LogicTable> vertical_table,
                                std::shared_ptr<const acasx::HorizontalTable> horizontal_table,
                                acasx::OnlineConfig online, UavPerformance perf,
                                TrackerConfig tracker,
                                std::shared_ptr<const acasx::JointLogicTable> joint) {
  return [vertical_table = std::move(vertical_table),
          horizontal_table = std::move(horizontal_table), online, perf, tracker,
          joint = std::move(joint)]() -> std::unique_ptr<CollisionAvoidanceSystem> {
    return std::make_unique<CombinedCas>(vertical_table, horizontal_table, online, perf,
                                         tracker, joint);
  };
}

}  // namespace cav::sim
