#include "sim/multi_threat.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace cav::sim {
namespace {

/// Horizontal tau of a threat under the stock online config (dmod/closure
/// thresholds); the resolver's gate and severity order both key off it.
acasx::TauEstimate threat_tau(const acasx::AircraftTrack& own, const acasx::AircraftTrack& threat) {
  return acasx::AcasXuLogic::estimate_tau(own, threat, acasx::OnlineConfig{});
}

/// Index of the nearest threat (lowest range, lowest aircraft id on ties)
/// — the threat the kNearest policy would have fed the CAS.
std::size_t nearest_index(const std::vector<ThreatObservation>& threats) {
  std::size_t nearest = 0;
  for (std::size_t i = 1; i < threats.size(); ++i) {
    if (threats[i].range_m < threats[nearest].range_m ||
        (threats[i].range_m == threats[nearest].range_m &&
         threats[i].aircraft_id < threats[nearest].aircraft_id)) {
      nearest = i;
    }
  }
  return nearest;
}

}  // namespace

void MultiThreatResolver::gate_and_sort(const acasx::AircraftTrack& own,
                                        std::vector<ThreatObservation>* threats) const {
  for (ThreatObservation& obs : *threats) {
    const acasx::TauEstimate tau = threat_tau(own, obs.track);
    obs.converging = tau.converging;
    obs.tau_s = tau.converging ? tau.tau_s : std::numeric_limits<double>::infinity();
  }
  std::erase_if(*threats, [this](const ThreatObservation& obs) {
    const bool tau_gated = obs.converging && obs.tau_s <= gate_.tau_gate_s;
    return obs.range_m > gate_.range_gate_m && !tau_gated;
  });
  std::sort(threats->begin(), threats->end(), [](const ThreatObservation& a,
                                                 const ThreatObservation& b) {
    if (a.tau_s != b.tau_s) return a.tau_s < b.tau_s;
    if (a.range_m != b.range_m) return a.range_m < b.range_m;
    return a.aircraft_id < b.aircraft_id;
  });
  if (threats->size() > gate_.max_threats) threats->resize(gate_.max_threats);
}

bool MultiThreatResolver::steers_into(const acasx::AircraftTrack& own, acasx::Sense sense,
                                      const ThreatObservation& threat) const {
  if (sense == acasx::Sense::kNone) return false;
  bool converging = threat.converging;
  double t = threat.tau_s;
  if (threat.tau_s < 0.0) {  // raw observation: tau not gate-computed yet
    const acasx::TauEstimate tau = threat_tau(own, threat.track);
    converging = tau.converging;
    t = tau.tau_s;
  }
  if (!converging || t > gate_.tau_gate_s) return false;
  const double dz = threat.track.position_m.z - own.position_m.z;
  const double vz_int = threat.track.velocity_mps.z;
  const double commanded =
      sense == acasx::Sense::kClimb ? gate_.assumed_rate_mps : -gate_.assumed_rate_mps;
  // Predicted vertical separation at the threat's CPA with and without the
  // commanded maneuver: blocked when the maneuver lands inside the
  // protected band AND erodes the separation the own-ship would otherwise
  // have kept.
  const double sep_commanded = std::abs(dz + (vz_int - commanded) * t);
  const double sep_level = std::abs(dz + (vz_int - own.velocity_mps.z) * t);
  return sep_commanded < gate_.blocking_vertical_m && sep_commanded < sep_level;
}

acasx::Sense MultiThreatResolver::veto_flip(const acasx::AircraftTrack& own, acasx::Sense sense,
                                            const std::vector<ThreatObservation>& threats,
                                            std::size_t blocked_from) const {
  if (sense == acasx::Sense::kNone) return acasx::Sense::kNone;
  bool blocked = false;
  for (std::size_t i = blocked_from; i < threats.size() && !blocked; ++i) {
    blocked = steers_into(own, sense, threats[i]);
  }
  if (!blocked) return acasx::Sense::kNone;

  const acasx::Sense opposite =
      sense == acasx::Sense::kClimb ? acasx::Sense::kDescend : acasx::Sense::kClimb;
  for (const ThreatObservation& threat : threats) {
    if (steers_into(own, opposite, threat) || threat.forbidden_sense == opposite) {
      return acasx::Sense::kNone;  // both senses blocked: the original stands
    }
  }
  return opposite;
}

CasDecision MultiThreatResolver::resolve(CollisionAvoidanceSystem& cas,
                                         const acasx::AircraftTrack& own,
                                         const std::vector<ThreatObservation>& threats,
                                         ResolverStats* stats, ThreatPolicy policy) const {
  expect(!threats.empty(), "resolve needs at least one gated threat");
  ++stats->cycles;
  stats->threats_considered += static_cast<int>(threats.size());
  stats->max_threats_in_cycle =
      std::max(stats->max_threats_in_cycle, static_cast<int>(threats.size()));

  // One evaluate_costs per gated threat, in severity order (the call may
  // advance per-threat tracker state, so exactly once per cycle each).
  std::vector<ThreatCosts> costs(threats.size());
  bool cost_capable = true;
  for (std::size_t i = 0; i < threats.size(); ++i) {
    if (!cas.evaluate_costs(own, threats[i], &costs[i])) {
      cost_capable = false;
      break;
    }
  }
  if (!cost_capable) return resolve_fallback(cas, own, threats, stats);

  // kJointTable: price the two most severe threats through the joint
  // table when both are inside the pairwise alerting envelope AND the
  // system answers the joint query for them; any other cycle (single
  // threat, secondary outside the joint envelope, no joint table) falls
  // back to pure pairwise fusion — which keeps K=1 policy-invariant.
  if (policy == ThreatPolicy::kJointTable && threats.size() >= 2 && costs[0].active &&
      costs[1].active) {
    ThreatCosts joint;
    if (cas.evaluate_joint_costs(own, threats[0], threats[1], &joint) && joint.active) {
      ++stats->joint_cycles;
      return resolve_costed(cas, own, threats, costs, &joint, stats);
    }
  }
  ++stats->fused_cycles;
  return resolve_costed(cas, own, threats, costs, nullptr, stats);
}

CasDecision MultiThreatResolver::resolve_costed(CollisionAvoidanceSystem& cas,
                                                const acasx::AircraftTrack& own,
                                                const std::vector<ThreatObservation>& threats,
                                                const std::vector<ThreatCosts>& costs,
                                                const ThreatCosts* joint,
                                                ResolverStats* stats) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Cost-summed advisory voting: each active threat votes with its full
  // per-advisory cost vector.  Summation runs in severity order (the
  // vector is sorted), so the total is deterministic for a given threat
  // set.  Under the joint policy the two most severe threats vote jointly
  // (one vector from the joint table replaces their two pairwise
  // vectors); threats beyond them keep their pairwise votes.  Every gated
  // threat's link-delivered coordination sense is then priced at infinity
  // — a lock from a threat outside the alerting envelope (inactive costs)
  // still binds, exactly as it would have under the pairwise
  // select_advisory.
  std::array<double, acasx::kNumAdvisories> fused{};
  bool any_active = joint != nullptr;
  if (joint != nullptr) fused = joint->costs;
  const std::size_t pairwise_from = joint != nullptr ? 2 : 0;
  for (std::size_t i = pairwise_from; i < threats.size(); ++i) {
    if (!costs[i].active) continue;
    any_active = true;
    for (std::size_t a = 0; a < acasx::kNumAdvisories; ++a) {
      fused[a] += costs[i].costs[a];
    }
  }
  for (const ThreatObservation& threat : threats) {
    if (threat.forbidden_sense == acasx::Sense::kNone) continue;
    for (std::size_t a = 0; a < acasx::kNumAdvisories; ++a) {
      if (acasx::sense_of(static_cast<acasx::Advisory>(a)) == threat.forbidden_sense) {
        fused[a] = kInf;
      }
    }
  }

  const acasx::Advisory current = cas.current_advisory();
  acasx::Advisory fused_advisory =
      any_active ? acasx::select_advisory(fused, acasx::Sense::kNone, current)
                 : acasx::Advisory::kCoc;

  // Blocking-set safety net over the vote: the summed costs can still pick
  // a sense that flies into one threat's protected volume when the other
  // threats' cost mass dominates (each per-threat table only knows its own
  // geometry).  Veto it when the opposite sense is clear of every gated
  // threat and not forbidden on any link.
  const acasx::Sense flip = veto_flip(own, acasx::sense_of(fused_advisory), threats, 0);
  if (flip != acasx::Sense::kNone) {
    // Cheapest advisory of the flipped sense, same deterministic
    // preference order as select_advisory (weaker before stronger).
    acasx::Advisory flipped = flip == acasx::Sense::kClimb ? acasx::Advisory::kClimb1500
                                                           : acasx::Advisory::kDescend1500;
    const acasx::Advisory strengthened = flip == acasx::Sense::kClimb
                                             ? acasx::Advisory::kClimb2500
                                             : acasx::Advisory::kDescend2500;
    if (fused[static_cast<std::size_t>(strengthened)] < fused[static_cast<std::size_t>(flipped)]) {
      flipped = strengthened;
    }
    fused_advisory = flipped;
    ++stats->vetoes;
  }

  // What the nearest-threat policy would have flown, from the same cost
  // evaluations — the disagreement signal monitors report.
  const std::size_t nearest = nearest_index(threats);
  acasx::Advisory nearest_advisory = acasx::Advisory::kCoc;
  if (costs[nearest].active) {
    nearest_advisory = acasx::select_advisory(costs[nearest].costs,
                                              threats[nearest].forbidden_sense, current);
  }
  if (nearest_advisory != fused_advisory) ++stats->disagreements;

  return cas.commit_fused(own, threats.front(), fused_advisory);
}

CasDecision MultiThreatResolver::resolve_fallback(CollisionAvoidanceSystem& cas,
                                                  const acasx::AircraftTrack& own,
                                                  const std::vector<ThreatObservation>& threats,
                                                  ResolverStats* stats) const {
  ++stats->fallback_cycles;

  // Severity-ordered pairwise advisory: the most severe gated threat gets
  // the (stateful) pairwise decision this cycle.  When severity order
  // diverges from plain range order, the decision knowably targets a
  // different threat than kNearest would have fed the CAS — that is the
  // fallback's disagreement signal (a veto below adds to it).
  const ThreatObservation& primary = threats.front();
  const bool primary_is_nearest =
      threats[nearest_index(threats)].aircraft_id == primary.aircraft_id;
  if (!primary_is_nearest) ++stats->disagreements;

  CasDecision decision = cas.decide(own, primary.track, primary.forbidden_sense);
  if (!decision.maneuver || decision.sense == acasx::Sense::kNone || threats.size() < 2) {
    return decision;
  }

  // Blocking-set check: veto the commanded sense when it steers into any
  // *other* gated threat's protected volume (the primary's own decision
  // already weighed the primary), flipping when the opposite sense is
  // clear.  When both senses are blocked the most severe threat wins and
  // the original advisory stands.
  const acasx::Sense flip = veto_flip(own, decision.sense, threats, 1);
  if (flip == acasx::Sense::kNone) return decision;

  ++stats->vetoes;
  // A veto on a nearest-primary cycle makes the flown advisory differ from
  // the nearest-threat choice; non-nearest primaries were counted above.
  if (primary_is_nearest) ++stats->disagreements;
  decision.sense = flip;
  decision.target_vs_mps = -decision.target_vs_mps;
  // Relabel with the flown direction — the original label names the
  // pre-veto maneuver and would misreport every trajectory sample.
  decision.label =
      std::string(flip == acasx::Sense::kClimb ? "CL" : "DES") + "(veto)";
  return decision;
}

}  // namespace cav::sim
