// Simulation monitors (§VI.C): the Proximity Measurer "measures the
// proximities (in horizontal distance and vertical distance) ... and
// records the minimum proximity experienced", and the Accident Detector
// "monitors the simulations and detects any mid-air collisions".
//
// Accident semantics: the headline "mid-air collision" event is an NMAC
// (near mid-air collision) cylinder — simultaneous horizontal separation
// < 500 ft and vertical separation < 100 ft — which is both the standard
// surrogate in the encounter-model literature and the event the MDP's
// 10000-cost terminal state encodes.  A 30 m "hard collision" sphere is
// tracked separately.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/units.h"
#include "util/vec3.h"

namespace cav::sim {

/// Per-agent bookkeeping of the multi-threat arbitration layer
/// (sim/multi_threat.h), reported next to the proximity/accident monitors:
/// how much traffic the resolver actually weighed, how often the fused
/// choice departed from the nearest-threat choice, and how often the
/// blocking-set check vetoed a pairwise advisory.
/// Invariant: cycles == fused_cycles + joint_cycles + fallback_cycles
/// (joint_cycles is only ever non-zero under ThreatPolicy::kJointTable).
struct ResolverStats {
  int cycles = 0;               ///< decision cycles the resolver arbitrated
  int threats_considered = 0;   ///< gated threats, summed over those cycles
  int max_threats_in_cycle = 0; ///< peak simultaneous gated threats
  int fused_cycles = 0;         ///< cycles resolved by cost-summed voting
  int joint_cycles = 0;         ///< cycles resolved through the joint-threat table
  int fallback_cycles = 0;      ///< cycles on the severity-ordered fallback
  int vetoes = 0;               ///< blocking-set vetoes applied
  /// Cycles where the flown advisory knowably differed from the
  /// nearest-threat choice: fused advisory != nearest-threat advisory on
  /// fused cycles; vetoed or non-nearest-primary cycles on the fallback.
  int disagreements = 0;
};

struct ProximityReport {
  double min_distance_m = std::numeric_limits<double>::infinity();   ///< 3-D separation
  double min_horizontal_m = std::numeric_limits<double>::infinity(); ///< over the whole run
  double min_vertical_m = std::numeric_limits<double>::infinity();   ///< over the whole run
  double time_of_min_distance_s = 0.0;
};

class ProximityMeasurer {
 public:
  void update(double t_s, const Vec3& a, const Vec3& b);
  const ProximityReport& report() const { return report_; }

 private:
  ProximityReport report_;
};

struct AccidentConfig {
  double nmac_horizontal_m = units::ft_to_m(500.0);
  double nmac_vertical_m = units::ft_to_m(100.0);
  double collision_radius_m = 30.0;
};

class AccidentDetector {
 public:
  explicit AccidentDetector(const AccidentConfig& config = {}) : config_(config) {}

  void update(double t_s, const Vec3& a, const Vec3& b);

  bool nmac() const { return nmac_; }
  /// Time of first NMAC penetration; -1 when no NMAC occurred.
  double nmac_time_s() const { return nmac_time_s_; }
  bool hard_collision() const { return hard_collision_; }
  const AccidentConfig& config() const { return config_; }

 private:
  AccidentConfig config_;
  bool nmac_ = false;
  bool hard_collision_ = false;
  double nmac_time_s_ = -1.0;
};

/// Per-pair monitor bank for N-aircraft runs: one ProximityMeasurer and one
/// AccidentDetector per unordered aircraft pair (i < j), updated together
/// from the full position vector.  For two aircraft this is exactly the
/// original single proximity/accident pair.
class PairwiseMonitors {
 public:
  PairwiseMonitors(std::size_t num_agents, const AccidentConfig& config);

  /// Update every pair; `positions` must have `num_agents()` entries.
  void update(double t_s, const std::vector<Vec3>& positions);

  std::size_t num_agents() const { return num_agents_; }
  std::size_t num_pairs() const { return proximity_.size(); }

  /// Index of pair (i, j), i < j, in lexicographic pair order.
  std::size_t pair_index(std::size_t i, std::size_t j) const;

  const ProximityMeasurer& proximity(std::size_t i, std::size_t j) const {
    return proximity_[pair_index(i, j)];
  }
  const AccidentDetector& accidents(std::size_t i, std::size_t j) const {
    return accidents_[pair_index(i, j)];
  }
  const ProximityMeasurer& proximity_at(std::size_t pair) const { return proximity_[pair]; }
  const AccidentDetector& accidents_at(std::size_t pair) const { return accidents_[pair]; }

  /// Pair (i, j) for a lexicographic pair index.
  std::pair<std::size_t, std::size_t> pair_agents(std::size_t pair) const;

  /// Minimum separations over all pairs; the time-of-minimum comes from the
  /// pair achieving the smallest 3-D distance (first pair wins ties).
  ProximityReport aggregate_proximity() const;
  bool any_nmac() const;
  /// Earliest NMAC penetration time across pairs; -1 when none occurred.
  double earliest_nmac_time_s() const;
  bool any_hard_collision() const;

 private:
  std::size_t num_agents_;
  std::vector<ProximityMeasurer> proximity_;
  std::vector<AccidentDetector> accidents_;
};

}  // namespace cav::sim
