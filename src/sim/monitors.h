// Simulation monitors (§VI.C): the Proximity Measurer "measures the
// proximities (in horizontal distance and vertical distance) ... and
// records the minimum proximity experienced", and the Accident Detector
// "monitors the simulations and detects any mid-air collisions".
//
// Accident semantics: the headline "mid-air collision" event is an NMAC
// (near mid-air collision) cylinder — simultaneous horizontal separation
// < 500 ft and vertical separation < 100 ft — which is both the standard
// surrogate in the encounter-model literature and the event the MDP's
// 10000-cost terminal state encodes.  A 30 m "hard collision" sphere is
// tracked separately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/units.h"
#include "util/vec3.h"

namespace cav {
class ThreadPool;
}

namespace cav::sim {

/// Per-agent bookkeeping of the multi-threat arbitration layer
/// (sim/multi_threat.h), reported next to the proximity/accident monitors:
/// how much traffic the resolver actually weighed, how often the fused
/// choice departed from the nearest-threat choice, and how often the
/// blocking-set check vetoed a pairwise advisory.
/// Invariant: cycles == fused_cycles + joint_cycles + fallback_cycles
/// (joint_cycles is only ever non-zero under ThreatPolicy::kJointTable).
struct ResolverStats {
  int cycles = 0;               ///< decision cycles the resolver arbitrated
  int threats_considered = 0;   ///< gated threats, summed over those cycles
  int max_threats_in_cycle = 0; ///< peak simultaneous gated threats
  int fused_cycles = 0;         ///< cycles resolved by cost-summed voting
  int joint_cycles = 0;         ///< cycles resolved through the joint-threat table
  int fallback_cycles = 0;      ///< cycles on the severity-ordered fallback
  int vetoes = 0;               ///< blocking-set vetoes applied
  /// Cycles where the flown advisory knowably differed from the
  /// nearest-threat choice: fused advisory != nearest-threat advisory on
  /// fused cycles; vetoed or non-nearest-primary cycles on the fallback.
  int disagreements = 0;
};

struct ProximityReport {
  double min_distance_m = std::numeric_limits<double>::infinity();   ///< 3-D separation
  double min_horizontal_m = std::numeric_limits<double>::infinity(); ///< over the whole run
  double min_vertical_m = std::numeric_limits<double>::infinity();   ///< over the whole run
  double time_of_min_distance_s = 0.0;
};

class ProximityMeasurer {
 public:
  void update(double t_s, const Vec3& a, const Vec3& b);
  const ProximityReport& report() const { return report_; }

 private:
  ProximityReport report_;
};

struct AccidentConfig {
  double nmac_horizontal_m = units::ft_to_m(500.0);
  double nmac_vertical_m = units::ft_to_m(100.0);
  double collision_radius_m = 30.0;
};

class AccidentDetector {
 public:
  explicit AccidentDetector(const AccidentConfig& config = {}) : config_(config) {}

  void update(double t_s, const Vec3& a, const Vec3& b);

  bool nmac() const { return nmac_; }
  /// Time of first NMAC penetration; -1 when no NMAC occurred.
  double nmac_time_s() const { return nmac_time_s_; }
  bool hard_collision() const { return hard_collision_; }
  const AccidentConfig& config() const { return config_; }

 private:
  AccidentConfig config_;
  bool nmac_ = false;
  bool hard_collision_ = false;
  double nmac_time_s_ = -1.0;
};

/// Per-pair monitor bank for N-aircraft runs: one ProximityMeasurer and one
/// AccidentDetector per *monitored* unordered aircraft pair (i < j).
///
/// Monitor slots materialize lazily: the simulation declares each decision
/// cycle's near-pair set (`set_active_pairs`, from the spatial index) and
/// only those pairs are allocated and updated, so memory and per-step cost
/// follow the near-pair count instead of K².  `activate_all_pairs()`
/// restores the dense pre-refactor bank: every pair is materialized in
/// lexicographic order, which also fixes the float-aggregation order of
/// `aggregate_proximity` to the legacy one (first pair wins ties).
/// Aggregates and `pair_agents` iterate slots sorted by (i, j), so results
/// are deterministic regardless of activation chronology.
class PairwiseMonitors {
 public:
  PairwiseMonitors(std::size_t num_agents, const AccidentConfig& config);

  /// Materialize every pair (i < j, lexicographic) and mark them active.
  void activate_all_pairs();

  /// Declare this cycle's update set.  Unseen pairs are materialized (the
  /// caller should `update_new` them at the activation time); pairs that
  /// drop out keep their slot and minima but stop being updated.
  /// Returns the number of newly materialized slots, which are the tail
  /// of the update set passed here.
  std::size_t set_active_pairs(const std::vector<std::pair<int, int>>& pairs);

  /// Update every active pair; `positions` must have `num_agents()` entries
  /// (only the active pairs' entries are read).
  void update(double t_s, const std::vector<Vec3>& positions);

  /// Update only the `count` most recently materialized slots — the pairs
  /// a `set_active_pairs` call just created, which missed the update at
  /// the end of the previous physics step.
  void update_new(double t_s, const std::vector<Vec3>& positions, std::size_t count);

  /// Replay a whole decision period of position snapshots over the active
  /// set: slot by slot, each active pair consumes rows [0, n_rows) of
  /// (times_s, position_rows) in time order — the same per-slot update
  /// sequence n_rows successive update() calls would apply.  Pair slots
  /// hold fully disjoint state, so partitioning them into `num_lps`
  /// contiguous stripes run on `pool` workers is bit-identical to the
  /// sequential replay for every (num_lps, pool) — including
  /// num_lps == 1 / pool == nullptr, which runs inline.
  void update_series(const std::vector<double>& times_s,
                     const std::vector<std::vector<Vec3>>& position_rows, std::size_t n_rows,
                     int num_lps, ThreadPool* pool);

  std::size_t num_agents() const { return num_agents_; }
  /// Materialized (ever-monitored) pair count — K(K-1)/2 only in dense mode.
  std::size_t num_pairs() const { return slots_.size(); }
  std::size_t num_active_pairs() const { return active_.size(); }

  /// Whether pair (i, j) has ever been monitored.
  bool monitored(std::size_t i, std::size_t j) const;

  const ProximityMeasurer& proximity(std::size_t i, std::size_t j) const;
  const AccidentDetector& accidents(std::size_t i, std::size_t j) const;

  /// Slot access in (i, j)-sorted order, for result assembly.
  const ProximityMeasurer& proximity_at(std::size_t pair) const;
  const AccidentDetector& accidents_at(std::size_t pair) const;
  std::pair<std::size_t, std::size_t> pair_agents(std::size_t pair) const;

  /// Minimum separations over all monitored pairs; the time-of-minimum
  /// comes from the pair achieving the smallest 3-D distance (first pair
  /// in (i, j) order wins ties).
  ProximityReport aggregate_proximity() const;
  bool any_nmac() const;
  /// Earliest NMAC penetration time across pairs; -1 when none occurred.
  double earliest_nmac_time_s() const;
  bool any_hard_collision() const;

 private:
  struct PairSlot {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    ProximityMeasurer proximity;
    AccidentDetector accidents;
  };

  static std::uint64_t slot_key(std::size_t i, std::size_t j) {
    return (static_cast<std::uint64_t>(i) << 32) | static_cast<std::uint64_t>(j);
  }
  std::size_t find_or_create(std::size_t i, std::size_t j);
  const std::vector<std::size_t>& sorted_order() const;

  std::size_t num_agents_;
  AccidentConfig config_;
  std::vector<PairSlot> slots_;                         ///< creation order
  std::unordered_map<std::uint64_t, std::size_t> index_;  ///< (i, j) -> slot
  std::vector<std::size_t> active_;                     ///< this cycle's update set
  mutable std::vector<std::size_t> sorted_;             ///< slot ids by (a, b); lazy
  mutable bool sorted_valid_ = false;
};

}  // namespace cav::sim
