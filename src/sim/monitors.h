// Simulation monitors (§VI.C): the Proximity Measurer "measures the
// proximities (in horizontal distance and vertical distance) ... and
// records the minimum proximity experienced", and the Accident Detector
// "monitors the simulations and detects any mid-air collisions".
//
// Accident semantics: the headline "mid-air collision" event is an NMAC
// (near mid-air collision) cylinder — simultaneous horizontal separation
// < 500 ft and vertical separation < 100 ft — which is both the standard
// surrogate in the encounter-model literature and the event the MDP's
// 10000-cost terminal state encodes.  A 30 m "hard collision" sphere is
// tracked separately.
#pragma once

#include <limits>

#include "util/units.h"
#include "util/vec3.h"

namespace cav::sim {

struct ProximityReport {
  double min_distance_m = std::numeric_limits<double>::infinity();   ///< 3-D separation
  double min_horizontal_m = std::numeric_limits<double>::infinity(); ///< over the whole run
  double min_vertical_m = std::numeric_limits<double>::infinity();   ///< over the whole run
  double time_of_min_distance_s = 0.0;
};

class ProximityMeasurer {
 public:
  void update(double t_s, const Vec3& a, const Vec3& b);
  const ProximityReport& report() const { return report_; }

 private:
  ProximityReport report_;
};

struct AccidentConfig {
  double nmac_horizontal_m = units::ft_to_m(500.0);
  double nmac_vertical_m = units::ft_to_m(100.0);
  double collision_radius_m = 30.0;
};

class AccidentDetector {
 public:
  explicit AccidentDetector(const AccidentConfig& config = {}) : config_(config) {}

  void update(double t_s, const Vec3& a, const Vec3& b);

  bool nmac() const { return nmac_; }
  /// Time of first NMAC penetration; -1 when no NMAC occurred.
  double nmac_time_s() const { return nmac_time_s_; }
  bool hard_collision() const { return hard_collision_; }
  const AccidentConfig& config() const { return config_; }

 private:
  AccidentConfig config_;
  bool nmac_ = false;
  bool hard_collision_ = false;
  double nmac_time_s_ = -1.0;
};

}  // namespace cav::sim
