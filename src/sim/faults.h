// Fault injection — the layer that degrades the world the CAS sees.
//
// Every measured result up to E13 assumed a perfectly equipped fleet,
// uniform i.i.d. coordination loss, and cooperative intruders.  The paper's
// core claim is that offline-optimized policies hide weaknesses that only
// stress-testing exposes (§VIII); this module supplies the stress axes the
// offline optimization bakes away (cf. Squires et al.'s composition of
// safety constraints under limited communications, PAPERS.md):
//
//   * bursty coordination loss — a two-state Gilbert–Elliott model per
//     link (coordination.h); the uniform `message_loss_prob` is its
//     degenerate case and stays bit-identical to the pre-fault engine;
//   * timed comms blackout windows — an aircraft whose datalink is down
//     neither posts nor receives coordination messages;
//   * ADS-B dropout bursts and per-axis bias — surveillance outages that
//     arrive in runs, plus systematic position/velocity error on top of
//     the white noise of sensors.h;
//   * a track-staleness horizon — a coasted track older than the horizon
//     is dropped instead of trusted forever;
//   * non-cooperative and adversarial intruders — a silent (never posts)
//     equipage flag, and a scripted intruder that maneuvers toward the
//     own-ship around CPA instead of avoiding it.
//
// Determinism contract: every fault draw derives from (seed, agent index)
// streams, so degraded runs are bit-reproducible, invariant under thread
// count, and paired across policies.  A FaultProfile with nothing set
// (`FaultProfile::none()`) injects nothing, draws nothing, and leaves the
// engine bit-identical to the seed path.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "sim/cas.h"
#include "sim/sensors.h"
#include "sim/uav.h"
#include "util/rng.h"
#include "util/vec3.h"

namespace cav::sim {

/// Half-open time interval [start_s, end_s).
struct TimeWindow {
  double start_s = 0.0;
  double end_s = 0.0;

  bool contains(double t_s) const { return t_s >= start_s && t_s < end_s; }
};

/// Degradations applied to one aircraft's view of the world.  Carried
/// fleet-wide by SimConfig::fault and overridable per aircraft via
/// AgentSetup::fault (simulation.h).
struct FaultProfile {
  // --- Coordination (maneuver-coordination datalink) -----------------
  /// Windows during which this aircraft's comms are down: it neither
  /// posts its sense nor receives other aircraft's posts.  Surveillance
  /// (ADS-B) is a separate system and keeps working.
  std::vector<TimeWindow> comms_blackouts;
  /// Non-cooperative equipage: the aircraft runs its CAS but never posts
  /// a coordination sense (its receivers see a permanently silent link).
  bool coordination_silent = false;

  // --- Surveillance (ADS-B receive path) -----------------------------
  /// Probability that a successfully received broadcast instead starts a
  /// dropout burst (receiver-side outage): this cycle and a geometric
  /// number of following cycles are lost.  0 disables bursts; the i.i.d.
  /// AdsbConfig::dropout_prob stays available underneath.
  double adsb_dropout_burst_prob = 0.0;
  /// Per-cycle continuation probability of an active dropout burst
  /// (mean burst length = 1 / (1 - p), capped at kMaxBurstCycles).
  double adsb_burst_continue_prob = 0.0;
  /// Systematic per-axis error added to every received position/velocity
  /// on top of the white sensor noise (miscalibrated receiver, GPS bias).
  Vec3 adsb_position_bias_m{};
  Vec3 adsb_velocity_bias_mps{};
  /// A coasted track is dropped (the aircraft un-sees that traffic) once
  /// no broadcast has been received for longer than this.  Infinity — the
  /// default — reproduces the pre-fault engine: coasted tracks are
  /// trusted forever.
  double track_staleness_horizon_s = std::numeric_limits<double>::infinity();

  static constexpr int kMaxBurstCycles = 120;

  /// A profile that injects nothing (the bit-identical seed path).
  static FaultProfile none() { return {}; }

  bool in_comms_blackout(double t_s) const {
    for (const TimeWindow& w : comms_blackouts) {
      if (w.contains(t_s)) return true;
    }
    return false;
  }

  /// True when the ADS-B receive path needs the degraded observation code
  /// (bursts, bias, or a finite staleness horizon).
  bool degrades_surveillance() const {
    return adsb_dropout_burst_prob > 0.0 || adsb_position_bias_m != Vec3{} ||
           adsb_velocity_bias_mps != Vec3{} ||
           track_staleness_horizon_s < std::numeric_limits<double>::infinity();
  }

  bool any() const {
    return degrades_surveillance() || coordination_silent || !comms_blackouts.empty();
  }
};

/// Length (in decision cycles, >= 1) of a dropout burst: 1 plus a
/// geometric number of continuations at `continue_prob`, capped.
int draw_burst_length(RngStream& rng, double continue_prob,
                      int cap = FaultProfile::kMaxBurstCycles);

/// One degraded ADS-B reception.  `*burst_cycles_left` is the receiver's
/// per-target burst state (cycles of outage still to serve); nullopt means
/// the broadcast was lost (i.i.d. dropout, or a burst was active or just
/// started).  Noise draws come from `noise_rng` (the same stream and order
/// the undegraded sensor uses); burst start/length draws come from
/// `fault_rng`, so enabling bias alone changes no draw anywhere.
std::optional<acasx::AircraftTrack> observe_degraded(const AdsbSensor& sensor,
                                                     const UavState& truth,
                                                     const FaultProfile& fault,
                                                     RngStream& noise_rng, RngStream& fault_rng,
                                                     int* burst_cycles_left);

/// Adversarial intruder behavior: fly the flight plan, then maneuver
/// *toward* the threat's altitude in a timed window around CPA — the
/// intruder-behavior mismatch the offline models never price (a
/// cooperative or at least non-hostile intruder is assumed throughout).
struct ScriptedManeuverConfig {
  double start_s = 30.0;     ///< window start (encounter time)
  double duration_s = 20.0;  ///< window length
  /// Commanded vertical-rate magnitude; the sign is chosen each cycle to
  /// close on the threat's altitude (1500 ft/min default).
  double rate_mps = 7.62;
  double accel_mps2 = 2.4525;   ///< g/4, the standard capture acceleration
  double decision_period_s = 1.0;  ///< must match SimConfig::decision_period_s
};

/// The scripted adversary.  Decision-only and deliberately coordination-
/// silent (it announces no sense); its maneuvers are *not* avoidance, so
/// agents carrying it should set AgentSetup::count_alerts = false to keep
/// alert statistics meaningful.
class ScriptedManeuverCas final : public CollisionAvoidanceSystem {
 public:
  explicit ScriptedManeuverCas(const ScriptedManeuverConfig& config = {}) : config_(config) {}

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override { cycles_ = 0; }
  std::string name() const override { return "scripted-maneuver"; }

  static CasFactory factory(const ScriptedManeuverConfig& config = {});

 private:
  ScriptedManeuverConfig config_;
  int cycles_ = 0;  ///< decide() calls since reset (one per decision cycle)
};

}  // namespace cav::sim
