// ADS-B surveillance model.
//
// "We assume that in each simulation step the UAVs broadcast their state
// information (position, velocity) via ADS-B.  We explicitly model the
// sensor noise by adding white noise to the received information" (§VI.C).
// Dropout support is our failure-injection extension: a dropped broadcast
// makes the receiver coast on its last track.
#pragma once

#include <optional>

#include "acasx/online_logic.h"
#include "sim/uav.h"
#include "util/rng.h"

namespace cav::sim {

struct AdsbConfig {
  double horizontal_pos_sigma_m = 15.0;
  double vertical_pos_sigma_m = 7.5;
  double horizontal_vel_sigma_mps = 1.0;
  double vertical_vel_sigma_mps = 0.5;
  double dropout_prob = 0.0;  ///< probability a broadcast is lost entirely

  /// A noise-free configuration (for tests and for isolating other effects).
  static AdsbConfig perfect() { return {0.0, 0.0, 0.0, 0.0, 0.0}; }
};

/// Turn a true UAV state into a (possibly lost, possibly noisy) track as
/// received by the other aircraft.
class AdsbSensor {
 public:
  explicit AdsbSensor(const AdsbConfig& config) : config_(config) {}

  const AdsbConfig& config() const { return config_; }

  /// nullopt models a lost broadcast; otherwise the true state plus white
  /// noise on every received component.
  std::optional<acasx::AircraftTrack> observe(const UavState& truth, RngStream& rng) const;

 private:
  AdsbConfig config_;
};

}  // namespace cav::sim
