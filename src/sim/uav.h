// UAV agent: point-mass kinematics with a tracked vertical-rate command.
//
// Mirrors the paper's simulation setup (§VI.C): after the encounter starts
// the UAVs "fly following their initial velocities but also be affected by
// environment disturbance"; when avoidance commands are issued they
// maneuver accordingly (vertical-rate capture with bounded acceleration,
// the same response model the offline MDP assumes).
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/units.h"
#include "util/vec3.h"

namespace cav::sim {

/// Kinematic state.  Velocity is carried as (ground speed, bearing,
/// vertical speed), the paper's (Gs, theta, Vs) representation (Fig. 4a).
struct UavState {
  Vec3 position_m;          ///< ENU, z = altitude
  double ground_speed_mps = 0.0;
  double bearing_rad = 0.0; ///< Vx = Gs cos(theta), Vy = Gs sin(theta)
  double vertical_speed_mps = 0.0;

  Vec3 velocity_mps() const;
};

/// Performance limits of the airframe.
struct UavPerformance {
  double max_vertical_speed_mps = units::fpm_to_mps(2500.0);
  /// Vertical acceleration used to capture an initial advisory (g/4).
  double accel_initial_mps2 = units::kGravity / 4.0;
  /// Vertical acceleration for strengthened advisories (g/3).
  double accel_strength_mps2 = units::kGravity / 3.0;
};

/// Active vertical maneuver command (from a collision avoidance system).
struct VerticalCommand {
  bool active = false;
  double target_vs_mps = 0.0;
  double accel_mps2 = 0.0;
};

/// Active horizontal maneuver command: a commanded turn rate (CCW +).
struct TurnCommand {
  bool active = false;
  double rate_rad_s = 0.0;
};

/// Environment disturbance: mean-reverting (Ornstein-Uhlenbeck) noise on
/// the vertical rate and ground speed around the flight-plan values.
/// Mean reversion keeps the gust-induced drift bounded (stationary rate
/// sigma = sigma/sqrt(2*reversion)); the offline MDP deliberately assumes
/// the more conservative unbounded white-acceleration model — that
/// model-vs-environment gap is part of what validation must probe.
struct DisturbanceConfig {
  double vertical_sigma = 0.5;      ///< m/s per sqrt(s) rate noise
  double vertical_reversion = 0.3;  ///< 1/s pull toward the nominal rate
  double horizontal_sigma = 0.25;   ///< m/s per sqrt(s) ground-speed noise
  double horizontal_reversion = 0.3;

  /// Disturbance-free environment (tests, geometry checks).
  static DisturbanceConfig none() { return {0.0, 0.0, 0.0, 0.0}; }
};

class UavAgent {
 public:
  UavAgent(int id, const UavState& initial, const UavPerformance& perf = {})
      : id_(id),
        state_(initial),
        perf_(perf),
        nominal_vs_mps_(initial.vertical_speed_mps),
        nominal_gs_mps_(initial.ground_speed_mps) {}

  int id() const { return id_; }
  const UavState& state() const { return state_; }
  const UavPerformance& performance() const { return perf_; }
  const VerticalCommand& command() const { return command_; }

  /// Replace the active maneuver command (kept until the next decision).
  void set_command(const VerticalCommand& command) { command_ = command; }

  const TurnCommand& turn_command() const { return turn_command_; }
  void set_turn_command(const TurnCommand& command) { turn_command_ = command; }

  /// Advance dt seconds: track the commanded vertical rate (if any), apply
  /// environment disturbance, clamp to performance limits, integrate.
  void step(double dt_s, const DisturbanceConfig& disturbance, RngStream& rng);

 private:
  int id_;
  UavState state_;
  UavPerformance perf_;
  VerticalCommand command_;
  TurnCommand turn_command_;
  double nominal_vs_mps_;  ///< flight-plan vertical rate (reversion target)
  double nominal_gs_mps_;  ///< flight-plan ground speed (reversion target)
};

}  // namespace cav::sim
