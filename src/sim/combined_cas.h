// Combined vertical + horizontal collision avoidance — the post-revision
// system (see acasx/horizontal.h): the tau-indexed vertical logic handles
// converging traffic as before, and the position-state horizontal logic
// covers the slow-closure blind spot the GA search exposed.  The two
// channels command independently (vertical-rate capture and turn rate).
#pragma once

#include <memory>

#include "acasx/horizontal.h"
#include "acasx/joint_table.h"
#include "acasx/online_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class CombinedCas final : public CollisionAvoidanceSystem {
 public:
  /// `joint` may be null: the system then declines the joint query and
  /// ThreatPolicy::kJointTable degrades to kCostFused behaviour.
  CombinedCas(std::shared_ptr<const acasx::LogicTable> vertical_table,
              std::shared_ptr<const acasx::HorizontalTable> horizontal_table,
              acasx::OnlineConfig online = {}, UavPerformance perf = {},
              TrackerConfig tracker = {},
              std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    vertical_.reset();
    horizontal_.reset();
    smoother_.reset();
    threat_smoothers_.clear();
  }
  std::string name() const override { return "ACAS-XU+H"; }

  /// Multi-threat fusion covers the vertical channel (the costed advisory
  /// set, joint or pairwise); the horizontal channel keeps steering
  /// against the most severe gated threat at commit time.
  bool evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                      ThreatCosts* out) override;
  bool evaluate_joint_costs(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                            const ThreatObservation& secondary, ThreatCosts* out) override;
  CasDecision commit_fused(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                           acasx::Advisory fused) override;
  acasx::Advisory current_advisory() const override { return vertical_.current_advisory(); }

  const acasx::AcasXuLogic& vertical() const { return vertical_; }
  const acasx::HorizontalLogic& horizontal() const { return horizontal_; }

  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> vertical_table,
                            std::shared_ptr<const acasx::HorizontalTable> horizontal_table,
                            acasx::OnlineConfig online = {}, UavPerformance perf = {},
                            TrackerConfig tracker = {},
                            std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

 private:
  CasDecision build_decision(acasx::Advisory advisory, acasx::TurnAdvisory turn) const;

  acasx::AcasXuLogic vertical_;
  acasx::HorizontalLogic horizontal_;
  std::shared_ptr<const acasx::JointLogicTable> joint_;
  UavPerformance perf_;
  TrackSmoother smoother_;
  ThreatSmootherBank threat_smoothers_;  ///< per-threat STM (fused mode)
};

}  // namespace cav::sim
