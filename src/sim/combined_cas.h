// Combined vertical + horizontal collision avoidance — the post-revision
// system (see acasx/horizontal.h): the tau-indexed vertical logic handles
// converging traffic as before, and the position-state horizontal logic
// covers the slow-closure blind spot the GA search exposed.  The two
// channels command independently (vertical-rate capture and turn rate).
#pragma once

#include <memory>

#include "acasx/horizontal.h"
#include "acasx/online_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class CombinedCas final : public CollisionAvoidanceSystem {
 public:
  CombinedCas(std::shared_ptr<const acasx::LogicTable> vertical_table,
              std::shared_ptr<const acasx::HorizontalTable> horizontal_table,
              acasx::OnlineConfig online = {}, UavPerformance perf = {},
              TrackerConfig tracker = {});

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    vertical_.reset();
    horizontal_.reset();
    smoother_.reset();
  }
  std::string name() const override { return "ACAS-XU+H"; }

  const acasx::AcasXuLogic& vertical() const { return vertical_; }
  const acasx::HorizontalLogic& horizontal() const { return horizontal_; }

  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> vertical_table,
                            std::shared_ptr<const acasx::HorizontalTable> horizontal_table,
                            acasx::OnlineConfig online = {}, UavPerformance perf = {},
                            TrackerConfig tracker = {});

 private:
  acasx::AcasXuLogic vertical_;
  acasx::HorizontalLogic horizontal_;
  UavPerformance perf_;
  TrackSmoother smoother_;
};

}  // namespace cav::sim
