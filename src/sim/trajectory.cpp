#include "sim/trajectory.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/csv.h"

namespace cav::sim {
namespace {

struct Bounds {
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -std::numeric_limits<double>::infinity();
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -std::numeric_limits<double>::infinity();

  void include(double x, double y) {
    x_lo = std::min(x_lo, x);
    x_hi = std::max(x_hi, x);
    y_lo = std::min(y_lo, y);
    y_hi = std::max(y_hi, y);
  }
  void pad() {
    if (x_hi - x_lo < 1e-9) { x_lo -= 1.0; x_hi += 1.0; }
    if (y_hi - y_lo < 1e-9) { y_lo -= 1.0; y_hi += 1.0; }
  }
};

void plot_point(std::vector<std::string>& canvas, const Bounds& b, double x, double y, char glyph) {
  const int w = static_cast<int>(canvas.front().size());
  const int h = static_cast<int>(canvas.size());
  const int col = static_cast<int>(std::lround((x - b.x_lo) / (b.x_hi - b.x_lo) * (w - 1)));
  const int row = static_cast<int>(std::lround((y - b.y_lo) / (b.y_hi - b.y_lo) * (h - 1)));
  const int r = h - 1 - std::clamp(row, 0, h - 1);
  const int c = std::clamp(col, 0, w - 1);
  canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = glyph;
}

std::string render(const Trajectory& traj, int width, int height, bool top_view) {
  if (traj.empty()) return "(empty trajectory)\n";
  Bounds b;
  for (const auto& s : traj) {
    if (top_view) {
      b.include(s.own_position_m.x, s.own_position_m.y);
      b.include(s.intruder_position_m.x, s.intruder_position_m.y);
    } else {
      b.include(s.t_s, s.own_position_m.z);
      b.include(s.t_s, s.intruder_position_m.z);
    }
  }
  b.pad();

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& s : traj) {
    const char own = (s.own_advisory != "COC") ? 'O' : 'o';
    const char intr = (s.intruder_advisory != "COC") ? 'I' : 'i';
    if (top_view) {
      plot_point(canvas, b, s.own_position_m.x, s.own_position_m.y, own);
      plot_point(canvas, b, s.intruder_position_m.x, s.intruder_position_m.y, intr);
    } else {
      plot_point(canvas, b, s.t_s, s.own_position_m.z, own);
      plot_point(canvas, b, s.t_s, s.intruder_position_m.z, intr);
    }
  }

  std::ostringstream out;
  out << (top_view ? "top view (x: east [m], y: north [m])"
                   : "side view (x: time [s], y: altitude [m])")
      << "  —  'o'/'i' free flight, 'O'/'I' advisory active\n";
  out << "  y: [" << b.y_lo << ", " << b.y_hi << "]\n";
  for (const auto& line : canvas) out << "  |" << line << '\n';
  out << "  +" << std::string(static_cast<std::size_t>(width), '-') << "  x: [" << b.x_lo << ", "
      << b.x_hi << "]\n";
  return out.str();
}

}  // namespace

void write_trajectory_csv(const Trajectory& trajectory, const std::string& path) {
  CsvWriter csv(path);
  csv.header({"t_s", "own_x", "own_y", "own_z", "own_vs", "own_advisory", "int_x", "int_y",
              "int_z", "int_vs", "int_advisory", "separation_m"});
  for (const auto& s : trajectory) {
    csv.cell(s.t_s)
        .cell(s.own_position_m.x)
        .cell(s.own_position_m.y)
        .cell(s.own_position_m.z)
        .cell(s.own_vs_mps)
        .cell(s.own_advisory)
        .cell(s.intruder_position_m.x)
        .cell(s.intruder_position_m.y)
        .cell(s.intruder_position_m.z)
        .cell(s.intruder_vs_mps)
        .cell(s.intruder_advisory)
        .cell(s.separation_m);
    csv.end_row();
  }
}

void write_multi_trajectory_csv(const MultiTrajectory& trajectory, const std::string& path) {
  CsvWriter csv(path);
  csv.header({"t_s", "aircraft", "x", "y", "z", "vs", "advisory"});
  for (const auto& s : trajectory) {
    for (std::size_t i = 0; i < s.position_m.size(); ++i) {
      csv.cell(s.t_s)
          .cell(i)
          .cell(s.position_m[i].x)
          .cell(s.position_m[i].y)
          .cell(s.position_m[i].z)
          .cell(s.vs_mps[i])
          .cell(s.advisory[i]);
      csv.end_row();
    }
  }
}

std::string render_top_view(const Trajectory& trajectory, int width, int height) {
  return render(trajectory, width, height, /*top_view=*/true);
}

std::string render_side_view(const Trajectory& trajectory, int width, int height) {
  return render(trajectory, width, height, /*top_view=*/false);
}

}  // namespace cav::sim
