// Multi-threat advisory arbitration — the layer between per-threat CAS
// evaluation and the advisory actually flown.
//
// PR 3's multi-intruder engine exposed the gap this closes: a pairwise CAS
// fed only its nearest threat resolves staggered traffic but takes NMACs on
// the simultaneous converging ring, because the advisory that clears threat
// A can fly straight into threat B (the multi-UAV coordination problem of
// Wang et al., arXiv:2005.14455; the traffic-density axis of Sunberg et
// al., arXiv:1602.04762).
//
// Under ThreatPolicy::kCostFused each equipped UAV evaluates its pairwise
// CAS against *every* tracked threat inside a tau/range gate and fuses the
// per-threat results:
//
//   * Cost-capable systems (the table-backed ACAS logics) expose per-threat
//     Q-costs over the shared advisory set; the resolver sums them per
//     candidate advisory — each threat "votes" with its expected cost — and
//     commits the cost-minimizing advisory, with per-link coordination
//     senses made infinitely expensive and the existing deterministic
//     tie-break (keep current, then COC, then weaker before stronger).
//     The blocking-set check runs as a safety net over the vote: a sense
//     that steers into a gated threat's protected volume is flipped when
//     the opposite sense is clear (each per-threat table only knows its
//     own geometry, so dominant cost mass can out-vote the one threat the
//     chosen sense endangers).
//   * Decision-only systems (TCAS-like, SVO) fall back to severity-ordered
//     pairwise advisories: the most severe threat's decision is flown
//     unless the blocking-set check finds it steers into another gated
//     threat's protected volume, in which case the vertical sense is
//     vetoed and flipped (or kept, when both senses are blocked — the most
//     severe threat then wins).
//
// ThreatPolicy::kJointTable goes one level deeper on the failure mode cost
// fusion cannot express (the symmetric co-altitude squeeze — threats above
// and below at the same CPA, where every pairwise vote ignores the other
// threat's future): the two most severe gated threats are priced by ONE
// table solved over their joint state (acasx/joint_table.h), any remaining
// gated threats keep voting with their pairwise costs on top, and
// everything downstream (coordination pricing, tie-break, blocking-set
// veto, commit) is shared with kCostFused.  When no second threat is
// inside the joint alerting envelope — or the system carries no joint
// table — the cycle resolves exactly as kCostFused, so single-threat
// traffic is policy-invariant.
//
// ThreatPolicy::kNearest preserves the PR 3 engine bit-identically.
#pragma once

#include <vector>

#include "sim/cas.h"
#include "sim/monitors.h"

namespace cav::sim {

/// How an equipped UAV turns the set of tracks it holds into one advisory.
enum class ThreatPolicy {
  kNearest,     ///< pairwise CAS against the nearest track (PR 3 engine)
  kCostFused,   ///< arbitrate every gated threat via MultiThreatResolver
  kJointTable,  ///< kCostFused, with the two most severe threats priced by
                ///< the joint-threat table (falls back per cycle when no
                ///< second threat is jointly active)
};

/// Which tracks count as threats, and the blocking-set geometry.
///
/// Known limitations (deliberate, documented tradeoffs):
///   * The gate and the blocking-set check estimate tau with the *stock*
///     OnlineConfig thresholds (dmod/min-closure), independent of how the
///     CAS under test is configured.  A CAS tuned with a longer alerting
///     horizon needs a correspondingly wider tau_gate_s/range_gate_m or
///     genuine threats may be gated away before the CAS ever sees them.
///   * A threat that flaps across the gate boundary reaches its per-threat
///     smoother only on gated cycles; the fixed-cadence alpha-beta filter
///     then sees a measurement gap and takes a few cycles to re-settle.
struct ThreatGateConfig {
  double range_gate_m = 10000.0;  ///< tracks beyond this never vote
  double tau_gate_s = 60.0;       ///< converging tracks inside this always vote
  std::size_t max_threats = 8;    ///< keep the most severe N gated threats
  /// Blocking-set check: a commanded sense is blocked by a threat when the
  /// predicted vertical separation at that threat's CPA falls inside this
  /// band *and* shrinks relative to not maneuvering.
  double blocking_vertical_m = 50.0;
  /// Own vertical rate the blocking-set check assumes for a commanded
  /// sense (the initial-advisory rate, 1500 ft/min).
  double assumed_rate_mps = 7.62;
};

class MultiThreatResolver {
 public:
  explicit MultiThreatResolver(const ThreatGateConfig& gate = {}) : gate_(gate) {}

  const ThreatGateConfig& gate() const { return gate_; }

  /// Apply the tau/range gate to `threats` in place (keep a track when its
  /// range is inside range_gate_m OR it is horizontally converging within
  /// tau_gate_s), order the survivors by severity (ascending converging
  /// tau, then range, then aircraft id), and drop entries beyond
  /// max_threats.  Deterministic: the same threat set in any input order
  /// yields the same ordered list, which keeps the fused cost sums
  /// bit-identical under permutation.
  void gate_and_sort(const acasx::AircraftTrack& own,
                     std::vector<ThreatObservation>* threats) const;

  /// Arbitrate one decision cycle.  `threats` must be non-empty and come
  /// from gate_and_sort; `stats` is updated in place.  `policy` selects
  /// between pure pairwise cost fusion (kCostFused, the default) and the
  /// joint-table pricing of the two most severe threats (kJointTable);
  /// kNearest never reaches the resolver.
  CasDecision resolve(CollisionAvoidanceSystem& cas, const acasx::AircraftTrack& own,
                      const std::vector<ThreatObservation>& threats, ResolverStats* stats,
                      ThreatPolicy policy = ThreatPolicy::kCostFused) const;

  /// True when flying `sense` at the assumed rate steers the own-ship into
  /// `threat`'s protected volume at its predicted CPA (see
  /// ThreatGateConfig::blocking_vertical_m).  Exposed for tests.
  bool steers_into(const acasx::AircraftTrack& own, acasx::Sense sense,
                   const ThreatObservation& threat) const;

 private:
  /// Shared cost-level selection for kCostFused and kJointTable: sum the
  /// votes (with `joint`, when non-null, replacing the two most severe
  /// threats' pairwise votes), price coordination senses at infinity,
  /// select, veto, commit.
  CasDecision resolve_costed(CollisionAvoidanceSystem& cas, const acasx::AircraftTrack& own,
                             const std::vector<ThreatObservation>& threats,
                             const std::vector<ThreatCosts>& costs, const ThreatCosts* joint,
                             ResolverStats* stats) const;
  CasDecision resolve_fallback(CollisionAvoidanceSystem& cas, const acasx::AircraftTrack& own,
                               const std::vector<ThreatObservation>& threats,
                               ResolverStats* stats) const;

  /// Blocking-set evaluation shared by both paths: when `sense` steers
  /// into any of threats[blocked_from..] and the opposite sense is clear
  /// of *every* gated threat and not forbidden on any link, returns the
  /// opposite sense to flip to; otherwise kNone (no veto).
  acasx::Sense veto_flip(const acasx::AircraftTrack& own, acasx::Sense sense,
                         const std::vector<ThreatObservation>& threats,
                         std::size_t blocked_from) const;

  ThreatGateConfig gate_;
};

}  // namespace cav::sim
