#include "sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/expect.h"

namespace cav::sim {
namespace {

acasx::AircraftTrack self_track(const UavState& state) {
  // Own state is known exactly (GPS/IMU fidelity is far above ADS-B noise
  // at these scales); only the *other* aircraft are seen through ADS-B.
  return {state.position_m, state.velocity_mps()};
}

}  // namespace

bool SimResult::own_nmac() const {
  for (const PairReport& p : pairs) {
    if (p.a == 0 && p.nmac) return true;
  }
  return false;
}

double SimResult::own_min_separation_m() const {
  double min = std::numeric_limits<double>::infinity();
  for (const PairReport& p : pairs) {
    if (p.a == 0 && p.proximity.min_distance_m < min) min = p.proximity.min_distance_m;
  }
  return min;
}

const PairReport& SimResult::pair(int a, int b) const {
  if (a > b) std::swap(a, b);
  for (const PairReport& p : pairs) {
    if (p.a == a && p.b == b) return p;
  }
  expect(false, "no such aircraft pair in the result");
  return pairs.front();  // unreachable
}

Simulation::Simulation(const SimConfig& config, std::vector<AgentSetup> agents,
                       std::uint64_t seed)
    : config_(config),
      coord_(config.coordination, agents.size() < 2 ? 2 : agents.size()),
      sensor_(config.adsb),
      monitors_(agents.size(), config.accident),
      resolver_(config.threat_gate),
      rng_coord_(RngStream::derive(seed, "coordination")),
      airspace_(config.airspace, agents.size()) {
  expect(config.dt_dynamics_s > 0.0, "dt_dynamics_s > 0");
  expect(config.decision_period_s >= config.dt_dynamics_s,
         "decision period is at least one physics step");
  expect(config.max_time_s > 0.0, "max_time_s > 0");
  expect(config.record_every_n >= 1, "record_every_n >= 1");
  expect(config.airspace.parallel.num_lps >= 1, "num_lps >= 1");
  expect(agents.size() >= 2, "a simulation needs at least two aircraft");

  runtimes_.reserve(agents.size());
  for (std::size_t i = 0; i < agents.size(); ++i) {
    AgentSetup& setup = agents[i];
    // Independent streams per (random source, aircraft) keep results
    // identical across serial/parallel execution, make failure injection
    // orthogonal, and — crucially — do not depend on the aircraft count, so
    // the two-aircraft path draws the exact streams it always did.
    runtimes_.push_back(AgentRuntime{
        UavAgent(static_cast<int>(i), setup.initial_state, setup.performance),
        std::move(setup.cas),
        {},
        {},
        acasx::Sense::kNone,
        acasx::Sense::kNone,
        "COC",
        RngStream::derive(seed, "adsb", i),
        RngStream::derive(seed, "disturbance", i),
        RngStream::derive(seed, "fault", i),
        {},
        {},
        setup.fault.has_value() ? *setup.fault : config.fault,
        setup.count_alerts,
        true,
        0.0});
    if (runtimes_.back().cas != nullptr) runtimes_.back().cas->reset();
  }
  positions_.resize(runtimes_.size());
  comms_down_.resize(runtimes_.size(), false);
  blackout_depth_.resize(runtimes_.size(), 0);

  // Comms-blackout window edges become first-class scheduled events.  An
  // edge at t_e fires at the first decision time t >= t_e — the same
  // boundary TimeWindow::contains evaluated each cycle, so the
  // event-driven mask is bit-identical to the per-cycle scan.  Degenerate
  // windows (end <= start), which contains() never satisfied, schedule
  // nothing.
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    for (const TimeWindow& w : runtimes_[i].fault.comms_blackouts) {
      if (w.end_s <= w.start_s) continue;
      events_.push(w.start_s, EventType::kCommsBlackoutStart, static_cast<int>(i));
      events_.push(w.end_s, EventType::kCommsBlackoutEnd, static_cast<int>(i));
    }
  }
}

void Simulation::receive_track(AgentRuntime& me, TrackSlot& slot) {
  const UavState& truth = runtimes_[static_cast<std::size_t>(slot.target)].agent.state();
  if (!me.fault.degrades_surveillance()) {
    // The pre-fault seed path, draw for draw.
    auto received = sensor_.observe(truth, me.rng_adsb);
    if (received.has_value()) slot.track = *received;
    return;
  }

  auto received = observe_degraded(sensor_, truth, me.fault, me.rng_adsb, me.rng_fault,
                                   &slot.burst_cycles_left);
  if (received.has_value()) {
    slot.track = *received;
    slot.age_cycles = 0;
  } else {
    ++slot.age_cycles;
    // Track-staleness horizon: a coasted track older than the horizon is
    // dropped — the aircraft un-sees that traffic until it hears it again
    // — instead of being trusted forever.
    if (slot.track.has_value() &&
        static_cast<double>(slot.age_cycles) * config_.decision_period_s >
            me.fault.track_staleness_horizon_s) {
      slot.track.reset();
    }
  }
}

void Simulation::refresh_tracks(AgentRuntime& me, const std::vector<int>& neighbors) {
  // Merge the sorted track set against the sorted neighbor list: keep the
  // slot (and its burst/age state) for targets still in radius, create
  // slots for new arrivals, drop the rest — the aircraft un-sees traffic
  // that left its reception range.  Each kept or new slot receives this
  // cycle's broadcast in ascending target order, which is exactly the
  // dense engine's 0..K reception loop when `neighbors` is everyone.
  std::vector<TrackSlot>& next = me.tracks_scratch;
  next.clear();
  std::size_t k = 0;
  for (const int j : neighbors) {
    while (k < me.tracks.size() && me.tracks[k].target < j) ++k;
    if (k < me.tracks.size() && me.tracks[k].target == j) {
      next.push_back(std::move(me.tracks[k]));
      ++k;
    } else {
      TrackSlot fresh;
      fresh.target = j;
      next.push_back(std::move(fresh));
    }
    receive_track(me, next.back());
  }
  std::swap(me.tracks, next);
}

void Simulation::refresh_surveillance() {
  // Receive every in-radius aircraft's broadcast, in index order (so the
  // draw sequence on each aircraft's ADS-B stream is deterministic); coast
  // on the last track heard for an aircraft whose message was lost.
  // Reception touches only the receiving agent's own streams and track
  // slots and reads truth states that stay frozen until the physics phase,
  // so the agents partition across logical processes; the per-stream draw
  // sequences are exactly the legacy interleaved sweep's.  Unequipped
  // aircraft (no CAS) hold no surveillance picture and receive nothing,
  // as before.
  const LpConfig& parallel = config_.airspace.parallel;
  for_each_lp(parallel, [&](int lp) {
    const auto [begin, end] = lp_index_range(lp, parallel.num_lps, runtimes_.size());
    for (std::size_t i = begin; i < end; ++i) {
      AgentRuntime& me = runtimes_[i];
      if (me.cas == nullptr) continue;
      refresh_tracks(me, airspace_.neighbors_of(i));
    }
  });
}

void Simulation::decide_for(AgentRuntime& me, std::size_t my_id, double t_s) {
  if (me.cas == nullptr) return;

  if (me.tracks.empty()) {
    // All traffic left the interaction radius: no surveillance picture
    // remains, so resume the flight plan rather than flying a frozen
    // advisory forever.  Unreachable under the dense index (K >= 2 keeps
    // every slot alive) and in any run whose geometry stays inside the
    // radius.
    me.agent.set_command(VerticalCommand{});
    me.agent.set_turn_command(TurnCommand{});
    me.current_label = "COC";
    me.last_sense = acasx::Sense::kNone;
    me.report.final_advisory = "COC";
    return;
  }

  // Multi-threat arbitration (ThreatPolicy::kCostFused / kJointTable):
  // hand every gated track to the resolver instead of just the nearest
  // one.  When the gate leaves nothing (all traffic far and diverging),
  // fall through to the nearest-threat path so a previously issued
  // command is still cleared by the CAS rather than frozen in place.
  CasDecision decision;
  bool resolved = false;
  if (config_.threat_policy != ThreatPolicy::kNearest) {
    const acasx::AircraftTrack own_track = self_track(me.agent.state());
    std::vector<ThreatObservation>& threats = me.threat_scratch;
    threats.clear();
    for (const TrackSlot& slot : me.tracks) {
      if (!slot.track.has_value()) continue;
      ThreatObservation obs;
      obs.aircraft_id = slot.target;
      obs.track = *slot.track;
      obs.forbidden_sense = coord_.forbidden_for(static_cast<int>(my_id), slot.target);
      obs.range_m = distance(obs.track.position_m, own_track.position_m);
      threats.push_back(std::move(obs));
    }
    resolver_.gate_and_sort(own_track, &threats);
    if (!threats.empty()) {
      decision = resolver_.resolve(*me.cas, own_track, threats, &me.report.resolver,
                                   config_.threat_policy);
      resolved = true;
    }
  }

  if (!resolved) {
    // Nearest-threat selection: the existing avoidance systems are pairwise,
    // so the engine feeds them the closest track currently held (lowest
    // index on ties).  Stay passive if nothing has ever been heard.
    const Vec3 my_position = me.agent.state().position_m;
    const TrackSlot* threat = nullptr;
    double threat_distance = std::numeric_limits<double>::infinity();
    for (const TrackSlot& slot : me.tracks) {
      if (!slot.track.has_value()) continue;
      const double d = distance(slot.track->position_m, my_position);
      if (d < threat_distance) {
        threat_distance = d;
        threat = &slot;
      }
    }
    if (threat == nullptr) return;

    decision = me.cas->decide(self_track(me.agent.state()), *threat->track,
                              coord_.forbidden_for(static_cast<int>(my_id), threat->target));
  }

  VerticalCommand command;
  command.active = decision.maneuver;
  command.target_vs_mps = decision.target_vs_mps;
  command.accel_mps2 = decision.accel_mps2;
  me.agent.set_command(command);

  TurnCommand turn;
  turn.active = decision.turn;
  turn.rate_rad_s = decision.turn_rate_rad_s;
  me.agent.set_turn_command(turn);

  me.current_label = decision.label;

  if (decision.maneuver || decision.turn) {
    if (me.count_alerts && !me.report.ever_alerted) {
      me.report.ever_alerted = true;
      me.report.first_alert_time_s = t_s;
    }
    if (me.count_alerts) ++me.report.alert_cycles;
    // Reversal monitor: compare against the last *issued* sense, which
    // survives COC coasting gaps — an RA -> COC -> opposite-RA sequence is
    // a reversal (the paper's reversal monitor), not a fresh alert.
    if (me.last_issued_sense != acasx::Sense::kNone && decision.sense != acasx::Sense::kNone &&
        me.last_issued_sense != decision.sense) {
      ++me.report.reversals;
    }
    if (decision.sense != acasx::Sense::kNone) me.last_issued_sense = decision.sense;
    me.last_sense = decision.sense;
  } else {
    me.last_sense = acasx::Sense::kNone;
  }
  me.report.final_advisory = decision.label;
}

void Simulation::decide_all(double t_s) {
  // Staleness clock + per-agent comms-blackout mask for this cycle.  The
  // tick touches no RNG; the mask comes from the event queue (blackout
  // window edges drained by begin_decision_cycle), which reproduces the
  // per-cycle window scan exactly.
  coord_.tick();
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    comms_down_[i] = blackout_depth_[i] > 0;
  }

  // Surveillance phase: LP-parallel, then a barrier — every track picture
  // is complete before the first decision is taken.
  refresh_surveillance();

  // Sequential decisions: lower-index aircraft announce first, so a later
  // aircraft sees a fresh constraint (the paper's own-ship -> intruder
  // coordination command); earlier aircraft saw the later ones' previous
  // announcements, giving the one-cycle latency a real datalink has.
  // This sweep is the serial section the logical processes synchronize
  // around: decisions read same-cycle posts of lower-index aircraft, and
  // posts share one coordination stream, so order is semantics here.
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    decide_for(runtimes_[i], i, t_s);
    // A blacked-out or coordination-silent sender transmits nothing (its
    // links make no draws this cycle); a blacked-out receiver's links
    // still draw inside post(), but nothing is delivered to it.  Delivery
    // reaches in-radius receivers only — with the dense index that is
    // every other aircraft, draw for draw the legacy broadcast.
    if (comms_down_[i] || runtimes_[i].fault.coordination_silent) continue;
    coord_.post(static_cast<int>(i), runtimes_[i].last_sense, rng_coord_, &comms_down_,
                airspace_.neighbors_of(i));
  }
}

void Simulation::record_sample(double t_s, SimResult& result) const {
  const AgentRuntime& a = runtimes_[0];
  const AgentRuntime& b = runtimes_[1];
  TrajectorySample s;
  s.t_s = t_s;
  s.own_position_m = a.agent.state().position_m;
  s.intruder_position_m = b.agent.state().position_m;
  s.own_vs_mps = a.agent.state().vertical_speed_mps;
  s.intruder_vs_mps = b.agent.state().vertical_speed_mps;
  s.own_advisory = a.current_label;
  s.intruder_advisory = b.current_label;
  s.separation_m = distance(a.agent.state().position_m, b.agent.state().position_m);
  result.trajectory.push_back(std::move(s));

  MultiTrajectorySample m;
  m.t_s = t_s;
  m.position_m.reserve(runtimes_.size());
  m.vs_mps.reserve(runtimes_.size());
  m.advisory.reserve(runtimes_.size());
  for (const AgentRuntime& r : runtimes_) {
    m.position_m.push_back(r.agent.state().position_m);
    m.vs_mps.push_back(r.agent.state().vertical_speed_mps);
    m.advisory.push_back(r.current_label);
  }
  result.multi_trajectory.push_back(std::move(m));
}

void Simulation::refresh_positions(bool active_only) {
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    if (!active_only || runtimes_[i].active) positions_[i] = runtimes_[i].agent.state().position_m;
  }
}

void Simulation::begin_decision_cycle(double t_s, SimStats* stats) {
  // 1. Drain scheduled fault events up to the accumulated clock.  Each
  //    blackout edge adjusts a per-agent depth counter; decide_all reads
  //    depth > 0 as "comms down", matching the legacy window scan.
  while (events_.has_due(t_s)) {
    const Event e = events_.pop();
    blackout_depth_[static_cast<std::size_t>(e.agent)] +=
        e.type == EventType::kCommsBlackoutStart ? 1 : -1;
    ++stats->fault_events;
  }

  // 2. Catch inactive agents up to the decision time with one coarse step
  //    covering the whole period (one disturbance draw instead of ten).
  //    Per-agent streams and state: LP-parallel, tallies summed in LP
  //    order afterwards.
  const LpConfig& parallel = config_.airspace.parallel;
  lp_step_counts_.assign(static_cast<std::size_t>(parallel.num_lps), 0);
  for_each_lp(parallel, [&](int lp) {
    const auto [begin, end] = lp_index_range(lp, parallel.num_lps, runtimes_.size());
    std::uint64_t steps = 0;
    for (std::size_t i = begin; i < end; ++i) {
      AgentRuntime& r = runtimes_[i];
      if (r.active || r.last_step_t_s >= t_s) continue;
      r.agent.step(t_s - r.last_step_t_s, config_.disturbance, r.rng_disturbance);
      r.last_step_t_s = t_s;
      ++steps;
    }
    lp_step_counts_[static_cast<std::size_t>(lp)] = steps;
  });
  for (const std::uint64_t steps : lp_step_counts_) stats->coarse_agent_steps += steps;

  // 3. Rebuild the spatial index at the now-synchronized positions.
  refresh_positions(false);
  airspace_.rebuild(positions_);

  // 4. Refresh the monitor set from the near pairs.  Newly materialized
  //    pairs are sampled at the activation time; pairs already active were
  //    sampled at the end of the previous physics step.
  const std::size_t fresh = monitors_.set_active_pairs(airspace_.near_pairs());
  if (fresh > 0) {
    monitors_.update_new(t_s, positions_, fresh);
    stats->pair_updates += fresh;
  }
  stats->peak_active_pairs = std::max(stats->peak_active_pairs, monitors_.num_active_pairs());

  // 5. Recompute the active set: an agent densifies to the physics dt
  //    while anyone is inside its interaction radius.
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    runtimes_[i].active =
        !config_.airspace.adaptive_timers || !airspace_.neighbors_of(i).empty();
  }
}

void Simulation::advance_period(double* t_io, std::size_t n_sub, double tail_dt,
                                SimStats* stats) {
  const double dt = config_.dt_dynamics_s;
  const LpConfig& parallel = config_.airspace.parallel;

  // Substep clock: the exact serial accumulation (t += dt, clamped tail
  // last) the flat fixed-dt loop performed, precomputed so every LP and
  // every monitor replays the identical float values.
  step_times_.resize(n_sub);
  double t = *t_io;
  for (std::size_t s = 0; s < n_sub; ++s) {
    t += (tail_dt > 0.0 && s + 1 == n_sub) ? tail_dt : dt;
    step_times_[s] = t;
  }

  // Position snapshot rows, seeded with the decision-time positions so an
  // inactive (coarse) agent contributes its stale position to every
  // substep — exactly what refresh_positions(active_only=true) left in
  // place each step of the legacy loop.
  if (step_positions_.size() < n_sub) step_positions_.resize(n_sub);
  for (std::size_t s = 0; s < n_sub; ++s) step_positions_[s] = positions_;

  // LP event loop: each logical process integrates its agents through the
  // whole period.  Disturbance draws come from per-agent streams and each
  // agent writes only its own column of the snapshot rows, so the agent ×
  // substep iteration order is free — per-agent results are bit-identical
  // to the legacy substep-major sweep.
  lp_step_counts_.assign(static_cast<std::size_t>(parallel.num_lps), 0);
  for_each_lp(parallel, [&](int lp) {
    const auto [begin, end] = lp_index_range(lp, parallel.num_lps, runtimes_.size());
    std::uint64_t steps = 0;
    for (std::size_t i = begin; i < end; ++i) {
      AgentRuntime& r = runtimes_[i];
      if (!r.active) continue;
      for (std::size_t s = 0; s < n_sub; ++s) {
        const double step_dt = (tail_dt > 0.0 && s + 1 == n_sub) ? tail_dt : dt;
        r.agent.step(step_dt, config_.disturbance, r.rng_disturbance);
        step_positions_[s][i] = r.agent.state().position_m;
        ++steps;
      }
      r.last_step_t_s = step_times_[n_sub - 1];
    }
    lp_step_counts_[static_cast<std::size_t>(lp)] = steps;
  });
  for (const std::uint64_t steps : lp_step_counts_) stats->fine_agent_steps += steps;

  // Monitor phase (after the physics barrier): replay the snapshots over
  // the active pairs, slot-partitioned across LPs.
  monitors_.update_series(step_times_, step_positions_, n_sub, parallel.num_lps, parallel.pool);
  stats->pair_updates += static_cast<std::uint64_t>(n_sub) * monitors_.num_active_pairs();

  *t_io = step_times_[n_sub - 1];
}

SimResult Simulation::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  SimResult result;

  const double dt = config_.dt_dynamics_s;
  const auto steps_per_decision =
      static_cast<std::size_t>(std::lround(config_.decision_period_s / dt));

  // Round the step count down to whole physics steps and close the run
  // with one clamped tail step, so max_time_s values that are not an
  // integer multiple of the physics step (Monte-Carlo's t_cpa + margin
  // rarely is) do not silently drop up to half a step of the encounter.
  // Tails below 1 ns are integration-grid round-off, not real time.
  const auto full_steps =
      static_cast<std::size_t>(std::floor(config_.max_time_s / dt + 1e-9));
  double tail_dt = config_.max_time_s - static_cast<double>(full_steps) * dt;
  if (tail_dt <= 1e-9) tail_dt = 0.0;
  const std::size_t total_steps = full_steps + (tail_dt > 0.0 ? 1 : 0);

  // One decision period at a time: the decision boundary (serial), then
  // the period's physics substeps and monitor updates as the LP event
  // loop (advance_period).  Decisions land at exactly the steps the flat
  // `step % steps_per_decision == 0` loop placed them, including a final
  // short period when total_steps is not a multiple.
  double t = 0.0;
  std::size_t step = 0;
  while (step < total_steps) {
    begin_decision_cycle(t, &result.stats);
    decide_all(t);
    if (config_.record_trajectory &&
        result.stats.decision_cycles % static_cast<std::uint64_t>(config_.record_every_n) == 0) {
      record_sample(t, result);
    }
    ++result.stats.decision_cycles;

    const std::size_t n_sub = std::min(steps_per_decision, total_steps - step);
    const bool closes_run = step + n_sub == total_steps;
    advance_period(&t, n_sub, closes_run ? tail_dt : 0.0, &result.stats);
    step += n_sub;
  }

  result.proximity = monitors_.aggregate_proximity();
  result.nmac = monitors_.any_nmac();
  result.nmac_time_s = monitors_.earliest_nmac_time_s();
  result.hard_collision = monitors_.any_hard_collision();
  result.pairs.reserve(monitors_.num_pairs());
  for (std::size_t p = 0; p < monitors_.num_pairs(); ++p) {
    const auto [i, j] = monitors_.pair_agents(p);
    PairReport pr;
    pr.a = static_cast<int>(i);
    pr.b = static_cast<int>(j);
    pr.proximity = monitors_.proximity_at(p).report();
    pr.nmac = monitors_.accidents_at(p).nmac();
    pr.nmac_time_s = monitors_.accidents_at(p).nmac_time_s();
    pr.hard_collision = monitors_.accidents_at(p).hard_collision();
    result.pairs.push_back(pr);
  }
  result.agents.reserve(runtimes_.size());
  for (const AgentRuntime& r : runtimes_) result.agents.push_back(r.report);
  result.own = result.agents[0];
  result.intruder = result.agents[1];
  result.elapsed_s = t;
  result.stats.monitored_pairs = monitors_.num_pairs();
  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

SimResult run_encounter(const SimConfig& config, AgentSetup own, AgentSetup intruder,
                        std::uint64_t seed) {
  std::vector<AgentSetup> agents;
  agents.push_back(std::move(own));
  agents.push_back(std::move(intruder));
  return Simulation(config, std::move(agents), seed).run();
}

SimResult run_multi_encounter(const SimConfig& config, std::vector<AgentSetup> agents,
                              std::uint64_t seed) {
  return Simulation(config, std::move(agents), seed).run();
}

}  // namespace cav::sim
