#include "sim/simulation.h"

#include <array>
#include <cmath>

#include "util/expect.h"

namespace cav::sim {
namespace {

/// Per-aircraft bookkeeping during a run.
struct AgentRuntime {
  UavAgent agent;
  CollisionAvoidanceSystem* cas;  // may be null
  std::optional<acasx::AircraftTrack> last_track_of_other;
  AgentReport report;
  acasx::Sense last_sense = acasx::Sense::kNone;
  std::string current_label = "COC";
};

acasx::AircraftTrack self_track(const UavState& state) {
  // Own state is known exactly (GPS/IMU fidelity is far above ADS-B noise
  // at these scales); only the *other* aircraft is seen through ADS-B.
  return {state.position_m, state.velocity_mps()};
}

void decide_for(AgentRuntime& me, const AgentRuntime& other, CoordinationChannel& coord,
                const AdsbSensor& sensor, int my_id, double t_s, RngStream& adsb_rng) {
  if (me.cas == nullptr) return;

  // Receive the other aircraft's broadcast; coast on the last track if the
  // message was lost, and stay passive if we have never heard anything.
  auto received = sensor.observe(other.agent.state(), adsb_rng);
  if (received.has_value()) me.last_track_of_other = *received;
  if (!me.last_track_of_other.has_value()) return;

  const CasDecision decision =
      me.cas->decide(self_track(me.agent.state()), *me.last_track_of_other,
                     coord.forbidden_for(my_id));

  VerticalCommand command;
  command.active = decision.maneuver;
  command.target_vs_mps = decision.target_vs_mps;
  command.accel_mps2 = decision.accel_mps2;
  me.agent.set_command(command);

  TurnCommand turn;
  turn.active = decision.turn;
  turn.rate_rad_s = decision.turn_rate_rad_s;
  me.agent.set_turn_command(turn);

  me.current_label = decision.label;

  if (decision.maneuver || decision.turn) {
    if (!me.report.ever_alerted) {
      me.report.ever_alerted = true;
      me.report.first_alert_time_s = t_s;
    }
    ++me.report.alert_cycles;
    if (me.last_sense != acasx::Sense::kNone && decision.sense != acasx::Sense::kNone &&
        me.last_sense != decision.sense) {
      ++me.report.reversals;
    }
    me.last_sense = decision.sense;
  } else {
    me.last_sense = acasx::Sense::kNone;
  }
  me.report.final_advisory = decision.label;
}

}  // namespace

SimResult run_encounter(const SimConfig& config, AgentSetup own, AgentSetup intruder,
                        std::uint64_t seed) {
  expect(config.dt_dynamics_s > 0.0, "dt_dynamics_s > 0");
  expect(config.decision_period_s >= config.dt_dynamics_s,
         "decision period is at least one physics step");
  expect(config.max_time_s > 0.0, "max_time_s > 0");

  AgentRuntime a{UavAgent(0, own.initial_state, own.performance), own.cas.get(), {}, {}, {}, "COC"};
  AgentRuntime b{UavAgent(1, intruder.initial_state, intruder.performance), intruder.cas.get(),
                 {}, {}, {}, "COC"};
  if (a.cas != nullptr) a.cas->reset();
  if (b.cas != nullptr) b.cas->reset();

  CoordinationChannel coord(config.coordination);
  AdsbSensor sensor(config.adsb);
  ProximityMeasurer proximity;
  AccidentDetector accidents(config.accident);

  // Independent streams per random source keep results identical across
  // serial/parallel execution and make failure injection orthogonal.
  RngStream rng_adsb_a = RngStream::derive(seed, "adsb", 0);
  RngStream rng_adsb_b = RngStream::derive(seed, "adsb", 1);
  RngStream rng_dist_a = RngStream::derive(seed, "disturbance", 0);
  RngStream rng_dist_b = RngStream::derive(seed, "disturbance", 1);
  RngStream rng_coord = RngStream::derive(seed, "coordination");

  SimResult result;
  const auto steps_per_decision =
      static_cast<std::size_t>(std::lround(config.decision_period_s / config.dt_dynamics_s));
  const auto total_steps = static_cast<std::size_t>(std::lround(config.max_time_s / config.dt_dynamics_s));

  double t = 0.0;
  proximity.update(t, a.agent.state().position_m, b.agent.state().position_m);
  accidents.update(t, a.agent.state().position_m, b.agent.state().position_m);

  for (std::size_t step = 0; step < total_steps; ++step) {
    if (step % steps_per_decision == 0) {
      // Sequential decisions: the own-ship announces first, so the intruder
      // sees a fresh constraint (the paper's own-ship -> intruder
      // coordination command); the own-ship saw the intruder's previous
      // announcement, giving the one-cycle latency a real datalink has.
      decide_for(a, b, coord, sensor, 0, t, rng_adsb_a);
      coord.post(0, a.last_sense, rng_coord);
      decide_for(b, a, coord, sensor, 1, t, rng_adsb_b);
      coord.post(1, b.last_sense, rng_coord);

      if (config.record_trajectory) {
        TrajectorySample s;
        s.t_s = t;
        s.own_position_m = a.agent.state().position_m;
        s.intruder_position_m = b.agent.state().position_m;
        s.own_vs_mps = a.agent.state().vertical_speed_mps;
        s.intruder_vs_mps = b.agent.state().vertical_speed_mps;
        s.own_advisory = a.current_label;
        s.intruder_advisory = b.current_label;
        s.separation_m = distance(a.agent.state().position_m, b.agent.state().position_m);
        result.trajectory.push_back(std::move(s));
      }
    }

    a.agent.step(config.dt_dynamics_s, config.disturbance, rng_dist_a);
    b.agent.step(config.dt_dynamics_s, config.disturbance, rng_dist_b);
    t += config.dt_dynamics_s;

    proximity.update(t, a.agent.state().position_m, b.agent.state().position_m);
    accidents.update(t, a.agent.state().position_m, b.agent.state().position_m);
  }

  result.proximity = proximity.report();
  result.nmac = accidents.nmac();
  result.nmac_time_s = accidents.nmac_time_s();
  result.hard_collision = accidents.hard_collision();
  result.own = a.report;
  result.intruder = b.report;
  result.elapsed_s = t;
  return result;
}

}  // namespace cav::sim
