#include "sim/uav.h"

#include <algorithm>
#include <cmath>

#include "util/angles.h"

namespace cav::sim {

Vec3 UavState::velocity_mps() const {
  return {ground_speed_mps * std::cos(bearing_rad), ground_speed_mps * std::sin(bearing_rad),
          vertical_speed_mps};
}

void UavAgent::step(double dt_s, const DisturbanceConfig& disturbance, RngStream& rng) {
  if (command_.active) {
    // Commanded vertical-rate capture: bounded-acceleration approach to the
    // target, identical in form to the offline model's response assumption.
    const double max_delta = command_.accel_mps2 * dt_s;
    const double delta =
        std::clamp(command_.target_vs_mps - state_.vertical_speed_mps, -max_delta, max_delta);
    state_.vertical_speed_mps += delta;
  } else {
    // Free flight: the autopilot holds the flight-plan rate (mean
    // reversion); gusts push against it.
    state_.vertical_speed_mps +=
        disturbance.vertical_reversion * (nominal_vs_mps_ - state_.vertical_speed_mps) * dt_s;
  }

  if (disturbance.vertical_sigma > 0.0) {
    state_.vertical_speed_mps +=
        disturbance.vertical_sigma * std::sqrt(dt_s) * rng.gaussian(0.0, 1.0);
  }

  state_.ground_speed_mps +=
      disturbance.horizontal_reversion * (nominal_gs_mps_ - state_.ground_speed_mps) * dt_s;
  if (disturbance.horizontal_sigma > 0.0) {
    state_.ground_speed_mps +=
        disturbance.horizontal_sigma * std::sqrt(dt_s) * rng.gaussian(0.0, 1.0);
  }
  state_.ground_speed_mps = std::max(0.0, state_.ground_speed_mps);

  state_.vertical_speed_mps = std::clamp(state_.vertical_speed_mps, -perf_.max_vertical_speed_mps,
                                         perf_.max_vertical_speed_mps);

  if (turn_command_.active) {
    state_.bearing_rad = wrap_pi(state_.bearing_rad + turn_command_.rate_rad_s * dt_s);
  }

  state_.position_m += state_.velocity_mps() * dt_s;
}

}  // namespace cav::sim
