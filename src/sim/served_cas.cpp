#include "sim/served_cas.h"

#include "sim/acasx_cas.h"
#include "sim/belief_cas.h"
#include "util/expect.h"

namespace cav::sim {

CasFactory served_acasx_factory(const serving::PolicyServer& server,
                                acasx::OnlineConfig online, UavPerformance perf,
                                TrackerConfig tracker) {
  expect(server.pairwise_table() != nullptr,
         "server exposes float tables (not quantized serving mode)");
  return AcasXuCas::factory(server.pairwise_table(), online, perf, tracker,
                            server.joint_table());
}

CasFactory served_belief_factory(const serving::PolicyServer& server,
                                 acasx::BeliefConfig belief, acasx::OnlineConfig online,
                                 UavPerformance perf, TrackerConfig tracker) {
  expect(server.pairwise_table() != nullptr,
         "server exposes float tables (not quantized serving mode)");
  return BeliefAcasXuCas::factory(server.pairwise_table(), belief, online, perf, tracker,
                                  server.joint_table());
}

}  // namespace cav::sim
