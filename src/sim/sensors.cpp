#include "sim/sensors.h"

namespace cav::sim {

std::optional<acasx::AircraftTrack> AdsbSensor::observe(const UavState& truth,
                                                        RngStream& rng) const {
  if (config_.dropout_prob > 0.0 && rng.chance(config_.dropout_prob)) return std::nullopt;

  acasx::AircraftTrack track;
  const Vec3 vel = truth.velocity_mps();
  track.position_m = {
      truth.position_m.x + rng.gaussian(0.0, config_.horizontal_pos_sigma_m),
      truth.position_m.y + rng.gaussian(0.0, config_.horizontal_pos_sigma_m),
      truth.position_m.z + rng.gaussian(0.0, config_.vertical_pos_sigma_m),
  };
  track.velocity_mps = {
      vel.x + rng.gaussian(0.0, config_.horizontal_vel_sigma_mps),
      vel.y + rng.gaussian(0.0, config_.horizontal_vel_sigma_mps),
      vel.z + rng.gaussian(0.0, config_.vertical_vel_sigma_mps),
  };
  return track;
}

}  // namespace cav::sim
