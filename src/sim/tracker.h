// Surveillance track smoothing — the simulator-side analog of ACAS X's
// Surveillance and Tracking Module (STM): raw ADS-B measurements are white-
// noisy (§VI.C), and feeding them straight into the logic makes the
// interpolated Q comparison flicker between advisories cycle to cycle.
// A fixed-gain alpha-beta filter removes most of the velocity noise while
// adding only one surveillance cycle of lag.
//
// The filter assumes a fixed measurement cadence (the decision period,
// 1 Hz by default) — configure `dt_s` if the simulation changes it.
#pragma once

#include <map>

#include "acasx/online_logic.h"

namespace cav::sim {

struct TrackerConfig {
  double dt_s = 1.0;           ///< surveillance cadence the gains assume
  double position_alpha = 0.7; ///< weight of the position measurement
  double velocity_beta = 0.4;  ///< weight of the velocity measurement
  bool enabled = true;

  /// Pass-through (raw measurements), for ablation.
  static TrackerConfig off() {
    TrackerConfig c;
    c.enabled = false;
    return c;
  }
};

/// Fixed-gain track smoother for one target.
class TrackSmoother {
 public:
  explicit TrackSmoother(const TrackerConfig& config = {}) : config_(config) {}

  /// Fold in one measurement; returns the smoothed track.  The first
  /// measurement initializes the filter verbatim.
  acasx::AircraftTrack update(const acasx::AircraftTrack& measurement);

  /// Forget filter state (new encounter / track drop).
  void reset() { initialized_ = false; }

  /// Current smoothed track (only meaningful once initialized); used by
  /// commit-time consumers that must not fold in a second measurement.
  const acasx::AircraftTrack& current() const { return state_; }

  bool initialized() const { return initialized_; }
  const TrackerConfig& config() const { return config_; }

 private:
  TrackerConfig config_;
  bool initialized_ = false;
  acasx::AircraftTrack state_{};
};

/// Per-threat smoother bank for the multi-threat cost protocol
/// (sim/cas.h): one TrackSmoother per threat aircraft, created with the
/// shared config on first sight, so multiple targets never mix filter
/// state.  Shared by every cost-capable avoidance system.
class ThreatSmootherBank {
 public:
  /// Fold one measurement into `aircraft_id`'s smoother (creating it from
  /// `config` when unseen) and return the smoothed track.
  acasx::AircraftTrack smooth(int aircraft_id, const acasx::AircraftTrack& measurement,
                              const TrackerConfig& config) {
    return smoothers_.try_emplace(aircraft_id, config).first->second.update(measurement);
  }

  /// Current smoothed track for `aircraft_id`, or `fallback` when that
  /// aircraft has never been smoothed (commit-time consumers must not
  /// fold in a second measurement).
  const acasx::AircraftTrack& current_or(int aircraft_id,
                                         const acasx::AircraftTrack& fallback) const {
    const auto it = smoothers_.find(aircraft_id);
    return (it != smoothers_.end() && it->second.initialized()) ? it->second.current()
                                                                : fallback;
  }

  void clear() { smoothers_.clear(); }

 private:
  std::map<int, TrackSmoother> smoothers_;
};

}  // namespace cav::sim
