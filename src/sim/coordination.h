// Maneuver coordination between the two UAVs (§VI.C): "if the own-ship
// chooses a 'climb' maneuver, it will send a coordination command to the
// intruder to require it not to choose maneuvers in the same direction."
//
// The channel holds the latest sense announced by each aircraft; a reader
// asks for the constraint imposed on it by the *other* aircraft.  Message
// loss and staleness are injectable for robustness experiments.
#pragma once

#include <array>

#include "acasx/advisory.h"
#include "util/rng.h"

namespace cav::sim {

struct CoordinationConfig {
  bool enabled = true;
  double message_loss_prob = 0.0;  ///< per-post probability the message is lost
};

class CoordinationChannel {
 public:
  explicit CoordinationChannel(const CoordinationConfig& config = {}) : config_(config) {}

  /// Aircraft `sender` (0 or 1) announces the sense of its chosen maneuver.
  /// A lost message leaves the previously delivered announcement in place
  /// (receivers work with the last thing they heard).
  void post(int sender, acasx::Sense sense, RngStream& rng) {
    if (!config_.enabled) return;
    if (config_.message_loss_prob > 0.0 && rng.chance(config_.message_loss_prob)) return;
    announced_[static_cast<std::size_t>(sender)] = sense;
  }

  /// The sense forbidden to aircraft `receiver`: whatever the other
  /// aircraft announced (kNone when coordination is disabled or silent).
  acasx::Sense forbidden_for(int receiver) const {
    if (!config_.enabled) return acasx::Sense::kNone;
    return announced_[static_cast<std::size_t>(1 - receiver)];
  }

  void reset() { announced_ = {acasx::Sense::kNone, acasx::Sense::kNone}; }

 private:
  CoordinationConfig config_;
  std::array<acasx::Sense, 2> announced_{acasx::Sense::kNone, acasx::Sense::kNone};
};

}  // namespace cav::sim
