// Maneuver coordination between UAVs (§VI.C): "if the own-ship chooses a
// 'climb' maneuver, it will send a coordination command to the intruder to
// require it not to choose maneuvers in the same direction."
//
// Generalized to N aircraft with per-pair (per-link) bookkeeping: a post is
// a broadcast, but delivery is tracked per receiver link, so message loss
// affects each receiver independently and a reader asks for the constraint
// imposed on it by a *specific* threat aircraft.  For the two-aircraft case
// this reduces exactly to the original channel (one link per post, the
// constraint is whatever the other aircraft last delivered).
#pragma once

#include <vector>

#include "acasx/advisory.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::sim {

struct CoordinationConfig {
  bool enabled = true;
  double message_loss_prob = 0.0;  ///< per-link probability a delivery is lost
};

class CoordinationChannel {
 public:
  explicit CoordinationChannel(const CoordinationConfig& config = {}, std::size_t num_agents = 2)
      : config_(config),
        num_agents_(num_agents),
        delivered_(num_agents * num_agents, acasx::Sense::kNone) {
    expect(num_agents >= 2, "coordination needs at least two aircraft");
  }

  /// Aircraft `sender` announces the sense of its chosen maneuver to every
  /// other aircraft.  Each link draws its own loss; a lost delivery leaves
  /// the previously delivered announcement in place on that link (receivers
  /// work with the last thing they heard).  Receivers are visited in index
  /// order so the draw sequence is deterministic.
  void post(int sender, acasx::Sense sense, RngStream& rng) {
    if (!config_.enabled) return;
    for (std::size_t receiver = 0; receiver < num_agents_; ++receiver) {
      if (receiver == static_cast<std::size_t>(sender)) continue;
      if (config_.message_loss_prob > 0.0 && rng.chance(config_.message_loss_prob)) continue;
      delivered_[receiver * num_agents_ + static_cast<std::size_t>(sender)] = sense;
    }
  }

  /// The sense forbidden to aircraft `receiver` by aircraft `threat`:
  /// whatever `threat` last delivered on that link (kNone when coordination
  /// is disabled or the link has been silent).
  acasx::Sense forbidden_for(int receiver, int threat) const {
    if (!config_.enabled) return acasx::Sense::kNone;
    return delivered_[static_cast<std::size_t>(receiver) * num_agents_ +
                      static_cast<std::size_t>(threat)];
  }

  /// Two-aircraft convenience: the constraint from the (single) other one.
  acasx::Sense forbidden_for(int receiver) const {
    expect(num_agents_ == 2, "pairwise forbidden_for needs a 2-aircraft channel");
    return forbidden_for(receiver, 1 - receiver);
  }

  std::size_t num_agents() const { return num_agents_; }

  void reset() {
    delivered_.assign(delivered_.size(), acasx::Sense::kNone);
  }

 private:
  CoordinationConfig config_;
  std::size_t num_agents_;
  std::vector<acasx::Sense> delivered_;  ///< [receiver * N + sender]
};

}  // namespace cav::sim
