// Maneuver coordination between UAVs (§VI.C): "if the own-ship chooses a
// 'climb' maneuver, it will send a coordination command to the intruder to
// require it not to choose maneuvers in the same direction."
//
// Generalized to N aircraft with per-pair (per-link) bookkeeping: a post is
// a broadcast, but delivery is tracked per receiver link, so message loss
// affects each receiver independently and a reader asks for the constraint
// imposed on it by a *specific* threat aircraft.  For the two-aircraft case
// this reduces exactly to the original channel (one link per post, the
// constraint is whatever the other aircraft last delivered).
//
// Loss model: each link is a two-state Gilbert–Elliott channel.  In the
// GOOD state a delivery is lost with `message_loss_prob` (the original
// uniform model); in the BAD state with `burst_loss_prob` (1.0 = total
// outage).  State transitions are drawn per delivery attempt.  With
// `burst_enter_prob == 0` no link ever leaves GOOD, no transition draw is
// made, and the channel is bit-identical to the pre-burst uniform channel —
// uniform loss is the degenerate case, not a second code path the caller
// selects.
//
// Staleness: `forbidden_for` returns the last *delivered* sense.  With the
// default `staleness_ttl_cycles == 0` (infinite TTL) a silent or
// blacked-out sender constrains its receivers forever; a positive TTL
// decays a link's constraint to kNone once `tick()` has been called more
// than TTL times since the last delivery on that link.
//
// This channel is the engine's serial seam: agent i's decision reads the
// senses agents j < i posted *this* cycle, and every delivery attempt
// draws from one shared coordination stream, so the decide-and-post sweep
// runs strictly in index order even under `AirspaceConfig::parallel` —
// the LP event loops synchronize around it (see simulation.h).
#pragma once

#include <cstdint>
#include <vector>

#include "acasx/advisory.h"
#include "util/expect.h"
#include "util/rng.h"

namespace cav::sim {

struct CoordinationConfig {
  bool enabled = true;
  /// Per-link loss probability in the GOOD channel state (the uniform
  /// model; the only loss knob before fault injection existed).
  double message_loss_prob = 0.0;
  /// Gilbert–Elliott burst loss.  `burst_enter_prob > 0` activates the
  /// two-state model; 0 (default) keeps the uniform channel bit-identical
  /// to the pre-burst engine (no transition draws).
  double burst_enter_prob = 0.0;  ///< GOOD -> BAD per delivery attempt
  double burst_exit_prob = 0.2;   ///< BAD -> GOOD per delivery attempt
  double burst_loss_prob = 1.0;   ///< loss probability while BAD
  /// Decision-cycle TTL on delivered senses: 0 means infinite (a silent
  /// sender's constraint never expires — the pre-fault behavior); a
  /// positive value decays a link to kNone once more than this many
  /// tick()s pass without a delivery on it.
  int staleness_ttl_cycles = 0;

  bool burst_model_active() const { return burst_enter_prob > 0.0; }
};

class CoordinationChannel {
 public:
  explicit CoordinationChannel(const CoordinationConfig& config = {}, std::size_t num_agents = 2)
      : config_(config),
        num_agents_(num_agents),
        delivered_(num_agents * num_agents, acasx::Sense::kNone),
        age_cycles_(num_agents * num_agents, 0),
        link_bad_(num_agents * num_agents, 0) {
    expect(num_agents >= 2, "coordination needs at least two aircraft");
  }

  /// Aircraft `sender` announces the sense of its chosen maneuver to every
  /// other aircraft.  Each link draws its own loss (and, when the burst
  /// model is active, its own state transition); a lost delivery leaves
  /// the previously delivered announcement in place on that link
  /// (receivers work with the last thing they heard).  Receivers are
  /// visited in index order so the draw sequence is deterministic.
  /// `deaf`, when non-null, marks receivers whose comms are blacked out:
  /// their links still draw (the channel state evolves), but nothing is
  /// delivered to them.
  void post(int sender, acasx::Sense sense, RngStream& rng,
            const std::vector<bool>* deaf = nullptr) {
    if (!config_.enabled) return;
    for (std::size_t receiver = 0; receiver < num_agents_; ++receiver) {
      if (receiver == static_cast<std::size_t>(sender)) continue;
      post_to(sender, static_cast<int>(receiver), sense, rng, deaf);
    }
  }

  /// Range-limited broadcast: deliver only to `receivers` (ascending agent
  /// ids, the sender's airspace neighbors).  Links to out-of-range
  /// aircraft make no draws — a datalink has finite reach, so only
  /// in-range links exist this cycle.  With `receivers` equal to every
  /// other aircraft this is draw-for-draw the full broadcast above.
  void post(int sender, acasx::Sense sense, RngStream& rng, const std::vector<bool>* deaf,
            const std::vector<int>& receivers) {
    if (!config_.enabled) return;
    for (const int receiver : receivers) {
      if (receiver == sender) continue;
      post_to(sender, receiver, sense, rng, deaf);
    }
  }

  /// Advance the staleness clock one decision cycle (call once per cycle,
  /// before the cycle's posts).  Ages saturate; with the default infinite
  /// TTL they are tracked but never read.
  void tick() {
    for (int& age : age_cycles_) {
      if (age < kMaxAge) ++age;
    }
  }

  /// The sense forbidden to aircraft `receiver` by aircraft `threat`:
  /// whatever `threat` last delivered on that link (kNone when
  /// coordination is disabled, the link has been silent, or the delivery
  /// is older than the staleness TTL).
  acasx::Sense forbidden_for(int receiver, int threat) const {
    if (!config_.enabled) return acasx::Sense::kNone;
    const std::size_t link = static_cast<std::size_t>(receiver) * num_agents_ +
                             static_cast<std::size_t>(threat);
    if (config_.staleness_ttl_cycles > 0 && age_cycles_[link] > config_.staleness_ttl_cycles) {
      return acasx::Sense::kNone;
    }
    return delivered_[link];
  }

  /// Two-aircraft convenience: the constraint from the (single) other one.
  acasx::Sense forbidden_for(int receiver) const {
    expect(num_agents_ == 2, "pairwise forbidden_for needs a 2-aircraft channel");
    return forbidden_for(receiver, 1 - receiver);
  }

  /// Whether the link receiver<-sender is currently in the BAD (bursty)
  /// Gilbert–Elliott state.  Exposed for tests.
  bool link_in_burst(int receiver, int sender) const {
    return link_bad_[static_cast<std::size_t>(receiver) * num_agents_ +
                     static_cast<std::size_t>(sender)] != 0;
  }

  std::size_t num_agents() const { return num_agents_; }

  void reset() {
    delivered_.assign(delivered_.size(), acasx::Sense::kNone);
    age_cycles_.assign(age_cycles_.size(), 0);
    link_bad_.assign(link_bad_.size(), 0);
  }

 private:
  void post_to(int sender, int receiver, acasx::Sense sense, RngStream& rng,
               const std::vector<bool>* deaf) {
    const std::size_t link =
        static_cast<std::size_t>(receiver) * num_agents_ + static_cast<std::size_t>(sender);
    double loss = config_.message_loss_prob;
    if (config_.burst_model_active()) {
      if (link_bad_[link]) {
        if (rng.chance(config_.burst_exit_prob)) link_bad_[link] = 0;
      } else if (rng.chance(config_.burst_enter_prob)) {
        link_bad_[link] = 1;
      }
      if (link_bad_[link]) loss = config_.burst_loss_prob;
    }
    if (loss > 0.0 && rng.chance(loss)) return;
    if (deaf != nullptr && (*deaf)[static_cast<std::size_t>(receiver)]) return;
    delivered_[link] = sense;
    age_cycles_[link] = 0;
  }

  static constexpr int kMaxAge = 1 << 28;  ///< saturation bound for ages

  CoordinationConfig config_;
  std::size_t num_agents_;
  std::vector<acasx::Sense> delivered_;  ///< [receiver * N + sender]
  std::vector<int> age_cycles_;          ///< tick()s since last delivery per link
  std::vector<std::uint8_t> link_bad_;   ///< Gilbert–Elliott BAD flag per link
};

}  // namespace cav::sim
