#include "sim/airspace.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace cav::sim {

std::int64_t SpatialHashGrid::cell_of(double coord_m) const {
  return static_cast<std::int64_t>(std::floor(coord_m / cell_size_m_));
}

void SpatialHashGrid::build(const std::vector<Vec3>& positions, double cell_size_m) {
  expect(cell_size_m > 0.0 && std::isfinite(cell_size_m), "grid cell size must be finite");
  cell_size_m_ = cell_size_m;
  // Keep the buckets across rebuilds (clear, don't deallocate) so the
  // steady-state decision cycle makes no allocations.
  for (auto& [key, members] : cells_) members.clear();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    cells_[cell_key(cell_of(positions[i].x), cell_of(positions[i].y))].push_back(
        static_cast<int>(i));
  }
}

void SpatialHashGrid::collect_pairs_for(std::size_t i, const std::vector<Vec3>& positions,
                                        double radius_m, std::vector<int>* candidates,
                                        std::vector<std::pair<int, int>>* out) const {
  const std::int64_t cx = cell_of(positions[i].x);
  const std::int64_t cy = cell_of(positions[i].y);
  candidates->clear();
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      const auto it = cells_.find(cell_key(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (const int j : it->second) {
        if (j <= static_cast<int>(i)) continue;
        if (horizontal_distance(positions[i], positions[j]) <= radius_m) {
          candidates->push_back(j);
        }
      }
    }
  }
  // Cell visitation order is arbitrary; sorting restores the j-ascending
  // order the determinism contract promises.
  std::sort(candidates->begin(), candidates->end());
  for (const int j : *candidates) out->emplace_back(static_cast<int>(i), j);
}

void SpatialHashGrid::collect_near_pairs(const std::vector<Vec3>& positions, double radius_m,
                                         std::vector<std::pair<int, int>>* out) const {
  std::vector<int> candidates;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    collect_pairs_for(i, positions, radius_m, &candidates, out);
  }
}

int SpatialHashGrid::stripe_of(const Vec3& position, int num_lps) const {
  const std::int64_t cx = cell_of(position.x);
  const std::int64_t m = cx % num_lps;
  return static_cast<int>(m < 0 ? m + num_lps : m);
}

void SpatialHashGrid::collect_near_pairs_stripe(const std::vector<Vec3>& positions,
                                                double radius_m, int lp, int num_lps,
                                                std::vector<std::pair<int, int>>* out) const {
  std::vector<int> candidates;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (stripe_of(positions[i], num_lps) != lp) continue;
    collect_pairs_for(i, positions, radius_m, &candidates, out);
  }
}

Airspace::Airspace(const AirspaceConfig& config, std::size_t num_agents)
    : config_(config), num_agents_(num_agents), neighbors_(num_agents) {}

void Airspace::rebuild(const std::vector<Vec3>& positions) {
  expect(positions.size() == num_agents_, "airspace rebuild position count");
  const bool dense = all_pairs() || !std::isfinite(config_.interaction_radius_m);
  if (dense) {
    // Dense adjacency never changes; materialize it once.
    if (built_) return;
    near_pairs_.clear();
    for (std::size_t i = 0; i < num_agents_; ++i) {
      neighbors_[i].clear();
      for (std::size_t j = 0; j < num_agents_; ++j) {
        if (j != i) neighbors_[i].push_back(static_cast<int>(j));
      }
      for (std::size_t j = i + 1; j < num_agents_; ++j) {
        near_pairs_.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
    built_ = true;
    return;
  }

  near_pairs_.clear();
  for (std::vector<int>& n : neighbors_) n.clear();
  grid_.build(positions, config_.interaction_radius_m);
  const int num_lps = config_.parallel.num_lps;
  expect(num_lps >= 1, "airspace num_lps >= 1");
  if (num_lps == 1) {
    grid_.collect_near_pairs(positions, config_.interaction_radius_m, &near_pairs_);
  } else {
    // Each logical process collects the pairs anchored in its grid-column
    // stripe; the stripes partition the pair set, so sorting the
    // concatenation by (i, j) reproduces the serial lexicographic list
    // exactly — a canonical-order merge, independent of which LP (or
    // thread) finished first.
    lp_pairs_.resize(static_cast<std::size_t>(num_lps));
    for_each_lp(config_.parallel, [&](int lp) {
      std::vector<std::pair<int, int>>& mine = lp_pairs_[static_cast<std::size_t>(lp)];
      mine.clear();
      grid_.collect_near_pairs_stripe(positions, config_.interaction_radius_m, lp, num_lps,
                                      &mine);
    });
    for (const auto& mine : lp_pairs_) {
      near_pairs_.insert(near_pairs_.end(), mine.begin(), mine.end());
    }
    std::sort(near_pairs_.begin(), near_pairs_.end());
  }
  // Lexicographic pair order yields ascending adjacency lists: for agent x
  // the (i, x) contributions (i < x, ascending) all precede the (x, j)
  // ones (j > x, ascending).
  for (const auto& [i, j] : near_pairs_) {
    neighbors_[static_cast<std::size_t>(i)].push_back(j);
    neighbors_[static_cast<std::size_t>(j)].push_back(i);
  }
  built_ = true;
}

}  // namespace cav::sim
