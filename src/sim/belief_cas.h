// Simulator plug-in for the belief-aware (QMDP-style) online logic.
// Identical plumbing to AcasXuCas — track smoothing, advisory-to-command
// mapping — with the belief-averaged advisory selection inside.
#pragma once

#include <memory>

#include "acasx/belief_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class BeliefAcasXuCas final : public CollisionAvoidanceSystem {
 public:
  BeliefAcasXuCas(std::shared_ptr<const acasx::LogicTable> table,
                  acasx::BeliefConfig belief = {}, acasx::OnlineConfig online = {},
                  UavPerformance perf = {}, TrackerConfig tracker = {});

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    logic_.reset();
    smoother_.reset();
  }
  std::string name() const override { return "ACAS-XU-belief"; }

  const acasx::BeliefAwareLogic& logic() const { return logic_; }

  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> table,
                            acasx::BeliefConfig belief = {}, acasx::OnlineConfig online = {},
                            UavPerformance perf = {}, TrackerConfig tracker = {});

 private:
  acasx::BeliefAwareLogic logic_;
  UavPerformance perf_;
  TrackSmoother smoother_;
};

}  // namespace cav::sim
