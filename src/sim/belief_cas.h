// Simulator plug-in for the belief-aware (QMDP-style) online logic.
// Identical plumbing to AcasXuCas — track smoothing, advisory-to-command
// mapping, per-threat cost interface for multi-threat fusion, optional
// joint-threat table — with the belief-averaged advisory selection inside.
// The joint query itself is answered at the point estimate (the belief
// quadrature covers the pairwise axes only; extending it to the joint
// state is future work).
#pragma once

#include <memory>

#include "acasx/belief_logic.h"
#include "acasx/joint_table.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class BeliefAcasXuCas final : public CollisionAvoidanceSystem {
 public:
  /// `joint` may be null: the system then declines the joint query and
  /// ThreatPolicy::kJointTable degrades to kCostFused behaviour.
  BeliefAcasXuCas(std::shared_ptr<const acasx::LogicTable> table,
                  acasx::BeliefConfig belief = {}, acasx::OnlineConfig online = {},
                  UavPerformance perf = {}, TrackerConfig tracker = {},
                  std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    logic_.reset();
    smoother_.reset();
    threat_smoothers_.clear();
  }
  std::string name() const override { return "ACAS-XU-belief"; }

  bool evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                      ThreatCosts* out) override;
  bool evaluate_joint_costs(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                            const ThreatObservation& secondary, ThreatCosts* out) override;
  CasDecision commit_fused(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                           acasx::Advisory fused) override;
  acasx::Advisory current_advisory() const override { return logic_.current_advisory(); }

  const acasx::BeliefAwareLogic& logic() const { return logic_; }

  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> table,
                            acasx::BeliefConfig belief = {}, acasx::OnlineConfig online = {},
                            UavPerformance perf = {}, TrackerConfig tracker = {},
                            std::shared_ptr<const acasx::JointLogicTable> joint = nullptr);

 private:
  CasDecision to_decision(acasx::Advisory advisory) const;

  acasx::BeliefAwareLogic logic_;
  std::shared_ptr<const acasx::JointLogicTable> joint_;
  UavPerformance perf_;
  TrackSmoother smoother_;
  ThreatSmootherBank threat_smoothers_;  ///< per-threat STM (fused mode)
};

}  // namespace cav::sim
