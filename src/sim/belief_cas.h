// Simulator plug-in for the belief-aware (QMDP-style) online logic.
// Identical plumbing to AcasXuCas — track smoothing, advisory-to-command
// mapping, per-threat cost interface for multi-threat fusion — with the
// belief-averaged advisory selection inside.
#pragma once

#include <memory>

#include "acasx/belief_logic.h"
#include "sim/cas.h"
#include "sim/tracker.h"
#include "sim/uav.h"

namespace cav::sim {

class BeliefAcasXuCas final : public CollisionAvoidanceSystem {
 public:
  BeliefAcasXuCas(std::shared_ptr<const acasx::LogicTable> table,
                  acasx::BeliefConfig belief = {}, acasx::OnlineConfig online = {},
                  UavPerformance perf = {}, TrackerConfig tracker = {});

  CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                     acasx::Sense forbidden_sense) override;
  void reset() override {
    logic_.reset();
    smoother_.reset();
    threat_smoothers_.clear();
  }
  std::string name() const override { return "ACAS-XU-belief"; }

  bool evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                      ThreatCosts* out) override;
  CasDecision commit_fused(const acasx::AircraftTrack& own, const ThreatObservation& primary,
                           acasx::Advisory fused) override;
  acasx::Advisory current_advisory() const override { return logic_.current_advisory(); }

  const acasx::BeliefAwareLogic& logic() const { return logic_; }

  static CasFactory factory(std::shared_ptr<const acasx::LogicTable> table,
                            acasx::BeliefConfig belief = {}, acasx::OnlineConfig online = {},
                            UavPerformance perf = {}, TrackerConfig tracker = {});

 private:
  CasDecision to_decision(acasx::Advisory advisory) const;

  acasx::BeliefAwareLogic logic_;
  UavPerformance perf_;
  TrackSmoother smoother_;
  ThreatSmootherBank threat_smoothers_;  ///< per-threat STM (fused mode)
};

}  // namespace cav::sim
