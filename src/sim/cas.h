// Collision-avoidance-system plug-in interface for the simulator.
//
// Each UAV carries one CollisionAvoidanceSystem instance per simulation run
// (systems are stateful: advisory memory, alert hysteresis).  Systems are
// produced by a CasFactory so that parallel fitness evaluations get
// independent instances while sharing immutable assets (the logic table).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "acasx/advisory.h"
#include "acasx/online_logic.h"

namespace cav::sim {

/// The decision a system hands back to its UAV each surveillance cycle.
/// Vertical and horizontal channels are independent: a system may command
/// either, both, or neither.
struct CasDecision {
  bool maneuver = false;            ///< false -> fly free vertically
  double target_vs_mps = 0.0;       ///< commanded vertical rate when maneuvering
  double accel_mps2 = 0.0;          ///< capture acceleration
  acasx::Sense sense = acasx::Sense::kNone;  ///< announced coordination sense
  bool turn = false;                ///< horizontal channel active
  double turn_rate_rad_s = 0.0;     ///< signed commanded turn rate (CCW +)
  std::string label = "COC";        ///< human-readable advisory name
};

class CollisionAvoidanceSystem {
 public:
  virtual ~CollisionAvoidanceSystem() = default;

  /// One surveillance cycle: own and intruder tracks (already noisy), and
  /// the coordination constraint announced by the intruder (kNone if no
  /// message was received).
  virtual CasDecision decide(const acasx::AircraftTrack& own,
                             const acasx::AircraftTrack& intruder,
                             acasx::Sense forbidden_sense) = 0;

  /// Clear internal state for a new encounter.
  virtual void reset() = 0;

  /// Identifier used in reports ("ACAS-XU", "TCAS-like", "SVO", "none").
  virtual std::string name() const = 0;
};

using CasFactory = std::function<std::unique_ptr<CollisionAvoidanceSystem>()>;

/// The unequipped aircraft: never maneuvers.  The Monte-Carlo baseline and
/// the "what would have happened" reference for false-alarm accounting.
class UnequippedCas final : public CollisionAvoidanceSystem {
 public:
  CasDecision decide(const acasx::AircraftTrack&, const acasx::AircraftTrack&,
                     acasx::Sense) override {
    return {};
  }
  void reset() override {}
  std::string name() const override { return "none"; }
};

}  // namespace cav::sim
