// Collision-avoidance-system plug-in interface for the simulator.
//
// Each UAV carries one CollisionAvoidanceSystem instance per simulation run
// (systems are stateful: advisory memory, alert hysteresis).  Systems are
// produced by a CasFactory so that parallel fitness evaluations get
// independent instances while sharing immutable assets (the logic table).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "acasx/advisory.h"
#include "acasx/online_logic.h"

namespace cav::sim {

/// The decision a system hands back to its UAV each surveillance cycle.
/// Vertical and horizontal channels are independent: a system may command
/// either, both, or neither.
struct CasDecision {
  bool maneuver = false;            ///< false -> fly free vertically
  double target_vs_mps = 0.0;       ///< commanded vertical rate when maneuvering
  double accel_mps2 = 0.0;          ///< capture acceleration
  acasx::Sense sense = acasx::Sense::kNone;  ///< announced coordination sense
  bool turn = false;                ///< horizontal channel active
  double turn_rate_rad_s = 0.0;     ///< signed commanded turn rate (CCW +)
  std::string label = "COC";        ///< human-readable advisory name
};

/// One gated threat as seen by the multi-threat arbitration layer
/// (sim/multi_threat.h): the track currently held for that aircraft, the
/// coordination constraint it last delivered on this link, and the range
/// the gate measured (so systems need not recompute it).
struct ThreatObservation {
  int aircraft_id = -1;
  acasx::AircraftTrack track;
  acasx::Sense forbidden_sense = acasx::Sense::kNone;
  double range_m = 0.0;
  /// Horizontal tau the gate measured (+inf when not converging); < 0
  /// means not yet computed (MultiThreatResolver::gate_and_sort fills it,
  /// and its consumers fall back to computing it on demand).
  double tau_s = -1.0;
  bool converging = false;
};

/// Per-advisory expected costs for one threat, evaluated at the system's
/// current advisory memory.  `active == false` means the threat is outside
/// the system's alerting envelope (non-converging, tau beyond the table
/// horizon): its costs carry no preference and must not vote.
struct ThreatCosts {
  bool active = false;
  std::array<double, acasx::kNumAdvisories> costs{};
};

class CollisionAvoidanceSystem {
 public:
  virtual ~CollisionAvoidanceSystem() = default;

  /// One surveillance cycle: own and intruder tracks (already noisy), and
  /// the coordination constraint announced by the intruder (kNone if no
  /// message was received).
  virtual CasDecision decide(const acasx::AircraftTrack& own,
                             const acasx::AircraftTrack& intruder,
                             acasx::Sense forbidden_sense) = 0;

  /// Clear internal state for a new encounter.
  virtual void reset() = 0;

  /// Identifier used in reports ("ACAS-XU", "TCAS-like", "SVO", "none").
  virtual std::string name() const = 0;

  // --- Optional multi-threat cost interface ---
  //     (ThreatPolicy::kCostFused and ThreatPolicy::kJointTable)
  //
  // Table-backed systems expose their per-threat Q-costs so the resolver
  // can sum them per candidate advisory across every gated threat.  The
  // protocol per decision cycle is: evaluate_costs() exactly once per
  // gated threat (it may advance per-threat tracker state); under
  // kJointTable at most one evaluate_joint_costs() for the two most
  // severe threats (it must NOT advance tracker state — it reads the
  // tracks evaluate_costs already smoothed this cycle); then exactly one
  // commit_fused() with the advisory the resolver selected.  Systems
  // that expose only a decision keep the defaults and are arbitrated by
  // the resolver's severity-ordered fallback instead.

  /// Per-threat costs at the current advisory memory.  Returns false when
  /// the system does not support cost-level arbitration.
  virtual bool evaluate_costs(const acasx::AircraftTrack& own, const ThreatObservation& threat,
                              ThreatCosts* out) {
    (void)own;
    (void)threat;
    (void)out;
    return false;
  }

  /// Joint two-threat costs (ThreatPolicy::kJointTable): per-advisory
  /// expected costs from a table solved over the JOINT state of both
  /// threats (acasx/joint_table.h), at the current advisory memory.
  /// Returns false when the system carries no joint table; `out->active`
  /// is false when either threat is outside the joint alerting envelope —
  /// the resolver then falls back to pairwise cost fusion.  Must only be
  /// called after evaluate_costs() was called for both threats this
  /// cycle, and must not advance per-threat tracker state.
  virtual bool evaluate_joint_costs(const acasx::AircraftTrack& own,
                                    const ThreatObservation& primary,
                                    const ThreatObservation& secondary, ThreatCosts* out) {
    (void)own;
    (void)primary;
    (void)secondary;
    (void)out;
    return false;
  }

  /// Commit the fused advisory chosen by the resolver: update advisory
  /// memory and translate it into the flown command.  `primary` is the
  /// most severe gated threat (for channels that still need a single
  /// reference track, e.g. the horizontal logic).  Only called on systems
  /// whose evaluate_costs returned true this cycle.
  virtual CasDecision commit_fused(const acasx::AircraftTrack& own,
                                   const ThreatObservation& primary, acasx::Advisory fused) {
    (void)own;
    (void)primary;
    (void)fused;
    return {};
  }

  /// Advisory memory the fused selection tie-breaks against (kCoc for
  /// memoryless systems).
  virtual acasx::Advisory current_advisory() const { return acasx::Advisory::kCoc; }
};

using CasFactory = std::function<std::unique_ptr<CollisionAvoidanceSystem>()>;

/// The unequipped aircraft: never maneuvers.  The Monte-Carlo baseline and
/// the "what would have happened" reference for false-alarm accounting.
class UnequippedCas final : public CollisionAvoidanceSystem {
 public:
  CasDecision decide(const acasx::AircraftTrack&, const acasx::AircraftTrack&,
                     acasx::Sense) override {
    return {};
  }
  void reset() override {}
  std::string name() const override { return "none"; }
};

}  // namespace cav::sim
