#include "sim/tracker.h"

namespace cav::sim {

acasx::AircraftTrack TrackSmoother::update(const acasx::AircraftTrack& measurement) {
  if (!config_.enabled) return measurement;
  if (!initialized_) {
    state_ = measurement;
    initialized_ = true;
    return state_;
  }

  const double dt = config_.dt_s;
  const double a = config_.position_alpha;
  const double b = config_.velocity_beta;

  // Predict with the previous velocity estimate, then blend.
  const Vec3 predicted_pos = state_.position_m + state_.velocity_mps * dt;
  state_.velocity_mps = measurement.velocity_mps * b + state_.velocity_mps * (1.0 - b);
  state_.position_m = measurement.position_m * a + predicted_pos * (1.0 - a);
  return state_;
}

}  // namespace cav::sim
