// A TCAS-II-like legacy collision avoidance baseline.
//
// The paper's motivation (§I-§II) contrasts ACAS X's optimized logic with
// the original TCAS: "very complex pseudocode with many heuristic rules and
// parameter settings whose justification has been lost", and cites reports
// showing the optimized logic "can outperform TCAS in term of safety and
// false alarm rate".  This module provides a faithful *structural* stand-in
// for that comparator: fixed tau thresholds, ZTHR/ALIM altitude tests,
// sense selection by projected separation, strengthening — hand-crafted
// heuristics, no optimization.  (TCAS II v7.1 pseudocode itself is not
// public; see DESIGN.md substitutions.)
#pragma once

#include "sim/cas.h"
#include "sim/uav.h"

namespace cav::baselines {

struct TcasConfig {
  double ta_tau_s = 40.0;       ///< traffic advisory threshold (unused for maneuvers)
  double ra_tau_s = 25.0;       ///< resolution advisory threshold
  double dmod_ft = 500.0;       ///< range floor in the tau computation
  double zthr_ft = 450.0;       ///< vertical threshold for declaring a conflict
  double alim_ft = 300.0;       ///< required separation at CPA; else strengthen
  double initial_rate_fpm = 1500.0;
  double strength_rate_fpm = 2500.0;
  double min_closure_fps = 1.0; ///< same structural blind spot as the tau logic
  double clear_hysteresis_s = 5.0;  ///< keep the RA this long after the conflict clears
};

/// Decision-only system: it exposes no per-threat cost interface, so under
/// ThreatPolicy::kCostFused the resolver arbitrates it via the
/// severity-ordered fallback with the blocking-set veto (multi_threat.h).
class TcasLikeCas final : public sim::CollisionAvoidanceSystem {
 public:
  explicit TcasLikeCas(const TcasConfig& config = {}, sim::UavPerformance perf = {});

  sim::CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                          acasx::Sense forbidden_sense) override;
  void reset() override;
  std::string name() const override { return "TCAS-like"; }

  static sim::CasFactory factory(const TcasConfig& config = {}, sim::UavPerformance perf = {});

 private:
  TcasConfig config_;
  sim::UavPerformance perf_;
  acasx::Sense active_sense_ = acasx::Sense::kNone;
  bool strengthened_ = false;
  bool ra_active_ = false;
  double clear_timer_s_ = 0.0;  ///< decision cycles (s) since the conflict cleared
};

}  // namespace cav::baselines
