#include "baselines/svo.h"

#include <algorithm>
#include <cmath>

#include "util/angles.h"

namespace cav::baselines {

SvoCas::SvoCas(const SvoConfig& config, sim::UavPerformance perf)
    : config_(config), perf_(perf) {}

void SvoCas::reset() {
  avoiding_ = false;
  active_sense_ = acasx::Sense::kNone;
  clear_timer_s_ = 0.0;
}

SvoCas::Conflict SvoCas::predict_conflict(const acasx::AircraftTrack& own,
                                          const acasx::AircraftTrack& intruder,
                                          const SvoConfig& config) {
  Conflict c;
  const Vec3 d = intruder.position_m - own.position_m;
  const Vec3 v = intruder.velocity_mps - own.velocity_mps;

  const double v2 = v.norm_sq();
  if (v2 < 1e-9) {
    // No relative motion: conflict iff already inside the protected volume.
    c.t_cpa_s = 0.0;
    c.miss_horizontal_m = d.horizontal_norm();
    c.miss_vertical_m = d.z;
    c.predicted = c.miss_horizontal_m < config.protected_radius_m &&
                  std::abs(c.miss_vertical_m) < config.protected_height_m;
    return c;
  }

  // First-order CPA of the relative trajectory d + v t.
  const double t_star = std::clamp(-d.dot(v) / v2, 0.0, config.lookahead_s);
  const Vec3 miss = d + v * t_star;
  c.t_cpa_s = t_star;
  c.miss_horizontal_m = miss.horizontal_norm();
  c.miss_vertical_m = miss.z;
  c.predicted = c.miss_horizontal_m < config.protected_radius_m &&
                std::abs(c.miss_vertical_m) < config.protected_height_m;
  return c;
}

bool SvoCas::must_give_way(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                           const SvoConfig& config) {
  const double own_course = std::atan2(own.velocity_mps.y, own.velocity_mps.x);
  const double int_course = std::atan2(intruder.velocity_mps.y, intruder.velocity_mps.x);
  const double course_diff = angle_diff(int_course, own_course);

  const Vec3 d = intruder.position_m - own.position_m;
  const double bearing_to_int = std::atan2(d.y, d.x);
  const double relative_bearing = angle_diff(bearing_to_int, own_course);

  // Head-on: reciprocal courses, intruder roughly ahead — both give way.
  if (std::abs(relative_bearing) <= config.head_on_half_angle_rad &&
      std::abs(std::abs(course_diff) - kPi) <= 2.0 * config.head_on_half_angle_rad) {
    return true;
  }
  // Overtaking: similar courses and the intruder ahead and slower — the
  // overtaking (own) aircraft gives way.
  const double own_speed = std::hypot(own.velocity_mps.x, own.velocity_mps.y);
  const double int_speed = std::hypot(intruder.velocity_mps.x, intruder.velocity_mps.y);
  if (std::abs(course_diff) <= config.overtake_course_diff_rad &&
      std::abs(relative_bearing) < kPi / 2.0 && own_speed > int_speed) {
    return true;
  }
  // Crossing: the aircraft that has the other on its right gives way.
  // With the mathematical bearing convention (+CCW), "on the right" is a
  // negative relative bearing.
  if (relative_bearing < 0.0 && relative_bearing > -2.0) {
    return true;
  }
  return false;
}

sim::CasDecision SvoCas::decide(const acasx::AircraftTrack& own,
                                const acasx::AircraftTrack& intruder,
                                acasx::Sense forbidden_sense) {
  const Conflict conflict = predict_conflict(own, intruder, config_);
  const bool responsible = must_give_way(own, intruder, config_);

  if (conflict.predicted && responsible) {
    avoiding_ = true;
    clear_timer_s_ = 0.0;
  } else if (avoiding_) {
    clear_timer_s_ += 1.0;
    if (clear_timer_s_ >= config_.clear_hysteresis_s) {
      avoiding_ = false;
      active_sense_ = acasx::Sense::kNone;
    }
  }

  sim::CasDecision decision;
  if (!avoiding_) {
    decision.label = "COC";
    return decision;
  }

  // Resolution: push the predicted vertical miss out of the protected
  // volume.  Prefer the sense the geometry already favours (keep the
  // intruder on the side it will already be on), subject to coordination.
  if (active_sense_ == acasx::Sense::kNone) {
    acasx::Sense preferred =
        conflict.miss_vertical_m >= 0.0 ? acasx::Sense::kDescend : acasx::Sense::kClimb;
    if (preferred == forbidden_sense) {
      preferred = (preferred == acasx::Sense::kClimb) ? acasx::Sense::kDescend
                                                      : acasx::Sense::kClimb;
    }
    active_sense_ = preferred;
  }

  // Required own vertical rate so that |miss_z(CPA)| reaches the margin:
  //   miss_z = dz + (vz_int - vz_own_cmd) * t  =>  solve for vz_own_cmd.
  const double target_sep = config_.resolution_margin * config_.protected_height_m;
  const double t = std::max(conflict.t_cpa_s, 1.0);
  const double dz = intruder.position_m.z - own.position_m.z;
  const double vz_int = intruder.velocity_mps.z;
  const double desired_miss = (active_sense_ == acasx::Sense::kDescend) ? +target_sep : -target_sep;
  double vz_cmd = vz_int + (dz - desired_miss) / t;
  // The geometric solution can have the opposite sign of the announced
  // sense (e.g. a fast-descending intruder may only require a gentler
  // descent), but the coordination sense must mean what it says: a climb
  // resolution never commands descent and vice versa (level-off floor).
  if (active_sense_ == acasx::Sense::kClimb) {
    vz_cmd = std::max(vz_cmd, 0.0);
  } else {
    vz_cmd = std::min(vz_cmd, 0.0);
  }
  vz_cmd = std::clamp(vz_cmd, -config_.max_rate_mps, config_.max_rate_mps);
  vz_cmd = std::clamp(vz_cmd, -perf_.max_vertical_speed_mps, perf_.max_vertical_speed_mps);

  decision.maneuver = true;
  decision.sense = active_sense_;
  decision.target_vs_mps = vz_cmd;
  decision.accel_mps2 = perf_.accel_initial_mps2;
  decision.label = active_sense_ == acasx::Sense::kClimb ? "SVO-CL" : "SVO-DES";
  return decision;
}

sim::CasFactory SvoCas::factory(const SvoConfig& config, sim::UavPerformance perf) {
  return [config, perf]() -> std::unique_ptr<sim::CollisionAvoidanceSystem> {
    return std::make_unique<SvoCas>(config, perf);
  };
}

}  // namespace cav::baselines
