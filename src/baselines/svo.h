// Selective Velocity Obstacle (SVO) baseline — the algorithm the authors'
// earlier work [7] applied the same GA-search validation to, due to
// Jenie et al. [8]: a cooperative velocity-obstacle avoidance scheme whose
// "selectivity" encodes right-of-way rules, so an aircraft only gives way
// when the rules require it.
//
// Adaptation note (see DESIGN.md): Jenie's SVO resolves conflicts in the
// horizontal plane; our simulator's maneuver channel is vertical (matching
// ACAS XU), so this implementation keeps SVO's conflict-detection geometry
// (first-order CPA / collision-cone test) and selectivity rules, but
// resolves by choosing a vertical rate that restores the protected volume
// at the predicted CPA.  The validation framework treats it as just
// another CollisionAvoidanceSystem.
#pragma once

#include "sim/cas.h"
#include "sim/uav.h"

namespace cav::baselines {

struct SvoConfig {
  double protected_radius_m = 150.0;   ///< horizontal protected zone
  double protected_height_m = 60.0;    ///< vertical protected zone half-height
  double lookahead_s = 60.0;           ///< ignore conflicts further out than this
  double resolution_margin = 1.25;     ///< aim for margin * protected_height
  double max_rate_mps = 5.0;           ///< commanded vertical-rate magnitude cap
  double head_on_half_angle_rad = 0.26;      ///< ~15 deg
  double overtake_course_diff_rad = 0.52;    ///< ~30 deg
  double clear_hysteresis_s = 5.0;
};

/// Decision-only system: like TcasLikeCas it exposes no per-threat cost
/// interface, so ThreatPolicy::kCostFused arbitrates it through the
/// resolver's severity-ordered fallback with the blocking-set veto.
class SvoCas final : public sim::CollisionAvoidanceSystem {
 public:
  explicit SvoCas(const SvoConfig& config = {}, sim::UavPerformance perf = {});

  sim::CasDecision decide(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                          acasx::Sense forbidden_sense) override;
  void reset() override;
  std::string name() const override { return "SVO"; }

  static sim::CasFactory factory(const SvoConfig& config = {}, sim::UavPerformance perf = {});

  /// Conflict geometry, exposed for tests.
  struct Conflict {
    bool predicted = false;    ///< protected volume violated at CPA
    double t_cpa_s = 0.0;
    double miss_horizontal_m = 0.0;
    double miss_vertical_m = 0.0;  ///< signed: intruder above own at CPA
  };
  static Conflict predict_conflict(const acasx::AircraftTrack& own,
                                   const acasx::AircraftTrack& intruder, const SvoConfig& config);

  /// Right-of-way selectivity: must the own-ship give way in this geometry?
  static bool must_give_way(const acasx::AircraftTrack& own, const acasx::AircraftTrack& intruder,
                            const SvoConfig& config);

 private:
  SvoConfig config_;
  sim::UavPerformance perf_;
  bool avoiding_ = false;
  acasx::Sense active_sense_ = acasx::Sense::kNone;
  double clear_timer_s_ = 0.0;
};

}  // namespace cav::baselines
