#include "baselines/tcas_like.h"

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace cav::baselines {
namespace {

/// Projected vertical separation (ft) after tau seconds if the own-ship
/// flies at `own_vs_fps`.
double projected_separation_ft(double h_ft, double own_vs_fps, double int_vs_fps, double tau_s) {
  return std::abs(h_ft + (int_vs_fps - own_vs_fps) * tau_s);
}

}  // namespace

TcasLikeCas::TcasLikeCas(const TcasConfig& config, sim::UavPerformance perf)
    : config_(config), perf_(perf) {}

void TcasLikeCas::reset() {
  active_sense_ = acasx::Sense::kNone;
  strengthened_ = false;
  ra_active_ = false;
  clear_timer_s_ = 0.0;
}

sim::CasDecision TcasLikeCas::decide(const acasx::AircraftTrack& own,
                                     const acasx::AircraftTrack& intruder,
                                     acasx::Sense forbidden_sense) {
  acasx::OnlineConfig tau_config;
  tau_config.dmod_ft = config_.dmod_ft;
  tau_config.min_closure_fps = config_.min_closure_fps;
  const acasx::TauEstimate tau = acasx::AcasXuLogic::estimate_tau(own, intruder, tau_config);

  const double h_ft = units::m_to_ft(intruder.position_m.z - own.position_m.z);
  const double own_vs_fps = units::m_to_ft(own.velocity_mps.z);
  const double int_vs_fps = units::m_to_ft(intruder.velocity_mps.z);

  // Conflict test: converging within the RA tau threshold AND the vertical
  // geometry threatens the ZTHR band at CPA (or is already inside it).
  const bool tau_hit = tau.converging && tau.tau_s <= config_.ra_tau_s;
  const double current_sep = std::abs(h_ft);
  const double cpa_sep = projected_separation_ft(h_ft, own_vs_fps, int_vs_fps,
                                                 std::max(tau.tau_s, 0.0));
  const bool vertical_hit = std::min(current_sep, cpa_sep) <= config_.zthr_ft;
  const bool conflict = tau_hit && vertical_hit;

  if (conflict) {
    ra_active_ = true;
    clear_timer_s_ = 0.0;
  } else if (ra_active_) {
    clear_timer_s_ += 1.0;  // called once per decision cycle (1 s)
    if (clear_timer_s_ >= config_.clear_hysteresis_s) {
      ra_active_ = false;
      active_sense_ = acasx::Sense::kNone;
      strengthened_ = false;
    }
  }

  sim::CasDecision decision;
  if (!ra_active_) {
    decision.label = "COC";
    return decision;
  }

  // Sense selection on first activation: model both maneuvers at the
  // initial rate and keep the one with more separation at CPA, honouring
  // the coordination constraint.
  if (active_sense_ == acasx::Sense::kNone) {
    const double climb_fps = config_.initial_rate_fpm / 60.0;
    const double sep_climb = projected_separation_ft(h_ft, +climb_fps, int_vs_fps, tau.tau_s);
    const double sep_descend = projected_separation_ft(h_ft, -climb_fps, int_vs_fps, tau.tau_s);
    acasx::Sense preferred =
        sep_climb >= sep_descend ? acasx::Sense::kClimb : acasx::Sense::kDescend;
    if (preferred == forbidden_sense) {
      preferred = (preferred == acasx::Sense::kClimb) ? acasx::Sense::kDescend
                                                      : acasx::Sense::kClimb;
    }
    active_sense_ = preferred;
    strengthened_ = false;
  }

  // Strengthen when the current maneuver will not achieve ALIM by CPA.
  const double rate_fpm = strengthened_ ? config_.strength_rate_fpm : config_.initial_rate_fpm;
  const double signed_rate_fps =
      (active_sense_ == acasx::Sense::kClimb ? +1.0 : -1.0) * rate_fpm / 60.0;
  if (!strengthened_ &&
      projected_separation_ft(h_ft, signed_rate_fps, int_vs_fps, tau.tau_s) < config_.alim_ft) {
    strengthened_ = true;
  }

  const double final_rate_fpm =
      (strengthened_ ? config_.strength_rate_fpm : config_.initial_rate_fpm) *
      (active_sense_ == acasx::Sense::kClimb ? +1.0 : -1.0);

  decision.maneuver = true;
  decision.sense = active_sense_;
  decision.target_vs_mps = units::fpm_to_mps(final_rate_fpm);
  decision.accel_mps2 = strengthened_ ? perf_.accel_strength_mps2 : perf_.accel_initial_mps2;
  decision.label = std::string(active_sense_ == acasx::Sense::kClimb ? "CL" : "DES") +
                   (strengthened_ ? "2500" : "1500");
  return decision;
}

sim::CasFactory TcasLikeCas::factory(const TcasConfig& config, sim::UavPerformance perf) {
  return [config, perf]() -> std::unique_ptr<sim::CollisionAvoidanceSystem> {
    return std::make_unique<TcasLikeCas>(config, perf);
  };
}

}  // namespace cav::baselines
