// Generic finite Markov Decision Process interface.
//
// The paper (§II-§III) frames collision-avoidance logic generation as: build
// an MDP over encounter states with a cost ("punishment") model, then let
// dynamic programming compute the optimal policy — "the difficult task of
// optimizing the logic can then be left for computers".  This module is the
// reusable DP machinery; concrete models (toy2d, acasx) implement the
// FiniteMdp interface or, for the large tau-layered ACAS model, a
// specialized backward-induction solver built on the same conventions.
//
// Convention: we MINIMIZE expected discounted COST, matching the paper's
// punishment framing (collision = +10000, maneuver = +100, level-off = -50).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cav::mdp {

using State = std::uint32_t;
using Action = std::uint16_t;

/// One entry of a sparse transition distribution.
struct Transition {
  State next;
  double prob;
};

/// A finite MDP with dense state/action index spaces.
///
/// Terminal states absorb: solvers never expand their transitions and fix
/// their value to terminal_cost().
class FiniteMdp {
 public:
  virtual ~FiniteMdp() = default;

  virtual std::size_t num_states() const = 0;
  virtual std::size_t num_actions() const = 0;

  /// Immediate cost of taking `a` in `s` (before the transition resolves).
  virtual double cost(State s, Action a) const = 0;

  /// Append the transition distribution for (s, a) to `out` (cleared by the
  /// caller).  Probabilities must sum to 1 within numerical tolerance.
  virtual void transitions(State s, Action a, std::vector<Transition>& out) const = 0;

  /// True for absorbing states whose value equals terminal_cost(s).
  virtual bool is_terminal(State s) const = 0;

  /// Value assigned to a terminal state (0 by default).
  virtual double terminal_cost(State) const { return 0.0; }
};

/// A deterministic policy: one action per state (meaningless at terminals).
using Policy = std::vector<Action>;

/// State-value vector, one expected cost per state.
using Values = std::vector<double>;

/// Dense Q table indexed q[s * num_actions + a].
struct QTable {
  std::size_t num_actions = 0;
  std::vector<double> q;

  double at(State s, Action a) const { return q[static_cast<std::size_t>(s) * num_actions + a]; }
  double& at(State s, Action a) { return q[static_cast<std::size_t>(s) * num_actions + a]; }
};

/// Extract the greedy (cost-minimizing) policy from a Q table.
///
/// Tie-breaking is deterministic: among equal-cost actions the LOWEST
/// action index wins.  Every solver (virtual or compiled, serial or
/// parallel) funnels through this rule, so logic tables are reproducible
/// bit-for-bit across runs and thread counts.
Policy greedy_policy(const QTable& table, std::size_t num_states);

/// Expected cost of (s, a): cost(s,a) + discount * sum_s' p * V(s').
double backup(const FiniteMdp& mdp, State s, Action a, const Values& values, double discount,
              std::vector<Transition>& scratch);

}  // namespace cav::mdp
