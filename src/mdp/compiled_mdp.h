// Compiled-kernel representation of a FiniteMdp.
//
// The virtual FiniteMdp interface is convenient for model authors but
// expensive for solvers: every Bellman backup re-expands the (s, a)
// transition distribution through two virtual calls and a heap-backed
// scratch vector, on every sweep.  CompiledMdp pays that expansion cost
// ONCE, flattening the whole model into contiguous arrays:
//
//   * a CSR sparse matrix over (s, a) rows — row_offsets / next_state /
//     prob — holding every transition entry back to back,
//   * a dense per-(s, a) cost table,
//   * a terminal mask and terminal-value vector,
//   * on first use, the transpose of the CSR graph — pred_offsets /
//     pred_state — listing each state's (deduplicated) predecessor states,
//     which drives the prioritized-sweeping solver's residual propagation.
//
// Sweeps then reduce to branch-free streaming over flat arrays, which is
// both cache-friendly and safely shareable across threads (the compiled
// model is immutable after construction, except for the explicit
// refresh_costs() revision hook below).  The solvers in value_iteration.h /
// policy_iteration.h run on this kernel by default and keep the
// virtual-dispatch path only as a cross-check reference.
//
// Transition entries preserve the order in which FiniteMdp::transitions()
// emitted them, so compiled backups accumulate in the same floating-point
// order as the virtual path and produce bit-identical values.
//
// Value layers are templated on the scalar type: the default solvers sweep
// double layers; solve_value_iteration_f32 sweeps float layers for
// bandwidth-bound models (matching the float storage the ACAS tau layers
// already use).  Probabilities, costs, and accumulation stay double in both
// modes — only the value reads/writes narrow.
//
// Model-revision loops that re-tune costs while keeping the transition
// structure (the paper's Fig. 1 "manual model revision" edge re-weights
// punishments, not dynamics) call refresh_costs() instead of re-flattening:
// the CSR arrays, terminal mask, and transpose all stay valid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "mdp/mdp.h"

namespace cav::mdp {

class CompiledMdp {
 public:
  /// Expand `mdp` into flat arrays.  Validates that every non-terminal
  /// (s, a) row's probabilities sum to 1 within 1e-6 (the FiniteMdp
  /// contract) and that every successor index is in range.
  explicit CompiledMdp(const FiniteMdp& mdp);

  /// Re-read the costs and terminal costs of `mdp` into the existing
  /// compiled structure — a cost-only model revision.  The transition
  /// structure (CSR arrays, terminal mask, transpose) is reused untouched,
  /// so revision loops skip the expensive re-flatten.  Validates that the
  /// state/action counts and the terminal mask match the compiled model;
  /// the caller guarantees the transition DISTRIBUTIONS are unchanged
  /// (they are not re-read).
  void refresh_costs(const FiniteMdp& mdp);

  std::size_t num_states() const { return num_states_; }
  std::size_t num_actions() const { return num_actions_; }

  bool is_terminal(State s) const { return terminal_[s] != 0; }
  double terminal_cost(State s) const { return terminal_cost_[s]; }

  /// Immediate cost of (s, a).
  double cost(State s, Action a) const { return cost_[row(s, a)]; }

  /// CSR row for (s, a): entries [row_offsets[r], row_offsets[r + 1]).
  /// Terminal states have empty rows (solvers never expand them).
  std::size_t row(State s, Action a) const {
    return static_cast<std::size_t>(s) * num_actions_ + a;
  }
  const std::vector<std::size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<State>& next_state() const { return next_state_; }
  const std::vector<double>& prob() const { return prob_; }

  /// Reverse graph (CSR transpose at state granularity): the predecessors
  /// of state s — every state with a transition into s under some action,
  /// duplicates removed — are pred_state[pred_offsets[s] ..
  /// pred_offsets[s + 1]).  Built lazily (thread-safely) on first access,
  /// so solvers that never propagate residuals upstream pay nothing;
  /// refresh_costs keeps it valid.  Prioritized sweeping walks it to push
  /// Bellman residual bounds to predecessors.
  const std::vector<std::size_t>& pred_offsets() const {
    std::call_once(reverse_once_, [this] { build_reverse_graph(); });
    return pred_offsets_;
  }
  const std::vector<State>& pred_state() const {
    std::call_once(reverse_once_, [this] { build_reverse_graph(); });
    return pred_state_;
  }

  /// Expected cost of (s, a): cost + discount * sum_s' p * V(s').  The
  /// compiled analogue of mdp::backup (no virtual calls, no scratch).
  /// Value layers may be float or double; accumulation is always double,
  /// so the double instantiation is bit-identical to the virtual path.
  template <typename V>
  double backup(State s, Action a, const std::vector<V>& values, double discount) const {
    const std::size_t r = row(s, a);
    double expected = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      expected += prob_[k] * static_cast<double>(values[next_state_[k]]);
    }
    return cost_[r] + discount * expected;
  }

  /// Full Bellman update for one state: writes the Q row, returns the
  /// minimum (ties keep the lowest action, matching greedy_policy).
  template <typename V>
  double bellman_update(State s, const std::vector<V>& values, double discount, QTable& q) const {
    double best = kInfinity;
    for (std::size_t a = 0; a < num_actions_; ++a) {
      const double qa = backup(s, static_cast<Action>(a), values, discount);
      q.at(s, static_cast<Action>(a)) = qa;
      if (qa < best) best = qa;
    }
    return best;
  }

  /// Minimum expected cost over actions without recording Q.
  template <typename V>
  double bellman_min(State s, const std::vector<V>& values, double discount) const {
    double best = kInfinity;
    for (std::size_t a = 0; a < num_actions_; ++a) {
      const double qa = backup(s, static_cast<Action>(a), values, discount);
      if (qa < best) best = qa;
    }
    return best;
  }

  /// Total stored transition entries (diagnostics / benches).
  std::size_t num_entries() const { return next_state_.size(); }

 private:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  void build_reverse_graph() const;

  std::size_t num_states_ = 0;
  std::size_t num_actions_ = 0;
  std::vector<std::size_t> row_offsets_;  ///< num_states * num_actions + 1
  std::vector<State> next_state_;
  std::vector<double> prob_;
  std::vector<double> cost_;             ///< dense, row-indexed
  std::vector<std::uint8_t> terminal_;   ///< dense mask
  std::vector<double> terminal_cost_;    ///< dense, 0 for non-terminals
  // Lazily built transpose (the once_flag makes CompiledMdp non-movable;
  // share compiled models by reference or shared_ptr instead).
  mutable std::once_flag reverse_once_;
  mutable std::vector<std::size_t> pred_offsets_;  ///< num_states + 1
  mutable std::vector<State> pred_state_;          ///< unique predecessors per state
};

}  // namespace cav::mdp
