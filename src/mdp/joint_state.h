// Joint-state indexing for product state spaces.
//
// Solving an MDP over the *joint* state of several interacting factors
// (the ACAS joint-threat table: primary-threat grid x secondary-threat
// abstraction; a sharded CompiledMdp: shard x local state) needs one
// canonical convention for flattening the product into the contiguous
// value arrays every compiled sweep kernel (compiled_mdp.h, the ACAS
// stencil solver) iterates.  This header is that convention: a mixed-radix
// row-major indexer, factor 0 slowest — so fixing the leading factors
// always yields one contiguous slab, which is what slab-wise solvers
// (independent sub-MDPs per abstract factor, as in the joint-threat
// table, where the secondary's (delta, sense) never changes mid-episode)
// sweep without scatter.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace cav::mdp {

/// Row-major mixed-radix indexer over a product of discrete factors.
/// Factor 0 varies slowest; the last factor is contiguous.
class JointStateIndexer {
 public:
  JointStateIndexer() = default;

  /// `sizes[d]` is the cardinality of factor d; every size must be >= 1.
  explicit JointStateIndexer(std::vector<std::size_t> sizes) : sizes_(std::move(sizes)) {
    if (sizes_.empty()) throw std::invalid_argument("JointStateIndexer needs >= 1 factor");
    strides_.assign(sizes_.size(), 1);
    for (std::size_t d = sizes_.size(); d-- > 0;) {
      if (sizes_[d] == 0) throw std::invalid_argument("JointStateIndexer factor of size 0");
      if (d + 1 < sizes_.size()) strides_[d] = strides_[d + 1] * sizes_[d + 1];
    }
    size_ = strides_[0] * sizes_[0];
  }

  std::size_t rank() const { return sizes_.size(); }
  std::size_t factor_size(std::size_t d) const { return sizes_[d]; }
  /// Flat indices of states that share factor d differ by a multiple of
  /// this unless a slower factor also changed.
  std::size_t stride(std::size_t d) const { return strides_[d]; }
  /// Total number of joint states (product of the factor sizes).
  std::size_t size() const { return size_; }

  /// Flat joint index of per-factor indices (unchecked for speed; every
  /// idx[d] must be < factor_size(d)).
  std::size_t flat(const std::vector<std::size_t>& idx) const {
    std::size_t f = 0;
    for (std::size_t d = 0; d < sizes_.size(); ++d) f += idx[d] * strides_[d];
    return f;
  }

  /// Inverse of flat().
  std::vector<std::size_t> unflatten(std::size_t flat_index) const {
    std::vector<std::size_t> idx(sizes_.size());
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      idx[d] = flat_index / strides_[d];
      flat_index %= strides_[d];
    }
    return idx;
  }

  /// Flat index of the first state of the slab that fixes factor 0 at
  /// `leading`; the slab spans [slab_begin, slab_begin + stride(0)).
  std::size_t slab_begin(std::size_t leading) const { return leading * strides_[0]; }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> strides_;
  std::size_t size_ = 0;
};

}  // namespace cav::mdp
