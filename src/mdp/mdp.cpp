#include "mdp/mdp.h"

#include <limits>

namespace cav::mdp {

Policy greedy_policy(const QTable& table, std::size_t num_states) {
  Policy policy(num_states, 0);
  for (std::size_t s = 0; s < num_states; ++s) {
    double best = std::numeric_limits<double>::infinity();
    Action best_a = 0;
    for (std::size_t a = 0; a < table.num_actions; ++a) {
      const double q = table.q[s * table.num_actions + a];
      // Strict < keeps the lowest action index on ties (documented contract).
      if (q < best) {
        best = q;
        best_a = static_cast<Action>(a);
      }
    }
    policy[s] = best_a;
  }
  return policy;
}

double backup(const FiniteMdp& mdp, State s, Action a, const Values& values, double discount,
              std::vector<Transition>& scratch) {
  scratch.clear();
  mdp.transitions(s, a, scratch);
  double expected = 0.0;
  for (const Transition& t : scratch) expected += t.prob * values[t.next];
  return mdp.cost(s, a) + discount * expected;
}

}  // namespace cav::mdp
