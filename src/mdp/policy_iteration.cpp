#include "mdp/policy_iteration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace cav::mdp {
namespace {

void evaluate_policy(const FiniteMdp& mdp, const Policy& policy, Values& values,
                     const PolicyIterationConfig& config, std::vector<Transition>& scratch) {
  const std::size_t ns = mdp.num_states();
  for (std::size_t sweep = 0; sweep < config.max_eval_sweeps; ++sweep) {
    double residual = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) continue;
      const double v = backup(mdp, state, policy[s], values, config.discount, scratch);
      residual = std::max(residual, std::abs(v - values[s]));
      values[s] = v;
    }
    if (residual <= config.eval_tolerance) break;
  }
}

}  // namespace

PolicyIterationResult solve_policy_iteration(const FiniteMdp& mdp,
                                             const PolicyIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");

  PolicyIterationResult result;
  result.policy.assign(ns, 0);
  result.values.assign(ns, 0.0);
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      result.values[s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);

  for (std::size_t round = 0; round < config.max_policy_updates; ++round) {
    evaluate_policy(mdp, result.policy, result.values, config, scratch);

    bool stable = true;
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) continue;
      double best = std::numeric_limits<double>::infinity();
      Action best_a = result.policy[s];
      for (std::size_t a = 0; a < na; ++a) {
        const double q = backup(mdp, state, static_cast<Action>(a), result.values, config.discount, scratch);
        if (q < best - 1e-12) {
          best = q;
          best_a = static_cast<Action>(a);
        }
      }
      if (best_a != result.policy[s]) {
        result.policy[s] = best_a;
        stable = false;
      }
    }
    result.policy_updates = round + 1;
    if (stable) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace cav::mdp
