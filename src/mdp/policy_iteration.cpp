#include "mdp/policy_iteration.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace cav::mdp {
namespace {

void evaluate_policy_virtual(const FiniteMdp& mdp, const Policy& policy, Values& values,
                             const PolicyIterationConfig& config,
                             std::vector<Transition>& scratch) {
  const std::size_t ns = mdp.num_states();
  for (std::size_t sweep = 0; sweep < config.max_eval_sweeps; ++sweep) {
    double residual = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) continue;
      const double v = backup(mdp, state, policy[s], values, config.discount, scratch);
      residual = std::max(residual, std::abs(v - values[s]));
      values[s] = v;
    }
    if (residual <= config.eval_tolerance) break;
  }
}

/// Reference implementation kept verbatim from before the compiled-kernel
/// refactor (serial, virtual dispatch); the compiled path is checked
/// against it in tests.
PolicyIterationResult solve_virtual(const FiniteMdp& mdp, const PolicyIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();

  PolicyIterationResult result;
  result.policy.assign(ns, 0);
  result.values.assign(ns, 0.0);
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      result.values[s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);

  for (std::size_t round = 0; round < config.max_policy_updates; ++round) {
    evaluate_policy_virtual(mdp, result.policy, result.values, config, scratch);

    bool stable = true;
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) continue;
      double best = std::numeric_limits<double>::infinity();
      Action best_a = result.policy[s];
      for (std::size_t a = 0; a < na; ++a) {
        const double q =
            backup(mdp, state, static_cast<Action>(a), result.values, config.discount, scratch);
        if (q < best - 1e-12) {
          best = q;
          best_a = static_cast<Action>(a);
        }
      }
      if (best_a != result.policy[s]) {
        result.policy[s] = best_a;
        stable = false;
      }
    }
    result.policy_updates = round + 1;
    if (stable) {
      result.converged = true;
      break;
    }
  }
  return result;
}

void evaluate_policy_compiled(const CompiledMdp& mdp, const Policy& policy, Values& values,
                              const PolicyIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  for (std::size_t sweep = 0; sweep < config.max_eval_sweeps; ++sweep) {
    double residual = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) continue;
      const double v = mdp.backup(state, policy[s], values, config.discount);
      residual = std::max(residual, std::abs(v - values[s]));
      values[s] = v;
    }
    if (residual <= config.eval_tolerance) break;
  }
}

}  // namespace

PolicyIterationResult solve_policy_iteration(const CompiledMdp& mdp,
                                             const PolicyIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");

  PolicyIterationResult result;
  result.policy.assign(ns, 0);
  result.values.assign(ns, 0.0);
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      result.values[s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  for (std::size_t round = 0; round < config.max_policy_updates; ++round) {
    evaluate_policy_compiled(mdp, result.policy, result.values, config);

    // Improvement only reads `values` and writes policy[s] for its own s,
    // so states are independent; the keep-current-on-near-tie rule (strict
    // improvement by more than 1e-12) is per-state and thread-agnostic.
    std::atomic<bool> stable{true};
    const auto improve_range = [&](std::size_t begin, std::size_t end) {
      bool local_stable = true;
      for (std::size_t s = begin; s < end; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        double best = std::numeric_limits<double>::infinity();
        Action best_a = result.policy[s];
        for (std::size_t a = 0; a < na; ++a) {
          const double q = mdp.backup(state, static_cast<Action>(a), result.values,
                                      config.discount);
          if (q < best - 1e-12) {
            best = q;
            best_a = static_cast<Action>(a);
          }
        }
        if (best_a != result.policy[s]) {
          result.policy[s] = best_a;
          local_stable = false;
        }
      }
      if (!local_stable) stable.store(false, std::memory_order_relaxed);
    };
    if (config.pool != nullptr) {
      config.pool->parallel_for_ranges(ns, improve_range);
    } else {
      improve_range(0, ns);
    }
    result.policy_updates = round + 1;
    if (stable.load()) {
      result.converged = true;
      break;
    }
  }
  return result;
}

PolicyIterationResult solve_policy_iteration(const FiniteMdp& mdp,
                                             const PolicyIterationConfig& config) {
  if (!config.use_compiled) {
    expect(mdp.num_states() > 0, "MDP has at least one state");
    expect(mdp.num_actions() > 0, "MDP has at least one action");
    return solve_virtual(mdp, config);
  }
  // CompiledMdp and the compiled overload validate the model.
  return solve_policy_iteration(CompiledMdp(mdp), config);
}

}  // namespace cav::mdp
