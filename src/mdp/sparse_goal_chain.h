// A synthetic sparse-goal workload: a long leftward-drifting chain whose
// cost mass sits entirely in a short band at the far end — the shape
// (collision punishment concentrated in a small region of a large state
// space) that prioritized sweeping targets.  Action 0 steps toward the
// terminal deterministically; action 1 steps with a small chance of
// holding position, which gives the model a self-loop contraction.
//
// Shared by the solver tests and bench_value_iteration so the bench
// measures exactly the model the tests certify.
#pragma once

#include <cstddef>
#include <vector>

#include "mdp/mdp.h"

namespace cav::mdp {

class SparseGoalChain final : public FiniteMdp {
 public:
  SparseGoalChain(std::size_t length, std::size_t costly_band)
      : length_(length), costly_band_(costly_band) {}

  std::size_t num_states() const override { return length_; }
  std::size_t num_actions() const override { return 2; }
  double cost(State s, Action a) const override {
    if (static_cast<std::size_t>(s) + costly_band_ < length_) return 0.0;
    return a == 0 ? 10.0 : 7.0;  // only the far band is costed
  }
  void transitions(State s, Action a, std::vector<Transition>& out) const override {
    if (a == 0) {
      out.push_back({static_cast<State>(s - 1), 1.0});
    } else {
      out.push_back({static_cast<State>(s - 1), 0.9});
      out.push_back({s, 0.1});
    }
  }
  bool is_terminal(State s) const override { return s == 0; }
  double terminal_cost(State) const override { return 0.0; }

 private:
  std::size_t length_;
  std::size_t costly_band_;
};

}  // namespace cav::mdp
