#include "mdp/value_iteration.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace cav::mdp {
namespace {

void check_config(std::size_t ns, std::size_t na, const ValueIterationConfig& config) {
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");
  expect(config.discount > 0.0 && config.discount <= 1.0, "discount in (0, 1]");
}

/// Raise `target` to at least `value` (relaxed; used for residual reduction
/// where only the final converged maximum matters).
void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// One Bellman update for state s given current values; returns new V(s)
/// and writes the Q row.  Legacy virtual-dispatch kernel.
double bellman_update_virtual(const FiniteMdp& mdp, State s, const Values& values,
                              double discount, QTable& q, std::vector<Transition>& scratch) {
  const std::size_t na = mdp.num_actions();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < na; ++a) {
    const double qa = backup(mdp, s, static_cast<Action>(a), values, discount, scratch);
    q.at(s, static_cast<Action>(a)) = qa;
    best = std::min(best, qa);
  }
  return best;
}

/// Reference implementation kept verbatim from before the compiled-kernel
/// refactor: serial sweeps, transitions re-expanded per backup.  Tests and
/// benches compare the compiled path against this.
ValueIterationResult solve_virtual(const FiniteMdp& mdp, const ValueIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();

  ValueIterationResult result;
  result.values.assign(ns, 0.0);
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);

  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      result.values[s] = mdp.terminal_cost(static_cast<State>(s));
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(static_cast<State>(s), static_cast<Action>(a)) = result.values[s];
      }
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);
  Values next(ns, 0.0);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    double residual = 0.0;
    if (config.gauss_seidel) {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v =
            bellman_update_virtual(mdp, state, result.values, config.discount, result.q, scratch);
        residual = std::max(residual, std::abs(v - result.values[s]));
        result.values[s] = v;
      }
    } else {
      next = result.values;
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v =
            bellman_update_virtual(mdp, state, result.values, config.discount, result.q, scratch);
        residual = std::max(residual, std::abs(v - result.values[s]));
        next[s] = v;
      }
      result.values.swap(next);
    }
    result.iterations = it + 1;
    result.residual = residual;
    if (residual <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.policy = greedy_policy(result.q, ns);
  return result;
}

/// Reference finite-horizon backward induction, kept verbatim from before
/// the compiled-kernel refactor (serial, virtual dispatch per backup).
std::vector<Values> solve_finite_horizon_virtual(const FiniteMdp& mdp, std::size_t horizon,
                                                 double discount) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();

  std::vector<Values> stage(horizon + 1, Values(ns, 0.0));
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      stage[0][s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);
  for (std::size_t t = 1; t <= horizon; ++t) {
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) {
        stage[t][s] = mdp.terminal_cost(state);
        continue;
      }
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < na; ++a) {
        best = std::min(best,
                        backup(mdp, state, static_cast<Action>(a), stage[t - 1], discount, scratch));
      }
      stage[t][s] = best;
    }
  }
  return stage;
}

}  // namespace

ValueIterationResult solve_value_iteration(const CompiledMdp& mdp,
                                           const ValueIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  check_config(ns, na, config);

  ValueIterationResult result;
  result.values.assign(ns, 0.0);
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);

  for (std::size_t s = 0; s < ns; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      result.values[s] = mdp.terminal_cost(state);
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(state, static_cast<Action>(a)) = result.values[s];
      }
    }
  }

  // Terminal entries of `next` never change after this copy: every
  // non-terminal state is rewritten each Jacobi sweep.
  Values next = result.values;

  // Jacobi sweeps read `values` and write disjoint slots of `next` and the
  // Q table, so states can be updated concurrently; the residual is the
  // only shared reduction.  Gauss-Seidel reads its own writes and must stay
  // sequential to keep its (deterministic, ordered) update schedule.
  ThreadPool* pool = config.gauss_seidel ? nullptr : config.pool;

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    double residual = 0.0;
    if (config.gauss_seidel) {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v = mdp.bellman_update(state, result.values, config.discount, result.q);
        residual = std::max(residual, std::abs(v - result.values[s]));
        result.values[s] = v;
      }
    } else if (pool != nullptr) {
      std::atomic<double> shared_residual{0.0};
      pool->parallel_for_ranges(ns, [&](std::size_t begin, std::size_t end) {
        double local = 0.0;
        for (std::size_t s = begin; s < end; ++s) {
          const auto state = static_cast<State>(s);
          if (mdp.is_terminal(state)) continue;
          const double v = mdp.bellman_update(state, result.values, config.discount, result.q);
          local = std::max(local, std::abs(v - result.values[s]));
          next[s] = v;
        }
        atomic_max(shared_residual, local);
      });
      result.values.swap(next);
      residual = shared_residual.load();
    } else {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v = mdp.bellman_update(state, result.values, config.discount, result.q);
        residual = std::max(residual, std::abs(v - result.values[s]));
        next[s] = v;
      }
      result.values.swap(next);
    }
    result.iterations = it + 1;
    result.residual = residual;
    if (residual <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.policy = greedy_policy(result.q, ns);
  return result;
}

ValueIterationResult solve_value_iteration(const FiniteMdp& mdp,
                                           const ValueIterationConfig& config) {
  if (!config.use_compiled) {
    check_config(mdp.num_states(), mdp.num_actions(), config);
    return solve_virtual(mdp, config);
  }
  // CompiledMdp and the compiled overload validate the model and config.
  return solve_value_iteration(CompiledMdp(mdp), config);
}

std::vector<Values> solve_finite_horizon(const CompiledMdp& mdp, std::size_t horizon,
                                         double discount, ThreadPool* pool) {
  const std::size_t ns = mdp.num_states();
  expect(ns > 0, "MDP has at least one state");
  expect(mdp.num_actions() > 0, "MDP has at least one action");

  std::vector<Values> stage(horizon + 1, Values(ns, 0.0));
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      stage[0][s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  for (std::size_t t = 1; t <= horizon; ++t) {
    const Values& prev = stage[t - 1];
    Values& cur = stage[t];
    const auto update_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        const auto state = static_cast<State>(s);
        cur[s] = mdp.is_terminal(state) ? mdp.terminal_cost(state)
                                        : mdp.bellman_min(state, prev, discount);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for_ranges(ns, update_range);
    } else {
      update_range(0, ns);
    }
  }
  return stage;
}

std::vector<Values> solve_finite_horizon(const FiniteMdp& mdp, std::size_t horizon,
                                         double discount, ThreadPool* pool,
                                         bool use_compiled) {
  if (!use_compiled) {
    expect(mdp.num_states() > 0, "MDP has at least one state");
    expect(mdp.num_actions() > 0, "MDP has at least one action");
    return solve_finite_horizon_virtual(mdp, horizon, discount);
  }
  return solve_finite_horizon(CompiledMdp(mdp), horizon, discount, pool);
}

}  // namespace cav::mdp
