#include "mdp/value_iteration.h"

#include <algorithm>
#include <atomic>
#include <cfloat>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "util/expect.h"

namespace cav::mdp {
namespace {

void check_config(std::size_t ns, std::size_t na, const ValueIterationConfig& config) {
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");
  expect(config.discount > 0.0 && config.discount <= 1.0, "discount in (0, 1]");
}

/// Raise `target` to at least `value` (relaxed; used for residual reduction
/// where only the final converged maximum matters).
void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// One Bellman update for state s given current values; returns new V(s)
/// and writes the Q row.  Legacy virtual-dispatch kernel.
double bellman_update_virtual(const FiniteMdp& mdp, State s, const Values& values,
                              double discount, QTable& q, std::vector<Transition>& scratch) {
  const std::size_t na = mdp.num_actions();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < na; ++a) {
    const double qa = backup(mdp, s, static_cast<Action>(a), values, discount, scratch);
    q.at(s, static_cast<Action>(a)) = qa;
    best = std::min(best, qa);
  }
  return best;
}

/// Reference implementation kept verbatim from before the compiled-kernel
/// refactor: serial sweeps, transitions re-expanded per backup.  Tests and
/// benches compare the compiled path against this.
ValueIterationResult solve_virtual(const FiniteMdp& mdp, const ValueIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();

  ValueIterationResult result;
  result.values.assign(ns, 0.0);
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);

  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      result.values[s] = mdp.terminal_cost(static_cast<State>(s));
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(static_cast<State>(s), static_cast<Action>(a)) = result.values[s];
      }
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);
  Values next(ns, 0.0);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    double residual = 0.0;
    if (config.gauss_seidel) {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v =
            bellman_update_virtual(mdp, state, result.values, config.discount, result.q, scratch);
        residual = std::max(residual, std::abs(v - result.values[s]));
        result.values[s] = v;
      }
    } else {
      next = result.values;
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v =
            bellman_update_virtual(mdp, state, result.values, config.discount, result.q, scratch);
        residual = std::max(residual, std::abs(v - result.values[s]));
        next[s] = v;
      }
      result.values.swap(next);
    }
    result.iterations = it + 1;
    result.residual = residual;
    if (residual <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.policy = greedy_policy(result.q, ns);
  return result;
}

/// Reference finite-horizon backward induction, kept verbatim from before
/// the compiled-kernel refactor (serial, virtual dispatch per backup).
std::vector<Values> solve_finite_horizon_virtual(const FiniteMdp& mdp, std::size_t horizon,
                                                 double discount) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();

  std::vector<Values> stage(horizon + 1, Values(ns, 0.0));
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      stage[0][s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);
  for (std::size_t t = 1; t <= horizon; ++t) {
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) {
        stage[t][s] = mdp.terminal_cost(state);
        continue;
      }
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < na; ++a) {
        best = std::min(best,
                        backup(mdp, state, static_cast<Action>(a), stage[t - 1], discount, scratch));
      }
      stage[t][s] = best;
    }
  }
  return stage;
}

}  // namespace

ValueIterationResult solve_value_iteration(const CompiledMdp& mdp,
                                           const ValueIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  check_config(ns, na, config);

  ValueIterationResult result;
  result.values.assign(ns, 0.0);
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);

  for (std::size_t s = 0; s < ns; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      result.values[s] = mdp.terminal_cost(state);
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(state, static_cast<Action>(a)) = result.values[s];
      }
    }
  }

  // Terminal entries of `next` never change after this copy: every
  // non-terminal state is rewritten each Jacobi sweep.
  Values next = result.values;

  // Jacobi sweeps read `values` and write disjoint slots of `next` and the
  // Q table, so states can be updated concurrently; the residual is the
  // only shared reduction.  Gauss-Seidel reads its own writes and must stay
  // sequential to keep its (deterministic, ordered) update schedule.
  ThreadPool* pool = config.gauss_seidel ? nullptr : config.pool;

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    double residual = 0.0;
    if (config.gauss_seidel) {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v = mdp.bellman_update(state, result.values, config.discount, result.q);
        residual = std::max(residual, std::abs(v - result.values[s]));
        result.values[s] = v;
      }
    } else if (pool != nullptr) {
      std::atomic<double> shared_residual{0.0};
      pool->parallel_for_ranges(ns, [&](std::size_t begin, std::size_t end) {
        double local = 0.0;
        for (std::size_t s = begin; s < end; ++s) {
          const auto state = static_cast<State>(s);
          if (mdp.is_terminal(state)) continue;
          const double v = mdp.bellman_update(state, result.values, config.discount, result.q);
          local = std::max(local, std::abs(v - result.values[s]));
          next[s] = v;
        }
        atomic_max(shared_residual, local);
      });
      result.values.swap(next);
      residual = shared_residual.load();
    } else {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v = mdp.bellman_update(state, result.values, config.discount, result.q);
        residual = std::max(residual, std::abs(v - result.values[s]));
        next[s] = v;
      }
      result.values.swap(next);
    }
    result.iterations = it + 1;
    result.residual = residual;
    if (residual <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.policy = greedy_policy(result.q, ns);
  return result;
}

ValueIterationResult solve_value_iteration(const FiniteMdp& mdp,
                                           const ValueIterationConfig& config) {
  if (!config.use_compiled) {
    check_config(mdp.num_states(), mdp.num_actions(), config);
    return solve_virtual(mdp, config);
  }
  // CompiledMdp and the compiled overload validate the model and config.
  return solve_value_iteration(CompiledMdp(mdp), config);
}

std::vector<Values> solve_finite_horizon(const CompiledMdp& mdp, std::size_t horizon,
                                         double discount, ThreadPool* pool) {
  const std::size_t ns = mdp.num_states();
  expect(ns > 0, "MDP has at least one state");
  expect(mdp.num_actions() > 0, "MDP has at least one action");

  std::vector<Values> stage(horizon + 1, Values(ns, 0.0));
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      stage[0][s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  for (std::size_t t = 1; t <= horizon; ++t) {
    const Values& prev = stage[t - 1];
    Values& cur = stage[t];
    const auto update_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        const auto state = static_cast<State>(s);
        cur[s] = mdp.is_terminal(state) ? mdp.terminal_cost(state)
                                        : mdp.bellman_min(state, prev, discount);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for_ranges(ns, update_range);
    } else {
      update_range(0, ns);
    }
  }
  return stage;
}

std::vector<Values> solve_finite_horizon(const FiniteMdp& mdp, std::size_t horizon,
                                         double discount, ThreadPool* pool,
                                         bool use_compiled) {
  if (!use_compiled) {
    expect(mdp.num_states() > 0, "MDP has at least one state");
    expect(mdp.num_actions() > 0, "MDP has at least one action");
    return solve_finite_horizon_virtual(mdp, horizon, discount);
  }
  return solve_finite_horizon(CompiledMdp(mdp), horizon, discount, pool);
}

PrioritizedSweepResult solve_prioritized(const CompiledMdp& mdp,
                                         const PrioritizedSweepConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");
  expect(config.discount > 0.0 && config.discount <= 1.0, "discount in (0, 1]");
  const std::size_t budget =
      config.max_state_updates != 0 ? config.max_state_updates : 10000 * ns;

  PrioritizedSweepResult result;
  result.values.assign(ns, 0.0);
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);
  for (std::size_t s = 0; s < ns; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      result.values[s] = mdp.terminal_cost(state);
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(state, static_cast<Action>(a)) = result.values[s];
      }
    }
  }
  Values& v = result.values;

  // Max-heap with one live entry per state: priority[s] holds the current
  // bound and in_queue[s] says whether a heap entry exists for it.  A bound
  // that grows after its entry was pushed keeps the (now slightly low) heap
  // position — pop order is heuristic anyway; soundness only needs every
  // state with a bound above tolerance to stay queued until processed.
  std::vector<double> priority(ns, 0.0);
  std::vector<std::uint8_t> in_queue(ns, 0);
  std::priority_queue<std::pair<double, State>> heap;
  const auto enqueue = [&](State s, double p) {
    priority[s] = p;
    if (in_queue[s] == 0 && p > config.tolerance) {
      in_queue[s] = 1;
      heap.emplace(p, s);
    }
  };

  // Seed with the exact Bellman residual of every non-terminal state.
  const auto seed_all = [&] {
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) continue;
      const double r = std::abs(mdp.bellman_min(state, v, config.discount) - v[s]);
      ++result.state_updates;
      enqueue(state, r);
    }
  };
  seed_all();

  const auto& pred_offsets = mdp.pred_offsets();
  const auto& pred_state = mdp.pred_state();
  Values sweep_next(ns, 0.0);

  while (true) {
    // Drain: back up the state with the (approximately) worst residual
    // bound.  Q rows are not written here — repeatedly-updated states would
    // waste the writes; the verification sweep below fills the whole table.
    while (!heap.empty() && result.state_updates < budget) {
      const State s = heap.top().second;
      heap.pop();
      // Defensive invariant check only: enqueue() pushes exactly on the
      // in_queue 0 -> 1 transition, so each heap entry is live when popped.
      if (in_queue[s] == 0) continue;
      in_queue[s] = 0;
      priority[s] = 0.0;
      const double nv = mdp.bellman_min(s, v, config.discount);
      ++result.state_updates;
      const double delta = std::abs(nv - v[s]);
      v[s] = nv;
      if (delta == 0.0) continue;
      // V(s) moved by delta, so any predecessor's Q can drift by at most
      // discount * p(s|.) * delta <= discount * delta; bounds accumulate.
      const double drift = config.discount * delta;
      for (std::size_t k = pred_offsets[s]; k < pred_offsets[s + 1]; ++k) {
        const State q = pred_state[k];
        if (mdp.is_terminal(q)) continue;
        enqueue(q, priority[q] + drift);
      }
    }
    const bool budget_exhausted = result.state_updates >= budget;

    // Queue drained: every bound is <= tolerance, which soundly bounds
    // every true residual.  One full Jacobi sweep fills the Q rows of
    // states the queue never visited and measures the exact residual.
    // This sweep also runs when the budget cut the drain short, so a
    // non-converged result still reports a measured residual and a policy
    // greedy w.r.t. its Q table (filled from the pre-sweep values; the
    // returned values end up one Bellman application ahead of it).
    double residual = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) {
        sweep_next[s] = v[s];
        continue;
      }
      const double nv = mdp.bellman_update(state, v, config.discount, result.q);
      ++result.state_updates;
      residual = std::max(residual, std::abs(nv - v[s]));
      sweep_next[s] = nv;
    }
    v.swap(sweep_next);
    ++result.verification_sweeps;
    result.residual = residual;
    if (residual <= config.tolerance) {
      result.converged = true;
      break;
    }
    if (budget_exhausted || result.state_updates >= budget) break;
    // Either the budget interrupted the drain, or (floating-point edge)
    // the accumulated bounds under-estimated.  Reseed exactly and go on.
    for (auto& pr : priority) pr = 0.0;
    in_queue.assign(ns, 0);
    heap = {};
    seed_all();
  }

  result.policy = greedy_policy(result.q, ns);
  return result;
}

ValueIterationF32Result solve_value_iteration_f32(const CompiledMdp& mdp,
                                                  const ValueIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  check_config(ns, na, config);
  expect(!config.gauss_seidel, "float32 value iteration is Jacobi-only");

  ValueIterationF32Result result;
  result.values.assign(ns, 0.0F);
  for (std::size_t s = 0; s < ns; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      result.values[s] = static_cast<float>(mdp.terminal_cost(state));
    }
  }
  std::vector<float> next = result.values;

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    double residual = 0.0;
    double value_scale = 0.0;
    if (config.pool != nullptr) {
      std::atomic<double> shared_residual{0.0};
      std::atomic<double> shared_scale{0.0};
      config.pool->parallel_for_ranges(ns, [&](std::size_t begin, std::size_t end) {
        double local_residual = 0.0;
        double local_scale = 0.0;
        for (std::size_t s = begin; s < end; ++s) {
          const auto state = static_cast<State>(s);
          if (mdp.is_terminal(state)) {
            local_scale = std::max(local_scale, std::abs(static_cast<double>(next[s])));
            continue;
          }
          const auto nv = static_cast<float>(mdp.bellman_min(state, result.values, config.discount));
          local_residual = std::max(
              local_residual, std::abs(static_cast<double>(nv) - result.values[s]));
          local_scale = std::max(local_scale, std::abs(static_cast<double>(nv)));
          next[s] = nv;
        }
        atomic_max(shared_residual, local_residual);
        atomic_max(shared_scale, local_scale);
      });
      residual = shared_residual.load();
      value_scale = shared_scale.load();
    } else {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) {
          value_scale = std::max(value_scale, std::abs(static_cast<double>(next[s])));
          continue;
        }
        const auto nv = static_cast<float>(mdp.bellman_min(state, result.values, config.discount));
        residual = std::max(residual, std::abs(static_cast<double>(nv) - result.values[s]));
        value_scale = std::max(value_scale, std::abs(static_cast<double>(nv)));
        next[s] = nv;
      }
    }
    result.values.swap(next);
    result.iterations = it + 1;
    result.residual = residual;
    // Residuals below the value scale's float ulp are quantization noise;
    // demanding less would spin forever on large-magnitude models.
    result.float_floor = 8.0 * static_cast<double>(FLT_EPSILON) * value_scale;
    if (residual <= std::max(config.tolerance, result.float_floor)) {
      result.converged = true;
      break;
    }
  }

  // Q (and the policy) are extracted in double from the converged float
  // layer, so tie-breaking follows the same rule as every other solver.
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);
  for (std::size_t s = 0; s < ns; ++s) {
    const auto state = static_cast<State>(s);
    if (mdp.is_terminal(state)) {
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(state, static_cast<Action>(a)) = mdp.terminal_cost(state);
      }
      continue;
    }
    mdp.bellman_update(state, result.values, config.discount, result.q);
  }
  result.policy = greedy_policy(result.q, ns);
  return result;
}

}  // namespace cav::mdp
