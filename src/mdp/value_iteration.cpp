#include "mdp/value_iteration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace cav::mdp {
namespace {

/// One Bellman update for state s given current values; returns new V(s)
/// and writes the Q row.
double bellman_update(const FiniteMdp& mdp, State s, const Values& values, double discount,
                      QTable& q, std::vector<Transition>& scratch) {
  const std::size_t na = mdp.num_actions();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < na; ++a) {
    const double qa = backup(mdp, s, static_cast<Action>(a), values, discount, scratch);
    q.at(s, static_cast<Action>(a)) = qa;
    best = std::min(best, qa);
  }
  return best;
}

}  // namespace

ValueIterationResult solve_value_iteration(const FiniteMdp& mdp,
                                           const ValueIterationConfig& config) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");
  expect(config.discount > 0.0 && config.discount <= 1.0, "discount in (0, 1]");

  ValueIterationResult result;
  result.values.assign(ns, 0.0);
  result.q.num_actions = na;
  result.q.q.assign(ns * na, 0.0);

  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      result.values[s] = mdp.terminal_cost(static_cast<State>(s));
      for (std::size_t a = 0; a < na; ++a) {
        result.q.at(static_cast<State>(s), static_cast<Action>(a)) = result.values[s];
      }
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);
  Values next(ns, 0.0);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    double residual = 0.0;
    if (config.gauss_seidel) {
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v = bellman_update(mdp, state, result.values, config.discount, result.q, scratch);
        residual = std::max(residual, std::abs(v - result.values[s]));
        result.values[s] = v;
      }
    } else {
      next = result.values;
      for (std::size_t s = 0; s < ns; ++s) {
        const auto state = static_cast<State>(s);
        if (mdp.is_terminal(state)) continue;
        const double v = bellman_update(mdp, state, result.values, config.discount, result.q, scratch);
        residual = std::max(residual, std::abs(v - result.values[s]));
        next[s] = v;
      }
      result.values.swap(next);
    }
    result.iterations = it + 1;
    result.residual = residual;
    if (residual <= config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.policy = greedy_policy(result.q, ns);
  return result;
}

std::vector<Values> solve_finite_horizon(const FiniteMdp& mdp, std::size_t horizon,
                                         double discount) {
  const std::size_t ns = mdp.num_states();
  const std::size_t na = mdp.num_actions();
  expect(ns > 0, "MDP has at least one state");
  expect(na > 0, "MDP has at least one action");

  std::vector<Values> stage(horizon + 1, Values(ns, 0.0));
  for (std::size_t s = 0; s < ns; ++s) {
    if (mdp.is_terminal(static_cast<State>(s))) {
      stage[0][s] = mdp.terminal_cost(static_cast<State>(s));
    }
  }

  std::vector<Transition> scratch;
  scratch.reserve(64);
  for (std::size_t t = 1; t <= horizon; ++t) {
    for (std::size_t s = 0; s < ns; ++s) {
      const auto state = static_cast<State>(s);
      if (mdp.is_terminal(state)) {
        stage[t][s] = mdp.terminal_cost(state);
        continue;
      }
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < na; ++a) {
        best = std::min(best, backup(mdp, state, static_cast<Action>(a), stage[t - 1], discount, scratch));
      }
      stage[t][s] = best;
    }
  }
  return stage;
}

}  // namespace cav::mdp
